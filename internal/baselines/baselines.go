// Package baselines implements the comparison methods of Table I as
// pipelines over the same simulated LLM and translation machinery that
// DataLab uses. Methods differ in the *strategies* their papers describe
// — few-shot selection, schema filtering with candidate ranking, logic-
// skeleton retrieval, free-form execution loops, structured vs NL
// multi-agent communication — expressed as the calibration parameters in
// calibration.go. The mechanisms set who wins where; the constants set
// magnitudes.
package baselines

import (
	"fmt"

	"datalab/internal/benchgen"
	"datalab/internal/dsl"
	"datalab/internal/insight"
	"datalab/internal/knowledge"
	"datalab/internal/llm"
	"datalab/internal/metrics"
	"datalab/internal/sqlengine"
	"datalab/internal/table"
	"datalab/internal/viz"
)

// Method is one evaluated system (DataLab itself is expressed in the
// same frame so every method runs the identical harness).
type Method struct {
	Name string
	// Kinds lists the task families the method supports.
	Kinds []benchgen.TaskKind

	// SkillDelta adjusts the base model skill per suite (specialist
	// prompt/pipeline optimizations); keyed by suite name, with "" as
	// the default.
	SkillDelta map[string]float64
	// SchemaUnderstanding plays the KnowledgeLevel role: how well the
	// method's own schema handling (profiling, filtering, linking)
	// compensates for ambiguity. DataLab's data profiling gives 0.5+.
	SchemaUnderstanding float64
	// Iterations is the number of execution-feedback refinement rounds
	// the method's loop performs.
	Iterations int
	// Structured is false for methods communicating in free-form NL
	// between steps/agents (AutoGen-style).
	Structured bool
	// DifficultySensitivity scales how much residual task hardness hurts.
	DifficultySensitivity float64
	// UsesDSL marks methods that generate through a validated DSL
	// intermediate (DataLab): DSL specs always compile, removing a class
	// of syntax failures on symbolic-generation tasks.
	UsesDSL bool
}

// Supports reports whether the method runs the given task family.
func (m Method) Supports(kind benchgen.TaskKind) bool {
	for _, k := range m.Kinds {
		if k == kind {
			return true
		}
	}
	return false
}

// skillFor resolves the base capability for a task family.
func skillFor(p llm.Profile, kind benchgen.TaskKind) float64 {
	switch kind {
	case benchgen.TaskNL2SQL:
		return p.SQLGeneration
	case benchgen.TaskNL2DSCode:
		return p.CodeGeneration
	case benchgen.TaskNL2Insight:
		return p.Reasoning
	case benchgen.TaskNL2VIS:
		return p.VisLiteracy
	}
	return p.Reasoning
}

// Result is one task outcome.
type Result struct {
	Correct bool
	// Legal reports output validity regardless of correctness (VisEval's
	// pass-rate notion: the chart is renderable and type-checks).
	Legal bool
	// Readability is set for NL2VIS tasks.
	Readability float64
	// Summary is set for NL2Insight tasks (feeds ROUGE / judge metrics).
	Summary string
}

// Run executes one benchmark task under the method and returns the
// outcome. The pipeline is the real one: profile the table, translate to
// a DSL, compile, execute, and compare against gold by execution
// equivalence. The simulated LLM injects residual error according to the
// method's calibration.
func (m Method) Run(task benchgen.Task, client *llm.Client) Result {
	if !m.Supports(task.Kind) {
		return Result{}
	}
	profiler := knowledge.NewProfiler(client)
	bundle := profiler.Profile(task.Table)
	translator := &knowledge.Translator{Client: client}

	delta, ok := m.SkillDelta[task.Suite]
	if !ok {
		delta = m.SkillDelta[""]
	}
	skill := skillFor(client.Profile(), task.Kind) + delta
	skill *= 1 - m.DifficultySensitivity*task.Difficulty
	if skill < 0.05 {
		skill = 0.05
	}
	if skill > 0.99 {
		skill = 0.99
	}

	q := llm.Quality{
		SchemaLinked:   1,
		KnowledgeLevel: m.SchemaUnderstanding,
		Ambiguity:      task.Ambiguity,
		Distraction:    0,
		Structured:     m.Structured,
		Iterations:     m.Iterations,
	}
	spec, faithful := translator.Translate(knowledge.TranslateRequest{
		Query:      task.Query,
		Table:      task.Table.Name,
		Candidates: bundle.Candidates(),
		ValueHints: bundle.ValueHints(),
		Key:        m.Name + "|" + task.ID,
		Skill:      skill,
		Quality:    q,
	})

	res := Result{}
	cat := sqlengine.NewCatalog()
	cat.Register(task.Table)

	switch task.Kind {
	case benchgen.TaskNL2SQL, benchgen.TaskNL2DSCode:
		// Pass/EX requires executing the generated program and matching
		// the gold result.
		got := execSpec(cat, spec)
		want := execGold(cat, task)
		res.Legal = got != nil
		res.Correct = faithful && metrics.ExecutionAccuracy(got, want)
		// Methods without a validated DSL intermediate lose an extra
		// slice of outputs to syntax/compile failures on symbolic tasks.
		if !m.UsesDSL && res.Correct {
			if !client.Attempt("syntax|"+m.Name+"|"+task.ID, "", "", 0.96, llm.Quality{Structured: true}) {
				res.Correct = false
				res.Legal = false
			}
		}
	case benchgen.TaskNL2VIS:
		gotChart, gotData := renderSpec(cat, spec)
		wantChart, wantData := renderSpec(cat, task.Gold)
		res.Legal = gotChart != nil
		if gotChart != nil && wantChart != nil {
			res.Correct = faithful && viz.EqualRendered(gotData, wantData)
			res.Readability = viz.Readability(gotChart, gotData)
		}
		if res.Legal {
			// VisEval's pass rate also fails charts on type mismatches,
			// truncated axes, and renderer incompatibilities that our
			// structural check cannot see; those land on a legality draw
			// whose odds improve for DSL-validated pipelines.
			pLegal := 0.72 + 0.10*skill
			if m.UsesDSL {
				pLegal += 0.04
			}
			if !client.Attempt("legal|"+m.Name+"|"+task.ID, "", "", pLegal, llm.Quality{Structured: true}) {
				res.Legal = false
			}
		}
	case benchgen.TaskNL2Insight:
		// The insight pipeline summarizes the gold measure when linking
		// succeeded; a mislinked run analyzes the wrong column.
		col := ""
		if len(spec.MeasureList) > 0 {
			col = spec.MeasureList[0].Column
		}
		res.Summary = insightSummary(task, col)
		res.Legal = res.Summary != ""
		res.Correct = faithful && col != "" &&
			len(task.Gold.MeasureList) > 0 && equalFold(col, task.Gold.MeasureList[0].Column)
	}
	return res
}

func execSpec(cat *sqlengine.Catalog, spec *dsl.Spec) *table.Table {
	if spec == nil {
		return nil
	}
	sql, err := spec.ToSQL()
	if err != nil {
		return nil
	}
	res, err := cat.Query(sql)
	if err != nil {
		return nil
	}
	return res
}

func execGold(cat *sqlengine.Catalog, task benchgen.Task) *table.Table {
	res, err := cat.Query(task.GoldSQL)
	if err != nil {
		return nil
	}
	return res
}

func renderSpec(cat *sqlengine.Catalog, spec *dsl.Spec) (*viz.Spec, *viz.Rendered) {
	if spec == nil {
		return nil, nil
	}
	if spec.ChartType == "" {
		spec.ChartType = "bar"
	}
	chart, err := spec.ToChart()
	if err != nil {
		return nil, nil
	}
	sql, err := spec.ToSQL()
	if err != nil {
		return nil, nil
	}
	data, err := cat.Query(sql)
	if err != nil {
		return nil, nil
	}
	rendered, err := viz.Render(chart, data)
	if err != nil {
		return nil, nil
	}
	return chart, rendered
}

// insightSummary produces the method's own-voice summary about whichever
// column it linked. Correct runs share facts (not phrasing) with the gold
// reference, keeping ROUGE realistically below 1; mislinked runs talk
// about the wrong metric and overlap much less.
func insightSummary(task benchgen.Task, col string) string {
	if col == "" {
		return ""
	}
	if task.Table.ColumnIndex(col) < 0 {
		return fmt.Sprintf("analysis of %s found no usable signal", col)
	}
	facts := insight.Summarize(insight.EDA(task.Table), 2)
	return fmt.Sprintf("Examined the metric %s across the dataset. %s", col, facts)
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
