package baselines

import (
	"testing"

	"datalab/internal/benchgen"
	"datalab/internal/llm"
)

func TestMethodsForCoverAllTaskFamilies(t *testing.T) {
	for _, kind := range []benchgen.TaskKind{
		benchgen.TaskNL2SQL, benchgen.TaskNL2DSCode,
		benchgen.TaskNL2Insight, benchgen.TaskNL2VIS,
	} {
		methods := MethodsFor(kind)
		if len(methods) < 3 {
			t.Errorf("%s: only %d methods", kind, len(methods))
		}
		if methods[0].Name != "DataLab" {
			t.Errorf("%s: DataLab must lead the lineup", kind)
		}
		for _, m := range methods {
			if !m.Supports(kind) {
				t.Errorf("%s: method %s does not support its own family", kind, m.Name)
			}
		}
	}
}

func TestDataLabIsTheOnlyGeneralist(t *testing.T) {
	if got := len(DataLab().Kinds); got != 4 {
		t.Errorf("DataLab supports %d families, want 4", got)
	}
	for _, m := range []Method{DAILSQL(), PURPLE(), CHESS(), CoML(), AutoGen(), LIDA()} {
		if len(m.Kinds) == 4 {
			t.Errorf("%s should not be a full generalist", m.Name)
		}
	}
}

func TestMechanismFlags(t *testing.T) {
	if !DataLab().UsesDSL {
		t.Error("DataLab's DSL intermediate is its defining mechanism")
	}
	if AutoGen().Structured {
		t.Error("AutoGen communicates in unstructured NL by construction")
	}
	if CHESS().SchemaUnderstanding <= DAILSQL().SchemaUnderstanding {
		t.Error("CHESS's schema filtering must outrank DAIL-SQL's few-shot selection")
	}
}

func TestRunProducesResults(t *testing.T) {
	s, _ := benchgen.SuiteByName("Spider")
	s.N = 20
	tasks := benchgen.GenerateSuite(s, "baseline-test")
	client := llm.NewClient(llm.GPT4, "baseline-test")
	m := DataLab()
	correct := 0
	for _, task := range tasks {
		res := m.Run(task, client)
		if res.Correct {
			correct++
		}
	}
	if correct < 10 {
		t.Errorf("DataLab solved only %d/20 easy Spider tasks", correct)
	}
	// Unsupported family returns a zero result, not a panic.
	vis, _ := benchgen.SuiteByName("VisEval")
	vis.N = 10
	visTask := benchgen.GenerateSuite(vis, "baseline-test")[0]
	if res := DAILSQL().Run(visTask, client); res.Correct || res.Legal {
		t.Error("unsupported task should yield a zero result")
	}
}

func TestRunDeterministic(t *testing.T) {
	s, _ := benchgen.SuiteByName("BIRD")
	s.N = 15
	tasks := benchgen.GenerateSuite(s, "det")
	m := CHESS()
	run := func() []bool {
		client := llm.NewClient(llm.GPT4, "det")
		var out []bool
		for _, task := range tasks {
			out = append(out, m.Run(task, client).Correct)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("method runs are not deterministic")
		}
	}
}

func TestVISTasksProduceReadabilityAndLegality(t *testing.T) {
	s, _ := benchgen.SuiteByName("VisEval")
	s.N = 30
	tasks := benchgen.GenerateSuite(s, "vis-res")
	client := llm.NewClient(llm.GPT4, "vis-res")
	m := DataLab()
	legal := 0
	for _, task := range tasks {
		res := m.Run(task, client)
		if res.Legal {
			legal++
			if res.Readability < 1 || res.Readability > 5 {
				t.Errorf("readability %v out of range", res.Readability)
			}
		}
	}
	if legal < 15 {
		t.Errorf("only %d/30 charts legal", legal)
	}
}

func TestInsightTasksProduceSummaries(t *testing.T) {
	s, _ := benchgen.SuiteByName("DABench")
	s.N = 15
	tasks := benchgen.GenerateSuite(s, "ins-res")
	client := llm.NewClient(llm.GPT4, "ins-res")
	m := AgentPoirot()
	withSummary := 0
	for _, task := range tasks {
		if m.Run(task, client).Summary != "" {
			withSummary++
		}
	}
	if withSummary < 10 {
		t.Errorf("only %d/15 runs produced summaries", withSummary)
	}
}
