package baselines

import "datalab/internal/benchgen"

// Calibration of every evaluated method. Two principles govern it:
//
//  1. Mechanisms first. Who wins where follows from the pipeline shape:
//     DataLab's validated DSL intermediate removes compile failures and
//     its profiling raises schema understanding uniformly; single-task
//     specialists carry a positive SkillDelta on their home benchmarks
//     (CHESS/PURPLE spend their whole token budget on SQL); AutoGen's
//     free-form NL chat sets Structured=false; interpreter-style methods
//     earn Iterations from execution loops.
//
//  2. Constants set magnitudes only. They are tuned so the measured
//     numbers land near Table I (see EXPERIMENTS.md for paper-vs-
//     measured), but removing a method's mechanism flips outcomes, not
//     retuning.
//
// The paper's Table I ordering this table must reproduce:
//   NL2SQL:   PURPLE ~ CHESS > DAIL-SQL > DataLab   (both suites)
//   NL2DSCode: DataLab > CodeInterpreter > OpenInterpreter > CoML
//   NL2Insight: AgentPoirot ~ DataLab > AutoGen
//   NL2VIS:   DataLab best on VisEval pass; near-tie on nvBench.

// DataLab is the full system in the common evaluation frame.
func DataLab() Method {
	return Method{
		Name: "DataLab",
		Kinds: []benchgen.TaskKind{
			benchgen.TaskNL2SQL, benchgen.TaskNL2DSCode,
			benchgen.TaskNL2Insight, benchgen.TaskNL2VIS,
		},
		// The generalist discount on NL2SQL: DataLab's prompt budget is
		// shared across the whole workflow, where CHESS/PURPLE optimize
		// solely for SQL (the paper's explanation for Table I's NL2SQL
		// column).
		SkillDelta:            map[string]float64{"": 0, "Spider": -0.10, "BIRD": -0.05},
		SchemaUnderstanding:   0.55, // data profiling + DSL grounding
		Iterations:            1,    // execution feedback in agent loop
		Structured:            true,
		DifficultySensitivity: 0.6,
		UsesDSL:               true,
	}
}

// DAILSQL: few-shot example selection for text-to-SQL (Gao et al.).
func DAILSQL() Method {
	return Method{
		Name:                  "DAIL-SQL",
		Kinds:                 []benchgen.TaskKind{benchgen.TaskNL2SQL},
		SkillDelta:            map[string]float64{"Spider": 0.12, "BIRD": -0.03},
		SchemaUnderstanding:   0.5,
		Iterations:            0,
		Structured:            true,
		DifficultySensitivity: 0.5,
	}
}

// PURPLE: logic-skeleton retrieval makes the LLM a better SQL writer;
// the strongest Spider specialist in Table I.
func PURPLE() Method {
	return Method{
		Name:                  "PURPLE",
		Kinds:                 []benchgen.TaskKind{benchgen.TaskNL2SQL},
		SkillDelta:            map[string]float64{"Spider": 0.08, "BIRD": 0.05},
		SchemaUnderstanding:   0.6,
		Iterations:            1,
		Structured:            true,
		DifficultySensitivity: 0.45,
	}
}

// CHESS: contextual schema filtering + candidate selection; the
// strongest BIRD specialist.
func CHESS() Method {
	return Method{
		Name:                  "CHESS",
		Kinds:                 []benchgen.TaskKind{benchgen.TaskNL2SQL},
		SkillDelta:            map[string]float64{"Spider": 0.04, "BIRD": -0.02},
		SchemaUnderstanding:   0.65, // schema filtering is its whole point
		Iterations:            1,
		Structured:            true,
		DifficultySensitivity: 0.42,
	}
}

// CoML: ML-copilot style single-shot code generation.
func CoML() Method {
	return Method{
		Name:                  "CoML",
		Kinds:                 []benchgen.TaskKind{benchgen.TaskNL2DSCode, benchgen.TaskNL2VIS},
		SkillDelta:            map[string]float64{"": -0.02},
		SchemaUnderstanding:   0.4,
		Iterations:            0,
		Structured:            true,
		DifficultySensitivity: 0.55,
	}
}

// CodeInterpreter: sandboxed execution loop (one retry round).
func CodeInterpreter() Method {
	return Method{
		Name:                  "CodeInterpreter",
		Kinds:                 []benchgen.TaskKind{benchgen.TaskNL2DSCode},
		SkillDelta:            map[string]float64{"": -0.02},
		SchemaUnderstanding:   0.45,
		Iterations:            1,
		Structured:            true,
		DifficultySensitivity: 0.65,
	}
}

// OpenInterpreter: similar loop, weaker task grounding.
func OpenInterpreter() Method {
	return Method{
		Name:                  "OpenInterpreter",
		Kinds:                 []benchgen.TaskKind{benchgen.TaskNL2DSCode},
		SkillDelta:            map[string]float64{"": -0.04},
		SchemaUnderstanding:   0.42,
		Iterations:            1,
		Structured:            true,
		DifficultySensitivity: 0.62,
	}
}

// AutoGen: general multi-agent conversation in free-form NL.
func AutoGen() Method {
	return Method{
		Name:                  "AutoGen",
		Kinds:                 []benchgen.TaskKind{benchgen.TaskNL2Insight},
		SkillDelta:            map[string]float64{"": 0.0},
		SchemaUnderstanding:   0.3,
		Iterations:            1,
		Structured:            false, // unstructured NL chat
		DifficultySensitivity: 0.5,
	}
}

// AgentPoirot: insight-specialist agent (InsightBench's own system).
func AgentPoirot() Method {
	return Method{
		Name:                  "AgentPoirot",
		Kinds:                 []benchgen.TaskKind{benchgen.TaskNL2Insight},
		SkillDelta:            map[string]float64{"DABench": 0.02, "InsightBench": 0.01},
		SchemaUnderstanding:   0.5,
		Iterations:            1,
		Structured:            true,
		DifficultySensitivity: 0.45,
	}
}

// LIDA: grammar-agnostic visualization generation.
func LIDA() Method {
	return Method{
		Name:                  "LIDA",
		Kinds:                 []benchgen.TaskKind{benchgen.TaskNL2VIS},
		SkillDelta:            map[string]float64{"nvBench": 0.01, "VisEval": -0.02},
		SchemaUnderstanding:   0.5,
		Iterations:            0,
		Structured:            true,
		DifficultySensitivity: 0.58,
	}
}

// Chat2Vis: direct prompt-to-plot generation.
func Chat2Vis() Method {
	return Method{
		Name:                  "Chat2Vis",
		Kinds:                 []benchgen.TaskKind{benchgen.TaskNL2VIS},
		SkillDelta:            map[string]float64{"nvBench": 0.03, "VisEval": -0.04},
		SchemaUnderstanding:   0.45,
		Iterations:            0,
		Structured:            true,
		DifficultySensitivity: 0.6,
	}
}

// CoML4VIS: CoML adapted for visualization.
func CoML4VIS() Method {
	return Method{
		Name:                  "CoML4VIS",
		Kinds:                 []benchgen.TaskKind{benchgen.TaskNL2VIS},
		SkillDelta:            map[string]float64{"VisEval": 0.02, "nvBench": -0.04},
		SchemaUnderstanding:   0.45,
		Iterations:            1,
		Structured:            true,
		DifficultySensitivity: 0.62,
	}
}

// MethodsFor returns the Table I method lineup for a task family, with
// DataLab first.
func MethodsFor(kind benchgen.TaskKind) []Method {
	switch kind {
	case benchgen.TaskNL2SQL:
		return []Method{DataLab(), DAILSQL(), PURPLE(), CHESS()}
	case benchgen.TaskNL2DSCode:
		return []Method{DataLab(), CoML(), CodeInterpreter(), OpenInterpreter()}
	case benchgen.TaskNL2Insight:
		return []Method{DataLab(), AutoGen(), AgentPoirot()}
	case benchgen.TaskNL2VIS:
		return []Method{DataLab(), LIDA(), Chat2Vis(), CoML4VIS()}
	}
	return nil
}
