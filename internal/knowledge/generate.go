package knowledge

import (
	"fmt"
	"sort"
	"strings"

	"datalab/internal/llm"
	"datalab/internal/sqlengine"
	"datalab/internal/table"
	"datalab/internal/textutil"
)

// Generator runs Algorithm 1: a Map-Reduce knowledge-generation process
// with a self-calibration feedback loop, driven by the simulated LLM.
type Generator struct {
	Client *llm.Client
	// ScoreThreshold is T in Algorithm 1: map-phase outputs scoring below
	// it are regenerated. The paper scores on a 1-5 scale.
	ScoreThreshold float64
	// MaxRetries bounds the self-calibration loop per script.
	MaxRetries int
}

// NewGenerator returns a generator with the paper's defaults.
func NewGenerator(client *llm.Client) *Generator {
	return &Generator{Client: client, ScoreThreshold: 3.5, MaxRetries: 3}
}

// mapResult is the per-script knowledge fragment produced by the map phase.
type mapResult struct {
	scriptID   string
	tableDesc  []string
	tableTags  []string
	colDesc    map[string][]string // column -> description fragments
	colUsage   map[string][]string
	colTags    map[string][]string
	derived    []DerivedColumn
	keyColumns []string
	values     []ValueKnowledge
	quality    float64 // extraction completeness, drives self-calibration
}

// Generate runs the full pipeline for one table: preprocess scripts, map
// each with self-calibration, then reduce into a Bundle.
func (g *Generator) Generate(schema TableSchema, history []Script, lineage []LineageEdge) (*Bundle, error) {
	scripts := preprocess(history)

	var results []mapResult
	for _, s := range scripts {
		res := g.mapScript(schema, s)
		// Self-calibration loop: re-extract while the judged score is
		// below threshold. Re-extraction runs with wider heuristics
		// (lower alias-confidence cutoffs), modelling the quality gain
		// the paper attributes to regeneration.
		attempt := 0
		for g.selfCalibrate(s, res) < g.ScoreThreshold && attempt < g.MaxRetries {
			attempt++
			res = g.remapScript(schema, s, attempt)
		}
		results = append(results, res)
	}
	// Lineage provides fragments for tables whose script history is thin.
	for _, edge := range lineage {
		if !strings.EqualFold(edge.ToTable, schema.Name) && !strings.EqualFold(edge.ToTable, schema.QualifiedName()) {
			continue
		}
		res := mapResult{
			scriptID: "lineage:" + edge.FromTable,
			colDesc:  map[string][]string{},
			colUsage: map[string][]string{},
			colTags:  map[string][]string{},
			quality:  0.5,
		}
		if edge.ToColumn != "" {
			frag := fmt.Sprintf("derived from %s", edge.FromTable)
			if edge.FromColumn != "" {
				frag = fmt.Sprintf("derived from %s.%s", edge.FromTable, edge.FromColumn)
			}
			if edge.Transform != "" {
				frag += " via " + edge.Transform
			}
			res.colDesc[strings.ToLower(edge.ToColumn)] = []string{frag}
		} else {
			res.tableDesc = append(res.tableDesc, fmt.Sprintf("downstream of %s", edge.FromTable))
		}
		results = append(results, res)
	}

	return g.reduce(schema, results), nil
}

// preprocess deduplicates near-identical scripts (line 1 of Algorithm 1)
// so the map phase does not overweight boilerplate that is re-run daily.
func preprocess(history []Script) []Script {
	var out []Script
	var kept [][]string
	for _, s := range history {
		toks := textutil.ContentTokens(s.Text)
		dup := false
		for _, prev := range kept {
			if textutil.Jaccard(toks, prev) > 0.9 {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, s)
			kept = append(kept, toks)
		}
	}
	return out
}

// mapScript extracts knowledge fragments from one script. This is the
// mechanical stand-in for the map-phase LLM call: real information flows
// only from what the script actually contains — aliases, comments,
// aggregation/filter/grouping patterns, derived expressions.
func (g *Generator) mapScript(schema TableSchema, s Script) mapResult {
	res := mapResult{
		scriptID: s.ID,
		colDesc:  map[string][]string{},
		colUsage: map[string][]string{},
		colTags:  map[string][]string{},
	}
	g.Client.Charge(s.Text+schemaPrompt(schema), "knowledge fragments")
	switch s.Language {
	case LangSQL:
		g.mapSQL(schema, s, &res, 0)
	case LangPython:
		g.mapPython(schema, s, &res)
	}
	res.quality = extractionQuality(schema, &res)
	return res
}

// remapScript re-extracts with progressively more aggressive heuristics.
func (g *Generator) remapScript(schema TableSchema, s Script, attempt int) mapResult {
	res := mapResult{
		scriptID: fmt.Sprintf("%s#retry%d", s.ID, attempt),
		colDesc:  map[string][]string{},
		colUsage: map[string][]string{},
		colTags:  map[string][]string{},
	}
	g.Client.Charge(s.Text+schemaPrompt(schema), "knowledge fragments (recalibrated)")
	switch s.Language {
	case LangSQL:
		g.mapSQL(schema, s, &res, attempt)
	case LangPython:
		g.mapPython(schema, s, &res)
	}
	res.quality = extractionQuality(schema, &res) + 0.15*float64(attempt)
	if res.quality > 1 {
		res.quality = 1
	}
	return res
}

func schemaPrompt(schema TableSchema) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "table %s columns:", schema.QualifiedName())
	for _, c := range schema.Columns {
		fmt.Fprintf(&sb, " %s %s;", c.Name, c.Type)
	}
	return sb.String()
}

// mapSQL parses a SQL script and harvests semantics. Focus is restricted
// to columns of the given schema (the paper's hallucination mitigation).
func (g *Generator) mapSQL(schema TableSchema, s Script, res *mapResult, aggressiveness int) {
	// Comments carry analyst intent; attach leading comments to the table.
	for _, line := range strings.Split(s.Text, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "--") {
			comment := strings.TrimSpace(strings.TrimPrefix(trimmed, "--"))
			if comment != "" {
				res.tableDesc = append(res.tableDesc, comment)
			}
		}
	}
	stmt, err := sqlengine.Parse(stripComments(s.Text))
	if err != nil {
		return // non-SELECT scripts contribute comments only
	}
	inSchema := func(col string) bool { return schema.Column(col) != nil }

	// Select items: aliases name the business meaning of columns and
	// derived expressions.
	for _, item := range stmt.Items {
		switch e := item.Expr.(type) {
		case *sqlengine.ColumnRef:
			if !inSchema(e.Name) {
				continue
			}
			key := strings.ToLower(e.Name)
			if item.Alias != "" {
				res.colDesc[key] = append(res.colDesc[key],
					strings.Join(textutil.Tokenize(item.Alias), " "))
			}
			res.colUsage[key] = append(res.colUsage[key], "selected directly in reports")
		case *sqlengine.FuncCall:
			if len(e.Args) == 1 {
				if ref, ok := e.Args[0].(*sqlengine.ColumnRef); ok && inSchema(ref.Name) {
					key := strings.ToLower(ref.Name)
					res.colUsage[key] = append(res.colUsage[key],
						fmt.Sprintf("commonly aggregated with %s", e.Name))
					res.colTags[key] = append(res.colTags[key], "measure")
					if item.Alias != "" {
						res.colDesc[key] = append(res.colDesc[key],
							strings.Join(textutil.Tokenize(item.Alias), " "))
					}
				}
			}
		default:
			// Arithmetic over schema columns with an alias = derived column
			// business logic.
			refs := columnRefs(item.Expr)
			var related []string
			for _, r := range refs {
				if inSchema(r) {
					related = append(related, strings.ToLower(r))
				}
			}
			if item.Alias != "" && len(related) > 0 {
				res.derived = append(res.derived, DerivedColumn{
					Name:             strings.ToLower(item.Alias),
					Description:      strings.Join(textutil.Tokenize(item.Alias), " "),
					Usage:            "derived metric computed in daily reporting scripts",
					CalculationLogic: item.Expr.SQL(),
					RelatedColumns:   related,
					Tags:             []string{"derived", "measure"},
				})
			}
		}
	}
	// GROUP BY columns are dimensions.
	for _, gb := range stmt.GroupBy {
		if ref, ok := gb.(*sqlengine.ColumnRef); ok && inSchema(ref.Name) {
			key := strings.ToLower(ref.Name)
			res.colUsage[key] = append(res.colUsage[key], "used as a grouping dimension")
			res.colTags[key] = append(res.colTags[key], "dimension")
			res.keyColumns = append(res.keyColumns, key)
		}
	}
	// WHERE predicates reveal filter columns and value semantics.
	if stmt.Where != nil {
		g.harvestPredicates(schema, stmt.Where, res, aggressiveness)
	}
}

// harvestPredicates walks a WHERE tree collecting filter usage and value
// knowledge (column = 'literal' pairs).
func (g *Generator) harvestPredicates(schema TableSchema, e sqlengine.Expr, res *mapResult, aggressiveness int) {
	switch x := e.(type) {
	case *sqlengine.Binary:
		if x.Op == "AND" || x.Op == "OR" {
			g.harvestPredicates(schema, x.L, res, aggressiveness)
			g.harvestPredicates(schema, x.R, res, aggressiveness)
			return
		}
		ref, okL := x.L.(*sqlengine.ColumnRef)
		lit, okR := x.R.(*sqlengine.Literal)
		if okL && okR && schema.Column(ref.Name) != nil {
			key := strings.ToLower(ref.Name)
			res.colUsage[key] = append(res.colUsage[key], "commonly filtered in WHERE clauses")
			res.colTags[key] = append(res.colTags[key], "filter")
			if lit.Value.Kind == table.KindString && x.Op == "=" {
				res.values = append(res.values, ValueKnowledge{
					Column:      key,
					Table:       schema.Name,
					Value:       lit.Value.S,
					Description: fmt.Sprintf("a frequent value of %s", key),
				})
			}
		}
	case *sqlengine.In:
		if ref, ok := x.X.(*sqlengine.ColumnRef); ok && schema.Column(ref.Name) != nil {
			key := strings.ToLower(ref.Name)
			res.colUsage[key] = append(res.colUsage[key], "commonly filtered in WHERE clauses")
			for _, v := range x.Values {
				if lit, ok := v.(*sqlengine.Literal); ok && lit.Value.Kind == table.KindString {
					res.values = append(res.values, ValueKnowledge{
						Column: key, Table: schema.Name, Value: lit.Value.S,
						Description: fmt.Sprintf("a frequent value of %s", key),
					})
				}
			}
		}
	case *sqlengine.Between:
		if ref, ok := x.X.(*sqlengine.ColumnRef); ok && schema.Column(ref.Name) != nil {
			key := strings.ToLower(ref.Name)
			res.colUsage[key] = append(res.colUsage[key], "commonly used for range filters")
			res.colTags[key] = append(res.colTags[key], "filter")
		}
	case *sqlengine.Unary:
		g.harvestPredicates(schema, x.X, res, aggressiveness)
	}
}

// mapPython harvests semantics from pandas-style scripts with lightweight
// pattern matching: df["col"] accesses, rename maps, and comments.
func (g *Generator) mapPython(schema TableSchema, s Script, res *mapResult) {
	lines := strings.Split(s.Text, "\n")
	for _, line := range lines {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "#") {
			comment := strings.TrimSpace(strings.TrimPrefix(trimmed, "#"))
			if comment != "" {
				res.tableDesc = append(res.tableDesc, comment)
			}
			continue
		}
		// rename maps are gold: {"cryptic": "meaningful name"}.
		for _, c := range schema.Columns {
			key := strings.ToLower(c.Name)
			if !containsQuoted(line, c.Name) {
				continue
			}
			if strings.Contains(line, ".rename(") {
				if target := renameTarget(line, c.Name); target != "" {
					res.colDesc[key] = append(res.colDesc[key],
						strings.Join(textutil.Tokenize(target), " "))
				}
			}
			switch pandasRole(line, c.Name) {
			case "dimension":
				res.colUsage[key] = append(res.colUsage[key], "used as a grouping dimension")
				res.colTags[key] = append(res.colTags[key], "dimension")
				res.keyColumns = append(res.keyColumns, key)
			case "measure":
				res.colUsage[key] = append(res.colUsage[key], "commonly aggregated in analysis code")
				res.colTags[key] = append(res.colTags[key], "measure")
			case "filter":
				res.colUsage[key] = append(res.colUsage[key], "commonly filtered in analysis code")
				res.colTags[key] = append(res.colTags[key], "filter")
			default:
				res.colUsage[key] = append(res.colUsage[key], "referenced in analysis code")
			}
		}
	}
}

func containsQuoted(line, col string) bool {
	return strings.Contains(line, `"`+col+`"`) || strings.Contains(line, `'`+col+`'`)
}

// pandasRole classifies how a line uses a column, scoping the check to the
// relevant call's argument list so that a groupby+agg chain attributes the
// right role to each column.
func pandasRole(line, col string) string {
	if i := strings.Index(line, ".groupby("); i >= 0 {
		if j := strings.IndexByte(line[i:], ')'); j > 0 && containsQuoted(line[i:i+j], col) {
			return "dimension"
		}
	}
	if i := strings.Index(line, ".agg("); i >= 0 && containsQuoted(line[i:], col) {
		return "measure"
	}
	if strings.Contains(line, ".sum()") || strings.Contains(line, ".mean()") {
		return "measure"
	}
	if strings.Contains(line, "==") {
		return "filter"
	}
	return "reference"
}

// renameTarget extracts the rename destination for col in a pandas rename
// line such as: df = df.rename(columns={"ftime": "partition date"}).
func renameTarget(line, col string) string {
	for _, q := range []string{`"`, `'`} {
		needle := q + col + q + ":"
		i := strings.Index(line, needle)
		if i < 0 {
			continue
		}
		rest := line[i+len(needle):]
		rest = strings.TrimLeft(rest, " ")
		if len(rest) == 0 {
			continue
		}
		quote := rest[0]
		if quote != '"' && quote != '\'' {
			continue
		}
		end := strings.IndexByte(rest[1:], quote)
		if end < 0 {
			continue
		}
		return rest[1 : 1+end]
	}
	return ""
}

// columnRefs collects column names referenced anywhere in an expression.
func columnRefs(e sqlengine.Expr) []string {
	var out []string
	var walk func(sqlengine.Expr)
	walk = func(e sqlengine.Expr) {
		switch x := e.(type) {
		case *sqlengine.ColumnRef:
			out = append(out, x.Name)
		case *sqlengine.Binary:
			walk(x.L)
			walk(x.R)
		case *sqlengine.Unary:
			walk(x.X)
		case *sqlengine.FuncCall:
			for _, a := range x.Args {
				walk(a)
			}
		case *sqlengine.In:
			walk(x.X)
			for _, v := range x.Values {
				walk(v)
			}
		case *sqlengine.Between:
			walk(x.X)
			walk(x.Lo)
			walk(x.Hi)
		case *sqlengine.IsNull:
			walk(x.X)
		case *sqlengine.CaseExpr:
			for _, w := range x.Whens {
				walk(w.Cond)
				walk(w.Result)
			}
			if x.Else != nil {
				walk(x.Else)
			}
		}
	}
	walk(e)
	return out
}

// extractionQuality measures how much of the schema the fragment covers;
// it feeds the self-calibration judge.
func extractionQuality(schema TableSchema, res *mapResult) float64 {
	if len(schema.Columns) == 0 {
		return 1
	}
	covered := 0
	for _, c := range schema.Columns {
		key := strings.ToLower(c.Name)
		if len(res.colDesc[key]) > 0 || len(res.colUsage[key]) > 0 {
			covered++
		}
	}
	return float64(covered) / float64(len(schema.Columns))
}

// selfCalibrate returns the simulated 1-5 judge score for a map result.
func (g *Generator) selfCalibrate(s Script, res mapResult) float64 {
	g.Client.Charge("judge knowledge for "+s.ID, "score")
	return g.Client.Score("calib:"+res.scriptID, 1, 5, res.quality)
}

// reduce synthesizes map results into the final Bundle (lines 10-11 of
// Algorithm 1): aggregate fragments, deduplicate, resolve conflicts by
// majority, and fill defaults from the raw schema.
func (g *Generator) reduce(schema TableSchema, results []mapResult) *Bundle {
	g.Client.Charge(fmt.Sprintf("synthesize %d fragments for %s", len(results), schema.QualifiedName()), "bundle")

	b := &Bundle{
		Database: DatabaseKnowledge{
			Name:        schema.Database,
			Description: fmt.Sprintf("database %s", schema.Database),
			Usage:       "business reporting and analysis",
			Tags:        []string{"warehouse"},
		},
		Table: TableKnowledge{
			Name:     schema.Name,
			Database: schema.Database,
			Tags:     []string{"table"},
		},
	}

	var tableFrags []string
	keyCols := map[string]int{}
	derivedByName := map[string]DerivedColumn{}
	valueSeen := map[string]bool{}
	colFrags := map[string]*struct {
		desc, usage, tags []string
	}{}
	for _, res := range results {
		tableFrags = append(tableFrags, res.tableDesc...)
		for _, k := range res.keyColumns {
			keyCols[k]++
		}
		for _, d := range res.derived {
			if prev, ok := derivedByName[d.Name]; !ok || len(d.CalculationLogic) > len(prev.CalculationLogic) {
				derivedByName[d.Name] = d
			}
		}
		for _, v := range res.values {
			key := v.Column + "=" + v.Value
			if !valueSeen[key] {
				valueSeen[key] = true
				b.Values = append(b.Values, v)
			}
		}
		for col, frags := range res.colDesc {
			entry := colFrags[col]
			if entry == nil {
				entry = &struct{ desc, usage, tags []string }{}
				colFrags[col] = entry
			}
			entry.desc = append(entry.desc, frags...)
		}
		for col, frags := range res.colUsage {
			entry := colFrags[col]
			if entry == nil {
				entry = &struct{ desc, usage, tags []string }{}
				colFrags[col] = entry
			}
			entry.usage = append(entry.usage, frags...)
		}
		for col, tags := range res.colTags {
			entry := colFrags[col]
			if entry == nil {
				entry = &struct{ desc, usage, tags []string }{}
				colFrags[col] = entry
			}
			entry.tags = append(entry.tags, tags...)
		}
	}

	// The table description leads with the script comments and folds in
	// the semantics of the most-used columns, which is how the reduce-
	// phase prompt asks for it.
	var keyColDescs []string
	for _, key := range topKeys(keyCols, 2) {
		if frag := colFrags[key]; frag != nil && len(frag.desc) > 0 {
			keyColDescs = append(keyColDescs, frag.desc[0])
		}
	}
	b.Table.Description = synthesizeText(append(tableFrags, fmt.Sprintf(
		"business table tracking %s", strings.Join(keyColDescs, " by "))),
		fmt.Sprintf("business table %s", schema.Name))
	b.Table.Usage = "queried by daily reporting and ad-hoc analysis scripts"
	b.Table.Organization = "partitioned business warehouse table"
	b.Table.KeyColumns = topKeys(keyCols, 5)

	// Column knowledge: every schema column gets an entry; generated
	// fragments fill in semantics where scripts revealed them.
	for _, c := range schema.Columns {
		key := strings.ToLower(c.Name)
		ck := ColumnKnowledge{
			Name:  key,
			Table: schema.Name,
			Type:  c.Type,
		}
		if frag := colFrags[key]; frag != nil {
			ck.Description = synthesizeText(frag.desc, c.Comment)
			ck.Usage = synthesizeText(dedupeStrings(frag.usage), "")
			ck.Tags = dedupeStrings(frag.tags)
		} else {
			// Honest failure mode: nothing was learnable beyond any
			// warehouse comment that happened to exist.
			ck.Description = c.Comment
		}
		b.Columns = append(b.Columns, ck)
	}

	// Attach derived columns to their first related column.
	var derivedNames []string
	for name := range derivedByName {
		derivedNames = append(derivedNames, name)
	}
	sort.Strings(derivedNames)
	for _, name := range derivedNames {
		d := derivedByName[name]
		if len(d.RelatedColumns) == 0 {
			continue
		}
		if ck := b.ColumnByName(d.RelatedColumns[0]); ck != nil {
			ck.Derived = append(ck.Derived, d)
		}
		b.Table.KeyDerived = append(b.Table.KeyDerived, name)
	}
	return b
}

// synthesizeText merges fragments into a single deduplicated description.
func synthesizeText(frags []string, fallback string) string {
	uniq := dedupeStrings(frags)
	if len(uniq) == 0 {
		return fallback
	}
	if len(uniq) > 4 {
		uniq = uniq[:4]
	}
	return strings.Join(uniq, "; ")
}

func dedupeStrings(xs []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, x := range xs {
		k := strings.ToLower(strings.TrimSpace(x))
		if k == "" || seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, strings.TrimSpace(x))
	}
	return out
}

func topKeys(counts map[string]int, k int) []string {
	type kv struct {
		key string
		n   int
	}
	var kvs []kv
	for key, n := range counts {
		kvs = append(kvs, kv{key, n})
	}
	sort.Slice(kvs, func(a, b int) bool {
		if kvs[a].n != kvs[b].n {
			return kvs[a].n > kvs[b].n
		}
		return kvs[a].key < kvs[b].key
	})
	var out []string
	for i := 0; i < len(kvs) && i < k; i++ {
		out = append(out, kvs[i].key)
	}
	return out
}

// stripComments removes SQL line comments so the parser sees clean text.
func stripComments(sql string) string {
	var lines []string
	for _, line := range strings.Split(sql, "\n") {
		if i := strings.Index(line, "--"); i >= 0 {
			line = line[:i]
		}
		lines = append(lines, line)
	}
	return strings.Join(lines, "\n")
}
