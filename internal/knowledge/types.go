// Package knowledge implements DataLab's Domain Knowledge Incorporation
// module (§IV): LLM-based knowledge generation from script history
// (Algorithm 1), organization into a knowledge graph with task-aware
// indexes, and utilization — query rewrite, coarse-to-fine retrieval
// (Algorithm 2), DSL translation — plus the data-profiling fallback for
// in-the-wild tables.
package knowledge

import (
	"fmt"
	"strings"
)

// ColumnSchema is the raw schema of one column as stored in the warehouse:
// frequently just a cryptic name and a type, per the paper's finding that
// 85% of enterprise tables lack comprehensive metadata.
type ColumnSchema struct {
	Name    string
	Type    string // warehouse type name: bigint, double, string, date...
	Comment string // often empty in practice
}

// TableSchema is the raw schema of one table.
type TableSchema struct {
	Database string
	Name     string
	Comment  string
	Columns  []ColumnSchema
}

// QualifiedName returns db.table.
func (s TableSchema) QualifiedName() string {
	if s.Database == "" {
		return s.Name
	}
	return s.Database + "." + s.Name
}

// Column returns the named column schema, or nil.
func (s TableSchema) Column(name string) *ColumnSchema {
	for i := range s.Columns {
		if strings.EqualFold(s.Columns[i].Name, name) {
			return &s.Columns[i]
		}
	}
	return nil
}

// ScriptLanguage tags a historical data-processing script.
type ScriptLanguage string

// Supported script languages.
const (
	LangSQL    ScriptLanguage = "sql"
	LangPython ScriptLanguage = "python"
)

// Script is one historical data-processing script associated with a table
// — the paper's key observation is that these scripts, written by
// professionals and run daily, reveal the semantics of cryptic schemas.
type Script struct {
	ID       string
	Language ScriptLanguage
	Text     string
}

// LineageEdge records that a target table/column is derived from a source
// — the auxiliary signal used when script history is thin.
type LineageEdge struct {
	FromTable  string
	FromColumn string // optional
	ToTable    string
	ToColumn   string // optional
	Transform  string // free-text description of the transformation
}

// DerivedColumn is business logic for a column that does not exist in the
// raw table but is routinely computed from it.
type DerivedColumn struct {
	Name             string   `json:"name"`
	Description      string   `json:"description"`
	Usage            string   `json:"usage"`
	CalculationLogic string   `json:"calculation_logic"`
	RelatedColumns   []string `json:"related_columns"`
	Tags             []string `json:"tags"`
}

// ColumnKnowledge is the generated knowledge for one column (§IV-A,
// column level).
type ColumnKnowledge struct {
	Name        string          `json:"name"`
	Table       string          `json:"table"`
	Description string          `json:"description"`
	Usage       string          `json:"usage"`
	Type        string          `json:"type"`
	Tags        []string        `json:"tags"`
	Derived     []DerivedColumn `json:"derived,omitempty"`
}

// TableKnowledge is the generated knowledge for one table (§IV-A, table
// level).
type TableKnowledge struct {
	Name         string   `json:"name"`
	Database     string   `json:"database"`
	Description  string   `json:"description"`
	Usage        string   `json:"usage"`
	Organization string   `json:"organization"`
	KeyColumns   []string `json:"key_columns"`
	KeyDerived   []string `json:"key_derived_attributes"`
	Tags         []string `json:"tags"`
}

// DatabaseKnowledge is the generated knowledge for one database.
type DatabaseKnowledge struct {
	Name        string   `json:"name"`
	Description string   `json:"description"`
	Usage       string   `json:"usage"`
	Tags        []string `json:"tags"`
}

// ValueKnowledge records the meaning of a specific cell value (e.g. a
// product code) so conditions can be linked from query terms.
type ValueKnowledge struct {
	Column      string   `json:"column"`
	Table       string   `json:"table"`
	Value       string   `json:"value"`
	Description string   `json:"description"`
	Aliases     []string `json:"aliases,omitempty"`
}

// JargonEntry is an enterprise-glossary term (§IV-A: jargon is curated,
// not generated). Expansion may reference a derived column or a filter.
type JargonEntry struct {
	Term       string   `json:"term"`
	Definition string   `json:"definition"`
	Aliases    []string `json:"aliases,omitempty"`
	// MapsToColumn optionally names the table column or derived column the
	// term denotes, e.g. ARPU -> derived arpu on revenue table.
	MapsToColumn string `json:"maps_to_column,omitempty"`
	MapsToTable  string `json:"maps_to_table,omitempty"`
	// MapsToValue optionally names a condition the term implies,
	// e.g. "TencentBI" -> prod_class4_name = 'TencentBI'.
	MapsToValue string `json:"maps_to_value,omitempty"`
}

// Bundle is the complete generated knowledge for one table: the output of
// Algorithm 1's reduce phase.
type Bundle struct {
	Database DatabaseKnowledge `json:"database"`
	Table    TableKnowledge    `json:"table"`
	Columns  []ColumnKnowledge `json:"columns"`
	Values   []ValueKnowledge  `json:"values,omitempty"`
}

// ColumnByName finds generated column knowledge by name.
func (b *Bundle) ColumnByName(name string) *ColumnKnowledge {
	for i := range b.Columns {
		if strings.EqualFold(b.Columns[i].Name, name) {
			return &b.Columns[i]
		}
	}
	return nil
}

// Level is the knowledge-availability setting of the Table II ablation.
type Level int

// Ablation settings (§VII-C.2).
const (
	LevelNone    Level = iota // S1: schema only
	LevelPartial              // S2: + descriptions, usage, tags
	LevelFull                 // S3: + derived-column calculation logic etc.
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelNone:
		return "S1(no knowledge)"
	case LevelPartial:
		return "S2(partial knowledge)"
	case LevelFull:
		return "S3(all knowledge)"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}
