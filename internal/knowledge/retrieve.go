package knowledge

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"datalab/internal/embed"
	"datalab/internal/index"
	"datalab/internal/llm"
	"datalab/internal/textutil"
)

// Retriever runs Algorithm 2 (coarse-to-fine knowledge retrieval) plus the
// query-rewrite step that precedes it.
type Retriever struct {
	Graph  *Graph
	Client *llm.Client
	// Weights for the fine-grained ordering stage (ω1 lexical, ω2 semantic,
	// ω3 LLM-judged overall relevance).
	LexWeight, SemWeight, LLMWeight float64
	// CoarseK is the loose coarse-retrieval cutoff (recall-oriented).
	CoarseK int
	// Now anchors temporal-reference standardization.
	Now time.Time
}

// NewRetriever returns a retriever with the paper's default weighting.
func NewRetriever(g *Graph, client *llm.Client) *Retriever {
	return &Retriever{
		Graph:     g,
		Client:    client,
		LexWeight: 0.4, SemWeight: 0.4, LLMWeight: 0.2,
		CoarseK: 150,
		Now:     time.Date(2024, 11, 21, 0, 0, 0, 0, time.UTC),
	}
}

// Rewrite enhances a raw query: it resolves elliptical follow-ups
// ("what about this year?") against chat history and standardizes
// temporal references against the current time (§IV-C, Query Rewrite).
func (r *Retriever) Rewrite(query string, history []string) string {
	out := strings.TrimSpace(query)

	// Temporal standardization first, so a follow-up like "what about
	// this year?" contributes a concrete year before prior context (with
	// its stale temporal terms) is merged in.
	out = r.standardizeTemporal(out)

	// Elliptical follow-up: import the prior query's content terms.
	lower := strings.ToLower(out)
	elliptical := strings.HasPrefix(strings.ToLower(query), "what about") ||
		strings.HasPrefix(strings.ToLower(query), "how about") ||
		strings.HasPrefix(strings.ToLower(query), "and for") ||
		len(textutil.ContentTokens(lower)) <= 2
	if elliptical && len(history) > 0 {
		prev := history[len(history)-1]
		prevTokens := textutil.ContentTokens(prev)
		curTokens := textutil.ContentTokens(out)
		curSet := map[string]bool{}
		for _, t := range curTokens {
			curSet[t] = true
		}
		merged := append([]string{}, curTokens...)
		for _, t := range prevTokens {
			if !curSet[t] && !isTemporalToken(t) {
				merged = append(merged, t)
			}
		}
		out = strings.Join(merged, " ")
	}
	r.Client.Charge("rewrite: "+query, out)
	return out
}

func (r *Retriever) standardizeTemporal(out string) string {
	replacements := []struct{ phrase, repl string }{
		{"this year", fmt.Sprintf("in %d", r.Now.Year())},
		{"last year", fmt.Sprintf("in %d", r.Now.Year()-1)},
		{"this month", fmt.Sprintf("in %d-%02d", r.Now.Year(), int(r.Now.Month()))},
		{"last month", lastMonth(r.Now)},
		{"today", "on " + r.Now.Format("2006-01-02")},
		{"yesterday", "on " + r.Now.AddDate(0, 0, -1).Format("2006-01-02")},
	}
	outLower := strings.ToLower(out)
	for _, rp := range replacements {
		for {
			i := strings.Index(outLower, rp.phrase)
			if i < 0 {
				break
			}
			out = out[:i] + rp.repl + out[i+len(rp.phrase):]
			outLower = strings.ToLower(out)
		}
	}
	return out
}

func lastMonth(now time.Time) string {
	prev := now.AddDate(0, -1, 0)
	return fmt.Sprintf("in %d-%02d", prev.Year(), int(prev.Month()))
}

func isTemporalToken(t string) bool {
	if _, err := strconv.Atoi(t); err == nil && len(t) == 4 {
		return true
	}
	switch t {
	case "year", "month", "day", "today", "yesterday", "last", "quarter":
		return true
	}
	return false
}

// Scored is one retrieved node with its weighted matching score.
type Scored struct {
	Node  *Node
	Score float64
}

// Retrieve implements Algorithm 2: coarse lexical+semantic retrieval with
// a loose threshold, alias backtracking, fine-grained weighted ordering,
// and top-K selection.
func (r *Retriever) Retrieve(query string, topK int) []Scored {
	return r.retrieve(query, topK, false)
}

// RetrieveLight retrieves against the task-aware light index (names +
// descriptions only) — the right index for schema linking, where long
// calculation-logic text only dilutes term statistics.
func (r *Retriever) RetrieveLight(query string, topK int) []Scored {
	return r.retrieve(query, topK, true)
}

func (r *Retriever) retrieve(query string, topK int, light bool) []Scored {
	lexIx, vecIx := r.Graph.lex, r.Graph.vec
	if light {
		lexIx, vecIx = r.Graph.lexLight, r.Graph.vecLight
	}
	coarseLex := lexIx.Search(query, r.CoarseK)
	coarseSem := vecIx.Search(query, r.CoarseK)
	merged := index.Merge(coarseLex, coarseSem, r.CoarseK*2)

	// Backtrack aliases to primaries; deduplicate.
	seen := map[string]bool{}
	var candidates []*Node
	for _, h := range merged {
		n := r.Graph.Backtrack(h.ID)
		if n == nil || seen[n.ID] {
			continue
		}
		seen[n.ID] = true
		candidates = append(candidates, n)
	}

	qTokens := textutil.ContentTokens(query)
	qVec := embed.Text(query)
	scored := make([]Scored, 0, len(candidates))
	for _, n := range candidates {
		content := n.Name + " " + n.Component("description") + " " + n.Component("usage") + " " + n.Component("definition")
		lexScore := textutil.OverlapRatio(textutil.ContentTokens(n.Name), qTokens)*0.6 +
			textutil.OverlapRatio(qTokens, textutil.ContentTokens(content))*0.4
		semScore := embed.Cosine(qVec, embed.Text(content))
		if semScore < 0 {
			semScore = 0
		}
		// The LLM relevance judgment concentrates around the mean of the
		// two mechanical signals — it mostly agrees, with bounded noise.
		llmScore := r.Client.Score("rel:"+n.ID+"|"+query, 0, 1, (lexScore+semScore)/2)
		s := r.LexWeight*lexScore + r.SemWeight*semScore + r.LLMWeight*llmScore
		scored = append(scored, Scored{Node: n, Score: s})
	}
	sort.Slice(scored, func(a, b int) bool {
		if scored[a].Score != scored[b].Score {
			return scored[a].Score > scored[b].Score
		}
		return scored[a].Node.ID < scored[b].Node.ID
	})
	if len(scored) > topK {
		scored = scored[:topK]
	}
	return scored
}

// RetrieveColumnsScoped retrieves column nodes belonging to one table —
// the path agents take once the proxy has fixed the target table. Without
// scoping, homonymous columns from sibling tables (every table has a
// net_margin) crowd the candidate list.
func (r *Retriever) RetrieveColumnsScoped(query, tableName string, topK int) []Scored {
	prefix := "column:" + strings.ToLower(tableName) + "."
	all := r.RetrieveColumns(query, r.CoarseK)
	var out []Scored
	for _, s := range all {
		if strings.HasPrefix(s.Node.ID, prefix) {
			out = append(out, s)
			if len(out) == topK {
				break
			}
		}
	}
	return out
}

// RetrieveColumns is a convenience wrapper returning only column nodes
// (the schema-linking task consumes these).
func (r *Retriever) RetrieveColumns(query string, topK int) []Scored {
	all := r.RetrieveLight(query, r.CoarseK)
	var cols []Scored
	for _, s := range all {
		if s.Node.Type == NodeColumn {
			cols = append(cols, s)
			continue
		}
		// Jargon nodes that map to a column count as retrieving it.
		if s.Node.Type == NodeJargon {
			if col := s.Node.Component("maps_to_column"); col != "" {
				tbl := s.Node.Component("maps_to_table")
				if n, ok := r.Graph.Node(ColumnID(tbl, col)); ok {
					cols = append(cols, Scored{Node: n, Score: s.Score})
					continue
				}
				// Derived columns hang off their base column.
				for _, id := range r.Graph.NodesOfType(NodeColumn) {
					n, _ := r.Graph.Node(id)
					if n != nil && strings.EqualFold(n.Name, col) {
						cols = append(cols, Scored{Node: n, Score: s.Score})
						break
					}
				}
			}
		}
	}
	// Deduplicate preserving best score order.
	seen := map[string]bool{}
	var out []Scored
	for _, s := range cols {
		if seen[s.Node.ID] {
			continue
		}
		seen[s.Node.ID] = true
		out = append(out, s)
		if len(out) == topK {
			break
		}
	}
	return out
}
