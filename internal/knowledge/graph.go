package knowledge

import (
	"fmt"
	"sort"
	"strings"

	"datalab/internal/index"
)

// NodeType enumerates the knowledge-graph node types (§IV-B, Figure 4).
type NodeType string

// Primary node types plus the alias node type.
const (
	NodeDatabase NodeType = "database"
	NodeTable    NodeType = "table"
	NodeColumn   NodeType = "column"
	NodeValue    NodeType = "value"
	NodeJargon   NodeType = "jargon"
	NodeAlias    NodeType = "alias"
)

// Node is one knowledge-graph node: a named bag of components.
type Node struct {
	ID   string
	Type NodeType
	Name string
	// Components are the knowledge fields: description, usage, tags,
	// calculation_logic, type, value...
	Components map[string]string
	// Parent is the logical parent (column -> table -> database); alias
	// nodes point at the primary node they denote.
	Parent string
}

// Component returns a component value or "".
func (n *Node) Component(key string) string {
	if n.Components == nil {
		return ""
	}
	return n.Components[key]
}

// Graph is the knowledge graph with its two task-aware retrieval indexes.
type Graph struct {
	nodes map[string]*Node
	// children maps a node to its logical children (tree edges).
	children map[string][]string
	// aliases maps a primary node to its alias node IDs (associative edges).
	aliases map[string][]string

	// Task-aware indexes (§IV-B): the full index concatenates every
	// component including calculation logic (NL2DSL-style tasks match on
	// formula vocabulary); the light index holds descriptions/usage only
	// (schema linking needs precision, and long calculation text dilutes
	// term statistics).
	lex      *index.Lexical
	vec      *index.Vector
	lexLight *index.Lexical
	vecLight *index.Vector
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		nodes:    map[string]*Node{},
		children: map[string][]string{},
		aliases:  map[string][]string{},
		lex:      index.NewLexical(),
		vec:      index.NewVector(),
		lexLight: index.NewLexical(),
		vecLight: index.NewVector(),
	}
}

// Clone returns a copy-on-write snapshot of the graph: fresh maps, edge
// slices, and retrieval indexes, sharing only the immutable *Node values
// (nodes are never mutated after insertion — re-adding an ID replaces the
// pointer). Mutating the clone (AddBundle, AddJargon, AddAlias) leaves the
// original untouched, so in-flight readers of the original are safe while
// a writer prepares the next snapshot. See Platform.LearnKnowledge for the
// swap protocol.
func (g *Graph) Clone() *Graph {
	ng := &Graph{
		nodes:    make(map[string]*Node, len(g.nodes)),
		children: make(map[string][]string, len(g.children)),
		aliases:  make(map[string][]string, len(g.aliases)),
		lex:      g.lex.Clone(),
		vec:      g.vec.Clone(),
		lexLight: g.lexLight.Clone(),
		vecLight: g.vecLight.Clone(),
	}
	for id, n := range g.nodes {
		ng.nodes[id] = n
	}
	for id, kids := range g.children {
		ng.children[id] = append([]string(nil), kids...)
	}
	for id, as := range g.aliases {
		ng.aliases[id] = append([]string(nil), as...)
	}
	return ng
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// Node returns a node by ID.
func (g *Graph) Node(id string) (*Node, bool) {
	n, ok := g.nodes[id]
	return n, ok
}

// NodesOfType returns all node IDs of the given type, sorted.
func (g *Graph) NodesOfType(t NodeType) []string {
	var out []string
	for id, n := range g.nodes {
		if n.Type == t {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Children returns the logical children of a node.
func (g *Graph) Children(id string) []string { return g.children[id] }

// addNode inserts a node and indexes it.
func (g *Graph) addNode(n *Node) {
	g.nodes[n.ID] = n
	if n.Parent != "" {
		g.children[n.Parent] = append(g.children[n.Parent], n.ID)
	}
	if n.Type == NodeAlias {
		g.aliases[n.Parent] = append(g.aliases[n.Parent], n.ID)
	}
	g.indexNode(n)
}

// indexNode builds the {name, content, tag} triplet for both indexes.
// The content field concatenates components; description and usage carry
// retrieval weight for every task, calculation logic is included so
// NL2DSL-style tasks can match on formula vocabulary.
func (g *Graph) indexNode(n *Node) {
	var parts []string
	for _, key := range []string{"description", "usage", "calculation_logic", "definition", "value"} {
		if v := n.Component(key); v != "" {
			parts = append(parts, v)
		}
	}
	e := index.Entry{
		ID:      n.ID,
		Name:    n.Name,
		Content: strings.Join(parts, " "),
		Tag:     string(n.Type) + " " + n.Component("tags"),
	}
	g.lex.Add(e)
	g.vec.Add(e)

	var lightParts []string
	for _, key := range []string{"description", "usage", "definition"} {
		if v := n.Component(key); v != "" {
			lightParts = append(lightParts, v)
		}
	}
	light := index.Entry{
		ID:      n.ID,
		Name:    n.Name,
		Content: strings.Join(lightParts, " "),
		Tag:     e.Tag,
	}
	g.lexLight.Add(light)
	g.vecLight.Add(light)
}

// Backtrack resolves an alias node to its primary node; primary nodes
// return themselves (Algorithm 2, line 7).
func (g *Graph) Backtrack(id string) *Node {
	n, ok := g.nodes[id]
	if !ok {
		return nil
	}
	for n.Type == NodeAlias {
		parent, ok := g.nodes[n.Parent]
		if !ok {
			return n
		}
		n = parent
	}
	return n
}

// ColumnID builds the canonical column node ID.
func ColumnID(tableName, column string) string {
	return "column:" + strings.ToLower(tableName) + "." + strings.ToLower(column)
}

// TableID builds the canonical table node ID.
func TableID(db, tableName string) string {
	if db != "" {
		return "table:" + strings.ToLower(db) + "." + strings.ToLower(tableName)
	}
	return "table:" + strings.ToLower(tableName)
}

// AddBundle loads a generated knowledge bundle into the graph, respecting
// the ablation level: LevelNone loads bare names only, LevelPartial adds
// descriptions/usage/tags, LevelFull adds derived-column logic and values.
func (g *Graph) AddBundle(b *Bundle, level Level) {
	dbID := "database:" + strings.ToLower(b.Database.Name)
	if _, ok := g.nodes[dbID]; !ok && b.Database.Name != "" {
		comp := map[string]string{}
		if level >= LevelPartial {
			comp["description"] = b.Database.Description
			comp["usage"] = b.Database.Usage
			comp["tags"] = strings.Join(b.Database.Tags, " ")
		}
		g.addNode(&Node{ID: dbID, Type: NodeDatabase, Name: b.Database.Name, Components: comp})
	}

	tID := TableID(b.Database.Name, b.Table.Name)
	tComp := map[string]string{}
	if level >= LevelPartial {
		tComp["description"] = b.Table.Description
		tComp["usage"] = b.Table.Usage
		tComp["tags"] = strings.Join(b.Table.Tags, " ")
	}
	if level >= LevelFull {
		tComp["organization"] = b.Table.Organization
		tComp["key_columns"] = strings.Join(b.Table.KeyColumns, " ")
		tComp["key_derived"] = strings.Join(b.Table.KeyDerived, " ")
	}
	g.addNode(&Node{ID: tID, Type: NodeTable, Name: b.Table.Name, Components: tComp, Parent: dbID})

	for _, ck := range b.Columns {
		cID := ColumnID(b.Table.Name, ck.Name)
		comp := map[string]string{"type": ck.Type}
		if level >= LevelPartial {
			comp["description"] = ck.Description
			comp["usage"] = ck.Usage
			comp["tags"] = strings.Join(ck.Tags, " ")
		}
		g.addNode(&Node{ID: cID, Type: NodeColumn, Name: ck.Name, Components: comp, Parent: tID})

		if level >= LevelFull {
			for _, d := range ck.Derived {
				dID := cID + "#" + d.Name
				g.addNode(&Node{
					ID:   dID,
					Type: NodeColumn,
					Name: d.Name,
					Components: map[string]string{
						"description":       d.Description,
						"usage":             d.Usage,
						"calculation_logic": d.CalculationLogic,
						"tags":              strings.Join(d.Tags, " ") + " derived",
						"related_columns":   strings.Join(d.RelatedColumns, " "),
					},
					Parent: cID,
				})
			}
		}
	}
	if level >= LevelFull {
		for _, v := range b.Values {
			vID := fmt.Sprintf("value:%s.%s=%s", strings.ToLower(v.Table), v.Column, strings.ToLower(v.Value))
			g.addNode(&Node{
				ID:   vID,
				Type: NodeValue,
				Name: v.Value,
				Components: map[string]string{
					"description": v.Description,
					"value":       v.Value,
				},
				Parent: ColumnID(v.Table, v.Column),
			})
			for _, alias := range v.Aliases {
				g.AddAlias(alias, vID)
			}
		}
	}
}

// AddJargon loads a glossary entry as a jargon node plus alias nodes.
func (g *Graph) AddJargon(j JargonEntry) {
	jID := "jargon:" + strings.ToLower(j.Term)
	comp := map[string]string{
		"definition": j.Definition,
	}
	if j.MapsToColumn != "" {
		comp["maps_to_column"] = strings.ToLower(j.MapsToColumn)
	}
	if j.MapsToTable != "" {
		comp["maps_to_table"] = strings.ToLower(j.MapsToTable)
	}
	if j.MapsToValue != "" {
		comp["maps_to_value"] = j.MapsToValue
	}
	g.addNode(&Node{ID: jID, Type: NodeJargon, Name: j.Term, Components: comp})
	for _, a := range j.Aliases {
		g.AddAlias(a, jID)
	}
}

// AddAlias registers an alternative term for a primary node. Alias nodes
// may be added dynamically in deployment as glossaries evolve.
func (g *Graph) AddAlias(alias, primaryID string) {
	aID := "alias:" + strings.ToLower(alias) + "->" + primaryID
	g.addNode(&Node{ID: aID, Type: NodeAlias, Name: alias, Parent: primaryID})
}
