package knowledge

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"datalab/internal/index"
)

// NodeType enumerates the knowledge-graph node types (§IV-B, Figure 4).
type NodeType string

// Primary node types plus the alias node type.
const (
	NodeDatabase NodeType = "database"
	NodeTable    NodeType = "table"
	NodeColumn   NodeType = "column"
	NodeValue    NodeType = "value"
	NodeJargon   NodeType = "jargon"
	NodeAlias    NodeType = "alias"
)

// Node is one knowledge-graph node: a named bag of components.
type Node struct {
	ID   string
	Type NodeType
	Name string
	// Components are the knowledge fields: description, usage, tags,
	// calculation_logic, type, value...
	Components map[string]string
	// Parent is the logical parent (column -> table -> database); alias
	// nodes point at the primary node they denote.
	Parent string
}

// Component returns a component value or "".
func (n *Node) Component(key string) string {
	if n.Components == nil {
		return ""
	}
	return n.Components[key]
}

// graphSeg is one stratum of the segmented graph: nodes and edges added
// since the previous snapshot. Sealed segments are immutable and shared
// between a graph and its clones.
type graphSeg struct {
	nodes map[string]*Node
	// children maps a node to the logical children added in this segment.
	children map[string][]string
	// aliases maps a primary node to the alias node IDs added here.
	aliases map[string][]string
}

func newGraphSeg() *graphSeg {
	return &graphSeg{nodes: map[string]*Node{}, children: map[string][]string{}, aliases: map[string][]string{}}
}

// maxSegs bounds the sealed-segment chain before a clone folds it into a
// single segment; the same amortization as the retrieval indexes' layer
// cap (see internal/index).
const maxSegs = 8

// Graph is the knowledge graph with its two task-aware retrieval indexes.
// It uses the same layered persistent structure as the chunked table
// storage: immutable sealed segments plus one private mutable tail, so
// Clone costs O(segments) instead of O(graph). There is no node removal;
// re-adding an ID shadows the older definition (newest segment wins).
//
// Concurrency contract (unchanged from the monolithic graph): any number
// of readers may use a graph concurrently with Clone, but mutation is
// single-writer and must happen on a private (cloned, not yet published)
// graph — Platform.LearnKnowledge's swap protocol. sealed is atomic only
// so concurrent Clones of one shared graph never race with each other.
type Graph struct {
	segs   []*graphSeg
	sealed atomic.Int32 // segs[:sealed] are immutable and shared with clones
	nNodes int

	// Task-aware indexes (§IV-B): the full index concatenates every
	// component including calculation logic (NL2DSL-style tasks match on
	// formula vocabulary); the light index holds descriptions/usage only
	// (schema linking needs precision, and long calculation text dilutes
	// term statistics).
	lex      *index.Lexical
	vec      *index.Vector
	lexLight *index.Lexical
	vecLight *index.Vector
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		lex:      index.NewLexical(),
		vec:      index.NewVector(),
		lexLight: index.NewLexical(),
		vecLight: index.NewVector(),
	}
}

// Clone returns a copy-on-write snapshot of the graph: the mutable tail
// segment is sealed and every sealed segment (and index layer) is shared,
// so the cost is proportional to the number of snapshots taken since the
// last fold, not to the graph. Mutating the clone (AddBundle, AddJargon,
// AddAlias) writes only its own fresh tail segment and leaves the
// original untouched, so in-flight readers of the original are safe while
// a writer prepares the next snapshot. See Platform.LearnKnowledge for
// the swap protocol.
func (g *Graph) Clone() *Graph {
	g.sealed.Store(int32(len(g.segs))) // the tail is now immutable for both sides
	ng := &Graph{
		segs:     append([]*graphSeg(nil), g.segs...),
		nNodes:   g.nNodes,
		lex:      g.lex.Clone(),
		vec:      g.vec.Clone(),
		lexLight: g.lexLight.Clone(),
		vecLight: g.vecLight.Clone(),
	}
	ng.sealed.Store(int32(len(ng.segs)))
	if len(ng.segs) > maxSegs {
		ng.compact()
	}
	return ng
}

// compact folds all segments of a freshly built clone (not yet visible to
// any other goroutine) into one, preserving edge order and the
// newest-definition-wins node resolution.
func (g *Graph) compact() {
	merged := newGraphSeg()
	for _, s := range g.segs { // oldest -> newest: later definitions win
		for id, n := range s.nodes {
			merged.nodes[id] = n
		}
		for id, kids := range s.children {
			merged.children[id] = append(merged.children[id], kids...)
		}
		for id, as := range s.aliases {
			merged.aliases[id] = append(merged.aliases[id], as...)
		}
	}
	g.segs = []*graphSeg{merged}
	g.sealed.Store(1)
}

// tail returns the mutable tail segment, opening one when every current
// segment is sealed (i.e. after a Clone).
func (g *Graph) tail() *graphSeg {
	if int(g.sealed.Load()) == len(g.segs) {
		g.segs = append(g.segs, newGraphSeg())
	}
	return g.segs[len(g.segs)-1]
}

// NumNodes returns the number of distinct node IDs.
func (g *Graph) NumNodes() int { return g.nNodes }

// Node returns a node by ID; the newest segment's definition wins.
func (g *Graph) Node(id string) (*Node, bool) {
	for si := len(g.segs) - 1; si >= 0; si-- {
		if n, ok := g.segs[si].nodes[id]; ok {
			return n, true
		}
	}
	return nil, false
}

// NodesOfType returns all node IDs of the given type, sorted. A re-added
// ID is classified by its newest definition.
func (g *Graph) NodesOfType(t NodeType) []string {
	seen := map[string]bool{}
	var out []string
	for si := len(g.segs) - 1; si >= 0; si-- {
		for id, n := range g.segs[si].nodes {
			if seen[id] {
				continue
			}
			seen[id] = true
			if n.Type == t {
				out = append(out, id)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Children returns the logical children of a node, in insertion order
// across segments.
func (g *Graph) Children(id string) []string {
	var only []string
	found := 0
	for _, s := range g.segs {
		if kids := s.children[id]; len(kids) > 0 {
			only = kids
			found++
		}
	}
	if found <= 1 {
		return only // common case: one segment holds all edges, zero copy
	}
	var out []string
	for _, s := range g.segs {
		out = append(out, s.children[id]...)
	}
	return out
}

// Aliases returns the alias node IDs of a primary node, in insertion
// order across segments.
func (g *Graph) Aliases(id string) []string {
	var out []string
	for _, s := range g.segs {
		out = append(out, s.aliases[id]...)
	}
	return out
}

// addNode inserts a node into the tail segment and indexes it.
func (g *Graph) addNode(n *Node) {
	if _, exists := g.Node(n.ID); !exists {
		g.nNodes++
	}
	t := g.tail()
	t.nodes[n.ID] = n
	if n.Parent != "" {
		t.children[n.Parent] = append(t.children[n.Parent], n.ID)
	}
	if n.Type == NodeAlias {
		t.aliases[n.Parent] = append(t.aliases[n.Parent], n.ID)
	}
	g.indexNode(n)
}

// indexNode builds the {name, content, tag} triplet for both indexes.
// The content field concatenates components; description and usage carry
// retrieval weight for every task, calculation logic is included so
// NL2DSL-style tasks can match on formula vocabulary.
func (g *Graph) indexNode(n *Node) {
	var parts []string
	for _, key := range []string{"description", "usage", "calculation_logic", "definition", "value"} {
		if v := n.Component(key); v != "" {
			parts = append(parts, v)
		}
	}
	e := index.Entry{
		ID:      n.ID,
		Name:    n.Name,
		Content: strings.Join(parts, " "),
		Tag:     string(n.Type) + " " + n.Component("tags"),
	}
	g.lex.Add(e)
	g.vec.Add(e)

	var lightParts []string
	for _, key := range []string{"description", "usage", "definition"} {
		if v := n.Component(key); v != "" {
			lightParts = append(lightParts, v)
		}
	}
	light := index.Entry{
		ID:      n.ID,
		Name:    n.Name,
		Content: strings.Join(lightParts, " "),
		Tag:     e.Tag,
	}
	g.lexLight.Add(light)
	g.vecLight.Add(light)
}

// Backtrack resolves an alias node to its primary node; primary nodes
// return themselves (Algorithm 2, line 7).
func (g *Graph) Backtrack(id string) *Node {
	n, ok := g.Node(id)
	if !ok {
		return nil
	}
	for n.Type == NodeAlias {
		parent, ok := g.Node(n.Parent)
		if !ok {
			return n
		}
		n = parent
	}
	return n
}

// ColumnID builds the canonical column node ID.
func ColumnID(tableName, column string) string {
	return "column:" + strings.ToLower(tableName) + "." + strings.ToLower(column)
}

// TableID builds the canonical table node ID.
func TableID(db, tableName string) string {
	if db != "" {
		return "table:" + strings.ToLower(db) + "." + strings.ToLower(tableName)
	}
	return "table:" + strings.ToLower(tableName)
}

// AddBundle loads a generated knowledge bundle into the graph, respecting
// the ablation level: LevelNone loads bare names only, LevelPartial adds
// descriptions/usage/tags, LevelFull adds derived-column logic and values.
func (g *Graph) AddBundle(b *Bundle, level Level) {
	dbID := "database:" + strings.ToLower(b.Database.Name)
	if _, ok := g.Node(dbID); !ok && b.Database.Name != "" {
		comp := map[string]string{}
		if level >= LevelPartial {
			comp["description"] = b.Database.Description
			comp["usage"] = b.Database.Usage
			comp["tags"] = strings.Join(b.Database.Tags, " ")
		}
		g.addNode(&Node{ID: dbID, Type: NodeDatabase, Name: b.Database.Name, Components: comp})
	}

	tID := TableID(b.Database.Name, b.Table.Name)
	tComp := map[string]string{}
	if level >= LevelPartial {
		tComp["description"] = b.Table.Description
		tComp["usage"] = b.Table.Usage
		tComp["tags"] = strings.Join(b.Table.Tags, " ")
	}
	if level >= LevelFull {
		tComp["organization"] = b.Table.Organization
		tComp["key_columns"] = strings.Join(b.Table.KeyColumns, " ")
		tComp["key_derived"] = strings.Join(b.Table.KeyDerived, " ")
	}
	g.addNode(&Node{ID: tID, Type: NodeTable, Name: b.Table.Name, Components: tComp, Parent: dbID})

	for _, ck := range b.Columns {
		cID := ColumnID(b.Table.Name, ck.Name)
		comp := map[string]string{"type": ck.Type}
		if level >= LevelPartial {
			comp["description"] = ck.Description
			comp["usage"] = ck.Usage
			comp["tags"] = strings.Join(ck.Tags, " ")
		}
		g.addNode(&Node{ID: cID, Type: NodeColumn, Name: ck.Name, Components: comp, Parent: tID})

		if level >= LevelFull {
			for _, d := range ck.Derived {
				dID := cID + "#" + d.Name
				g.addNode(&Node{
					ID:   dID,
					Type: NodeColumn,
					Name: d.Name,
					Components: map[string]string{
						"description":       d.Description,
						"usage":             d.Usage,
						"calculation_logic": d.CalculationLogic,
						"tags":              strings.Join(d.Tags, " ") + " derived",
						"related_columns":   strings.Join(d.RelatedColumns, " "),
					},
					Parent: cID,
				})
			}
		}
	}
	if level >= LevelFull {
		for _, v := range b.Values {
			vID := fmt.Sprintf("value:%s.%s=%s", strings.ToLower(v.Table), v.Column, strings.ToLower(v.Value))
			g.addNode(&Node{
				ID:   vID,
				Type: NodeValue,
				Name: v.Value,
				Components: map[string]string{
					"description": v.Description,
					"value":       v.Value,
				},
				Parent: ColumnID(v.Table, v.Column),
			})
			for _, alias := range v.Aliases {
				g.AddAlias(alias, vID)
			}
		}
	}
}

// AddJargon loads a glossary entry as a jargon node plus alias nodes.
func (g *Graph) AddJargon(j JargonEntry) {
	jID := "jargon:" + strings.ToLower(j.Term)
	comp := map[string]string{
		"definition": j.Definition,
	}
	if j.MapsToColumn != "" {
		comp["maps_to_column"] = strings.ToLower(j.MapsToColumn)
	}
	if j.MapsToTable != "" {
		comp["maps_to_table"] = strings.ToLower(j.MapsToTable)
	}
	if j.MapsToValue != "" {
		comp["maps_to_value"] = j.MapsToValue
	}
	g.addNode(&Node{ID: jID, Type: NodeJargon, Name: j.Term, Components: comp})
	for _, a := range j.Aliases {
		g.AddAlias(a, jID)
	}
}

// AddAlias registers an alternative term for a primary node. Alias nodes
// may be added dynamically in deployment as glossaries evolve.
func (g *Graph) AddAlias(alias, primaryID string) {
	aID := "alias:" + strings.ToLower(alias) + "->" + primaryID
	g.addNode(&Node{ID: aID, Type: NodeAlias, Name: alias, Parent: primaryID})
}
