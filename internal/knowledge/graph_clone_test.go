package knowledge

import (
	"fmt"
	"sync"
	"testing"

	"datalab/internal/llm"
)

// TestGraphCloneIndependence checks the copy-on-write contract: mutating a
// clone (new bundles, jargon, aliases) must not change the original's node
// set, edges, or retrieval results, and vice versa.
func TestGraphCloneIndependence(t *testing.T) {
	g := newTestGenerator(t)
	b, err := g.Generate(enterpriseSchema(), enterpriseScripts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	orig := NewGraph()
	orig.AddBundle(b, LevelFull)
	origNodes := orig.NumNodes()
	origKids := len(orig.Children(TableID("sales_db", "23_customer_bg")))

	client := llm.NewClient(llm.GPT4, "clone-test")
	before := NewRetriever(orig, client).Retrieve("income after tax", 5)

	cl := orig.Clone()
	if cl.NumNodes() != origNodes {
		t.Fatalf("clone nodes = %d, want %d", cl.NumNodes(), origNodes)
	}
	cl.AddJargon(JargonEntry{
		Term:         "megarev",
		Definition:   "income after tax",
		Aliases:      []string{"mega revenue"},
		MapsToColumn: "shouldincome_after",
	})
	cl.AddAlias("bg table", TableID("sales_db", "23_customer_bg"))

	if orig.NumNodes() != origNodes {
		t.Errorf("original node count changed after clone mutation: %d != %d", orig.NumNodes(), origNodes)
	}
	if _, ok := orig.Node("jargon:megarev"); ok {
		t.Error("clone's jargon node leaked into the original")
	}
	if got := len(orig.Children(TableID("sales_db", "23_customer_bg"))); got != origKids {
		t.Errorf("original children slice changed: %d != %d", got, origKids)
	}
	if _, ok := cl.Node("jargon:megarev"); !ok {
		t.Error("clone missing its own jargon node")
	}

	// Retrieval over the original must be unaffected by the clone's new
	// index entries.
	after := NewRetriever(orig, client).Retrieve("income after tax", 5)
	if len(before) != len(after) {
		t.Fatalf("original retrieval changed: %d hits vs %d", len(before), len(after))
	}
	for i := range before {
		if before[i].Node.ID != after[i].Node.ID || before[i].Score != after[i].Score {
			t.Errorf("hit %d changed: %v → %v", i, before[i], after[i])
		}
	}
}

// TestGraphCloneConcurrentMutation retrieves from the original graph on
// several goroutines while clones are repeatedly taken and mutated — the
// exact interleaving the platform's copy-on-write swap produces. Run
// under -race in CI.
func TestGraphCloneConcurrentMutation(t *testing.T) {
	g := newTestGenerator(t)
	b, err := g.Generate(enterpriseSchema(), enterpriseScripts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	orig := NewGraph()
	orig.AddBundle(b, LevelFull)
	client := llm.NewClient(llm.GPT4, "clone-race")

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cur := orig
			for i := 0; i < 10; i++ {
				cl := cur.Clone()
				cl.AddJargon(JargonEntry{
					Term:       fmt.Sprintf("term%d_%d", w, i),
					Definition: "income after tax metric",
				})
				cur = cl
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ret := NewRetriever(orig, client)
			for i := 0; i < 20; i++ {
				ret.Retrieve("total income after tax by business group", 5)
				ret.RetrieveColumns("income", 5)
			}
		}()
	}
	wg.Wait()
}
