package knowledge

import (
	"fmt"
	"strings"

	"datalab/internal/llm"
	"datalab/internal/table"
	"datalab/internal/textutil"
)

// Profiler implements the fallback strategy of §IV-C for in-the-wild
// tables with no script history: (1) heuristics-based analysis computes
// per-column statistics, and (2) LLM-based interpretation turns the
// statistics into semantic descriptions feeding DSL translation.
type Profiler struct {
	Client *llm.Client
	// SampleN bounds the random sample list per column.
	SampleN int
}

// NewProfiler returns a profiler with the default sample size.
func NewProfiler(client *llm.Client) *Profiler {
	return &Profiler{Client: client, SampleN: 5}
}

// Profile produces a knowledge bundle for a raw table. Descriptions are
// synthesized from column-name tokens, inferred roles, and value samples —
// exactly the information the stage-2 LLM interpretation works from.
func (p *Profiler) Profile(t *table.Table) *Bundle {
	stats := t.Profile(p.SampleN)
	b := &Bundle{
		Table: TableKnowledge{
			Name:        t.Name,
			Description: p.tableDescription(t, stats),
			Usage:       "ad-hoc analysis table (profiled, no script history)",
			Tags:        []string{"profiled"},
		},
	}
	var prompt strings.Builder
	for _, st := range stats {
		prompt.WriteString(st.Describe())
		prompt.WriteByte('\n')
		ck := ColumnKnowledge{
			Name:        strings.ToLower(st.Name),
			Table:       t.Name,
			Type:        kindToWarehouseType(st.Kind),
			Description: columnDescription(st),
			Usage:       columnUsage(st),
			Tags:        columnTags(st),
		}
		b.Columns = append(b.Columns, ck)

		// Low-cardinality string columns contribute value knowledge: their
		// top values are likely filter targets.
		if st.IsCategorical {
			for _, v := range st.TopValues {
				b.Values = append(b.Values, ValueKnowledge{
					Column:      strings.ToLower(st.Name),
					Table:       t.Name,
					Value:       v,
					Description: fmt.Sprintf("a value of %s", st.Name),
				})
			}
		}
	}
	p.Client.Charge(prompt.String(), b.Table.Description)
	return b
}

func (p *Profiler) tableDescription(t *table.Table, stats []table.ColumnStats) string {
	var roles []string
	for _, st := range stats {
		switch {
		case st.IsNumeric:
			roles = append(roles, st.Name+" (metric)")
		case st.IsTimeLike:
			roles = append(roles, st.Name+" (time)")
		case st.IsCategorical:
			roles = append(roles, st.Name+" (category)")
		}
	}
	return fmt.Sprintf("table %s with %d rows covering %s",
		t.Name, t.NumRows(), strings.Join(roles, ", "))
}

// columnDescription is the simulated stage-2 interpretation: it grounds
// the description in the column's name tokens and observed values, which
// is what gives clean research-benchmark schemas high linkability.
func columnDescription(st table.ColumnStats) string {
	words := strings.Join(textutil.Tokenize(st.Name), " ")
	switch {
	case st.IsTimeLike:
		return fmt.Sprintf("%s: date or time of the record", words)
	case st.IsNumeric:
		return fmt.Sprintf("%s: numeric measure ranging %s to %s", words, st.Min.AsString(), st.Max.AsString())
	case st.IsIdentifier:
		return fmt.Sprintf("%s: unique identifier", words)
	case st.IsCategorical:
		return fmt.Sprintf("%s: category taking values such as %s", words, strings.Join(st.TopValues, ", "))
	default:
		return fmt.Sprintf("%s: free-form attribute", words)
	}
}

func columnUsage(st table.ColumnStats) string {
	switch {
	case st.IsNumeric:
		return "suitable for aggregation (sum, avg, min, max)"
	case st.IsTimeLike:
		return "suitable for time filters and trend grouping"
	case st.IsCategorical:
		return "suitable for grouping and equality filters"
	default:
		return "attribute column"
	}
}

func columnTags(st table.ColumnStats) []string {
	var tags []string
	if st.IsNumeric {
		tags = append(tags, "measure")
	}
	if st.IsCategorical {
		tags = append(tags, "dimension")
	}
	if st.IsTimeLike {
		tags = append(tags, "time")
	}
	if st.IsIdentifier {
		tags = append(tags, "identifier")
	}
	if len(tags) == 0 {
		tags = append(tags, "attribute")
	}
	return tags
}

func kindToWarehouseType(k table.Kind) string {
	switch k {
	case table.KindInt:
		return "bigint"
	case table.KindFloat:
		return "double"
	case table.KindBool:
		return "boolean"
	case table.KindTime:
		return "timestamp"
	default:
		return "string"
	}
}

// Candidates converts a profiled bundle directly into translator
// candidates — the path research-benchmark tasks take, where there is no
// knowledge graph, only profiling.
func (b *Bundle) Candidates() []CandidateColumn {
	out := make([]CandidateColumn, 0, len(b.Columns))
	for _, ck := range b.Columns {
		c := CandidateColumn{
			Name:        ck.Name,
			Table:       ck.Table,
			Type:        ck.Type,
			Description: ck.Description,
			Usage:       ck.Usage,
			Tags:        strings.Join(ck.Tags, " "),
			Derived:     ck.Derived,
		}
		out = append(out, c)
	}
	return out
}

// ValueHintsFrom builds translator value hints from a bundle's value
// knowledge.
func (b *Bundle) ValueHints() []ValueHint {
	out := make([]ValueHint, 0, len(b.Values))
	for _, v := range b.Values {
		out = append(out, ValueHint{Term: v.Value, Column: v.Column, Value: v.Value})
		for _, a := range v.Aliases {
			out = append(out, ValueHint{Term: a, Column: v.Column, Value: v.Value})
		}
	}
	return out
}
