package knowledge

import (
	"strings"
	"testing"

	"datalab/internal/llm"
)

// enterpriseSchema mirrors the paper's running example: cryptic Tencent-
// style column names whose semantics live only in scripts.
func enterpriseSchema() TableSchema {
	return TableSchema{
		Database: "sales_db",
		Name:     "23_customer_bg",
		Columns: []ColumnSchema{
			{Name: "prod_class4_name", Type: "string"},
			{Name: "shouldincome_after", Type: "double"},
			{Name: "ftime", Type: "date"},
			{Name: "uin", Type: "bigint"},
		},
	}
}

func enterpriseScripts() []Script {
	return []Script{
		{ID: "daily_income", Language: LangSQL, Text: `
-- daily income report for product lines
SELECT prod_class4_name AS product_line_name,
       SUM(shouldincome_after) AS income_after_tax,
       shouldincome_after * 12 AS annualized_income
FROM 23_customer_bg
WHERE ftime BETWEEN '2024-01-01' AND '2024-12-31' AND prod_class4_name = 'TencentBI'
GROUP BY prod_class4_name`},
		{ID: "cleanup", Language: LangPython, Text: `
# customer background table preprocessing
df = df.rename(columns={"ftime": "partition date", "uin": "user identifier"})
out = df.groupby("prod_class4_name").agg({"shouldincome_after": "sum"})
mask = df["prod_class4_name"] == "TencentCloud"`},
	}
}

func newTestGenerator(t *testing.T) *Generator {
	t.Helper()
	return NewGenerator(llm.NewClient(llm.GPT4, "knowledge-test"))
}

func TestGenerateExtractsColumnSemantics(t *testing.T) {
	g := newTestGenerator(t)
	b, err := g.Generate(enterpriseSchema(), enterpriseScripts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	income := b.ColumnByName("shouldincome_after")
	if income == nil {
		t.Fatal("no knowledge for shouldincome_after")
	}
	if !strings.Contains(income.Description, "income") {
		t.Errorf("description %q should mention income (from alias)", income.Description)
	}
	if !strings.Contains(income.Usage, "aggregated") {
		t.Errorf("usage %q should mention aggregation", income.Usage)
	}
	ftime := b.ColumnByName("ftime")
	if ftime == nil || !strings.Contains(ftime.Description, "partition date") {
		t.Errorf("ftime description should come from the pandas rename: %+v", ftime)
	}
	prod := b.ColumnByName("prod_class4_name")
	if prod == nil || !strings.Contains(prod.Usage, "dimension") {
		t.Errorf("prod_class4_name should be tagged as a grouping dimension: %+v", prod)
	}
}

func TestGenerateDerivedColumns(t *testing.T) {
	g := newTestGenerator(t)
	b, err := g.Generate(enterpriseSchema(), enterpriseScripts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	income := b.ColumnByName("shouldincome_after")
	if income == nil || len(income.Derived) == 0 {
		t.Fatal("expected derived column annualized_income")
	}
	d := income.Derived[0]
	if d.Name != "annualized_income" {
		t.Errorf("derived name = %q", d.Name)
	}
	if !strings.Contains(d.CalculationLogic, "12") {
		t.Errorf("calculation logic = %q", d.CalculationLogic)
	}
	if len(b.Table.KeyDerived) == 0 {
		t.Error("table knowledge should list key derived attributes")
	}
}

func TestGenerateValueKnowledge(t *testing.T) {
	g := newTestGenerator(t)
	b, err := g.Generate(enterpriseSchema(), enterpriseScripts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range b.Values {
		if v.Value == "TencentBI" && v.Column == "prod_class4_name" {
			found = true
		}
	}
	if !found {
		t.Errorf("value knowledge missing TencentBI: %+v", b.Values)
	}
}

func TestGenerateTableComments(t *testing.T) {
	g := newTestGenerator(t)
	b, err := g.Generate(enterpriseSchema(), enterpriseScripts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.Table.Description, "daily income report") {
		t.Errorf("table description %q should carry script comments", b.Table.Description)
	}
}

func TestGenerateLineageFallback(t *testing.T) {
	g := newTestGenerator(t)
	schema := TableSchema{
		Database: "sales_db",
		Name:     "derived_summary",
		Columns:  []ColumnSchema{{Name: "rev_total", Type: "double"}},
	}
	lineage := []LineageEdge{{
		FromTable: "23_customer_bg", FromColumn: "shouldincome_after",
		ToTable: "derived_summary", ToColumn: "rev_total",
		Transform: "monthly sum of income after tax",
	}}
	b, err := g.Generate(schema, nil, lineage)
	if err != nil {
		t.Fatal(err)
	}
	col := b.ColumnByName("rev_total")
	if col == nil || !strings.Contains(col.Description, "shouldincome_after") {
		t.Errorf("lineage-derived description missing: %+v", col)
	}
}

func TestPreprocessDeduplicates(t *testing.T) {
	scripts := []Script{
		{ID: "a", Language: LangSQL, Text: "SELECT x FROM t WHERE y = 1"},
		{ID: "b", Language: LangSQL, Text: "SELECT x FROM t WHERE y = 1 "}, // near-identical
		{ID: "c", Language: LangSQL, Text: "SELECT z, w FROM u GROUP BY z"},
	}
	got := preprocess(scripts)
	if len(got) != 2 {
		t.Errorf("deduped scripts = %d, want 2", len(got))
	}
}

func TestGraphAddBundleLevels(t *testing.T) {
	g := newTestGenerator(t)
	b, err := g.Generate(enterpriseSchema(), enterpriseScripts(), nil)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		level       Level
		wantDesc    bool
		wantDerived bool
	}{
		{LevelNone, false, false},
		{LevelPartial, true, false},
		{LevelFull, true, true},
	} {
		graph := NewGraph()
		graph.AddBundle(b, tc.level)
		n, ok := graph.Node(ColumnID("23_customer_bg", "shouldincome_after"))
		if !ok {
			t.Fatalf("level %v: column node missing", tc.level)
		}
		hasDesc := n.Component("description") != ""
		if hasDesc != tc.wantDesc {
			t.Errorf("level %v: description presence = %v, want %v", tc.level, hasDesc, tc.wantDesc)
		}
		_, hasDerived := graph.Node(ColumnID("23_customer_bg", "shouldincome_after") + "#annualized_income")
		if hasDerived != tc.wantDerived {
			t.Errorf("level %v: derived node presence = %v, want %v", tc.level, hasDerived, tc.wantDerived)
		}
	}
}

func TestGraphBacktrackAlias(t *testing.T) {
	graph := NewGraph()
	graph.AddJargon(JargonEntry{
		Term:       "ARPU",
		Definition: "average revenue per user",
		Aliases:    []string{"arppu", "avg revenue per user"},
	})
	aliasIDs := graph.NodesOfType(NodeAlias)
	if len(aliasIDs) != 2 {
		t.Fatalf("alias nodes = %d", len(aliasIDs))
	}
	primary := graph.Backtrack(aliasIDs[0])
	if primary == nil || primary.Type != NodeJargon || primary.Name != "ARPU" {
		t.Errorf("backtrack = %+v", primary)
	}
	// Backtracking a primary returns itself.
	self := graph.Backtrack("jargon:arpu")
	if self == nil || self.Name != "ARPU" {
		t.Error("backtrack of primary should return itself")
	}
}

func TestRetrieveFindsAmbiguousColumnWithKnowledge(t *testing.T) {
	gen := newTestGenerator(t)
	b, err := gen.Generate(enterpriseSchema(), enterpriseScripts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	client := llm.NewClient(llm.GPT4, "retrieve-test")

	withKnow := NewGraph()
	withKnow.AddBundle(b, LevelFull)
	r := NewRetriever(withKnow, client)
	hits := r.RetrieveColumns("show me the income of TencentBI this year", 5)
	found := false
	for _, h := range hits {
		if strings.Contains(h.Node.ID, "shouldincome_after") {
			found = true
		}
	}
	if !found {
		t.Error("with knowledge, income query should retrieve shouldincome_after")
	}

	// Without knowledge the cryptic name cannot be linked from "income".
	noKnow := NewGraph()
	noKnow.AddBundle(b, LevelNone)
	r2 := NewRetriever(noKnow, client)
	hits2 := r2.RetrieveColumns("show me the income of TencentBI this year", 3)
	for _, h := range hits2 {
		if strings.Contains(h.Node.ID, "shouldincome_after") && h.Score > 0.5 {
			t.Error("without knowledge, shouldincome_after should not be a confident hit")
		}
	}
}

func TestRetrieveJargonMapsToColumn(t *testing.T) {
	graph := NewGraph()
	gen := newTestGenerator(t)
	b, _ := gen.Generate(enterpriseSchema(), enterpriseScripts(), nil)
	graph.AddBundle(b, LevelFull)
	graph.AddJargon(JargonEntry{
		Term:         "income",
		Definition:   "revenue after tax",
		MapsToColumn: "shouldincome_after",
		MapsToTable:  "23_customer_bg",
	})
	r := NewRetriever(graph, llm.NewClient(llm.GPT4, "jargon-test"))
	hits := r.RetrieveColumns("total income by product", 5)
	found := false
	for _, h := range hits {
		if strings.Contains(h.Node.ID, "shouldincome_after") {
			found = true
		}
	}
	if !found {
		t.Error("jargon mapping should surface the target column")
	}
}

func TestRewriteTemporal(t *testing.T) {
	r := NewRetriever(NewGraph(), llm.NewClient(llm.GPT4, "rw"))
	got := r.Rewrite("show income this year", nil)
	if !strings.Contains(got, "2024") {
		t.Errorf("rewrite = %q, want 2024 substitution", got)
	}
	got = r.Rewrite("show income last year", nil)
	if !strings.Contains(got, "2023") {
		t.Errorf("rewrite = %q, want 2023 substitution", got)
	}
}

func TestRewriteElliptical(t *testing.T) {
	r := NewRetriever(NewGraph(), llm.NewClient(llm.GPT4, "rw2"))
	history := []string{"find the most profitable product in 2023"}
	got := r.Rewrite("what about this year?", history)
	if !strings.Contains(got, "profitable") || !strings.Contains(got, "product") {
		t.Errorf("rewrite = %q, should import prior context", got)
	}
	if !strings.Contains(got, "2024") {
		t.Errorf("rewrite = %q, should standardize 'this year'", got)
	}
	if strings.Contains(got, "2023") {
		t.Errorf("rewrite = %q, must not carry the stale year", got)
	}
}

func TestTranslateWithKnowledge(t *testing.T) {
	gen := newTestGenerator(t)
	b, _ := gen.Generate(enterpriseSchema(), enterpriseScripts(), nil)
	graph := NewGraph()
	graph.AddBundle(b, LevelFull)
	client := llm.NewClient(llm.GPT4, "translate-test")
	r := NewRetriever(graph, client)

	query := "total income by product line in 2024"
	var cands []CandidateColumn
	for _, h := range r.RetrieveColumns(query, 6) {
		cands = append(cands, CandidateFromNode(h.Node))
	}
	tr := &Translator{Client: client}
	spec, ok := tr.Translate(TranslateRequest{
		Query:      query,
		Table:      "23_customer_bg",
		Candidates: cands,
		Key:        "t1",
		Skill:      0.99,
		Quality:    llm.Quality{SchemaLinked: 1, Structured: true},
	})
	if !ok {
		t.Fatalf("translation failed: %s", spec.JSON())
	}
	if len(spec.MeasureList) == 0 || spec.MeasureList[0].Column != "shouldincome_after" {
		t.Errorf("measure = %+v, want shouldincome_after", spec.MeasureList)
	}
	if spec.MeasureList[0].Aggregate != "sum" {
		t.Errorf("aggregate = %q", spec.MeasureList[0].Aggregate)
	}
	if len(spec.DimensionList) == 0 || spec.DimensionList[0] != "prod_class4_name" {
		t.Errorf("dimension = %v, want prod_class4_name", spec.DimensionList)
	}
	if len(spec.ConditionList) == 0 {
		t.Error("expected a 2024 temporal condition")
	}
	if err := spec.Validate(); err != nil {
		t.Errorf("spec invalid: %v", err)
	}
}

func TestTranslateFailsWithoutKnowledge(t *testing.T) {
	// Same query, LevelNone graph: "income" cannot link to the cryptic
	// column, so the translation must not produce the right measure.
	gen := newTestGenerator(t)
	b, _ := gen.Generate(enterpriseSchema(), enterpriseScripts(), nil)
	graph := NewGraph()
	graph.AddBundle(b, LevelNone)
	client := llm.NewClient(llm.GPT4, "translate-test")
	r := NewRetriever(graph, client)

	query := "total income by product line in 2024"
	var cands []CandidateColumn
	for _, h := range r.RetrieveColumns(query, 6) {
		cands = append(cands, CandidateFromNode(h.Node))
	}
	tr := &Translator{Client: client}
	spec, _ := tr.Translate(TranslateRequest{
		Query: query, Table: "23_customer_bg", Candidates: cands,
		Key: "t2", Skill: 0.99, Quality: llm.Quality{SchemaLinked: 1, Structured: true},
	})
	if len(spec.MeasureList) > 0 && spec.MeasureList[0].Column == "shouldincome_after" {
		t.Error("without knowledge the cryptic measure should not be linkable")
	}
}

func TestTranslateSuperlative(t *testing.T) {
	client := llm.NewClient(llm.GPT4, "sup")
	cands := []CandidateColumn{
		{Name: "product", Type: "string", Tags: "dimension"},
		{Name: "profit", Type: "double", Tags: "measure"},
	}
	tr := &Translator{Client: client}
	spec, ok := tr.Translate(TranslateRequest{
		Query: "find the most profitable product", Table: "sales",
		Candidates: cands, Key: "sup1", Skill: 0.99,
		Quality: llm.Quality{SchemaLinked: 1, Structured: true},
	})
	if !ok {
		t.Fatalf("translate failed: %s", spec.JSON())
	}
	if spec.Limit != 1 || len(spec.OrderByList) == 0 || !spec.OrderByList[0].Desc {
		t.Errorf("superlative handling wrong: %s", spec.JSON())
	}
}

func TestTranslateChartType(t *testing.T) {
	client := llm.NewClient(llm.GPT4, "chart")
	cands := []CandidateColumn{
		{Name: "region", Type: "string"},
		{Name: "revenue", Type: "double"},
	}
	tr := &Translator{Client: client}
	spec, _ := tr.Translate(TranslateRequest{
		Query: "bar chart of total revenue by region", Table: "sales",
		Candidates: cands, Key: "c1", Skill: 0.99,
		Quality: llm.Quality{SchemaLinked: 1, Structured: true},
	})
	if spec.ChartType != "bar" {
		t.Errorf("chart type = %q", spec.ChartType)
	}
}

func TestTranslateTopN(t *testing.T) {
	client := llm.NewClient(llm.GPT4, "topn")
	cands := []CandidateColumn{
		{Name: "customer", Type: "string"},
		{Name: "spend", Type: "double"},
	}
	tr := &Translator{Client: client}
	spec, _ := tr.Translate(TranslateRequest{
		Query: "top 5 customers by total spend", Table: "orders",
		Candidates: cands, Key: "n1", Skill: 0.99,
		Quality: llm.Quality{SchemaLinked: 1, Structured: true},
	})
	if spec.Limit != 5 {
		t.Errorf("limit = %d, want 5", spec.Limit)
	}
}

func TestTranslateCorruptionOnLowSkill(t *testing.T) {
	client := llm.NewClient(llm.GPT4, "corrupt")
	cands := []CandidateColumn{
		{Name: "region", Type: "string"},
		{Name: "revenue", Type: "double"},
		{Name: "cost", Type: "double"},
	}
	tr := &Translator{Client: client}
	fails := 0
	for i := 0; i < 50; i++ {
		_, ok := tr.Translate(TranslateRequest{
			Query: "total revenue by region", Table: "sales",
			Candidates: cands, Key: "cor" + string(rune('a'+i%26)) + string(rune('0'+i/26)),
			Skill: 0.2, Quality: llm.Quality{SchemaLinked: 1, Structured: true},
		})
		if !ok {
			fails++
		}
	}
	if fails < 25 {
		t.Errorf("skill 0.2 should fail most translations, failed %d/50", fails)
	}
}

func TestValueHintConditions(t *testing.T) {
	client := llm.NewClient(llm.GPT4, "hint")
	cands := []CandidateColumn{
		{Name: "prod_class4_name", Type: "string", Description: "product line name"},
		{Name: "shouldincome_after", Type: "double", Description: "income after tax"},
	}
	tr := &Translator{Client: client}
	spec, _ := tr.Translate(TranslateRequest{
		Query: "total income of TencentBI", Table: "t",
		Candidates: cands,
		ValueHints: []ValueHint{{Term: "TencentBI", Column: "prod_class4_name", Value: "TencentBI"}},
		Key:        "h1", Skill: 0.99,
		Quality: llm.Quality{SchemaLinked: 1, Structured: true},
	})
	found := false
	for _, c := range spec.ConditionList {
		if c.Column == "prod_class4_name" && c.Value == "TencentBI" {
			found = true
		}
	}
	if !found {
		t.Errorf("value hint not applied: %s", spec.JSON())
	}
}
