package knowledge

import (
	"fmt"
	"strconv"
	"strings"

	"datalab/internal/dsl"
	"datalab/internal/llm"
	"datalab/internal/textutil"
)

// CandidateColumn is the linked-schema view the translator works from:
// whatever the retrieval stage surfaced for one column, at whatever
// knowledge level the graph holds.
type CandidateColumn struct {
	Name        string
	Table       string
	Type        string // warehouse type
	Description string
	Usage       string
	Tags        string
	// Derived carries LevelFull calculation logic for metrics computed
	// from this column.
	Derived []DerivedColumn
}

// IsNumeric reports whether the column can serve as a measure.
func (c CandidateColumn) IsNumeric() bool {
	switch strings.ToLower(c.Type) {
	case "int", "integer", "bigint", "double", "float", "real", "decimal", "number":
		return true
	}
	return strings.Contains(c.Tags, "measure")
}

// IsTemporal reports whether the column is time-like.
func (c CandidateColumn) IsTemporal() bool {
	switch strings.ToLower(c.Type) {
	case "date", "timestamp", "datetime", "time":
		return true
	}
	n := strings.ToLower(c.Name)
	for _, kw := range []string{"time", "date", "ftime", "dt", "day", "month", "year"} {
		if strings.Contains(n, kw) {
			return true
		}
	}
	return false
}

// matchScore measures how well the column answers a set of query tokens.
// Name tokens count fully; description/usage tokens count when present —
// this is exactly where knowledge level changes outcomes.
func (c CandidateColumn) matchScore(tokens []string) float64 {
	nameTokens := textutil.ContentTokens(c.Name)
	score := fuzzyCover(nameTokens, tokens) * 1.0
	if c.Description != "" {
		score += fuzzyCover(tokens, textutil.ContentTokens(c.Description)) * 0.9
	}
	if c.Usage != "" {
		score += fuzzyCover(tokens, textutil.ContentTokens(c.Usage)) * 0.3
	}
	return score
}

// fuzzyCover returns the fraction of a's tokens that match some token in
// b, where tokens match when equal or when one is a prefix of the other
// with at least three shared characters ("profit" ~ "profitable", and the
// warehouse abbreviation "rev" ~ "revenue" that profiling-based linking
// resolves).
func fuzzyCover(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	hit := 0
	for _, t := range a {
		for _, u := range b {
			if tokensMatch(t, u) {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(len(a))
}

func tokensMatch(a, b string) bool {
	if a == b {
		return true
	}
	short, long := a, b
	if len(short) > len(long) {
		short, long = long, short
	}
	return len(short) >= 3 && strings.HasPrefix(long, short)
}

// CandidateFromNode converts a graph column node into a candidate.
func CandidateFromNode(n *Node) CandidateColumn {
	c := CandidateColumn{
		Name:        n.Name,
		Type:        n.Component("type"),
		Description: n.Component("description"),
		Usage:       n.Component("usage"),
		Tags:        n.Component("tags"),
	}
	if logic := n.Component("calculation_logic"); logic != "" {
		c.Derived = []DerivedColumn{{
			Name:             n.Name,
			Description:      n.Component("description"),
			CalculationLogic: logic,
			RelatedColumns:   strings.Fields(n.Component("related_columns")),
		}}
	}
	return c
}

// ValueHint links a query term to a concrete filter (from value knowledge
// or jargon maps_to_value).
type ValueHint struct {
	Term   string // as it may appear in the query
	Column string
	Value  string
}

// TranslateRequest bundles the inputs of DSL translation.
type TranslateRequest struct {
	Query      string
	Table      string
	Candidates []CandidateColumn
	ValueHints []ValueHint
	// Key uniquely identifies this task instance for deterministic
	// residual-error draws.
	Key string
	// Skill is the model skill bound for this task (usually
	// profile.InstructionFollowing x Reasoning blend chosen by caller).
	Skill float64
	// Quality carries the context-quality features for the error model.
	Quality llm.Quality
}

// Translator converts NL queries into DSL specs given linked schema
// context. The mechanical path is deterministic; the simulated LLM
// contributes residual error (a plausible-but-wrong spec) at a rate set
// by skill and context quality.
type Translator struct {
	Client *llm.Client
}

// aggregate keyword table.
var aggWords = []struct {
	word string
	agg  string
}{
	{"total", "sum"}, {"sum", "sum"}, {"overall", "sum"},
	{"average", "avg"}, {"mean", "avg"}, {"avg", "avg"},
	{"count", "count"}, {"number", "count"}, {"how many", "count"},
	{"maximum", "max"}, {"max", "max"}, {"highest", "max"}, {"peak", "max"},
	{"minimum", "min"}, {"min", "min"}, {"lowest", "min"},
	{"median", "median"},
}

var chartWords = []struct {
	word string
	mark string
}{
	{"bar chart", "bar"}, {"bar", "bar"},
	{"line chart", "line"}, {"trend", "line"}, {"over time", "line"},
	{"pie", "arc"}, {"proportion", "arc"}, {"share", "arc"},
	{"scatter", "point"}, {"correlation", "point"},
	{"area", "area"},
}

// Translate produces a DSL spec. The boolean result reports whether the
// translation is faithful; on a residual-error draw the spec is corrupted
// the way LLM mistakes present (wrong column, dropped condition) and
// false is returned so callers can model downstream failure honestly.
func (t *Translator) Translate(req TranslateRequest) (*dsl.Spec, bool) {
	lower := strings.ToLower(req.Query)
	tokens := textutil.ContentTokens(req.Query)

	spec := &dsl.Spec{
		Intent: req.Query,
		Table:  req.Table,
	}

	// --- Measures ---
	agg := ""
	for _, aw := range aggWords {
		if strings.Contains(lower, aw.word) {
			agg = aw.agg
			break
		}
	}
	measureCol, measureScore := t.bestColumn(tokens, req.Candidates, func(c CandidateColumn) bool { return c.IsNumeric() })
	// Derived columns may outrank base ones when named in the query.
	derivedPick := t.bestDerived(tokens, req.Candidates)
	if derivedPick != nil && derivedPick.score > measureScore {
		spec.MeasureList = append(spec.MeasureList, dsl.Measure{
			Column:    derivedPick.d.Name,
			Aggregate: fallbackAgg(agg, "sum"),
			Alias:     derivedPick.d.Name,
		})
	} else if measureCol != nil {
		if agg == "count" && !measureCol.IsNumeric() {
			spec.MeasureList = append(spec.MeasureList, dsl.Measure{Column: measureCol.Name, Aggregate: "count"})
		} else {
			spec.MeasureList = append(spec.MeasureList, dsl.Measure{
				Column:    measureCol.Name,
				Aggregate: fallbackAgg(agg, "sum"),
			})
		}
	} else if agg == "count" {
		// COUNT of rows needs no measure column; pick any candidate.
		if len(req.Candidates) > 0 {
			spec.MeasureList = append(spec.MeasureList, dsl.Measure{Column: req.Candidates[0].Name, Aggregate: "count"})
		}
	}

	// --- Dimensions ---
	// In "top 3 region by total revenue" the phrase after "by" names the
	// ranking measure; aggregate words are stripped and a resolution that
	// collides with the chosen measure is discarded (the superlative
	// fallback below finds the real dimension).
	dimTokens := dimensionTokens(lower)
	if len(dimTokens) > 0 {
		if dim, _ := t.bestColumn(dimTokens, req.Candidates, func(c CandidateColumn) bool { return true }); dim != nil {
			// COUNT legitimately counts the grouping column itself; other
			// aggregates colliding with the dimension mean the "by" phrase
			// named the measure.
			collides := len(spec.MeasureList) > 0 &&
				strings.EqualFold(dim.Name, spec.MeasureList[0].Column) &&
				spec.MeasureList[0].Aggregate != "count"
			if !collides {
				spec.DimensionList = append(spec.DimensionList, dim.Name)
			}
		}
	}
	// Temporal grouping words.
	for _, w := range []string{"monthly", "per month", "by month", "daily", "per day", "yearly", "by year", "over time"} {
		if strings.Contains(lower, w) {
			if tc := firstTemporal(req.Candidates); tc != nil && !contains(spec.DimensionList, tc.Name) {
				spec.DimensionList = append(spec.DimensionList, tc.Name)
			}
			break
		}
	}
	// Superlative queries group by the entity being ranked even without an
	// explicit "by" phrase ("the most profitable product" ranks products).
	superlative := false
	for _, w := range []string{"most", "least", "highest", "lowest", "best", "worst", "top "} {
		if strings.Contains(lower, w) {
			superlative = true
			break
		}
	}
	if superlative && len(spec.DimensionList) == 0 {
		if dim, _ := t.bestColumn(tokens, req.Candidates, func(c CandidateColumn) bool {
			return !c.IsNumeric() && !c.IsTemporal()
		}); dim != nil {
			spec.DimensionList = append(spec.DimensionList, dim.Name)
		}
	}

	// --- Conditions ---
	// Value hints match on whole tokens: the value "high" must not fire
	// inside the word "highest".
	allTokens := textutil.Tokenize(req.Query)
	for _, hint := range req.ValueHints {
		if hint.Term == "" {
			continue
		}
		if phraseInTokens(allTokens, textutil.Tokenize(hint.Term)) {
			spec.ConditionList = append(spec.ConditionList, dsl.Condition{
				Column: hint.Column, Operator: "=", Value: hint.Value,
			})
		}
	}
	// Year references become temporal range conditions.
	for _, tok := range tokens {
		if year, ok := parseYear(tok); ok {
			if tc := firstTemporal(req.Candidates); tc != nil {
				spec.ConditionList = append(spec.ConditionList, dsl.Condition{
					Column:   tc.Name,
					Operator: "between",
					Value:    fmt.Sprintf("%d-01-01", year),
					Value2:   fmt.Sprintf("%d-12-31", year),
				})
			}
			break
		}
	}

	// --- Superlatives: top-N / most / least ---
	if len(spec.MeasureList) > 0 {
		m := spec.MeasureList[0]
		alias := m.Alias
		if alias == "" {
			alias = strings.ToLower(fallbackAgg(m.Aggregate, "sum")) + "_" + m.Column
		}
		switch {
		case strings.Contains(lower, "top "):
			if n := topN(lower); n > 0 {
				spec.OrderByList = []dsl.OrderBy{{Column: alias, Desc: true}}
				spec.Limit = n
			}
		case strings.Contains(lower, "most") || strings.Contains(lower, "highest") || strings.Contains(lower, "best"):
			spec.OrderByList = []dsl.OrderBy{{Column: alias, Desc: true}}
			if len(spec.DimensionList) > 0 && !strings.Contains(lower, "chart") {
				spec.Limit = 1
			}
		case strings.Contains(lower, "least") || strings.Contains(lower, "lowest") || strings.Contains(lower, "worst"):
			spec.OrderByList = []dsl.OrderBy{{Column: alias}}
			if len(spec.DimensionList) > 0 {
				spec.Limit = 1
			}
		}
	}

	// --- Chart type ---
	for _, cw := range chartWords {
		if strings.Contains(lower, cw.word) {
			spec.ChartType = cw.mark
			break
		}
	}

	// Nothing selected at all: the honest failure of linking.
	t.Client.Charge(promptFor(req), spec.JSON())
	if len(spec.MeasureList) == 0 && len(spec.DimensionList) == 0 {
		return spec, false
	}

	// Residual model error: corrupt the spec on a failed draw.
	if !t.Client.Attempt("translate:"+req.Key, "", "", req.Skill, req.Quality) {
		t.corrupt(spec, req)
		return spec, false
	}
	return spec, true
}

func promptFor(req TranslateRequest) string {
	var sb strings.Builder
	sb.WriteString(req.Query)
	for _, c := range req.Candidates {
		sb.WriteString(" | ")
		sb.WriteString(c.Name)
		sb.WriteString(" ")
		sb.WriteString(c.Description)
	}
	return sb.String()
}

// corrupt applies a plausible LLM mistake, deterministically chosen.
func (t *Translator) corrupt(spec *dsl.Spec, req TranslateRequest) {
	mode := int(llm.NewRand("corrupt:"+req.Key).Float64() * 3)
	switch {
	case mode == 0 && len(spec.ConditionList) > 0:
		spec.ConditionList = spec.ConditionList[:len(spec.ConditionList)-1]
	case mode == 1 && len(spec.MeasureList) > 0 && len(req.Candidates) > 1:
		// Swap the measure for a lexically-plausible wrong numeric column.
		for _, c := range req.Candidates {
			if c.IsNumeric() && !strings.EqualFold(c.Name, spec.MeasureList[0].Column) {
				spec.MeasureList[0].Column = c.Name
				break
			}
		}
	default:
		if len(spec.MeasureList) > 0 {
			spec.MeasureList[0].Aggregate = wrongAgg(spec.MeasureList[0].Aggregate)
		}
	}
}

func wrongAgg(a string) string {
	if a == "sum" {
		return "avg"
	}
	return "sum"
}

type derivedPick struct {
	d     DerivedColumn
	score float64
}

func (t *Translator) bestDerived(tokens []string, cands []CandidateColumn) *derivedPick {
	var best *derivedPick
	for _, c := range cands {
		for _, d := range c.Derived {
			// A derived metric wins only when the query names it in full
			// ("annualized income" must not hijack a plain "income" ask).
			nameCover := fuzzyCover(textutil.ContentTokens(d.Name), tokens)
			if nameCover < 0.99 {
				continue
			}
			s := 1.2 + fuzzyCover(tokens, textutil.ContentTokens(d.Description))*0.8
			if best == nil || s > best.score {
				best = &derivedPick{d: d, score: s}
			}
		}
	}
	return best
}

// bestColumn returns the candidate maximizing matchScore over tokens,
// subject to the filter, with a floor that rejects noise matches.
func (t *Translator) bestColumn(tokens []string, cands []CandidateColumn, ok func(CandidateColumn) bool) (*CandidateColumn, float64) {
	var best *CandidateColumn
	bestScore := 0.0
	for i := range cands {
		c := &cands[i]
		if !ok(*c) {
			continue
		}
		// Derived metrics only count when the query names them in full;
		// otherwise "annualized_income" would hijack every "income" ask.
		if strings.Contains(c.Tags, "derived") &&
			fuzzyCover(textutil.ContentTokens(c.Name), tokens) < 0.99 {
			continue
		}
		s := c.matchScore(tokens)
		if s > bestScore {
			bestScore = s
			best = c
		}
	}
	if bestScore < 0.15 {
		return nil, 0
	}
	return best, bestScore
}

// dimensionTokens extracts the grouping phrase after "by"/"per"/"for
// each", dropping aggregate vocabulary ("by total revenue" ranks by a
// measure, it does not group by it).
func dimensionTokens(lower string) []string {
	for _, marker := range []string{" by ", " per ", " for each ", " across ", " grouped by "} {
		i := strings.Index(lower, marker)
		if i < 0 {
			continue
		}
		rest := lower[i+len(marker):]
		var toks []string
		for _, tok := range textutil.ContentTokens(rest) {
			if isAggWord(tok) {
				continue
			}
			toks = append(toks, tok)
			if len(toks) == 3 {
				break
			}
		}
		return toks
	}
	return nil
}

func isAggWord(tok string) bool {
	switch tok {
	case "total", "sum", "average", "avg", "mean", "overall", "count",
		"maximum", "max", "minimum", "min", "median", "number":
		return true
	}
	return false
}

func firstTemporal(cands []CandidateColumn) *CandidateColumn {
	for i := range cands {
		if cands[i].IsTemporal() {
			return &cands[i]
		}
	}
	return nil
}

func parseYear(tok string) (int, bool) {
	if len(tok) != 4 {
		return 0, false
	}
	n, err := strconv.Atoi(tok)
	if err != nil || n < 1990 || n > 2035 {
		return 0, false
	}
	return n, true
}

func topN(lower string) int {
	i := strings.Index(lower, "top ")
	if i < 0 {
		return 0
	}
	fields := strings.Fields(lower[i+4:])
	if len(fields) == 0 {
		return 0
	}
	if n, err := strconv.Atoi(fields[0]); err == nil && n > 0 {
		return n
	}
	return 0
}

func fallbackAgg(agg, def string) string {
	if agg == "" {
		return def
	}
	return agg
}

// phraseInTokens reports whether the phrase's tokens appear contiguously
// in the query's token stream.
func phraseInTokens(query, phrase []string) bool {
	if len(phrase) == 0 || len(phrase) > len(query) {
		return false
	}
	for i := 0; i+len(phrase) <= len(query); i++ {
		match := true
		for j := range phrase {
			if query[i+j] != phrase[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if strings.EqualFold(v, x) {
			return true
		}
	}
	return false
}
