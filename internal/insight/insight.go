// Package insight implements the statistical analysis substrate behind
// DataLab's Data Analysis agents: exploratory data analysis, anomaly
// detection, causal (association) analysis, and time-series forecasting.
// These are the executable actions NL2Insight tasks bottom out in.
package insight

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"datalab/internal/table"
)

// Insight is one discovered finding, scored for ranking into summaries.
type Insight struct {
	Kind        string // "trend", "outlier", "correlation", "extreme", "distribution", "forecast"
	Column      string
	Related     string // second column for pairwise findings
	Description string
	Score       float64 // interestingness in [0,1]
}

// Summarize renders a ranked set of insights as the NL summary an
// insight-generation agent reports.
func Summarize(insights []Insight, maxN int) string {
	sorted := append([]Insight(nil), insights...)
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].Score > sorted[b].Score })
	if len(sorted) > maxN {
		sorted = sorted[:maxN]
	}
	var sb strings.Builder
	for i, in := range sorted {
		if i > 0 {
			sb.WriteString(" ")
		}
		sb.WriteString(in.Description)
	}
	return sb.String()
}

// numericColumn extracts the non-null float values of a column.
func numericColumn(t *table.Table, col string) []float64 {
	c := t.Column(col)
	if c == nil {
		return nil
	}
	var out []float64
	for i, n := 0, c.Len(); i < n; i++ {
		if f, ok := c.FloatAt(i); ok {
			out = append(out, f)
		}
	}
	return out
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// EDA produces basic exploratory findings: distributions, extremes, and
// simple trends for every numeric column.
func EDA(t *table.Table) []Insight {
	var out []Insight
	for _, c := range t.Columns {
		if c.Kind != table.KindInt && c.Kind != table.KindFloat {
			continue
		}
		xs := numericColumn(t, c.Name)
		if len(xs) < 3 {
			continue
		}
		m, sd := mean(xs), stddev(xs)
		out = append(out, Insight{
			Kind:   "distribution",
			Column: c.Name,
			Description: fmt.Sprintf("%s averages %.4g with standard deviation %.4g over %d records.",
				c.Name, m, sd, len(xs)),
			Score: 0.3,
		})
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		if sd > 0 && (hi-m) > 2*sd {
			out = append(out, Insight{
				Kind: "extreme", Column: c.Name,
				Description: fmt.Sprintf("%s has a pronounced maximum of %.4g, well above its mean %.4g.", c.Name, hi, m),
				Score:       0.55,
			})
		}
		if tr := trendSlope(xs); math.Abs(tr) > 0.01 && sd > 0 {
			dir := "upward"
			if tr < 0 {
				dir = "downward"
			}
			strength := math.Min(1, math.Abs(tr)*float64(len(xs))/(sd+1e-12))
			if strength > 0.3 {
				out = append(out, Insight{
					Kind: "trend", Column: c.Name,
					Description: fmt.Sprintf("%s shows a clear %s trend across the period.", c.Name, dir),
					Score:       0.5 + 0.3*strength,
				})
			}
		}
	}
	return out
}

// trendSlope fits a least-squares line over the sequence index and
// returns the slope.
func trendSlope(xs []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var sumI, sumX, sumIX, sumII float64
	for i, x := range xs {
		fi := float64(i)
		sumI += fi
		sumX += x
		sumIX += fi * x
		sumII += fi * fi
	}
	den := n*sumII - sumI*sumI
	if den == 0 {
		return 0
	}
	return (n*sumIX - sumI*sumX) / den
}

// AnomalyMethod selects the detection rule.
type AnomalyMethod uint8

// Detection rules.
const (
	MethodZScore AnomalyMethod = iota
	MethodIQR
)

// Anomaly is one detected outlier.
type Anomaly struct {
	Row    int
	Column string
	Value  float64
	Score  float64 // deviation measure (z-score or IQR multiples)
}

// DetectAnomalies finds outliers in a numeric column. For MethodZScore,
// threshold is the |z| cutoff (typically 3); for MethodIQR it is the IQR
// multiple (typically 1.5).
func DetectAnomalies(t *table.Table, col string, method AnomalyMethod, threshold float64) ([]Anomaly, error) {
	c := t.Column(col)
	if c == nil {
		return nil, fmt.Errorf("insight: unknown column %q", col)
	}
	var vals []float64
	var rows []int
	for i, n := 0, c.Len(); i < n; i++ {
		if f, ok := c.FloatAt(i); ok {
			vals = append(vals, f)
			rows = append(rows, i)
		}
	}
	if len(vals) < 4 {
		return nil, nil
	}
	var out []Anomaly
	switch method {
	case MethodZScore:
		m, sd := mean(vals), stddev(vals)
		if sd == 0 {
			return nil, nil
		}
		for i, v := range vals {
			z := (v - m) / sd
			if math.Abs(z) >= threshold {
				out = append(out, Anomaly{Row: rows[i], Column: col, Value: v, Score: math.Abs(z)})
			}
		}
	case MethodIQR:
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		q1 := quantile(sorted, 0.25)
		q3 := quantile(sorted, 0.75)
		iqr := q3 - q1
		if iqr == 0 {
			return nil, nil
		}
		lo, hi := q1-threshold*iqr, q3+threshold*iqr
		for i, v := range vals {
			if v < lo || v > hi {
				dist := math.Max(lo-v, v-hi) / iqr
				out = append(out, Anomaly{Row: rows[i], Column: col, Value: v, Score: dist})
			}
		}
	default:
		return nil, fmt.Errorf("insight: unknown anomaly method %d", method)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Row < out[b].Row
	})
	return out, nil
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Pearson computes the correlation coefficient of two equal-length series.
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	mx, my := mean(xs), mean(ys)
	var num, dx, dy float64
	for i := 0; i < n; i++ {
		a, b := xs[i]-mx, ys[i]-my
		num += a * b
		dx += a * a
		dy += b * b
	}
	if dx == 0 || dy == 0 {
		return 0
	}
	return num / math.Sqrt(dx*dy)
}

// CausalFinding is one association the causal-analysis agent reports.
// With observational BI data the honest claim is a (possibly lagged)
// association, which is what the description language reflects.
type CausalFinding struct {
	Cause, Effect string
	Correlation   float64
	Lag           int // rows of lag at which the association peaks
}

// CausalAnalysis scans numeric column pairs for strong contemporaneous or
// lagged associations (lag up to maxLag rows). Lagged associations are
// directed: the cause precedes the effect.
func CausalAnalysis(t *table.Table, maxLag int, minAbsCorr float64) []CausalFinding {
	var numCols []string
	for _, c := range t.Columns {
		if c.Kind == table.KindInt || c.Kind == table.KindFloat {
			numCols = append(numCols, c.Name)
		}
	}
	var out []CausalFinding
	for i := 0; i < len(numCols); i++ {
		for j := 0; j < len(numCols); j++ {
			if i == j {
				continue
			}
			xs := numericColumn(t, numCols[i])
			ys := numericColumn(t, numCols[j])
			n := len(xs)
			if len(ys) < n {
				n = len(ys)
			}
			if n < 6 {
				continue
			}
			bestCorr, bestLag := 0.0, 0
			for lag := 0; lag <= maxLag && lag < n-2; lag++ {
				c := Pearson(xs[:n-lag], ys[lag:n])
				if math.Abs(c) > math.Abs(bestCorr) {
					bestCorr, bestLag = c, lag
				}
			}
			// Contemporaneous pairs are symmetric; report each once.
			if bestLag == 0 && i > j {
				continue
			}
			if math.Abs(bestCorr) >= minAbsCorr {
				out = append(out, CausalFinding{
					Cause: numCols[i], Effect: numCols[j],
					Correlation: bestCorr, Lag: bestLag,
				})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		return math.Abs(out[a].Correlation) > math.Abs(out[b].Correlation)
	})
	return out
}

// Describe renders a finding as careful analyst prose.
func (f CausalFinding) Describe() string {
	strength := "moderate"
	if math.Abs(f.Correlation) > 0.8 {
		strength = "strong"
	}
	dir := "positive"
	if f.Correlation < 0 {
		dir = "negative"
	}
	if f.Lag > 0 {
		return fmt.Sprintf("%s leads %s by %d periods with a %s %s association (r=%.2f).",
			f.Cause, f.Effect, f.Lag, strength, dir, f.Correlation)
	}
	return fmt.Sprintf("%s and %s move together with a %s %s association (r=%.2f).",
		f.Cause, f.Effect, strength, dir, f.Correlation)
}

// Forecast projects a numeric series h steps ahead with Holt's linear
// (double exponential) smoothing. alpha smooths the level, beta the
// trend; both in (0,1).
func Forecast(series []float64, h int, alpha, beta float64) ([]float64, error) {
	if len(series) < 3 {
		return nil, fmt.Errorf("insight: need at least 3 observations, have %d", len(series))
	}
	if alpha <= 0 || alpha >= 1 || beta <= 0 || beta >= 1 {
		return nil, fmt.Errorf("insight: smoothing parameters must lie in (0,1)")
	}
	level := series[0]
	trend := series[1] - series[0]
	for _, x := range series[1:] {
		prevLevel := level
		level = alpha*x + (1-alpha)*(level+trend)
		trend = beta*(level-prevLevel) + (1-beta)*trend
	}
	out := make([]float64, h)
	for i := 1; i <= h; i++ {
		out[i-1] = level + float64(i)*trend
	}
	return out, nil
}

// ForecastColumn is a convenience wrapper over a table column.
func ForecastColumn(t *table.Table, col string, h int) ([]float64, error) {
	xs := numericColumn(t, col)
	return Forecast(xs, h, 0.5, 0.3)
}
