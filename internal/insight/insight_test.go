package insight

import (
	"math"
	"strings"
	"testing"

	"datalab/internal/table"
)

func seriesTable(t *testing.T, name string, xs []float64) *table.Table {
	t.Helper()
	tbl := table.MustNew(name, []string{"v"}, []table.Kind{table.KindFloat})
	for _, x := range xs {
		tbl.MustAppendRow(table.Float(x))
	}
	return tbl
}

func TestEDAFindsTrend(t *testing.T) {
	xs := make([]float64, 24)
	for i := range xs {
		xs[i] = 100 + 10*float64(i)
	}
	insights := EDA(seriesTable(t, "rising", xs))
	foundTrend := false
	for _, in := range insights {
		if in.Kind == "trend" && strings.Contains(in.Description, "upward") {
			foundTrend = true
		}
	}
	if !foundTrend {
		t.Errorf("no upward trend found: %+v", insights)
	}
}

func TestEDAFindsExtreme(t *testing.T) {
	xs := []float64{10, 11, 9, 10, 12, 10, 11, 95}
	insights := EDA(seriesTable(t, "spiky", xs))
	found := false
	for _, in := range insights {
		if in.Kind == "extreme" {
			found = true
		}
	}
	if !found {
		t.Errorf("spike not reported: %+v", insights)
	}
}

func TestEDASkipsShortAndNonNumeric(t *testing.T) {
	tbl := table.MustNew("t", []string{"s", "v"}, []table.Kind{table.KindString, table.KindFloat})
	tbl.MustAppendRow(table.Str("a"), table.Float(1))
	tbl.MustAppendRow(table.Str("b"), table.Float(2))
	if got := EDA(tbl); len(got) != 0 {
		t.Errorf("EDA on 2 rows should yield nothing: %+v", got)
	}
}

func TestSummarizeRanksAndBounds(t *testing.T) {
	ins := []Insight{
		{Description: "minor.", Score: 0.1},
		{Description: "major.", Score: 0.9},
		{Description: "middling.", Score: 0.5},
	}
	s := Summarize(ins, 2)
	if !strings.HasPrefix(s, "major.") {
		t.Errorf("summary should lead with the top insight: %q", s)
	}
	if strings.Contains(s, "minor") {
		t.Errorf("summary should cap at maxN: %q", s)
	}
}

func TestDetectAnomaliesZScore(t *testing.T) {
	xs := []float64{10, 11, 9, 10, 12, 10, 11, 10, 9, 100}
	anoms, err := DetectAnomalies(seriesTable(t, "t", xs), "v", MethodZScore, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(anoms) != 1 || anoms[0].Value != 100 {
		t.Errorf("anomalies = %+v", anoms)
	}
	if anoms[0].Row != 9 {
		t.Errorf("row = %d, want 9", anoms[0].Row)
	}
}

func TestDetectAnomaliesIQR(t *testing.T) {
	xs := []float64{10, 11, 9, 10, 12, 10, 11, 10, 9, -50, 100}
	anoms, err := DetectAnomalies(seriesTable(t, "t", xs), "v", MethodIQR, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(anoms) != 2 {
		t.Fatalf("anomalies = %+v, want 2", anoms)
	}
	// Sorted by deviation: 100 is farther in IQR multiples than -50.
	if anoms[0].Value != 100 {
		t.Errorf("top anomaly = %v", anoms[0].Value)
	}
}

func TestDetectAnomaliesEdgeCases(t *testing.T) {
	if _, err := DetectAnomalies(seriesTable(t, "t", []float64{1, 2, 3}), "missing", MethodZScore, 3); err == nil {
		t.Error("unknown column should error")
	}
	// Constant series: no anomalies, no division by zero.
	anoms, err := DetectAnomalies(seriesTable(t, "t", []float64{5, 5, 5, 5, 5}), "v", MethodZScore, 3)
	if err != nil || len(anoms) != 0 {
		t.Errorf("constant series: %v %v", anoms, err)
	}
	// Too few rows: nil, no error.
	anoms, err = DetectAnomalies(seriesTable(t, "t", []float64{1, 2}), "v", MethodIQR, 1.5)
	if err != nil || anoms != nil {
		t.Errorf("short series: %v %v", anoms, err)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); math.Abs(got-1) > 1e-9 {
		t.Errorf("perfect correlation = %v", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); math.Abs(got+1) > 1e-9 {
		t.Errorf("perfect anti-correlation = %v", got)
	}
	if got := Pearson(xs, []float64{3, 3, 3, 3, 3}); got != 0 {
		t.Errorf("constant series correlation = %v", got)
	}
	if got := Pearson(xs, ys[:3]); got != 0 {
		t.Errorf("length mismatch should be 0, got %v", got)
	}
}

func TestCausalAnalysisContemporaneous(t *testing.T) {
	tbl := table.MustNew("t", []string{"spend", "revenue"}, []table.Kind{table.KindFloat, table.KindFloat})
	for i := 0; i < 20; i++ {
		s := float64(10 + i)
		tbl.MustAppendRow(table.Float(s), table.Float(3*s+5))
	}
	findings := CausalAnalysis(tbl, 0, 0.8)
	if len(findings) != 1 {
		t.Fatalf("findings = %+v", findings)
	}
	if math.Abs(findings[0].Correlation-1) > 1e-9 {
		t.Errorf("correlation = %v", findings[0].Correlation)
	}
	if !strings.Contains(findings[0].Describe(), "move together") {
		t.Errorf("describe = %q", findings[0].Describe())
	}
}

func TestCausalAnalysisLagged(t *testing.T) {
	// revenue follows spend with a 2-period lag.
	n := 30
	spend := make([]float64, n)
	for i := range spend {
		spend[i] = math.Sin(float64(i) / 3)
	}
	tbl := table.MustNew("t", []string{"spend", "revenue"}, []table.Kind{table.KindFloat, table.KindFloat})
	for i := 0; i < n; i++ {
		rev := 0.0
		if i >= 2 {
			rev = 10 * spend[i-2]
		}
		tbl.MustAppendRow(table.Float(spend[i]), table.Float(rev))
	}
	findings := CausalAnalysis(tbl, 4, 0.7)
	found := false
	for _, f := range findings {
		if f.Cause == "spend" && f.Effect == "revenue" && f.Lag == 2 {
			found = true
			if !strings.Contains(f.Describe(), "leads") {
				t.Errorf("lagged describe = %q", f.Describe())
			}
		}
	}
	if !found {
		t.Errorf("lag-2 association not found: %+v", findings)
	}
}

func TestForecastLinearTrend(t *testing.T) {
	series := make([]float64, 20)
	for i := range series {
		series[i] = 100 + 5*float64(i)
	}
	fc, err := Forecast(series, 3, 0.5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(fc) != 3 {
		t.Fatalf("forecast length = %d", len(fc))
	}
	// A clean linear series must extrapolate close to the true line.
	for i, want := range []float64{200, 205, 210} {
		if math.Abs(fc[i]-want) > 5 {
			t.Errorf("fc[%d] = %.2f, want ~%.0f", i, fc[i], want)
		}
	}
	// Forecasts continue the upward direction.
	if !(fc[0] < fc[1] && fc[1] < fc[2]) {
		t.Errorf("forecast not monotone: %v", fc)
	}
}

func TestForecastValidation(t *testing.T) {
	if _, err := Forecast([]float64{1, 2}, 3, 0.5, 0.3); err == nil {
		t.Error("short series accepted")
	}
	if _, err := Forecast([]float64{1, 2, 3, 4}, 3, 1.5, 0.3); err == nil {
		t.Error("alpha out of range accepted")
	}
	if _, err := Forecast([]float64{1, 2, 3, 4}, 3, 0.5, 0); err == nil {
		t.Error("beta out of range accepted")
	}
}

func TestForecastColumn(t *testing.T) {
	xs := []float64{10, 12, 14, 16, 18, 20}
	fc, err := ForecastColumn(seriesTable(t, "t", xs), "v", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fc) != 2 || fc[0] <= 20 {
		t.Errorf("forecast = %v", fc)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	if got := quantile(sorted, 0.5); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := quantile(sorted, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := quantile(sorted, 1); got != 5 {
		t.Errorf("q1 = %v", got)
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("empty = %v", got)
	}
}
