// Package textutil provides tokenization, normalization, and string
// similarity primitives shared by the indexing, knowledge, and simulated-LLM
// layers. All functions are deterministic and allocation-conscious: they are
// on the hot path of every retrieval call in the platform.
package textutil

import (
	"strings"
	"unicode"
)

// Tokenize splits s into lowercase word tokens. Identifier-style input such
// as "prod_class4_name" or "shouldIncomeAfter" is split on underscores,
// digits boundaries, and camel-case humps so that schema names and natural
// language share a token space.
func Tokenize(s string) []string {
	var tokens []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			tokens = append(tokens, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	prevLower := false
	for _, r := range s {
		switch {
		case unicode.IsLetter(r):
			// Camel-case boundary: "incomeAfter" -> "income", "After".
			if unicode.IsUpper(r) && prevLower {
				flush()
			}
			cur.WriteRune(r)
			prevLower = unicode.IsLower(r)
		case unicode.IsDigit(r):
			// Digits form their own tokens so "class4" -> "class", "4".
			if cur.Len() > 0 && !isDigitTail(cur.String()) {
				flush()
			}
			cur.WriteRune(r)
			prevLower = false
		default:
			flush()
			prevLower = false
		}
	}
	flush()
	return tokens
}

func isDigitTail(s string) bool {
	if s == "" {
		return false
	}
	last := s[len(s)-1]
	return last >= '0' && last <= '9'
}

// Normalize lowercases s and collapses all non-alphanumeric runs to single
// spaces. Useful for comparing free-form text where punctuation is noise.
func Normalize(s string) string {
	return strings.Join(Tokenize(s), " ")
}

// stopwords are excluded from lexical overlap scoring; they carry no signal
// for schema linking or retrieval.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "of": true, "in": true, "on": true,
	"for": true, "to": true, "by": true, "and": true, "or": true, "is": true,
	"are": true, "was": true, "be": true, "me": true, "my": true, "show": true,
	"what": true, "which": true, "with": true, "from": true, "per": true,
	"all": true, "each": true, "this": true, "that": true, "it": true,
	"at": true, "as": true, "please": true, "give": true, "list": true,
}

// ContentTokens returns Tokenize(s) with stopwords removed.
func ContentTokens(s string) []string {
	raw := Tokenize(s)
	out := raw[:0:0]
	for _, t := range raw {
		if !stopwords[t] {
			out = append(out, t)
		}
	}
	return out
}

// IsStopword reports whether the (lowercase) token is a stopword.
func IsStopword(tok string) bool { return stopwords[tok] }

// Jaccard computes the Jaccard similarity of the token sets of a and b,
// in [0, 1]. Empty-vs-empty is defined as 0.
func Jaccard(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	set := make(map[string]bool, len(a))
	for _, t := range a {
		set[t] = true
	}
	inter := 0
	seen := make(map[string]bool, len(b))
	union := len(set)
	for _, t := range b {
		if seen[t] {
			continue
		}
		seen[t] = true
		if set[t] {
			inter++
		} else {
			union++
		}
	}
	return float64(inter) / float64(union)
}

// OverlapRatio returns |A ∩ B| / |A| over the token sets: the fraction of
// a's distinct tokens that also appear in b. It is asymmetric by design —
// a query term covered by a candidate matters more than the reverse.
func OverlapRatio(a, b []string) float64 {
	if len(a) == 0 {
		return 0
	}
	set := make(map[string]bool, len(b))
	for _, t := range b {
		set[t] = true
	}
	distinct := make(map[string]bool, len(a))
	hit := 0
	for _, t := range a {
		if distinct[t] {
			continue
		}
		distinct[t] = true
		if set[t] {
			hit++
		}
	}
	return float64(hit) / float64(len(distinct))
}

// NGrams returns the contiguous n-grams (joined by space) of the token
// slice. n must be >= 1; if len(tokens) < n the result is empty.
func NGrams(tokens []string, n int) []string {
	if n < 1 || len(tokens) < n {
		return nil
	}
	grams := make([]string, 0, len(tokens)-n+1)
	for i := 0; i+n <= len(tokens); i++ {
		grams = append(grams, strings.Join(tokens[i:i+n], " "))
	}
	return grams
}

// Levenshtein computes the edit distance between a and b. It is used for
// fuzzy alias matching of jargon terms.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// EditSimilarity maps Levenshtein distance to [0,1]: 1 means identical.
func EditSimilarity(a, b string) float64 {
	if a == "" && b == "" {
		return 1
	}
	d := Levenshtein(a, b)
	n := len([]rune(a))
	if m := len([]rune(b)); m > n {
		n = m
	}
	return 1 - float64(d)/float64(n)
}

// CountTokens estimates the LLM token count of s. Like production tokenizers
// it charges roughly one token per word plus extra for long words and
// punctuation; the constant is calibrated to ~4 characters per token, the
// ratio used in the paper's token-cost accounting.
func CountTokens(s string) int {
	if s == "" {
		return 0
	}
	n := (len(s) + 3) / 4
	if n < 1 {
		n = 1
	}
	return n
}

// TruncateTokens returns a prefix of s containing at most maxTokens
// estimated tokens, cutting at a rune boundary.
func TruncateTokens(s string, maxTokens int) string {
	if maxTokens <= 0 {
		return ""
	}
	maxBytes := maxTokens * 4
	if len(s) <= maxBytes {
		return s
	}
	// Back off to a rune boundary.
	for maxBytes > 0 && !utf8RuneStart(s[maxBytes]) {
		maxBytes--
	}
	return s[:maxBytes]
}

func utf8RuneStart(b byte) bool { return b&0xC0 != 0x80 }

// ROUGE1 computes the unigram-overlap F1 score between a candidate and a
// reference text, the summary-level metric used by InsightBench.
func ROUGE1(candidate, reference string) float64 {
	ct := Tokenize(candidate)
	rt := Tokenize(reference)
	if len(ct) == 0 || len(rt) == 0 {
		return 0
	}
	refCounts := make(map[string]int, len(rt))
	for _, t := range rt {
		refCounts[t]++
	}
	match := 0
	for _, t := range ct {
		if refCounts[t] > 0 {
			refCounts[t]--
			match++
		}
	}
	prec := float64(match) / float64(len(ct))
	rec := float64(match) / float64(len(rt))
	if prec+rec == 0 {
		return 0
	}
	return 2 * prec * rec / (prec + rec)
}
