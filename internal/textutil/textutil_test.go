package textutil

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenizeIdentifiers(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"prod_class4_name", []string{"prod", "class", "4", "name"}},
		{"shouldincome_after", []string{"shouldincome", "after"}},
		{"shouldIncomeAfter", []string{"should", "income", "after"}},
		{"ftime", []string{"ftime"}},
		{"", nil},
		{"SELECT * FROM t", []string{"select", "from", "t"}},
		{"2023 revenue", []string{"2023", "revenue"}},
		{"ARPU-2023_v2", []string{"arpu", "2023", "v", "2"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormalize(t *testing.T) {
	if got := Normalize("Show ME the Income!"); got != "show me the income" {
		t.Errorf("Normalize = %q", got)
	}
}

func TestContentTokensDropsStopwords(t *testing.T) {
	got := ContentTokens("show me the income of TencentBI")
	want := []string{"income", "tencent", "bi"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ContentTokens = %v, want %v", got, want)
	}
}

func TestJaccard(t *testing.T) {
	a := []string{"income", "product", "year"}
	b := []string{"income", "year", "region"}
	got := Jaccard(a, b)
	want := 2.0 / 4.0
	if got != want {
		t.Errorf("Jaccard = %v, want %v", got, want)
	}
	if Jaccard(nil, b) != 0 {
		t.Error("Jaccard with empty set should be 0")
	}
	if Jaccard(a, a) != 1 {
		t.Error("Jaccard of identical sets should be 1")
	}
}

func TestOverlapRatioAsymmetric(t *testing.T) {
	q := []string{"income", "2023"}
	cand := []string{"income", "2023", "product", "class", "name"}
	if got := OverlapRatio(q, cand); got != 1.0 {
		t.Errorf("OverlapRatio(q, cand) = %v, want 1", got)
	}
	if got := OverlapRatio(cand, q); got >= 1.0 {
		t.Errorf("OverlapRatio(cand, q) = %v, want < 1", got)
	}
}

func TestNGrams(t *testing.T) {
	toks := []string{"gross", "margin", "rate"}
	got := NGrams(toks, 2)
	want := []string{"gross margin", "margin rate"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("NGrams = %v, want %v", got, want)
	}
	if NGrams(toks, 4) != nil {
		t.Error("NGrams longer than input should be nil")
	}
	if NGrams(toks, 0) != nil {
		t.Error("NGrams with n=0 should be nil")
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"kitten", "sitting", 3},
		{"", "abc", 3},
		{"abc", "", 3},
		{"same", "same", 0},
		{"arpu", "arppu", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEditSimilarity(t *testing.T) {
	if got := EditSimilarity("same", "same"); got != 1 {
		t.Errorf("identical strings: %v", got)
	}
	if got := EditSimilarity("", ""); got != 1 {
		t.Errorf("empty strings: %v", got)
	}
	if got := EditSimilarity("abc", "xyz"); got != 0 {
		t.Errorf("disjoint strings: %v", got)
	}
}

func TestCountTokens(t *testing.T) {
	if CountTokens("") != 0 {
		t.Error("empty string should cost 0 tokens")
	}
	if got := CountTokens("abcd"); got != 1 {
		t.Errorf("4 chars = %d tokens, want 1", got)
	}
	if got := CountTokens("abcdefgh"); got != 2 {
		t.Errorf("8 chars = %d tokens, want 2", got)
	}
}

func TestTruncateTokens(t *testing.T) {
	s := "abcdefghijklmnop"
	if got := TruncateTokens(s, 2); got != "abcdefgh" {
		t.Errorf("TruncateTokens = %q", got)
	}
	if got := TruncateTokens(s, 100); got != s {
		t.Errorf("no-op truncate changed string: %q", got)
	}
	if got := TruncateTokens(s, 0); got != "" {
		t.Errorf("zero budget should return empty, got %q", got)
	}
}

func TestTruncateTokensRuneBoundary(t *testing.T) {
	s := "日本語テキスト" // 3 bytes per rune
	got := TruncateTokens(s, 1)
	for i := 0; i < len(got); {
		r := []rune(got[i:])
		if len(r) == 0 {
			t.Fatalf("invalid UTF-8 after truncation: %q", got)
		}
		i += len(string(r[0]))
	}
}

func TestROUGE1(t *testing.T) {
	if got := ROUGE1("revenue grew fast", "revenue grew fast"); got != 1 {
		t.Errorf("identical = %v, want 1", got)
	}
	if got := ROUGE1("alpha beta", "gamma delta"); got != 0 {
		t.Errorf("disjoint = %v, want 0", got)
	}
	got := ROUGE1("revenue grew", "revenue fell")
	if got <= 0 || got >= 1 {
		t.Errorf("partial overlap = %v, want in (0,1)", got)
	}
}

// Property: Jaccard is symmetric and bounded.
func TestJaccardProperties(t *testing.T) {
	f := func(a, b []string) bool {
		j1 := Jaccard(a, b)
		j2 := Jaccard(b, a)
		return j1 == j2 && j1 >= 0 && j1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Levenshtein is a metric (symmetry + identity).
func TestLevenshteinProperties(t *testing.T) {
	f := func(a, b string) bool {
		d1 := Levenshtein(a, b)
		d2 := Levenshtein(b, a)
		return d1 == d2 && d1 >= 0 && Levenshtein(a, a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: tokenizing never produces empty or uppercase tokens.
func TestTokenizeProperties(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				return false
			}
			for _, r := range tok {
				if r >= 'A' && r <= 'Z' {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
