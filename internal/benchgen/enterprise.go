package benchgen

import (
	"fmt"
	"strings"

	"datalab/internal/dsl"
	"datalab/internal/knowledge"
	"datalab/internal/llm"
	"datalab/internal/table"
)

// columnTemplate is one cryptic warehouse column with its expert-known
// meaning — the raw material for enterprise schema synthesis.
type columnTemplate struct {
	cryptic string
	meaning string // the expert ground-truth description
	aliasIn string // how the meaning shows up as a script alias
	typ     string
	role    string // measure | dimension | time | id
	values  []string
}

var columnPool = []columnTemplate{
	{"shouldincome_after", "income after tax", "income_after_tax", "double", "measure", nil},
	{"gmv_val", "gross merchandise value", "gross_merchandise_value", "double", "measure", nil},
	{"cost_amt_rt", "operating cost amount", "operating_cost_amount", "double", "measure", nil},
	{"dau_cnt", "daily active users", "daily_active_users", "bigint", "measure", nil},
	{"vv_cnt", "video view count", "video_view_count", "bigint", "measure", nil},
	{"rfnd_amt", "refund amount", "refund_amount", "double", "measure", nil},
	{"imp_cnt", "impression count", "impression_count", "bigint", "measure", nil},
	{"conv_val", "conversion value", "conversion_value", "double", "measure", nil},
	{"sub_day_cnt", "subscription day count", "subscription_day_count", "bigint", "measure", nil},
	{"prod_class4_name", "product line name", "product_line_name", "string", "dimension",
		[]string{"TencentBI", "TencentCloud", "TencentAds", "TencentGames"}},
	{"chl_id", "sales channel identifier", "sales_channel", "string", "dimension",
		[]string{"direct", "agency", "reseller"}},
	{"bg_cd", "business group code", "business_group", "string", "dimension",
		[]string{"TEG", "WXG", "IEG", "CSIG"}},
	{"cty_lvl", "city tier level", "city_tier", "string", "dimension",
		[]string{"tier1", "tier2", "tier3"}},
	{"ftime", "partition date", "partition_date", "date", "time", nil},
	{"stat_dt", "statistics date", "statistics_date", "date", "time", nil},
	{"uin", "user identifier", "user_identifier", "bigint", "id", nil},
	{"oid_seq", "order sequence identifier", "order_sequence", "bigint", "id", nil},
}

// EnterpriseTable is one synthetic warehouse table with everything the
// knowledge pipeline consumes and everything evaluation needs.
type EnterpriseTable struct {
	Schema  knowledge.TableSchema
	Data    *table.Table
	Scripts []knowledge.Script
	Lineage []knowledge.LineageEdge
	// Expert ground truth (the paper's domain-expert annotations).
	ExpertTableDesc  string
	ExpertColumnDesc map[string]string
	// column roles for query synthesis
	measures, dimensions, timeCols []columnTemplate
}

// Jargon returns the enterprise glossary shared by all tables.
func Jargon() []knowledge.JargonEntry {
	return []knowledge.JargonEntry{
		{Term: "ARPU", Definition: "average revenue per user", Aliases: []string{"arppu", "avg revenue per user"}},
		{Term: "GMV", Definition: "gross merchandise value", Aliases: []string{"merch value"},
			MapsToColumn: "gmv_val"},
		{Term: "DAU", Definition: "daily active users", Aliases: []string{"daily actives"},
			MapsToColumn: "dau_cnt"},
		{Term: "income", Definition: "income after tax, the shouldincome_after column",
			MapsToColumn: "shouldincome_after"},
		{Term: "refunds", Definition: "refund amount paid back to customers",
			MapsToColumn: "rfnd_amt"},
	}
}

// GenerateEnterprise synthesizes nTables warehouse tables with script
// history, lineage, data, and expert annotations.
func GenerateEnterprise(seed string, nTables int) []EnterpriseTable {
	rng := llm.NewRand("enterprise:" + seed)
	out := make([]EnterpriseTable, 0, nTables)
	for i := 0; i < nTables; i++ {
		out = append(out, generateEnterpriseTable(i, rng))
	}
	// Lineage edges connect consecutive tables (downstream summaries).
	for i := 1; i < len(out); i++ {
		prev := &out[i-1]
		cur := &out[i]
		if len(prev.measures) > 0 && len(cur.measures) > 0 {
			cur.Lineage = append(cur.Lineage, knowledge.LineageEdge{
				FromTable:  prev.Schema.Name,
				FromColumn: prev.measures[0].cryptic,
				ToTable:    cur.Schema.Name,
				ToColumn:   cur.measures[0].cryptic,
				Transform:  "daily aggregation",
			})
		}
	}
	return out
}

func generateEnterpriseTable(idx int, rng *llm.Rand) EnterpriseTable {
	name := fmt.Sprintf("%d_business_tab_%02d", 20+idx, idx)
	et := EnterpriseTable{
		ExpertColumnDesc: map[string]string{},
	}

	// Sample 6-10 distinct columns: >=2 measures, >=2 dims, 1 time, 1 id.
	pick := func(role string, n int) []columnTemplate {
		var pool []columnTemplate
		for _, c := range columnPool {
			if c.role == role {
				pool = append(pool, c)
			}
		}
		perm := rng.Perm(len(pool))
		var out []columnTemplate
		for _, p := range perm {
			if len(out) == n {
				break
			}
			out = append(out, pool[p])
		}
		return out
	}
	et.measures = pick("measure", 2+rng.Intn(2))
	et.dimensions = pick("dimension", 2+rng.Intn(2))
	et.timeCols = pick("time", 1)
	ids := pick("id", 1)

	var cols []columnTemplate
	cols = append(cols, ids...)
	cols = append(cols, et.dimensions...)
	cols = append(cols, et.measures...)
	cols = append(cols, et.timeCols...)

	et.Schema = knowledge.TableSchema{Database: "sales_db", Name: name}
	names := make([]string, 0, len(cols))
	kinds := make([]table.Kind, 0, len(cols))
	for _, c := range cols {
		et.Schema.Columns = append(et.Schema.Columns, knowledge.ColumnSchema{Name: c.cryptic, Type: c.typ})
		et.ExpertColumnDesc[c.cryptic] = c.meaning
		names = append(names, c.cryptic)
		kinds = append(kinds, kindFor(c.typ))
	}
	et.ExpertTableDesc = fmt.Sprintf("business table tracking %s by %s",
		et.measures[0].meaning, et.dimensions[0].meaning)

	// Physical data.
	et.Data = table.MustNew(name, names, kinds)
	rows := 60 + rng.Intn(60)
	for r := 0; r < rows; r++ {
		vals := make([]table.Value, len(cols))
		for ci, c := range cols {
			switch c.role {
			case "id":
				vals[ci] = table.Int(int64(100000 + r))
			case "dimension":
				vals[ci] = table.Str(c.values[rng.Intn(len(c.values))])
			case "measure":
				vals[ci] = table.Float(float64(100+rng.Intn(9900)) + rng.Float64())
			case "time":
				vals[ci] = table.Str(fmt.Sprintf("%d-%02d-%02d", 2022+rng.Intn(3), 1+rng.Intn(12), 1+rng.Intn(28)))
			}
		}
		et.Data.MustAppendRow(vals...)
	}

	// Script history: the semantic bridge. Aliases carry the meanings.
	et.Scripts = enterpriseScripts(name, et, rng)
	return et
}

func kindFor(typ string) table.Kind {
	switch typ {
	case "double":
		return table.KindFloat
	case "bigint":
		return table.KindInt
	case "date":
		return table.KindTime
	default:
		return table.KindString
	}
}

func enterpriseScripts(name string, et EnterpriseTable, rng *llm.Rand) []knowledge.Script {
	m0 := et.measures[0]
	d0 := et.dimensions[0]
	tc := et.timeCols[0]
	var scripts []knowledge.Script

	scripts = append(scripts, knowledge.Script{
		ID:       name + "/daily_report.sql",
		Language: knowledge.LangSQL,
		Text: fmt.Sprintf(`-- daily %s report by %s
SELECT %s AS %s,
       SUM(%s) AS %s,
       SUM(%s) / COUNT(%s) AS avg_%s
FROM %s
WHERE %s BETWEEN '2024-01-01' AND '2024-12-31' AND %s = '%s'
GROUP BY %s`,
			m0.meaning, d0.meaning,
			d0.cryptic, d0.aliasIn,
			m0.cryptic, m0.aliasIn,
			m0.cryptic, m0.cryptic, m0.aliasIn,
			name,
			tc.cryptic, d0.cryptic, d0.values[0],
			d0.cryptic),
	})

	if len(et.measures) > 1 {
		m1 := et.measures[1]
		scripts = append(scripts, knowledge.Script{
			ID:       name + "/margin.sql",
			Language: knowledge.LangSQL,
			Text: fmt.Sprintf(`-- derived margin metric combining %s and %s
SELECT %s AS %s, %s AS %s,
       %s - %s AS net_margin
FROM %s`,
				m0.meaning, m1.meaning,
				m0.cryptic, m0.aliasIn, m1.cryptic, m1.aliasIn,
				m0.cryptic, m1.cryptic,
				name),
		})
	}

	// Preprocessing scripts rename the columns analysts actually touch —
	// roughly 85% in practice; the rest stay cryptic (the paper's finding
	// that knowledge stays incomplete for a share of columns).
	var renames []string
	for _, c := range et.Schema.Columns {
		if rng.Float64() > 0.85 {
			continue
		}
		meaning := et.ExpertColumnDesc[c.Name]
		renames = append(renames, fmt.Sprintf("%q: %q", c.Name, meaning))
	}
	scripts = append(scripts, knowledge.Script{
		ID:       name + "/preprocess.py",
		Language: knowledge.LangPython,
		Text: fmt.Sprintf(`# preprocessing for %s
df = df.rename(columns={%s})
out = df.groupby("%s").agg({"%s": "sum"})
mask = df["%s"] == "%s"`,
			name,
			strings.Join(renames, ", "),
			d0.cryptic, m0.cryptic,
			d0.cryptic, d0.values[rng.Intn(len(d0.values))]),
	})
	return scripts
}

// LinkingPair is one schema-linking evaluation item: an NL query plus the
// cryptic columns a correct linker must surface.
type LinkingPair struct {
	Query    string
	Table    string
	Relevant []string
}

// SchemaLinkingPairs derives n query-table-column triples from the
// corpus (the paper's 439-pair dataset analogue).
func SchemaLinkingPairs(tables []EnterpriseTable, n int, seed string) []LinkingPair {
	rng := llm.NewRand("linking:" + seed)
	var out []LinkingPair
	for i := 0; i < n; i++ {
		et := tables[rng.Intn(len(tables))]
		m := et.measures[rng.Intn(len(et.measures))]
		d := et.dimensions[rng.Intn(len(et.dimensions))]
		tmpl := rng.Intn(4)
		var q string
		relevant := []string{m.cryptic, d.cryptic}
		switch tmpl {
		case 0:
			q = fmt.Sprintf("total %s by %s", m.meaning, d.meaning)
		case 1:
			q = fmt.Sprintf("show the %s for each %s this year", m.meaning, d.meaning)
		case 2:
			q = fmt.Sprintf("which %s has the highest %s", d.meaning, m.meaning)
		default:
			// Derived-metric vocabulary: only the full knowledge setting
			// carries net_margin's relationship to its base measure.
			if len(et.measures) > 1 {
				q = fmt.Sprintf("net margin for each %s", d.meaning)
				relevant = []string{et.measures[0].cryptic, d.cryptic}
			} else {
				q = fmt.Sprintf("total %s by %s", m.meaning, d.meaning)
			}
		}
		out = append(out, LinkingPair{
			Query:    q,
			Table:    et.Schema.Name,
			Relevant: relevant,
		})
	}
	return out
}

// DSLPair is one NL2DSL evaluation item.
type DSLPair struct {
	Query string
	Table string
	Gold  *dsl.Spec
	// NeedsDerived marks items whose gold answer requires derived-column
	// calculation logic (only LevelFull knowledge can solve these — the
	// S2 vs S3 gap of Table II).
	NeedsDerived bool
}

// NL2DSLPairs derives n query-DSL pairs (the 326-pair dataset analogue).
// Roughly a third require derived-column knowledge.
func NL2DSLPairs(tables []EnterpriseTable, n int, seed string) []DSLPair {
	rng := llm.NewRand("nl2dsl:" + seed)
	var out []DSLPair
	for i := 0; i < n; i++ {
		et := tables[rng.Intn(len(tables))]
		m := et.measures[rng.Intn(len(et.measures))]
		d := et.dimensions[rng.Intn(len(et.dimensions))]
		gold := &dsl.Spec{Table: et.Schema.Name}
		p := DSLPair{Table: et.Schema.Name}
		if len(et.measures) > 1 && rng.Float64() < 0.33 {
			// Derived metric question: net margin = m0 - m1.
			p.Query = fmt.Sprintf("net margin by %s", d.meaning)
			gold.MeasureList = []dsl.Measure{{Column: "net_margin", Aggregate: "sum", Alias: "net_margin"}}
			gold.DimensionList = []string{d.cryptic}
			p.NeedsDerived = true
		} else {
			p.Query = fmt.Sprintf("total %s by %s", m.meaning, d.meaning)
			gold.MeasureList = []dsl.Measure{{Column: m.cryptic, Aggregate: "sum"}}
			gold.DimensionList = []string{d.cryptic}
		}
		p.Gold = gold
		out = append(out, p)
	}
	return out
}

// ComplexQuestion is one multi-agent evaluation item for Table III.
type ComplexQuestion struct {
	ID    string
	Query string
	Table string
}

// ComplexQuestions derives n multi-step questions, each requiring at
// least three agents (SQL + two analyses + synthesis), mirroring the 100
// real-world questions of §VII-D.
func ComplexQuestions(tables []EnterpriseTable, n int, seed string) []ComplexQuestion {
	rng := llm.NewRand("complex:" + seed)
	intents := []string{
		"find anomalies in %s, explain why they happen, and plot %s by %s",
		"forecast %s for next month, check for unusual spikes, and summarize the insights by %s over %s",
		"analyze the correlation drivers of %s, detect outliers, and draw a chart of %s by %s",
		"detect anomalies in %s and forecast the trend, then report the analysis of %s by %s",
	}
	var out []ComplexQuestion
	for i := 0; i < n; i++ {
		et := tables[rng.Intn(len(tables))]
		m := et.measures[rng.Intn(len(et.measures))]
		d := et.dimensions[rng.Intn(len(et.dimensions))]
		tmpl := intents[rng.Intn(len(intents))]
		out = append(out, ComplexQuestion{
			ID:    fmt.Sprintf("cq-%03d", i),
			Query: fmt.Sprintf(tmpl, m.meaning, m.meaning, d.meaning),
			Table: et.Schema.Name,
		})
	}
	return out
}
