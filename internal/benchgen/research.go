// Package benchgen synthesizes the workloads the experiments run on:
// research-benchmark-style task suites (Spider/BIRD/DS-1000/DSEval/
// DABench/InsightBench/nvBench/VisEval analogues), enterprise corpora
// with cryptic schemas + script history + lineage + jargon (the Tencent
// substitute), and multi-language notebooks. Everything is deterministic
// given a seed. See DESIGN.md for why each substitution preserves the
// paper's evaluated behaviour.
package benchgen

import (
	"fmt"
	"strings"

	"datalab/internal/dsl"
	"datalab/internal/llm"
	"datalab/internal/table"
)

// TaskKind is the BI task family a suite evaluates.
type TaskKind string

// Task families (Table I's four rows).
const (
	TaskNL2SQL     TaskKind = "nl2sql"
	TaskNL2DSCode  TaskKind = "nl2dscode"
	TaskNL2Insight TaskKind = "nl2insight"
	TaskNL2VIS     TaskKind = "nl2vis"
)

// Suite describes one research benchmark analogue. Ambiguity and
// Difficulty are the two knobs that reproduce the published difficulty
// ordering (BIRD harder than Spider, DS-1000 harder than DSEval, ...).
type Suite struct {
	Name string
	Kind TaskKind
	N    int
	// Ambiguity in [0,1]: fraction of schema columns given cryptic names
	// plus the query-side jargon rate — the property knowledge/profiling
	// compensates for.
	Ambiguity float64
	// Difficulty in [0,1]: residual task hardness independent of schema
	// understanding (multi-step logic, tricky library corners).
	Difficulty float64
}

// Suites returns the eight Table I benchmarks with their calibration.
func Suites() []Suite {
	return []Suite{
		{Name: "Spider", Kind: TaskNL2SQL, N: 200, Ambiguity: 0.15, Difficulty: 0.10},
		{Name: "BIRD", Kind: TaskNL2SQL, N: 200, Ambiguity: 0.45, Difficulty: 0.25},
		{Name: "DS-1000", Kind: TaskNL2DSCode, N: 200, Ambiguity: 0.10, Difficulty: 0.68},
		{Name: "DSEval", Kind: TaskNL2DSCode, N: 200, Ambiguity: 0.10, Difficulty: 0.12},
		{Name: "DABench", Kind: TaskNL2Insight, N: 150, Ambiguity: 0.18, Difficulty: 0.30},
		{Name: "InsightBench", Kind: TaskNL2Insight, N: 100, Ambiguity: 0.35, Difficulty: 0.35},
		{Name: "nvBench", Kind: TaskNL2VIS, N: 200, Ambiguity: 0.20, Difficulty: 0.40},
		{Name: "VisEval", Kind: TaskNL2VIS, N: 200, Ambiguity: 0.12, Difficulty: 0.20},
	}
}

// SuiteByName looks a suite up.
func SuiteByName(name string) (Suite, bool) {
	for _, s := range Suites() {
		if strings.EqualFold(s.Name, name) {
			return s, true
		}
	}
	return Suite{}, false
}

// Task is one benchmark item: a physical table, an NL query, and an
// executable gold answer (a DSL spec, from which gold SQL / gold chart /
// gold program all derive).
type Task struct {
	ID      string
	Suite   string
	Kind    TaskKind
	Table   *table.Table
	Query   string
	Gold    *dsl.Spec
	GoldSQL string
	// GoldInsight is the reference summary for insight tasks, phrased in
	// the benchmark author's words (not the system's templates), so that
	// ROUGE stays realistically below 1 even for correct answers.
	GoldInsight string
	// Relevant lists the physical columns a correct answer touches
	// (schema-linking ground truth).
	Relevant []string
	// Ambiguity/Difficulty inherited from the suite with per-task jitter.
	Ambiguity  float64
	Difficulty float64
}

// domain vocabulary for synthetic tables.
type domainSpec struct {
	table    string
	dims     []dimSpec
	measures []string
	timeCol  string
}

type dimSpec struct {
	name   string
	values []string
}

var domains = []domainSpec{
	{
		table: "sales",
		dims: []dimSpec{
			{"region", []string{"east", "west", "north", "south"}},
			{"product", []string{"widget", "gadget", "sprocket", "doohickey"}},
		},
		measures: []string{"revenue", "cost", "quantity"},
		timeCol:  "sale_date",
	},
	{
		table: "orders",
		dims: []dimSpec{
			{"channel", []string{"web", "mobile", "store", "partner"}},
			{"segment", []string{"consumer", "corporate", "smb"}},
		},
		measures: []string{"amount", "discount", "items"},
		timeCol:  "order_date",
	},
	{
		table: "support_tickets",
		dims: []dimSpec{
			{"priority", []string{"low", "medium", "high", "urgent"}},
			{"team", []string{"billing", "platform", "apps"}},
		},
		measures: []string{"resolution_hours", "satisfaction", "messages"},
		timeCol:  "opened_date",
	},
	{
		table: "campaigns",
		dims: []dimSpec{
			{"medium", []string{"search", "social", "display", "email"}},
			{"market", []string{"cn", "us", "eu", "jp"}},
		},
		measures: []string{"spend", "clicks", "conversions"},
		timeCol:  "start_date",
	},
}

// crypticize maps a clean column name to a warehouse-cryptic one — the
// BIRD-style dirtiness knob.
func crypticize(name string, rng *llm.Rand) string {
	parts := strings.Split(name, "_")
	abbr := make([]string, 0, len(parts)+1)
	for _, p := range parts {
		if len(p) > 3 {
			p = p[:3]
		}
		abbr = append(abbr, p)
	}
	suffixes := []string{"_f", "_v2", "_amt", "_cd", "_val"}
	return strings.Join(abbr, "_") + suffixes[rng.Intn(len(suffixes))]
}

// GenerateSuite synthesizes all tasks of a suite. The same (suite, seed)
// always produces the same tasks.
func GenerateSuite(s Suite, seed string) []Task {
	rng := llm.NewRand("suite:" + s.Name + ":" + seed)
	tasks := make([]Task, 0, s.N)
	for i := 0; i < s.N; i++ {
		tasks = append(tasks, generateTask(s, i, rng))
	}
	return tasks
}

func generateTask(s Suite, idx int, rng *llm.Rand) Task {
	dom := domains[rng.Intn(len(domains))]
	cryptic := rng.Float64() < s.Ambiguity

	// Physical column names (possibly crypticized) with a mapping kept
	// for gold construction.
	dim := dom.dims[rng.Intn(len(dom.dims))]
	measure := dom.measures[rng.Intn(len(dom.measures))]
	dimCol, measureCol, timeCol := dim.name, measure, dom.timeCol
	if cryptic {
		dimCol = crypticize(dim.name, rng)
		measureCol = crypticize(measure, rng)
		timeCol = crypticize(dom.timeCol, rng)
	}

	tableName := fmt.Sprintf("%s_%03d", dom.table, idx)
	tbl := table.MustNew(tableName,
		[]string{dimCol, measureCol, timeCol},
		[]table.Kind{table.KindString, table.KindFloat, table.KindTime})
	rows := 40 + rng.Intn(80)
	years := []int{2022, 2023, 2024}
	for r := 0; r < rows; r++ {
		y := years[rng.Intn(len(years))]
		m := 1 + rng.Intn(12)
		d := 1 + rng.Intn(28)
		tbl.MustAppendRow(
			table.Str(dim.values[rng.Intn(len(dim.values))]),
			table.Float(float64(50+rng.Intn(950))+rng.Float64()),
			table.Str(fmt.Sprintf("%d-%02d-%02d", y, m, d)),
		)
	}

	t := Task{
		ID:         fmt.Sprintf("%s-%03d", strings.ToLower(s.Name), idx),
		Suite:      s.Name,
		Kind:       s.Kind,
		Table:      tbl,
		Ambiguity:  clamp01(s.Ambiguity + (rng.Float64()-0.5)*0.1),
		Difficulty: clamp01(s.Difficulty + (rng.Float64()-0.5)*0.1),
	}

	template := rng.Intn(5)
	gold := &dsl.Spec{Table: tableName}
	var relevant []string
	switch template {
	case 0: // total measure by dim
		t.Query = fmt.Sprintf("total %s by %s", measure, dim.name)
		gold.MeasureList = []dsl.Measure{{Column: measureCol, Aggregate: "sum"}}
		gold.DimensionList = []string{dimCol}
		relevant = []string{measureCol, dimCol}
	case 1: // average with year filter
		year := years[rng.Intn(len(years))]
		t.Query = fmt.Sprintf("average %s by %s in %d", measure, dim.name, year)
		gold.MeasureList = []dsl.Measure{{Column: measureCol, Aggregate: "avg"}}
		gold.DimensionList = []string{dimCol}
		gold.ConditionList = []dsl.Condition{{
			Column: timeCol, Operator: "between",
			Value: fmt.Sprintf("%d-01-01", year), Value2: fmt.Sprintf("%d-12-31", year),
		}}
		relevant = []string{measureCol, dimCol, timeCol}
	case 2: // count per dim
		t.Query = fmt.Sprintf("how many records per %s", dim.name)
		gold.MeasureList = []dsl.Measure{{Column: dimCol, Aggregate: "count"}}
		gold.DimensionList = []string{dimCol}
		relevant = []string{dimCol}
	case 3: // top 3
		t.Query = fmt.Sprintf("top 3 %s by total %s", dim.name, measure)
		gold.MeasureList = []dsl.Measure{{Column: measureCol, Aggregate: "sum", Alias: "sum_" + measureCol}}
		gold.DimensionList = []string{dimCol}
		gold.OrderByList = []dsl.OrderBy{{Column: "sum_" + measureCol, Desc: true}}
		gold.Limit = 3
		relevant = []string{measureCol, dimCol}
	default: // superlative
		t.Query = fmt.Sprintf("which %s has the highest total %s", dim.name, measure)
		gold.MeasureList = []dsl.Measure{{Column: measureCol, Aggregate: "sum", Alias: "sum_" + measureCol}}
		gold.DimensionList = []string{dimCol}
		gold.OrderByList = []dsl.OrderBy{{Column: "sum_" + measureCol, Desc: true}}
		gold.Limit = 1
		relevant = []string{measureCol, dimCol}
	}

	switch s.Kind {
	case TaskNL2VIS:
		marks := []string{"bar chart", "line chart", "pie"}
		markWords := marks[rng.Intn(len(marks))]
		t.Query = fmt.Sprintf("draw a %s of %s", markWords, t.Query)
		switch markWords {
		case "bar chart":
			gold.ChartType = "bar"
		case "line chart":
			gold.ChartType = "line"
		default:
			gold.ChartType = "arc"
		}
		// Pies need small category counts and no limit games.
		if gold.ChartType == "arc" {
			gold.Limit = 0
			gold.OrderByList = nil
		}
	case TaskNL2Insight:
		t.Query = "analyze " + t.Query + " and report the key insights"
		t.GoldInsight = goldInsightText(tbl, measureCol, dimCol)
	case TaskNL2DSCode:
		t.Query = "write pandas code to compute " + t.Query
	}

	t.Gold = gold
	t.Relevant = relevant
	if sql, err := gold.ToSQL(); err == nil {
		t.GoldSQL = sql
	}
	return t
}

// goldInsightText phrases the reference insight the way a benchmark
// author would — same underlying facts, deliberately different
// vocabulary than the system's summarizer, keeping ROUGE for correct
// answers realistically below 1 (InsightBench reports ~0.33).
func goldInsightText(tbl *table.Table, measureCol, dimCol string) string {
	var lo, hi, mean float64
	for _, st := range tbl.Profile(0) {
		if st.Name == measureCol {
			lo, _ = st.Min.AsFloat()
			hi, _ = st.Max.AsFloat()
			mean = st.Mean
		}
	}
	return fmt.Sprintf(
		"Reference analysis: %s fluctuates between %.4g and %.4g around a central value of %.4g, with notable variation across %s segments; the dominant segment merits close monitoring by stakeholders.",
		measureCol, lo, hi, mean, dimCol)
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}
