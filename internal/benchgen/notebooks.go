package benchgen

import (
	"fmt"

	"datalab/internal/llm"
	"datalab/internal/notebook"
)

// NotebookQuery is one Table IV evaluation item: a query against a
// generated notebook with its gold task type and the gold relevant cells.
type NotebookQuery struct {
	Query string
	// Variable the query is about (explicit in half the items, predicted
	// in the rest).
	Variable    string
	ExplicitVar bool
	Task        notebook.TaskType
	// RelevantCells is the gold minimum set (cell IDs).
	RelevantCells []string
}

// GeneratedNotebook bundles a notebook with its evaluation queries.
type GeneratedNotebook struct {
	Notebook *notebook.Notebook
	Queries  []NotebookQuery
}

// GenerateNotebook builds a multi-language notebook with nCells cells,
// structured as analysis chains: SQL extract -> Python transforms ->
// chart, with interspersed Markdown notes and independent chains. This is
// the Figure 7 / Table IV workload.
func GenerateNotebook(seed string, nCells int) (*GeneratedNotebook, error) {
	rng := llm.NewRand("notebook:" + seed)
	nb := notebook.New("generated-" + seed)
	g := &GeneratedNotebook{Notebook: nb}

	topics := []string{"sales", "orders", "traffic", "billing", "retention"}
	chain := 0
	var curVar string
	var chainCells []string
	var chainTopic string
	var chainMarkdown string

	flushQueries := func() {
		if curVar == "" || len(chainCells) == 0 {
			return
		}
		visRelevant := append([]string{}, chainCells...)
		if chainMarkdown != "" {
			// The chain's note carries a threshold the chart must honor:
			// critical context that lives only in Markdown (the retrieval
			// weak spot Table IV's accuracy drop traces to).
			visRelevant = append(visRelevant, chainMarkdown)
		}
		g.Queries = append(g.Queries,
			NotebookQuery{
				Query:         fmt.Sprintf("write a sql query refining the %s extraction", chainTopic),
				Variable:      curVar,
				ExplicitVar:   true,
				Task:          notebook.TaskNL2SQL,
				RelevantCells: filterByType(nb, chainCells, notebook.CellSQL),
			},
			NotebookQuery{
				Query:         fmt.Sprintf("clean the %s dataframe with pandas", chainTopic),
				Variable:      curVar,
				ExplicitVar:   rngBool(rng),
				Task:          notebook.TaskNL2DSCode,
				RelevantCells: filterByType(nb, chainCells, notebook.CellPython),
			},
			NotebookQuery{
				Query:         fmt.Sprintf("draw a chart of the %s summary", chainTopic),
				Variable:      curVar,
				ExplicitVar:   true,
				Task:          notebook.TaskNL2VIS,
				RelevantCells: visRelevant,
			},
		)
	}

	for len(nb.Cells()) < nCells {
		pos := len(nb.Cells())
		switch {
		case pos%14 == 5 || pos%14 == 9:
			// Markdown note mentioning the chain topic.
			id, err := nb.AddCell(notebook.CellMarkdown,
				fmt.Sprintf("## Notes on %s\nkey threshold for %s is 0.8", chainTopic, chainTopic))
			if err != nil {
				return nil, err
			}
			chainMarkdown = id
		case pos%14 == 0:
			// Start a new chain with a SQL extraction.
			flushQueries()
			chain++
			chainTopic = topics[rng.Intn(len(topics))]
			chainMarkdown = ""
			curVar = fmt.Sprintf("%s_df_%d", chainTopic, chain)
			id, err := nb.AddSQLCell(
				fmt.Sprintf("SELECT region, amount FROM %s WHERE amount > %d", chainTopic, rng.Intn(100)),
				curVar)
			if err != nil {
				return nil, err
			}
			chainCells = []string{id}
		case pos%14 == 13 && curVar != "":
			// Chart over the current chain.
			id, err := nb.AddCell(notebook.CellChart, fmt.Sprintf(
				`{"mark":"bar","encoding":{"x":{"field":"region"},"y":{"field":"amount"}},"data":%q}`, curVar))
			if err != nil {
				return nil, err
			}
			chainCells = append(chainCells, id)
		default:
			// Python transform continuing the chain.
			next := fmt.Sprintf("%s_t%d", curVar, pos)
			src := fmt.Sprintf("%s = %s.dropna()\n%s = %s[%s[\"amount\"] > %d]",
				next, curVar, next, next, next, rng.Intn(50))
			id, err := nb.AddCell(notebook.CellPython, src)
			if err != nil {
				return nil, err
			}
			chainCells = append(chainCells, id)
			curVar = next
		}
	}
	flushQueries()
	return g, nil
}

func filterByType(nb *notebook.Notebook, ids []string, t notebook.CellType) []string {
	var out []string
	for _, id := range ids {
		if c, ok := nb.Cell(id); ok && c.Type == t {
			out = append(out, id)
		}
	}
	return out
}

func rngBool(rng *llm.Rand) bool { return rng.Float64() < 0.5 }
