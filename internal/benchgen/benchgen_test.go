package benchgen

import (
	"strings"
	"testing"

	"datalab/internal/notebook"
	"datalab/internal/sqlengine"
)

func TestSuitesCalibrationOrdering(t *testing.T) {
	spider, _ := SuiteByName("Spider")
	bird, _ := SuiteByName("BIRD")
	if bird.Ambiguity <= spider.Ambiguity {
		t.Error("BIRD must be more ambiguous than Spider")
	}
	ds1000, _ := SuiteByName("DS-1000")
	dseval, _ := SuiteByName("DSEval")
	if ds1000.Difficulty <= dseval.Difficulty {
		t.Error("DS-1000 must be harder than DSEval")
	}
	if _, ok := SuiteByName("nonexistent"); ok {
		t.Error("unknown suite found")
	}
}

func TestGenerateSuiteDeterministic(t *testing.T) {
	s, _ := SuiteByName("Spider")
	s.N = 10
	a := GenerateSuite(s, "seed1")
	b := GenerateSuite(s, "seed1")
	for i := range a {
		if a[i].Query != b[i].Query || a[i].GoldSQL != b[i].GoldSQL {
			t.Fatal("suite generation not deterministic")
		}
	}
	c := GenerateSuite(s, "seed2")
	diff := false
	for i := range a {
		if a[i].Query != c[i].Query {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds should differ")
	}
}

func TestGeneratedGoldSQLExecutes(t *testing.T) {
	for _, name := range []string{"Spider", "BIRD", "nvBench"} {
		s, _ := SuiteByName(name)
		s.N = 25
		for _, task := range GenerateSuite(s, "exec-test") {
			if task.GoldSQL == "" {
				t.Fatalf("%s: empty gold SQL", task.ID)
			}
			cat := sqlengine.NewCatalog()
			cat.Register(task.Table)
			res, err := cat.Query(task.GoldSQL)
			if err != nil {
				t.Fatalf("%s: gold SQL fails: %v\n%s", task.ID, err, task.GoldSQL)
			}
			if res == nil {
				t.Fatalf("%s: nil result", task.ID)
			}
		}
	}
}

func TestGeneratedTasksHaveRelevantColumns(t *testing.T) {
	s, _ := SuiteByName("BIRD")
	s.N = 20
	for _, task := range GenerateSuite(s, "rel") {
		if len(task.Relevant) == 0 {
			t.Fatalf("%s: no relevant columns", task.ID)
		}
		for _, col := range task.Relevant {
			if task.Table.ColumnIndex(col) < 0 {
				t.Fatalf("%s: relevant column %q not in table %v", task.ID, col, task.Table.ColumnNames())
			}
		}
	}
}

func TestVISTasksCarryChartType(t *testing.T) {
	s, _ := SuiteByName("VisEval")
	s.N = 20
	for _, task := range GenerateSuite(s, "vis") {
		if task.Gold.ChartType == "" {
			t.Fatalf("%s: no chart type", task.ID)
		}
	}
}

func TestInsightTasksCarryGoldText(t *testing.T) {
	s, _ := SuiteByName("InsightBench")
	s.N = 10
	for _, task := range GenerateSuite(s, "ins") {
		if task.GoldInsight == "" {
			t.Fatalf("%s: no gold insight", task.ID)
		}
	}
}

func TestBIRDIsCrypticizedSometimes(t *testing.T) {
	s, _ := SuiteByName("BIRD")
	s.N = 60
	cryptic := 0
	for _, task := range GenerateSuite(s, "cryptic") {
		for _, name := range task.Table.ColumnNames() {
			if strings.HasSuffix(name, "_f") || strings.HasSuffix(name, "_v2") ||
				strings.HasSuffix(name, "_amt") || strings.HasSuffix(name, "_cd") ||
				strings.HasSuffix(name, "_val") {
				cryptic++
				break
			}
		}
	}
	if cryptic < 10 {
		t.Errorf("BIRD should crypticize a large share of schemas, got %d/60", cryptic)
	}
}

func TestGenerateEnterprise(t *testing.T) {
	tables := GenerateEnterprise("test", 4)
	if len(tables) != 4 {
		t.Fatalf("tables = %d", len(tables))
	}
	for _, et := range tables {
		if len(et.Schema.Columns) < 6 {
			t.Errorf("schema too small: %d columns", len(et.Schema.Columns))
		}
		if len(et.Scripts) < 2 {
			t.Errorf("too few scripts: %d", len(et.Scripts))
		}
		if et.Data.NumRows() < 50 {
			t.Errorf("too little data: %d rows", et.Data.NumRows())
		}
		for _, c := range et.Schema.Columns {
			if et.ExpertColumnDesc[c.Name] == "" {
				t.Errorf("no expert description for %s", c.Name)
			}
			if et.Data.ColumnIndex(c.Name) < 0 {
				t.Errorf("schema column %s missing from data", c.Name)
			}
		}
	}
	// Lineage links consecutive tables.
	if len(tables[1].Lineage) == 0 {
		t.Error("no lineage edges generated")
	}
}

func TestEnterpriseScriptsParse(t *testing.T) {
	tables := GenerateEnterprise("parse", 3)
	for _, et := range tables {
		for _, s := range et.Scripts {
			if s.Language != "sql" {
				continue
			}
			clean := stripSQLComments(s.Text)
			if _, err := sqlengine.Parse(clean); err != nil {
				t.Errorf("script %s does not parse: %v\n%s", s.ID, err, s.Text)
			}
		}
	}
}

func stripSQLComments(sql string) string {
	var lines []string
	for _, line := range strings.Split(sql, "\n") {
		if i := strings.Index(line, "--"); i >= 0 {
			line = line[:i]
		}
		lines = append(lines, line)
	}
	return strings.Join(lines, "\n")
}

func TestSchemaLinkingPairs(t *testing.T) {
	tables := GenerateEnterprise("pairs", 4)
	pairs := SchemaLinkingPairs(tables, 50, "x")
	if len(pairs) != 50 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	for _, p := range pairs {
		if len(p.Relevant) == 0 || p.Query == "" || p.Table == "" {
			t.Fatalf("malformed pair: %+v", p)
		}
	}
}

func TestNL2DSLPairsMix(t *testing.T) {
	tables := GenerateEnterprise("dslpairs", 4)
	pairs := NL2DSLPairs(tables, 120, "y")
	derived := 0
	for _, p := range pairs {
		if err := p.Gold.Validate(); err != nil {
			t.Fatalf("invalid gold DSL: %v", err)
		}
		if p.NeedsDerived {
			derived++
		}
	}
	if derived < 20 || derived > 70 {
		t.Errorf("derived share = %d/120, want roughly a third", derived)
	}
}

func TestComplexQuestionsMentionMultipleIntents(t *testing.T) {
	tables := GenerateEnterprise("cq", 3)
	qs := ComplexQuestions(tables, 30, "z")
	if len(qs) != 30 {
		t.Fatalf("questions = %d", len(qs))
	}
	for _, q := range qs {
		intents := 0
		for _, kw := range []string{"anomal", "forecast", "why", "correlation", "chart", "plot", "summar", "report", "analy", "spike", "outlier"} {
			if strings.Contains(strings.ToLower(q.Query), kw) {
				intents++
			}
		}
		if intents < 2 {
			t.Errorf("question %s has too few intents: %q", q.ID, q.Query)
		}
	}
}

func TestGenerateNotebookSizes(t *testing.T) {
	for _, n := range []int{2, 10, 25, 49} {
		g, err := GenerateNotebook("size", n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got := g.Notebook.NumCells(); got < n {
			t.Errorf("n=%d: cells = %d", n, got)
		}
	}
}

func TestGeneratedNotebookHasEdgesAndQueries(t *testing.T) {
	g, err := GenerateNotebook("edges", 20)
	if err != nil {
		t.Fatal(err)
	}
	edges := 0
	for _, c := range g.Notebook.Cells() {
		edges += len(g.Notebook.DependsOn(c.ID))
	}
	if edges < 5 {
		t.Errorf("too few dependency edges: %d", edges)
	}
	if len(g.Queries) < 3 {
		t.Errorf("too few queries: %d", len(g.Queries))
	}
	for _, q := range g.Queries {
		if q.Task == notebook.TaskUnknown {
			t.Errorf("query %q has unknown task", q.Query)
		}
	}
}
