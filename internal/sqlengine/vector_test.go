package sqlengine

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"datalab/internal/table"
)

// dumpTable renders a table as column names plus canonical cell keys, for
// strict (ordered) result comparison between the two executors.
func dumpTable(t *table.Table) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.ColumnNames(), "|"))
	sb.WriteByte('\n')
	for i, n := 0, t.NumRows(); i < n; i++ {
		for j := range t.Columns {
			sb.WriteString(t.Columns[j].Value(i).Key())
			sb.WriteByte('|')
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// checkDifferential runs one query through both executors and fails on any
// mismatch in error status, column names, row order, or cell values.
func checkDifferential(t *testing.T, c *Catalog, q string) {
	t.Helper()
	vec, vecErr := c.Query(q)
	sca, scaErr := c.QueryScalar(q)
	if (vecErr == nil) != (scaErr == nil) {
		t.Errorf("query %q: error mismatch\n  vectorized: %v\n  scalar:     %v", q, vecErr, scaErr)
		return
	}
	if vecErr != nil {
		return
	}
	dv, ds := dumpTable(vec), dumpTable(sca)
	if dv != ds {
		t.Errorf("query %q: result mismatch\n-- vectorized --\n%s\n-- scalar --\n%s", q, dv, ds)
	}
}

func TestVectorizedMatchesScalarCorpus(t *testing.T) {
	c := testCatalog(t)
	queries := []string{
		"SELECT * FROM sales",
		"SELECT id, amount FROM sales WHERE amount > 100",
		"SELECT id FROM sales WHERE amount <= 0",
		"SELECT id FROM sales WHERE amount IS NULL",
		"SELECT id FROM sales WHERE amount IS NOT NULL AND qty > 1",
		"SELECT region, SUM(amount) FROM sales GROUP BY region ORDER BY 2 DESC",
		"SELECT region, SUM(amount) AS total FROM sales GROUP BY region ORDER BY total DESC, region",
		"SELECT s.id, p.price FROM sales s JOIN products p ON s.product = p.name WHERE p.price > 40",
		"SELECT s.id, p.name FROM sales s LEFT JOIN products p ON s.product = p.name ORDER BY s.id",
		"SELECT s.id FROM sales s JOIN products p ON s.product = p.name AND s.amount > p.price",
		"SELECT s.id, p.category FROM sales s RIGHT JOIN products p ON s.product = p.name",
		"SELECT s.id, p.category FROM sales s RIGHT OUTER JOIN products p ON s.product = p.name AND s.qty > 1",
		"SELECT s.id, p.name FROM sales s FULL OUTER JOIN products p ON s.product = p.name",
		"SELECT s.id, p.name FROM sales s FULL JOIN products p ON s.product = p.name AND s.amount > 100",
		"SELECT p.category, COUNT(*) FROM sales s FULL OUTER JOIN products p ON s.product = p.name GROUP BY p.category ORDER BY 1",
		"SELECT s.region, p.price FROM sales s RIGHT JOIN products p ON s.product = p.name WHERE p.price > 40 ORDER BY s.region, p.price",
		"SELECT region, COUNT(*) AS n FROM sales WHERE amount IS NOT NULL GROUP BY region HAVING COUNT(*) > 1",
		"SELECT id FROM sales WHERE region = 'west' AND (product = 'widget' OR qty >= 4)",
		"SELECT id, amount * qty FROM sales WHERE id BETWEEN 2 AND 5",
		"SELECT id FROM sales WHERE id NOT BETWEEN 2 AND 5",
		"SELECT id FROM sales WHERE product IN ('widget', 'gadget') ORDER BY id",
		"SELECT id FROM sales WHERE product NOT IN ('widget') ORDER BY id DESC",
		"SELECT id FROM sales WHERE qty IN (1, 3)",
		"SELECT DISTINCT region FROM sales ORDER BY region",
		"SELECT DISTINCT product, region FROM sales",
		"SELECT UPPER(region), amount + 1.5 FROM sales WHERE NOT (qty < 2)",
		"SELECT id, -amount, -qty FROM sales",
		"SELECT id FROM sales WHERE product LIKE 'w%'",
		"SELECT id FROM sales WHERE region || product LIKE '%stwid%'",
		"SELECT region, MIN(amount), MAX(amount), AVG(amount) FROM sales GROUP BY region",
		"SELECT COUNT(*), COUNT(amount), SUM(qty) FROM sales",
		"SELECT COUNT(DISTINCT region) FROM sales",
		"SELECT MEDIAN(amount), STDDEV(amount) FROM sales",
		"SELECT s.region, p.category, SUM(s.amount) FROM sales s LEFT JOIN products p ON s.product = p.name GROUP BY s.region, p.category",
		"SELECT CASE WHEN amount > 100 THEN 'big' ELSE 'small' END AS size, COUNT(*) FROM sales GROUP BY size",
		"SELECT id, amount FROM sales ORDER BY amount DESC LIMIT 3",
		"SELECT id FROM sales ORDER BY id LIMIT 2 OFFSET 2",
		"SELECT qty, qty % 2, qty / 2 FROM sales",
		"SELECT id FROM sales WHERE amount / 0 > 1",
		"SELECT YEAR(ftime), COUNT(*) FROM sales GROUP BY YEAR(ftime) ORDER BY 1",
		"SELECT region FROM sales WHERE ftime > '2024-01-01'",
		"SELECT unknowncol FROM sales",
		"SELECT id FROM sales WHERE unknowncol = 1",
		"SELECT region, SUM(amount * qty) FROM sales GROUP BY region",
		"SELECT NULL AS x FROM sales LIMIT 2",
		"SELECT id, CASE WHEN amount > 1e9 THEN 1 END AS never FROM sales ORDER BY id LIMIT 3",
	}
	for _, q := range queries {
		checkDifferential(t, c, q)
	}
}

// TestAllNullProjectionDoesNotPanic pins the regression where an all-NULL
// projected column was retagged to TEXT without string storage and
// crashed in Slice/Limit.
func TestAllNullProjectionDoesNotPanic(t *testing.T) {
	c := testCatalog(t)
	out := mustQuery(t, c, "SELECT NULL AS x FROM sales LIMIT 2")
	if out.NumRows() != 2 || out.NumCols() != 1 {
		t.Fatalf("shape = %dx%d", out.NumRows(), out.NumCols())
	}
	for i := 0; i < out.NumRows(); i++ {
		if !out.Columns[0].Value(i).IsNull() {
			t.Errorf("row %d: want NULL, got %v", i, out.Columns[0].Value(i))
		}
	}
	if got := out.Columns[0].Kind; got != table.KindString {
		t.Errorf("all-NULL column kind = %v, want TEXT default", got)
	}
	// Distinct + offset also walk the column; make sure they survive too.
	out = mustQuery(t, c, "SELECT DISTINCT NULL AS x FROM sales")
	if out.NumRows() != 1 {
		t.Errorf("distinct all-NULL rows = %d, want 1", out.NumRows())
	}
}

// randDataRow draws one row for the `data` table — shared between initial
// catalog construction and the streaming appends the snapshot-immutability
// executor performs, so ingested rows follow the same distributions.
func randDataRow(rng *rand.Rand) []table.Value {
	cats := []string{"red", "green", "blue", "mauve", ""}
	var a, b, c, d table.Value
	if rng.Intn(10) == 0 {
		a = table.Null()
	} else {
		a = table.Int(int64(rng.Intn(50) - 10))
	}
	if rng.Intn(10) == 0 {
		b = table.Null()
	} else {
		b = table.Float(float64(rng.Intn(2000))/10 - 40)
	}
	s := cats[rng.Intn(len(cats))]
	if s == "" {
		c = table.Null()
	} else {
		c = table.Str(s)
	}
	if rng.Intn(12) == 0 {
		d = table.Null()
	} else {
		d = table.Bool(rng.Intn(2) == 0)
	}
	return []table.Value{a, b, c, d, table.Int(int64(rng.Intn(8)))}
}

// randMultiRow draws one row for the duplicate-keyed `multi` join table.
func randMultiRow(rng *rand.Rand) []table.Value {
	var k table.Value
	switch {
	case rng.Intn(8) == 0:
		k = table.Null()
	case rng.Intn(5) == 0:
		k = table.Int(int64(8 + rng.Intn(2)))
	default:
		k = table.Int(int64(rng.Intn(6)))
	}
	return []table.Value{k,
		table.Str(fmt.Sprintf("t%d", rng.Intn(4))),
		table.Float(float64(rng.Intn(80)) / 10)}
}

// randCatalog builds a randomized dataset with NULLs, duplicates, and a
// dimension table for joins.
func randCatalog(rng *rand.Rand, rows int) *Catalog {
	data := table.MustNew("data",
		[]string{"a", "b", "c", "d", "e"},
		[]table.Kind{table.KindInt, table.KindFloat, table.KindString, table.KindBool, table.KindInt})
	for i := 0; i < rows; i++ {
		data.MustAppendRow(randDataRow(rng)...)
	}
	dim := table.MustNew("dim",
		[]string{"key", "label", "weight"},
		[]table.Kind{table.KindInt, table.KindString, table.KindFloat})
	for k := 0; k < 6; k++ {
		dim.MustAppendRow(table.Int(int64(k)), table.Str(fmt.Sprintf("label%d", k%3)), table.Float(float64(k)*1.5))
	}
	// multi is the fan-out join target: mkey values cluster on data.e's
	// 0..5 with duplicates (one probe row matches several multi rows),
	// plus keys 8..9 no data row carries (RIGHT/FULL padding) and NULL
	// keys that never match. score fuels residual ON predicates.
	multi := table.MustNew("multi",
		[]string{"mkey", "tag", "score"},
		[]table.Kind{table.KindInt, table.KindString, table.KindFloat})
	for i, n := 0, 6+rng.Intn(12); i < n; i++ {
		multi.MustAppendRow(randMultiRow(rng)...)
	}
	c := NewCatalog()
	c.Register(data)
	c.Register(dim)
	c.Register(multi)
	return c
}

// randPredicate generates a random WHERE/HAVING-free predicate over data's
// columns.
func randPredicate(rng *rand.Rand, depth int) string {
	if depth > 0 && rng.Intn(3) == 0 {
		op := "AND"
		if rng.Intn(2) == 0 {
			op = "OR"
		}
		l := randPredicate(rng, depth-1)
		r := randPredicate(rng, depth-1)
		p := fmt.Sprintf("(%s %s %s)", l, op, r)
		if rng.Intn(4) == 0 {
			p = "NOT " + p
		}
		return p
	}
	cmps := []string{"=", "<>", "<", "<=", ">", ">="}
	switch rng.Intn(11) {
	case 0:
		return fmt.Sprintf("a %s %d", cmps[rng.Intn(len(cmps))], rng.Intn(50)-10)
	case 1:
		return fmt.Sprintf("b %s %.1f", cmps[rng.Intn(len(cmps))], float64(rng.Intn(1600))/10-40)
	case 2:
		return fmt.Sprintf("c %s '%s'", cmps[rng.Intn(2)], []string{"red", "green", "blue"}[rng.Intn(3)])
	case 3:
		return fmt.Sprintf("a BETWEEN %d AND %d", rng.Intn(20)-10, rng.Intn(30))
	case 4:
		return fmt.Sprintf("c IN ('red', '%s')", []string{"green", "blue", "teal"}[rng.Intn(3)])
	case 5:
		return fmt.Sprintf("a IN (%d, %d, %d)", rng.Intn(20), rng.Intn(20), rng.Intn(20))
	case 6:
		col := []string{"a", "b", "c", "d"}[rng.Intn(4)]
		if rng.Intn(2) == 0 {
			return col + " IS NULL"
		}
		return col + " IS NOT NULL"
	case 7:
		return fmt.Sprintf("c LIKE '%s'", []string{"%e%", "b_ue", "%d", "gr%"}[rng.Intn(4)])
	case 8:
		// Uncorrelated scalar subquery: aggregates always yield one row,
		// so the comparison is error-free; both engines inline the result.
		sub := []string{"MIN(mkey)", "MAX(score)", "AVG(score)", "COUNT(*)", "SUM(weight)"}[rng.Intn(5)]
		from := "multi"
		if sub == "SUM(weight)" {
			from = "dim"
		}
		return fmt.Sprintf("a %s (SELECT %s FROM %s)", cmps[rng.Intn(len(cmps))], sub, from)
	case 9:
		// IN (SELECT ...): the membership list is data-dependent and may
		// contain NULL mkeys, driving the three-valued NOT IN edge.
		not := ""
		if rng.Intn(3) == 0 {
			not = "NOT "
		}
		return fmt.Sprintf("e %sIN (SELECT mkey FROM multi WHERE score %s %.1f)",
			not, cmps[rng.Intn(len(cmps))], float64(rng.Intn(80))/10)
	default:
		// Non-aggregate scalar subquery: returns 0 rows (→ NULL
		// comparison), 1 row, or several — the several-rows case must fail
		// identically in every executor.
		return fmt.Sprintf("b > (SELECT score FROM multi WHERE score > %.1f)", 6.0+float64(rng.Intn(25))/10)
	}
}

// randWindowItem draws one window-function select item. Arguments,
// partition keys, and sort keys span the typed sort-kernel path (int,
// float, string keys, NULLs included) and the boxed fallback (bool
// partition/order keys); frames cover whole-partition, running RANGE, and
// sliding ROWS shapes.
func randWindowItem(rng *rand.Rand) string {
	part := []string{"", "PARTITION BY c ", "PARTITION BY e ", "PARTITION BY d ", "PARTITION BY c, e "}[rng.Intn(5)]
	ord := "ORDER BY " + []string{"a", "b", "e", "a DESC", "b DESC, a", "c, a DESC", "e DESC, b", "d, a"}[rng.Intn(8)]
	agg := []string{"SUM(a)", "COUNT(*)", "AVG(b)", "MIN(a)", "MAX(b)", "COUNT(c)", "SUM(b)", "SUM(a + e)"}[rng.Intn(8)]
	switch rng.Intn(4) {
	case 0:
		rank := []string{"ROW_NUMBER", "RANK", "DENSE_RANK"}[rng.Intn(3)]
		return fmt.Sprintf("%s() OVER (%s%s)", rank, part, ord)
	case 1:
		if part != "" && rng.Intn(2) == 0 {
			// Whole-partition aggregate: no ORDER BY in the spec.
			return fmt.Sprintf("%s OVER (%s)", agg, strings.TrimSpace(part))
		}
		return fmt.Sprintf("%s OVER (%s%s)", agg, part, ord)
	case 2:
		bound := fmt.Sprintf("%d", rng.Intn(4))
		if rng.Intn(4) == 0 {
			bound = "UNBOUNDED"
		}
		return fmt.Sprintf("%s OVER (%s%s ROWS BETWEEN %s PRECEDING AND CURRENT ROW)", agg, part, ord, bound)
	default:
		return fmt.Sprintf("%s OVER (%s%s)", agg, part, ord)
	}
}

func randQuery(rng *rand.Rand) string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if rng.Intn(6) == 0 {
		sb.WriteString("DISTINCT ")
	}
	join := rng.Intn(4) == 0

	if rng.Intn(3) == 0 { // grouped
		keys := []string{}
		for _, k := range []string{"c", "e"} {
			if rng.Intn(2) == 0 {
				keys = append(keys, k)
			}
		}
		aggs := []string{"SUM(a)", "SUM(b)", "COUNT(*)", "COUNT(b)", "AVG(b)", "MIN(a)", "MAX(b)", "SUM(a + b)", "COUNT(DISTINCT c)"}
		items := append([]string{}, keys...)
		agg1 := aggs[rng.Intn(len(aggs))]
		aliased := rng.Intn(3) == 0
		if aliased {
			items = append(items, agg1+" AS agg1")
		} else {
			items = append(items, agg1)
		}
		if rng.Intn(2) == 0 {
			items = append(items, aggs[rng.Intn(len(aggs))])
		}
		sb.WriteString(strings.Join(items, ", "))
		sb.WriteString(" FROM data")
		if rng.Intn(2) == 0 {
			sb.WriteString(" WHERE ")
			sb.WriteString(randPredicate(rng, 2))
		}
		if len(keys) > 0 {
			sb.WriteString(" GROUP BY ")
			sb.WriteString(strings.Join(keys, ", "))
			// HAVING shapes: bare aggregate comparison, select-list alias
			// reference, compound expressions over several aggregates, and
			// an uncorrelated subquery threshold.
			switch rng.Intn(6) {
			case 0:
				sb.WriteString(fmt.Sprintf(" HAVING COUNT(*) > %d", rng.Intn(3)))
			case 1:
				if aliased {
					sb.WriteString(fmt.Sprintf(" HAVING agg1 >= %d", rng.Intn(20)-5))
				} else {
					sb.WriteString(fmt.Sprintf(" HAVING %s >= %d", agg1, rng.Intn(20)-5))
				}
			case 2:
				sb.WriteString(fmt.Sprintf(" HAVING MIN(a) + %d < MAX(a) OR COUNT(*) = 1", rng.Intn(6)))
			case 3:
				sb.WriteString(" HAVING COUNT(*) > (SELECT MIN(mkey) FROM multi)")
			}
		}
		sb.WriteString(" ORDER BY 1")
		if len(items) > 1 && rng.Intn(2) == 0 {
			sb.WriteString(" DESC, 2")
		}
		if rng.Intn(4) == 0 {
			sb.WriteString(fmt.Sprintf(" LIMIT %d", rng.Intn(8)))
			if rng.Intn(2) == 0 {
				sb.WriteString(fmt.Sprintf(" OFFSET %d", rng.Intn(6)))
			}
		}
		return sb.String()
	}

	cols := []string{"a", "b", "c", "d", "e", "a + e", "a * 2", "b - a", "UPPER(c)", "ABS(a)",
		"CASE WHEN a > 5 THEN 'hi' WHEN a > 0 THEN 'mid' ELSE 'lo' END",
		// Mixed-kind result: the projected column degrades to boxed
		// storage, so ORDER BY referencing its position exercises the
		// typed sort kernel's boxed-comparator fallback.
		"CASE WHEN a > 5 THEN a ELSE c END",
		// Simple CASE (operand form), including a NULL-operand row falling
		// through every WHEN, and a missing ELSE yielding NULL.
		"CASE c WHEN 'red' THEN 1 WHEN 'blue' THEN 2 ELSE 0 END",
		"CASE e WHEN 0 THEN 'zero' WHEN 1 THEN 'one' END",
		// Uncorrelated scalar subquery as a projected constant.
		"(SELECT MAX(score) FROM multi)"}
	nitems := 1 + rng.Intn(3)
	items := make([]string, nitems)
	for i := range items {
		items[i] = cols[rng.Intn(len(cols))]
	}
	// Window items ride along on roughly a third of row-context queries,
	// sometimes aliased so ORDER BY can reference them by name.
	win := rng.Intn(3) == 0
	hasW1 := false
	if win {
		w := randWindowItem(rng)
		if rng.Intn(2) == 0 {
			w += " AS w1"
			hasW1 = true
		}
		items = append(items, w)
		if rng.Intn(3) == 0 {
			items = append(items, randWindowItem(rng))
		}
	}
	// Join templates cover every kind (INNER/LEFT/RIGHT/FULL OUTER) over
	// both shapes: dim (N:1 — each data row matches at most one dim row)
	// and multi (1:N fan-out with duplicate keys, missing keys, and NULL
	// keys), optionally with residual ON conjuncts — including cross-side
	// residuals, which exercise the batched candidate-pair evaluation.
	// Residuals are error-free by construction: the hash join skips pairs
	// the scalar nested loop evaluates, so a data-dependent residual error
	// could surface in only one executor.
	fanout := join && rng.Intn(2) == 0
	if join {
		if fanout {
			items = append(items, "multi.tag")
		} else {
			items = append(items, "dim.label")
		}
	}
	sb.WriteString(strings.Join(items, ", "))
	sb.WriteString(" FROM data")
	if join {
		kinds := []string{"JOIN", "LEFT JOIN", "RIGHT JOIN", "FULL OUTER JOIN"}
		kw := kinds[rng.Intn(len(kinds))]
		if fanout {
			sb.WriteString(" " + kw + " multi ON data.e = multi.mkey")
			switch rng.Intn(4) {
			case 0:
				sb.WriteString(" AND multi.score > 2.5")
			case 1:
				sb.WriteString(" AND data.a < multi.score") // cross-side residual
			}
		} else {
			sb.WriteString(" " + kw + " dim ON data.e = dim.key")
			if rng.Intn(3) == 0 {
				sb.WriteString(" AND dim.weight > 2.0")
			}
		}
	}
	if rng.Intn(2) == 0 {
		sb.WriteString(" WHERE ")
		sb.WriteString(randPredicate(rng, 2))
	}
	if rng.Intn(2) == 0 {
		// Multi-key ORDER BY with mixed ASC/DESC, mixing 1-based output
		// positions with base-table columns (which need not appear in the
		// select list). Duplicate-heavy key columns (c, d, e) make ties
		// common, so the typed kernel's stability is differentially
		// checked against the scalar stable sort.
		nkeys := 1 + rng.Intn(3)
		keys := make([]string, nkeys)
		for i := range keys {
			switch {
			case rng.Intn(2) == 0:
				keys[i] = fmt.Sprintf("%d", 1+rng.Intn(len(items)))
			case hasW1 && rng.Intn(4) == 0:
				keys[i] = "w1" // window item by alias
			default:
				keys[i] = []string{"a", "b", "c", "d", "e"}[rng.Intn(5)]
			}
			if rng.Intn(2) == 0 {
				keys[i] += " DESC"
			}
		}
		sb.WriteString(" ORDER BY " + strings.Join(keys, ", "))
	}
	if rng.Intn(3) == 0 {
		sb.WriteString(fmt.Sprintf(" LIMIT %d", rng.Intn(21)))
		if rng.Intn(3) == 0 {
			// Offsets land both inside the table and beyond it (tables cap
			// at 700 rows), so OFFSET m with m >= n is always-on coverage.
			off := rng.Intn(5)
			if rng.Intn(4) == 0 {
				off = 600 + rng.Intn(300)
			}
			sb.WriteString(fmt.Sprintf(" OFFSET %d", off))
		}
	}
	return sb.String()
}

// TestVectorizedMatchesScalarRandom cross-checks the vectorized executor
// against the scalar reference on randomized queries over randomized data,
// the property-test style used in internal/dsl.
func TestVectorizedMatchesScalarRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := randCatalog(rng, 400)
	for i := 0; i < 300; i++ {
		q := randQuery(rng)
		checkDifferential(t, c, q)
		if t.Failed() {
			t.Fatalf("first failure at query %d: %s", i, q)
		}
	}
}

// TestConcurrentQueryAndRegister exercises the catalog's reader/writer
// locking: many goroutines query while others register new tables. Run
// under -race in CI.
func TestConcurrentQueryAndRegister(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := randCatalog(rng, 2000)
	queries := []string{
		"SELECT c, SUM(a), COUNT(*) FROM data GROUP BY c ORDER BY 1",
		"SELECT a, b FROM data WHERE a > 5 AND b < 100 ORDER BY a LIMIT 50",
		"SELECT data.a, dim.label FROM data JOIN dim ON data.e = dim.key WHERE dim.weight > 1",
		"SELECT COUNT(*) FROM data WHERE c IN ('red', 'blue') OR a IS NULL",
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if g%4 == 3 && i%5 == 0 {
					extra := table.MustNew(fmt.Sprintf("extra%d_%d", g, i),
						[]string{"x"}, []table.Kind{table.KindInt})
					extra.MustAppendRow(table.Int(int64(i)))
					c.Register(extra)
					continue
				}
				if _, err := c.Query(queries[(g+i)%len(queries)]); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
