package sqlengine

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"datalab/internal/table"
)

// Catalog is a named collection of tables — the engine's database.
type Catalog struct {
	tables map[string]*table.Table
	order  []string
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: map[string]*table.Table{}}
}

// Register adds (or replaces) a table under its own name.
func (c *Catalog) Register(t *table.Table) {
	key := strings.ToLower(t.Name)
	if _, exists := c.tables[key]; !exists {
		c.order = append(c.order, key)
	}
	c.tables[key] = t
}

// Table looks up a table case-insensitively, also accepting a trailing
// "db." qualifier.
func (c *Catalog) Table(name string) (*table.Table, bool) {
	key := strings.ToLower(name)
	if t, ok := c.tables[key]; ok {
		return t, true
	}
	if i := strings.LastIndexByte(key, '.'); i >= 0 {
		if t, ok := c.tables[key[i+1:]]; ok {
			return t, true
		}
	}
	return nil, false
}

// TableNames returns registered table names in registration order.
func (c *Catalog) TableNames() []string {
	names := make([]string, 0, len(c.order))
	for _, k := range c.order {
		names = append(names, c.tables[k].Name)
	}
	return names
}

// Query parses and executes a SELECT against the catalog.
func (c *Catalog) Query(sql string) (*table.Table, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return c.Execute(stmt)
}

// relation is the executor's working representation: qualified columns
// plus row-major values.
type relation struct {
	quals []string // lowercased table alias/name per column
	names []string // lowercased column name per column
	disp  []string // display name per column (original case)
	kinds []table.Kind
	rows  [][]table.Value
}

func relationFrom(t *table.Table, qual string) *relation {
	r := &relation{}
	q := strings.ToLower(qual)
	for _, col := range t.Columns {
		r.quals = append(r.quals, q)
		r.names = append(r.names, strings.ToLower(col.Name))
		r.disp = append(r.disp, col.Name)
		r.kinds = append(r.kinds, col.Kind)
	}
	n := t.NumRows()
	r.rows = make([][]table.Value, n)
	for i := 0; i < n; i++ {
		r.rows[i] = t.Row(i)
	}
	return r
}

// findColumn resolves a reference to a column index; -1 when absent.
// Ambiguous unqualified references resolve to the first match, matching
// the lenient behaviour benchmark queries rely on.
func (r *relation) findColumn(ref *ColumnRef) int {
	name := strings.ToLower(ref.Name)
	qual := strings.ToLower(ref.Table)
	for i := range r.names {
		if r.names[i] != name {
			continue
		}
		if qual == "" || r.quals[i] == qual {
			return i
		}
	}
	return -1
}

// rowEnv evaluates expressions against one relation row.
type rowEnv struct {
	rel *relation
	row []table.Value
}

func (e *rowEnv) resolveColumn(ref *ColumnRef) (table.Value, error) {
	i := e.rel.findColumn(ref)
	if i < 0 {
		return table.Null(), fmt.Errorf("sql: unknown column %q", ref.SQL())
	}
	return e.row[i], nil
}

func (e *rowEnv) resolveAggregate(fn *FuncCall) (table.Value, error) {
	return table.Null(), fmt.Errorf("sql: aggregate %s in row context (missing GROUP BY?)", fn.Name)
}

// groupEnv evaluates expressions against one group: plain columns resolve
// from the group's first row, aggregates compute over all group rows.
type groupEnv struct {
	rel  *relation
	rows []int // indexes into rel.rows
}

func (e *groupEnv) resolveColumn(ref *ColumnRef) (table.Value, error) {
	i := e.rel.findColumn(ref)
	if i < 0 {
		return table.Null(), fmt.Errorf("sql: unknown column %q", ref.SQL())
	}
	if len(e.rows) == 0 {
		return table.Null(), nil
	}
	return e.rel.rows[e.rows[0]][i], nil
}

func (e *groupEnv) resolveAggregate(fn *FuncCall) (table.Value, error) {
	if fn.IsStar {
		if fn.Name != "COUNT" {
			return table.Null(), fmt.Errorf("sql: %s(*) is not supported", fn.Name)
		}
		return table.Int(int64(len(e.rows))), nil
	}
	if len(fn.Args) != 1 {
		return table.Null(), fmt.Errorf("sql: aggregate %s expects one argument", fn.Name)
	}
	var vals []table.Value
	seen := map[string]bool{}
	for _, ri := range e.rows {
		re := &rowEnv{rel: e.rel, row: e.rel.rows[ri]}
		v, err := evalExpr(fn.Args[0], re)
		if err != nil {
			return table.Null(), err
		}
		if v.IsNull() {
			continue
		}
		if fn.Distinct {
			k := v.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	switch fn.Name {
	case "COUNT":
		return table.Int(int64(len(vals))), nil
	case "SUM", "AVG", "STDDEV", "MEDIAN":
		var nums []float64
		for _, v := range vals {
			if f, ok := v.AsFloat(); ok {
				nums = append(nums, f)
			}
		}
		if len(nums) == 0 {
			return table.Null(), nil
		}
		var total float64
		for _, f := range nums {
			total += f
		}
		switch fn.Name {
		case "SUM":
			return table.Float(total), nil
		case "AVG":
			return table.Float(total / float64(len(nums))), nil
		case "STDDEV":
			mean := total / float64(len(nums))
			if len(nums) < 2 {
				return table.Float(0), nil
			}
			var ss float64
			for _, f := range nums {
				d := f - mean
				ss += d * d
			}
			return table.Float(math.Sqrt(ss / float64(len(nums)-1))), nil
		case "MEDIAN":
			sort.Float64s(nums)
			n := len(nums)
			if n%2 == 1 {
				return table.Float(nums[n/2]), nil
			}
			return table.Float((nums[n/2-1] + nums[n/2]) / 2), nil
		}
	case "MIN", "MAX":
		if len(vals) == 0 {
			return table.Null(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c := table.Compare(v, best)
			if (fn.Name == "MIN" && c < 0) || (fn.Name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return table.Null(), fmt.Errorf("sql: unknown aggregate %s", fn.Name)
}

// Execute runs a parsed statement against the catalog.
func (c *Catalog) Execute(stmt *SelectStmt) (*table.Table, error) {
	base, ok := c.Table(stmt.From)
	if !ok {
		return nil, fmt.Errorf("sql: unknown table %q", stmt.From)
	}
	qual := stmt.From
	if stmt.FromAs != "" {
		qual = stmt.FromAs
	}
	rel := relationFrom(base, qual)

	for _, j := range stmt.Joins {
		rt, ok := c.Table(j.Table)
		if !ok {
			return nil, fmt.Errorf("sql: unknown table %q", j.Table)
		}
		jq := j.Table
		if j.Alias != "" {
			jq = j.Alias
		}
		var err error
		rel, err = joinRelations(rel, relationFrom(rt, jq), j)
		if err != nil {
			return nil, err
		}
	}

	if stmt.Where != nil {
		var kept [][]table.Value
		for _, row := range rel.rows {
			v, err := evalExpr(stmt.Where, &rowEnv{rel: rel, row: row})
			if err != nil {
				return nil, err
			}
			if b, ok := v.AsBool(); ok && b {
				kept = append(kept, row)
			}
		}
		rel.rows = kept
	}

	grouped := len(stmt.GroupBy) > 0 || stmt.Having != nil || selectHasAggregate(stmt)
	var out *table.Table
	var err error
	if grouped {
		out, err = c.executeGrouped(stmt, rel)
	} else {
		out, err = c.executePlain(stmt, rel)
	}
	if err != nil {
		return nil, err
	}

	if stmt.Distinct {
		out = out.Distinct()
	}
	if stmt.Offset > 0 {
		out = out.Slice(stmt.Offset, out.NumRows())
	}
	if stmt.Limit >= 0 {
		out = out.Limit(stmt.Limit)
	}
	return out, nil
}

func selectHasAggregate(stmt *SelectStmt) bool {
	for _, it := range stmt.Items {
		if exprHasAggregate(it.Expr) {
			return true
		}
	}
	return false
}

func exprHasAggregate(e Expr) bool {
	switch x := e.(type) {
	case *FuncCall:
		if isAgg2(x.Name) {
			return true
		}
		for _, a := range x.Args {
			if exprHasAggregate(a) {
				return true
			}
		}
	case *Binary:
		return exprHasAggregate(x.L) || exprHasAggregate(x.R)
	case *Unary:
		return exprHasAggregate(x.X)
	case *In:
		if exprHasAggregate(x.X) {
			return true
		}
		for _, v := range x.Values {
			if exprHasAggregate(v) {
				return true
			}
		}
	case *Between:
		return exprHasAggregate(x.X) || exprHasAggregate(x.Lo) || exprHasAggregate(x.Hi)
	case *IsNull:
		return exprHasAggregate(x.X)
	case *CaseExpr:
		for _, w := range x.Whens {
			if exprHasAggregate(w.Cond) || exprHasAggregate(w.Result) {
				return true
			}
		}
		if x.Else != nil {
			return exprHasAggregate(x.Else)
		}
	}
	return false
}

// joinRelations nested-loop joins left and right with the ON predicate.
func joinRelations(left, right *relation, j JoinClause) (*relation, error) {
	out := &relation{
		quals: append(append([]string{}, left.quals...), right.quals...),
		names: append(append([]string{}, left.names...), right.names...),
		disp:  append(append([]string{}, left.disp...), right.disp...),
		kinds: append(append([]table.Kind{}, left.kinds...), right.kinds...),
	}
	nullsRight := make([]table.Value, len(right.names))
	for _, lrow := range left.rows {
		matched := false
		for _, rrow := range right.rows {
			combined := append(append([]table.Value{}, lrow...), rrow...)
			v, err := evalExpr(j.On, &rowEnv{rel: out, row: combined})
			if err != nil {
				return nil, err
			}
			if b, ok := v.AsBool(); ok && b {
				matched = true
				out.rows = append(out.rows, combined)
			}
		}
		if !matched && j.Kind == table.JoinLeft {
			out.rows = append(out.rows, append(append([]table.Value{}, lrow...), nullsRight...))
		}
	}
	return out, nil
}

// projection expands select items (including * and t.*) to concrete exprs.
func expandItems(stmt *SelectStmt, rel *relation) []SelectItem {
	var items []SelectItem
	for _, it := range stmt.Items {
		switch x := it.Expr.(type) {
		case Star:
			for i := range rel.names {
				items = append(items, SelectItem{
					Expr:  &ColumnRef{Table: rel.quals[i], Name: rel.disp[i]},
					Alias: rel.disp[i],
				})
			}
		case *ColumnRef:
			if x.Name == "*" {
				for i := range rel.names {
					if rel.quals[i] == strings.ToLower(x.Table) {
						items = append(items, SelectItem{
							Expr:  &ColumnRef{Table: rel.quals[i], Name: rel.disp[i]},
							Alias: rel.disp[i],
						})
					}
				}
				continue
			}
			items = append(items, it)
		default:
			items = append(items, it)
		}
	}
	return items
}

// orderExprs resolves ORDER BY items to evaluable expressions, honoring
// select-list aliases and 1-based positions.
func orderExprs(stmt *SelectStmt, items []SelectItem) []OrderItem {
	resolved := make([]OrderItem, len(stmt.OrderBy))
	for i, o := range stmt.OrderBy {
		resolved[i] = o
		if lit, ok := o.Expr.(*Literal); ok && lit.Value.Kind == table.KindInt {
			pos := int(lit.Value.I)
			if pos >= 1 && pos <= len(items) {
				resolved[i].Expr = items[pos-1].Expr
			}
			continue
		}
		if ref, ok := o.Expr.(*ColumnRef); ok && ref.Table == "" {
			for _, it := range items {
				if strings.EqualFold(it.OutputName(), ref.Name) {
					resolved[i].Expr = it.Expr
					break
				}
			}
		}
	}
	return resolved
}

type projectedRow struct {
	out  []table.Value
	keys []table.Value // order-by keys
}

func buildOutput(name string, items []SelectItem, rows []projectedRow, order []OrderItem) *table.Table {
	if len(order) > 0 {
		sort.SliceStable(rows, func(a, b int) bool {
			for k := range order {
				c := table.Compare(rows[a].keys[k], rows[b].keys[k])
				if c == 0 {
					continue
				}
				if order[k].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	names := make([]string, len(items))
	used := map[string]int{}
	for i, it := range items {
		n := it.OutputName()
		key := strings.ToLower(n)
		if c, dup := used[key]; dup {
			used[key] = c + 1
			n = fmt.Sprintf("%s_%d", n, c+1)
		} else {
			used[key] = 0
		}
		names[i] = n
	}
	kinds := make([]table.Kind, len(items))
	for i := range kinds {
		kinds[i] = table.KindString
		for _, r := range rows {
			if !r.out[i].IsNull() {
				kinds[i] = r.out[i].Kind
				break
			}
		}
	}
	out := &table.Table{Name: name}
	for i := range items {
		out.Columns = append(out.Columns, table.Column{Name: names[i], Kind: kinds[i]})
	}
	for _, r := range rows {
		for j := range out.Columns {
			out.Columns[j].Values = append(out.Columns[j].Values, r.out[j])
		}
	}
	return out
}

func (c *Catalog) executePlain(stmt *SelectStmt, rel *relation) (*table.Table, error) {
	items := expandItems(stmt, rel)
	order := orderExprs(stmt, items)
	rows := make([]projectedRow, 0, len(rel.rows))
	for _, row := range rel.rows {
		ev := &rowEnv{rel: rel, row: row}
		pr := projectedRow{out: make([]table.Value, len(items)), keys: make([]table.Value, len(order))}
		for i, it := range items {
			v, err := evalExpr(it.Expr, ev)
			if err != nil {
				return nil, err
			}
			pr.out[i] = v
		}
		for i, o := range order {
			v, err := evalExpr(o.Expr, ev)
			if err != nil {
				return nil, err
			}
			pr.keys[i] = v
		}
		rows = append(rows, pr)
	}
	return buildOutput(stmt.From, items, rows, order), nil
}

func (c *Catalog) executeGrouped(stmt *SelectStmt, rel *relation) (*table.Table, error) {
	items := expandItems(stmt, rel)
	order := orderExprs(stmt, items)

	// Partition rows into groups by the GROUP BY key expressions.
	type grp struct{ rows []int }
	var keys []string
	groups := map[string]*grp{}
	for ri, row := range rel.rows {
		ev := &rowEnv{rel: rel, row: row}
		var kb strings.Builder
		for _, g := range stmt.GroupBy {
			v, err := evalExpr(g, ev)
			if err != nil {
				return nil, err
			}
			kb.WriteString(v.Key())
			kb.WriteByte('\x1f')
		}
		k := kb.String()
		g, ok := groups[k]
		if !ok {
			g = &grp{}
			groups[k] = g
			keys = append(keys, k)
		}
		g.rows = append(g.rows, ri)
	}
	// Global aggregates over zero rows still produce one group.
	if len(stmt.GroupBy) == 0 && len(keys) == 0 {
		groups[""] = &grp{}
		keys = append(keys, "")
	}

	rows := make([]projectedRow, 0, len(keys))
	for _, k := range keys {
		g := groups[k]
		ev := &groupEnv{rel: rel, rows: g.rows}
		if stmt.Having != nil {
			hv, err := evalExpr(stmt.Having, ev)
			if err != nil {
				return nil, err
			}
			if b, ok := hv.AsBool(); !ok || !b {
				continue
			}
		}
		pr := projectedRow{out: make([]table.Value, len(items)), keys: make([]table.Value, len(order))}
		for i, it := range items {
			v, err := evalExpr(it.Expr, ev)
			if err != nil {
				return nil, err
			}
			pr.out[i] = v
		}
		for i, o := range order {
			v, err := evalExpr(o.Expr, ev)
			if err != nil {
				return nil, err
			}
			pr.keys[i] = v
		}
		rows = append(rows, pr)
	}
	return buildOutput(stmt.From, items, rows, order), nil
}
