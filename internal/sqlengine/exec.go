package sqlengine

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"datalab/internal/table"
)

// Catalog is a named collection of tables — the engine's database. Each
// table is held as a *table.Appender: an ingest write head publishing
// immutable snapshots. The catalog mutex guards only the name→appender map
// (Register/lookup); data access is lock-free — every query loads the
// snapshot current at plan time and keeps reading exactly those rows while
// ingest appends and publishes concurrently. Open Result cursors pin their
// snapshot the same way.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*table.Appender
	order  []string
	reg    RegisterHook

	plans *planCache
}

// RegisterHook observes table registrations for durability layers. The
// catalog calls it with the freshly built appender before the table
// becomes visible to queries; a non-nil error aborts the registration
// (the previous table, if any, stays in place). The hook is responsible
// for logging the registration and installing the appender's publish
// hook so subsequent chunk seals are durable too.
type RegisterHook func(app *table.Appender) error

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: map[string]*table.Appender{}, plans: newPlanCache(DefaultPlanCacheSize)}
}

// Register adds (or replaces) a table under its own name, adopting its
// columns as the ingest arena (the caller must stop mutating t). Queries
// already holding the previous table's snapshot keep reading it
// unaffected. Replacing a table with a different schema (column names or
// kinds) clears the plan cache: cached statements are plain ASTs, but
// callers comparing Prepared results across a schema change deserve a
// clean slate, and the invalidation is observable via PlanCacheStats.
func (c *Catalog) Register(t *table.Table) {
	c.RegisterErr(t) //nolint:errcheck // memory-only catalogs never fail; durable callers use RegisterErr
}

// RegisterErr is Register with the durability error surfaced: when a
// register hook is installed (a durable catalog) and it fails to make the
// registration durable, the catalog is left unchanged and the error is
// reported. Memory-only catalogs never return an error.
func (c *Catalog) RegisterErr(t *table.Table) error {
	app := table.NewAppender(t)
	c.mu.RLock()
	hook := c.reg
	c.mu.RUnlock()
	if hook != nil {
		if err := hook(app); err != nil {
			return err
		}
	}
	return c.registerAppender(app)
}

// RegisterAppender adopts an existing write head under its own name —
// the recovery path: WAL replay rebuilds appenders at their recovered
// snapshot versions and hands them to the catalog without re-logging.
func (c *Catalog) RegisterAppender(app *table.Appender) {
	c.registerAppender(app) //nolint:errcheck // always nil today; signature shared with RegisterErr
}

// SetRegisterHook installs (or, with nil, removes) the durability hook
// called by every subsequent Register/RegisterErr.
func (c *Catalog) SetRegisterHook(h RegisterHook) {
	c.mu.Lock()
	c.reg = h
	c.mu.Unlock()
}

func (c *Catalog) registerAppender(app *table.Appender) error {
	c.mu.Lock()
	key := strings.ToLower(app.Name())
	prev, exists := c.tables[key]
	if !exists {
		c.order = append(c.order, key)
	}
	c.tables[key] = app
	c.mu.Unlock()
	if exists && !sameSchema(prev.Snapshot(), app.Snapshot()) {
		c.plans.invalidate()
	}
	return nil
}

func sameSchema(a, b *table.Snapshot) bool {
	an, ak := a.Schema()
	bn, bk := b.Schema()
	if len(an) != len(bn) {
		return false
	}
	for i := range an {
		if !strings.EqualFold(an[i], bn[i]) || ak[i] != bk[i] {
			return false
		}
	}
	return true
}

// appender looks up a table's write head case-insensitively, also
// accepting a trailing "db." qualifier.
func (c *Catalog) appender(name string) (*table.Appender, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	key := strings.ToLower(name)
	if a, ok := c.tables[key]; ok {
		return a, true
	}
	if i := strings.LastIndexByte(key, '.'); i >= 0 {
		if a, ok := c.tables[key[i+1:]]; ok {
			return a, true
		}
	}
	return nil, false
}

// Appender returns the table's ingest write head for streaming use:
// Append batches rows into the pending chunk, Publish makes them visible
// to subsequent queries in one atomic snapshot swap.
func (c *Catalog) Appender(name string) (*table.Appender, bool) {
	return c.appender(name)
}

// Snapshot returns the table's current published snapshot. This is the
// read-side entry point both executors use: acquiring the snapshot is one
// atomic load, and everything derived from it (column views, selections,
// Result cursors) stays consistent with that snapshot regardless of
// concurrent ingest.
func (c *Catalog) Snapshot(name string) (*table.Snapshot, bool) {
	a, ok := c.appender(name)
	if !ok {
		return nil, false
	}
	return a.Snapshot(), true
}

// Table returns the table's current snapshot as a flat read-only table —
// the compatibility view over Snapshot for callers that want a *Table.
func (c *Catalog) Table(name string) (*table.Table, bool) {
	s, ok := c.Snapshot(name)
	if !ok {
		return nil, false
	}
	return s.Table(), true
}

// Append appends rows to a registered table and publishes one new
// snapshot — the convenience path for small ingest batches. Streaming
// callers that want to batch across calls should use Appender directly
// and choose their own Publish points.
func (c *Catalog) Append(name string, rows ...[]table.Value) error {
	a, ok := c.appender(name)
	if !ok {
		return fmt.Errorf("sql: unknown table %q", name)
	}
	if err := a.Append(rows...); err != nil {
		return err
	}
	_, err := a.PublishErr()
	return err
}

// Freeze returns a new catalog pinned to the snapshot every table is
// currently publishing. Queries against the frozen catalog keep returning
// identical results no matter how much ingest lands on the original —
// the snapshot-immutability property the differential fuzz battery
// replays queries against.
func (c *Catalog) Freeze() *Catalog {
	nc := NewCatalog()
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, k := range c.order {
		nc.Register(c.tables[k].Snapshot().Table())
	}
	return nc
}

// TableNames returns registered table names in registration order.
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.order))
	for _, k := range c.order {
		names = append(names, c.tables[k].Name())
	}
	return names
}

// Query parses and executes a SELECT against the catalog using the
// vectorized executor, returning a fully materialized table. The text is
// fingerprinted to a parameter template first (see Fingerprint), so
// literal-varying traffic shares one plan-cache entry and repeated
// templates parse once.
func (c *Catalog) Query(sql string) (*table.Table, error) {
	stmt, binds, err := c.planQuery(sql)
	if err != nil {
		return nil, err
	}
	return c.executeCtxBound(context.Background(), stmt, binds)
}

// QueryCtx parses (through fingerprinting and the plan cache, like Query)
// and executes a SELECT, honoring ctx cancellation, and returns a typed
// batch-iterable Result instead of a materialized table — the primary
// query entry point.
func (c *Catalog) QueryCtx(ctx context.Context, sql string) (*Result, error) {
	stmt, binds, err := c.planQuery(sql)
	if err != nil {
		return nil, err
	}
	return c.executeResultBound(ctx, stmt, binds)
}

// relSchema is the column metadata shared by the vectorized and scalar
// executors: qualifier, lowercased name, display name and kind per column.
type relSchema struct {
	quals []string // lowercased table alias/name per column
	names []string // lowercased column name per column
	disp  []string // display name per column (original case)
	kinds []table.Kind
}

func schemaFrom(t *table.Table, qual string) relSchema {
	var s relSchema
	q := strings.ToLower(qual)
	for i := range t.Columns {
		s.quals = append(s.quals, q)
		s.names = append(s.names, strings.ToLower(t.Columns[i].Name))
		s.disp = append(s.disp, t.Columns[i].Name)
		s.kinds = append(s.kinds, t.Columns[i].Kind)
	}
	return s
}

func concatSchemas(l, r *relSchema) relSchema {
	return relSchema{
		quals: append(append([]string{}, l.quals...), r.quals...),
		names: append(append([]string{}, l.names...), r.names...),
		disp:  append(append([]string{}, l.disp...), r.disp...),
		kinds: append(append([]table.Kind{}, l.kinds...), r.kinds...),
	}
}

// findColumn resolves a reference to a column index; -1 when absent.
// Ambiguous unqualified references resolve to the first match, matching
// the lenient behaviour benchmark queries rely on.
func (s *relSchema) findColumn(ref *ColumnRef) int {
	name := strings.ToLower(ref.Name)
	qual := strings.ToLower(ref.Table)
	for i := range s.names {
		if s.names[i] != name {
			continue
		}
		if qual == "" || s.quals[i] == qual {
			return i
		}
	}
	return -1
}

func errUnknownColumn(ref *ColumnRef) error {
	return fmt.Errorf("sql: unknown column %q", ref.SQL())
}

func errAggInRowContext(fn *FuncCall) error {
	return fmt.Errorf("sql: aggregate %s in row context (missing GROUP BY?)", fn.Name)
}

// vrel is the vectorized executor's working representation: shared schema
// plus column vectors. Base-table scans share storage with the catalog
// tables (zero copy); the columns must be treated as read-only. binds is
// the execution's parameter bindings (nil without placeholders), carried
// on the relation so cached statements stay shared across executions.
type vrel struct {
	relSchema
	cols  []table.Column
	nrows int
	binds []table.Value
	// win holds the precomputed window-function columns for the current
	// projection, keyed by AST node pointer and indexed by selection
	// position. Set by executePlainVec before item evaluation.
	win map[*FuncCall]table.Column
}

func vrelFrom(t *table.Table, qual string) *vrel {
	r := &vrel{relSchema: schemaFrom(t, qual), nrows: t.NumRows()}
	r.cols = append(r.cols, t.Columns...)
	return r
}

// vrelFromSnapshot builds the scan relation over a table snapshot. The
// relation's columns are zero-copy views of the snapshot's storage, so
// the whole downstream pipeline — selections, joins, lazy Results —
// keeps reading this snapshot even as ingest publishes newer ones.
func vrelFromSnapshot(s *table.Snapshot, qual string) *vrel {
	return vrelFrom(s.Table(), qual)
}

// Execute runs a parsed statement against the catalog with the vectorized
// engine: columnar scans, selection-vector filtering, hash joins for
// equi-join conditions and hash aggregation, parallelized over row and
// group partitions through the bounded worker pool.
func (c *Catalog) Execute(stmt *SelectStmt) (*table.Table, error) {
	return c.ExecuteCtx(context.Background(), stmt)
}

// ExecuteCtx is Execute with cancellation: ctx is observed between pipeline
// stages and between worker-pool chunks, so a cancelled context stops a
// large scan, sort, or aggregation within one chunk's worth of work and
// returns ctx.Err(). Statements with placeholders must execute through
// Prepared.Exec/Bind (or Query, which binds its own extracted literals);
// here they fail with an unbound-parameter error.
func (c *Catalog) ExecuteCtx(ctx context.Context, stmt *SelectStmt) (*table.Table, error) {
	return c.executeCtxBound(ctx, stmt, nil)
}

// executeCtxBound is ExecuteCtx with the execution's parameter bindings.
func (c *Catalog) executeCtxBound(ctx context.Context, stmt *SelectStmt, binds []table.Value) (*table.Table, error) {
	stmt, err := resolveBinds(stmt, binds)
	if err != nil {
		return nil, err
	}
	stmt, err = c.inlineSubqueries(ctx, stmt, binds, false)
	if err != nil {
		return nil, err
	}
	rel, sel, grouped, err := c.scanFilter(ctx, stmt, binds)
	if err != nil {
		return nil, err
	}
	return executeMaterialized(ctx, stmt, rel, sel, grouped)
}

// executeMaterialized is the shared execution tail after scanFilter: the
// grouped or plain projection, then DISTINCT/OFFSET/LIMIT.
func executeMaterialized(ctx context.Context, stmt *SelectStmt, rel *vrel, sel *table.Selection, grouped bool) (*table.Table, error) {
	var out *table.Table
	var err error
	if grouped {
		out, err = executeGroupedVec(ctx, stmt, rel, sel)
	} else {
		out, err = executePlainVec(ctx, stmt, rel, sel)
	}
	if err != nil {
		return nil, err
	}
	return applyDistinctOffsetLimit(stmt, out), nil
}

// ExecuteResult executes a parsed statement and returns a typed Result.
// Plain projections of bare columns (no grouping, ordering, or DISTINCT)
// stay lazy: the Result holds zero-copy references to the relation's
// columns plus the WHERE selection, with OFFSET/LIMIT applied as selection
// arithmetic — no output is materialized at all. Every other shape runs
// the materializing executor and wraps its output table.
func (c *Catalog) ExecuteResult(ctx context.Context, stmt *SelectStmt) (*Result, error) {
	return c.executeResultBound(ctx, stmt, nil)
}

// executeResultBound is ExecuteResult with the execution's parameter
// bindings: the shared execution core behind QueryCtx, Prepared.Exec and
// Bound.Exec.
func (c *Catalog) executeResultBound(ctx context.Context, stmt *SelectStmt, binds []table.Value) (*Result, error) {
	stmt, err := resolveBinds(stmt, binds)
	if err != nil {
		return nil, err
	}
	stmt, err = c.inlineSubqueries(ctx, stmt, binds, false)
	if err != nil {
		return nil, err
	}
	rel, sel, grouped, err := c.scanFilter(ctx, stmt, binds)
	if err != nil {
		return nil, err
	}
	if !grouped {
		if res, ok := lazyResult(stmt, rel, sel); ok {
			return res, nil
		}
	}
	out, err := executeMaterialized(ctx, stmt, rel, sel, grouped)
	if err != nil {
		return nil, err
	}
	return newTableResult(out), nil
}

// scanFilter runs the shared pipeline prefix: scan, joins, WHERE filtering,
// and LIMIT pushdown. It returns the working relation, the selection of
// surviving rows (nil = all), and whether the query is grouped.
func (c *Catalog) scanFilter(ctx context.Context, stmt *SelectStmt, binds []table.Value) (*vrel, *table.Selection, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, false, err
	}
	// Snapshot acquisition happens here, once per referenced table: a
	// single atomic load pins the rows this execution (and any Result
	// cursor it hands out) will ever see.
	base, ok := c.Snapshot(stmt.From)
	if !ok {
		return nil, nil, false, fmt.Errorf("sql: unknown table %q", stmt.From)
	}
	qual := stmt.From
	if stmt.FromAs != "" {
		qual = stmt.FromAs
	}
	rel := vrelFromSnapshot(base, qual)
	rel.binds = binds

	var keep *joinKeepSet
	if len(stmt.Joins) > 0 {
		keep = referencedOutputColumns(stmt)
	}
	for _, j := range stmt.Joins {
		rt, ok := c.Snapshot(j.Table)
		if !ok {
			return nil, nil, false, fmt.Errorf("sql: unknown table %q", j.Table)
		}
		jq := j.Table
		if j.Alias != "" {
			jq = j.Alias
		}
		var err error
		rel, err = joinVRel(ctx, rel, vrelFromSnapshot(rt, jq), j, keep)
		if err != nil {
			return nil, nil, false, err
		}
	}

	var sel *table.Selection // nil = all rows
	if stmt.Where != nil {
		var err error
		sel, err = filterWhere(ctx, rel, stmt.Where)
		if err != nil {
			return nil, nil, false, err
		}
	}

	grouped := len(stmt.GroupBy) > 0 || stmt.Having != nil || selectHasAggregate(stmt)
	// LIMIT pushdown: without grouping, ordering, or DISTINCT, only the
	// first OFFSET+LIMIT selected rows can reach the output, so truncate
	// the selection before projecting instead of materializing and then
	// slicing. Span-form selections truncate without copying. Window
	// functions disable the pushdown: their frames span the full filtered
	// set, so truncating first would change their values.
	if !grouped && len(stmt.OrderBy) == 0 && !stmt.Distinct && stmt.Limit >= 0 && !selectHasWindow(stmt) {
		keep := stmt.Limit
		if stmt.Offset > 0 {
			keep += stmt.Offset
		}
		if sel == nil {
			if keep > rel.nrows {
				keep = rel.nrows
			}
			sel = table.NewSpanSelection(table.Span{Lo: 0, Hi: keep})
		} else {
			sel = sel.Truncate(keep)
		}
	}
	return rel, sel, grouped, ctx.Err()
}

// lazyResult builds a zero-copy Result for a plain projection of bare
// columns: no DISTINCT, no ORDER BY, every select item a resolvable column
// reference of a typed kind. ok=false sends every other shape (including
// unknown-column errors, for exact error parity) to the materializing path.
func lazyResult(stmt *SelectStmt, rel *vrel, sel *table.Selection) (*Result, bool) {
	if stmt.Distinct || len(stmt.OrderBy) > 0 {
		return nil, false
	}
	items := expandItems(stmt, &rel.relSchema)
	names := outputNames(items)
	cols := make([]table.Column, len(items))
	for i, it := range items {
		ref, ok := it.Expr.(*ColumnRef)
		if !ok {
			return nil, false
		}
		ci := rel.findColumn(ref)
		if ci < 0 || rel.cols[ci].Kind == table.KindNull {
			// Unknown columns error on the materializing path; KindNull
			// columns are rebuilt as TEXT there (buildOutputCols).
			return nil, false
		}
		cols[i] = rel.cols[ci]
		cols[i].Name = names[i]
	}
	// OFFSET drops leading selected rows; LIMIT was already pushed down
	// into the selection by scanFilter when set (keeping OFFSET+LIMIT rows).
	if stmt.Offset > 0 {
		if sel == nil {
			sel = table.NewSpanSelection(table.Span{Lo: 0, Hi: rel.nrows})
		}
		sel = sel.Drop(stmt.Offset)
	}
	return newLazyResult(names, cols, sel), true
}

func applyDistinctOffsetLimit(stmt *SelectStmt, out *table.Table) *table.Table {
	if stmt.Distinct {
		out = out.Distinct()
	}
	if stmt.Offset > 0 {
		out = out.Slice(stmt.Offset, out.NumRows())
	}
	if stmt.Limit >= 0 {
		out = out.Limit(stmt.Limit)
	}
	return out
}

// forceDenseSelection is a test hook: when set, filterWhere always emits
// dense index selections, never range spans. The differential fuzz harness
// uses it to run every query through both selection representations.
var forceDenseSelection atomic.Bool

// filterWhere evaluates the WHERE predicate over all rows and returns the
// selection of passing rows. Large scans are partitioned across the worker
// pool; each chunk evaluates the predicate over a zero-copy range view of
// the relation (no iota index vector) and emits its passing rows as range
// spans when they form long runs — for an all-passing chunk, one span —
// or dense indices when they are scattered. Adjacent spans are merged
// across chunk boundaries, so a predicate that passes everywhere yields a
// single [0,n) span and the scan stays as zero-copy as the serial path.
func filterWhere(ctx context.Context, rel *vrel, where Expr) (*table.Selection, error) {
	n := rel.nrows
	if n >= 2*parallelMinRows {
		_, nchunks := chunkLayout(n, parallelMinRows)
		parts := make([]*table.Selection, nchunks)
		err := parallelChunksIndexed(ctx, n, parallelMinRows, func(ci, lo, hi int) error {
			col, err := evalVec(where, rel, table.NewSpanSelection(table.Span{Lo: lo, Hi: hi}))
			if err != nil {
				return err
			}
			parts[ci] = passSelection(&col, lo)
			return nil
		})
		if err != nil {
			return nil, err
		}
		return table.MergeSelections(parts), nil
	}
	col, err := evalVec(where, rel, nil)
	if err != nil {
		return nil, err
	}
	return passSelection(&col, 0), nil
}

// passSelection builds the selection of rows (offset by the chunk base)
// whose predicate value is a known true, matching the scalar executor's
// truthiness rules. col is positional: cell i is row offset+i.
func passSelection(col *table.Column, offset int) *table.Selection {
	var sel *table.Selection
	if bs, nulls, ok := col.Bools(); ok {
		sel = table.SelectionFromBools(bs, nulls, offset)
	} else {
		n := col.Len()
		mask := make([]bool, n)
		for i := 0; i < n; i++ {
			v := col.Value(i)
			if v.IsNull() {
				continue
			}
			if b, ok := v.AsBool(); ok && b {
				mask[i] = true
			}
		}
		sel = table.SelectionFromMask(mask, offset)
	}
	if forceDenseSelection.Load() {
		return table.NewIndexSelection(sel.Indices())
	}
	return sel
}

func iotaInts(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// --- projection ---

// projection expands select items (including * and t.*) to concrete exprs.
func expandItems(stmt *SelectStmt, s *relSchema) []SelectItem {
	var items []SelectItem
	for _, it := range stmt.Items {
		switch x := it.Expr.(type) {
		case Star:
			for i := range s.names {
				items = append(items, SelectItem{
					Expr:  &ColumnRef{Table: s.quals[i], Name: s.disp[i]},
					Alias: s.disp[i],
				})
			}
		case *ColumnRef:
			if x.Name == "*" {
				for i := range s.names {
					if s.quals[i] == strings.ToLower(x.Table) {
						items = append(items, SelectItem{
							Expr:  &ColumnRef{Table: s.quals[i], Name: s.disp[i]},
							Alias: s.disp[i],
						})
					}
				}
				continue
			}
			items = append(items, it)
		default:
			items = append(items, it)
		}
	}
	return items
}

// orderExprs resolves ORDER BY items to evaluable expressions, honoring
// select-list aliases and 1-based positions.
func orderExprs(stmt *SelectStmt, items []SelectItem) []OrderItem {
	resolved := make([]OrderItem, len(stmt.OrderBy))
	for i, o := range stmt.OrderBy {
		resolved[i] = o
		if lit, ok := o.Expr.(*Literal); ok && lit.Value.Kind == table.KindInt {
			pos := int(lit.Value.I)
			if pos >= 1 && pos <= len(items) {
				resolved[i].Expr = items[pos-1].Expr
			}
			continue
		}
		if ref, ok := o.Expr.(*ColumnRef); ok && ref.Table == "" {
			for _, it := range items {
				if strings.EqualFold(it.OutputName(), ref.Name) {
					resolved[i].Expr = it.Expr
					break
				}
			}
		}
	}
	return resolved
}

// resolveHavingAliases rewrites bare column references in a HAVING clause
// that name a select-list alias (and no relation column) to that item's
// expression, copy-on-write. Relation columns take precedence over
// aliases, and references inside aggregate arguments are left alone —
// they resolve against the group's rows.
func resolveHavingAliases(e Expr, items []SelectItem, s *relSchema) Expr {
	switch x := e.(type) {
	case *ColumnRef:
		if x.Table == "" && s.findColumn(x) < 0 {
			for _, it := range items {
				if strings.EqualFold(it.OutputName(), x.Name) {
					return it.Expr
				}
			}
		}
		return x
	case *FuncCall:
		if isAgg2(x.Name) {
			return x
		}
		nf := &FuncCall{Name: x.Name, Distinct: x.Distinct, IsStar: x.IsStar, Over: x.Over}
		nf.Args = make([]Expr, len(x.Args))
		for i, a := range x.Args {
			nf.Args[i] = resolveHavingAliases(a, items, s)
		}
		return nf
	case *Binary:
		return &Binary{
			Op: x.Op,
			L:  resolveHavingAliases(x.L, items, s),
			R:  resolveHavingAliases(x.R, items, s),
		}
	case *Unary:
		return &Unary{Op: x.Op, X: resolveHavingAliases(x.X, items, s)}
	case *Between:
		return &Between{
			X:   resolveHavingAliases(x.X, items, s),
			Lo:  resolveHavingAliases(x.Lo, items, s),
			Hi:  resolveHavingAliases(x.Hi, items, s),
			Not: x.Not,
		}
	case *IsNull:
		return &IsNull{X: resolveHavingAliases(x.X, items, s), Not: x.Not}
	case *In:
		ni := &In{X: resolveHavingAliases(x.X, items, s), Not: x.Not}
		ni.Values = make([]Expr, len(x.Values))
		for i, v := range x.Values {
			ni.Values[i] = resolveHavingAliases(v, items, s)
		}
		return ni
	case *CaseExpr:
		nc := &CaseExpr{Whens: make([]WhenClause, len(x.Whens))}
		for i, w := range x.Whens {
			nc.Whens[i].Cond = resolveHavingAliases(w.Cond, items, s)
			nc.Whens[i].Result = resolveHavingAliases(w.Result, items, s)
		}
		if x.Else != nil {
			nc.Else = resolveHavingAliases(x.Else, items, s)
		}
		return nc
	}
	return e
}

func selectHasAggregate(stmt *SelectStmt) bool {
	for _, it := range stmt.Items {
		if exprHasAggregate(it.Expr) {
			return true
		}
	}
	return false
}

func exprHasAggregate(e Expr) bool {
	switch x := e.(type) {
	case *FuncCall:
		if x.Over != nil {
			// A window call is not a grouping aggregate, and its arguments
			// cannot contain one (rejected at parse time).
			return false
		}
		if isAgg2(x.Name) {
			return true
		}
		for _, a := range x.Args {
			if exprHasAggregate(a) {
				return true
			}
		}
	case *Binary:
		return exprHasAggregate(x.L) || exprHasAggregate(x.R)
	case *Unary:
		return exprHasAggregate(x.X)
	case *In:
		if exprHasAggregate(x.X) {
			return true
		}
		for _, v := range x.Values {
			if exprHasAggregate(v) {
				return true
			}
		}
	case *Between:
		return exprHasAggregate(x.X) || exprHasAggregate(x.Lo) || exprHasAggregate(x.Hi)
	case *IsNull:
		return exprHasAggregate(x.X)
	case *CaseExpr:
		for _, w := range x.Whens {
			if exprHasAggregate(w.Cond) || exprHasAggregate(w.Result) {
				return true
			}
		}
		if x.Else != nil {
			return exprHasAggregate(x.Else)
		}
	}
	return false
}

// executePlainVec projects the selected rows column-at-a-time.
func executePlainVec(ctx context.Context, stmt *SelectStmt, rel *vrel, sel *table.Selection) (*table.Table, error) {
	items := expandItems(stmt, &rel.relSchema)
	order := orderExprs(stmt, items)
	n := selLen(rel, sel)

	// Window columns are computed once over the full selection before any
	// item evaluation; item and ORDER BY expressions then read them via
	// rel.win (evalVec's FuncCall case and vecRowEnv.resolveWindow).
	if wins := statementWindows(stmt, items, order); len(wins) > 0 {
		win, err := computeWindowsVec(wins, rel, sel)
		if err != nil {
			return nil, err
		}
		rel.win = win
		defer func() { rel.win = nil }()
	}

	// A bare column evaluated with no selection or a single-range
	// selection is a zero-copy view of catalog storage; copy it so the
	// result table owns its data. With ORDER BY the Gather below already
	// produces fresh storage.
	sharesStorage := sel == nil
	if sel != nil {
		_, _, sharesStorage = sel.AsRange()
	}

	outCols := make([]table.Column, len(items))
	for i, it := range items {
		col, err := evalVec(it.Expr, rel, sel)
		if err != nil {
			return nil, err
		}
		if _, isRef := it.Expr.(*ColumnRef); isRef && sharesStorage && len(order) == 0 {
			col = col.CloneData()
		}
		outCols[i] = col
	}

	if len(order) > 0 {
		keyCols := make([]table.Column, len(order))
		for k, o := range order {
			col, err := evalVec(o.Expr, rel, sel)
			if err != nil {
				return nil, err
			}
			keyCols[k] = col
		}
		var perm []int
		if keep, bounded := topKBound(stmt, n); bounded {
			perm = topKPerm(ctx, keyCols, order, n, keep)
		} else {
			perm = sortPerm(ctx, keyCols, order, n)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for i := range outCols {
			outCols[i] = outCols[i].Gather(perm)
		}
	}
	return buildOutputCols(stmt.From, items, outCols), nil
}

// topKBound reports how many leading rows of the sorted order can reach
// the output: with ORDER BY ... LIMIT k OFFSET m, only the first k+m (the
// heap must retain the OFFSET rows too — they are discarded after the
// sort, not before). DISTINCT disables the bound, because deduplication
// runs after ordering and dropped duplicates would pull rows from beyond
// k+m into the window.
func topKBound(stmt *SelectStmt, n int) (int, bool) {
	if stmt.Limit < 0 || stmt.Distinct {
		return 0, false
	}
	keep := stmt.Limit + stmt.Offset
	if keep < 0 || keep >= n { // overflowed or no smaller than a full sort
		return 0, false
	}
	return keep, true
}

// buildOutputCols assembles the result table from already-computed columns.
func buildOutputCols(name string, items []SelectItem, cols []table.Column) *table.Table {
	names := outputNames(items)
	out := &table.Table{Name: name}
	for i := range cols {
		cols[i].Name = names[i]
		if cols[i].Kind == table.KindNull {
			// All-NULL output columns default to TEXT, like the scalar path.
			// Rebuild rather than retag: a KindNull column has no typed
			// storage, so flipping Kind alone would break the storage
			// invariant and crash later slices.
			cols[i] = table.ColumnOf(names[i], table.KindString, cols[i].Values())
		}
		out.Columns = append(out.Columns, cols[i])
	}
	return out
}

// --- grouping ---

// grp is one hash-aggregation group: the selection of its absolute rows in
// the relation. Keyed grouping scatters rows, so groups are dense-form;
// the global-aggregate group reuses the filter's selection (or a single
// [0,n) span), keeping unkeyed aggregation zero-copy.
type grp struct{ sel *table.Selection }

// wrapGroups converts the per-group ascending row lists built by the hash
// loops into selections in place.
func wrapGroups(order []*grp, rows [][]int) []*grp {
	for i := range order {
		order[i].sel = table.NewIndexSelection(rows[i])
	}
	return order
}

// hashGroups partitions the selected rows by the key columns (which are
// indexed by selection position). Group order follows first appearance.
// Single typed int/string keys use typed hash maps; composite or mixed
// keys fall back to canonical key strings, computed in parallel partitions.
// With no key columns (global aggregates) the selection itself is the one
// group and nothing is materialized.
func hashGroups(ctx context.Context, keyCols []*table.Column, rel *vrel, sel *table.Selection) []*grp {
	n := selLen(rel, sel)
	var order []*grp
	var rows [][]int

	if len(keyCols) == 0 {
		if n == 0 {
			return nil
		}
		if sel == nil {
			sel = table.NewSpanSelection(table.Span{Lo: 0, Hi: rel.nrows})
		}
		return []*grp{{sel: sel}}
	}

	if len(keyCols) == 1 {
		if is, nulls, ok := keyCols[0].Ints(); ok {
			m := make(map[int64]int, 64)
			nullG := -1
			it := table.IterSelection(sel, rel.nrows)
			for i := 0; i < n; i++ {
				r, _ := it.Next()
				if nulls[i] {
					if nullG < 0 {
						nullG = len(order)
						order = append(order, &grp{})
						rows = append(rows, nil)
					}
					rows[nullG] = append(rows[nullG], r)
					continue
				}
				gi, ok := m[is[i]]
				if !ok {
					gi = len(order)
					m[is[i]] = gi
					order = append(order, &grp{})
					rows = append(rows, nil)
				}
				rows[gi] = append(rows[gi], r)
			}
			return wrapGroups(order, rows)
		}
		if ss, nulls, ok := keyCols[0].Strings(); ok {
			m := make(map[string]int, 64)
			nullG := -1
			it := table.IterSelection(sel, rel.nrows)
			for i := 0; i < n; i++ {
				r, _ := it.Next()
				if nulls[i] {
					if nullG < 0 {
						nullG = len(order)
						order = append(order, &grp{})
						rows = append(rows, nil)
					}
					rows[nullG] = append(rows[nullG], r)
					continue
				}
				gi, ok := m[ss[i]]
				if !ok {
					gi = len(order)
					m[ss[i]] = gi
					order = append(order, &grp{})
					rows = append(rows, nil)
				}
				rows[gi] = append(rows[gi], r)
			}
			return wrapGroups(order, rows)
		}
	}

	keys := make([]string, n)
	computeKeys := func(lo, hi int) error {
		var kb strings.Builder
		for i := lo; i < hi; i++ {
			kb.Reset()
			for _, kc := range keyCols {
				kb.WriteString(kc.Value(i).Key())
				kb.WriteByte('\x1f')
			}
			keys[i] = kb.String()
		}
		return nil
	}
	if n >= 2*parallelMinRows {
		parallelChunks(ctx, n, parallelMinRows, computeKeys) //nolint:errcheck // computeKeys cannot fail; a cancelled chunk leaves zero keys, and the caller's ctx check surfaces the cancellation
	} else {
		computeKeys(0, n) //nolint:errcheck
	}
	m := make(map[string]int, 64)
	it := table.IterSelection(sel, rel.nrows)
	for i := 0; i < n; i++ {
		r, _ := it.Next()
		gi, ok := m[keys[i]]
		if !ok {
			gi = len(order)
			m[keys[i]] = gi
			order = append(order, &grp{})
			rows = append(rows, nil)
		}
		rows[gi] = append(rows[gi], r)
	}
	return wrapGroups(order, rows)
}

// vGroupEnv evaluates expressions against one group of the columnar
// relation. Aggregates over bare columns run in typed loops over the
// group's selection (contiguous spans for the global group).
type vGroupEnv struct {
	rel  *vrel
	rows *table.Selection
}

func (e *vGroupEnv) resolveColumn(ref *ColumnRef) (table.Value, error) {
	i := e.rel.findColumn(ref)
	if i < 0 {
		return table.Null(), errUnknownColumn(ref)
	}
	if e.rows.Len() == 0 {
		return table.Null(), nil
	}
	return e.rel.cols[i].Value(e.rows.RowAt(0)), nil
}

func (e *vGroupEnv) resolveParam(p *Param) (table.Value, error) {
	return bindAt(e.rel.binds, p)
}

func (e *vGroupEnv) resolveWindow(fn *FuncCall) (table.Value, error) {
	return table.Null(), errWindowContext(fn)
}

func (e *vGroupEnv) resolveAggregate(fn *FuncCall) (table.Value, error) {
	if fn.IsStar {
		if fn.Name != "COUNT" {
			return table.Null(), fmt.Errorf("sql: %s(*) is not supported", fn.Name)
		}
		return table.Int(int64(e.rows.Len())), nil
	}
	if len(fn.Args) != 1 {
		return table.Null(), fmt.Errorf("sql: aggregate %s expects one argument", fn.Name)
	}
	if ref, ok := fn.Args[0].(*ColumnRef); ok && !fn.Distinct {
		i := e.rel.findColumn(ref)
		if i < 0 {
			return table.Null(), errUnknownColumn(ref)
		}
		return aggOverColumn(fn.Name, &e.rel.cols[i], e.rows)
	}
	// General case (expressions, DISTINCT): evaluate the argument per row.
	var vals []table.Value
	seen := map[string]bool{}
	env := &vecRowEnv{rel: e.rel}
	it := table.IterSelection(e.rows, 0)
	for {
		ri, ok := it.Next()
		if !ok {
			break
		}
		env.row = ri
		v, err := evalExpr(fn.Args[0], env)
		if err != nil {
			return table.Null(), err
		}
		if v.IsNull() {
			continue
		}
		if fn.Distinct {
			k := v.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	return finishAggregate(fn.Name, vals)
}

// aggOverColumn computes an aggregate over a bare column in typed loops,
// without boxing each cell.
func aggOverColumn(name string, col *table.Column, rows *table.Selection) (table.Value, error) {
	switch name {
	case "COUNT":
		n := 0
		rows.ForEach(func(r int) {
			if !col.IsNullAt(r) {
				n++
			}
		})
		return table.Int(int64(n)), nil
	case "SUM", "AVG", "STDDEV", "MEDIAN":
		return finishNumericAggregate(name, gatherFloats(col, rows)), nil
	case "MIN", "MAX":
		return minMaxOverColumn(name, col, rows), nil
	}
	return table.Null(), fmt.Errorf("sql: unknown aggregate %s", name)
}

// gatherFloats extracts the float64 view of the non-NULL, numeric-
// convertible cells at the selected rows.
func gatherFloats(col *table.Column, rows *table.Selection) []float64 {
	out := make([]float64, 0, rows.Len())
	if fs, nulls, ok := col.Floats(); ok {
		rows.ForEach(func(r int) {
			if !nulls[r] {
				out = append(out, fs[r])
			}
		})
		return out
	}
	if is, nulls, ok := col.Ints(); ok {
		rows.ForEach(func(r int) {
			if !nulls[r] {
				out = append(out, float64(is[r]))
			}
		})
		return out
	}
	rows.ForEach(func(r int) {
		if f, ok := col.FloatAt(r); ok {
			out = append(out, f)
		}
	})
	return out
}

func minMaxOverColumn(name string, col *table.Column, rows *table.Selection) table.Value {
	want := -1 // MIN keeps values comparing below the best
	if name == "MAX" {
		want = 1
	}
	if fs, nulls, ok := col.Floats(); ok {
		best, found := 0.0, false
		rows.ForEach(func(r int) {
			if nulls[r] {
				return
			}
			if !found || (want < 0 && fs[r] < best) || (want > 0 && fs[r] > best) {
				best, found = fs[r], true
			}
		})
		if !found {
			return table.Null()
		}
		return table.Float(best)
	}
	if is, nulls, ok := col.Ints(); ok {
		var best int64
		found := false
		rows.ForEach(func(r int) {
			if nulls[r] {
				return
			}
			if !found || (want < 0 && is[r] < best) || (want > 0 && is[r] > best) {
				best, found = is[r], true
			}
		})
		if !found {
			return table.Null()
		}
		return table.Int(best)
	}
	best := table.Null()
	rows.ForEach(func(r int) {
		if col.IsNullAt(r) {
			return
		}
		v := col.Value(r)
		if best.IsNull() || table.Compare(v, best) == want {
			best = v
		}
	})
	return best
}

// executeGroupedVec groups the selected rows with a hash aggregator and
// evaluates HAVING and the select list per group, in parallel across group
// partitions for large inputs.
func executeGroupedVec(ctx context.Context, stmt *SelectStmt, rel *vrel, sel *table.Selection) (*table.Table, error) {
	items := expandItems(stmt, &rel.relSchema)
	order := orderExprs(stmt, items)
	n := selLen(rel, sel)

	keyCols := make([]*table.Column, len(stmt.GroupBy))
	for i, g := range stmt.GroupBy {
		col, err := evalVec(g, rel, sel)
		if err != nil {
			return nil, err
		}
		keyCols[i] = &col
	}
	groups := hashGroups(ctx, keyCols, rel, sel)
	// Global aggregates over zero rows still produce one group.
	if len(stmt.GroupBy) == 0 && len(groups) == 0 {
		groups = append(groups, &grp{})
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	having := stmt.Having
	if having != nil {
		having = resolveHavingAliases(having, items, &rel.relSchema)
	}
	type groupOut struct {
		include bool
		pr      projectedRow
	}
	outs := make([]groupOut, len(groups))
	evalGroup := func(gi int) error {
		ev := &vGroupEnv{rel: rel, rows: groups[gi].sel}
		if having != nil {
			hv, err := evalExpr(having, ev)
			if err != nil {
				return err
			}
			if b, ok := hv.AsBool(); !ok || !b {
				return nil
			}
		}
		pr := projectedRow{out: make([]table.Value, len(items)), keys: make([]table.Value, len(order))}
		for i, it := range items {
			v, err := evalExpr(it.Expr, ev)
			if err != nil {
				return err
			}
			pr.out[i] = v
		}
		for i, o := range order {
			v, err := evalExpr(o.Expr, ev)
			if err != nil {
				return err
			}
			pr.keys[i] = v
		}
		outs[gi] = groupOut{include: true, pr: pr}
		return nil
	}

	var err error
	if n >= parallelMinRows && len(groups) > 1 {
		err = parallelChunks(ctx, len(groups), 1, func(lo, hi int) error {
			for gi := lo; gi < hi; gi++ {
				if err := evalGroup(gi); err != nil {
					return err
				}
			}
			return nil
		})
	} else {
		for gi := range groups {
			if err = evalGroup(gi); err != nil {
				break
			}
		}
	}
	if err != nil {
		return nil, err
	}

	rows := make([]projectedRow, 0, len(groups))
	for _, g := range outs {
		if g.include {
			rows = append(rows, g.pr)
		}
	}
	return buildOutput(stmt.From, items, rows, order), nil
}
