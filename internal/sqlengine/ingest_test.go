package sqlengine

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"

	"datalab/internal/table"
)

// Concurrency battery for streaming ingest: writers append and publish
// while readers query, under -race. The correctness claim under test is
// snapshot consistency — every Result reflects exactly one published
// snapshot, never a blend of two — plus the non-blocking guarantee that
// open cursors survive any number of publishes.

// stressScale reads DATALAB_STRESS_SCALE (default 1): the dedicated CI
// concurrency job runs the battery several times longer than the default
// `go test -race ./...` pass.
func stressScale() int {
	if s := os.Getenv("DATALAB_STRESS_SCALE"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 1
}

// streamCatalog registers the ingest target: v holds the global row index
// and p = v % 2, so for any published prefix of c rows
// SUM(v) = c*(c-1)/2, COUNT(p=0) = ceil(c/2), COUNT(p=1) = floor(c/2).
// Those closed forms are the blend detectors: a count from one snapshot
// combined with a sum (or a parity split) from another cannot satisfy
// them.
func streamCatalog() *Catalog {
	c := NewCatalog()
	c.Register(table.MustNew("stream", []string{"v", "p"}, []table.Kind{table.KindInt, table.KindInt}))
	c.Register(table.MustNew("side", []string{"x"}, []table.Kind{table.KindInt}))
	return c
}

func streamRows(start, n int) [][]table.Value {
	rows := make([][]table.Value, n)
	for i := range rows {
		v := int64(start + i)
		rows[i] = []table.Value{table.Int(v), table.Int(v % 2)}
	}
	return rows
}

// TestConcurrentIngestQueryStress: N writers append batches to the shared
// stream table (serialized by the bookkeeping lock that records every
// size a publish could expose) while more writers hammer a second table
// through the raw Appender with no external serialization, and M readers
// run aggregates, grouped queries, and the differential corpus the fuzz
// harness uses. Readers assert the closed-form invariants above and that
// every observed row count was recorded as published.
func TestConcurrentIngestQueryStress(t *testing.T) {
	scale := stressScale()
	const writers, readers, batchN = 4, 6, 17
	batches := 30 * scale

	c := streamCatalog()
	stream, _ := c.Appender("stream")
	side, _ := c.Appender("side")

	var book struct {
		sync.Mutex
		total     int
		published map[int64]bool
	}
	book.published = map[int64]bool{0: true}

	var wg, writerWG sync.WaitGroup
	done := make(chan struct{})
	errs := make(chan error, writers*2+readers+2)

	// Stream writers: append a batch and record the size it will publish
	// at before the swap, so any count a reader can ever observe is
	// already in the published set.
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for i := 0; i < batches; i++ {
				book.Lock()
				start := book.total
				if err := stream.Append(streamRows(start, batchN)...); err != nil {
					book.Unlock()
					errs <- err
					return
				}
				book.total = start + batchN
				book.published[int64(book.total)] = true
				stream.Publish()
				book.Unlock()
			}
		}()
	}

	// Side writers contend directly on one Appender's internal mutex —
	// no outer serialization — exercising append/publish interleavings.
	// Whole batches per Append call keep counts multiples of batchN.
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			rows := make([][]table.Value, batchN)
			for i := 0; i < batches; i++ {
				for j := range rows {
					rows[j] = []table.Value{table.Int(int64(i*batchN + j))}
				}
				if err := side.Append(rows...); err != nil {
					errs <- err
					return
				}
				side.Publish()
			}
		}()
	}

	checkInvariant := func(g int) error {
		res, err := c.QueryCtx(context.Background(), "SELECT COUNT(*), SUM(v) FROM stream")
		if err != nil {
			return err
		}
		b := res.Next()
		cnt, ok := b.Int64(0, 0)
		if !ok {
			return fmt.Errorf("reader %d: COUNT came back non-int", g)
		}
		sum, ok := b.Float64(1, 0)
		if !ok && cnt != 0 {
			return fmt.Errorf("reader %d: SUM NULL at count %d", g, cnt)
		}
		if want := float64(cnt) * float64(cnt-1) / 2; cnt > 0 && sum != want {
			return fmt.Errorf("reader %d: blended snapshot: COUNT=%d SUM=%v want %v", g, cnt, sum, want)
		}
		book.Lock()
		okSize := book.published[cnt]
		book.Unlock()
		if !okSize {
			return fmt.Errorf("reader %d: observed count %d was never published", g, cnt)
		}
		return nil
	}

	checkGrouped := func(g int) error {
		res, err := c.QueryCtx(context.Background(), "SELECT p, COUNT(*), SUM(v) FROM stream GROUP BY p ORDER BY p")
		if err != nil {
			return err
		}
		var total, even, odd int64
		var sum float64
		for b := res.Next(); b != nil; b = res.Next() {
			for r := 0; r < b.NumRows(); r++ {
				p, _ := b.Int64(0, r)
				n, _ := b.Int64(1, r)
				s, _ := b.Float64(2, r)
				total += n
				sum += s
				if p == 0 {
					even = n
				} else {
					odd = n
				}
			}
		}
		if want := float64(total) * float64(total-1) / 2; total > 0 && sum != want {
			return fmt.Errorf("reader %d: grouped sums blend: total=%d sum=%v want %v", g, total, sum, want)
		}
		if even != (total+1)/2 || odd != total/2 {
			return fmt.Errorf("reader %d: parity split blend: total=%d even=%d odd=%d", g, total, even, odd)
		}
		book.Lock()
		okSize := book.published[total]
		book.Unlock()
		if !okSize {
			return fmt.Errorf("reader %d: grouped total %d was never published", g, total)
		}
		return nil
	}

	checkSide := func(g int) error {
		res, err := c.QueryCtx(context.Background(), "SELECT COUNT(*) FROM side")
		if err != nil {
			return err
		}
		cnt, _ := res.Next().Int64(0, 0)
		if cnt%batchN != 0 {
			return fmt.Errorf("reader %d: side count %d is not whole batches of %d", g, cnt, batchN)
		}
		return nil
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				var err error
				switch g % 3 {
				case 0:
					err = checkInvariant(g)
				case 1:
					err = checkGrouped(g)
				case 2:
					err = checkSide(g)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(r)
	}

	// Corpus readers: the fuzz generator's query shapes over a second
	// randomized catalog whose tables are being appended to concurrently.
	// No differential assertion is possible mid-ingest (each execution
	// pins its own snapshot); the requirement is that every execution
	// completes or errors cleanly under -race while chunks land.
	rng := rand.New(rand.NewSource(7))
	fc := randCatalog(rng, 300)
	dataApp, _ := fc.Appender("data")
	wg.Add(2)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(11))
		for {
			select {
			case <-done:
				return
			default:
			}
			for i := 0; i < 4; i++ {
				if err := dataApp.Append(randDataRow(rng)); err != nil {
					errs <- err
					return
				}
			}
			dataApp.Publish()
		}
	}()
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(13))
		for {
			select {
			case <-done:
				return
			default:
			}
			q := randQuery(rng)
			res, err := fc.QueryCtx(context.Background(), q)
			if err != nil {
				continue // generated queries may legitimately error
			}
			for b := res.Next(); b != nil; b = res.Next() {
			}
		}
	}()

	// Writers finish, then readers get the stop signal; every reader ran
	// concurrently with live publishes for the whole writer phase.
	writerWG.Wait()
	close(done)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Steady state: the final snapshot must carry every row with exact
	// aggregates, and the chunk structure must partition it.
	if err := checkInvariant(-1); err != nil {
		t.Fatal(err)
	}
	snap, _ := c.Snapshot("stream")
	if snap.NumRows() != writers*batches*batchN {
		t.Fatalf("final snapshot rows = %d, want %d", snap.NumRows(), writers*batches*batchN)
	}
	rows := 0
	for i := 0; i < snap.NumChunks(); i++ {
		rows += snap.Chunk(i).NumRows()
	}
	if rows != snap.NumRows() {
		t.Fatalf("chunks cover %d of %d rows", rows, snap.NumRows())
	}
}

// TestConcurrentWindowQueryStress runs window-function queries against the
// stream table while writers append and publish, under -race. Window
// frames are computed over the whole filtered input, so a blended
// snapshot is maximally visible: every row of the result constrains the
// full prefix. For a published prefix of c rows (v = 0..c-1, p = v % 2):
//
//   - ROW_NUMBER() OVER (ORDER BY v) at row v is v+1,
//   - SUM(v) OVER (PARTITION BY p ORDER BY v) at row v is m(m-1) + p*m
//     with m = (v-p)/2 + 1 (the count of partition rows up to v),
//   - SUM(v) OVER (ORDER BY v ROWS BETWEEN 1 PRECEDING AND CURRENT ROW)
//     at row v is 2v-1 (v at row 0),
//
// and the observed row count must be a published size. Any torn frame —
// a partition missing a row of its snapshot, or a frame crossing into a
// newer chunk — breaks a closed form at some row.
func TestConcurrentWindowQueryStress(t *testing.T) {
	scale := stressScale()
	const writers, readers, batchN = 2, 4, 9
	batches := 20 * scale

	c := streamCatalog()
	stream, _ := c.Appender("stream")

	var book struct {
		sync.Mutex
		total     int
		published map[int64]bool
	}
	book.published = map[int64]bool{0: true}

	var wg, writerWG sync.WaitGroup
	done := make(chan struct{})
	errs := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for i := 0; i < batches; i++ {
				book.Lock()
				start := book.total
				if err := stream.Append(streamRows(start, batchN)...); err != nil {
					book.Unlock()
					errs <- err
					return
				}
				book.total = start + batchN
				book.published[int64(book.total)] = true
				stream.Publish()
				book.Unlock()
			}
		}()
	}

	checkPartitioned := func(g int) error {
		res, err := c.QueryCtx(context.Background(),
			"SELECT v, ROW_NUMBER() OVER (ORDER BY v) AS rn, SUM(v) OVER (PARTITION BY p ORDER BY v) AS rs FROM stream ORDER BY v")
		if err != nil {
			return err
		}
		var seen int64
		for b := res.Next(); b != nil; b = res.Next() {
			for r := 0; r < b.NumRows(); r++ {
				v, _ := b.Int64(0, r)
				rn, _ := b.Int64(1, r)
				rs, _ := b.Float64(2, r)
				if v != seen || rn != seen+1 {
					return fmt.Errorf("reader %d: row %d has v=%d rn=%d", g, seen, v, rn)
				}
				p := v % 2
				m := (v-p)/2 + 1
				if want := float64(m*(m-1) + p*m); rs != want {
					return fmt.Errorf("reader %d: torn window frame at v=%d: rs=%v want %v", g, v, rs, want)
				}
				seen++
			}
		}
		book.Lock()
		okSize := book.published[seen]
		book.Unlock()
		if !okSize {
			return fmt.Errorf("reader %d: window query saw %d rows, never published", g, seen)
		}
		return nil
	}

	checkMovingFrame := func(g int) error {
		res, err := c.QueryCtx(context.Background(),
			"SELECT v, SUM(v) OVER (ORDER BY v ROWS BETWEEN 1 PRECEDING AND CURRENT ROW) AS ms FROM stream ORDER BY v")
		if err != nil {
			return err
		}
		var seen int64
		for b := res.Next(); b != nil; b = res.Next() {
			for r := 0; r < b.NumRows(); r++ {
				v, _ := b.Int64(0, r)
				ms, _ := b.Float64(1, r)
				want := float64(2*v - 1)
				if v == 0 {
					want = 0
				}
				if v != seen || ms != want {
					return fmt.Errorf("reader %d: torn ROWS frame at row %d: v=%d ms=%v want %v", g, seen, v, ms, want)
				}
				seen++
			}
		}
		book.Lock()
		okSize := book.published[seen]
		book.Unlock()
		if !okSize {
			return fmt.Errorf("reader %d: moving-frame query saw %d rows, never published", g, seen)
		}
		return nil
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				var err error
				if g%2 == 0 {
					err = checkPartitioned(g)
				} else {
					err = checkMovingFrame(g)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(r)
	}

	writerWG.Wait()
	close(done)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Steady state: the final snapshot satisfies both closed forms in full.
	if err := checkPartitioned(-1); err != nil {
		t.Fatal(err)
	}
	if err := checkMovingFrame(-1); err != nil {
		t.Fatal(err)
	}
}

// TestCursorAcrossSnapshots holds one lazy Result cursor open across many
// published snapshots: the acceptance criterion that appends never block
// — or bleed into — an in-flight cursor. The cursor must drain exactly
// the rows of the snapshot it was planned on, cell for cell, while the
// live table grows by 12 published snapshots.
func TestCursorAcrossSnapshots(t *testing.T) {
	const initial, growBatches, growN = 5000, 12, 100
	c := streamCatalog()
	app, _ := c.Appender("stream")
	if err := app.Append(streamRows(0, initial)...); err != nil {
		t.Fatal(err)
	}
	startVersion := app.Publish().Version()

	res, err := c.QueryCtx(context.Background(), "SELECT v FROM stream")
	if err != nil {
		t.Fatal(err)
	}
	read := 0
	b := res.Next() // first batch out before any ingest
	for i := 0; i < growBatches; i++ {
		if err := app.Append(streamRows(initial+i*growN, growN)...); err != nil {
			t.Fatal(err)
		}
		app.Publish()
		// Interleave cursor progress with publishes.
		if b != nil {
			for r := 0; r < b.NumRows(); r++ {
				if v, ok := b.Int64(0, r); !ok || v != int64(read) {
					t.Fatalf("row %d: got %d (ok=%v)", read, v, ok)
				}
				read++
			}
			b = res.Next()
		}
	}
	if got := app.Snapshot().Version() - startVersion; got < 10 {
		t.Fatalf("only %d snapshots published while cursor open, want >= 10", got)
	}
	for ; b != nil; b = res.Next() {
		for r := 0; r < b.NumRows(); r++ {
			if v, ok := b.Int64(0, r); !ok || v != int64(read) {
				t.Fatalf("row %d: got %d (ok=%v)", read, v, ok)
			}
			read++
		}
	}
	if read != initial {
		t.Fatalf("cursor drained %d rows, want exactly its snapshot's %d", read, initial)
	}
	// A fresh query sees all the growth.
	res2, err := c.QueryCtx(context.Background(), "SELECT COUNT(*) FROM stream")
	if err != nil {
		t.Fatal(err)
	}
	if cnt, _ := res2.Next().Int64(0, 0); cnt != initial+growBatches*growN {
		t.Fatalf("fresh query sees %d rows, want %d", cnt, initial+growBatches*growN)
	}
}

// TestCatalogAppend covers the convenience append-and-publish path and
// snapshot acquisition through Catalog.Snapshot.
func TestCatalogAppend(t *testing.T) {
	c := streamCatalog()
	if err := c.Append("stream", []table.Value{table.Int(0), table.Int(0)}, []table.Value{table.Int(1), table.Int(1)}); err != nil {
		t.Fatal(err)
	}
	out, err := c.Query("SELECT COUNT(*), SUM(v) FROM stream")
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Columns[0].Value(0).Key(); got != "i:2" {
		t.Fatalf("count after append = %s", got)
	}
	if err := c.Append("nope", []table.Value{table.Int(0)}); err == nil {
		t.Fatal("append to unknown table succeeded")
	}
	snap, ok := c.Snapshot("STREAM") // case-insensitive like Table
	if !ok || snap.NumRows() != 2 || snap.Version() != 2 {
		t.Fatalf("snapshot lookup: ok=%v rows=%d v=%d", ok, snap.NumRows(), snap.Version())
	}
}

// TestSchemaChangeInvalidatesPlanCache: re-registering a table with a
// different schema clears the plan cache and bumps Invalidations;
// re-registering with the same schema (a data reload) does not.
func TestSchemaChangeInvalidatesPlanCache(t *testing.T) {
	c := NewCatalog()
	reg := func(kind table.Kind) {
		tb := table.MustNew("t", []string{"a"}, []table.Kind{kind})
		tb.MustAppendRow(table.Int(1))
		c.Register(tb)
	}
	reg(table.KindInt)
	if _, err := c.Query("SELECT a FROM t WHERE a > 0"); err != nil {
		t.Fatal(err)
	}
	if st := c.PlanCacheStats(); st.Size == 0 || st.Invalidations != 0 {
		t.Fatalf("warmup stats: %+v", st)
	}
	reg(table.KindInt) // same schema: reload, keep plans
	if st := c.PlanCacheStats(); st.Size == 0 || st.Invalidations != 0 {
		t.Fatalf("same-schema re-register cleared the cache: %+v", st)
	}
	reg(table.KindString) // kind change: invalidate
	if st := c.PlanCacheStats(); st.Size != 0 || st.Invalidations != 1 {
		t.Fatalf("schema change stats: %+v", st)
	}
	if _, err := c.Query("SELECT a FROM t WHERE a > 0"); err != nil {
		t.Fatal(err)
	}
	if st := c.PlanCacheStats(); st.Size == 0 {
		t.Fatalf("cache did not refill after invalidation: %+v", st)
	}
}
