package sqlengine

import (
	"runtime"
	"sync"
)

// The engine shares one bounded worker pool across all queries: a semaphore
// sized to GOMAXPROCS. Scan and aggregate partitions acquire a slot to run
// on a separate goroutine; when the pool is saturated (e.g. many concurrent
// Platform.Ask callers) partitions degrade gracefully to running inline on
// the caller's goroutine, so total engine parallelism stays bounded no
// matter how many queries are in flight.
var workerSem = make(chan struct{}, runtime.GOMAXPROCS(0))

// parallelMinRows is the selection size below which the executor stays
// serial: goroutine handoff costs more than the scan itself.
const parallelMinRows = 4096

// parallelChunks splits [0, n) into at most GOMAXPROCS contiguous chunks of
// at least minChunk elements and runs fn on each, returning the first error.
// fn must only write to per-chunk (disjoint) state. Chunks run on pool
// workers when slots are free and inline otherwise; with one chunk the call
// is plain function invocation.
func parallelChunks(n, minChunk int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if minChunk < 1 {
		minChunk = 1
	}
	nchunks := n / minChunk
	if max := cap(workerSem); nchunks > max {
		nchunks = max
	}
	if nchunks <= 1 {
		return fn(0, n)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	record := func(err error) {
		if err == nil {
			return
		}
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	size := (n + nchunks - 1) / nchunks
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		select {
		case workerSem <- struct{}{}:
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				defer func() { <-workerSem }()
				record(fn(lo, hi))
			}(lo, hi)
		default:
			record(fn(lo, hi))
		}
	}
	wg.Wait()
	return firstErr
}
