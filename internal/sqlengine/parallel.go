package sqlengine

import (
	"context"
	"runtime"
	"sync"
)

// The engine shares one bounded worker pool across all queries: a semaphore
// sized to GOMAXPROCS. Scan and aggregate partitions acquire a slot to run
// on a separate goroutine; when the pool is saturated (e.g. many concurrent
// Platform.Ask callers) partitions degrade gracefully to running inline on
// the caller's goroutine, so total engine parallelism stays bounded no
// matter how many queries are in flight.
var workerSem = make(chan struct{}, runtime.GOMAXPROCS(0))

// parallelMinRows is the selection size below which the executor stays
// serial: goroutine handoff costs more than the scan itself.
const parallelMinRows = 4096

// chunkLayout computes the partitioning parallelChunks uses: the chunk
// size and the number of chunks [0, n) splits into.
func chunkLayout(n, minChunk int) (size, count int) {
	if n <= 0 {
		return 0, 0
	}
	if minChunk < 1 {
		minChunk = 1
	}
	nchunks := n / minChunk
	if max := cap(workerSem); nchunks > max {
		nchunks = max
	}
	if nchunks <= 1 {
		return n, 1
	}
	size = (n + nchunks - 1) / nchunks
	return size, (n + size - 1) / size
}

// parallelChunks splits [0, n) into at most GOMAXPROCS contiguous chunks of
// at least minChunk elements and runs fn on each, returning the first error.
// fn must only write to per-chunk (disjoint) state. Chunks run on pool
// workers when slots are free and inline otherwise; with one chunk the call
// is plain function invocation.
//
// Cancellation is observed at chunk granularity: a chunk that has not
// started when ctx is done is skipped (its error becomes ctx.Err()), while
// chunks already running finish their slice. Callers therefore return
// promptly — within one chunk's worth of work — after cancellation, and no
// worker goroutine outlives the call (the WaitGroup is always drained).
func parallelChunks(ctx context.Context, n, minChunk int, fn func(lo, hi int) error) error {
	return parallelChunksIndexed(ctx, n, minChunk, func(_, lo, hi int) error { return fn(lo, hi) })
}

// parallelChunksIndexed is parallelChunks with the chunk's ordinal (dense,
// 0-based, matching the count from chunkLayout) passed to fn, so chunks can
// deposit results into a preallocated slice without synchronization.
func parallelChunksIndexed(ctx context.Context, n, minChunk int, fn func(ci, lo, hi int) error) error {
	size, count := chunkLayout(n, minChunk)
	if count == 0 {
		return ctx.Err()
	}
	if count == 1 {
		if err := ctx.Err(); err != nil {
			return err
		}
		return fn(0, 0, n)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	record := func(err error) {
		if err == nil {
			return
		}
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for ci, lo := 0, 0; lo < n; ci, lo = ci+1, lo+size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		if err := ctx.Err(); err != nil {
			record(err)
			break
		}
		select {
		case workerSem <- struct{}{}:
			wg.Add(1)
			go func(ci, lo, hi int) {
				defer wg.Done()
				defer func() { <-workerSem }()
				if err := ctx.Err(); err != nil {
					record(err)
					return
				}
				record(fn(ci, lo, hi))
			}(ci, lo, hi)
		default:
			record(fn(ci, lo, hi))
		}
	}
	wg.Wait()
	return firstErr
}
