package sqlengine

import (
	"strings"
	"testing"

	"datalab/internal/table"
)

// queryBoth runs q through the vectorized and the scalar engine, requires
// byte-identical results, and returns the vectorized table.
func queryBoth(t *testing.T, c *Catalog, q string) *table.Table {
	t.Helper()
	vec, err := c.Query(q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	sca, err := c.QueryScalar(q)
	if err != nil {
		t.Fatalf("query %q (scalar): %v", q, err)
	}
	if dv, ds := dumpTable(vec), dumpTable(sca); dv != ds {
		t.Fatalf("query %q: vectorized vs scalar mismatch\n-- vectorized --\n%s\n-- scalar --\n%s", q, dv, ds)
	}
	return vec
}

// expectCells asserts the result's cells, row by row, via canonical keys.
func expectCells(t *testing.T, q string, got *table.Table, want [][]table.Value) {
	t.Helper()
	if got.NumRows() != len(want) {
		t.Fatalf("query %q: rows = %d, want %d\n%s", q, got.NumRows(), len(want), dumpTable(got))
	}
	for i, row := range want {
		if len(row) != got.NumCols() {
			t.Fatalf("query %q: cols = %d, want %d", q, got.NumCols(), len(row))
		}
		for j, w := range row {
			if g := got.Columns[j].Value(i); g.Key() != w.Key() {
				t.Errorf("query %q: cell (%d,%d) = %s, want %s", q, i, j, g.Key(), w.Key())
			}
		}
	}
}

func TestWindowRowNumberPartitioned(t *testing.T) {
	c := testCatalog(t)
	q := "SELECT id, ROW_NUMBER() OVER (PARTITION BY region ORDER BY amount) AS rn FROM sales WHERE amount IS NOT NULL ORDER BY id"
	expectCells(t, q, queryBoth(t, c, q), [][]table.Value{
		{table.Int(1), table.Int(1)}, // east 100
		{table.Int(2), table.Int(2)}, // east 250
		{table.Int(3), table.Int(1)}, // west 75
		{table.Int(4), table.Int(3)}, // west 300
		{table.Int(5), table.Int(2)}, // west 125
	})
}

func TestWindowRankAndDenseRankTies(t *testing.T) {
	c := testCatalog(t)
	// qty by id: 2, 1, 3, 4, 1, 2 — two tied pairs.
	q := "SELECT id, RANK() OVER (ORDER BY qty) AS r, DENSE_RANK() OVER (ORDER BY qty) AS dr FROM sales ORDER BY id"
	expectCells(t, q, queryBoth(t, c, q), [][]table.Value{
		{table.Int(1), table.Int(3), table.Int(2)},
		{table.Int(2), table.Int(1), table.Int(1)},
		{table.Int(3), table.Int(5), table.Int(3)},
		{table.Int(4), table.Int(6), table.Int(4)},
		{table.Int(5), table.Int(1), table.Int(1)},
		{table.Int(6), table.Int(3), table.Int(2)},
	})
}

func TestWindowRunningSumPerPartition(t *testing.T) {
	c := testCatalog(t)
	q := "SELECT id, SUM(amount) OVER (PARTITION BY region ORDER BY id) AS rs FROM sales ORDER BY id"
	expectCells(t, q, queryBoth(t, c, q), [][]table.Value{
		{table.Int(1), table.Float(100)},
		{table.Int(2), table.Float(350)},
		{table.Int(3), table.Float(75)},
		{table.Int(4), table.Float(375)},
		{table.Int(5), table.Float(500)},
		{table.Int(6), table.Null()}, // north: only a NULL amount
	})
}

func TestWindowRangePeersShareValue(t *testing.T) {
	c := testCatalog(t)
	// ORDER BY region groups peers: east{1,2} north{6} west{3,4,5}; the
	// default RANGE frame gives every peer the group-closing running value.
	q := "SELECT id, SUM(qty) OVER (ORDER BY region) AS rs FROM sales ORDER BY id"
	expectCells(t, q, queryBoth(t, c, q), [][]table.Value{
		{table.Int(1), table.Float(3)},
		{table.Int(2), table.Float(3)},
		{table.Int(3), table.Float(13)},
		{table.Int(4), table.Float(13)},
		{table.Int(5), table.Float(13)},
		{table.Int(6), table.Float(5)},
	})
}

func TestWindowRowsFrameMovingSum(t *testing.T) {
	c := testCatalog(t)
	// qty by id: 2, 1, 3, 4, 1, 2 — 3-row moving window.
	q := "SELECT id, SUM(qty) OVER (ORDER BY id ROWS BETWEEN 2 PRECEDING AND CURRENT ROW) AS ms FROM sales ORDER BY id"
	expectCells(t, q, queryBoth(t, c, q), [][]table.Value{
		{table.Int(1), table.Float(2)},
		{table.Int(2), table.Float(3)},
		{table.Int(3), table.Float(6)},
		{table.Int(4), table.Float(8)},
		{table.Int(5), table.Float(8)},
		{table.Int(6), table.Float(7)},
	})
}

func TestWindowRowsUnboundedEqualsRunning(t *testing.T) {
	c := testCatalog(t)
	// ROWS UNBOUNDED PRECEDING differs from the default RANGE frame on tied
	// keys: each row sees exactly its preceding rows, not its whole peer
	// group. qty sorted (stable by id): 1(id2) 1(id5) 2(id1) 2(id6) 3(id3) 4(id4).
	q := "SELECT id, COUNT(*) OVER (ORDER BY qty ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW) AS n FROM sales ORDER BY id"
	expectCells(t, q, queryBoth(t, c, q), [][]table.Value{
		{table.Int(1), table.Int(3)},
		{table.Int(2), table.Int(1)},
		{table.Int(3), table.Int(5)},
		{table.Int(4), table.Int(6)},
		{table.Int(5), table.Int(2)},
		{table.Int(6), table.Int(4)},
	})
}

func TestWindowWholePartitionAggregate(t *testing.T) {
	c := testCatalog(t)
	q := "SELECT id, COUNT(*) OVER (PARTITION BY region) AS n, MAX(amount) OVER (PARTITION BY region) AS m FROM sales ORDER BY id"
	expectCells(t, q, queryBoth(t, c, q), [][]table.Value{
		{table.Int(1), table.Int(2), table.Float(250)},
		{table.Int(2), table.Int(2), table.Float(250)},
		{table.Int(3), table.Int(3), table.Float(300)},
		{table.Int(4), table.Int(3), table.Float(300)},
		{table.Int(5), table.Int(3), table.Float(300)},
		{table.Int(6), table.Int(1), table.Null()},
	})
}

func TestWindowInOrderByClause(t *testing.T) {
	c := testCatalog(t)
	q := "SELECT id FROM sales WHERE amount IS NOT NULL ORDER BY RANK() OVER (ORDER BY amount DESC), id"
	expectCells(t, q, queryBoth(t, c, q), [][]table.Value{
		{table.Int(4)}, {table.Int(2)}, {table.Int(5)}, {table.Int(1)}, {table.Int(3)},
	})
}

func TestWindowOverEmptyAndSingleRowInput(t *testing.T) {
	c := testCatalog(t)
	q := "SELECT id, ROW_NUMBER() OVER (ORDER BY id) AS rn, SUM(qty) OVER (PARTITION BY region ORDER BY id) AS rs FROM sales WHERE id > 100 ORDER BY id"
	expectCells(t, q, queryBoth(t, c, q), nil)
	q = "SELECT id, ROW_NUMBER() OVER (ORDER BY id) AS rn FROM sales WHERE id = 4"
	expectCells(t, q, queryBoth(t, c, q), [][]table.Value{{table.Int(4), table.Int(1)}})
}

func TestScalarSubqueryInWhere(t *testing.T) {
	c := testCatalog(t)
	// AVG(amount) = 170 over the five non-NULL rows.
	q := "SELECT id FROM sales WHERE amount > (SELECT AVG(amount) FROM sales) ORDER BY id"
	expectCells(t, q, queryBoth(t, c, q), [][]table.Value{{table.Int(2)}, {table.Int(4)}})
}

func TestScalarSubqueryZeroRowsIsNull(t *testing.T) {
	c := testCatalog(t)
	q := "SELECT id FROM sales WHERE amount > (SELECT amount FROM sales WHERE id = 99)"
	expectCells(t, q, queryBoth(t, c, q), nil)
	q = "SELECT (SELECT amount FROM sales WHERE id = 99) AS missing FROM sales WHERE id = 1"
	expectCells(t, q, queryBoth(t, c, q), [][]table.Value{{table.Null()}})
}

func TestScalarSubqueryMultiRowErrors(t *testing.T) {
	c := testCatalog(t)
	q := "SELECT id FROM sales WHERE amount > (SELECT amount FROM sales WHERE region = 'east')"
	_, vecErr := c.Query(q)
	_, scaErr := c.QueryScalar(q)
	for _, err := range []error{vecErr, scaErr} {
		if err == nil || !strings.Contains(err.Error(), "scalar subquery returned 2 rows") {
			t.Errorf("query %q: err = %v, want multi-row scalar subquery error", q, err)
		}
	}
}

func TestInSubquery(t *testing.T) {
	c := testCatalog(t)
	q := "SELECT id FROM sales WHERE product IN (SELECT name FROM products WHERE price > 100) ORDER BY id"
	expectCells(t, q, queryBoth(t, c, q), [][]table.Value{{table.Int(2)}, {table.Int(4)}})
	q = "SELECT id FROM sales WHERE product NOT IN (SELECT name FROM products WHERE price > 100) ORDER BY id"
	expectCells(t, q, queryBoth(t, c, q), [][]table.Value{
		{table.Int(1)}, {table.Int(3)}, {table.Int(5)}, {table.Int(6)},
	})
}

func TestSubqueryInSelectListAndNested(t *testing.T) {
	c := testCatalog(t)
	q := "SELECT id, (SELECT MAX(price) FROM products) AS top FROM sales WHERE id <= 2 ORDER BY id"
	expectCells(t, q, queryBoth(t, c, q), [][]table.Value{
		{table.Int(1), table.Float(250)},
		{table.Int(2), table.Float(250)},
	})
	// Nested: the inner subquery inlines first, then the outer.
	q = "SELECT id FROM sales WHERE qty > (SELECT MIN(qty) FROM sales WHERE amount > (SELECT AVG(amount) FROM sales)) ORDER BY id"
	// Inner AVG = 170 → rows {2,4} → MIN(qty) = 1 → qty > 1: ids 1, 3, 4, 6.
	expectCells(t, q, queryBoth(t, c, q), [][]table.Value{
		{table.Int(1)}, {table.Int(3)}, {table.Int(4)}, {table.Int(6)},
	})
}

func TestSimpleCaseForm(t *testing.T) {
	c := testCatalog(t)
	q := "SELECT id, CASE region WHEN 'east' THEN 1 WHEN 'west' THEN 2 ELSE 0 END AS rc FROM sales ORDER BY id"
	expectCells(t, q, queryBoth(t, c, q), [][]table.Value{
		{table.Int(1), table.Int(1)},
		{table.Int(2), table.Int(1)},
		{table.Int(3), table.Int(2)},
		{table.Int(4), table.Int(2)},
		{table.Int(5), table.Int(2)},
		{table.Int(6), table.Int(0)},
	})
	// NULL operand matches no WHEN (= NULL is unknown), falls to ELSE.
	q = "SELECT id, CASE amount WHEN 100 THEN 'hundred' ELSE 'other' END AS lbl FROM sales WHERE id IN (1, 6) ORDER BY id"
	expectCells(t, q, queryBoth(t, c, q), [][]table.Value{
		{table.Int(1), table.Str("hundred")},
		{table.Int(6), table.Str("other")},
	})
}

func TestHavingOverAliasAndExpressions(t *testing.T) {
	c := testCatalog(t)
	// Alias reference: total resolves to SUM(qty). east=3, west=8, north=2.
	q := "SELECT region, SUM(qty) AS total FROM sales GROUP BY region HAVING total > 2 ORDER BY region"
	expectCells(t, q, queryBoth(t, c, q), [][]table.Value{
		{table.Str("east"), table.Int(3)},
		{table.Str("west"), table.Int(8)},
	})
	// Arbitrary expression over aggregates, not just a bare comparison.
	q = "SELECT region, COUNT(*) AS n FROM sales GROUP BY region HAVING n * 2 >= 4 AND MAX(qty) > 1 ORDER BY region"
	expectCells(t, q, queryBoth(t, c, q), [][]table.Value{
		{table.Str("east"), table.Int(2)},
		{table.Str("west"), table.Int(3)},
	})
	// Group key referenced through its alias.
	q = "SELECT region AS r, COUNT(*) FROM sales GROUP BY region HAVING r <> 'north' ORDER BY r"
	expectCells(t, q, queryBoth(t, c, q), [][]table.Value{
		{table.Str("east"), table.Int(2)},
		{table.Str("west"), table.Int(3)},
	})
}

// TestWindowParseErrors pins the parser's window/subquery diagnostics —
// each malformed input must fail with a message that names the problem.
func TestWindowParseErrors(t *testing.T) {
	cases := []struct {
		sql, want string
	}{
		{"SELECT ROW_NUMBER() OVER (ORDER BY id FROM sales", "unclosed OVER ("},
		{"SELECT ROW_NUMBER() OVER (PARTITION region) FROM sales", "expected BY"},
		{"SELECT SUM(qty) OVER (ORDER BY id GROUPS) FROM sales", "unclosed OVER ("},
		{"SELECT RANK() OVER (PARTITION BY region) FROM sales", "RANK() requires ORDER BY"},
		{"SELECT ROW_NUMBER() FROM sales", "ROW_NUMBER requires an OVER clause"},
		{"SELECT ROW_NUMBER(id) OVER (ORDER BY id) FROM sales", "takes no arguments"},
		{"SELECT DENSE_RANK() OVER (ORDER BY id ROWS BETWEEN 2 PRECEDING AND CURRENT ROW) FROM sales", "does not accept a ROWS frame"},
		{"SELECT SUM(qty) OVER (PARTITION BY region ROWS BETWEEN 2 PRECEDING AND CURRENT ROW) FROM sales", "ROWS frame requires ORDER BY"},
		{"SELECT SUM(qty) OVER (ORDER BY id ROWS BETWEEN id PRECEDING AND CURRENT ROW) FROM sales", "expected UNBOUNDED or a row count"},
		{"SELECT SUM(DISTINCT qty) OVER (ORDER BY id) FROM sales", "DISTINCT is not supported in window function"},
		{"SELECT SUM(*) OVER (ORDER BY id) FROM sales", "not a valid window function"},
		{"SELECT SUM(qty, id) OVER (ORDER BY id) FROM sales", "exactly one argument"},
		{"SELECT MEDIAN(qty) OVER (ORDER BY id) FROM sales", "not a supported window function"},
		{"SELECT id FROM sales WHERE ROW_NUMBER() OVER (ORDER BY id) = 1", "not allowed"},
		{"SELECT SUM(qty) OVER (ORDER BY id), COUNT(*) FROM sales", "cannot be combined with GROUP BY or aggregates"},
		{"SELECT region, SUM(qty) OVER (ORDER BY id) FROM sales GROUP BY region", "cannot be combined with GROUP BY or aggregates"},
		{"SELECT SUM(SUM(qty)) OVER (ORDER BY id) FROM sales", "aggregates are not allowed inside a window function"},
		{"SELECT SUM(qty) OVER (ORDER BY ROW_NUMBER() OVER (ORDER BY id)) FROM sales", "nested"},
		{"SELECT SUM((SELECT MAX(qty) FROM sales)) OVER (ORDER BY id) FROM sales", "subqueries are not allowed inside a window function"},
		{"SELECT id FROM sales WHERE qty = (SELECT id, qty FROM sales)", "scalar subquery must return exactly one column, got 2"},
		{"SELECT id FROM sales WHERE qty IN (SELECT id, qty FROM sales)", "IN subquery must return exactly one column, got 2"},
		{"SELECT s.id FROM sales s JOIN products p ON ROW_NUMBER() OVER (ORDER BY s.id) = 1", "not allowed in JOIN ON"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.sql)
		if err == nil {
			t.Errorf("Parse(%q): no error, want %q", tc.sql, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q):\n  err  = %v\n  want substring %q", tc.sql, err, tc.want)
		}
	}
}

// TestWindowFingerprintBindRoundTrip proves the fingerprint normalizer is
// still semantics-preserving on the new surface: subquery literals extract
// into the shared slot space, frame bounds and select-list literals do
// not, and the bound template reproduces the inlined results through both
// evaluators.
func TestWindowFingerprintBindRoundTrip(t *testing.T) {
	c := testCatalog(t)
	queries := []string{
		"SELECT id FROM sales WHERE amount > (SELECT AVG(amount) FROM sales WHERE qty > 0) ORDER BY id",
		"SELECT id FROM sales WHERE product IN (SELECT name FROM products WHERE price > 100) AND qty < 9 ORDER BY id",
		"SELECT id, SUM(qty) OVER (ORDER BY id ROWS BETWEEN 2 PRECEDING AND CURRENT ROW) AS ms FROM sales WHERE id < 100 ORDER BY id",
		"SELECT id, CASE region WHEN 'east' THEN 1 ELSE 0 END AS rc FROM sales WHERE qty >= 1 ORDER BY id",
		"SELECT region, SUM(qty) AS total FROM sales GROUP BY region HAVING total > 2 ORDER BY region",
	}
	for _, q := range queries {
		tbl, err := c.Query(q)
		if err != nil {
			t.Fatalf("query %q: %v", q, err)
		}
		if _, vals, ok := Fingerprint(q); !ok || len(vals) == 0 {
			t.Fatalf("query %q: expected extractable literals (ok=%v, n=%d)", q, ok, len(vals))
		}
		diffBindVsInline(t, c, q, dumpTable(tbl))
	}
	// A ROWS frame bound must never be extracted as a parameter.
	tmpl, _, ok := Fingerprint("SELECT id, SUM(qty) OVER (ORDER BY id ROWS BETWEEN 2 PRECEDING AND CURRENT ROW) FROM sales WHERE id > 0")
	if !ok || !strings.Contains(tmpl, "ROWS BETWEEN 2 PRECEDING") {
		t.Errorf("frame bound was extracted: template %q", tmpl)
	}
	// A subquery's interior zones must not leak extraction into the outer
	// ORDER BY: the trailing positional 2 stays literal.
	tmpl, vals, ok := Fingerprint("SELECT region, id FROM sales WHERE qty IN (SELECT qty FROM sales LIMIT 3) ORDER BY 2")
	if !ok || !strings.HasSuffix(strings.TrimSpace(tmpl), "ORDER BY 2") {
		t.Errorf("subquery zone leaked into ORDER BY: template %q (values %v)", tmpl, vals)
	}
}
