package sqlengine

import (
	"strings"
	"testing"
	"testing/quick"

	"datalab/internal/table"
)

func testCatalog(t *testing.T) *Catalog {
	t.Helper()
	sales := table.MustNew("sales",
		[]string{"id", "region", "product", "amount", "qty", "ftime"},
		[]table.Kind{table.KindInt, table.KindString, table.KindString, table.KindFloat, table.KindInt, table.KindTime})
	rows := [][]table.Value{
		{table.Int(1), table.Str("east"), table.Str("widget"), table.Float(100), table.Int(2), table.Str("2023-01-15")},
		{table.Int(2), table.Str("east"), table.Str("gadget"), table.Float(250), table.Int(1), table.Str("2023-02-20")},
		{table.Int(3), table.Str("west"), table.Str("widget"), table.Float(75), table.Int(3), table.Str("2023-03-05")},
		{table.Int(4), table.Str("west"), table.Str("gadget"), table.Float(300), table.Int(4), table.Str("2024-01-10")},
		{table.Int(5), table.Str("west"), table.Str("widget"), table.Float(125), table.Int(1), table.Str("2024-02-14")},
		{table.Int(6), table.Str("north"), table.Str("sprocket"), table.Null(), table.Int(2), table.Str("2024-03-01")},
	}
	for _, r := range rows {
		sales.MustAppendRow(r...)
	}
	products := table.MustNew("products",
		[]string{"name", "category", "price"},
		[]table.Kind{table.KindString, table.KindString, table.KindFloat})
	products.MustAppendRow(table.Str("widget"), table.Str("hardware"), table.Float(50))
	products.MustAppendRow(table.Str("gadget"), table.Str("electronics"), table.Float(250))

	c := NewCatalog()
	c.Register(sales)
	c.Register(products)
	return c
}

func mustQuery(t *testing.T, c *Catalog, sql string) *table.Table {
	t.Helper()
	res, err := c.Query(sql)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	return res
}

func TestSelectStar(t *testing.T) {
	c := testCatalog(t)
	res := mustQuery(t, c, "SELECT * FROM sales")
	if res.NumRows() != 6 || res.NumCols() != 6 {
		t.Errorf("shape = %dx%d", res.NumRows(), res.NumCols())
	}
}

func TestWhereComparison(t *testing.T) {
	c := testCatalog(t)
	res := mustQuery(t, c, "SELECT id FROM sales WHERE amount > 100")
	if res.NumRows() != 3 {
		t.Errorf("rows = %d, want 3", res.NumRows())
	}
}

func TestWhereNullExcluded(t *testing.T) {
	c := testCatalog(t)
	// amount IS NULL row must not satisfy either branch.
	gt := mustQuery(t, c, "SELECT id FROM sales WHERE amount > 0")
	le := mustQuery(t, c, "SELECT id FROM sales WHERE amount <= 0")
	if gt.NumRows()+le.NumRows() != 5 {
		t.Errorf("NULL row leaked into comparison: %d + %d", gt.NumRows(), le.NumRows())
	}
	isn := mustQuery(t, c, "SELECT id FROM sales WHERE amount IS NULL")
	if isn.NumRows() != 1 {
		t.Errorf("IS NULL rows = %d", isn.NumRows())
	}
}

func TestWhereAndOrNot(t *testing.T) {
	c := testCatalog(t)
	res := mustQuery(t, c, "SELECT id FROM sales WHERE region = 'west' AND (product = 'widget' OR qty >= 4)")
	if res.NumRows() != 3 {
		t.Errorf("rows = %d, want 3", res.NumRows())
	}
	res = mustQuery(t, c, "SELECT id FROM sales WHERE NOT region = 'west'")
	if res.NumRows() != 3 {
		t.Errorf("NOT rows = %d, want 3", res.NumRows())
	}
}

func TestInAndBetween(t *testing.T) {
	c := testCatalog(t)
	res := mustQuery(t, c, "SELECT id FROM sales WHERE region IN ('east', 'north')")
	if res.NumRows() != 3 {
		t.Errorf("IN rows = %d", res.NumRows())
	}
	res = mustQuery(t, c, "SELECT id FROM sales WHERE region NOT IN ('east', 'north')")
	if res.NumRows() != 3 {
		t.Errorf("NOT IN rows = %d", res.NumRows())
	}
	res = mustQuery(t, c, "SELECT id FROM sales WHERE amount BETWEEN 100 AND 250")
	if res.NumRows() != 3 {
		t.Errorf("BETWEEN rows = %d", res.NumRows())
	}
}

func TestLike(t *testing.T) {
	c := testCatalog(t)
	res := mustQuery(t, c, "SELECT id FROM sales WHERE product LIKE '%get'")
	if res.NumRows() != 5 {
		t.Errorf("LIKE %%get rows = %d, want 5 (3 widget + 2 gadget)", res.NumRows())
	}
	res = mustQuery(t, c, "SELECT id FROM sales WHERE product LIKE 'W_dget'")
	if res.NumRows() != 3 {
		t.Errorf("LIKE W_dget rows = %d, want 3 (case-insensitive)", res.NumRows())
	}
}

func TestOrderByLimit(t *testing.T) {
	c := testCatalog(t)
	res := mustQuery(t, c, "SELECT id, amount FROM sales WHERE amount IS NOT NULL ORDER BY amount DESC LIMIT 2")
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	if res.Get(0, "id").I != 4 || res.Get(1, "id").I != 2 {
		t.Errorf("top ids = %v, %v", res.Get(0, "id"), res.Get(1, "id"))
	}
}

func TestOrderByAliasAndPosition(t *testing.T) {
	c := testCatalog(t)
	res := mustQuery(t, c, "SELECT region, SUM(amount) AS total FROM sales GROUP BY region ORDER BY total DESC")
	if res.Get(0, "region").S != "west" {
		t.Errorf("alias-ordered first region = %v", res.Get(0, "region"))
	}
	res2 := mustQuery(t, c, "SELECT region, SUM(amount) FROM sales GROUP BY region ORDER BY 2 DESC")
	if res2.Get(0, "region").S != "west" {
		t.Errorf("position-ordered first region = %v", res2.Get(0, "region"))
	}
}

func TestGroupByHaving(t *testing.T) {
	c := testCatalog(t)
	res := mustQuery(t, c, "SELECT region, COUNT(*) AS n, SUM(amount) AS total FROM sales GROUP BY region HAVING COUNT(*) >= 2")
	if res.NumRows() != 2 {
		t.Fatalf("groups = %d, want 2", res.NumRows())
	}
	for i := 0; i < res.NumRows(); i++ {
		if res.Get(i, "region").S == "west" {
			if res.Get(i, "total").F != 500 {
				t.Errorf("west total = %v", res.Get(i, "total"))
			}
			if res.Get(i, "n").I != 3 {
				t.Errorf("west n = %v", res.Get(i, "n"))
			}
		}
	}
}

func TestGlobalAggregates(t *testing.T) {
	c := testCatalog(t)
	res := mustQuery(t, c, "SELECT COUNT(*), COUNT(amount), AVG(amount), MIN(amount), MAX(amount) FROM sales")
	if res.NumRows() != 1 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	row := res.Row(0)
	if row[0].I != 6 {
		t.Errorf("COUNT(*) = %v", row[0])
	}
	if row[1].I != 5 {
		t.Errorf("COUNT(amount) = %v (must skip NULL)", row[1])
	}
	if row[2].F != 170 {
		t.Errorf("AVG = %v", row[2])
	}
	if row[3].F != 75 || row[4].F != 300 {
		t.Errorf("MIN/MAX = %v/%v", row[3], row[4])
	}
}

func TestCountDistinct(t *testing.T) {
	c := testCatalog(t)
	res := mustQuery(t, c, "SELECT COUNT(DISTINCT region) FROM sales")
	if res.Row(0)[0].I != 3 {
		t.Errorf("COUNT(DISTINCT region) = %v", res.Row(0)[0])
	}
}

func TestJoinInnerSQL(t *testing.T) {
	c := testCatalog(t)
	res := mustQuery(t, c, `SELECT s.id, p.category FROM sales AS s JOIN products AS p ON s.product = p.name ORDER BY s.id`)
	if res.NumRows() != 5 {
		t.Fatalf("joined rows = %d, want 5 (sprocket unmatched)", res.NumRows())
	}
	if res.Get(0, "category").S != "hardware" {
		t.Errorf("first category = %v", res.Get(0, "category"))
	}
}

func TestJoinLeftSQL(t *testing.T) {
	c := testCatalog(t)
	res := mustQuery(t, c, `SELECT s.id, p.category FROM sales s LEFT JOIN products p ON s.product = p.name ORDER BY s.id`)
	if res.NumRows() != 6 {
		t.Fatalf("left joined rows = %d, want 6", res.NumRows())
	}
	if !res.Get(5, "category").IsNull() {
		t.Errorf("unmatched category = %v, want NULL", res.Get(5, "category"))
	}
}

func TestJoinAggregate(t *testing.T) {
	c := testCatalog(t)
	res := mustQuery(t, c, `SELECT p.category, SUM(s.amount) AS rev FROM sales s JOIN products p ON s.product = p.name GROUP BY p.category ORDER BY rev DESC`)
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	if res.Get(0, "category").S != "electronics" || res.Get(0, "rev").F != 550 {
		t.Errorf("top category = %v rev %v", res.Get(0, "category"), res.Get(0, "rev"))
	}
}

func TestArithmeticAndAlias(t *testing.T) {
	c := testCatalog(t)
	res := mustQuery(t, c, "SELECT id, amount * qty AS total FROM sales WHERE id = 1")
	if res.Get(0, "total").F != 200 {
		t.Errorf("total = %v", res.Get(0, "total"))
	}
}

func TestDivisionByZeroIsNull(t *testing.T) {
	c := testCatalog(t)
	res := mustQuery(t, c, "SELECT amount / 0 FROM sales WHERE id = 1")
	if !res.Row(0)[0].IsNull() {
		t.Errorf("x/0 = %v, want NULL", res.Row(0)[0])
	}
}

func TestDistinctSQL(t *testing.T) {
	c := testCatalog(t)
	res := mustQuery(t, c, "SELECT DISTINCT region FROM sales")
	if res.NumRows() != 3 {
		t.Errorf("distinct regions = %d", res.NumRows())
	}
}

func TestScalarFunctions(t *testing.T) {
	c := testCatalog(t)
	res := mustQuery(t, c, "SELECT UPPER(region), LENGTH(product), ABS(-5), ROUND(3.456, 2), COALESCE(amount, 0) FROM sales WHERE id = 6")
	row := res.Row(0)
	if row[0].S != "NORTH" {
		t.Errorf("UPPER = %v", row[0])
	}
	if row[1].I != 8 {
		t.Errorf("LENGTH = %v", row[1])
	}
	if row[2].I != 5 {
		t.Errorf("ABS = %v", row[2])
	}
	if row[3].F != 3.46 {
		t.Errorf("ROUND = %v", row[3])
	}
	if row[4].F != 0 {
		t.Errorf("COALESCE = %v", row[4])
	}
}

func TestYearFunction(t *testing.T) {
	c := testCatalog(t)
	res := mustQuery(t, c, "SELECT id FROM sales WHERE YEAR(ftime) = 2024")
	if res.NumRows() != 3 {
		t.Errorf("2024 rows = %d, want 3", res.NumRows())
	}
}

func TestCaseExpression(t *testing.T) {
	c := testCatalog(t)
	res := mustQuery(t, c, `SELECT id, CASE WHEN amount >= 200 THEN 'big' WHEN amount >= 100 THEN 'mid' ELSE 'small' END AS size FROM sales WHERE amount IS NOT NULL ORDER BY id`)
	want := []string{"mid", "big", "small", "big", "mid"}
	for i, w := range want {
		if got := res.Get(i, "size").S; got != w {
			t.Errorf("row %d size = %q, want %q", i, got, w)
		}
	}
}

func TestLimitOffset(t *testing.T) {
	c := testCatalog(t)
	res := mustQuery(t, c, "SELECT id FROM sales ORDER BY id LIMIT 2 OFFSET 3")
	if res.NumRows() != 2 || res.Get(0, "id").I != 4 {
		t.Errorf("offset page = %v", res)
	}
	res2 := mustQuery(t, c, "SELECT id FROM sales ORDER BY id LIMIT 3, 2")
	if !table.EqualData(res, res2) {
		t.Error("MySQL-style LIMIT offset,count differs from LIMIT/OFFSET")
	}
}

func TestParseErrors(t *testing.T) {
	c := testCatalog(t)
	bad := []string{
		"",
		"SELEC id FROM sales",
		"SELECT FROM sales",
		"SELECT id FROM",
		"SELECT id FROM sales WHERE",
		"SELECT id FROM sales GROUP",
		"SELECT id FROM sales trailing garbage (",
		"SELECT id FROM sales WHERE amount BETWEEN 1",
		"SELECT 'unterminated FROM sales",
	}
	for _, sql := range bad {
		if _, err := c.Query(sql); err == nil {
			t.Errorf("expected parse error for %q", sql)
		}
	}
}

func TestExecErrors(t *testing.T) {
	c := testCatalog(t)
	bad := []string{
		"SELECT id FROM missing_table",
		"SELECT missing_col FROM sales",
		"SELECT UNKNOWN_FUNC(id) FROM sales",
		"SELECT SUM(amount) FROM sales GROUP BY missing_col",
	}
	for _, sql := range bad {
		if _, err := c.Query(sql); err == nil {
			t.Errorf("expected execution error for %q", sql)
		}
	}
}

func TestAggregateInWhereRejected(t *testing.T) {
	c := testCatalog(t)
	if _, err := c.Query("SELECT id FROM sales WHERE SUM(amount) > 10"); err == nil {
		t.Error("aggregate in WHERE should error")
	}
}

func TestSQLRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT region, SUM(amount) AS total FROM sales WHERE qty > 1 GROUP BY region HAVING SUM(amount) > 100 ORDER BY total DESC LIMIT 5",
		"SELECT DISTINCT product FROM sales WHERE region IN ('east', 'west') AND amount BETWEEN 50 AND 200",
		"SELECT s.id FROM sales AS s LEFT JOIN products AS p ON s.product = p.name WHERE p.price IS NOT NULL",
		"SELECT CASE WHEN qty > 2 THEN 'bulk' ELSE 'single' END AS kind FROM sales",
	}
	c := testCatalog(t)
	for _, q := range queries {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		rendered := stmt.SQL()
		stmt2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("reparse %q: %v", rendered, err)
		}
		r1, err := c.Execute(stmt)
		if err != nil {
			t.Fatalf("exec %q: %v", q, err)
		}
		r2, err := c.Execute(stmt2)
		if err != nil {
			t.Fatalf("exec rendered %q: %v", rendered, err)
		}
		if !table.EqualData(r1, r2) {
			t.Errorf("round-tripped SQL gives different results: %q vs %q", q, rendered)
		}
	}
}

func TestBacktickAndDoubleQuoteIdentifiers(t *testing.T) {
	c := testCatalog(t)
	res := mustQuery(t, c, "SELECT `region` FROM sales WHERE \"region\" = 'east'")
	if res.NumRows() != 2 {
		t.Errorf("rows = %d", res.NumRows())
	}
}

func TestLineComment(t *testing.T) {
	c := testCatalog(t)
	res := mustQuery(t, c, "SELECT id -- the identifier\nFROM sales")
	if res.NumRows() != 6 {
		t.Errorf("rows = %d", res.NumRows())
	}
}

func TestStringEscape(t *testing.T) {
	c := testCatalog(t)
	res := mustQuery(t, c, "SELECT 'it''s' FROM sales LIMIT 1")
	if res.Row(0)[0].S != "it's" {
		t.Errorf("escaped string = %q", res.Row(0)[0].S)
	}
}

func TestDuplicateOutputNamesDisambiguated(t *testing.T) {
	c := testCatalog(t)
	res := mustQuery(t, c, "SELECT region, region FROM sales LIMIT 1")
	names := res.ColumnNames()
	if names[0] == names[1] {
		t.Errorf("duplicate output names not disambiguated: %v", names)
	}
}

// Property: LIKE with pattern == literal string (no wildcards) matches
// exactly strings equal modulo case.
func TestLikeProperty(t *testing.T) {
	f := func(s string) bool {
		clean := strings.NewReplacer("%", "", "_", "", "'", "").Replace(s)
		return likeMatch(clean, clean)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every parsed statement renders to SQL that reparses.
func TestParseRenderParseProperty(t *testing.T) {
	base := []string{
		"SELECT a FROM t",
		"SELECT a, b AS x FROM t WHERE a > 1 AND b < 2 OR NOT c = 3",
		"SELECT COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1",
		"SELECT a FROM t ORDER BY a DESC, b LIMIT 10 OFFSET 2",
		"SELECT t1.a FROM t t1 JOIN u t2 ON t1.k = t2.k",
		"SELECT a FROM t WHERE x IS NULL OR y NOT BETWEEN 1 AND 2",
	}
	for _, q := range base {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if _, err := Parse(stmt.SQL()); err != nil {
			t.Errorf("rendered SQL does not reparse: %q -> %q: %v", q, stmt.SQL(), err)
		}
	}
}
