package sqlengine

import (
	"context"
	"strings"
	"sync/atomic"

	"datalab/internal/table"
)

// The join pipeline. Equality conjuncts between a left and a right column
// drive a hash join: the non-preserved side is hashed once, the preserved
// (probe) side is partitioned into contiguous chunks across the shared
// worker pool, and each chunk emits its matches into a chunk-local
// table.JoinPairs that are concatenated in chunk order — so the parallel
// probe produces exactly the serial probe's output order. Residual ON
// conjuncts
// are evaluated in batch over the candidate pair vectors with evalVec
// rather than boxed per-pair tree walks. Without any equi conjunct the
// join degrades to a (still chunk-parallel) nested loop.
//
// Output assembly is selection-aware: the probe side of a 1:1 join emits
// strictly ascending row indices, which convert to a table.Selection so
// runs of consecutive surviving rows copy span-at-a-time (GatherSel);
// multi-match fan-out falls back to a dense index gather, and outer-join
// padding is an explicit per-side null mask handed to GatherPairs — no -1
// sentinels anywhere.

// SerialJoinProbe is a benchmark/test hook: when set, the join probe runs
// as a single chunk on the calling goroutine instead of partitioning the
// probe side across the worker pool. The BenchmarkJoin*Serial family uses
// it to pin the serial baseline the parallel pipeline is measured against.
var SerialJoinProbe atomic.Bool

// pairEnv evaluates an ON predicate for one (left row, right row)
// candidate without materializing the combined row — the boxed fallback
// used by the nested-loop join. rrow/lrow may be -1 to read the padded
// (all-NULL) side.
type pairEnv struct {
	schema      *relSchema // combined
	left, right *vrel
	lrow, rrow  int
}

func (e *pairEnv) resolveColumn(ref *ColumnRef) (table.Value, error) {
	i := e.schema.findColumn(ref)
	if i < 0 {
		return table.Null(), errUnknownColumn(ref)
	}
	if i < len(e.left.cols) {
		if e.lrow < 0 {
			return table.Null(), nil
		}
		return e.left.cols[i].Value(e.lrow), nil
	}
	if e.rrow < 0 {
		return table.Null(), nil
	}
	return e.right.cols[i-len(e.left.cols)].Value(e.rrow), nil
}

func (e *pairEnv) resolveAggregate(fn *FuncCall) (table.Value, error) {
	return table.Null(), errAggInRowContext(fn)
}

func (e *pairEnv) resolveParam(p *Param) (table.Value, error) {
	return bindAt(e.left.binds, p)
}

func (e *pairEnv) resolveWindow(fn *FuncCall) (table.Value, error) {
	return table.Null(), errWindowContext(fn)
}

// splitConjuncts flattens a tree of ANDs into its conjuncts in evaluation
// order.
func splitConjuncts(e Expr) []Expr {
	if b, ok := e.(*Binary); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []Expr{e}
}

// splitJoinOn partitions the ON conjuncts into hash-joinable equality
// pairs (left column index, right column index) and residual expressions
// evaluated per candidate pair. out is the combined schema, nl the number
// of left columns.
func splitJoinOn(out *relSchema, nl int, on Expr) (equiL, equiR []int, residual []Expr) {
	for _, cj := range splitConjuncts(on) {
		if b, ok := cj.(*Binary); ok && b.Op == "=" {
			lr, lok := b.L.(*ColumnRef)
			rr, rok := b.R.(*ColumnRef)
			if lok && rok {
				ci := out.findColumn(lr)
				cj2 := out.findColumn(rr)
				switch {
				case ci >= 0 && cj2 >= nl:
					if ci < nl {
						equiL = append(equiL, ci)
						equiR = append(equiR, cj2-nl)
						continue
					}
				case cj2 >= 0 && cj2 < nl && ci >= nl:
					equiL = append(equiL, cj2)
					equiR = append(equiR, ci-nl)
					continue
				}
			}
		}
		residual = append(residual, cj)
	}
	return equiL, equiR, residual
}

// joinKeepSet records which output columns the rest of the statement can
// observe, so join materialization skips the others entirely. nil keeps
// everything; resolution is deliberately conservative — a bare `*` keeps
// all columns, `t.*` keeps all of qualifier t, and column references keep
// every column sharing the name (qualifier ignored), so the set can only
// over-approximate what findColumn resolves.
type joinKeepSet struct {
	all   bool
	quals map[string]bool // lowercased qualifiers kept whole (t.*)
	names map[string]bool // lowercased column names kept everywhere
}

func (k *joinKeepSet) keeps(qual, name string) bool {
	if k == nil || k.all {
		return true
	}
	return k.quals[qual] || k.names[name]
}

// referencedOutputColumns derives the keep set from every expression of
// the statement that evaluates against the joined relation: select items,
// every join's ON clause (later joins hash and filter on earlier outputs),
// WHERE, GROUP BY, HAVING, and ORDER BY. ORDER BY aliases and positions
// resolve to select items, which are walked already.
func referencedOutputColumns(stmt *SelectStmt) *joinKeepSet {
	k := &joinKeepSet{quals: map[string]bool{}, names: map[string]bool{}}
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case Star:
			k.all = true
		case *ColumnRef:
			if x.Name == "*" {
				k.quals[strings.ToLower(x.Table)] = true
				return
			}
			k.names[strings.ToLower(x.Name)] = true
		case *Binary:
			walk(x.L)
			walk(x.R)
		case *Unary:
			walk(x.X)
		case *FuncCall:
			for _, a := range x.Args {
				walk(a)
			}
			if x.Over != nil {
				// Window partition and sort keys read the joined relation
				// even when they appear nowhere else in the statement.
				for _, p := range x.Over.PartitionBy {
					walk(p)
				}
				for _, o := range x.Over.OrderBy {
					walk(o.Expr)
				}
			}
		case *In:
			walk(x.X)
			for _, v := range x.Values {
				walk(v)
			}
		case *Between:
			walk(x.X)
			walk(x.Lo)
			walk(x.Hi)
		case *IsNull:
			walk(x.X)
		case *CaseExpr:
			for _, w := range x.Whens {
				walk(w.Cond)
				walk(w.Result)
			}
			if x.Else != nil {
				walk(x.Else)
			}
		}
	}
	for _, it := range stmt.Items {
		walk(it.Expr)
	}
	for _, j := range stmt.Joins {
		walk(j.On)
	}
	if stmt.Where != nil {
		walk(stmt.Where)
	}
	for _, g := range stmt.GroupBy {
		walk(g)
	}
	if stmt.Having != nil {
		walk(stmt.Having)
	}
	for _, o := range stmt.OrderBy {
		walk(o.Expr)
	}
	if k.all {
		return nil
	}
	return k
}

// prunedColumn reports whether col is a pruning placeholder: a zero-value
// Column inside a relation that has rows. Base-table columns always span
// their table, so only columns skipped by an earlier join qualify.
func prunedColumn(col *table.Column, nrows int) bool {
	return nrows > 0 && col.Len() == 0 && col.Kind == table.KindNull && col.IsTyped()
}

// joinVRel joins left and right per the clause's kind. See the package
// comment at the top of this file for the pipeline shape; the probe side
// is the preserved side (left for INNER/LEFT/FULL, right for RIGHT), so
// output order always follows it, matching the scalar reference executor
// row for row. Output columns the statement never observes (keep) are not
// materialized — they stay zero placeholders that keep schema indexes
// aligned — and the per-column gathers of a large join run on the worker
// pool.
func joinVRel(ctx context.Context, left, right *vrel, j JoinClause, keep *joinKeepSet) (*vrel, error) {
	out := &vrel{relSchema: concatSchemas(&left.relSchema, &right.relSchema), binds: left.binds}
	nl := len(left.cols)

	equiL, equiR, residual := splitJoinOn(&out.relSchema, nl, j.On)

	var pairs *table.JoinPairs
	var err error
	if len(equiL) > 0 {
		pairs, err = probeJoinPairs(ctx, left, right, out, equiL, equiR, residual, j.Kind)
	} else {
		pairs, err = loopJoinPairs(ctx, left, right, out, j.On, j.Kind)
	}
	if err != nil {
		return nil, err
	}
	if j.Kind == table.JoinFull {
		pairs.SweepUnmatchedRight(right.nrows)
	}

	out.nrows = pairs.Len()
	lsel := sideSelection(pairs.Lidx, pairs.Lnull)
	rsel := sideSelection(pairs.Ridx, pairs.Rnull)
	ncols := nl + len(right.cols)
	out.cols = make([]table.Column, ncols)
	gatherOne := func(oi int) {
		var src *table.Column
		var srcRel *vrel
		var idx []int
		var nulls []bool
		var sel *table.Selection
		if oi < nl {
			src, srcRel = &left.cols[oi], left
			idx, nulls, sel = pairs.Lidx, pairs.Lnull, lsel
		} else {
			src, srcRel = &right.cols[oi-nl], right
			idx, nulls, sel = pairs.Ridx, pairs.Rnull, rsel
		}
		if !keep.keeps(out.quals[oi], out.names[oi]) || prunedColumn(src, srcRel.nrows) {
			return // placeholder: never observed downstream
		}
		switch {
		case sel != nil:
			out.cols[oi] = src.GatherSel(sel)
		case nulls != nil:
			out.cols[oi] = src.GatherPairs(idx, nulls)
		default:
			out.cols[oi] = src.Gather(idx)
		}
	}
	if out.nrows >= parallelMinRows && ncols > 1 && !SerialJoinProbe.Load() {
		err = parallelChunks(ctx, ncols, 1, func(lo, hi int) error {
			for oi := lo; oi < hi; oi++ {
				gatherOne(oi)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	} else {
		for oi := 0; oi < ncols; oi++ {
			gatherOne(oi)
		}
	}
	return out, ctx.Err()
}

// sideSelection converts one side's pair list to a table.Selection when
// it is strictly ascending and free of padding — runs of consecutive 1:1
// matches then copy span-at-a-time. nil means gather densely instead. A
// mask that was allocated but never set counts as padding-free.
func sideSelection(idx []int, nulls []bool) *table.Selection {
	if nulls != nil && anyTrue(nulls) {
		return nil
	}
	sel, ok := table.SelectionFromAscending(idx)
	if !ok {
		return nil
	}
	return sel
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}

// joinProbeChunks partitions [0, n) probe rows across the worker pool
// (one chunk when SerialJoinProbe is set or n is small) and merges the
// chunk-local pair lists in chunk order.
func joinProbeChunks(ctx context.Context, n int, kind table.JoinKind, fn func(part *table.JoinPairs, lo, hi int) error) (*table.JoinPairs, error) {
	minChunk := parallelMinRows
	if SerialJoinProbe.Load() || n < 2*parallelMinRows {
		minChunk = n
	}
	if n == 0 {
		return table.NewJoinPairs(kind), ctx.Err()
	}
	_, nchunks := chunkLayout(n, minChunk)
	parts := make([]*table.JoinPairs, nchunks)
	err := parallelChunksIndexed(ctx, n, minChunk, func(ci, lo, hi int) error {
		part := table.NewJoinPairs(kind)
		if err := fn(part, lo, hi); err != nil {
			return err
		}
		parts[ci] = part
		return nil
	})
	if err != nil {
		return nil, err
	}
	if nchunks == 1 {
		return parts[0], nil // no merge copy on the serial path
	}
	merged := table.NewJoinPairs(kind)
	for _, part := range parts {
		merged.Concat(part)
	}
	return merged, nil
}

// probeJoinPairs computes the pair list for an equi-join. The preserved
// side probes: INNER/LEFT/FULL hash the right side and probe left rows in
// order; RIGHT hashes the left side and probes right rows, flipping each
// emitted pair back to (left, right) orientation. Residual conjuncts are
// batch-evaluated per chunk over the candidate pair vectors.
func probeJoinPairs(ctx context.Context, left, right, out *vrel, equiL, equiR []int, residual []Expr, kind table.JoinKind) (*table.JoinPairs, error) {
	flipped := kind == table.JoinRight
	probe, build := left, right
	probeKeys, buildKeys := equiL, equiR
	if flipped {
		probe, build = right, left
		probeKeys, buildKeys = equiR, equiL
	}
	pk := make([]*table.Column, len(probeKeys))
	bk := make([]*table.Column, len(buildKeys))
	for i := range probeKeys {
		pk[i] = &probe.cols[probeKeys[i]]
		bk[i] = &build.cols[buildKeys[i]]
	}
	lookup := table.NewHashProbe(pk, bk)
	outerProbe := kind != table.JoinInner

	emitMatch := func(part *table.JoinPairs, p, b int) {
		if flipped {
			part.Match(b, p)
		} else {
			part.Match(p, b)
		}
	}
	emitPad := func(part *table.JoinPairs, p int) {
		if flipped {
			part.PadLeft(p)
		} else {
			part.PadRight(p)
		}
	}

	return joinProbeChunks(ctx, probe.nrows, kind, func(part *table.JoinPairs, lo, hi int) error {
		if len(residual) == 0 {
			for p := lo; p < hi; p++ {
				if (p-lo)&4095 == 0 {
					if err := ctx.Err(); err != nil {
						return err
					}
				}
				matches := lookup(p)
				if len(matches) == 0 {
					if outerProbe {
						emitPad(part, p)
					}
					continue
				}
				for _, b := range matches {
					emitMatch(part, p, b)
				}
			}
			return nil
		}

		// Residual conjuncts: collect every candidate pair of the chunk,
		// batch-evaluate the conjuncts over the candidate vectors, then
		// emit the passing pairs (and outer padding for probe rows whose
		// candidates all failed).
		var candProbe, candBuild []int
		rowStart := make([]int, hi-lo+1)
		for p := lo; p < hi; p++ {
			if (p-lo)&4095 == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			rowStart[p-lo] = len(candProbe)
			for _, b := range lookup(p) {
				candProbe = append(candProbe, p)
				candBuild = append(candBuild, b)
			}
		}
		rowStart[hi-lo] = len(candProbe)

		lcand, rcand := candProbe, candBuild
		if flipped {
			lcand, rcand = candBuild, candProbe
		}
		pass, err := residualMask(residual, left, right, &out.relSchema, lcand, rcand)
		if err != nil {
			return err
		}
		for k := 0; k < hi-lo; k++ {
			matched := false
			for i := rowStart[k]; i < rowStart[k+1]; i++ {
				if pass[i] {
					matched = true
					emitMatch(part, lo+k, candBuild[i])
				}
			}
			if !matched && outerProbe {
				emitPad(part, lo+k)
			}
		}
		return nil
	})
}

// residualMask batch-evaluates the residual conjuncts over the candidate
// pairs (lidx[i], ridx[i]) and returns, per candidate, whether every
// conjunct is known true — the same truthiness rule the scalar executor
// applies per pair. The candidate set is compressed between conjuncts, so
// a later conjunct only ever evaluates on pairs every earlier conjunct
// passed — preserving the per-pair AND short-circuit exactly: a
// data-dependent error in conjunct k cannot fire for a pair conjunct k-1
// already rejected. Only the columns each conjunct references are
// gathered into its candidate relation.
func residualMask(residual []Expr, left, right *vrel, schema *relSchema, lidx, ridx []int) ([]bool, error) {
	n := len(lidx)
	pass := make([]bool, n)
	for i := range pass {
		pass[i] = true
	}
	nl := len(left.cols)
	curL, curR := lidx, ridx // pairs every conjunct so far passed
	var curPos []int         // cur index -> original index; nil = identity
	for _, cj := range residual {
		m := len(curL)
		if m == 0 {
			break
		}
		rel := &vrel{relSchema: *schema, nrows: m, binds: left.binds}
		rel.cols = make([]table.Column, len(schema.names))
		for _, ci := range referencedColumns([]Expr{cj}, schema) {
			if ci < nl {
				rel.cols[ci] = left.cols[ci].Gather(curL)
			} else {
				rel.cols[ci] = right.cols[ci-nl].Gather(curR)
			}
		}
		col, err := evalVec(cj, rel, nil)
		if err != nil {
			return nil, err
		}
		b, known := truthVec(&col, m)
		var nextL, nextR, nextPos []int
		for i := 0; i < m; i++ {
			orig := i
			if curPos != nil {
				orig = curPos[i]
			}
			if known[i] && b[i] {
				nextL = append(nextL, curL[i])
				nextR = append(nextR, curR[i])
				nextPos = append(nextPos, orig)
				continue
			}
			pass[orig] = false
		}
		curL, curR, curPos = nextL, nextR, nextPos
	}
	return pass, nil
}

// referencedColumns resolves every column reference in the expressions to
// its index in the schema, deduplicated; unresolvable references are
// skipped (evaluation reports them as unknown-column errors, identically
// to the scalar path).
func referencedColumns(exprs []Expr, schema *relSchema) []int {
	seen := make(map[int]bool)
	var out []int
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *ColumnRef:
			if ci := schema.findColumn(x); ci >= 0 && !seen[ci] {
				seen[ci] = true
				out = append(out, ci)
			}
		case *Binary:
			walk(x.L)
			walk(x.R)
		case *Unary:
			walk(x.X)
		case *FuncCall:
			for _, a := range x.Args {
				walk(a)
			}
		case *In:
			walk(x.X)
			for _, v := range x.Values {
				walk(v)
			}
		case *Between:
			walk(x.X)
			walk(x.Lo)
			walk(x.Hi)
		case *IsNull:
			walk(x.X)
		case *CaseExpr:
			for _, w := range x.Whens {
				walk(w.Cond)
				walk(w.Result)
			}
			if x.Else != nil {
				walk(x.Else)
			}
		}
	}
	for _, e := range exprs {
		walk(e)
	}
	return out
}

// loopJoinPairs is the no-equi-conjunct fallback: a nested loop over
// (probe row, other-side row) pairs, boxed ON evaluation per pair, still
// chunk-parallel over the probe side. The probe side is the preserved
// side, as in hashJoinPairs.
func loopJoinPairs(ctx context.Context, left, right, out *vrel, on Expr, kind table.JoinKind) (*table.JoinPairs, error) {
	conjuncts := splitConjuncts(on)
	flipped := kind == table.JoinRight
	probeRows, innerRows := left.nrows, right.nrows
	if flipped {
		probeRows, innerRows = right.nrows, left.nrows
	}
	outerProbe := kind != table.JoinInner

	return joinProbeChunks(ctx, probeRows, kind, func(part *table.JoinPairs, lo, hi int) error {
		env := &pairEnv{schema: &out.relSchema, left: left, right: right}
		pairOK := func(l, r int) (bool, error) {
			env.lrow, env.rrow = l, r
			for _, cj := range conjuncts {
				v, err := evalExpr(cj, env)
				if err != nil {
					return false, err
				}
				if b, ok := v.AsBool(); !ok || !b {
					return false, nil
				}
			}
			return true, nil
		}
		for p := lo; p < hi; p++ {
			if (p-lo)&255 == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			matched := false
			for q := 0; q < innerRows; q++ {
				l, r := p, q
				if flipped {
					l, r = q, p
				}
				ok, err := pairOK(l, r)
				if err != nil {
					return err
				}
				if ok {
					matched = true
					part.Match(l, r)
				}
			}
			if !matched && outerProbe {
				if flipped {
					part.PadLeft(p)
				} else {
					part.PadRight(p)
				}
			}
		}
		return nil
	})
}
