package sqlengine

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokKeyword
	tokOp    // operators and punctuation
	tokParam // ? or :name bind placeholder
)

type token struct {
	kind tokenKind
	text string // keywords are uppercased; idents keep original case
	pos  int    // byte offset of the token's first character
	end  int    // byte offset one past the token's last character
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "AS": true, "AND": true,
	"OR": true, "NOT": true, "IN": true, "BETWEEN": true, "LIKE": true,
	"IS": true, "NULL": true, "JOIN": true, "INNER": true, "LEFT": true,
	"RIGHT": true, "FULL": true,
	"OUTER": true, "ON": true, "ASC": true, "DESC": true, "DISTINCT": true,
	"TRUE": true, "FALSE": true, "CASE": true, "WHEN": true, "THEN": true,
	"ELSE": true, "END": true, "OFFSET": true,
	"OVER": true, "PARTITION": true, "ROWS": true, "UNBOUNDED": true,
	"PRECEDING": true, "CURRENT": true, "ROW": true,
}

// lex splits a SQL string into tokens.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < n && (isIdentChar(input[i])) {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, token{tokKeyword, upper, start, i})
			} else {
				toks = append(toks, token{tokIdent, word, start, i})
			}
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9'):
			start := i
			seenDot := false
			for i < n && (input[i] >= '0' && input[i] <= '9' || (input[i] == '.' && !seenDot)) {
				if input[i] == '.' {
					seenDot = true
				}
				i++
			}
			// Digit-leading identifiers (warehouse tables like
			// 23_customer_bg) continue into letters/underscores.
			if !seenDot && i < n && (input[i] == '_' || unicode.IsLetter(rune(input[i]))) {
				for i < n && isIdentChar(input[i]) {
					i++
				}
				toks = append(toks, token{tokIdent, input[start:i], start, i})
				continue
			}
			toks = append(toks, token{tokNumber, input[start:i], start, i})
		case c == '\'' || c == '"':
			quote := c
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == quote {
					if i+1 < n && input[i+1] == quote { // doubled quote escape
						sb.WriteByte(quote)
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string at offset %d", start)
			}
			if quote == '"' {
				// Double quotes delimit identifiers in standard SQL.
				toks = append(toks, token{tokIdent, sb.String(), start, i})
			} else {
				toks = append(toks, token{tokString, sb.String(), start, i})
			}
		case c == '`': // backtick-quoted identifier
			start := i
			i++
			j := strings.IndexByte(input[i:], '`')
			if j < 0 {
				return nil, fmt.Errorf("sql: unterminated identifier at offset %d", start)
			}
			toks = append(toks, token{tokIdent, input[i : i+j], start, i + j + 1})
			i += j + 1
		default:
			start := i
			// Multi-char operators first.
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=", "||":
				toks = append(toks, token{tokOp, two, start, start + 2})
				i += 2
				continue
			}
			switch c {
			case '=', '<', '>', '+', '-', '*', '/', '%', '(', ')', ',', '.', ';':
				toks = append(toks, token{tokOp, string(c), start, start + 1})
				i++
			case '?':
				toks = append(toks, token{tokParam, "?", start, start + 1})
				i++
			case ':': // :name named bind placeholder
				i++
				nameStart := i
				for i < n && isIdentChar(input[i]) {
					i++
				}
				if i == nameStart {
					return nil, fmt.Errorf("sql: expected parameter name after ':' at offset %d", start)
				}
				toks = append(toks, token{tokParam, input[start:i], start, i})
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, token{tokEOF, "", n, n})
	return toks, nil
}

func isIdentChar(c byte) bool {
	return c == '_' || c >= '0' && c <= '9' ||
		c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}
