package sqlengine

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"datalab/internal/table"
)

// randKeyColumns draws 1-3 typed key columns (with NULLs and heavy
// duplication, so stability is actually exercised) plus matching order
// specs. When mixed is true, one column is degraded to boxed storage to
// route through the boxed fallback.
func randKeyColumns(rng *rand.Rand, n int, mixed bool) ([]table.Column, []OrderItem) {
	nk := 1 + rng.Intn(3)
	cols := make([]table.Column, nk)
	order := make([]OrderItem, nk)
	for i := 0; i < nk; i++ {
		kind := []table.Kind{table.KindInt, table.KindFloat, table.KindString, table.KindBool}[rng.Intn(4)]
		c := table.NewColumn(fmt.Sprintf("k%d", i), kind)
		for r := 0; r < n; r++ {
			if rng.Intn(7) == 0 {
				c.AppendNull()
				continue
			}
			switch kind {
			case table.KindInt:
				c.Append(table.Int(int64(rng.Intn(5))))
			case table.KindFloat:
				c.Append(table.Float(float64(rng.Intn(8)) / 2))
			case table.KindString:
				c.Append(table.Str([]string{"a", "b", "ab", "", "z"}[rng.Intn(5)]))
			case table.KindBool:
				c.Append(table.Bool(rng.Intn(2) == 0))
			}
		}
		if mixed && i == 0 && n > 0 {
			// Overwrite one cell with a kind-mismatched value so the column
			// degrades to boxed storage and the fallback path runs.
			if kind == table.KindString {
				c.Set(rng.Intn(n), table.Int(99))
			} else {
				c.Set(rng.Intn(n), table.Str("boxed"))
			}
		}
		cols[i] = c
		order[i] = OrderItem{Desc: rng.Intn(2) == 0}
	}
	return cols, order
}

// permIsStableSorted checks that perm orders rows by the boxed reference
// comparator with ascending-position ties, i.e. exactly the stable order.
func permIsStableSorted(t *testing.T, cols []table.Column, order []OrderItem, perm []int) {
	t.Helper()
	for i := 1; i < len(perm); i++ {
		if !boxedRowLess(cols, order, perm[i-1], perm[i]) {
			t.Fatalf("perm not in stable order at %d: rows %d, %d", i, perm[i-1], perm[i])
		}
	}
}

// TestSortPermMatchesBoxedReference cross-checks the typed kernel against
// the boxed reference comparator on randomized keys, and topKPerm against
// the prefix of the full sort for random bounds (including 0, 1, n-1).
func TestSortPermMatchesBoxedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(200)
		mixed := trial%5 == 4
		cols, order := randKeyColumns(rng, n, mixed)
		perm := sortPerm(context.Background(), cols, order, n)
		if len(perm) != n {
			t.Fatalf("perm length %d, want %d", len(perm), n)
		}
		permIsStableSorted(t, cols, order, perm)
		for _, k := range []int{0, 1, n / 2, n - 1, n, n + 3} {
			if k < 0 {
				continue
			}
			got := topKPerm(context.Background(), cols, order, n, k)
			want := perm
			if k < n {
				want = perm[:k]
			}
			if len(got) != len(want) {
				t.Fatalf("topK(%d) of %d: length %d, want %d", k, n, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("topK(%d) of %d diverges at %d: %d vs %d (mixed=%v)",
						k, n, i, got[i], want[i], mixed)
				}
			}
		}
	}
}

// TestParallelSortPermStable crosses the 2*parallelMinRows threshold so
// the chunked sort + k-way merge path runs, and checks it reproduces the
// stable serial order on duplicate-heavy keys. CI runs this under -race,
// which doubles as the data-race check on the chunk-local key buffers.
func TestParallelSortPermStable(t *testing.T) {
	if testing.Short() {
		t.Skip("large sort")
	}
	rng := rand.New(rand.NewSource(10))
	n := 2*parallelMinRows + 5000
	cols, order := randKeyColumns(rng, n, false)
	specs, ok := sortKeySpecs(cols, order)
	if !ok {
		t.Fatal("expected encodable key columns")
	}
	got := parallelSortPerm(context.Background(), specs, n)
	if len(got) != n {
		t.Fatalf("perm length %d, want %d", len(got), n)
	}
	permIsStableSorted(t, cols, order, got)

	// Concurrent large sorts contend for the shared worker pool; under
	// -race this stresses pool handoff and the per-chunk buffers.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			perm := parallelSortPerm(context.Background(), specs, n)
			if len(perm) != n {
				t.Errorf("concurrent perm length %d, want %d", len(perm), n)
			}
		}()
	}
	wg.Wait()
}

// TestOrderByNaNKeysMatchScalar pins the NaN escape hatch: table.Compare
// treats NaN as equal to every value (not a total order), so float keys
// containing NaN must bypass the memcmp encoding (which would give NaN a
// definite position) and run the scalar reference's exact stable-sort
// algorithm. NaN is user-reachable — strconv.ParseFloat accepts "NaN",
// so a CSV cell "NaN" ingests as a float.
func TestOrderByNaNKeysMatchScalar(t *testing.T) {
	tbl := table.MustNew("t", []string{"v", "tag"}, []table.Kind{table.KindFloat, table.KindInt})
	tbl.MustAppendRow(table.Float(math.NaN()), table.Int(0))
	tbl.MustAppendRow(table.Float(1), table.Int(1))
	tbl.MustAppendRow(table.Float(2), table.Int(2))
	tbl.MustAppendRow(table.Float(math.NaN()), table.Int(3))
	tbl.MustAppendRow(table.Float(0.5), table.Int(4))
	c := NewCatalog()
	c.Register(tbl)
	for _, q := range []string{
		"SELECT tag, v FROM t ORDER BY v",
		"SELECT tag, v FROM t ORDER BY v DESC",
		"SELECT tag, v FROM t ORDER BY v DESC LIMIT 2",
		"SELECT tag, v FROM t ORDER BY v LIMIT 2 OFFSET 1",
	} {
		vec, err := c.Query(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		sca, err := c.QueryScalar(q)
		if err != nil {
			t.Fatalf("%q scalar: %v", q, err)
		}
		if dv, ds := dumpTable(vec), dumpTable(sca); dv != ds {
			t.Errorf("%q: vectorized vs scalar mismatch with NaN keys\n-- vectorized --\n%s-- scalar --\n%s", q, dv, ds)
		}
	}
}

// TestOrderByNullPlacement pins NULL ordering end-to-end: NULLs first
// ascending, last descending, on both executors, with and without LIMIT
// (the top-K heap must agree with the full sort on NULL placement).
func TestOrderByNullPlacement(t *testing.T) {
	tbl := table.MustNew("t", []string{"v"}, []table.Kind{table.KindInt})
	tbl.MustAppendRow(table.Int(2))
	tbl.MustAppendRow(table.Null())
	tbl.MustAppendRow(table.Int(1))
	tbl.MustAppendRow(table.Null())
	tbl.MustAppendRow(table.Int(3))
	c := NewCatalog()
	c.Register(tbl)

	cases := []struct {
		q    string
		want []string // Key() forms, in order
	}{
		{"SELECT v FROM t ORDER BY v", []string{"\x00null", "\x00null", "i:1", "i:2", "i:3"}},
		{"SELECT v FROM t ORDER BY v DESC", []string{"i:3", "i:2", "i:1", "\x00null", "\x00null"}},
		{"SELECT v FROM t ORDER BY v LIMIT 3", []string{"\x00null", "\x00null", "i:1"}},
		{"SELECT v FROM t ORDER BY v DESC LIMIT 2", []string{"i:3", "i:2"}},
		{"SELECT v FROM t ORDER BY v DESC LIMIT 2 OFFSET 2", []string{"i:1", "\x00null"}},
	}
	for _, tc := range cases {
		for _, scalar := range []bool{false, true} {
			run := c.Query
			if scalar {
				run = c.QueryScalar
			}
			out, err := run(tc.q)
			if err != nil {
				t.Fatalf("%q (scalar=%v): %v", tc.q, scalar, err)
			}
			if out.NumRows() != len(tc.want) {
				t.Fatalf("%q (scalar=%v): %d rows, want %d", tc.q, scalar, out.NumRows(), len(tc.want))
			}
			for i, want := range tc.want {
				if got := out.Columns[0].Value(i).Key(); got != want {
					t.Errorf("%q (scalar=%v) row %d: %q, want %q", tc.q, scalar, i, got, want)
				}
			}
		}
	}
}

// TestOrderByLimitOffsetBeyondRows pins LIMIT k OFFSET m with m >= n (zero
// rows, no panic) and windows straddling the end of the table — the top-K
// heap must retain k+m rows, not k, for the window to survive the offset.
func TestOrderByLimitOffsetBeyondRows(t *testing.T) {
	tbl := table.MustNew("t", []string{"v"}, []table.Kind{table.KindInt})
	const n = 100
	for i := 0; i < n; i++ {
		tbl.MustAppendRow(table.Int(int64((i * 37) % n)))
	}
	c := NewCatalog()
	c.Register(tbl)

	cases := []struct {
		q    string
		want []int64
	}{
		// OFFSET far beyond the table: empty, not a panic or short heap.
		{"SELECT v FROM t ORDER BY v LIMIT 5 OFFSET 100", nil},
		{"SELECT v FROM t ORDER BY v LIMIT 5 OFFSET 1000", nil},
		// Window straddles the end: only n-m rows remain.
		{"SELECT v FROM t ORDER BY v LIMIT 5 OFFSET 97", []int64{97, 98, 99}},
		// The k+m regression shape: LIMIT 5 OFFSET 90 needs rows 90..94 of
		// the sorted order — a heap retaining only k=5 rows would return
		// rows 0..4 instead.
		{"SELECT v FROM t ORDER BY v LIMIT 5 OFFSET 90", []int64{90, 91, 92, 93, 94}},
		{"SELECT v FROM t ORDER BY v DESC LIMIT 3 OFFSET 95", []int64{4, 3, 2}},
	}
	for _, tc := range cases {
		vec, err := c.Query(tc.q)
		if err != nil {
			t.Fatalf("%q: %v", tc.q, err)
		}
		sca, err := c.QueryScalar(tc.q)
		if err != nil {
			t.Fatalf("%q scalar: %v", tc.q, err)
		}
		if dv, ds := dumpTable(vec), dumpTable(sca); dv != ds {
			t.Errorf("%q: vectorized vs scalar mismatch\n%s\nvs\n%s", tc.q, dv, ds)
		}
		if vec.NumRows() != len(tc.want) {
			t.Fatalf("%q: %d rows, want %d", tc.q, vec.NumRows(), len(tc.want))
		}
		for i, want := range tc.want {
			got, _ := vec.Columns[0].Value(i).AsInt()
			if got != want {
				t.Errorf("%q row %d: %d, want %d", tc.q, i, got, want)
			}
		}
	}
}
