package sqlengine

import (
	"context"
	"math/rand"
	"testing"

	"datalab/internal/table"
)

// Differential fuzzing: every input derives a random catalog and a batch
// of random queries (via the same generators the property tests use), and
// each query must produce identical results — row for row, cell for cell —
// across three executors:
//
//  1. the vectorized executor with range/dense selections chosen
//     adaptively (the production path),
//  2. the vectorized executor with forceDenseSelection set, so every
//     filter runs through classic dense index vectors,
//  3. the scalar row-at-a-time reference (Catalog.QueryScalar),
//  4. the typed Result API (Catalog.QueryCtx), consumed batch by batch —
//     covering the lazy zero-copy projection path and the batch cursor,
//  5. the bind-vs-inline check: the query's literals are extracted by
//     Fingerprint, the template is prepared once, and the extracted
//     values are re-supplied through Prepared.Exec as bound parameters —
//     so parameter binding must reproduce the inlined-literal results
//     row for row through both evaluators,
//  6. the snapshot-immutability check: before the query runs, the catalog
//     is frozen (Catalog.Freeze pins every table's current snapshot); the
//     frozen result must match the live one, and after a burst of
//     streaming appends lands on the live catalog the frozen catalog must
//     reproduce its result byte for byte.
//
// (1) vs (2) isolates the Selection representation: any divergence is a
// bug in span construction, merging, or span-aware gathering. (1) vs (3)
// is the end-to-end engine check; (1) vs (4) pins the Result redesign to
// the materialized reference; (1) vs (5) proves fingerprint extraction
// and parameter binding are jointly semantics-preserving — the invariant
// the Query plan cache relies on; (6) proves published snapshots are
// immutable under ingest — and because the appends accumulate, every
// later query in the batch runs the whole differential battery over
// multi-chunk, appended-to storage. The seed corpus below runs as
// ordinary unit tests under plain `go test`;
// `go test -fuzz=FuzzDifferentialSQL` explores further.

// diffOneSeed runs the six-way differential check for one fuzz input.
func diffOneSeed(t *testing.T, seed int64, rows uint16, nqueries uint8) {
	t.Helper()
	nrows := int(rows)%700 + 1
	nq := int(nqueries)%48 + 1
	rng := rand.New(rand.NewSource(seed))
	c := randCatalog(rng, nrows)
	for i := 0; i < nq; i++ {
		q := randQuery(rng)

		frozen := c.Freeze()

		vec, vecErr := c.Query(q)

		forceDenseSelection.Store(true)
		dense, denseErr := c.Query(q)
		forceDenseSelection.Store(false)

		// Scalar reference, twice: through QueryScalar (plan-cached
		// template + binds) and through a raw parse with the literals
		// genuinely inlined, so fingerprinting never becomes the only
		// scalar path the harness exercises.
		sca, scaErr := c.QueryScalar(q)
		var raw *table.Table
		stmt, rawErr := Parse(q)
		if rawErr == nil {
			raw, rawErr = c.ExecuteScalar(stmt)
		}

		res, resErr := c.QueryCtx(context.Background(), q)

		if (vecErr == nil) != (denseErr == nil) || (vecErr == nil) != (scaErr == nil) ||
			(vecErr == nil) != (rawErr == nil) || (vecErr == nil) != (resErr == nil) {
			t.Fatalf("query %q: error mismatch\n  range: %v\n  dense: %v\n  scalar: %v\n  raw scalar: %v\n  result: %v",
				q, vecErr, denseErr, scaErr, rawErr, resErr)
		}
		if vecErr != nil {
			continue
		}
		dv, dd, ds := dumpTable(vec), dumpTable(dense), dumpTable(sca)
		if dv != dd {
			t.Fatalf("query %q: range vs dense selection mismatch\n-- range --\n%s\n-- dense --\n%s", q, dv, dd)
		}
		if dv != ds {
			t.Fatalf("query %q: vectorized vs scalar mismatch\n-- vectorized --\n%s\n-- scalar --\n%s", q, dv, ds)
		}
		if dr := dumpTable(raw); dv != dr {
			t.Fatalf("query %q: vectorized vs raw-inline scalar mismatch\n-- vectorized --\n%s\n-- raw --\n%s", q, dv, dr)
		}
		if dr := dumpResult(res); dv != dr {
			t.Fatalf("query %q: vectorized vs Result batches mismatch\n-- vectorized --\n%s\n-- result --\n%s", q, dv, dr)
		}
		diffBindVsInline(t, c, q, dv)
		diffFrozenSnapshot(t, rng, c, frozen, q, dv)
	}
}

// diffFrozenSnapshot is executor #6: frozen was pinned before the query
// ran on the live catalog, so its result must match dv now — and still
// match byte for byte after a burst of streaming appends is published to
// the live catalog. The appends go through the same Appender ingest path
// production uses and stay in place, so subsequent queries in the batch
// differentially test multi-chunk appended-to storage end to end.
func diffFrozenSnapshot(t *testing.T, rng *rand.Rand, c, frozen *Catalog, q, dv string) {
	t.Helper()
	before, err := frozen.Query(q)
	if err != nil {
		t.Fatalf("query %q: frozen catalog errored where live succeeded: %v", q, err)
	}
	if db := dumpTable(before); db != dv {
		t.Fatalf("query %q: frozen vs live mismatch before ingest\n-- frozen --\n%s\n-- live --\n%s", q, db, dv)
	}

	dataApp, _ := c.Appender("data")
	multiApp, _ := c.Appender("multi")
	for i, n := 0, 1+rng.Intn(4); i < n; i++ {
		if err := dataApp.Append(randDataRow(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if rng.Intn(2) == 0 {
		if err := multiApp.Append(randMultiRow(rng)); err != nil {
			t.Fatal(err)
		}
	}
	dataApp.Publish()
	multiApp.Publish()

	after, err := frozen.Query(q)
	if err != nil {
		t.Fatalf("query %q: frozen catalog errored after ingest: %v", q, err)
	}
	if da := dumpTable(after); da != dv {
		t.Fatalf("query %q: frozen snapshot changed under ingest\n-- before --\n%s\n-- after --\n%s", q, dv, da)
	}
}

// diffBindVsInline is executor #5: extract the query's literals with
// Fingerprint, prepare the resulting template, re-supply the extracted
// values as bound parameters, and require row-for-row agreement with the
// inlined-literal vectorized result (dv). Queries with no extractable
// literals are vacuously covered by executors 1-4.
func diffBindVsInline(t *testing.T, c *Catalog, q, dv string) {
	t.Helper()
	tmpl, vals, ok := Fingerprint(q)
	if !ok || len(vals) == 0 {
		return
	}
	stmt, err := c.Prepare(tmpl)
	if err != nil {
		t.Fatalf("query %q: fingerprint template %q does not parse: %v", q, tmpl, err)
	}
	if stmt.NumParams() != len(vals) {
		t.Fatalf("query %q: template %q has %d params, %d literals extracted", q, tmpl, stmt.NumParams(), len(vals))
	}
	args := make([]any, len(vals))
	for i, v := range vals {
		args[i] = v
	}
	res, err := stmt.Exec(context.Background(), args...)
	if err != nil {
		t.Fatalf("query %q: bound re-execution of %q failed: %v", q, tmpl, err)
	}
	if db := dumpResult(res); dv != db {
		t.Fatalf("query %q: inlined vs bound mismatch (template %q)\n-- inlined --\n%s\n-- bound --\n%s", q, tmpl, dv, db)
	}
	// The scalar evaluator must resolve the same binds identically.
	scaT, err := c.ExecuteScalarBound(stmt.stmt, vals)
	if err != nil {
		t.Fatalf("query %q: scalar bound re-execution of %q failed: %v", q, tmpl, err)
	}
	if ds := dumpTable(scaT); dv != ds {
		t.Fatalf("query %q: inlined vs scalar-bound mismatch (template %q)\n-- inlined --\n%s\n-- scalar bound --\n%s", q, tmpl, dv, ds)
	}
}

func FuzzDifferentialSQL(f *testing.F) {
	// Seeded corpus: varied table sizes around the parallel threshold
	// boundaries, high query counts for coverage, plus degenerate shapes
	// (empty table, single row).
	f.Add(int64(1), uint16(400), uint8(40))
	f.Add(int64(2), uint16(0), uint8(20))
	f.Add(int64(3), uint16(1), uint8(20))
	f.Add(int64(4), uint16(63), uint8(30))
	f.Add(int64(5), uint16(699), uint8(40))
	f.Add(int64(6), uint16(128), uint8(30))
	f.Add(int64(7), uint16(517), uint8(30))
	f.Add(int64(8), uint16(301), uint8(30))
	// Seeds added with the typed ORDER BY kernel: the query generator now
	// emits multi-key ORDER BY (mixed ASC/DESC over duplicate-heavy and
	// NULL-bearing keys), ORDER BY + LIMIT + OFFSET (including offsets
	// beyond the table), and boxed mixed-kind sort keys, so these inputs
	// drive the top-K heap and both comparator paths through the
	// three-way differential check.
	f.Add(int64(9), uint16(650), uint8(45))
	f.Add(int64(10), uint16(88), uint8(45))
	f.Add(int64(11), uint16(2), uint8(40))
	// Seeds added with the parallel selection-aware join pipeline: the
	// query generator now emits LEFT/RIGHT/FULL OUTER and multi-match
	// equi-joins against the duplicate-keyed `multi` table (missing and
	// NULL keys included), with residual ON conjuncts — cross-side ones
	// drive the batched candidate-pair evaluation — so these inputs cover
	// span vs dense pair gathering, null-mask padding, and the
	// unmatched-build-row sweep through the four-way differential check.
	f.Add(int64(12), uint16(500), uint8(45))
	f.Add(int64(13), uint16(120), uint8(45))
	f.Add(int64(14), uint16(3), uint8(40))
	f.Add(int64(15), uint16(680), uint8(45))
	// Seeds added with parameter binding + fingerprinting: every generated
	// query with a literal now also runs as template + bound params
	// (executor #5), so these inputs stress extraction across WHERE
	// predicates, IN-lists, BETWEEN, residual ON conjuncts, HAVING, and
	// LIMIT/OFFSET — the zones the fingerprint normalizer rewrites.
	f.Add(int64(16), uint16(450), uint8(45))
	f.Add(int64(17), uint16(77), uint8(45))
	f.Add(int64(18), uint16(640), uint8(45))
	f.Add(int64(19), uint16(5), uint8(40))
	// Seeds added with snapshot-isolated streaming ingest: executor #6
	// freezes the catalog before every query and appends between the two
	// frozen replays, so these inputs drive the whole battery over tables
	// that keep growing chunk by chunk mid-batch — small initial tables
	// make the appended chunks dominate, large ones cross the parallel
	// scan threshold with multi-chunk storage.
	f.Add(int64(20), uint16(4), uint8(47))
	f.Add(int64(21), uint16(260), uint8(45))
	f.Add(int64(22), uint16(690), uint8(45))
	f.Add(int64(23), uint16(0), uint8(47))
	// Seeds added with window functions + the richer SQL surface: the
	// query generator now emits ROW_NUMBER/RANK/DENSE_RANK and moving
	// SUM/AVG/COUNT/MIN/MAX over PARTITION BY ... ORDER BY ... specs
	// (RANGE-peer, ROWS-frame, and whole-partition shapes), simple-form
	// CASE, scalar and IN (SELECT ...) subqueries in predicates and select
	// lists, and HAVING over aliases and compound aggregate expressions —
	// so these inputs drive the shared window accumulator through both
	// engines' partition/sort machinery, subquery inlining through every
	// executor (bound and inlined), and frame arithmetic across the
	// differential battery. Sizes straddle empty, tiny, and
	// parallel-threshold tables so partitions span none, one, and many.
	f.Add(int64(24), uint16(420), uint8(47))
	f.Add(int64(25), uint16(60), uint8(47))
	f.Add(int64(26), uint16(670), uint8(45))
	f.Add(int64(27), uint16(1), uint8(40))
	f.Add(int64(28), uint16(0), uint8(40))
	f.Fuzz(diffOneSeed)
}

// TestDifferentialFuzzCorpus widens the always-on coverage beyond the
// fuzz seed corpus: a sweep of seeds through the same three-way check.
func TestDifferentialFuzzCorpus(t *testing.T) {
	for seed := int64(100); seed < 126; seed++ {
		diffOneSeed(t, seed, uint16(seed*37%650), 24)
	}
}

// TestBindVsInlineCorpus pins executor #5 to a deterministic query list:
// one shape per extraction zone (WHERE comparisons, IN-lists, BETWEEN,
// LIKE, residual ON conjuncts including cross-side, HAVING, LIMIT and
// OFFSET), so a regression in any single zone fails with the query
// spelled out rather than a fuzz seed.
func TestBindVsInlineCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	c := randCatalog(rng, 400)
	queries := []string{
		"SELECT a, b FROM data WHERE a = 7",
		"SELECT a, c FROM data WHERE b > -12.5 AND c = 'red'",
		"SELECT a FROM data WHERE a IN (1, 3, 5) ORDER BY a",
		"SELECT a FROM data WHERE c IN ('red', 'blue') ORDER BY a, c",
		"SELECT a, b FROM data WHERE a BETWEEN -4 AND 9 ORDER BY b DESC",
		"SELECT c FROM data WHERE c LIKE 'gr%' ORDER BY 1",
		"SELECT a, dim.label FROM data JOIN dim ON data.e = dim.key AND dim.weight > 2.0 ORDER BY a, dim.label",
		"SELECT a, multi.tag FROM data LEFT JOIN multi ON data.e = multi.mkey AND multi.score > 2.5 AND data.a < multi.score ORDER BY a, multi.tag",
		"SELECT e, COUNT(*) FROM data GROUP BY e HAVING COUNT(*) > 40 ORDER BY 1",
		"SELECT c, SUM(a) FROM data WHERE a > 0 GROUP BY c HAVING SUM(a) > 100 ORDER BY 1",
		"SELECT a FROM data ORDER BY a LIMIT 10",
		"SELECT a, b FROM data WHERE e < 5 ORDER BY a DESC, b LIMIT 12 OFFSET 6",
		"SELECT a FROM data WHERE a IS NOT NULL AND a <> 3 ORDER BY a LIMIT 100 OFFSET 395",
		// Window/CASE/subquery shapes: literals inside OVER specs stay
		// inline (frame bounds are grammar), while WHERE and subquery
		// literals extract into the shared bind-slot space.
		"SELECT a, ROW_NUMBER() OVER (PARTITION BY c ORDER BY a, b) AS rn FROM data WHERE e < 6 ORDER BY a, rn LIMIT 30",
		"SELECT a, SUM(b) OVER (ORDER BY a ROWS BETWEEN 3 PRECEDING AND CURRENT ROW) AS ms FROM data WHERE a > -5 ORDER BY a LIMIT 25",
		"SELECT e, RANK() OVER (ORDER BY e DESC) FROM data WHERE b < 50.5 ORDER BY 1, 2 LIMIT 20",
		"SELECT a FROM data WHERE b > (SELECT AVG(score) FROM multi WHERE score < 7.5) ORDER BY a LIMIT 15",
		"SELECT a, e FROM data WHERE e IN (SELECT mkey FROM multi WHERE score > 3.5) ORDER BY a, e LIMIT 20",
		"SELECT a, CASE c WHEN 'red' THEN 1 WHEN 'blue' THEN 2 ELSE 0 END AS rc FROM data WHERE a BETWEEN -3 AND 12 ORDER BY a, rc",
		"SELECT c, SUM(a) AS total FROM data WHERE e <> 7 GROUP BY c HAVING total > 25 ORDER BY 1",
	}
	for _, q := range queries {
		tbl, err := c.Query(q)
		if err != nil {
			t.Fatalf("query %q: %v", q, err)
		}
		tmpl, vals, ok := Fingerprint(q)
		if !ok {
			t.Fatalf("query %q: Fingerprint returned ok=false", q)
		}
		if len(vals) == 0 {
			t.Fatalf("query %q: expected extracted literals, got none", q)
		}
		diffBindVsInline(t, c, q, dumpTable(tbl))
		_ = tmpl
	}
}

// TestRangeSelectionLargeParallelScan crosses the 2*parallelMinRows
// threshold so the chunked parallel WHERE path (per-chunk span emission +
// cross-chunk merge) is differentially tested, not just the serial path.
// Clustered and all-passing predicates exercise span merging across chunk
// boundaries; alternating predicates exercise the dense degradation.
func TestRangeSelectionLargeParallelScan(t *testing.T) {
	if testing.Short() {
		t.Skip("large scan")
	}
	rng := rand.New(rand.NewSource(42))
	c := randCatalog(rng, 3*parallelMinRows)
	queries := []string{
		"SELECT a, b FROM data",                                                  // no WHERE: nil selection
		"SELECT a, b FROM data WHERE a IS NOT NULL OR a IS NULL",                 // always true: one span
		"SELECT a FROM data WHERE a > 100",                                       // always false: empty
		"SELECT a, c FROM data WHERE e < 4",                                      // ~50% scattered
		"SELECT a, c FROM data WHERE e = 0",                                      // sparse
		"SELECT COUNT(*), SUM(a), MIN(b), MAX(b) FROM data",                      // global agg, nil sel
		"SELECT COUNT(*), AVG(b) FROM data WHERE e < 6",                          // global agg, filtered
		"SELECT c, COUNT(*), SUM(a) FROM data WHERE e < 5 GROUP BY c ORDER BY 1", // grouped
		"SELECT a FROM data WHERE e < 3 LIMIT 7",                                 // LIMIT pushdown, no ORDER BY
		"SELECT a FROM data LIMIT 5 OFFSET 3",                                    // LIMIT pushdown over nil sel
		"SELECT a, b FROM data WHERE b > -100 ORDER BY a DESC LIMIT 9",
		"SELECT a, b, c FROM data ORDER BY c DESC, a, b DESC",           // parallel multi-key full sort
		"SELECT a, e FROM data ORDER BY e, a DESC LIMIT 40 OFFSET 9000", // top-K window near the end
		"SELECT a FROM data ORDER BY a LIMIT 3 OFFSET 20000",            // OFFSET beyond the table
		"SELECT b FROM data WHERE e <> 2 ORDER BY b DESC LIMIT 11",      // top-K over filtered selection
	}
	for _, q := range queries {
		vec, vecErr := c.Query(q)
		forceDenseSelection.Store(true)
		dense, denseErr := c.Query(q)
		forceDenseSelection.Store(false)
		sca, scaErr := c.QueryScalar(q)
		if (vecErr == nil) != (denseErr == nil) || (vecErr == nil) != (scaErr == nil) {
			t.Fatalf("query %q: error mismatch: %v / %v / %v", q, vecErr, denseErr, scaErr)
		}
		if vecErr != nil {
			continue
		}
		dv, dd, ds := dumpTable(vec), dumpTable(dense), dumpTable(sca)
		if dv != dd {
			t.Errorf("query %q: range vs dense mismatch", q)
		}
		if dv != ds {
			t.Errorf("query %q: vectorized vs scalar mismatch", q)
		}
	}
}
