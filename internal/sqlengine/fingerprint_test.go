package sqlengine

import (
	"fmt"
	"strings"
	"testing"

	"datalab/internal/table"
)

func fpVals(vals []table.Value) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		if v.Kind == table.KindNull {
			parts[i] = "NULL"
		} else {
			parts[i] = fmt.Sprintf("%v:%s", v.Kind, v.AsString())
		}
	}
	return strings.Join(parts, "|")
}

// TestFingerprintTemplates pins the normalizer's output byte for byte:
// which literals are extracted, which positions are grammar and stay
// inlined, and how the template preserves the surrounding text.
func TestFingerprintTemplates(t *testing.T) {
	cases := []struct {
		name     string
		sql      string
		template string // "" means template must equal the input
		vals     string // fpVals encoding; "" means no extraction
		notOK    bool
	}{
		{
			name:     "where int",
			sql:      "SELECT a FROM t WHERE a = 5",
			template: "SELECT a FROM t WHERE a = ?",
			vals:     fpVals([]table.Value{table.Int(5)}),
		},
		{
			name:     "where float and string",
			sql:      "SELECT a FROM t WHERE b > 2.5 AND c = 'red'",
			template: "SELECT a FROM t WHERE b > ? AND c = ?",
			vals:     fpVals([]table.Value{table.Float(2.5), table.Str("red")}),
		},
		{
			name: "string with doubled-quote escape",
			sql:  "SELECT a FROM t WHERE c = 'it''s'",
			// The template replaces the whole quoted literal, quotes
			// included; the extracted value is the unescaped content.
			template: "SELECT a FROM t WHERE c = ?",
			vals:     fpVals([]table.Value{table.Str("it's")}),
		},
		{
			name: "negative number is unary minus plus literal",
			sql:  "SELECT a FROM t WHERE a = -5",
			// The lexer emits '-' as an operator, so only the magnitude is
			// extracted: -5 and -7 share a template, and the parser's unary
			// minus negates the bound value at execution.
			template: "SELECT a FROM t WHERE a = -?",
			vals:     fpVals([]table.Value{table.Int(5)}),
		},
		{
			name:     "is null is grammar, not a literal",
			sql:      "SELECT a FROM t WHERE a IS NULL",
			template: "",
			vals:     "",
		},
		{
			name:     "is not null is grammar",
			sql:      "SELECT a FROM t WHERE a IS NOT NULL AND b = 1",
			template: "SELECT a FROM t WHERE a IS NOT NULL AND b = ?",
			vals:     fpVals([]table.Value{table.Int(1)}),
		},
		{
			name:     "bare null in a comparison is extracted",
			sql:      "SELECT a FROM t WHERE a = NULL",
			template: "SELECT a FROM t WHERE a = ?",
			vals:     "NULL",
		},
		{
			name: "select-list literal names an output column",
			sql:  "SELECT 1, 'tag', a FROM t WHERE a > 2",
			// Parameterizing the select list would rename output columns,
			// so only the WHERE literal is extracted.
			template: "SELECT 1, 'tag', a FROM t WHERE a > ?",
			vals:     fpVals([]table.Value{table.Int(2)}),
		},
		{
			name:     "double-quoted identifier is not a string",
			sql:      `SELECT a FROM t WHERE "5" = 3`,
			template: `SELECT a FROM t WHERE "5" = ?`,
			vals:     fpVals([]table.Value{table.Int(3)}),
		},
		{
			name:     "backtick identifier is not a string",
			sql:      "SELECT a FROM t WHERE `where` = 'x'",
			template: "SELECT a FROM t WHERE `where` = ?",
			vals:     fpVals([]table.Value{table.Str("x")}),
		},
		{
			name:     "in-list arity two",
			sql:      "SELECT a FROM t WHERE a IN (1, 2)",
			template: "SELECT a FROM t WHERE a IN (?, ?)",
			vals:     fpVals([]table.Value{table.Int(1), table.Int(2)}),
		},
		{
			name: "in-list arity three is a distinct template",
			sql:  "SELECT a FROM t WHERE a IN (1, 2, 3)",
			// Differing arity must NOT collapse: each slot needs a value.
			template: "SELECT a FROM t WHERE a IN (?, ?, ?)",
			vals:     fpVals([]table.Value{table.Int(1), table.Int(2), table.Int(3)}),
		},
		{
			name:     "group by and order by integers are positional",
			sql:      "SELECT c, COUNT(*) FROM t WHERE a > 1 GROUP BY c ORDER BY 2 DESC",
			template: "SELECT c, COUNT(*) FROM t WHERE a > ? GROUP BY c ORDER BY 2 DESC",
			vals:     fpVals([]table.Value{table.Int(1)}),
		},
		{
			name:     "limit and offset re-enable extraction after order by",
			sql:      "SELECT a FROM t WHERE a > 4 ORDER BY 1 LIMIT 10 OFFSET 5",
			template: "SELECT a FROM t WHERE a > ? ORDER BY 1 LIMIT ? OFFSET ?",
			vals:     fpVals([]table.Value{table.Int(4), table.Int(10), table.Int(5)}),
		},
		{
			name:     "having literal",
			sql:      "SELECT c, COUNT(*) FROM t GROUP BY c HAVING COUNT(*) > 3",
			template: "SELECT c, COUNT(*) FROM t GROUP BY c HAVING COUNT(*) > ?",
			vals:     fpVals([]table.Value{table.Int(3)}),
		},
		{
			name:     "residual on-clause literal",
			sql:      "SELECT a FROM t JOIN u ON t.x = u.y AND u.w > 2.0",
			template: "SELECT a FROM t JOIN u ON t.x = u.y AND u.w > ?",
			vals:     fpVals([]table.Value{table.Float(2.0)}),
		},
		{
			name:     "between extracts both bounds",
			sql:      "SELECT a FROM t WHERE a BETWEEN -4 AND 9",
			template: "SELECT a FROM t WHERE a BETWEEN -? AND ?",
			vals:     fpVals([]table.Value{table.Int(4), table.Int(9)}),
		},
		{
			name:  "existing positional placeholder",
			sql:   "SELECT a FROM t WHERE a = ?",
			notOK: true,
		},
		{
			name:  "existing named placeholder",
			sql:   "SELECT a FROM t WHERE a = :x",
			notOK: true,
		},
		{
			name:  "lex error",
			sql:   "SELECT a FROM t WHERE c = 'unterminated",
			notOK: true,
		},
		{
			name:     "no literals at all",
			sql:      "SELECT a, b FROM t WHERE a IS NULL ORDER BY 1",
			template: "",
			vals:     "",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tmpl, vals, ok := Fingerprint(tc.sql)
			if tc.notOK {
				if ok {
					t.Fatalf("Fingerprint(%q) ok=true, want false (tmpl %q)", tc.sql, tmpl)
				}
				if tmpl != tc.sql || vals != nil {
					t.Fatalf("not-ok result must echo the input unchanged, got %q / %v", tmpl, vals)
				}
				return
			}
			if !ok {
				t.Fatalf("Fingerprint(%q) ok=false", tc.sql)
			}
			want := tc.template
			if want == "" {
				want = tc.sql
			}
			if tmpl != want {
				t.Fatalf("template mismatch\n got  %q\n want %q", tmpl, want)
			}
			if got := fpVals(vals); got != tc.vals {
				t.Fatalf("values mismatch\n got  %s\n want %s", got, tc.vals)
			}
		})
	}
}

// TestFingerprintArityDistinct is the IN-list cache-key property: lists
// of different arity must land in different plan-cache entries, or a
// cached 2-slot plan would be executed with 3 extracted values.
func TestFingerprintArityDistinct(t *testing.T) {
	t2, v2, _ := Fingerprint("SELECT a FROM t WHERE a IN (1, 2)")
	t3, v3, _ := Fingerprint("SELECT a FROM t WHERE a IN (7, 8, 9)")
	if t2 == t3 {
		t.Fatalf("2-ary and 3-ary IN collapsed to one template %q", t2)
	}
	if len(v2) != 2 || len(v3) != 3 {
		t.Fatalf("extracted %d and %d values, want 2 and 3", len(v2), len(v3))
	}
	// Same arity, different literals: one template.
	t2b, _, _ := Fingerprint("SELECT a FROM t WHERE a IN (40, 50)")
	if t2 != t2b {
		t.Fatalf("same-arity lists split templates: %q vs %q", t2, t2b)
	}
}

// TestFingerprintTemplateRoundTrip: every extracted template must parse
// and declare exactly one slot per extracted value — the invariant
// planQuery relies on before executing a cached plan with the values.
func TestFingerprintTemplateRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT a FROM t WHERE a = 5",
		"SELECT a FROM t WHERE a IN (1, 2, 3) AND c = 'x'",
		"SELECT a FROM t WHERE a BETWEEN -4 AND 9 LIMIT 3 OFFSET 1",
		"SELECT c, COUNT(*) FROM t GROUP BY c HAVING COUNT(*) > 3 ORDER BY 1 LIMIT 2",
		"SELECT a FROM t JOIN u ON t.x = u.y AND u.w > 2.0 WHERE c LIKE 'gr%'",
	}
	for _, q := range queries {
		tmpl, vals, ok := Fingerprint(q)
		if !ok || len(vals) == 0 {
			t.Fatalf("Fingerprint(%q): ok=%v, %d values", q, ok, len(vals))
		}
		stmt, err := Parse(tmpl)
		if err != nil {
			t.Fatalf("template %q does not parse: %v", tmpl, err)
		}
		if stmt.NumParams() != len(vals) {
			t.Fatalf("template %q: %d slots, %d values", tmpl, stmt.NumParams(), len(vals))
		}
	}
}
