package sqlengine

import (
	"context"
	"fmt"

	"datalab/internal/table"
)

// Subquery execution by inlining. Uncorrelated subqueries — scalar
// `(SELECT ...)` expressions and `IN (SELECT ...)` membership — execute
// once per statement execution, before the outer scan, and their results
// replace the subquery node in a copy-on-write rewrite of the statement:
// a scalar subquery becomes a Literal (NULL over zero rows; an error over
// more than one), an IN subquery becomes its literal value list. The
// rewrite copies only the spine above a subquery, so shared cached
// statements are never mutated and window-call node pointers (used as
// map keys during execution) survive untouched.
//
// Each engine inlines with itself (the scalar reference executes
// subqueries through the scalar path, the vectorized engine through the
// vectorized path), keeping the differential harness's engine separation
// intact. Correlated references fail with the same unknown-column error
// in both engines. Every subquery pins its own snapshot at its execution
// time; under concurrent ingest a statement's subqueries may observe a
// newer snapshot than the outer scan — callers needing a fixed view run
// against a frozen catalog, as the differential tests do.

// exprHasSubquery reports whether e contains a subquery. Window specs
// cannot contain subqueries (rejected at parse time), so they are not
// walked.
func exprHasSubquery(e Expr) bool {
	switch x := e.(type) {
	case *Subquery:
		return true
	case *In:
		if x.Sub != nil {
			return true
		}
		if exprHasSubquery(x.X) {
			return true
		}
		for _, v := range x.Values {
			if exprHasSubquery(v) {
				return true
			}
		}
	case *Binary:
		return exprHasSubquery(x.L) || exprHasSubquery(x.R)
	case *Unary:
		return exprHasSubquery(x.X)
	case *Between:
		return exprHasSubquery(x.X) || exprHasSubquery(x.Lo) || exprHasSubquery(x.Hi)
	case *IsNull:
		return exprHasSubquery(x.X)
	case *CaseExpr:
		for _, w := range x.Whens {
			if exprHasSubquery(w.Cond) || exprHasSubquery(w.Result) {
				return true
			}
		}
		if x.Else != nil {
			return exprHasSubquery(x.Else)
		}
	case *FuncCall:
		for _, a := range x.Args {
			if exprHasSubquery(a) {
				return true
			}
		}
	}
	return false
}

func stmtHasSubquery(stmt *SelectStmt) bool {
	for _, it := range stmt.Items {
		if exprHasSubquery(it.Expr) {
			return true
		}
	}
	for _, j := range stmt.Joins {
		if exprHasSubquery(j.On) {
			return true
		}
	}
	if stmt.Where != nil && exprHasSubquery(stmt.Where) {
		return true
	}
	for _, g := range stmt.GroupBy {
		if exprHasSubquery(g) {
			return true
		}
	}
	if stmt.Having != nil && exprHasSubquery(stmt.Having) {
		return true
	}
	for _, o := range stmt.OrderBy {
		if exprHasSubquery(o.Expr) {
			return true
		}
	}
	return false
}

// inlineSubqueries executes every subquery of the statement and returns a
// copy with their results substituted; statements without subqueries come
// back unchanged (same pointer). scalar selects which engine executes the
// subqueries.
func (c *Catalog) inlineSubqueries(ctx context.Context, stmt *SelectStmt, binds []table.Value, scalar bool) (*SelectStmt, error) {
	if !stmtHasSubquery(stmt) {
		return stmt, nil
	}
	rw := func(e Expr) (Expr, error) { return c.rewriteSubqueries(ctx, e, binds, scalar) }
	cp := *stmt
	cp.Items = append([]SelectItem(nil), stmt.Items...)
	for i := range cp.Items {
		ne, err := rw(cp.Items[i].Expr)
		if err != nil {
			return nil, err
		}
		cp.Items[i].Expr = ne
	}
	if len(stmt.Joins) > 0 {
		cp.Joins = append([]JoinClause(nil), stmt.Joins...)
		for i := range cp.Joins {
			ne, err := rw(cp.Joins[i].On)
			if err != nil {
				return nil, err
			}
			cp.Joins[i].On = ne
		}
	}
	if stmt.Where != nil {
		ne, err := rw(stmt.Where)
		if err != nil {
			return nil, err
		}
		cp.Where = ne
	}
	if len(stmt.GroupBy) > 0 {
		cp.GroupBy = append([]Expr(nil), stmt.GroupBy...)
		for i := range cp.GroupBy {
			ne, err := rw(cp.GroupBy[i])
			if err != nil {
				return nil, err
			}
			cp.GroupBy[i] = ne
		}
	}
	if stmt.Having != nil {
		ne, err := rw(stmt.Having)
		if err != nil {
			return nil, err
		}
		cp.Having = ne
	}
	if len(stmt.OrderBy) > 0 {
		cp.OrderBy = append([]OrderItem(nil), stmt.OrderBy...)
		for i := range cp.OrderBy {
			ne, err := rw(cp.OrderBy[i].Expr)
			if err != nil {
				return nil, err
			}
			cp.OrderBy[i].Expr = ne
		}
	}
	return &cp, nil
}

// rewriteSubqueries replaces every subquery under e with its executed
// result, copying only nodes on the path to a subquery — subtrees without
// one keep their identity.
func (c *Catalog) rewriteSubqueries(ctx context.Context, e Expr, binds []table.Value, scalar bool) (Expr, error) {
	if !exprHasSubquery(e) {
		return e, nil
	}
	rw := func(e Expr) (Expr, error) { return c.rewriteSubqueries(ctx, e, binds, scalar) }
	switch x := e.(type) {
	case *Subquery:
		vals, err := c.execSubquery(ctx, x.Stmt, binds, scalar)
		if err != nil {
			return nil, err
		}
		if len(vals) > 1 {
			return nil, fmt.Errorf("sql: scalar subquery returned %d rows, want at most 1", len(vals))
		}
		v := table.Null()
		if len(vals) == 1 {
			v = vals[0]
		}
		return &Literal{Value: v}, nil
	case *In:
		nx, err := rw(x.X)
		if err != nil {
			return nil, err
		}
		if x.Sub != nil {
			vals, err := c.execSubquery(ctx, x.Sub, binds, scalar)
			if err != nil {
				return nil, err
			}
			lits := make([]Expr, len(vals))
			for i, v := range vals {
				lits[i] = &Literal{Value: v}
			}
			return &In{X: nx, Values: lits, Not: x.Not}, nil
		}
		nvals := make([]Expr, len(x.Values))
		for i, v := range x.Values {
			if nvals[i], err = rw(v); err != nil {
				return nil, err
			}
		}
		return &In{X: nx, Values: nvals, Not: x.Not}, nil
	case *Binary:
		nl, err := rw(x.L)
		if err != nil {
			return nil, err
		}
		nr, err := rw(x.R)
		if err != nil {
			return nil, err
		}
		return &Binary{Op: x.Op, L: nl, R: nr}, nil
	case *Unary:
		nx, err := rw(x.X)
		if err != nil {
			return nil, err
		}
		return &Unary{Op: x.Op, X: nx}, nil
	case *Between:
		nx, err := rw(x.X)
		if err != nil {
			return nil, err
		}
		nlo, err := rw(x.Lo)
		if err != nil {
			return nil, err
		}
		nhi, err := rw(x.Hi)
		if err != nil {
			return nil, err
		}
		return &Between{X: nx, Lo: nlo, Hi: nhi, Not: x.Not}, nil
	case *IsNull:
		nx, err := rw(x.X)
		if err != nil {
			return nil, err
		}
		return &IsNull{X: nx, Not: x.Not}, nil
	case *CaseExpr:
		nc := &CaseExpr{Whens: make([]WhenClause, len(x.Whens))}
		for i, w := range x.Whens {
			var err error
			if nc.Whens[i].Cond, err = rw(w.Cond); err != nil {
				return nil, err
			}
			if nc.Whens[i].Result, err = rw(w.Result); err != nil {
				return nil, err
			}
		}
		if x.Else != nil {
			var err error
			if nc.Else, err = rw(x.Else); err != nil {
				return nil, err
			}
		}
		return nc, nil
	case *FuncCall:
		nf := &FuncCall{Name: x.Name, Distinct: x.Distinct, IsStar: x.IsStar, Over: x.Over}
		nf.Args = make([]Expr, len(x.Args))
		for i, a := range x.Args {
			var err error
			if nf.Args[i], err = rw(a); err != nil {
				return nil, err
			}
		}
		return nf, nil
	}
	return e, nil
}

// execSubquery runs one subquery through the selected engine and returns
// its single output column as values, in result row order.
func (c *Catalog) execSubquery(ctx context.Context, sub *SelectStmt, binds []table.Value, scalar bool) ([]table.Value, error) {
	var out *table.Table
	var err error
	if scalar {
		out, err = c.executeScalarSub(ctx, sub, binds)
	} else {
		out, err = c.executeVecSub(ctx, sub, binds)
	}
	if err != nil {
		return nil, err
	}
	if len(out.Columns) != 1 {
		return nil, fmt.Errorf("sql: subquery must return exactly one column, got %d", len(out.Columns))
	}
	col := &out.Columns[0]
	vals := make([]table.Value, col.Len())
	for i := range vals {
		vals[i] = col.Value(i)
	}
	return vals, nil
}

// executeVecSub executes a subquery statement with the vectorized engine.
// The outer binding slice passes through unchecked (the subquery declares
// no slots of its own), and nested subqueries inline recursively.
func (c *Catalog) executeVecSub(ctx context.Context, sub *SelectStmt, binds []table.Value) (*table.Table, error) {
	sub, err := resolveBindsLoose(sub, binds)
	if err != nil {
		return nil, err
	}
	sub, err = c.inlineSubqueries(ctx, sub, binds, false)
	if err != nil {
		return nil, err
	}
	rel, sel, grouped, err := c.scanFilter(ctx, sub, binds)
	if err != nil {
		return nil, err
	}
	return executeMaterialized(ctx, sub, rel, sel, grouped)
}

// executeScalarSub is executeVecSub for the scalar reference engine.
func (c *Catalog) executeScalarSub(ctx context.Context, sub *SelectStmt, binds []table.Value) (*table.Table, error) {
	sub, err := resolveBindsLoose(sub, binds)
	if err != nil {
		return nil, err
	}
	sub, err = c.inlineSubqueries(ctx, sub, binds, true)
	if err != nil {
		return nil, err
	}
	return c.executeScalarStmt(sub, binds)
}
