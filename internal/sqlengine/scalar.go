package sqlengine

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"datalab/internal/table"
)

// Scalar (row-at-a-time) reference executor. This is the seed engine's
// original execution strategy, kept intact behind Catalog.QueryScalar: it
// materializes row-major relations and walks the expression tree once per
// row. The vectorized executor in exec.go/vector.go is differentially
// tested against it (see vector_test.go) and benchmarked against it in the
// repo root's bench_test.go.

// srel is the scalar executor's working representation: shared column
// metadata plus row-major values. binds carries the execution's parameter
// bindings (nil without placeholders).
type srel struct {
	relSchema
	rows  [][]table.Value
	binds []table.Value
}

func srelFrom(t *table.Table, qual string) *srel {
	r := &srel{relSchema: schemaFrom(t, qual)}
	n := t.NumRows()
	r.rows = make([][]table.Value, n)
	for i := 0; i < n; i++ {
		r.rows[i] = t.Row(i)
	}
	return r
}

// rowEnv evaluates expressions against one relation row. pos/win are set
// only during projection of a statement with window functions: win maps
// each window call to its precomputed per-row values, indexed by pos (the
// row's position in rel.rows).
type rowEnv struct {
	rel *srel
	row []table.Value
	pos int
	win map[*FuncCall][]table.Value
}

func (e *rowEnv) resolveColumn(ref *ColumnRef) (table.Value, error) {
	i := e.rel.findColumn(ref)
	if i < 0 {
		return table.Null(), errUnknownColumn(ref)
	}
	return e.row[i], nil
}

func (e *rowEnv) resolveAggregate(fn *FuncCall) (table.Value, error) {
	return table.Null(), errAggInRowContext(fn)
}

func (e *rowEnv) resolveParam(p *Param) (table.Value, error) {
	return bindAt(e.rel.binds, p)
}

func (e *rowEnv) resolveWindow(fn *FuncCall) (table.Value, error) {
	if vals, ok := e.win[fn]; ok {
		return vals[e.pos], nil
	}
	return table.Null(), errWindowContext(fn)
}

// groupEnv evaluates expressions against one group: plain columns resolve
// from the group's first row, aggregates compute over all group rows.
type groupEnv struct {
	rel  *srel
	rows []int // indexes into rel.rows
}

func (e *groupEnv) resolveColumn(ref *ColumnRef) (table.Value, error) {
	i := e.rel.findColumn(ref)
	if i < 0 {
		return table.Null(), errUnknownColumn(ref)
	}
	if len(e.rows) == 0 {
		return table.Null(), nil
	}
	return e.rel.rows[e.rows[0]][i], nil
}

func (e *groupEnv) resolveParam(p *Param) (table.Value, error) {
	return bindAt(e.rel.binds, p)
}

func (e *groupEnv) resolveWindow(fn *FuncCall) (table.Value, error) {
	return table.Null(), errWindowContext(fn)
}

func (e *groupEnv) resolveAggregate(fn *FuncCall) (table.Value, error) {
	if fn.IsStar {
		if fn.Name != "COUNT" {
			return table.Null(), fmt.Errorf("sql: %s(*) is not supported", fn.Name)
		}
		return table.Int(int64(len(e.rows))), nil
	}
	if len(fn.Args) != 1 {
		return table.Null(), fmt.Errorf("sql: aggregate %s expects one argument", fn.Name)
	}
	var vals []table.Value
	seen := map[string]bool{}
	for _, ri := range e.rows {
		re := &rowEnv{rel: e.rel, row: e.rel.rows[ri]}
		v, err := evalExpr(fn.Args[0], re)
		if err != nil {
			return table.Null(), err
		}
		if v.IsNull() {
			continue
		}
		if fn.Distinct {
			k := v.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	return finishAggregate(fn.Name, vals)
}

// finishAggregate reduces the non-NULL values of one group to the aggregate
// result, shared by the scalar and vectorized fallback paths.
func finishAggregate(name string, vals []table.Value) (table.Value, error) {
	switch name {
	case "COUNT":
		return table.Int(int64(len(vals))), nil
	case "SUM", "AVG", "STDDEV", "MEDIAN":
		var nums []float64
		for _, v := range vals {
			if f, ok := v.AsFloat(); ok {
				nums = append(nums, f)
			}
		}
		return finishNumericAggregate(name, nums), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return table.Null(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c := table.Compare(v, best)
			if (name == "MIN" && c < 0) || (name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return table.Null(), fmt.Errorf("sql: unknown aggregate %s", name)
}

// finishNumericAggregate computes the float-valued aggregates over the
// convertible values of one group.
func finishNumericAggregate(name string, nums []float64) table.Value {
	if len(nums) == 0 {
		return table.Null()
	}
	var total float64
	for _, f := range nums {
		total += f
	}
	switch name {
	case "SUM":
		return table.Float(total)
	case "AVG":
		return table.Float(total / float64(len(nums)))
	case "STDDEV":
		if len(nums) < 2 {
			return table.Float(0)
		}
		mean := total / float64(len(nums))
		var ss float64
		for _, f := range nums {
			d := f - mean
			ss += d * d
		}
		return table.Float(math.Sqrt(ss / float64(len(nums)-1)))
	case "MEDIAN":
		cp := append([]float64(nil), nums...)
		sort.Float64s(cp)
		n := len(cp)
		if n%2 == 1 {
			return table.Float(cp[n/2])
		}
		return table.Float((cp[n/2-1] + cp[n/2]) / 2)
	}
	return table.Null()
}

// QueryScalar parses and executes a SELECT with the scalar reference
// executor. Like Query, the text goes through fingerprinting and the plan
// cache: repeated templates parse once and execute with their extracted
// literals bound, so differential runs alternating Query/QueryScalar no
// longer pay (or skew) a raw parse per scalar call.
func (c *Catalog) QueryScalar(sql string) (*table.Table, error) {
	stmt, binds, err := c.planQuery(sql)
	if err != nil {
		return nil, err
	}
	return c.ExecuteScalarBound(stmt, binds)
}

// ExecuteScalar runs a parsed statement with the row-at-a-time reference
// path. Statements with placeholders must execute through
// ExecuteScalarBound; here they fail with an unbound-parameter error.
func (c *Catalog) ExecuteScalar(stmt *SelectStmt) (*table.Table, error) {
	return c.ExecuteScalarBound(stmt, nil)
}

// ExecuteScalarBound is ExecuteScalar with the execution's parameter
// bindings — the scalar half of the bind-vs-inline differential harness.
func (c *Catalog) ExecuteScalarBound(stmt *SelectStmt, binds []table.Value) (*table.Table, error) {
	stmt, err := resolveBinds(stmt, binds)
	if err != nil {
		return nil, err
	}
	stmt, err = c.inlineSubqueries(context.Background(), stmt, binds, true)
	if err != nil {
		return nil, err
	}
	return c.executeScalarStmt(stmt, binds)
}

// executeScalarStmt is the scalar execution body after bind resolution
// and subquery inlining — shared with subquery execution, which enters
// with resolveBindsLoose.
func (c *Catalog) executeScalarStmt(stmt *SelectStmt, binds []table.Value) (*table.Table, error) {
	// Same snapshot discipline as the vectorized path: one atomic load per
	// referenced table pins the rows this execution reads.
	base, ok := c.Snapshot(stmt.From)
	if !ok {
		return nil, fmt.Errorf("sql: unknown table %q", stmt.From)
	}
	qual := stmt.From
	if stmt.FromAs != "" {
		qual = stmt.FromAs
	}
	rel := srelFrom(base.Table(), qual)
	rel.binds = binds

	for _, j := range stmt.Joins {
		rt, ok := c.Snapshot(j.Table)
		if !ok {
			return nil, fmt.Errorf("sql: unknown table %q", j.Table)
		}
		jq := j.Table
		if j.Alias != "" {
			jq = j.Alias
		}
		var err error
		rel, err = joinRelationsScalar(rel, srelFrom(rt.Table(), jq), j)
		if err != nil {
			return nil, err
		}
	}

	if stmt.Where != nil {
		var kept [][]table.Value
		for _, row := range rel.rows {
			v, err := evalExpr(stmt.Where, &rowEnv{rel: rel, row: row})
			if err != nil {
				return nil, err
			}
			if b, ok := v.AsBool(); ok && b {
				kept = append(kept, row)
			}
		}
		rel.rows = kept
	}

	grouped := len(stmt.GroupBy) > 0 || stmt.Having != nil || selectHasAggregate(stmt)
	var out *table.Table
	var err error
	if grouped {
		out, err = executeGroupedScalar(stmt, rel)
	} else {
		out, err = executePlainScalar(stmt, rel)
	}
	if err != nil {
		return nil, err
	}
	return applyDistinctOffsetLimit(stmt, out), nil
}

// joinRelationsScalar nested-loop joins left and right with the ON
// predicate, evaluated for every row pair. Output order follows the
// preserved side — left rows for INNER/LEFT/FULL, right rows for RIGHT —
// with FULL's unmatched right rows appended last in ascending order,
// matching the vectorized pipeline's probe order exactly (the differential
// harness compares results row for row).
func joinRelationsScalar(left, right *srel, j JoinClause) (*srel, error) {
	out := &srel{relSchema: concatSchemas(&left.relSchema, &right.relSchema), binds: left.binds}
	nullsLeft := make([]table.Value, len(left.names))
	nullsRight := make([]table.Value, len(right.names))
	match := func(lrow, rrow []table.Value) (bool, []table.Value, error) {
		combined := append(append([]table.Value{}, lrow...), rrow...)
		v, err := evalExpr(j.On, &rowEnv{rel: out, row: combined})
		if err != nil {
			return false, nil, err
		}
		b, ok := v.AsBool()
		return ok && b, combined, nil
	}

	if j.Kind == table.JoinRight {
		for _, rrow := range right.rows {
			matched := false
			for _, lrow := range left.rows {
				ok, combined, err := match(lrow, rrow)
				if err != nil {
					return nil, err
				}
				if ok {
					matched = true
					out.rows = append(out.rows, combined)
				}
			}
			if !matched {
				out.rows = append(out.rows, append(append([]table.Value{}, nullsLeft...), rrow...))
			}
		}
		return out, nil
	}

	var rmatched []bool
	if j.Kind == table.JoinFull {
		rmatched = make([]bool, len(right.rows))
	}
	for _, lrow := range left.rows {
		matched := false
		for ri, rrow := range right.rows {
			ok, combined, err := match(lrow, rrow)
			if err != nil {
				return nil, err
			}
			if ok {
				matched = true
				if rmatched != nil {
					rmatched[ri] = true
				}
				out.rows = append(out.rows, combined)
			}
		}
		if !matched && (j.Kind == table.JoinLeft || j.Kind == table.JoinFull) {
			out.rows = append(out.rows, append(append([]table.Value{}, lrow...), nullsRight...))
		}
	}
	for ri := range rmatched {
		if !rmatched[ri] {
			out.rows = append(out.rows, append(append([]table.Value{}, nullsLeft...), right.rows[ri]...))
		}
	}
	return out, nil
}

type projectedRow struct {
	out  []table.Value
	keys []table.Value // order-by keys
}

func buildOutput(name string, items []SelectItem, rows []projectedRow, order []OrderItem) *table.Table {
	if len(order) > 0 {
		sort.SliceStable(rows, func(a, b int) bool {
			for k := range order {
				c := table.Compare(rows[a].keys[k], rows[b].keys[k])
				if c == 0 {
					continue
				}
				if order[k].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	names := outputNames(items)
	kinds := make([]table.Kind, len(items))
	for i := range kinds {
		kinds[i] = table.KindString
		for _, r := range rows {
			if !r.out[i].IsNull() {
				kinds[i] = r.out[i].Kind
				break
			}
		}
	}
	out := &table.Table{Name: name}
	for i := range items {
		col := table.NewColumn(names[i], kinds[i])
		col.Grow(len(rows))
		for _, r := range rows {
			col.Append(r.out[i])
		}
		out.Columns = append(out.Columns, col)
	}
	return out
}

// outputNames resolves display names for the select items, deduplicating
// case-insensitive collisions with _N suffixes.
func outputNames(items []SelectItem) []string {
	names := make([]string, len(items))
	used := map[string]int{}
	for i, it := range items {
		n := it.OutputName()
		key := strings.ToLower(n)
		if c, dup := used[key]; dup {
			used[key] = c + 1
			n = fmt.Sprintf("%s_%d", n, c+1)
		} else {
			used[key] = 0
		}
		names[i] = n
	}
	return names
}

func executePlainScalar(stmt *SelectStmt, rel *srel) (*table.Table, error) {
	items := expandItems(stmt, &rel.relSchema)
	order := orderExprs(stmt, items)
	win, err := computeWindowsScalar(rel, statementWindows(stmt, items, order))
	if err != nil {
		return nil, err
	}
	rows := make([]projectedRow, 0, len(rel.rows))
	for ri, row := range rel.rows {
		ev := &rowEnv{rel: rel, row: row, pos: ri, win: win}
		pr := projectedRow{out: make([]table.Value, len(items)), keys: make([]table.Value, len(order))}
		for i, it := range items {
			v, err := evalExpr(it.Expr, ev)
			if err != nil {
				return nil, err
			}
			pr.out[i] = v
		}
		for i, o := range order {
			v, err := evalExpr(o.Expr, ev)
			if err != nil {
				return nil, err
			}
			pr.keys[i] = v
		}
		rows = append(rows, pr)
	}
	return buildOutput(stmt.From, items, rows, order), nil
}

func executeGroupedScalar(stmt *SelectStmt, rel *srel) (*table.Table, error) {
	items := expandItems(stmt, &rel.relSchema)
	order := orderExprs(stmt, items)

	// Partition rows into groups by the GROUP BY key expressions.
	type grp struct{ rows []int }
	var keys []string
	groups := map[string]*grp{}
	for ri, row := range rel.rows {
		ev := &rowEnv{rel: rel, row: row}
		var kb strings.Builder
		for _, g := range stmt.GroupBy {
			v, err := evalExpr(g, ev)
			if err != nil {
				return nil, err
			}
			kb.WriteString(v.Key())
			kb.WriteByte('\x1f')
		}
		k := kb.String()
		g, ok := groups[k]
		if !ok {
			g = &grp{}
			groups[k] = g
			keys = append(keys, k)
		}
		g.rows = append(g.rows, ri)
	}
	// Global aggregates over zero rows still produce one group.
	if len(stmt.GroupBy) == 0 && len(keys) == 0 {
		groups[""] = &grp{}
		keys = append(keys, "")
	}

	having := stmt.Having
	if having != nil {
		having = resolveHavingAliases(having, items, &rel.relSchema)
	}
	rows := make([]projectedRow, 0, len(keys))
	for _, k := range keys {
		g := groups[k]
		ev := &groupEnv{rel: rel, rows: g.rows}
		if having != nil {
			hv, err := evalExpr(having, ev)
			if err != nil {
				return nil, err
			}
			if b, ok := hv.AsBool(); !ok || !b {
				continue
			}
		}
		pr := projectedRow{out: make([]table.Value, len(items)), keys: make([]table.Value, len(order))}
		for i, it := range items {
			v, err := evalExpr(it.Expr, ev)
			if err != nil {
				return nil, err
			}
			pr.out[i] = v
		}
		for i, o := range order {
			v, err := evalExpr(o.Expr, ev)
			if err != nil {
				return nil, err
			}
			pr.keys[i] = v
		}
		rows = append(rows, pr)
	}
	return buildOutput(stmt.From, items, rows, order), nil
}
