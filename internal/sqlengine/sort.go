package sqlengine

import (
	"bytes"
	"context"
	"math"
	"sort"

	"datalab/internal/table"
)

// Typed ORDER BY kernel. The key columns are encoded once into memcmp-
// ordered byte keys (internal/table/sortkey.go) and the row permutation is
// sorted by comparing key bytes — no per-comparison Value boxing. Three
// strategies, picked by shape:
//
//   - full sort: encode all keys, pdqsort the permutation with a
//     (key, position) comparator. The position tie-break makes the order
//     total, so the unstable sort.Slice yields exactly the stable order.
//   - large full sort (n >= 2*parallelMinRows): partition positions into
//     contiguous chunks on the shared worker pool, encode + sort each
//     chunk independently, then k-way merge the sorted chunks through a
//     small loser-heap. Chunk-local key buffers keep encoding parallel
//     and false-sharing-free.
//   - ORDER BY ... LIMIT k OFFSET m: a bounded max-heap retains the first
//     k+m rows of the stable order, so a 100k-row scan with LIMIT 10
//     never sorts 100k entries. Rows are encoded into a reused scratch
//     buffer and only copied into the heap when they beat the current
//     worst retained row.
//
// Mixed-kind (boxed) key columns have no memcmp encoding; those fall back
// to the boxed comparator paths at the bottom of this file, which preserve
// the scalar reference semantics bit-for-bit (the differential fuzz
// harness checks both routes).

// sortKeySpecs resolves the ORDER BY columns to encoder specs; ok=false
// when any key column has no memcmp encoding: boxed mixed-kind storage,
// or a float column containing NaN. table.Compare treats NaN as equal to
// every value (it is not a total order), so no byte encoding can
// reproduce it — NaN keys must run the reference algorithm itself.
func sortKeySpecs(keyCols []table.Column, order []OrderItem) ([]table.SortKeySpec, bool) {
	specs := make([]table.SortKeySpec, len(order))
	for i := range order {
		if !table.CanEncodeSortKey(&keyCols[i]) {
			return nil, false
		}
		if fs, nulls, ok := keyCols[i].Floats(); ok {
			for j, f := range fs {
				if !nulls[j] && math.IsNaN(f) {
					return nil, false
				}
			}
		}
		specs[i] = table.SortKeySpec{Col: &keyCols[i], Desc: order[i].Desc}
	}
	return specs, true
}

// keyset holds the encoded sort keys of positions [lo, hi). Fixed-width
// composite keys (no string key columns) are addressed by stride; variable
// keys through an offsets slice.
type keyset struct {
	lo   int
	buf  []byte
	offs []int // nil when fixed-width
	w    int   // stride when offs == nil
}

func buildKeyset(specs []table.SortKeySpec, lo, hi int) keyset {
	if w := table.FixedSortKeyWidth(specs); w > 0 {
		return keyset{lo: lo, buf: table.BuildFixedSortKeys(specs, lo, hi, w), w: w}
	}
	buf, offs := table.BuildSortKeys(specs, lo, hi)
	return keyset{lo: lo, buf: buf, offs: offs}
}

// key returns the encoded key of absolute position pos.
func (ks *keyset) key(pos int) []byte {
	i := pos - ks.lo
	if ks.offs == nil {
		return ks.buf[i*ks.w : (i+1)*ks.w]
	}
	return ks.buf[ks.offs[i]:ks.offs[i+1]]
}

// sortSegment sorts one contiguous permutation segment by (key, position);
// the position tie-break totalizes the order, making the unstable pdqsort
// produce exactly the stable result.
func (ks *keyset) sortSegment(seg []int) {
	sort.Slice(seg, func(a, b int) bool {
		pa, pb := seg[a], seg[b]
		c := bytes.Compare(ks.key(pa), ks.key(pb))
		if c != 0 {
			return c < 0
		}
		return pa < pb
	})
}

// sortPerm returns the stable row permutation ordering the key columns.
// ctx is observed by the parallel chunk sort; serial sorts below the
// parallel threshold run to completion (they are sub-millisecond).
func sortPerm(ctx context.Context, keyCols []table.Column, order []OrderItem, n int) []int {
	specs, ok := sortKeySpecs(keyCols, order)
	if !ok {
		return boxedSortPerm(keyCols, order, n)
	}
	if n >= 2*parallelMinRows {
		return parallelSortPerm(ctx, specs, n)
	}
	ks := buildKeyset(specs, 0, n)
	perm := iotaInts(n)
	ks.sortSegment(perm)
	return perm
}

// parallelSortPerm sorts large permutations chunk-at-a-time on the worker
// pool and k-way merges the sorted chunks. On cancellation the returned
// permutation is meaningless; callers must check ctx.Err() and discard it
// (executePlainVec does, right after the sort).
func parallelSortPerm(ctx context.Context, specs []table.SortKeySpec, n int) []int {
	_, count := chunkLayout(n, parallelMinRows)
	perm := iotaInts(n)
	keysets := make([]keyset, count)
	bounds := make([][2]int, count)
	//nolint:errcheck // the chunk body cannot fail; a cancelled chunk leaves its bounds zero and is excluded below
	parallelChunksIndexed(ctx, n, parallelMinRows, func(ci, lo, hi int) error {
		keysets[ci] = buildKeyset(specs, lo, hi)
		bounds[ci] = [2]int{lo, hi}
		keysets[ci].sortSegment(perm[lo:hi])
		return nil
	})
	if ctx.Err() != nil {
		return perm
	}

	// Merge cursors, one per sorted chunk, ordered by (key, position).
	cursors := make([]mergeCursor, 0, count)
	for ci := range keysets {
		if bounds[ci][1] > bounds[ci][0] {
			cursors = append(cursors, mergeCursor{
				seg: perm[bounds[ci][0]:bounds[ci][1]],
				ks:  &keysets[ci],
			})
		}
	}
	if len(cursors) <= 1 {
		return perm
	}
	out := make([]int, 0, n)
	h := mergeHeap(cursors)
	h.init()
	for len(h) > 0 {
		out = append(out, h[0].head())
		if h[0].advance() {
			h.siftDown(0)
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
			h.siftDown(0)
		}
	}
	return out
}

// mergeCursor walks one sorted chunk of the permutation. head is the next
// position in sorted order; its key lives in the chunk-local keyset.
type mergeCursor struct {
	seg  []int // sorted chunk segment of the permutation
	next int
	ks   *keyset
}

func (c *mergeCursor) head() int { return c.seg[c.next] }

func (c *mergeCursor) key() []byte { return c.ks.key(c.seg[c.next]) }

// advance moves to the next element, reporting false when exhausted.
func (c *mergeCursor) advance() bool {
	c.next++
	return c.next < len(c.seg)
}

// mergeHeap is a binary min-heap of cursors ordered by (key, position):
// the position tie-break keeps the merged order identical to the stable
// serial sort.
type mergeHeap []mergeCursor

func (h mergeHeap) less(a, b int) bool {
	c := bytes.Compare(h[a].key(), h[b].key())
	if c != 0 {
		return c < 0
	}
	return h[a].head() < h[b].head()
}

func (h mergeHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h mergeHeap) siftDown(i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		small := l
		if r := l + 1; r < len(h) && h.less(r, l) {
			small = r
		}
		if !h.less(small, i) {
			return
		}
		h[small], h[i] = h[i], h[small]
		i = small
	}
}

// topKPerm returns the first k entries of the stable sort permutation: the
// rows ORDER BY ... LIMIT/OFFSET can reach, without sorting the rest. A
// bounded max-heap (worst retained row at the root) scans the n rows once;
// each row's key is encoded into a reused scratch buffer and copied only
// when it displaces the root.
func topKPerm(ctx context.Context, keyCols []table.Column, order []OrderItem, n, k int) []int {
	if k <= 0 {
		return []int{}
	}
	if k >= n {
		return sortPerm(ctx, keyCols, order, n)
	}
	specs, ok := sortKeySpecs(keyCols, order)
	if !ok {
		return boxedTopKPerm(keyCols, order, n, k)
	}
	h := topKHeap{rows: make([]int, k), keys: make([][]byte, k)}
	h.worse = func(a, b int) bool {
		c := bytes.Compare(h.keys[a], h.keys[b])
		if c != 0 {
			return c > 0
		}
		return h.rows[a] > h.rows[b]
	}
	// Seed the heap with the first k rows, their keys carved out of one
	// arena encoding (full-capacity subslices, so a longer replacement key
	// reallocates its slot instead of clobbering a neighbour).
	arena := buildKeyset(specs, 0, k)
	for row := 0; row < k; row++ {
		h.rows[row] = row
		key := arena.key(row)
		h.keys[row] = key[:len(key):len(key)]
	}
	h.heapify(k)
	var scratch []byte
	for row := k; row < n; row++ {
		scratch = table.AppendRowSortKey(scratch[:0], specs, row)
		// Ties keep the earlier row (stability), and row > rows[0] always
		// holds here, so only strictly smaller keys displace the root.
		if bytes.Compare(scratch, h.keys[0]) >= 0 {
			continue
		}
		h.keys[0] = append(h.keys[0][:0], scratch...)
		h.rows[0] = row
		h.siftDown(0, k)
	}
	h.sortAscending(k)
	return h.rows
}

// boxedTopKPerm is topKPerm for keys with no memcmp encoding. It takes
// the prefix of the full boxed sort rather than running a bounded heap:
// with NaN keys the comparator is not a total order, and a heap's
// selection can diverge from what a stable sort would have kept — the
// prefix of the reference sort cannot, by construction.
func boxedTopKPerm(keyCols []table.Column, order []OrderItem, n, k int) []int {
	return boxedSortPerm(keyCols, order, n)[:k]
}

// topKHeap is a bounded binary max-heap over permutation slots: worse(a, b)
// reports whether slot a's row sorts after slot b's, so the root is always
// the worst retained row.
type topKHeap struct {
	rows  []int
	keys  [][]byte
	worse func(a, b int) bool
}

func (h *topKHeap) swap(a, b int) {
	h.rows[a], h.rows[b] = h.rows[b], h.rows[a]
	h.keys[a], h.keys[b] = h.keys[b], h.keys[a]
}

func (h *topKHeap) heapify(n int) {
	for i := n/2 - 1; i >= 0; i-- {
		h.siftDown(i, n)
	}
}

func (h *topKHeap) siftDown(i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		big := l
		if r := l + 1; r < n && h.worse(r, l) {
			big = r
		}
		if !h.worse(big, i) {
			return
		}
		h.swap(big, i)
		i = big
	}
}

// sortAscending turns the heap into the ascending stable order in place
// (classic heapsort finish: repeatedly move the worst row to the tail).
func (h *topKHeap) sortAscending(n int) {
	for i := n - 1; i > 0; i-- {
		h.swap(0, i)
		h.siftDown(0, i)
	}
}

// boxedRowLess is the reference comparator: row a sorts strictly before
// row b under the ORDER BY spec, with ascending row position as the final
// tie-break (which realizes stable-sort semantics). Only meaningful when
// table.Compare is a total order over the key cells; NaN-bearing keys
// never reach it (they go through boxedSortPerm's SliceStable, the same
// algorithm the scalar reference runs).
func boxedRowLess(keyCols []table.Column, order []OrderItem, a, b int) bool {
	for k := range order {
		c := table.Compare(keyCols[k].Value(a), keyCols[k].Value(b))
		if c == 0 {
			continue
		}
		if order[k].Desc {
			return c > 0
		}
		return c < 0
	}
	return a < b
}

// boxedSortPerm is the pre-typed-kernel sort, preserved verbatim: a
// stable permutation sort boxing each key cell per comparison, with no
// position tie-break. It must stay sort.SliceStable — the scalar
// reference sorts its rows with the identical comparator and algorithm,
// so the two paths make the same comparison sequence and agree even when
// NaN makes the comparator non-transitive (where an unstable sort's
// result is unspecified and could diverge).
func boxedSortPerm(keyCols []table.Column, order []OrderItem, n int) []int {
	perm := iotaInts(n)
	sort.SliceStable(perm, func(a, b int) bool {
		ra, rb := perm[a], perm[b]
		for k := range order {
			c := table.Compare(keyCols[k].Value(ra), keyCols[k].Value(rb))
			if c == 0 {
				continue
			}
			if order[k].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return perm
}
