package sqlengine

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestPreparedExecParams covers the placeholder happy paths end to end:
// positional ?, named :name (with slot dedupe), LIMIT/OFFSET params, and
// NULL via a nil argument.
func TestPreparedExecParams(t *testing.T) {
	c := resultCatalog(100)
	ctx := context.Background()

	stmt, err := c.Prepare("SELECT id FROM facts WHERE region = ? AND qty > ? ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.NumParams() != 2 {
		t.Fatalf("NumParams = %d, want 2", stmt.NumParams())
	}
	res, err := stmt.Exec(ctx, "east", 9)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.Query("SELECT id FROM facts WHERE region = 'east' AND qty > 9 ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if dumpResult(res) != dumpTable(want) {
		t.Fatal("bound result diverged from inlined literals")
	}

	// A named parameter used twice occupies one slot.
	named, err := c.Prepare("SELECT id FROM facts WHERE qty > :n AND id > :n ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if named.NumParams() != 1 {
		t.Fatalf("deduped NumParams = %d, want 1", named.NumParams())
	}
	b, err := named.BindNamed(map[string]any{"n": 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err = b.Exec(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want, err = c.Query("SELECT id FROM facts WHERE qty > 7 AND id > 7 ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if dumpResult(res) != dumpTable(want) {
		t.Fatal("named binding diverged from inlined literals")
	}

	// LIMIT/OFFSET placeholders resolve per execution; the same prepared
	// statement serves different windows.
	lim, err := c.Prepare("SELECT id FROM facts ORDER BY id LIMIT ? OFFSET ?")
	if err != nil {
		t.Fatal(err)
	}
	for _, win := range [][2]int{{5, 0}, {3, 10}, {100, 95}} {
		res, err := lim.Exec(ctx, win[0], win[1])
		if err != nil {
			t.Fatal(err)
		}
		want, err := c.Query(fmt.Sprintf("SELECT id FROM facts ORDER BY id LIMIT %d OFFSET %d", win[0], win[1]))
		if err != nil {
			t.Fatal(err)
		}
		if dumpResult(res) != dumpTable(want) {
			t.Fatalf("LIMIT %d OFFSET %d diverged", win[0], win[1])
		}
	}

	// nil binds SQL NULL: = NULL matches nothing.
	nul, err := c.Prepare("SELECT id FROM facts WHERE amount = ?")
	if err != nil {
		t.Fatal(err)
	}
	res, err = nul.Exec(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 0 {
		t.Fatalf("= NULL matched %d rows, want 0", res.NumRows())
	}
}

// TestBindErrors pins the binding failure modes and their messages:
// argument count mismatch, unrepresentable Go types, named/positional
// mixing, and LIMIT/OFFSET kind checks.
func TestBindErrors(t *testing.T) {
	c := resultCatalog(20)
	ctx := context.Background()

	stmt, err := c.Prepare("SELECT id FROM facts WHERE qty > ? AND region = ?")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Exec(ctx, 1); err == nil || !strings.Contains(err.Error(), "2 parameter(s), got 1 argument(s)") {
		t.Fatalf("short arg list error = %v", err)
	}
	if _, err := stmt.Exec(ctx, 1, "east", "extra"); err == nil || !strings.Contains(err.Error(), "2 parameter(s), got 3 argument(s)") {
		t.Fatalf("long arg list error = %v", err)
	}
	if _, err := stmt.Bind(struct{ X int }{1}, "east"); err == nil || !strings.Contains(err.Error(), "cannot bind") {
		t.Fatalf("unsupported type error = %v", err)
	}
	if _, err := stmt.Bind(uint64(1<<63), "east"); err == nil || !strings.Contains(err.Error(), "overflows") {
		t.Fatalf("uint64 overflow error = %v", err)
	}

	// Executing with no arguments at all is the classic "forgot to bind".
	if _, err := stmt.Exec(ctx); err == nil || !strings.Contains(err.Error(), "2 parameter(s), got 0 argument(s)") {
		t.Fatalf("unbound exec error = %v", err)
	}

	// LIMIT/OFFSET params require non-negative integers — kind and range
	// are checked at bind resolution, before any rows are scanned.
	lim, err := c.Prepare("SELECT id FROM facts LIMIT ?")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lim.Exec(ctx, "ten"); err == nil || !strings.Contains(err.Error(), "LIMIT requires a non-negative integer") {
		t.Fatalf("string LIMIT error = %v", err)
	}
	if _, err := lim.Exec(ctx, -1); err == nil || !strings.Contains(err.Error(), "LIMIT requires a non-negative integer") {
		t.Fatalf("negative LIMIT error = %v", err)
	}
	if _, err := lim.Exec(ctx, 2.5); err == nil || !strings.Contains(err.Error(), "LIMIT requires a non-negative integer") {
		t.Fatalf("float LIMIT error = %v", err)
	}

	off, err := c.Prepare("SELECT id FROM facts LIMIT 5 OFFSET :o")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := off.Exec(ctx, false); err == nil || !strings.Contains(err.Error(), "OFFSET requires a non-negative integer") {
		t.Fatalf("bool OFFSET error = %v", err)
	}

	// Named binding: every name present, no extras, no mixing.
	named, err := c.Prepare("SELECT id FROM facts WHERE qty > :n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := named.BindNamed(map[string]any{}); err == nil || !strings.Contains(err.Error(), "missing argument for :n") {
		t.Fatalf("missing named arg error = %v", err)
	}
	if _, err := named.BindNamed(map[string]any{"n": 1, "ghost": 2}); err == nil || !strings.Contains(err.Error(), ":ghost does not name a parameter") {
		t.Fatalf("extra named arg error = %v", err)
	}
	if _, err := stmt.BindNamed(map[string]any{"n": 1}); err == nil || !strings.Contains(err.Error(), "positional") {
		t.Fatalf("BindNamed over positional slots error = %v", err)
	}
}

// TestPlanCacheConcurrentStress hammers one template from many
// goroutines with distinct literals under -race: the cache must converge
// to a single entry (hit rate >= 0.99), report no lost updates, and every
// concurrent result must equal its serially-computed counterpart.
func TestPlanCacheConcurrentStress(t *testing.T) {
	c := resultCatalog(200)
	ctx := context.Background()
	const goroutines = 8
	const perG = 100

	// Serial reference results, computed before any concurrency, through
	// a separate catalog so cache stats stay clean.
	ref := resultCatalog(200)
	want := make([]string, perG)
	for i := 0; i < perG; i++ {
		tbl, err := ref.Query(fmt.Sprintf("SELECT id, amount FROM facts WHERE qty > %d AND id < %d ORDER BY id", i%13, i+50))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = dumpTable(tbl)
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				res, err := c.QueryCtx(ctx, fmt.Sprintf("SELECT id, amount FROM facts WHERE qty > %d AND id < %d ORDER BY id", i%13, i+50))
				if err != nil {
					errs <- err
					return
				}
				if got := dumpResult(res); got != want[i] {
					errs <- fmt.Errorf("concurrent result %d diverged from serial reference", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := c.PlanCacheStats()
	total := st.Hits + st.Misses
	if total != goroutines*perG {
		t.Fatalf("lost lookups: %d hits + %d misses = %d, want %d", st.Hits, st.Misses, total, goroutines*perG)
	}
	if hr := st.HitRate(); hr < 0.99 {
		t.Fatalf("hit rate %.4f under concurrent template traffic, want >= 0.99", hr)
	}
	if st.Size != 1 {
		t.Fatalf("cache holds %d entries for one template, want 1", st.Size)
	}
	if st.Fingerprints != int64(goroutines*perG) {
		t.Fatalf("fingerprinted lookups = %d, want %d", st.Fingerprints, goroutines*perG)
	}
}

// TestPlanCacheConcurrentEviction drives concurrent traffic over more
// distinct templates than the cache holds: under LRU churn no entry may
// be lost mid-lookup (every query still answers correctly), the size must
// respect the cap, and accounting must stay exact.
func TestPlanCacheConcurrentEviction(t *testing.T) {
	c := resultCatalog(50)
	ctx := context.Background()
	const goroutines = 8
	const templates = DefaultPlanCacheSize + 40
	const perG = 400

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Distinct aliases make structurally distinct templates;
				// the literal varies independently so fingerprinting and
				// eviction churn at the same time.
				tpl := (g*perG + i) % templates
				q := fmt.Sprintf("SELECT id AS c%d FROM facts WHERE id < %d", tpl, i%50)
				res, err := c.QueryCtx(ctx, q)
				if err != nil {
					errs <- err
					return
				}
				if n := int(res.NumRows()); n != i%50 {
					errs <- fmt.Errorf("query %q returned %d rows, want %d", q, n, i%50)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := c.PlanCacheStats()
	if st.Size > st.Cap {
		t.Fatalf("cache size %d exceeds cap %d", st.Size, st.Cap)
	}
	if st.Hits+st.Misses != goroutines*perG {
		t.Fatalf("lost lookups: %d + %d != %d", st.Hits, st.Misses, goroutines*perG)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions under over-capacity churn")
	}
}

// TestBoundHandleConcurrentReuse: one Bound handle is immutable and may
// be executed from many goroutines at once; a sibling handle with
// different arguments sharing the same *Prepared must not interfere —
// the per-execution binding slice is the isolation boundary.
func TestBoundHandleConcurrentReuse(t *testing.T) {
	c := resultCatalog(120)
	ctx := context.Background()
	stmt, err := c.Prepare("SELECT COUNT(*) FROM facts WHERE qty > ?")
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, 13)
	for q := range counts {
		res, err := stmt.Exec(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		v, ok := res.Next().Int64(0, 0)
		if !ok {
			t.Fatal("COUNT(*) not an int")
		}
		counts[q] = v
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, err := stmt.Bind(g % 13)
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < 50; i++ {
				res, err := b.Exec(ctx)
				if err != nil {
					errs <- err
					return
				}
				v, ok := res.Next().Int64(0, 0)
				if !ok || v != counts[g%13] {
					errs <- fmt.Errorf("goroutine %d: COUNT = %d, want %d", g, v, counts[g%13])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestQueryScalarUsesPlanCache: QueryScalar routes through the
// fingerprinted plan cache like Query, so literal-varying scalar traffic
// parses its template exactly once. (The differential fuzz harness keeps
// a genuinely raw-parsed inline executor via Parse+ExecuteScalar, so this
// no longer needs QueryScalar to stay raw.) Pinned on the ParseCalls
// counter: 50 literal variants must cost one template parse.
func TestQueryScalarUsesPlanCache(t *testing.T) {
	c := resultCatalog(30)
	before := c.PlanCacheStats()
	// Warm the template with a literal shape the fingerprint normalizes.
	if _, err := c.QueryScalar("SELECT id FROM facts WHERE id < 7"); err != nil {
		t.Fatal(err)
	}
	after := c.PlanCacheStats()
	if after.Fingerprints == before.Fingerprints {
		t.Fatal("QueryScalar bypassed the fingerprint cache path")
	}
	p0 := ParseCalls()
	for i := 0; i < 50; i++ {
		res, err := c.QueryScalar(fmt.Sprintf("SELECT id FROM facts WHERE id < %d", i))
		if err != nil {
			t.Fatal(err)
		}
		if res.NumRows() != min(i, 30) {
			t.Fatalf("literal %d: got %d rows", i, res.NumRows())
		}
	}
	if d := ParseCalls() - p0; d != 0 {
		t.Fatalf("50 QueryScalar literal variants cost %d parses, want 0 (template already cached)", d)
	}
}
