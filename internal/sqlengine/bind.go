package sqlengine

import (
	"context"
	"fmt"
	"math"
	"time"

	"datalab/internal/table"
)

// Parameter binding. A prepared statement's placeholders resolve through a
// per-execution binding slice ([]table.Value indexed by slot): the cached
// AST is never mutated, so one *SelectStmt serves concurrent executions
// with different arguments. bindAt is the single resolution point used by
// every evaluator env and by the vectorized constant fast paths.

// bindAt resolves a placeholder against an execution's binding slice.
func bindAt(binds []table.Value, p *Param) (table.Value, error) {
	if p.Index < 0 || p.Index >= len(binds) {
		return table.Null(), errUnbound(p)
	}
	return binds[p.Index], nil
}

func errUnbound(p *Param) error {
	if p.Name != "" {
		return fmt.Errorf("sql: parameter :%s is not bound (execute with Prepared.Exec(ctx, args...) or Bind)", p.Name)
	}
	return fmt.Errorf("sql: parameter %d is not bound (execute with Prepared.Exec(ctx, args...) or Bind)", p.Index+1)
}

// bindValue converts one Go argument to the engine value its placeholder
// resolves to. nil binds SQL NULL; a table.Value passes through untouched.
func bindValue(arg any) (table.Value, error) {
	switch v := arg.(type) {
	case nil:
		return table.Null(), nil
	case table.Value:
		return v, nil
	case bool:
		return table.Bool(v), nil
	case int:
		return table.Int(int64(v)), nil
	case int8:
		return table.Int(int64(v)), nil
	case int16:
		return table.Int(int64(v)), nil
	case int32:
		return table.Int(int64(v)), nil
	case int64:
		return table.Int(v), nil
	case uint:
		return table.Int(int64(v)), nil
	case uint8:
		return table.Int(int64(v)), nil
	case uint16:
		return table.Int(int64(v)), nil
	case uint32:
		return table.Int(int64(v)), nil
	case uint64:
		if v > math.MaxInt64 {
			return table.Null(), fmt.Errorf("sql: uint64 argument %d overflows int64", v)
		}
		return table.Int(int64(v)), nil
	case float32:
		return table.Float(float64(v)), nil
	case float64:
		return table.Float(v), nil
	case string:
		return table.Str(v), nil
	case time.Time:
		return table.Time(v), nil
	default:
		return table.Null(), fmt.Errorf("sql: cannot bind %T as a parameter", arg)
	}
}

// bindArgs validates args against the statement's declared slots and
// converts them to the binding slice, erroring on count or kind mismatch.
func bindArgs(stmt *SelectStmt, args []any) ([]table.Value, error) {
	if len(args) != stmt.NumParams() {
		return nil, fmt.Errorf("sql: statement has %d parameter(s), got %d argument(s)", stmt.NumParams(), len(args))
	}
	if len(args) == 0 {
		return nil, nil
	}
	binds := make([]table.Value, len(args))
	for i, a := range args {
		v, err := bindValue(a)
		if err != nil {
			return nil, fmt.Errorf("sql: argument %d: %w", i+1, err)
		}
		binds[i] = v
	}
	return binds, nil
}

// resolveBinds validates the binding slice against the statement and
// resolves a placeholder LIMIT/OFFSET into a shallow copy, leaving the
// cached statement untouched for concurrent executors.
func resolveBinds(stmt *SelectStmt, binds []table.Value) (*SelectStmt, error) {
	if len(binds) != stmt.NumParams() {
		return nil, fmt.Errorf("sql: statement has %d parameter(s), %d bound", stmt.NumParams(), len(binds))
	}
	return resolveBindsLoose(stmt, binds)
}

// resolveBindsLoose is resolveBinds without the slot-count check — the
// entry point for subquery statements, whose Params list is cleared at
// parse time (slots live on the top-level statement) while their
// placeholders still resolve through the outer binding slice.
func resolveBindsLoose(stmt *SelectStmt, binds []table.Value) (*SelectStmt, error) {
	if stmt.LimitParam == nil && stmt.OffsetParam == nil {
		return stmt, nil
	}
	cp := *stmt
	if stmt.LimitParam != nil {
		n, err := bindLimitValue(binds, stmt.LimitParam, "LIMIT")
		if err != nil {
			return nil, err
		}
		cp.Limit = n
	}
	if stmt.OffsetParam != nil {
		n, err := bindLimitValue(binds, stmt.OffsetParam, "OFFSET")
		if err != nil {
			return nil, err
		}
		cp.Offset = n
	}
	return &cp, nil
}

func bindLimitValue(binds []table.Value, p *Param, clause string) (int, error) {
	v, err := bindAt(binds, p)
	if err != nil {
		return 0, err
	}
	if v.Kind != table.KindInt || v.I < 0 {
		return 0, fmt.Errorf("sql: %s requires a non-negative integer parameter, got %s", clause, v.AsString())
	}
	return int(v.I), nil
}

// Bound is a prepared statement with its arguments attached — the output
// of Prepared.Bind/BindNamed. It is immutable and safe for concurrent and
// repeated Exec.
type Bound struct {
	p     *Prepared
	binds []table.Value
}

// Exec executes the bound statement, honoring ctx cancellation.
func (b *Bound) Exec(ctx context.Context) (*Result, error) {
	return b.p.cat.executeResultBound(ctx, b.p.stmt, b.binds)
}

// SQL returns the statement text the handle was prepared from.
func (b *Bound) SQL() string { return b.p.sql }

// Bind validates args (count and representability) against the statement's
// placeholders, in slot order, and returns an executable Bound handle.
func (p *Prepared) Bind(args ...any) (*Bound, error) {
	binds, err := bindArgs(p.stmt, args)
	if err != nil {
		return nil, err
	}
	return &Bound{p: p, binds: binds}, nil
}

// BindNamed binds :name placeholders by name. Every declared name must be
// present in args, every key in args must name a slot, and the statement
// must not mix in positional placeholders.
func (p *Prepared) BindNamed(args map[string]any) (*Bound, error) {
	names := p.stmt.Params
	binds := make([]table.Value, len(names))
	for i, name := range names {
		if name == "" {
			return nil, fmt.Errorf("sql: slot %d is positional; use Bind", i+1)
		}
		a, ok := args[name]
		if !ok {
			return nil, fmt.Errorf("sql: missing argument for :%s", name)
		}
		v, err := bindValue(a)
		if err != nil {
			return nil, fmt.Errorf("sql: argument :%s: %w", name, err)
		}
		binds[i] = v
	}
	for k := range args {
		if _, ok := p.stmt.paramSlot(k); !ok {
			return nil, fmt.Errorf("sql: argument :%s does not name a parameter", k)
		}
	}
	return &Bound{p: p, binds: binds}, nil
}

// paramSlot finds the slot index of a named placeholder.
func (s *SelectStmt) paramSlot(name string) (int, bool) {
	for i, n := range s.Params {
		if n != "" && n == name {
			return i, true
		}
	}
	return 0, false
}
