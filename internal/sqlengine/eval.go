package sqlengine

import (
	"fmt"
	"math"
	"strings"

	"datalab/internal/table"
)

// env supplies column values (and, in grouped evaluation, aggregate
// results) to the expression evaluator.
type env interface {
	// resolveColumn returns the value of a (possibly qualified) column.
	resolveColumn(ref *ColumnRef) (table.Value, error)
	// resolveAggregate returns the value of an aggregate call, or an error
	// when aggregates are not valid in this context.
	resolveAggregate(fn *FuncCall) (table.Value, error)
	// resolveParam returns the value bound to a placeholder, or an error
	// when the execution carries no binding for it.
	resolveParam(p *Param) (table.Value, error)
	// resolveWindow returns the current row's value of a window function
	// call (precomputed before projection), or an error when window
	// functions are not valid in this context.
	resolveWindow(fn *FuncCall) (table.Value, error)
}

// evalExpr evaluates e in the given environment.
func evalExpr(e Expr, ev env) (table.Value, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Value, nil
	case *Param:
		return ev.resolveParam(x)
	case *ColumnRef:
		return ev.resolveColumn(x)
	case *Unary:
		v, err := evalExpr(x.X, ev)
		if err != nil {
			return table.Null(), err
		}
		switch x.Op {
		case "NOT":
			if v.IsNull() {
				return table.Null(), nil
			}
			b, ok := v.AsBool()
			if !ok {
				return table.Null(), fmt.Errorf("sql: NOT applied to non-boolean %v", v)
			}
			return table.Bool(!b), nil
		case "-":
			if v.IsNull() {
				return table.Null(), nil
			}
			if v.Kind == table.KindInt {
				return table.Int(-v.I), nil
			}
			f, ok := v.AsFloat()
			if !ok {
				return table.Null(), fmt.Errorf("sql: negation of non-numeric %v", v)
			}
			return table.Float(-f), nil
		}
		return table.Null(), fmt.Errorf("sql: unknown unary op %q", x.Op)
	case *Binary:
		return evalBinary(x, ev)
	case *FuncCall:
		if x.Over != nil {
			return ev.resolveWindow(x)
		}
		if _, isAgg := table.ParseAggFunc(x.Name); isAgg2(x.Name) || isAgg {
			return ev.resolveAggregate(x)
		}
		return evalScalarFunc(x, ev)
	case *Subquery:
		// Subqueries are inlined to literals before execution reaches the
		// evaluator; seeing one here is an engine bug, not a user error.
		return table.Null(), fmt.Errorf("sql: internal error: subquery was not inlined")
	case *In:
		if x.Sub != nil {
			return table.Null(), fmt.Errorf("sql: internal error: IN subquery was not inlined")
		}
		v, err := evalExpr(x.X, ev)
		if err != nil {
			return table.Null(), err
		}
		if v.IsNull() {
			return table.Null(), nil
		}
		found := false
		for _, cand := range x.Values {
			cv, err := evalExpr(cand, ev)
			if err != nil {
				return table.Null(), err
			}
			if !cv.IsNull() && table.Equal(v, cv) {
				found = true
				break
			}
		}
		if x.Not {
			return table.Bool(!found), nil
		}
		return table.Bool(found), nil
	case *Between:
		v, err := evalExpr(x.X, ev)
		if err != nil {
			return table.Null(), err
		}
		lo, err := evalExpr(x.Lo, ev)
		if err != nil {
			return table.Null(), err
		}
		hi, err := evalExpr(x.Hi, ev)
		if err != nil {
			return table.Null(), err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return table.Null(), nil
		}
		in := table.Compare(v, lo) >= 0 && table.Compare(v, hi) <= 0
		if x.Not {
			in = !in
		}
		return table.Bool(in), nil
	case *IsNull:
		v, err := evalExpr(x.X, ev)
		if err != nil {
			return table.Null(), err
		}
		res := v.IsNull()
		if x.Not {
			res = !res
		}
		return table.Bool(res), nil
	case *CaseExpr:
		for _, w := range x.Whens {
			c, err := evalExpr(w.Cond, ev)
			if err != nil {
				return table.Null(), err
			}
			if b, ok := c.AsBool(); ok && b {
				return evalExpr(w.Result, ev)
			}
		}
		if x.Else != nil {
			return evalExpr(x.Else, ev)
		}
		return table.Null(), nil
	case Star:
		return table.Null(), fmt.Errorf("sql: '*' is only valid in SELECT list or COUNT(*)")
	}
	return table.Null(), fmt.Errorf("sql: cannot evaluate %T", e)
}

// isAgg2 recognizes aggregate names not covered by table.ParseAggFunc.
func isAgg2(name string) bool {
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX", "STDDEV", "MEDIAN":
		return true
	}
	return false
}

func evalBinary(b *Binary, ev env) (table.Value, error) {
	// AND/OR use three-valued logic with short-circuiting.
	switch b.Op {
	case "AND", "OR":
		lv, err := evalExpr(b.L, ev)
		if err != nil {
			return table.Null(), err
		}
		lb, lok := lv.AsBool()
		if b.Op == "AND" && lok && !lb {
			return table.Bool(false), nil
		}
		if b.Op == "OR" && lok && lb {
			return table.Bool(true), nil
		}
		rv, err := evalExpr(b.R, ev)
		if err != nil {
			return table.Null(), err
		}
		rb, rok := rv.AsBool()
		switch {
		case lok && rok:
			if b.Op == "AND" {
				return table.Bool(lb && rb), nil
			}
			return table.Bool(lb || rb), nil
		case b.Op == "AND" && rok && !rb:
			return table.Bool(false), nil
		case b.Op == "OR" && rok && rb:
			return table.Bool(true), nil
		default:
			return table.Null(), nil
		}
	}

	lv, err := evalExpr(b.L, ev)
	if err != nil {
		return table.Null(), err
	}
	rv, err := evalExpr(b.R, ev)
	if err != nil {
		return table.Null(), err
	}
	switch b.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		if lv.IsNull() || rv.IsNull() {
			return table.Null(), nil
		}
		c := table.Compare(lv, rv)
		var res bool
		switch b.Op {
		case "=":
			res = c == 0
		case "<>":
			res = c != 0
		case "<":
			res = c < 0
		case "<=":
			res = c <= 0
		case ">":
			res = c > 0
		case ">=":
			res = c >= 0
		}
		return table.Bool(res), nil
	case "LIKE":
		if lv.IsNull() || rv.IsNull() {
			return table.Null(), nil
		}
		return table.Bool(likeMatch(lv.AsString(), rv.AsString())), nil
	case "||":
		if lv.IsNull() || rv.IsNull() {
			return table.Null(), nil
		}
		return table.Str(lv.AsString() + rv.AsString()), nil
	case "+", "-", "*", "/", "%":
		if lv.IsNull() || rv.IsNull() {
			return table.Null(), nil
		}
		lf, lok := lv.AsFloat()
		rf, rok := rv.AsFloat()
		if !lok || !rok {
			return table.Null(), fmt.Errorf("sql: arithmetic on non-numeric values %v %s %v", lv, b.Op, rv)
		}
		bothInt := lv.Kind == table.KindInt && rv.Kind == table.KindInt
		switch b.Op {
		case "+":
			if bothInt {
				return table.Int(lv.I + rv.I), nil
			}
			return table.Float(lf + rf), nil
		case "-":
			if bothInt {
				return table.Int(lv.I - rv.I), nil
			}
			return table.Float(lf - rf), nil
		case "*":
			if bothInt {
				return table.Int(lv.I * rv.I), nil
			}
			return table.Float(lf * rf), nil
		case "/":
			if rf == 0 {
				return table.Null(), nil
			}
			return table.Float(lf / rf), nil
		case "%":
			if rf == 0 {
				return table.Null(), nil
			}
			if bothInt {
				return table.Int(lv.I % rv.I), nil
			}
			return table.Float(math.Mod(lf, rf)), nil
		}
	}
	return table.Null(), fmt.Errorf("sql: unknown operator %q", b.Op)
}

// likeMatch implements SQL LIKE with % and _ wildcards, case-insensitively
// (SQLite semantics, which the research NL2SQL benchmarks assume).
func likeMatch(s, pattern string) bool {
	return likeRec(strings.ToLower(s), strings.ToLower(pattern))
}

func likeRec(s, p string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			// Collapse consecutive %.
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if len(s) == 0 || s[0] != p[0] {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}

// evalScalarFunc evaluates the scalar (non-aggregate) function library.
func evalScalarFunc(f *FuncCall, ev env) (table.Value, error) {
	args := make([]table.Value, len(f.Args))
	for i, a := range f.Args {
		v, err := evalExpr(a, ev)
		if err != nil {
			return table.Null(), err
		}
		args[i] = v
	}
	arity := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("sql: %s expects %d argument(s), got %d", f.Name, n, len(args))
		}
		return nil
	}
	switch f.Name {
	case "ABS":
		if err := arity(1); err != nil {
			return table.Null(), err
		}
		if args[0].IsNull() {
			return table.Null(), nil
		}
		if args[0].Kind == table.KindInt {
			if args[0].I < 0 {
				return table.Int(-args[0].I), nil
			}
			return args[0], nil
		}
		fv, ok := args[0].AsFloat()
		if !ok {
			return table.Null(), fmt.Errorf("sql: ABS of non-numeric")
		}
		return table.Float(math.Abs(fv)), nil
	case "ROUND":
		if len(args) < 1 || len(args) > 2 {
			return table.Null(), fmt.Errorf("sql: ROUND expects 1 or 2 arguments")
		}
		if args[0].IsNull() {
			return table.Null(), nil
		}
		fv, ok := args[0].AsFloat()
		if !ok {
			return table.Null(), fmt.Errorf("sql: ROUND of non-numeric")
		}
		places := int64(0)
		if len(args) == 2 {
			places, _ = args[1].AsInt()
		}
		scale := math.Pow10(int(places))
		return table.Float(math.Round(fv*scale) / scale), nil
	case "LOWER":
		if err := arity(1); err != nil {
			return table.Null(), err
		}
		if args[0].IsNull() {
			return table.Null(), nil
		}
		return table.Str(strings.ToLower(args[0].AsString())), nil
	case "UPPER":
		if err := arity(1); err != nil {
			return table.Null(), err
		}
		if args[0].IsNull() {
			return table.Null(), nil
		}
		return table.Str(strings.ToUpper(args[0].AsString())), nil
	case "LENGTH", "LEN":
		if err := arity(1); err != nil {
			return table.Null(), err
		}
		if args[0].IsNull() {
			return table.Null(), nil
		}
		return table.Int(int64(len(args[0].AsString()))), nil
	case "COALESCE", "IFNULL":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return table.Null(), nil
	case "SUBSTR", "SUBSTRING":
		if len(args) < 2 || len(args) > 3 {
			return table.Null(), fmt.Errorf("sql: SUBSTR expects 2 or 3 arguments")
		}
		if args[0].IsNull() {
			return table.Null(), nil
		}
		s := args[0].AsString()
		start, _ := args[1].AsInt()
		if start < 1 {
			start = 1
		}
		if int(start) > len(s) {
			return table.Str(""), nil
		}
		out := s[start-1:]
		if len(args) == 3 {
			length, _ := args[2].AsInt()
			if length < 0 {
				length = 0
			}
			if int(length) < len(out) {
				out = out[:length]
			}
		}
		return table.Str(out), nil
	case "YEAR":
		if err := arity(1); err != nil {
			return table.Null(), err
		}
		return timePart(args[0], "year")
	case "MONTH":
		if err := arity(1); err != nil {
			return table.Null(), err
		}
		return timePart(args[0], "month")
	case "DAY":
		if err := arity(1); err != nil {
			return table.Null(), err
		}
		return timePart(args[0], "day")
	case "NULLIF":
		if err := arity(2); err != nil {
			return table.Null(), err
		}
		if table.Equal(args[0], args[1]) {
			return table.Null(), nil
		}
		return args[0], nil
	}
	return table.Null(), fmt.Errorf("sql: unknown function %s", f.Name)
}

func timePart(v table.Value, part string) (table.Value, error) {
	if v.IsNull() {
		return table.Null(), nil
	}
	tv := v
	if tv.Kind != table.KindTime {
		tv = v.Coerce(table.KindTime)
		if tv.IsNull() {
			return table.Null(), fmt.Errorf("sql: %s() of non-temporal value %v", strings.ToUpper(part), v)
		}
	}
	switch part {
	case "year":
		return table.Int(int64(tv.T.Year())), nil
	case "month":
		return table.Int(int64(tv.T.Month())), nil
	default:
		return table.Int(int64(tv.T.Day())), nil
	}
}
