package sqlengine

import (
	"math"
	"strings"

	"datalab/internal/table"
)

// Vectorized expression evaluation: expressions are computed over whole
// column vectors (optionally restricted by a selection vector) in tight
// typed loops, instead of row-at-a-time tree walks. Any expression shape
// the vectorized paths do not cover falls back to a per-row loop around the
// scalar evaluator, so the two paths agree on results; the scalar evaluator
// itself remains available through Catalog.QueryScalar as the reference
// implementation for differential tests. The few deliberate divergences
// (error propagation in hash joins that skip non-matching pairs, natural
// kinds on empty outputs) are documented in docs/ARCHITECTURE.md.

// selLen returns the number of selected rows (sel == nil means all rows).
func selLen(rel *vrel, sel *table.Selection) int {
	if sel == nil {
		return rel.nrows
	}
	return sel.Len()
}

// evalVec evaluates e over the selected rows of rel, returning a column of
// length selLen(rel, sel). Columns returned for bare column references with
// a nil selection or a single-range selection share storage with rel (zero
// copy) and must be treated as read-only.
func evalVec(e Expr, rel *vrel, sel *table.Selection) (table.Column, error) {
	n := selLen(rel, sel)
	switch x := e.(type) {
	case *Literal:
		return constColumn(x.Value, n), nil
	case *Param:
		v, err := bindAt(rel.binds, x)
		if err != nil {
			return table.Column{}, err
		}
		return constColumn(v, n), nil
	case *ColumnRef:
		i := rel.findColumn(x)
		if i < 0 {
			return table.Column{}, errUnknownColumn(x)
		}
		if sel == nil {
			return rel.cols[i], nil
		}
		if lo, hi, ok := sel.AsRange(); ok {
			return rel.cols[i].View(lo, hi), nil
		}
		return rel.cols[i].GatherSel(sel), nil
	case *Binary:
		return evalVecBinary(x, rel, sel)
	case *Unary:
		return evalVecUnary(x, rel, sel)
	case *IsNull:
		col, err := evalVec(x.X, rel, sel)
		if err != nil {
			return table.Column{}, err
		}
		out := make([]bool, n)
		for i := 0; i < n; i++ {
			out[i] = col.IsNullAt(i) != x.Not
		}
		return table.ColumnFromBools("", out, nil), nil
	case *Between:
		if col, ok, err := evalVecBetween(x, rel, sel); ok || err != nil {
			return col, err
		}
		return rowFallback(e, rel, sel)
	case *In:
		if x.Sub != nil {
			// Not inlined — surface the internal error via the row path
			// instead of silently treating the list as empty.
			return rowFallback(e, rel, sel)
		}
		if col, ok, err := evalVecIn(x, rel, sel); ok || err != nil {
			return col, err
		}
		return rowFallback(e, rel, sel)
	case *FuncCall:
		if x.Over != nil {
			if col, ok := rel.win[x]; ok {
				// Precomputed by executePlainVec over this same selection;
				// already positional, so it is the node's value column.
				return col, nil
			}
		}
		return rowFallback(e, rel, sel)
	default:
		// CASE, scalar functions, aggregates-in-row-context (error), Star.
		return rowFallback(e, rel, sel)
	}
}

// rowFallback evaluates e row-at-a-time with the scalar evaluator over the
// columnar relation. It preserves scalar semantics exactly (including
// short-circuit error behaviour within the expression).
func rowFallback(e Expr, rel *vrel, sel *table.Selection) (table.Column, error) {
	n := selLen(rel, sel)
	vals := make([]table.Value, n)
	kind := table.KindNull
	env := &vecRowEnv{rel: rel}
	it := table.IterSelection(sel, rel.nrows)
	for i := 0; i < n; i++ {
		env.row, _ = it.Next()
		env.pos = i
		v, err := evalExpr(e, env)
		if err != nil {
			return table.Column{}, err
		}
		if kind == table.KindNull && !v.IsNull() {
			kind = v.Kind
		}
		vals[i] = v
	}
	return table.ColumnOf("", kind, vals), nil
}

// vecRowEnv adapts the columnar relation to the scalar evaluator's env.
// row is the absolute row index in rel; pos is the row's position within
// the active selection — window columns are positional, so resolveWindow
// indexes with pos, not row.
type vecRowEnv struct {
	rel *vrel
	row int
	pos int
}

func (e *vecRowEnv) resolveColumn(ref *ColumnRef) (table.Value, error) {
	i := e.rel.findColumn(ref)
	if i < 0 {
		return table.Null(), errUnknownColumn(ref)
	}
	return e.rel.cols[i].Value(e.row), nil
}

func (e *vecRowEnv) resolveAggregate(fn *FuncCall) (table.Value, error) {
	return table.Null(), errAggInRowContext(fn)
}

func (e *vecRowEnv) resolveParam(p *Param) (table.Value, error) {
	return bindAt(e.rel.binds, p)
}

func (e *vecRowEnv) resolveWindow(fn *FuncCall) (table.Value, error) {
	if col, ok := e.rel.win[fn]; ok {
		return col.Value(e.pos), nil
	}
	return table.Null(), errWindowContext(fn)
}

// constExprValue resolves e to an execution-constant value when it is a
// literal or a bound parameter, letting the vectorized LIKE/BETWEEN/IN
// fast paths accept placeholders without falling back to per-row loops.
func constExprValue(e Expr, rel *vrel) (table.Value, bool) {
	switch x := e.(type) {
	case *Literal:
		return x.Value, true
	case *Param:
		v, err := bindAt(rel.binds, x)
		if err != nil {
			return table.Null(), false // fall back; the row path reports the error
		}
		return v, true
	}
	return table.Null(), false
}

// constColumn materializes a literal as a constant vector.
func constColumn(v table.Value, n int) table.Column {
	switch v.Kind {
	case table.KindInt:
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = v.I
		}
		return table.ColumnFromInts("", vals, nil)
	case table.KindFloat:
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = v.F
		}
		return table.ColumnFromFloats("", vals, nil)
	case table.KindString:
		vals := make([]string, n)
		for i := range vals {
			vals[i] = v.S
		}
		return table.ColumnFromStrings("", vals, nil)
	case table.KindBool:
		vals := make([]bool, n)
		for i := range vals {
			vals[i] = v.B
		}
		return table.ColumnFromBools("", vals, nil)
	default:
		vals := make([]table.Value, n)
		for i := range vals {
			vals[i] = v
		}
		return table.ColumnOf("", v.Kind, vals)
	}
}

// asFloats views a column as float64s when it is typed numeric (int or
// float). The returned slice is fresh for int columns and shared for float
// columns; callers must not mutate it.
func asFloats(c *table.Column) ([]float64, []bool, bool) {
	if fs, nulls, ok := c.Floats(); ok {
		return fs, nulls, true
	}
	if is, nulls, ok := c.Ints(); ok {
		fs := make([]float64, len(is))
		for i, v := range is {
			fs[i] = float64(v)
		}
		return fs, nulls, true
	}
	return nil, nil, false
}

func evalVecUnary(x *Unary, rel *vrel, sel *table.Selection) (table.Column, error) {
	col, err := evalVec(x.X, rel, sel)
	if err != nil {
		return table.Column{}, err
	}
	switch x.Op {
	case "NOT":
		if bs, nulls, ok := col.Bools(); ok {
			out := make([]bool, len(bs))
			outNulls := make([]bool, len(bs))
			for i := range bs {
				out[i] = !bs[i]
				outNulls[i] = nulls[i]
			}
			return table.ColumnFromBools("", out, outNulls), nil
		}
	case "-":
		if is, nulls, ok := col.Ints(); ok {
			out := make([]int64, len(is))
			for i := range is {
				out[i] = -is[i]
			}
			return table.ColumnFromInts("", out, copyBools(nulls)), nil
		}
		if fs, nulls, ok := col.Floats(); ok {
			out := make([]float64, len(fs))
			for i := range fs {
				out[i] = -fs[i]
			}
			return table.ColumnFromFloats("", out, copyBools(nulls)), nil
		}
	}
	return rowFallback(x, rel, sel)
}

func copyBools(b []bool) []bool {
	return append([]bool(nil), b...)
}

func evalVecBinary(b *Binary, rel *vrel, sel *table.Selection) (table.Column, error) {
	switch b.Op {
	case "AND", "OR":
		return evalVecLogic(b, rel, sel)
	case "=", "<>", "<", "<=", ">", ">=":
		return evalVecCompare(b, rel, sel)
	case "+", "-", "*", "/", "%":
		return evalVecArith(b, rel, sel)
	case "LIKE":
		return evalVecLike(b, rel, sel)
	case "||":
		return evalVecConcat(b, rel, sel)
	}
	return rowFallback(b, rel, sel)
}

// evalVecLogic vectorizes AND/OR with three-valued logic. Both operands are
// evaluated for all rows; if the right side errors (the scalar evaluator
// might have short-circuited past the failing row), the whole node falls
// back to the row-at-a-time path, which short-circuits identically.
func evalVecLogic(b *Binary, rel *vrel, sel *table.Selection) (table.Column, error) {
	lcol, err := evalVec(b.L, rel, sel)
	if err != nil {
		return table.Column{}, err
	}
	rcol, err := evalVec(b.R, rel, sel)
	if err != nil {
		return rowFallback(b, rel, sel)
	}
	n := selLen(rel, sel)
	lb, lknown := truthVec(&lcol, n)
	rb, rknown := truthVec(&rcol, n)
	out := make([]bool, n)
	nulls := make([]bool, n)
	and := b.Op == "AND"
	for i := 0; i < n; i++ {
		switch {
		case and && lknown[i] && !lb[i]:
			out[i] = false
		case !and && lknown[i] && lb[i]:
			out[i] = true
		case lknown[i] && rknown[i]:
			if and {
				out[i] = lb[i] && rb[i]
			} else {
				out[i] = lb[i] || rb[i]
			}
		case and && rknown[i] && !rb[i]:
			out[i] = false
		case !and && rknown[i] && rb[i]:
			out[i] = true
		default:
			nulls[i] = true
		}
	}
	return table.ColumnFromBools("", out, nulls), nil
}

// truthVec converts a column to truth values: known[i] is false where the
// cell is NULL or not interpretable as a boolean (matching Value.AsBool).
func truthVec(c *table.Column, n int) (b, known []bool) {
	if bs, nulls, ok := c.Bools(); ok {
		known = make([]bool, n)
		for i := range nulls {
			known[i] = !nulls[i]
		}
		return bs, known
	}
	b = make([]bool, n)
	known = make([]bool, n)
	for i := 0; i < n; i++ {
		v := c.Value(i)
		if v.IsNull() {
			continue
		}
		if bv, ok := v.AsBool(); ok {
			b[i], known[i] = bv, true
		}
	}
	return b, known
}

func evalVecCompare(b *Binary, rel *vrel, sel *table.Selection) (table.Column, error) {
	lcol, err := evalVec(b.L, rel, sel)
	if err != nil {
		return table.Column{}, err
	}
	rcol, err := evalVec(b.R, rel, sel)
	if err != nil {
		return table.Column{}, err
	}
	n := selLen(rel, sel)
	out := make([]bool, n)
	nulls := make([]bool, n)

	apply := func(cmp func(i int) int, lnulls, rnulls []bool) table.Column {
		for i := 0; i < n; i++ {
			if lnulls[i] || rnulls[i] {
				nulls[i] = true
				continue
			}
			c := cmp(i)
			switch b.Op {
			case "=":
				out[i] = c == 0
			case "<>":
				out[i] = c != 0
			case "<":
				out[i] = c < 0
			case "<=":
				out[i] = c <= 0
			case ">":
				out[i] = c > 0
			case ">=":
				out[i] = c >= 0
			}
		}
		return table.ColumnFromBools("", out, nulls)
	}

	// int = int stays in int64 (exact); any other numeric pair compares as
	// float64, mirroring table.Compare for numeric kinds.
	if li, lnulls, ok := lcol.Ints(); ok {
		if ri, rnulls, ok2 := rcol.Ints(); ok2 {
			return apply(func(i int) int {
				switch {
				case li[i] < ri[i]:
					return -1
				case li[i] > ri[i]:
					return 1
				}
				return 0
			}, lnulls, rnulls), nil
		}
	}
	if lf, lnulls, ok := asFloats(&lcol); ok {
		if rf, rnulls, ok2 := asFloats(&rcol); ok2 {
			return apply(func(i int) int {
				switch {
				case lf[i] < rf[i]:
					return -1
				case lf[i] > rf[i]:
					return 1
				}
				return 0
			}, lnulls, rnulls), nil
		}
	}
	if ls, lnulls, ok := lcol.Strings(); ok {
		if rs, rnulls, ok2 := rcol.Strings(); ok2 {
			return apply(func(i int) int {
				return strings.Compare(ls[i], rs[i])
			}, lnulls, rnulls), nil
		}
	}
	if lt, lnulls, ok := lcol.Times(); ok {
		if rt, rnulls, ok2 := rcol.Times(); ok2 {
			return apply(func(i int) int {
				switch {
				case lt[i].Before(rt[i]):
					return -1
				case lt[i].After(rt[i]):
					return 1
				}
				return 0
			}, lnulls, rnulls), nil
		}
	}
	return rowFallback(b, rel, sel)
}

func evalVecArith(b *Binary, rel *vrel, sel *table.Selection) (table.Column, error) {
	lcol, err := evalVec(b.L, rel, sel)
	if err != nil {
		return table.Column{}, err
	}
	rcol, err := evalVec(b.R, rel, sel)
	if err != nil {
		return table.Column{}, err
	}
	n := selLen(rel, sel)

	// int op int keeps integer arithmetic (except /, which is float).
	if li, lnulls, ok := lcol.Ints(); ok && b.Op != "/" {
		if ri, rnulls, ok2 := rcol.Ints(); ok2 {
			out := make([]int64, n)
			nulls := make([]bool, n)
			for i := 0; i < n; i++ {
				if lnulls[i] || rnulls[i] {
					nulls[i] = true
					continue
				}
				switch b.Op {
				case "+":
					out[i] = li[i] + ri[i]
				case "-":
					out[i] = li[i] - ri[i]
				case "*":
					out[i] = li[i] * ri[i]
				case "%":
					if ri[i] == 0 {
						nulls[i] = true
					} else {
						out[i] = li[i] % ri[i]
					}
				}
			}
			return table.ColumnFromInts("", out, nulls), nil
		}
	}
	lf, lnulls, lok := asFloats(&lcol)
	rf, rnulls, rok := asFloats(&rcol)
	if lok && rok {
		out := make([]float64, n)
		nulls := make([]bool, n)
		for i := 0; i < n; i++ {
			if lnulls[i] || rnulls[i] {
				nulls[i] = true
				continue
			}
			switch b.Op {
			case "+":
				out[i] = lf[i] + rf[i]
			case "-":
				out[i] = lf[i] - rf[i]
			case "*":
				out[i] = lf[i] * rf[i]
			case "/":
				if rf[i] == 0 {
					nulls[i] = true
				} else {
					out[i] = lf[i] / rf[i]
				}
			case "%":
				if rf[i] == 0 {
					nulls[i] = true
				} else {
					out[i] = math.Mod(lf[i], rf[i])
				}
			}
		}
		return table.ColumnFromFloats("", out, nulls), nil
	}
	return rowFallback(b, rel, sel)
}

func evalVecLike(b *Binary, rel *vrel, sel *table.Selection) (table.Column, error) {
	pv, ok := constExprValue(b.R, rel)
	if !ok || pv.Kind != table.KindString {
		return rowFallback(b, rel, sel)
	}
	lcol, err := evalVec(b.L, rel, sel)
	if err != nil {
		return table.Column{}, err
	}
	ls, lnulls, ok := lcol.Strings()
	if !ok {
		return rowFallback(b, rel, sel)
	}
	pattern := strings.ToLower(pv.S)
	n := selLen(rel, sel)
	out := make([]bool, n)
	nulls := make([]bool, n)
	for i := 0; i < n; i++ {
		if lnulls[i] {
			nulls[i] = true
			continue
		}
		out[i] = likeRec(strings.ToLower(ls[i]), pattern)
	}
	return table.ColumnFromBools("", out, nulls), nil
}

func evalVecConcat(b *Binary, rel *vrel, sel *table.Selection) (table.Column, error) {
	lcol, err := evalVec(b.L, rel, sel)
	if err != nil {
		return table.Column{}, err
	}
	rcol, err := evalVec(b.R, rel, sel)
	if err != nil {
		return table.Column{}, err
	}
	ls, lnulls, lok := lcol.Strings()
	rs, rnulls, rok := rcol.Strings()
	if !lok || !rok {
		return rowFallback(b, rel, sel)
	}
	n := selLen(rel, sel)
	out := make([]string, n)
	nulls := make([]bool, n)
	for i := 0; i < n; i++ {
		if lnulls[i] || rnulls[i] {
			nulls[i] = true
			continue
		}
		out[i] = ls[i] + rs[i]
	}
	return table.ColumnFromStrings("", out, nulls), nil
}

// evalVecBetween vectorizes X BETWEEN lo AND hi for numeric X with non-NULL
// numeric constant bounds (literals or bound parameters). ok=false means
// the caller should fall back.
func evalVecBetween(x *Between, rel *vrel, sel *table.Selection) (table.Column, bool, error) {
	loV, ok1 := constExprValue(x.Lo, rel)
	hiV, ok2 := constExprValue(x.Hi, rel)
	if !ok1 || !ok2 {
		return table.Column{}, false, nil
	}
	lo, lok := loV.AsFloat()
	hi, hok := hiV.AsFloat()
	if !lok || !hok || !isNumericLit(loV) || !isNumericLit(hiV) {
		return table.Column{}, false, nil
	}
	col, err := evalVec(x.X, rel, sel)
	if err != nil {
		return table.Column{}, true, err
	}
	fs, nullsIn, ok := asFloats(&col)
	if !ok {
		return table.Column{}, false, nil
	}
	n := selLen(rel, sel)
	out := make([]bool, n)
	nulls := make([]bool, n)
	for i := 0; i < n; i++ {
		if nullsIn[i] {
			nulls[i] = true
			continue
		}
		in := fs[i] >= lo && fs[i] <= hi
		out[i] = in != x.Not
	}
	return table.ColumnFromBools("", out, nulls), true, nil
}

func isNumericLit(v table.Value) bool {
	return v.Kind == table.KindInt || v.Kind == table.KindFloat
}

// evalVecIn vectorizes X IN (constants...) — literals or bound parameters —
// when X is typed numeric with an all-numeric list, or typed string with an
// all-string list. Mixed-kind membership (which compares through
// table.Equal's lenient rules) falls back. NULL list entries are ignored,
// matching the scalar evaluator.
func evalVecIn(x *In, rel *vrel, sel *table.Selection) (table.Column, bool, error) {
	lits := make([]table.Value, 0, len(x.Values))
	for _, cand := range x.Values {
		v, ok := constExprValue(cand, rel)
		if !ok {
			return table.Column{}, false, nil
		}
		if v.IsNull() {
			continue
		}
		lits = append(lits, v)
	}
	col, err := evalVec(x.X, rel, sel)
	if err != nil {
		return table.Column{}, true, err
	}
	n := selLen(rel, sel)

	if fs, nullsIn, ok := asFloats(&col); ok {
		set := make(map[float64]bool, len(lits))
		for _, v := range lits {
			if !isNumericLit(v) {
				return table.Column{}, false, nil
			}
			f, _ := v.AsFloat()
			set[f] = true
		}
		out := make([]bool, n)
		nulls := make([]bool, n)
		for i := 0; i < n; i++ {
			if nullsIn[i] {
				nulls[i] = true
				continue
			}
			out[i] = set[fs[i]] != x.Not
		}
		return table.ColumnFromBools("", out, nulls), true, nil
	}
	if ss, nullsIn, ok := col.Strings(); ok {
		set := make(map[string]bool, len(lits))
		for _, v := range lits {
			if v.Kind != table.KindString {
				return table.Column{}, false, nil
			}
			set[v.S] = true
		}
		out := make([]bool, n)
		nulls := make([]bool, n)
		for i := 0; i < n; i++ {
			if nullsIn[i] {
				nulls[i] = true
				continue
			}
			out[i] = set[ss[i]] != x.Not
		}
		return table.ColumnFromBools("", out, nulls), true, nil
	}
	return table.Column{}, false, nil
}
