package sqlengine

import (
	"strings"

	"datalab/internal/table"
)

// Query fingerprinting. Agent-generated traffic is dominated by one SQL
// template issued with ever-changing literals; keyed on exact text, the
// plan cache misses on every query. Fingerprint normalizes a text into a
// parameter template plus the extracted literal values, so Query/QueryCtx
// can key the plan cache by template and execute the cached statement with
// the values as bindings — structurally identical queries parse once.
//
// Extraction is token-based and deliberately conservative:
//
//   - Number, string, and bare NULL literals are replaced by `?`; the
//     template keeps every other byte of the original text, so quoting and
//     whitespace survive untouched. Quoted identifiers ("5", `5`) are
//     ident tokens and are never extracted.
//   - Only literals in FROM/ON, WHERE, HAVING, LIMIT and OFFSET positions
//     are extracted. Select-list literals name output columns, and GROUP
//     BY / ORDER BY integers are positional references — parameterizing
//     either would change results.
//   - The NULL terminating IS [NOT] NULL is grammar, not a literal.
//   - A parenthesized subquery runs the zone machine recursively: its
//     clause keywords scope to the subquery, and the surrounding zone is
//     restored at the closing paren — a LIMIT inside `IN (SELECT ...)`
//     must not turn extraction on for the outer GROUP BY / ORDER BY.
//   - ROWS frame bounds (`ROWS BETWEEN 2 PRECEDING ...`) are grammar,
//     not literals; the ROWS keyword turns extraction off.
//   - IN-lists extract per element, so lists of different arity normalize
//     to distinct templates with matching slot counts.
//   - Texts that already contain placeholders are returned unchanged
//     (ok=false): their slot indexes would collide with extracted ones.
//
// Callers must verify the parsed template declares exactly len(values)
// slots before executing (planQuery falls back to the raw text otherwise),
// which keeps any literal position the grammar does not parameterize —
// e.g. a string select-item alias — correct rather than merely cached.

// Fingerprint normalizes sql into a parameter template and the literal
// values extracted from it, in slot order. ok=false means the text could
// not be fingerprinted (lex error, or placeholders already present) and
// must be planned as-is. With ok=true and no extractable literals, the
// template is the input text itself.
func Fingerprint(sql string) (template string, values []table.Value, ok bool) {
	toks, err := lex(sql)
	if err != nil {
		return sql, nil, false
	}
	var sb strings.Builder
	last := 0
	extract := false // false until FROM: the select list never parameterizes
	// Subquery zones: entering `(SELECT` saves the surrounding zone state,
	// the matching close paren restores it.
	depth := 0
	type subFrame struct {
		depth int
		saved bool
	}
	var subs []subFrame
	replace := func(t *token, v table.Value) {
		sb.WriteString(sql[last:t.pos])
		sb.WriteByte('?')
		last = t.end
		values = append(values, v)
	}
	for k := range toks {
		t := &toks[k]
		switch t.kind {
		case tokParam:
			return sql, nil, false
		case tokOp:
			switch t.text {
			case "(":
				depth++
				if k+1 < len(toks) && toks[k+1].kind == tokKeyword && toks[k+1].text == "SELECT" {
					subs = append(subs, subFrame{depth: depth, saved: extract})
				}
			case ")":
				if n := len(subs); n > 0 && subs[n-1].depth == depth {
					extract = subs[n-1].saved
					subs = subs[:n-1]
				}
				depth--
			}
		case tokKeyword:
			switch t.text {
			case "FROM", "ON", "WHERE", "HAVING", "LIMIT", "OFFSET":
				extract = true
			case "SELECT", "GROUP", "ORDER", "ROWS":
				extract = false
			case "NULL":
				if extract && !isNullPredicate(toks, k) {
					replace(t, table.Null())
				}
			}
		case tokNumber:
			if !extract {
				continue
			}
			v, err := literalFromNumber(t.text)
			if err != nil {
				return sql, nil, false
			}
			replace(t, v)
		case tokString:
			if extract {
				replace(t, table.Str(t.text))
			}
		}
	}
	if len(values) == 0 {
		return sql, nil, true
	}
	sb.WriteString(sql[last:])
	return sb.String(), values, true
}

// isNullPredicate reports whether the NULL keyword at toks[k] terminates an
// IS [NOT] NULL predicate.
func isNullPredicate(toks []token, k int) bool {
	if k >= 1 && toks[k-1].kind == tokKeyword && toks[k-1].text == "IS" {
		return true
	}
	return k >= 2 && toks[k-1].kind == tokKeyword && toks[k-1].text == "NOT" &&
		toks[k-2].kind == tokKeyword && toks[k-2].text == "IS"
}
