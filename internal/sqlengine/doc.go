// Package sqlengine implements the in-memory SQL engine DataLab executes
// SQL cells and generated queries against. It supports the dialect the
// paper's workloads need: single/multi-table SELECT with JOIN ... ON
// (INNER, LEFT, RIGHT, and FULL OUTER), WHERE, GROUP BY, HAVING, ORDER
// BY, LIMIT/OFFSET, DISTINCT, scalar expressions, and the standard
// aggregate functions. Execution Accuracy (EX) compares result multisets
// produced by this engine.
//
// # Entry points
//
// A [Catalog] is the database: a registry of tables plus an LRU plan
// cache. The primary query path is [Catalog.QueryCtx], which parses
// through the plan cache, executes with the vectorized engine honoring
// context cancellation, and returns a typed batch-iterable [Result].
// [Catalog.Prepare] returns a reusable [Prepared] statement whose Exec
// never re-enters the parser. [Catalog.Query] materializes a full
// table.Table; [Catalog.QueryScalar] runs the row-at-a-time reference
// executor the vectorized paths are differentially tested against.
//
// # Execution model
//
// The vectorized executor works on vrel relations — shared schema plus
// zero-copy references to catalog column storage. WHERE produces a
// table.Selection (range spans or dense indices) instead of copying rows;
// joins run the parallel selection-aware pair pipeline in join.go;
// grouping hashes rows into per-group selections; ORDER BY runs the typed
// memcmp sort kernel in sort.go. Large inputs partition across a
// process-wide bounded worker pool (parallel.go) shared by every
// concurrent query. Any expression shape the vectorized code does not
// special-case falls back to a per-row loop around the scalar evaluator,
// which keeps the two executors in agreement by construction.
//
// See docs/ENGINE.md at the repository root for the full query lifecycle
// with diagrams, and docs/ARCHITECTURE.md for design rationale.
package sqlengine
