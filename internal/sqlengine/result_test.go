package sqlengine

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"datalab/internal/table"
)

// resultCatalog builds a small catalog with every typed kind, NULLs, and a
// dimension table for joins.
func resultCatalog(rows int) *Catalog {
	t := table.MustNew("facts",
		[]string{"id", "region", "amount", "qty", "flag"},
		[]table.Kind{table.KindInt, table.KindString, table.KindFloat, table.KindInt, table.KindBool})
	regions := []string{"east", "west", "north", "south"}
	for i := 0; i < rows; i++ {
		amount := table.Float(float64(i%97) * 1.5)
		if i%11 == 0 {
			amount = table.Null()
		}
		t.MustAppendRow(
			table.Int(int64(i)),
			table.Str(regions[i%len(regions)]),
			amount,
			table.Int(int64(i%13)),
			table.Bool(i%2 == 0),
		)
	}
	dim := table.MustNew("dim",
		[]string{"k", "label"},
		[]table.Kind{table.KindInt, table.KindString})
	for k := 0; k < 13; k++ {
		dim.MustAppendRow(table.Int(int64(k)), table.Str(fmt.Sprintf("L%d", k)))
	}
	c := NewCatalog()
	c.Register(t)
	c.Register(dim)
	return c
}

// dumpResult renders a Result through its batch iterator in dumpTable's
// format, so the two paths can be compared strictly.
func dumpResult(r *Result) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(r.Columns(), "|"))
	sb.WriteByte('\n')
	for b := r.Next(); b != nil; b = r.Next() {
		for i := 0; i < b.NumRows(); i++ {
			for j := 0; j < b.NumCols(); j++ {
				sb.WriteString(b.cols[j].Value(i).Key())
				sb.WriteByte('|')
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// TestResultMatchesTableExecutor runs a corpus of query shapes — lazy-
// eligible plain scans, scattered and clustered WHERE, OFFSET/LIMIT
// windows, grouping, ordering, DISTINCT, joins, computed projections —
// through both ExecuteResult and the materializing executor and requires
// identical output, via both the batch iterator and Strings().
func TestResultMatchesTableExecutor(t *testing.T) {
	for _, rows := range []int{0, 1, 100, 3000, 2*parallelMinRows + 100} {
		c := resultCatalog(rows)
		queries := []string{
			"SELECT id, amount FROM facts",                                                    // lazy, nil selection
			"SELECT * FROM facts",                                                             // lazy star expansion
			"SELECT amount, id FROM facts WHERE qty < 6",                                      // lazy, scattered selection
			"SELECT id FROM facts WHERE id < 50",                                              // lazy, one span
			"SELECT id, region FROM facts WHERE id >= 10 LIMIT 25",                            // lazy + LIMIT pushdown
			"SELECT id FROM facts LIMIT 10 OFFSET 7",                                          // lazy + OFFSET drop
			"SELECT id FROM facts OFFSET 4",                                                   // lazy OFFSET without LIMIT
			"SELECT id, amount FROM facts WHERE flag LIMIT 9999999",                           // LIMIT beyond table
			"SELECT id AS key, amount total FROM facts WHERE qty=3",                           // lazy with aliases
			"SELECT id+1 AS next, amount FROM facts WHERE qty < 4",                            // computed → materialized
			"SELECT DISTINCT region FROM facts",                                               // DISTINCT → materialized
			"SELECT id, amount FROM facts ORDER BY amount DESC, id",                           // ORDER BY → materialized
			"SELECT id FROM facts ORDER BY amount LIMIT 5 OFFSET 3",                           // top-K window
			"SELECT region, SUM(amount), COUNT(*) FROM facts GROUP BY region ORDER BY 2 DESC", // grouped
			"SELECT COUNT(*), AVG(amount) FROM facts WHERE qty > 2",                           // global aggregate
			"SELECT f.id, d.label FROM facts f JOIN dim d ON f.qty = d.k WHERE f.id < 40",     // join (lazy-shaped tail)
		}
		for _, q := range queries {
			tbl, terr := c.Query(q)
			res, rerr := c.QueryCtx(context.Background(), q)
			if (terr == nil) != (rerr == nil) {
				t.Fatalf("rows=%d query %q: error mismatch: table=%v result=%v", rows, q, terr, rerr)
			}
			if terr != nil {
				continue
			}
			want := dumpTable(tbl)
			if got := dumpResult(res); got != want {
				t.Errorf("rows=%d query %q: batch iteration mismatch\n-- result --\n%s\n-- table --\n%s", rows, q, got, want)
			}
			res.Reset()
			if got := dumpResult(res); got != want {
				t.Errorf("rows=%d query %q: mismatch after Reset", rows, q)
			}
			strs := res.Strings()
			if len(strs) != tbl.NumRows() {
				t.Fatalf("rows=%d query %q: Strings() rows = %d, want %d", rows, q, len(strs), tbl.NumRows())
			}
			for i := range strs {
				for j := range strs[i] {
					if want := tbl.Columns[j].Value(i).AsString(); strs[i][j] != want {
						t.Fatalf("rows=%d query %q: Strings()[%d][%d] = %q, want %q", rows, q, i, j, strs[i][j], want)
					}
				}
			}
		}
	}
}

// TestResultRandomizedAgainstTable drives the Result path through the same
// randomized query generator the differential fuzz harness uses.
func TestResultRandomizedAgainstTable(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		c := randCatalog(rng, rng.Intn(500)+1)
		for i := 0; i < 20; i++ {
			q := randQuery(rng)
			tbl, terr := c.Query(q)
			res, rerr := c.QueryCtx(context.Background(), q)
			if (terr == nil) != (rerr == nil) {
				t.Fatalf("query %q: error mismatch: table=%v result=%v", q, terr, rerr)
			}
			if terr != nil {
				continue
			}
			if got, want := dumpResult(res), dumpTable(tbl); got != want {
				t.Fatalf("query %q: mismatch\n-- result --\n%s\n-- table --\n%s", q, got, want)
			}
		}
	}
}

// TestLazyResultSharesStorage pins the zero-copy property: a plain
// filtered projection's batches must alias the catalog column's typed
// storage, not a copy.
func TestLazyResultSharesStorage(t *testing.T) {
	c := resultCatalog(10_000)
	base, _ := c.Table("facts")
	baseInts, _, ok := base.Columns[0].Ints()
	if !ok {
		t.Fatal("id column not typed")
	}
	res, err := c.QueryCtx(context.Background(), "SELECT id FROM facts WHERE id >= 100")
	if err != nil {
		t.Fatal(err)
	}
	b := res.Next()
	if b == nil {
		t.Fatal("no batch")
	}
	is, _, ok := b.Int64s(0)
	if !ok {
		t.Fatal("batch not typed")
	}
	if &is[0] != &baseInts[100] {
		t.Error("lazy batch does not alias base storage (copied)")
	}
	// Materialized results must NOT alias base storage.
	res2, err := c.QueryCtx(context.Background(), "SELECT id FROM facts ORDER BY id LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	b2 := res2.Next()
	is2, _, ok := b2.Int64s(0)
	if !ok || len(is2) == 0 {
		t.Fatal("ordered batch not typed")
	}
	if &is2[0] == &baseInts[0] {
		t.Error("materialized batch aliases base storage")
	}
}

// TestBatchAccessors covers the typed cell accessors, null handling, and
// type mismatches.
func TestBatchAccessors(t *testing.T) {
	c := resultCatalog(50)
	res, err := c.QueryCtx(context.Background(), "SELECT id, region, amount, flag FROM facts")
	if err != nil {
		t.Fatal(err)
	}
	b := res.Next()
	if b.NumCols() != 4 || b.NumRows() != 50 {
		t.Fatalf("batch shape = %dx%d", b.NumCols(), b.NumRows())
	}
	if v, ok := b.Int64(0, 7); !ok || v != 7 {
		t.Errorf("Int64(0,7) = %d,%v", v, ok)
	}
	if _, ok := b.Int64(1, 0); ok {
		t.Error("Int64 over string column should fail")
	}
	if s := b.String(1, 2); s != "north" {
		t.Errorf("String(1,2) = %q", s)
	}
	if !b.IsNull(2, 0) { // amount is NULL every 11th row, starting at 0
		t.Error("IsNull(2,0) = false, want true")
	}
	if _, ok := b.Float64(2, 0); ok {
		t.Error("Float64 of NULL should fail")
	}
	if v, ok := b.Float64(2, 1); !ok || v != 1.5 {
		t.Errorf("Float64(2,1) = %v,%v", v, ok)
	}
	if v, ok := b.Float64(0, 3); !ok || v != 3 { // int promotes
		t.Errorf("Float64(0,3) = %v,%v", v, ok)
	}
	ss, nulls, ok := b.StringsCol(1)
	if !ok || len(ss) != 50 || nulls[0] {
		t.Error("StringsCol failed")
	}
	fs, _, ok := b.Float64s(2)
	if !ok || len(fs) != 50 {
		t.Error("Float64s failed")
	}
}

// TestPlanCacheLRU checks hit/miss accounting, fingerprint collapsing,
// and capacity eviction.
func TestPlanCacheLRU(t *testing.T) {
	c := resultCatalog(10)
	q := "SELECT id FROM facts"
	for i := 0; i < 5; i++ {
		if _, err := c.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	st := c.PlanCacheStats()
	if st.Hits != 4 || st.Misses != 1 || st.Size != 1 {
		t.Fatalf("stats after 5 repeats = %d hits, %d misses, %d entries", st.Hits, st.Misses, st.Size)
	}
	// Literal-varying texts fingerprint to one template: a single new
	// entry no matter how many distinct texts arrive.
	for i := 0; i < 50; i++ {
		if _, err := c.Query(fmt.Sprintf("SELECT id FROM facts WHERE id = %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	st = c.PlanCacheStats()
	if st.Size != 2 {
		t.Fatalf("50 literal variants grew the cache to %d entries, want 2", st.Size)
	}
	if st.Hits != 4+49 || st.Misses != 2 {
		t.Fatalf("stats after literal variants = %d hits, %d misses", st.Hits, st.Misses)
	}
	if st.Fingerprints != 50 {
		t.Fatalf("fingerprinted lookups = %d, want 50", st.Fingerprints)
	}
	// Structurally distinct texts beyond capacity evict the oldest.
	// Distinct column aliases defeat fingerprint collapsing (the select
	// list is never rewritten), so each text is its own template.
	for i := 0; i < DefaultPlanCacheSize+10; i++ {
		if _, err := c.Query(fmt.Sprintf("SELECT id AS c%d FROM facts", i)); err != nil {
			t.Fatal(err)
		}
	}
	st = c.PlanCacheStats()
	if st.Size != DefaultPlanCacheSize {
		t.Fatalf("cache size = %d, want cap %d", st.Size, DefaultPlanCacheSize)
	}
	if st.Cap != DefaultPlanCacheSize {
		t.Fatalf("cache cap = %d, want %d", st.Cap, DefaultPlanCacheSize)
	}
	if st.Evictions < 10 {
		t.Fatalf("evictions = %d, want >= 10", st.Evictions)
	}
	// Parse errors are not cached.
	if _, err := c.Query("SELECT FROM"); err == nil {
		t.Fatal("bad SQL accepted")
	}
	if st := c.PlanCacheStats(); st.Size != DefaultPlanCacheSize {
		t.Fatal("parse error was cached")
	}
}

// TestPreparedAmortizesParse is the acceptance check for prepared
// statements: 100 re-executions must not re-enter the parser.
func TestPreparedAmortizesParse(t *testing.T) {
	c := resultCatalog(100)
	stmt, err := c.Prepare("SELECT region, SUM(amount) FROM facts GROUP BY region")
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.Query(stmt.SQL())
	if err != nil {
		t.Fatal(err)
	}
	before := ParseCalls()
	for i := 0; i < 100; i++ {
		res, err := stmt.Exec(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if got := dumpResult(res); got != dumpTable(want) {
			t.Fatalf("exec %d diverged", i)
		}
	}
	if after := ParseCalls(); after != before {
		t.Fatalf("100 prepared executions parsed %d times", after-before)
	}
}

// TestPreparedBindsAtExecute: a prepared statement observes table
// re-registration (names bind at execute, not prepare).
func TestPreparedBindsAtExecute(t *testing.T) {
	c := NewCatalog()
	stmt, err := c.Prepare("SELECT v FROM live")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Exec(context.Background()); err == nil {
		t.Fatal("exec against unregistered table should fail")
	}
	tb := table.MustNew("live", []string{"v"}, []table.Kind{table.KindInt})
	tb.MustAppendRow(table.Int(42))
	c.Register(tb)
	res, err := stmt.Exec(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 {
		t.Fatalf("rows = %d", res.NumRows())
	}
}

// TestQueryCtxCancelled: an already-cancelled context fails fast with
// ctx.Err() before any scan work.
func TestQueryCtxCancelled(t *testing.T) {
	c := resultCatalog(100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.QueryCtx(ctx, "SELECT id FROM facts"); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	stmt, err := c.Prepare("SELECT id FROM facts")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Exec(ctx); err != context.Canceled {
		t.Fatalf("prepared exec err = %v, want context.Canceled", err)
	}
}

// TestCancellationMidScan cancels contexts racing against 100k-row queries
// (parallel WHERE, parallel sort, grouped aggregation). Every outcome must
// be either a clean result or ctx.Err() — never a partial result or a
// panic — at least one cancellation must actually land mid-flight, and no
// worker goroutine may leak.
func TestCancellationMidScan(t *testing.T) {
	c := resultCatalog(100_000)
	queries := []string{
		"SELECT id, amount FROM facts WHERE qty < 9 AND amount > 10",
		"SELECT id, amount FROM facts ORDER BY amount DESC, id",
		"SELECT region, SUM(amount), COUNT(*) FROM facts WHERE qty < 11 GROUP BY region",
	}
	wantRows := make([]int, len(queries))
	for i, q := range queries {
		tbl, err := c.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		wantRows[i] = tbl.NumRows()
	}

	before := runtime.NumGoroutine()
	cancelled := 0
	for trial := 0; trial < 120; trial++ {
		qi := trial % len(queries)
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		wg.Add(1)
		var res *Result
		var err error
		go func() {
			defer wg.Done()
			res, err = c.QueryCtx(ctx, queries[qi])
		}()
		// Stagger the cancel across the query's lifetime.
		time.Sleep(time.Duration(trial%8) * 50 * time.Microsecond)
		cancel()
		wg.Wait()
		switch {
		case err == nil:
			if res.NumRows() != wantRows[qi] {
				t.Fatalf("trial %d: successful query returned %d rows, want %d (partial result leaked through)",
					trial, res.NumRows(), wantRows[qi])
			}
		case err == context.Canceled:
			cancelled++
		default:
			t.Fatalf("trial %d: unexpected error %v", trial, err)
		}
	}
	if cancelled == 0 {
		t.Error("no trial observed a mid-flight cancellation; staggering too coarse?")
	}
	// Worker goroutines are transient: after all queries end, the count
	// must return to the baseline (allowing scheduler lag).
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestResultLifecycle pins the cursor state machine the server's cursor
// registry depends on: exhaustion is sticky until an explicit Rewind,
// Rewind replays identical batches in both lazy and materialized modes,
// and Close is terminal — Next yields nothing, Err/Rewind report
// ErrResultClosed, Strings/Table degrade to nil, and a second Close is a
// no-op.
func TestResultLifecycle(t *testing.T) {
	c := resultCatalog(3000)
	for _, q := range []string{
		"SELECT id, amount FROM facts WHERE qty < 9",       // lazy view mode
		"SELECT id, amount FROM facts ORDER BY amount, id", // materialized mode
	} {
		res, err := c.QueryCtx(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		first := dumpResult(res)
		// Exhausted, not closed: Next stays nil, Err stays nil.
		for i := 0; i < 3; i++ {
			if b := res.Next(); b != nil {
				t.Fatalf("query %q: Next after exhaustion returned a batch", q)
			}
		}
		if err := res.Err(); err != nil {
			t.Fatalf("query %q: Err after exhaustion = %v, want nil", q, err)
		}
		// Rewind replays the identical result.
		if err := res.Rewind(); err != nil {
			t.Fatalf("query %q: Rewind = %v", q, err)
		}
		if got := dumpResult(res); got != first {
			t.Fatalf("query %q: second iteration after Rewind diverged", q)
		}
		// Close is terminal and idempotent.
		if err := res.Close(); err != nil {
			t.Fatalf("query %q: Close = %v", q, err)
		}
		if err := res.Close(); err != nil {
			t.Fatalf("query %q: second Close = %v", q, err)
		}
		if b := res.Next(); b != nil {
			t.Fatalf("query %q: Next after Close returned a batch", q)
		}
		if err := res.Err(); err != ErrResultClosed {
			t.Fatalf("query %q: Err after Close = %v, want ErrResultClosed", q, err)
		}
		if err := res.Rewind(); err != ErrResultClosed {
			t.Fatalf("query %q: Rewind after Close = %v, want ErrResultClosed", q, err)
		}
		if rows := res.Strings(); rows != nil {
			t.Fatalf("query %q: Strings after Close = %d rows, want nil", q, len(rows))
		}
		if tbl := res.Table("x"); tbl != nil {
			t.Fatalf("query %q: Table after Close != nil", q)
		}
		// Metadata survives Close.
		if res.NumRows() == 0 || len(res.Columns()) != 2 {
			t.Fatalf("query %q: metadata lost after Close", q)
		}
	}
}

// TestBatchValueAccessor pins the kind-preserving cell accessor wire
// encoders use: each Kind round-trips, NULL reports as such.
func TestBatchValueAccessor(t *testing.T) {
	c := resultCatalog(12)
	res, err := c.QueryCtx(context.Background(), "SELECT id, region, amount, flag FROM facts")
	if err != nil {
		t.Fatal(err)
	}
	b := res.Next()
	if v := b.Value(0, 5); v.Kind != table.KindInt {
		t.Fatalf("Value(0,5).Kind = %v, want int", v.Kind)
	}
	if v := b.Value(1, 2); v.Kind != table.KindString || v.AsString() != "north" {
		t.Fatalf("Value(1,2) = %v %q", v.Kind, v.AsString())
	}
	if v := b.Value(2, 0); !v.IsNull() { // amount NULL every 11th row
		t.Fatal("Value(2,0) should be NULL")
	}
	if v := b.Value(3, 4); v.Kind != table.KindBool {
		t.Fatalf("Value(3,4).Kind = %v, want bool", v.Kind)
	}
}
