package sqlengine

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"datalab/internal/table"
)

// parseCalls counts Parse invocations — the observability hook behind
// ParseCalls, which tests and metrics use to prove that plan-cache hits
// and prepared-statement re-execution never re-enter the parser.
var parseCalls atomic.Int64

// ParseCalls reports the total number of Parse invocations in this
// process.
func ParseCalls() int64 { return parseCalls.Load() }

// Parse parses a single SELECT statement.
func Parse(sql string) (*SelectStmt, error) {
	parseCalls.Add(1)
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if err := validateSelect(stmt); err != nil {
		return nil, err
	}
	// Allow a trailing semicolon.
	if p.peek().kind == tokOp && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("sql: unexpected trailing input %q", p.peek().text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int

	params []string       // binding slot names in slot order ("" = positional)
	named  map[string]int // :name -> slot, so repeated names share a slot
}

// paramRef allocates (or, for a repeated :name, reuses) the binding slot
// for a placeholder token.
func (p *parser) paramRef(t token) *Param {
	if strings.HasPrefix(t.text, ":") {
		name := t.text[1:]
		if i, ok := p.named[name]; ok {
			return &Param{Index: i, Name: name}
		}
		if p.named == nil {
			p.named = map[string]int{}
		}
		idx := len(p.params)
		p.named[name] = idx
		p.params = append(p.params, name)
		return &Param{Index: idx, Name: name}
	}
	idx := len(p.params)
	p.params = append(p.params, "")
	return &Param{Index: idx}
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) backup()     { p.pos-- }
func (p *parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokKeyword && t.text == kw
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.atKeyword(kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sql: expected %s, found %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) acceptOp(op string) bool {
	t := p.peek()
	if t.kind == tokOp && t.text == op {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return fmt.Errorf("sql: expected %q, found %q", op, p.peek().text)
	}
	return nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	stmt.Distinct = p.acceptKeyword("DISTINCT")

	// Select list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.acceptOp(",") {
			break
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, alias, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	stmt.From, stmt.FromAs = name, alias

	// JOIN clauses.
	for {
		kind := table.JoinInner
		switch {
		case p.acceptKeyword("JOIN"):
		case p.acceptKeyword("INNER"):
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		case p.acceptKeyword("LEFT"):
			p.acceptKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			kind = table.JoinLeft
		case p.acceptKeyword("RIGHT"):
			p.acceptKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			kind = table.JoinRight
		case p.acceptKeyword("FULL"):
			p.acceptKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			kind = table.JoinFull
		default:
			goto afterJoins
		}
		jname, jalias, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, JoinClause{Kind: kind, Table: jname, Alias: jalias, On: on})
	}
afterJoins:

	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, g)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		n1, p1, err := p.parseLimitTerm()
		if err != nil {
			return nil, err
		}
		if p.acceptOp(",") { // LIMIT offset, count (MySQL form)
			n2, p2, err := p.parseLimitTerm()
			if err != nil {
				return nil, err
			}
			stmt.Offset, stmt.OffsetParam = n1, p1
			stmt.Limit, stmt.LimitParam = n2, p2
		} else {
			stmt.Limit, stmt.LimitParam = n1, p1
		}
		if stmt.LimitParam != nil {
			stmt.Limit = -1 // resolved from the bindings at execute time
		}
	}
	if p.acceptKeyword("OFFSET") {
		n, prm, err := p.parseLimitTerm()
		if err != nil {
			return nil, err
		}
		stmt.Offset, stmt.OffsetParam = n, prm
	}
	stmt.Params = p.params
	return stmt, nil
}

// parseSubSelect parses a nested SELECT in a subquery position. The
// subquery shares the outer statement's binding-slot space (placeholders
// inside it allocate outer slots), so its own Params list is cleared —
// only the top-level statement declares slots; subquery execution passes
// the outer binding slice through unchecked (resolveBindsLoose).
func (p *parser) parseSubSelect() (*SelectStmt, error) {
	sub, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if err := validateSelect(sub); err != nil {
		return nil, err
	}
	sub.Params = nil
	return sub, nil
}

// validateSelect enforces statement-level placement rules for window
// functions once a statement (or subquery) finishes parsing, so malformed
// shapes fail at parse time with targeted messages instead of deep in an
// executor.
func validateSelect(stmt *SelectStmt) error {
	for _, j := range stmt.Joins {
		if exprHasWindow(j.On) {
			return fmt.Errorf("sql: window functions are not allowed in JOIN ON")
		}
	}
	if stmt.Where != nil && exprHasWindow(stmt.Where) {
		return fmt.Errorf("sql: window functions are not allowed in WHERE")
	}
	for _, g := range stmt.GroupBy {
		if exprHasWindow(g) {
			return fmt.Errorf("sql: window functions are not allowed in GROUP BY")
		}
	}
	if stmt.Having != nil && exprHasWindow(stmt.Having) {
		return fmt.Errorf("sql: window functions are not allowed in HAVING")
	}
	var wins []*FuncCall
	for _, it := range stmt.Items {
		wins = collectWindowCalls(it.Expr, wins)
	}
	for _, o := range stmt.OrderBy {
		wins = collectWindowCalls(o.Expr, wins)
	}
	if len(wins) == 0 {
		return nil
	}
	if len(stmt.GroupBy) > 0 || stmt.Having != nil || selectHasAggregate(stmt) {
		return fmt.Errorf("sql: window functions cannot be combined with GROUP BY or aggregates")
	}
	for _, fn := range wins {
		inner := append([]Expr{}, fn.Args...)
		inner = append(inner, fn.Over.PartitionBy...)
		for _, o := range fn.Over.OrderBy {
			inner = append(inner, o.Expr)
		}
		for _, e := range inner {
			if exprHasWindow(e) {
				return fmt.Errorf("sql: window functions cannot be nested")
			}
			if exprHasAggregate(e) {
				return fmt.Errorf("sql: aggregates are not allowed inside a window function")
			}
			if exprHasSubquery(e) {
				return fmt.Errorf("sql: subqueries are not allowed inside a window function")
			}
		}
	}
	return nil
}

// parseLimitTerm parses a LIMIT/OFFSET operand: a non-negative integer
// literal, or a placeholder resolved at execute time.
func (p *parser) parseLimitTerm() (int, *Param, error) {
	t := p.peek()
	if t.kind == tokParam {
		p.next()
		return 0, p.paramRef(t), nil
	}
	if t.kind != tokNumber {
		return 0, nil, fmt.Errorf("sql: expected number, found %q", t.text)
	}
	p.next()
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, nil, fmt.Errorf("sql: bad integer %q", t.text)
	}
	return n, nil, nil
}

// literalFromNumber converts a number token's text to its literal value.
// It is shared by the parser and the fingerprint normalizer so extracted
// parameters carry exactly the value inline parsing would have produced.
func literalFromNumber(text string) (table.Value, error) {
	if strings.Contains(text, ".") {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return table.Null(), fmt.Errorf("sql: bad number %q", text)
		}
		return table.Float(f), nil
	}
	i, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return table.Null(), fmt.Errorf("sql: bad number %q", text)
	}
	return table.Int(i), nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptOp("*") {
		return SelectItem{Expr: Star{}}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		t := p.peek()
		if t.kind != tokIdent && t.kind != tokString {
			return SelectItem{}, fmt.Errorf("sql: expected alias, found %q", t.text)
		}
		p.next()
		item.Alias = t.text
	} else if t := p.peek(); t.kind == tokIdent {
		// Bare alias: SELECT amount total FROM ...
		p.next()
		item.Alias = t.text
	}
	return item, nil
}

func (p *parser) parseTableRef() (name, alias string, err error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", "", fmt.Errorf("sql: expected table name, found %q", t.text)
	}
	p.next()
	name = t.text
	// Optional db.table qualification collapses into the table name.
	if p.acceptOp(".") {
		t2 := p.peek()
		if t2.kind != tokIdent {
			return "", "", fmt.Errorf("sql: expected table after %q.", name)
		}
		p.next()
		name = name + "." + t2.text
	}
	if p.acceptKeyword("AS") {
		t2 := p.peek()
		if t2.kind != tokIdent {
			return "", "", fmt.Errorf("sql: expected alias, found %q", t2.text)
		}
		p.next()
		alias = t2.text
	} else if t2 := p.peek(); t2.kind == tokIdent {
		p.next()
		alias = t2.text
	}
	return name, alias, nil
}

// Expression grammar (precedence climbing):
//   expr    := orExpr
//   orExpr  := andExpr (OR andExpr)*
//   andExpr := notExpr (AND notExpr)*
//   notExpr := NOT notExpr | predicate
//   predicate := additive [cmpOp additive | IS [NOT] NULL | [NOT] IN (...) | [NOT] BETWEEN ... | [NOT] LIKE additive]
//   additive := multiplicative (("+"|"-"|"||") multiplicative)*
//   multiplicative := unary (("*"|"/"|"%") unary)*
//   unary   := "-" unary | primary
//   primary := literal | funcCall | columnRef | "(" expr ")" | CASE ...

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.acceptKeyword("IS") {
		not := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{X: left, Not: not}, nil
	}
	not := false
	if p.atKeyword("NOT") {
		// Lookahead for NOT IN / NOT BETWEEN / NOT LIKE.
		p.next()
		if p.atKeyword("IN") || p.atKeyword("BETWEEN") || p.atKeyword("LIKE") {
			not = true
		} else {
			p.backup()
			return left, nil
		}
	}
	switch {
	case p.acceptKeyword("IN"):
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		in := &In{X: left, Not: not}
		if p.atKeyword("SELECT") {
			sub, err := p.parseSubSelect()
			if err != nil {
				return nil, err
			}
			if len(sub.Items) != 1 {
				return nil, fmt.Errorf("sql: IN subquery must return exactly one column, got %d", len(sub.Items))
			}
			in.Sub = sub
		} else {
			for {
				v, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				in.Values = append(in.Values, v)
				if !p.acceptOp(",") {
					break
				}
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return in, nil
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Between{X: left, Lo: lo, Hi: hi, Not: not}, nil
	case p.acceptKeyword("LIKE"):
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		like := Expr(&Binary{Op: "LIKE", L: left, R: pat})
		if not {
			like = &Unary{Op: "NOT", X: like}
		}
		return like, nil
	}
	// Comparison operators.
	for _, op := range []string{"<=", ">=", "<>", "!=", "=", "<", ">"} {
		if p.acceptOp(op) {
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			canonical := op
			if op == "!=" {
				canonical = "<>"
			}
			return &Binary{Op: canonical, L: left, R: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptOp("+"):
			op = "+"
		case p.acceptOp("-"):
			op = "-"
		case p.acceptOp("||"):
			op = "||"
		default:
			return left, nil
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptOp("*"):
			op = "*"
		case p.acceptOp("/"):
			op = "/"
		case p.acceptOp("%"):
			op = "%"
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		v, err := literalFromNumber(t.text)
		if err != nil {
			return nil, err
		}
		return &Literal{Value: v}, nil
	case tokParam:
		p.next()
		return p.paramRef(t), nil
	case tokString:
		p.next()
		return &Literal{Value: table.Str(t.text)}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return &Literal{Value: table.Null()}, nil
		case "TRUE":
			p.next()
			return &Literal{Value: table.Bool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Value: table.Bool(false)}, nil
		case "CASE":
			return p.parseCase()
		}
		return nil, fmt.Errorf("sql: unexpected keyword %q in expression", t.text)
	case tokIdent:
		p.next()
		// Function call?
		if p.acceptOp("(") {
			fn := &FuncCall{Name: strings.ToUpper(t.text)}
			if p.acceptOp("*") {
				fn.IsStar = true
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
			} else {
				fn.Distinct = p.acceptKeyword("DISTINCT")
				if !p.acceptOp(")") {
					for {
						arg, err := p.parseExpr()
						if err != nil {
							return nil, err
						}
						fn.Args = append(fn.Args, arg)
						if !p.acceptOp(",") {
							break
						}
					}
					if err := p.expectOp(")"); err != nil {
						return nil, err
					}
				}
			}
			if p.acceptKeyword("OVER") {
				if err := p.parseWindowSpec(fn); err != nil {
					return nil, err
				}
			} else if rankingFuncs[fn.Name] {
				return nil, fmt.Errorf("sql: %s requires an OVER clause", fn.Name)
			}
			return fn, nil
		}
		// Qualified column?
		if p.acceptOp(".") {
			t2 := p.peek()
			if t2.kind == tokOp && t2.text == "*" {
				p.next()
				// t.* — treat as Star scoped to the table; the executor
				// expands it like a bare star over that table's columns.
				return &ColumnRef{Table: t.text, Name: "*"}, nil
			}
			if t2.kind != tokIdent {
				return nil, fmt.Errorf("sql: expected column after %q.", t.text)
			}
			p.next()
			return &ColumnRef{Table: t.text, Name: t2.text}, nil
		}
		return &ColumnRef{Name: t.text}, nil
	case tokOp:
		if t.text == "(" {
			p.next()
			if p.atKeyword("SELECT") {
				sub, err := p.parseSubSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				if len(sub.Items) != 1 {
					return nil, fmt.Errorf("sql: scalar subquery must return exactly one column, got %d", len(sub.Items))
				}
				return &Subquery{Stmt: sub}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("sql: unexpected token %q in expression", t.text)
}

// rankingFuncs are window-only functions: they are meaningless without an
// OVER clause and take no arguments.
var rankingFuncs = map[string]bool{
	"ROW_NUMBER": true, "RANK": true, "DENSE_RANK": true,
}

// windowAggFuncs are the plain aggregates that may also run as window
// functions over a partition/frame.
var windowAggFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// parseWindowSpec parses the parenthesized OVER specification following a
// function call and validates the call/spec combination.
func (p *parser) parseWindowSpec(fn *FuncCall) error {
	if !p.acceptOp("(") {
		return fmt.Errorf("sql: expected ( after OVER, found %q", p.peek().text)
	}
	w := &WindowSpec{}
	if p.acceptKeyword("PARTITION") {
		if err := p.expectKeyword("BY"); err != nil {
			return err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			w.PartitionBy = append(w.PartitionBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			w.OrderBy = append(w.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("ROWS") {
		if len(w.OrderBy) == 0 {
			return fmt.Errorf("sql: ROWS frame requires ORDER BY in the OVER clause")
		}
		if err := p.expectKeyword("BETWEEN"); err != nil {
			return err
		}
		f := &WindowFrame{}
		if p.acceptKeyword("UNBOUNDED") {
			f.Unbounded = true
		} else {
			t := p.peek()
			if t.kind != tokNumber {
				return fmt.Errorf("sql: expected UNBOUNDED or a row count in ROWS frame, found %q", t.text)
			}
			p.next()
			n, err := strconv.ParseInt(t.text, 10, 64)
			if err != nil {
				return fmt.Errorf("sql: bad frame bound %q", t.text)
			}
			f.Preceding = n
		}
		if err := p.expectKeyword("PRECEDING"); err != nil {
			return err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return err
		}
		if err := p.expectKeyword("CURRENT"); err != nil {
			return err
		}
		if err := p.expectKeyword("ROW"); err != nil {
			return err
		}
		w.Frame = f
	}
	if !p.acceptOp(")") {
		return fmt.Errorf("sql: unclosed OVER ( — expected PARTITION BY, ORDER BY, ROWS, or ), found %q", p.peek().text)
	}
	fn.Over = w
	return validateWindowCall(fn)
}

// validateWindowCall checks argument and spec constraints per window
// function family.
func validateWindowCall(fn *FuncCall) error {
	switch {
	case rankingFuncs[fn.Name]:
		if len(fn.Args) > 0 || fn.IsStar {
			return fmt.Errorf("sql: %s() takes no arguments", fn.Name)
		}
		if len(fn.Over.OrderBy) == 0 {
			return fmt.Errorf("sql: %s() requires ORDER BY in its OVER clause", fn.Name)
		}
		if fn.Over.Frame != nil {
			return fmt.Errorf("sql: %s() does not accept a ROWS frame", fn.Name)
		}
	case windowAggFuncs[fn.Name]:
		if fn.Distinct {
			return fmt.Errorf("sql: DISTINCT is not supported in window function %s", fn.Name)
		}
		if fn.IsStar && fn.Name != "COUNT" {
			return fmt.Errorf("sql: %s(*) is not a valid window function", fn.Name)
		}
		if !fn.IsStar && len(fn.Args) != 1 {
			return fmt.Errorf("sql: window function %s takes exactly one argument", fn.Name)
		}
	default:
		return fmt.Errorf("sql: %s is not a supported window function", fn.Name)
	}
	return nil
}

func (p *parser) parseCase() (Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	c := &CaseExpr{}
	// Simple form: CASE operand WHEN v THEN r ... — desugared to the
	// searched form with operand = v conditions.
	var operand Expr
	if !p.atKeyword("WHEN") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		operand = e
	}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if operand != nil {
			cond = &Binary{Op: "=", L: operand, R: cond}
		}
		c.Whens = append(c.Whens, WhenClause{Cond: cond, Result: res})
	}
	if len(c.Whens) == 0 {
		return nil, fmt.Errorf("sql: CASE without WHEN")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}
