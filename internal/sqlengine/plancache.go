package sqlengine

import (
	"container/list"
	"context"
	"sync"
)

// DefaultPlanCacheSize is the number of distinct SQL texts a catalog's LRU
// plan cache retains. Parsed statements are immutable during execution, so
// one cached *SelectStmt is shared by every concurrent executor of the
// same SQL.
const DefaultPlanCacheSize = 256

// planCache is a mutex-guarded LRU from SQL text to parsed statement.
// Parse errors are not cached: failing texts are rare, unbounded in
// variety, and re-parsing them keeps error messages exact.
type planCache struct {
	mu           sync.Mutex
	cap          int
	ll           *list.List // front = most recently used
	bySQL        map[string]*list.Element
	hits, misses int64
}

type planEntry struct {
	sql  string
	stmt *SelectStmt
}

func newPlanCache(capacity int) *planCache {
	return &planCache{cap: capacity, ll: list.New(), bySQL: make(map[string]*list.Element, capacity)}
}

func (pc *planCache) get(sql string) (*SelectStmt, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.bySQL[sql]; ok {
		pc.ll.MoveToFront(el)
		pc.hits++
		return el.Value.(*planEntry).stmt, true
	}
	pc.misses++
	return nil, false
}

func (pc *planCache) put(sql string, stmt *SelectStmt) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.bySQL[sql]; ok { // raced with another parser of the same text
		pc.ll.MoveToFront(el)
		return
	}
	pc.bySQL[sql] = pc.ll.PushFront(&planEntry{sql: sql, stmt: stmt})
	for pc.ll.Len() > pc.cap {
		oldest := pc.ll.Back()
		pc.ll.Remove(oldest)
		delete(pc.bySQL, oldest.Value.(*planEntry).sql)
	}
}

func (pc *planCache) stats() (hits, misses int64, size int) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.hits, pc.misses, pc.ll.Len()
}

// plan returns the parsed statement for sql, consulting the LRU plan cache
// so repeated texts parse once. The returned statement is shared and must
// be treated as read-only (the executors never mutate the AST).
func (c *Catalog) plan(sql string) (*SelectStmt, error) {
	if stmt, ok := c.plans.get(sql); ok {
		return stmt, nil
	}
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	c.plans.put(sql, stmt)
	return stmt, nil
}

// PlanCacheStats reports the catalog's plan-cache hit/miss counters and
// current entry count, for metrics and tests.
func (c *Catalog) PlanCacheStats() (hits, misses int64, size int) {
	return c.plans.stats()
}

// Prepared is a statement parsed (and plan-cached) once and executable many
// times: the prepared-statement handle behind Platform.Prepare. It is
// immutable and safe for concurrent Exec from many goroutines.
type Prepared struct {
	cat  *Catalog
	sql  string
	stmt *SelectStmt
}

// Prepare parses sql once and returns a reusable handle bound to the
// catalog. Re-executing the handle never touches the parser again.
func (c *Catalog) Prepare(sql string) (*Prepared, error) {
	stmt, err := c.plan(sql)
	if err != nil {
		return nil, err
	}
	return &Prepared{cat: c, sql: sql, stmt: stmt}, nil
}

// SQL returns the statement text the handle was prepared from.
func (p *Prepared) SQL() string { return p.sql }

// Exec executes the prepared statement, honoring ctx cancellation, and
// returns a typed Result. Each call re-executes against the catalog's
// current table registrations (names bind at execute, not at prepare).
func (p *Prepared) Exec(ctx context.Context) (*Result, error) {
	return p.cat.ExecuteResult(ctx, p.stmt)
}
