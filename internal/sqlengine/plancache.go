package sqlengine

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"

	"datalab/internal/table"
)

// DefaultPlanCacheSize is the number of distinct plan-cache keys a catalog
// retains. Keys are parameter templates for fingerprinted Query/QueryCtx
// texts and exact SQL texts otherwise. Parsed statements are immutable
// during execution, so one cached *SelectStmt is shared by every
// concurrent executor of the same template.
const DefaultPlanCacheSize = 256

// planCache is a mutex-guarded LRU from plan key to parsed statement.
// Parse errors are not cached: failing texts are rare, unbounded in
// variety, and re-parsing them keeps error messages exact.
type planCache struct {
	mu            sync.Mutex
	cap           int
	ll            *list.List // front = most recently used
	bySQL         map[string]*list.Element
	hits, misses  int64
	evictions     int64
	invalidations int64        // full clears on schema-changing Register
	fingerprints  atomic.Int64 // Query texts normalized to a template
}

type planEntry struct {
	sql  string
	stmt *SelectStmt
}

func newPlanCache(capacity int) *planCache {
	return &planCache{cap: capacity, ll: list.New(), bySQL: make(map[string]*list.Element, capacity)}
}

func (pc *planCache) get(sql string) (*SelectStmt, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.bySQL[sql]; ok {
		pc.ll.MoveToFront(el)
		pc.hits++
		return el.Value.(*planEntry).stmt, true
	}
	pc.misses++
	return nil, false
}

func (pc *planCache) put(sql string, stmt *SelectStmt) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.bySQL[sql]; ok { // raced with another parser of the same text
		pc.ll.MoveToFront(el)
		return
	}
	pc.bySQL[sql] = pc.ll.PushFront(&planEntry{sql: sql, stmt: stmt})
	for pc.ll.Len() > pc.cap {
		oldest := pc.ll.Back()
		pc.ll.Remove(oldest)
		delete(pc.bySQL, oldest.Value.(*planEntry).sql)
		pc.evictions++
	}
}

// invalidate clears every cached plan. It runs when a table is
// re-registered with a different schema: cached statements stay
// syntactically valid, but dropping them gives post-change executions a
// clean planning slate and makes the schema change observable in stats.
func (pc *planCache) invalidate() {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.ll.Init()
	pc.bySQL = make(map[string]*list.Element, pc.cap)
	pc.invalidations++
}

// PlanCacheStats is a point-in-time snapshot of a catalog's plan-cache
// counters, for metrics and tests.
type PlanCacheStats struct {
	Hits          int64 // lookups answered from the cache
	Misses        int64 // lookups that fell through to the parser
	Evictions     int64 // LRU entries dropped after the cache filled
	Invalidations int64 // full clears caused by schema-changing Register
	Fingerprints  int64 // Query/QueryCtx texts normalized to a parameter template
	Size          int   // current entry count
	Cap           int   // maximum entry count
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s PlanCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

func (pc *planCache) statsSnapshot() PlanCacheStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return PlanCacheStats{
		Hits:          pc.hits,
		Misses:        pc.misses,
		Evictions:     pc.evictions,
		Invalidations: pc.invalidations,
		Fingerprints:  pc.fingerprints.Load(),
		Size:          pc.ll.Len(),
		Cap:           pc.cap,
	}
}

// plan returns the parsed statement for sql, consulting the LRU plan cache
// so repeated texts parse once. The returned statement is shared and must
// be treated as read-only (the executors never mutate the AST).
func (c *Catalog) plan(sql string) (*SelectStmt, error) {
	if stmt, ok := c.plans.get(sql); ok {
		return stmt, nil
	}
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	c.plans.put(sql, stmt)
	return stmt, nil
}

// planQuery is the Query/QueryCtx planning front end: the text is
// fingerprinted to a parameter template (see Fingerprint) so literal-
// varying traffic shares one cache entry, and the extracted values come
// back as the execution's bindings. Texts that carry placeholders already,
// fail to normalize, or extract nothing plan by exact text with no
// bindings.
func (c *Catalog) planQuery(sql string) (*SelectStmt, []table.Value, error) {
	tmpl, vals, ok := Fingerprint(sql)
	if ok && len(vals) > 0 {
		c.plans.fingerprints.Add(1)
		if stmt, hit := c.plans.get(tmpl); hit {
			if stmt.NumParams() == len(vals) {
				return stmt, vals, nil
			}
		} else if stmt, err := Parse(tmpl); err == nil && stmt.NumParams() == len(vals) {
			c.plans.put(tmpl, stmt)
			return stmt, vals, nil
		}
		// The template disagrees with the extraction: a literal sat in a
		// position the grammar does not parameterize (e.g. a string
		// select-item alias). Plan the raw text instead — semantics and
		// error messages stay exact.
	}
	stmt, err := c.plan(sql)
	return stmt, nil, err
}

// PlanCacheStats reports the catalog's plan-cache counters and current
// entry count.
func (c *Catalog) PlanCacheStats() PlanCacheStats {
	return c.plans.statsSnapshot()
}

// Prepared is a statement parsed (and plan-cached) once and executable many
// times: the prepared-statement handle behind Platform.Prepare. It is
// immutable and safe for concurrent Exec from many goroutines.
//
// Statements may declare placeholders (? positional, :name named) wherever
// a literal is legal, including LIMIT/OFFSET; Exec binds args to them in
// slot order on every call. Hot loops that format literals into the SQL
// text re-parse on every iteration — prepare a placeholder template once
// and bind instead.
type Prepared struct {
	cat  *Catalog
	sql  string
	stmt *SelectStmt
}

// Prepare parses sql once and returns a reusable handle bound to the
// catalog. Re-executing the handle never touches the parser again.
func (c *Catalog) Prepare(sql string) (*Prepared, error) {
	stmt, err := c.plan(sql)
	if err != nil {
		return nil, err
	}
	return &Prepared{cat: c, sql: sql, stmt: stmt}, nil
}

// SQL returns the statement text the handle was prepared from.
func (p *Prepared) SQL() string { return p.sql }

// NumParams reports the number of binding slots the statement declares.
func (p *Prepared) NumParams() int { return p.stmt.NumParams() }

// ParamNames returns the statement's slot names in slot order; positional
// slots are "".
func (p *Prepared) ParamNames() []string { return p.stmt.ParamNames() }

// Exec executes the prepared statement, honoring ctx cancellation, and
// returns a typed Result. args bind the statement's placeholders in slot
// order (none for a statement without placeholders) and are validated
// before execution. Each call re-executes against the catalog's current
// table registrations (names bind at execute, not at prepare).
func (p *Prepared) Exec(ctx context.Context, args ...any) (*Result, error) {
	binds, err := bindArgs(p.stmt, args)
	if err != nil {
		return nil, err
	}
	return p.cat.executeResultBound(ctx, p.stmt, binds)
}
