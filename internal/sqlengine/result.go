package sqlengine

import (
	"errors"

	"datalab/internal/table"
)

// ErrResultClosed is returned by Result.Err (and Result.Rewind) after
// Close: the cursor's storage references have been released and no further
// iteration is possible. Next on a closed Result returns nil.
var ErrResultClosed = errors.New("sqlengine: result is closed")

// BatchRows is the batch granularity for Result iteration: large enough
// that per-batch overhead vanishes against cell access, small enough that
// a batch's working set stays cache-resident. Exported so wire protocols
// can advertise the batch ceiling to clients.
const BatchRows = 1024

// defaultBatchRows is the internal alias iteration uses.
const defaultBatchRows = BatchRows

// Result is the typed, batch-iterable handle over a query's columnar
// result set — the replacement for materializing [][]string. A Result is
// produced in one of two modes, invisible to the caller:
//
//   - lazy view mode (plain SELECT of bare columns, no ORDER BY/DISTINCT):
//     the Result holds zero-copy references to the catalog table's columns
//     plus the WHERE selection, and batches are zero-copy views over
//     contiguous selection spans. Nothing row-sized is ever allocated.
//   - materialized mode (grouping, ordering, computed expressions,
//     DISTINCT): the Result owns freshly built output columns and batches
//     are zero-copy views over those.
//
// Iterate with Next until it returns nil:
//
//	res, _ := cat.QueryCtx(ctx, sql)
//	for b := res.Next(); b != nil; b = res.Next() {
//		for i := 0; i < b.NumRows(); i++ { ... b.Float64(1, i) ... }
//	}
//
// A Result is a single-consumer cursor: Next is not safe for concurrent
// use (execute the query once per consumer instead). The accessor methods
// (Columns, NumRows, Strings) are read-only and do not move the cursor.
// All columns reachable through a Result are strictly read-only — lazy
// results share storage with the catalog.
//
// The cursor lifecycle is fully defined — long-lived holders like the
// server's cursor registry depend on every state being pinned:
//
//   - exhausted: Next returns nil and keeps returning nil; iterating a
//     second time requires an explicit Rewind (or the legacy Reset).
//   - Rewind: rewinds to the first batch. A Result is always rewindable —
//     lazy results view an immutable pinned snapshot and materialized
//     results own their storage — so no spill is ever needed.
//   - Close: releases the column and selection references (un-pinning the
//     snapshot they held). Next returns nil, Err and Rewind return
//     ErrResultClosed, Strings returns nil. Close is idempotent.
type Result struct {
	names []string
	cols  []table.Column   // one per output column; lazy mode shares base storage
	sel   *table.Selection // lazy row selection; nil = all rows [0, total)
	total int              // result row count

	cur     Batch
	emitted int
	spanIdx int // cursor within span-form selections
	spanOff int
	closed  bool
}

// newTableResult wraps a fully materialized output table.
func newTableResult(t *table.Table) *Result {
	return &Result{
		names: t.ColumnNames(),
		cols:  t.Columns,
		total: t.NumRows(),
	}
}

// newLazyResult wraps base-table columns plus a selection, without
// materializing anything. cols must already carry their output names;
// sel == nil selects all rows of the base columns.
func newLazyResult(names []string, cols []table.Column, sel *table.Selection) *Result {
	total := 0
	if sel != nil {
		total = sel.Len()
	} else if len(cols) > 0 {
		total = cols[0].Len()
	}
	return &Result{names: names, cols: cols, sel: sel, total: total}
}

// Columns returns the output column names in order.
func (r *Result) Columns() []string { return r.names }

// NumCols returns the number of output columns.
func (r *Result) NumCols() int { return len(r.cols) }

// NumRows returns the total number of result rows, independent of how far
// iteration has advanced.
func (r *Result) NumRows() int { return r.total }

// Next returns the next batch of up to 1024 rows, or nil when the result
// is exhausted. The returned batch (and the storage behind its typed
// accessors) is only valid until the following Next call.
func (r *Result) Next() *Batch {
	if r.closed || r.emitted >= r.total {
		return nil
	}
	n := defaultBatchRows
	if rem := r.total - r.emitted; n > rem {
		n = rem
	}
	if r.sel == nil {
		lo := r.emitted
		r.fillView(lo, lo+n)
	} else if spans, ok := r.sel.Spans(); ok {
		sp := spans[r.spanIdx]
		lo := sp.Lo + r.spanOff
		if m := sp.Hi - lo; n > m {
			n = m
		}
		r.fillView(lo, lo+n)
		r.spanOff += n
		if lo+n == sp.Hi {
			r.spanIdx++
			r.spanOff = 0
		}
	} else {
		idx := r.sel.Indices() // dense form: the internal ascending slice
		r.fillGather(idx[r.emitted : r.emitted+n])
	}
	r.emitted += n
	return &r.cur
}

// Rewind moves the cursor back to the first batch so the result can be
// iterated again. It returns ErrResultClosed after Close and nil
// otherwise (including mid-iteration and after exhaustion).
func (r *Result) Rewind() error {
	if r.closed {
		return ErrResultClosed
	}
	r.emitted, r.spanIdx, r.spanOff = 0, 0, 0
	return nil
}

// Reset rewinds the cursor so the result can be iterated again. It is a
// no-op on a closed Result; callers that need to observe that condition
// should use Rewind.
func (r *Result) Reset() { _ = r.Rewind() }

// Close releases the cursor's references to its column storage and
// selection — for lazy results, the pin on the catalog snapshot they were
// executed against. After Close, Next returns nil, Err and Rewind return
// ErrResultClosed, and Strings returns nil; Columns and NumRows stay
// valid. Close is idempotent and always returns nil.
func (r *Result) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	r.cols, r.sel, r.cur = nil, nil, Batch{}
	return nil
}

// Err reports the cursor's terminal condition: ErrResultClosed after
// Close, nil otherwise. An exhausted-but-open Result is not an error —
// Next returning nil with Err() == nil means the rows simply ran out.
func (r *Result) Err() error {
	if r.closed {
		return ErrResultClosed
	}
	return nil
}

// fillView points the cursor batch at zero-copy views of rows [lo, hi).
func (r *Result) fillView(lo, hi int) {
	if r.cur.cols == nil {
		r.cur.cols = make([]table.Column, len(r.cols))
	}
	for i := range r.cols {
		r.cur.cols[i] = r.cols[i].View(lo, hi)
	}
	r.cur.n = hi - lo
}

// fillGather materializes the cursor batch for scattered rows (dense-form
// selections): one bounded gather per column per batch.
func (r *Result) fillGather(idx []int) {
	if r.cur.cols == nil {
		r.cur.cols = make([]table.Column, len(r.cols))
	}
	for i := range r.cols {
		r.cur.cols[i] = r.cols[i].Gather(idx)
	}
	r.cur.n = len(idx)
}

// Strings materializes the entire result as display strings — the
// compatibility path behind the deprecated stringly APIs. NULL cells
// render as "". It does not move the batch cursor.
func (r *Result) Strings() [][]string {
	if r.closed {
		return nil
	}
	rows := make([][]string, 0, r.total)
	it := table.IterSelection(r.sel, r.total)
	for {
		ri, ok := it.Next()
		if !ok {
			break
		}
		row := make([]string, len(r.cols))
		for j := range r.cols {
			row[j] = r.cols[j].Value(ri).AsString()
		}
		rows = append(rows, row)
	}
	return rows
}

// Table materializes the result as a table that owns its storage. On a
// closed Result it returns nil (the storage is gone).
func (r *Result) Table(name string) *table.Table {
	if r.closed {
		return nil
	}
	out := &table.Table{Name: name, Columns: make([]table.Column, len(r.cols))}
	for i := range r.cols {
		if r.sel == nil {
			out.Columns[i] = r.cols[i].CloneData()
		} else {
			out.Columns[i] = r.cols[i].GatherSel(r.sel)
		}
		out.Columns[i].Name = r.names[i]
	}
	return out
}

// Batch is one window of result rows: zero-copy column views with typed,
// null-aware accessors. Row indices are batch-local (0 <= row < NumRows).
type Batch struct {
	cols []table.Column
	n    int
}

// NumRows returns the number of rows in the batch.
func (b *Batch) NumRows() int { return b.n }

// NumCols returns the number of columns.
func (b *Batch) NumCols() int { return len(b.cols) }

// IsNull reports whether the cell at (col, row) is NULL.
func (b *Batch) IsNull(col, row int) bool { return b.cols[col].IsNullAt(row) }

// Int64 returns the cell as an int64 straight from typed storage.
// ok is false for NULLs and non-integer cells.
func (b *Batch) Int64(col, row int) (int64, bool) {
	c := &b.cols[col]
	if is, nulls, typed := c.Ints(); typed {
		if nulls[row] {
			return 0, false
		}
		return is[row], true
	}
	v := c.Value(row)
	if v.IsNull() || v.Kind != table.KindInt {
		return 0, false
	}
	return v.AsInt()
}

// Float64 returns the cell as a float64 (int cells promote). ok is false
// for NULLs and non-numeric cells.
func (b *Batch) Float64(col, row int) (float64, bool) {
	return b.cols[col].FloatAt(row)
}

// String returns the cell rendered as a string; NULL renders as "".
func (b *Batch) String(col, row int) string {
	return b.cols[col].Value(row).AsString()
}

// Value returns the cell as a boxed table.Value — the kind-preserving
// accessor for generic consumers (wire encoders, differential harnesses)
// that must distinguish ints, floats, bools, strings, and NULL without
// probing each typed accessor in turn.
func (b *Batch) Value(col, row int) table.Value {
	return b.cols[col].Value(row)
}

// Int64s returns the batch's int64 slab for one column: values, null
// bitmap, ok. ok is false when the column is not typed int64 storage.
// The slices are zero-copy views and must not be mutated.
func (b *Batch) Int64s(col int) ([]int64, []bool, bool) { return b.cols[col].Ints() }

// Float64s returns the batch's float64 slab for one column (see Int64s).
func (b *Batch) Float64s(col int) ([]float64, []bool, bool) { return b.cols[col].Floats() }

// StringsCol returns the batch's string slab for one column (see Int64s).
func (b *Batch) StringsCol(col int) ([]string, []bool, bool) { return b.cols[col].Strings() }
