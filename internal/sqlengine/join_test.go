package sqlengine

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"datalab/internal/table"
)

// joinTestCatalog builds a probe table of n rows plus two join targets:
// fanout (three rows per key 0..7, so every probe row multi-matches) and
// sparse (keys 0..3 only, so half the probe rows take outer padding, plus
// keys 100..101 no probe row carries).
func joinTestCatalog(n int) *Catalog {
	probe := table.MustNew("probe",
		[]string{"id", "k", "v"},
		[]table.Kind{table.KindInt, table.KindInt, table.KindFloat})
	for i := 0; i < n; i++ {
		probe.MustAppendRow(table.Int(int64(i)), table.Int(int64(i%8)), table.Float(float64(i%97)))
	}
	fanout := table.MustNew("fanout",
		[]string{"fk", "tag", "w"},
		[]table.Kind{table.KindInt, table.KindString, table.KindFloat})
	for k := 0; k < 8; k++ {
		for d := 0; d < 3; d++ {
			fanout.MustAppendRow(table.Int(int64(k)), table.Str(fmt.Sprintf("t%d_%d", k, d)), table.Float(float64(k*3+d)))
		}
	}
	sparse := table.MustNew("sparse",
		[]string{"sk", "label"},
		[]table.Kind{table.KindInt, table.KindString})
	for k := 0; k < 4; k++ {
		sparse.MustAppendRow(table.Int(int64(k)), table.Str(fmt.Sprintf("s%d", k)))
	}
	sparse.MustAppendRow(table.Int(100), table.Str("orphan0"))
	sparse.MustAppendRow(table.Int(101), table.Str("orphan1"))
	c := NewCatalog()
	c.Register(probe)
	c.Register(fanout)
	c.Register(sparse)
	return c
}

func TestJoinRightOuterSQL(t *testing.T) {
	c := joinTestCatalog(16)
	// Every sparse row is preserved: keys 0..3 match probe rows (two each
	// at n=16), keys 100/101 pad the probe side with NULLs.
	res := mustQuery(t, c, "SELECT probe.id, sparse.label FROM probe RIGHT JOIN sparse ON probe.k = sparse.sk")
	if res.NumRows() != 4*2+2 {
		t.Fatalf("rows = %d, want 10", res.NumRows())
	}
	// Output follows right-row order; the two orphans come last, padded.
	for i := res.NumRows() - 2; i < res.NumRows(); i++ {
		if !res.Get(i, "id").IsNull() {
			t.Errorf("row %d id = %v, want NULL padding", i, res.Get(i, "id"))
		}
	}
	if res.Get(res.NumRows()-2, "label").S != "orphan0" {
		t.Errorf("orphan label = %v", res.Get(res.NumRows()-2, "label"))
	}
}

func TestJoinFullOuterSQL(t *testing.T) {
	c := joinTestCatalog(16)
	// 16 probe rows: k 0..3 match (8 rows), k 4..7 pad right (8 rows),
	// then the two unmatched sparse orphans pad left, appended last.
	res := mustQuery(t, c, "SELECT probe.id, sparse.label FROM probe FULL OUTER JOIN sparse ON probe.k = sparse.sk")
	if res.NumRows() != 16+2 {
		t.Fatalf("rows = %d, want 18", res.NumRows())
	}
	padded := 0
	for i := 0; i < 16; i++ {
		if res.Get(i, "id").IsNull() {
			t.Errorf("row %d: probe side padded before the sweep", i)
		}
		if res.Get(i, "label").IsNull() {
			padded++
		}
	}
	if padded != 8 {
		t.Errorf("right-padded rows = %d, want 8", padded)
	}
	for i := 16; i < 18; i++ {
		if !res.Get(i, "id").IsNull() || res.Get(i, "label").IsNull() {
			t.Errorf("sweep row %d = (%v, %v), want (NULL, label)", i, res.Get(i, "id"), res.Get(i, "label"))
		}
	}
}

func TestJoinMultiMatchResidual(t *testing.T) {
	c := joinTestCatalog(8)
	// Each probe row has 3 fanout candidates; the residual keeps those
	// with w > probe.v — a cross-side conjunct, so it runs through the
	// batched candidate-pair evaluation, not the hash key.
	res := mustQuery(t, c, "SELECT probe.id, fanout.tag FROM probe JOIN fanout ON probe.k = fanout.fk AND fanout.w > probe.v ORDER BY probe.id, fanout.tag")
	// probe row i has k=i, v=i; fanout rows for key i carry w = 3i..3i+2,
	// so candidates with w > i are max(0, min(3, 3i+3-i-1))... spot-check
	// against the scalar reference instead of closed form:
	sca, err := c.QueryScalar("SELECT probe.id, fanout.tag FROM probe JOIN fanout ON probe.k = fanout.fk AND fanout.w > probe.v ORDER BY probe.id, fanout.tag")
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualData(res, sca) {
		t.Errorf("vectorized multi-match residual differs from scalar reference")
	}
	if res.NumRows() == 0 || res.NumRows() == 8*3 {
		t.Errorf("rows = %d: residual filtered nothing or everything, test is vacuous", res.NumRows())
	}
}

// TestJoinLargeParallelDifferential crosses the probe-chunking threshold
// so the parallel pair emission, cross-chunk merge order, span vs dense
// gathering, and the serial fallback are all differentially pinned to the
// scalar reference (and to each other).
func TestJoinLargeParallelDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("large join")
	}
	c := joinTestCatalog(3 * parallelMinRows)
	queries := []string{
		"SELECT probe.id, sparse.label FROM probe JOIN sparse ON probe.k = sparse.sk",
		"SELECT probe.id, sparse.label FROM probe LEFT JOIN sparse ON probe.k = sparse.sk",
		"SELECT probe.id, sparse.label FROM probe RIGHT JOIN sparse ON probe.k = sparse.sk",
		"SELECT probe.id, sparse.label FROM probe FULL OUTER JOIN sparse ON probe.k = sparse.sk",
		"SELECT probe.id, fanout.tag FROM probe JOIN fanout ON probe.k = fanout.fk AND fanout.w > 10",
		"SELECT probe.id, fanout.tag FROM probe LEFT JOIN fanout ON probe.k = fanout.fk AND fanout.w > probe.v",
		"SELECT sparse.label, COUNT(*) FROM probe FULL OUTER JOIN sparse ON probe.k = sparse.sk GROUP BY sparse.label ORDER BY 1",
	}
	for _, q := range queries {
		vec, vecErr := c.Query(q)

		SerialJoinProbe.Store(true)
		serial, serialErr := c.Query(q)
		SerialJoinProbe.Store(false)

		forceDenseSelection.Store(true)
		dense, denseErr := c.Query(q)
		forceDenseSelection.Store(false)

		if vecErr != nil || serialErr != nil || denseErr != nil {
			t.Fatalf("query %q: %v / %v / %v", q, vecErr, serialErr, denseErr)
		}
		dv := dumpTable(vec)
		if ds := dumpTable(serial); dv != ds {
			t.Errorf("query %q: parallel vs serial probe mismatch", q)
		}
		if dd := dumpTable(dense); dv != dd {
			t.Errorf("query %q: range vs dense mismatch", q)
		}
	}
	// The scalar nested loop at 12k×24 pairs is slow but tractable; pin
	// one shape of each padding direction end to end.
	for _, q := range []string{
		"SELECT probe.id, sparse.label FROM probe LEFT JOIN sparse ON probe.k = sparse.sk",
		"SELECT probe.id, sparse.label FROM probe RIGHT JOIN sparse ON probe.k = sparse.sk",
	} {
		vec, err := c.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		sca, err := c.QueryScalar(q)
		if err != nil {
			t.Fatal(err)
		}
		if dumpTable(vec) != dumpTable(sca) {
			t.Errorf("query %q: vectorized vs scalar mismatch", q)
		}
	}
}

// TestJoinResidualShortCircuit pins the per-pair AND short-circuit of
// batched residual evaluation: a conjunct that would error (ABS of a
// string) must never evaluate on a candidate pair an earlier conjunct
// already rejected. Regression: the first batched implementation
// evaluated every conjunct over all candidates, so this query errored on
// the vectorized path while the scalar reference (which short-circuits
// AND per pair) succeeded.
func TestJoinResidualShortCircuit(t *testing.T) {
	a := table.MustNew("a",
		[]string{"k", "flag", "s"},
		[]table.Kind{table.KindInt, table.KindBool, table.KindString})
	a.MustAppendRow(table.Int(1), table.Bool(false), table.Str("x"))
	a.MustAppendRow(table.Int(1), table.Bool(true), table.Str("7"))
	b := table.MustNew("b", []string{"k"}, []table.Kind{table.KindInt})
	b.MustAppendRow(table.Int(1))
	c := NewCatalog()
	c.Register(a)
	c.Register(b)

	// Row (1,false,'x'): flag gates ABS(s) — never evaluated. Row
	// (1,true,'7'): ABS('7') coerces and passes. Both executors must
	// agree on success and on the single surviving row.
	q := "SELECT a.k, a.s FROM a JOIN b ON a.k = b.k AND a.flag AND ABS(a.s) > 0"
	checkDifferential(t, c, q)
	res, err := c.Query(q)
	if err != nil {
		t.Fatalf("vectorized: %v (short-circuit lost: erroring conjunct ran on a rejected pair)", err)
	}
	if res.NumRows() != 1 || res.Get(0, "s").S != "7" {
		t.Errorf("rows = %d, want exactly the flag=true row", res.NumRows())
	}
	// The error must still surface when a surviving pair reaches the
	// erroring conjunct.
	if _, err := c.Query("SELECT a.k FROM a JOIN b ON a.k = b.k AND NOT a.flag AND ABS(a.s) > 0"); err == nil {
		t.Error("expected ABS('x') error for the pair that passes NOT a.flag")
	}
}

// TestJoinNestedLoopKinds covers the no-equi-conjunct nested-loop path for
// every join kind (theta joins), differentially against the scalar
// reference.
func TestJoinNestedLoopKinds(t *testing.T) {
	c := joinTestCatalog(40)
	for _, q := range []string{
		"SELECT probe.id, sparse.label FROM probe JOIN sparse ON probe.k > sparse.sk",
		"SELECT probe.id, sparse.label FROM probe LEFT JOIN sparse ON probe.k > sparse.sk",
		"SELECT probe.id, sparse.label FROM probe RIGHT JOIN sparse ON probe.k > sparse.sk",
		"SELECT probe.id, sparse.label FROM probe FULL OUTER JOIN sparse ON probe.k > sparse.sk",
	} {
		checkDifferential(t, c, q)
	}
}

// TestParallelJoinProbeRace mirrors TestCancellationMidScan for the join
// pipeline: 100k-row probes (multi-match fan-out, LEFT padding, FULL
// sweep) race against staggered cancellations under -race. Every outcome
// must be a complete result or ctx.Err() — never a partial result or a
// panic — and no worker goroutine may leak.
func TestParallelJoinProbeRace(t *testing.T) {
	if testing.Short() {
		t.Skip("large join stress")
	}
	c := joinTestCatalog(100_000)
	queries := []string{
		"SELECT probe.id, fanout.tag FROM probe JOIN fanout ON probe.k = fanout.fk AND fanout.w > probe.v",
		"SELECT probe.id, sparse.label FROM probe LEFT JOIN sparse ON probe.k = sparse.sk",
		"SELECT sparse.label, COUNT(*) FROM probe FULL OUTER JOIN sparse ON probe.k = sparse.sk GROUP BY sparse.label",
	}
	wantRows := make([]int, len(queries))
	for i, q := range queries {
		tbl, err := c.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		wantRows[i] = tbl.NumRows()
	}

	before := runtime.NumGoroutine()
	cancelled := 0
	for trial := 0; trial < 90; trial++ {
		qi := trial % len(queries)
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		wg.Add(1)
		var res *Result
		var err error
		go func() {
			defer wg.Done()
			res, err = c.QueryCtx(ctx, queries[qi])
		}()
		time.Sleep(time.Duration(trial%8) * 50 * time.Microsecond)
		cancel()
		wg.Wait()
		switch {
		case err == nil:
			if res.NumRows() != wantRows[qi] {
				t.Fatalf("trial %d: successful join returned %d rows, want %d (partial result leaked through)",
					trial, res.NumRows(), wantRows[qi])
			}
		case err == context.Canceled:
			cancelled++
		default:
			t.Fatalf("trial %d: unexpected error %v", trial, err)
		}
	}
	if cancelled == 0 {
		t.Error("no trial observed a mid-flight cancellation; staggering too coarse?")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJoinRandomKindsDifferential drives randomized join queries (all four
// kinds over both N:1 and 1:N targets with residuals) through the
// vectorized-vs-scalar check — always-on coverage beyond the fuzz corpus.
func TestJoinRandomKindsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	c := randCatalog(rng, 300)
	seen := 0
	for i := 0; i < 400; i++ {
		q := randQuery(rng)
		if !containsJoin(q) {
			continue
		}
		seen++
		checkDifferential(t, c, q)
		if t.Failed() {
			t.Fatalf("first failure at query %d: %s", i, q)
		}
	}
	if seen < 40 {
		t.Errorf("only %d join queries generated; generator regressed?", seen)
	}
}

func containsJoin(q string) bool { return strings.Contains(q, " JOIN ") }
