package sqlengine

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"datalab/internal/table"
)

// Window function execution. Both executors compute every window call's
// output column up front (before projection) and hand the per-row values
// to expression evaluation through env.resolveWindow, keyed by the call's
// AST node pointer — the statement is immutable and shared, so the
// pointer is a stable identity for one execution.
//
// The partition/sort machinery differs per engine — the scalar reference
// sorts boxed values with sort.SliceStable while the vectorized path
// reuses the memcmp sort-key kernel (sortkey.go) when the ORDER BY keys
// encode — but the accumulation itself (computeWindowValues/windowAcc) is
// shared code, so float running sums are bit-identical across engines and
// the differential harness can compare results exactly.

// collectWindowCalls appends every window call (FuncCall with an OVER
// clause) in e to dst, deduplicated by node pointer. It does not descend
// into a window call's own arguments or spec (nesting is rejected at
// parse time) nor into subqueries (their windows belong to the inner
// statement).
func collectWindowCalls(e Expr, dst []*FuncCall) []*FuncCall {
	switch x := e.(type) {
	case *FuncCall:
		if x.Over != nil {
			for _, f := range dst {
				if f == x {
					return dst
				}
			}
			return append(dst, x)
		}
		for _, a := range x.Args {
			dst = collectWindowCalls(a, dst)
		}
	case *Binary:
		dst = collectWindowCalls(x.L, dst)
		dst = collectWindowCalls(x.R, dst)
	case *Unary:
		dst = collectWindowCalls(x.X, dst)
	case *In:
		dst = collectWindowCalls(x.X, dst)
		for _, v := range x.Values {
			dst = collectWindowCalls(v, dst)
		}
	case *Between:
		dst = collectWindowCalls(x.X, dst)
		dst = collectWindowCalls(x.Lo, dst)
		dst = collectWindowCalls(x.Hi, dst)
	case *IsNull:
		dst = collectWindowCalls(x.X, dst)
	case *CaseExpr:
		for _, w := range x.Whens {
			dst = collectWindowCalls(w.Cond, dst)
			dst = collectWindowCalls(w.Result, dst)
		}
		if x.Else != nil {
			dst = collectWindowCalls(x.Else, dst)
		}
	}
	return dst
}

// exprHasWindow reports whether e contains a window function call.
func exprHasWindow(e Expr) bool {
	return len(collectWindowCalls(e, nil)) > 0
}

// selectHasWindow reports whether the statement computes any window
// function (select list or ORDER BY).
func selectHasWindow(stmt *SelectStmt) bool {
	for _, it := range stmt.Items {
		if exprHasWindow(it.Expr) {
			return true
		}
	}
	for _, o := range stmt.OrderBy {
		if exprHasWindow(o.Expr) {
			return true
		}
	}
	return false
}

// statementWindows returns the window calls of the statement in select-
// list-then-ORDER-BY order, deduplicated by node pointer.
func statementWindows(stmt *SelectStmt, items []SelectItem, order []OrderItem) []*FuncCall {
	var wins []*FuncCall
	for _, it := range items {
		wins = collectWindowCalls(it.Expr, wins)
	}
	for _, o := range order {
		wins = collectWindowCalls(o.Expr, wins)
	}
	return wins
}

func errWindowContext(fn *FuncCall) error {
	return fmt.Errorf("sql: window function %s is only allowed in the select list or ORDER BY", fn.Name)
}

// peerGroupEnds returns, for each index k of the sorted partition, the
// exclusive end of k's peer group (rows comparing equal on every ORDER BY
// key). Sorted order makes peer groups contiguous, so one forward scan
// comparing each row to its group's first suffices.
func peerGroupEnds(sorted []int, peers func(a, b int) bool) []int {
	ends := make([]int, len(sorted))
	for s := 0; s < len(sorted); {
		e := s + 1
		for e < len(sorted) && peers(sorted[s], sorted[e]) {
			e++
		}
		for k := s; k < e; k++ {
			ends[k] = e
		}
		s = e
	}
	return ends
}

// computeWindowValues fills out[pos] for every position of one sorted
// partition. sorted holds the partition's positions in window order; ends
// is peerGroupEnds over it; argAt returns the evaluated argument at a
// position. This function is the shared accumulation core of both
// executors — any change here changes both sides of the differential
// harness together.
func computeWindowValues(fn *FuncCall, sorted, ends []int, argAt func(int) table.Value, out []table.Value) {
	switch fn.Name {
	case "ROW_NUMBER":
		for k, pos := range sorted {
			out[pos] = table.Int(int64(k + 1))
		}
	case "RANK":
		for s := 0; s < len(sorted); {
			e := ends[s]
			v := table.Int(int64(s + 1))
			for k := s; k < e; k++ {
				out[sorted[k]] = v
			}
			s = e
		}
	case "DENSE_RANK":
		rank := int64(0)
		for s := 0; s < len(sorted); {
			e := ends[s]
			rank++
			v := table.Int(rank)
			for k := s; k < e; k++ {
				out[sorted[k]] = v
			}
			s = e
		}
	default: // COUNT/SUM/AVG/MIN/MAX
		switch {
		case fn.Over.Frame != nil:
			// Explicit ROWS frame: a fresh accumulator per row over
			// sorted[lo..k]. Frames are row-based, so peers do not share
			// values.
			f := fn.Over.Frame
			for k, pos := range sorted {
				lo := 0
				if !f.Unbounded {
					lo = k - int(f.Preceding)
					if lo < 0 {
						lo = 0
					}
				}
				acc := newWindowAcc(fn)
				for j := lo; j <= k; j++ {
					acc.add(sorted[j], argAt)
				}
				out[pos] = acc.value()
			}
		case len(fn.Over.OrderBy) == 0:
			// No ORDER BY: the whole partition is every row's frame.
			acc := newWindowAcc(fn)
			for _, pos := range sorted {
				acc.add(pos, argAt)
			}
			v := acc.value()
			for _, pos := range sorted {
				out[pos] = v
			}
		default:
			// Default frame with ORDER BY: running aggregate from the
			// partition start through the current row's peer group (RANGE
			// UNBOUNDED PRECEDING TO CURRENT ROW semantics — peers share).
			acc := newWindowAcc(fn)
			for s := 0; s < len(sorted); {
				e := ends[s]
				for k := s; k < e; k++ {
					acc.add(sorted[k], argAt)
				}
				v := acc.value()
				for k := s; k < e; k++ {
					out[sorted[k]] = v
				}
				s = e
			}
		}
	}
}

// windowAcc accumulates one aggregate window frame, mirroring
// finishAggregate's semantics exactly: COUNT counts non-NULL values of
// any kind (or rows for COUNT(*)); SUM/AVG total the float-convertible
// non-NULL values left to right and return NULL over an empty frame, with
// SUM always KindFloat; MIN/MAX compare with table.Compare and keep the
// earliest value on ties.
type windowAcc struct {
	fn    *FuncCall
	count int64   // non-NULL values seen (rows, for COUNT(*))
	n     int64   // float-convertible values folded into total
	total float64 // left-to-right running total
	best  table.Value
	found bool
}

func newWindowAcc(fn *FuncCall) *windowAcc {
	return &windowAcc{fn: fn, best: table.Null()}
}

func (a *windowAcc) add(pos int, argAt func(int) table.Value) {
	if a.fn.IsStar {
		a.count++
		return
	}
	v := argAt(pos)
	if v.IsNull() {
		return
	}
	a.count++
	switch a.fn.Name {
	case "SUM", "AVG":
		if f, ok := v.AsFloat(); ok {
			a.total += f
			a.n++
		}
	case "MIN":
		if !a.found || table.Compare(v, a.best) < 0 {
			a.best, a.found = v, true
		}
	case "MAX":
		if !a.found || table.Compare(v, a.best) > 0 {
			a.best, a.found = v, true
		}
	}
}

func (a *windowAcc) value() table.Value {
	switch a.fn.Name {
	case "COUNT":
		return table.Int(a.count)
	case "SUM":
		if a.n == 0 {
			return table.Null()
		}
		return table.Float(a.total)
	case "AVG":
		if a.n == 0 {
			return table.Null()
		}
		return table.Float(a.total / float64(a.n))
	case "MIN", "MAX":
		if !a.found {
			return table.Null()
		}
		return a.best
	}
	return table.Null()
}

// --- scalar driver ---

// computeWindowsScalar evaluates every window call over the filtered
// scalar relation, returning per-call value slices indexed by row
// position in rel.rows.
func computeWindowsScalar(rel *srel, wins []*FuncCall) (map[*FuncCall][]table.Value, error) {
	if len(wins) == 0 {
		return nil, nil
	}
	out := make(map[*FuncCall][]table.Value, len(wins))
	for _, fn := range wins {
		vals, err := scalarWindowColumn(rel, fn)
		if err != nil {
			return nil, err
		}
		out[fn] = vals
	}
	return out, nil
}

func scalarWindowColumn(rel *srel, fn *FuncCall) ([]table.Value, error) {
	n := len(rel.rows)
	spec := fn.Over
	ordVals := make([][]table.Value, len(spec.OrderBy))
	for i := range ordVals {
		ordVals[i] = make([]table.Value, n)
	}
	var argVals []table.Value
	if !fn.IsStar && len(fn.Args) == 1 {
		argVals = make([]table.Value, n)
	}
	var keys []string
	if len(spec.PartitionBy) > 0 {
		keys = make([]string, n)
	}
	for ri, row := range rel.rows {
		ev := &rowEnv{rel: rel, row: row}
		if keys != nil {
			var kb strings.Builder
			for _, pe := range spec.PartitionBy {
				v, err := evalExpr(pe, ev)
				if err != nil {
					return nil, err
				}
				kb.WriteString(v.Key())
				kb.WriteByte('\x1f')
			}
			keys[ri] = kb.String()
		}
		for k, o := range spec.OrderBy {
			v, err := evalExpr(o.Expr, ev)
			if err != nil {
				return nil, err
			}
			ordVals[k][ri] = v
		}
		if argVals != nil {
			v, err := evalExpr(fn.Args[0], ev)
			if err != nil {
				return nil, err
			}
			argVals[ri] = v
		}
	}

	argAt := func(int) table.Value { return table.Null() }
	if argVals != nil {
		argAt = func(pos int) table.Value { return argVals[pos] }
	}
	out := make([]table.Value, n)
	for _, part := range partitionPositions(keys, n) {
		sorted := append([]int(nil), part...)
		if len(spec.OrderBy) > 0 {
			// Identical comparator and algorithm to boxedSortPerm (and to
			// the vectorized fallback sorter): SliceStable, Desc-aware, no
			// position tie-break.
			sort.SliceStable(sorted, func(a, b int) bool {
				ra, rb := sorted[a], sorted[b]
				for k := range spec.OrderBy {
					c := table.Compare(ordVals[k][ra], ordVals[k][rb])
					if c == 0 {
						continue
					}
					if spec.OrderBy[k].Desc {
						return c > 0
					}
					return c < 0
				}
				return false
			})
		}
		peers := func(a, b int) bool {
			for k := range spec.OrderBy {
				if table.Compare(ordVals[k][a], ordVals[k][b]) != 0 {
					return false
				}
			}
			return true
		}
		computeWindowValues(fn, sorted, peerGroupEnds(sorted, peers), argAt, out)
	}
	return out, nil
}

// partitionPositions groups positions 0..n-1 by key in first-appearance
// order; nil keys means a single whole-input partition.
func partitionPositions(keys []string, n int) [][]int {
	if keys == nil {
		if n == 0 {
			return nil
		}
		return [][]int{iotaInts(n)}
	}
	m := make(map[string]int, 16)
	var parts [][]int
	for i := 0; i < n; i++ {
		gi, ok := m[keys[i]]
		if !ok {
			gi = len(parts)
			m[keys[i]] = gi
			parts = append(parts, nil)
		}
		parts[gi] = append(parts[gi], i)
	}
	return parts
}

// --- vectorized driver ---

// computeWindowsVec evaluates every window call over the selected rows,
// returning per-call columns indexed by selection position.
func computeWindowsVec(wins []*FuncCall, rel *vrel, sel *table.Selection) (map[*FuncCall]table.Column, error) {
	if len(wins) == 0 {
		return nil, nil
	}
	out := make(map[*FuncCall]table.Column, len(wins))
	for _, fn := range wins {
		col, err := vecWindowColumn(fn, rel, sel)
		if err != nil {
			return nil, err
		}
		out[fn] = col
	}
	return out, nil
}

func vecWindowColumn(fn *FuncCall, rel *vrel, sel *table.Selection) (table.Column, error) {
	n := selLen(rel, sel)
	spec := fn.Over
	parts, err := windowPartitionsVec(spec.PartitionBy, rel, sel, n)
	if err != nil {
		return table.Column{}, err
	}
	keyCols := make([]table.Column, len(spec.OrderBy))
	for k, o := range spec.OrderBy {
		col, err := evalVec(o.Expr, rel, sel)
		if err != nil {
			return table.Column{}, err
		}
		keyCols[k] = col
	}
	argAt := func(int) table.Value { return table.Null() }
	if !fn.IsStar && len(fn.Args) == 1 {
		argCol, err := evalVec(fn.Args[0], rel, sel)
		if err != nil {
			return table.Column{}, err
		}
		argAt = func(pos int) table.Value { return argCol.Value(pos) }
	}
	sortPart, peers := windowSorter(keyCols, spec.OrderBy, n)
	vals := make([]table.Value, n)
	for _, part := range parts {
		sorted := sortPart(part)
		computeWindowValues(fn, sorted, peerGroupEnds(sorted, peers), argAt, vals)
	}
	return windowOutputColumn(vals), nil
}

// windowPartitionsVec partitions selection positions 0..n-1 by the
// PARTITION BY keys in first-appearance order. Single typed int/string
// keys use typed maps (with a NULL partition), like hashGroups; composite
// or boxed keys fall back to canonical key strings.
func windowPartitionsVec(exprs []Expr, rel *vrel, sel *table.Selection, n int) ([][]int, error) {
	if len(exprs) == 0 {
		if n == 0 {
			return nil, nil
		}
		return [][]int{iotaInts(n)}, nil
	}
	keyCols := make([]table.Column, len(exprs))
	for i, e := range exprs {
		col, err := evalVec(e, rel, sel)
		if err != nil {
			return nil, err
		}
		keyCols[i] = col
	}
	var parts [][]int
	if len(keyCols) == 1 {
		if is, nulls, ok := keyCols[0].Ints(); ok {
			m := make(map[int64]int, 16)
			nullG := -1
			for i := 0; i < n; i++ {
				if nulls[i] {
					if nullG < 0 {
						nullG = len(parts)
						parts = append(parts, nil)
					}
					parts[nullG] = append(parts[nullG], i)
					continue
				}
				gi, ok := m[is[i]]
				if !ok {
					gi = len(parts)
					m[is[i]] = gi
					parts = append(parts, nil)
				}
				parts[gi] = append(parts[gi], i)
			}
			return parts, nil
		}
		if ss, nulls, ok := keyCols[0].Strings(); ok {
			m := make(map[string]int, 16)
			nullG := -1
			for i := 0; i < n; i++ {
				if nulls[i] {
					if nullG < 0 {
						nullG = len(parts)
						parts = append(parts, nil)
					}
					parts[nullG] = append(parts[nullG], i)
					continue
				}
				gi, ok := m[ss[i]]
				if !ok {
					gi = len(parts)
					m[ss[i]] = gi
					parts = append(parts, nil)
				}
				parts[gi] = append(parts[gi], i)
			}
			return parts, nil
		}
	}
	keys := make([]string, n)
	var kb strings.Builder
	for i := 0; i < n; i++ {
		kb.Reset()
		for k := range keyCols {
			kb.WriteString(keyCols[k].Value(i).Key())
			kb.WriteByte('\x1f')
		}
		keys[i] = kb.String()
	}
	return partitionPositions(keys, n), nil
}

// windowSorter returns the partition sorter and the peer predicate for
// the ORDER BY keys (positions are selection positions). When every key
// column has a memcmp encoding, keys for all positions are encoded once
// and partitions sort through the sort-key kernel's (key, position)
// comparator — which equals the stable boxed order, since equal values
// encode to equal bytes. Otherwise the boxed SliceStable path runs, the
// same algorithm and comparator as the scalar reference.
func windowSorter(keyCols []table.Column, order []OrderItem, n int) (func([]int) []int, func(a, b int) bool) {
	if len(order) == 0 {
		return func(part []int) []int { return part },
			func(a, b int) bool { return true }
	}
	if specs, ok := sortKeySpecs(keyCols, order); ok {
		ks := buildKeyset(specs, 0, n)
		return func(part []int) []int {
				sorted := append([]int(nil), part...)
				ks.sortSegment(sorted)
				return sorted
			}, func(a, b int) bool {
				return bytes.Equal(ks.key(a), ks.key(b))
			}
	}
	boxedLess := func(ra, rb int) bool {
		for k := range order {
			c := table.Compare(keyCols[k].Value(ra), keyCols[k].Value(rb))
			if c == 0 {
				continue
			}
			if order[k].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	}
	return func(part []int) []int {
			sorted := append([]int(nil), part...)
			sort.SliceStable(sorted, func(a, b int) bool {
				return boxedLess(sorted[a], sorted[b])
			})
			return sorted
		}, func(a, b int) bool {
			for k := range order {
				if table.Compare(keyCols[k].Value(a), keyCols[k].Value(b)) != 0 {
					return false
				}
			}
			return true
		}
}

// windowOutputColumn materializes a window call's values as a column,
// typed by the first non-NULL value like rowFallback.
func windowOutputColumn(vals []table.Value) table.Column {
	kind := table.KindNull
	for _, v := range vals {
		if !v.IsNull() {
			kind = v.Kind
			break
		}
	}
	return table.ColumnOf("", kind, vals)
}
