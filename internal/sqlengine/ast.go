package sqlengine

import (
	"fmt"
	"strings"

	"datalab/internal/table"
)

// Expr is a SQL expression node.
type Expr interface {
	// SQL renders the expression back to SQL text.
	SQL() string
}

// ColumnRef references a column, optionally qualified by table or alias.
type ColumnRef struct {
	Table string // may be empty
	Name  string
}

// SQL implements Expr.
func (c *ColumnRef) SQL() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// Star is the bare `*` select item.
type Star struct{}

// SQL implements Expr.
func (Star) SQL() string { return "*" }

// Literal is a constant value.
type Literal struct {
	Value table.Value
}

// SQL implements Expr.
func (l *Literal) SQL() string {
	switch l.Value.Kind {
	case table.KindString:
		return "'" + strings.ReplaceAll(l.Value.S, "'", "''") + "'"
	case table.KindNull:
		return "NULL"
	default:
		return l.Value.AsString()
	}
}

// Param is a bind placeholder: `?` (positional) or `:name` (named). Index
// is the statement's 0-based binding slot; every occurrence of one :name
// shares a slot. A Param carries no value — executors resolve it through
// the per-execution binding slice, so one cached statement serves
// concurrent executions with different arguments and the AST is never
// mutated.
type Param struct {
	Index int
	Name  string // empty for positional ?
}

// SQL implements Expr.
func (p *Param) SQL() string {
	if p.Name != "" {
		return ":" + p.Name
	}
	return "?"
}

// Binary is a binary operation: arithmetic, comparison, AND/OR, LIKE.
type Binary struct {
	Op   string // "=", "<>", "<", "<=", ">", ">=", "+", "-", "*", "/", "%", "AND", "OR", "LIKE", "||"
	L, R Expr
}

// SQL implements Expr.
func (b *Binary) SQL() string {
	return fmt.Sprintf("(%s %s %s)", b.L.SQL(), b.Op, b.R.SQL())
}

// Unary is NOT or arithmetic negation.
type Unary struct {
	Op string // "NOT", "-"
	X  Expr
}

// SQL implements Expr.
func (u *Unary) SQL() string {
	if u.Op == "NOT" {
		return "(NOT " + u.X.SQL() + ")"
	}
	return "(" + u.Op + u.X.SQL() + ")"
}

// FuncCall is a function application; aggregates are recognized by name.
// When Over is non-nil the call is a window function computed per input
// row over its partition rather than a grouping aggregate.
type FuncCall struct {
	Name     string // uppercased
	Args     []Expr
	Distinct bool        // COUNT(DISTINCT x)
	IsStar   bool        // COUNT(*)
	Over     *WindowSpec // non-nil for window functions
}

// SQL implements Expr.
func (f *FuncCall) SQL() string {
	var base string
	if f.IsStar {
		base = f.Name + "(*)"
	} else {
		args := make([]string, len(f.Args))
		for i, a := range f.Args {
			args[i] = a.SQL()
		}
		d := ""
		if f.Distinct {
			d = "DISTINCT "
		}
		base = fmt.Sprintf("%s(%s%s)", f.Name, d, strings.Join(args, ", "))
	}
	if f.Over != nil {
		base += " OVER " + f.Over.SQL()
	}
	return base
}

// WindowSpec is the OVER (...) clause of a window function.
type WindowSpec struct {
	PartitionBy []Expr
	OrderBy     []OrderItem
	Frame       *WindowFrame // optional ROWS frame; requires OrderBy
}

// SQL renders the spec back to SQL text.
func (w *WindowSpec) SQL() string {
	var parts []string
	if len(w.PartitionBy) > 0 {
		cols := make([]string, len(w.PartitionBy))
		for i, e := range w.PartitionBy {
			cols[i] = e.SQL()
		}
		parts = append(parts, "PARTITION BY "+strings.Join(cols, ", "))
	}
	if len(w.OrderBy) > 0 {
		items := make([]string, len(w.OrderBy))
		for i, o := range w.OrderBy {
			items[i] = o.Expr.SQL()
			if o.Desc {
				items[i] += " DESC"
			}
		}
		parts = append(parts, "ORDER BY "+strings.Join(items, ", "))
	}
	if w.Frame != nil {
		lo := "UNBOUNDED PRECEDING"
		if !w.Frame.Unbounded {
			lo = fmt.Sprintf("%d PRECEDING", w.Frame.Preceding)
		}
		parts = append(parts, "ROWS BETWEEN "+lo+" AND CURRENT ROW")
	}
	return "(" + strings.Join(parts, " ") + ")"
}

// WindowFrame is a ROWS BETWEEN ... AND CURRENT ROW frame bound.
type WindowFrame struct {
	Preceding int64 // rows before the current row included in the frame
	Unbounded bool  // UNBOUNDED PRECEDING
}

// Subquery is a parenthesized scalar subquery used as an expression. It
// must produce exactly one column and at most one row at execution time.
type Subquery struct {
	Stmt *SelectStmt
}

// SQL implements Expr.
func (s *Subquery) SQL() string { return "(" + s.Stmt.SQL() + ")" }

// In is `x [NOT] IN (v1, v2, ...)` or `x [NOT] IN (SELECT ...)`. Exactly
// one of Values/Sub is set; Sub is inlined to a value list at execution.
type In struct {
	X      Expr
	Values []Expr
	Sub    *SelectStmt // non-nil for IN (SELECT ...)
	Not    bool
}

// SQL implements Expr.
func (in *In) SQL() string {
	op := "IN"
	if in.Not {
		op = "NOT IN"
	}
	if in.Sub != nil {
		return fmt.Sprintf("(%s %s (%s))", in.X.SQL(), op, in.Sub.SQL())
	}
	vals := make([]string, len(in.Values))
	for i, v := range in.Values {
		vals[i] = v.SQL()
	}
	return fmt.Sprintf("(%s %s (%s))", in.X.SQL(), op, strings.Join(vals, ", "))
}

// Between is `x [NOT] BETWEEN lo AND hi`.
type Between struct {
	X, Lo, Hi Expr
	Not       bool
}

// SQL implements Expr.
func (b *Between) SQL() string {
	op := "BETWEEN"
	if b.Not {
		op = "NOT BETWEEN"
	}
	return fmt.Sprintf("(%s %s %s AND %s)", b.X.SQL(), op, b.Lo.SQL(), b.Hi.SQL())
}

// IsNull is `x IS [NOT] NULL`.
type IsNull struct {
	X   Expr
	Not bool
}

// SQL implements Expr.
func (n *IsNull) SQL() string {
	if n.Not {
		return "(" + n.X.SQL() + " IS NOT NULL)"
	}
	return "(" + n.X.SQL() + " IS NULL)"
}

// CaseExpr is a searched CASE expression.
type CaseExpr struct {
	Whens []WhenClause
	Else  Expr // may be nil
}

// WhenClause is one WHEN cond THEN result arm.
type WhenClause struct {
	Cond, Result Expr
}

// SQL implements Expr.
func (c *CaseExpr) SQL() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, w := range c.Whens {
		fmt.Fprintf(&sb, " WHEN %s THEN %s", w.Cond.SQL(), w.Result.SQL())
	}
	if c.Else != nil {
		sb.WriteString(" ELSE " + c.Else.SQL())
	}
	sb.WriteString(" END")
	return sb.String()
}

// SelectItem is one output column of a SELECT.
type SelectItem struct {
	Expr  Expr
	Alias string // optional AS alias
}

// OutputName returns the column name of the item in the result.
func (s SelectItem) OutputName() string {
	if s.Alias != "" {
		return s.Alias
	}
	if c, ok := s.Expr.(*ColumnRef); ok {
		return c.Name
	}
	return s.Expr.SQL()
}

// JoinClause is one JOIN ... ON step in the FROM clause.
type JoinClause struct {
	Kind  table.JoinKind
	Table string
	Alias string
	On    Expr // equality predicate; evaluated per joined row pair
}

// SelectStmt is a parsed SELECT statement.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     string
	FromAs   string
	Joins    []JoinClause
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 when absent
	Offset   int
	// LimitParam/OffsetParam are set when the LIMIT/OFFSET operand is a
	// placeholder; the executor resolves them from the binding slice into a
	// shallow copy at execute time, so the cached statement stays immutable.
	LimitParam  *Param
	OffsetParam *Param
	// Params names the statement's binding slots in slot order: "" for a
	// positional ?, the bare name for :name.
	Params []string
}

// NumParams reports how many binding slots (? or :name) the statement
// declares.
func (s *SelectStmt) NumParams() int { return len(s.Params) }

// ParamNames returns a copy of the slot names in slot order; positional
// slots are "".
func (s *SelectStmt) ParamNames() []string { return append([]string(nil), s.Params...) }

// OrderItem is one ORDER BY criterion.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SQL renders the statement back to canonical SQL text.
func (s *SelectStmt) SQL() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	items := make([]string, len(s.Items))
	for i, it := range s.Items {
		items[i] = it.Expr.SQL()
		if it.Alias != "" {
			items[i] += " AS " + it.Alias
		}
	}
	sb.WriteString(strings.Join(items, ", "))
	sb.WriteString(" FROM " + s.From)
	if s.FromAs != "" {
		sb.WriteString(" AS " + s.FromAs)
	}
	for _, j := range s.Joins {
		kw := "JOIN"
		switch j.Kind {
		case table.JoinLeft:
			kw = "LEFT JOIN"
		case table.JoinRight:
			kw = "RIGHT JOIN"
		case table.JoinFull:
			kw = "FULL OUTER JOIN"
		}
		sb.WriteString(" " + kw + " " + j.Table)
		if j.Alias != "" {
			sb.WriteString(" AS " + j.Alias)
		}
		sb.WriteString(" ON " + j.On.SQL())
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.SQL())
	}
	if len(s.GroupBy) > 0 {
		parts := make([]string, len(s.GroupBy))
		for i, g := range s.GroupBy {
			parts[i] = g.SQL()
		}
		sb.WriteString(" GROUP BY " + strings.Join(parts, ", "))
	}
	if s.Having != nil {
		sb.WriteString(" HAVING " + s.Having.SQL())
	}
	if len(s.OrderBy) > 0 {
		parts := make([]string, len(s.OrderBy))
		for i, o := range s.OrderBy {
			parts[i] = o.Expr.SQL()
			if o.Desc {
				parts[i] += " DESC"
			}
		}
		sb.WriteString(" ORDER BY " + strings.Join(parts, ", "))
	}
	switch {
	case s.LimitParam != nil:
		sb.WriteString(" LIMIT " + s.LimitParam.SQL())
	case s.Limit >= 0:
		fmt.Fprintf(&sb, " LIMIT %d", s.Limit)
	}
	switch {
	case s.OffsetParam != nil:
		sb.WriteString(" OFFSET " + s.OffsetParam.SQL())
	case s.Offset > 0:
		fmt.Fprintf(&sb, " OFFSET %d", s.Offset)
	}
	return sb.String()
}
