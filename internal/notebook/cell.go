// Package notebook implements DataLab's augmented computational notebook
// backend and its Cell-based Context Management module (§VI): the
// multi-language cell model, dependency-DAG construction from variable
// references (Algorithm 3), incremental DAG maintenance, and adaptive
// context retrieval with task-type pruning.
package notebook

import (
	"fmt"
	"regexp"
	"strings"

	"datalab/internal/pymini"
	"datalab/internal/viz"
)

// CellType enumerates the cell languages DataLab notebooks wrangle.
type CellType string

// Supported cell types.
const (
	CellSQL      CellType = "sql"
	CellPython   CellType = "python"
	CellPySpark  CellType = "pyspark"
	CellChart    CellType = "chart"
	CellMarkdown CellType = "markdown"
)

// Cell is one notebook cell.
type Cell struct {
	ID     string
	Type   CellType
	Source string
	// OutputVar names the data variable a SQL cell's SELECT result is
	// stored into (e.g. a DataFrame); empty for non-SQL cells unless the
	// author binds one explicitly.
	OutputVar string

	// analysis results, maintained by the notebook on every change:
	defs []string // variables this cell introduces
	refs []string // external variables this cell reads
}

// Defs returns the variables the cell defines.
func (c *Cell) Defs() []string { return append([]string(nil), c.defs...) }

// Refs returns the external variables the cell references.
func (c *Cell) Refs() []string { return append([]string(nil), c.refs...) }

// analyze recomputes defs/refs from the source. Syntax errors leave the
// previous analysis in place and are reported — the DAG only updates when
// changes pass the syntax check (§VI).
func (c *Cell) analyze() error {
	switch c.Type {
	case CellPython, CellPySpark:
		mod, err := pymini.Parse(c.Source)
		if err != nil {
			return err
		}
		c.defs = pymini.GlobalDefs(mod)
		c.refs = pymini.ExternalRefs(mod)
	case CellSQL:
		c.defs = nil
		if v := c.sqlOutputVar(); v != "" {
			c.defs = []string{v}
		}
		c.refs = sqlTableRefs(c.Source)
	case CellChart:
		c.defs = nil
		c.refs = nil
		if spec, err := viz.ParseSpec(c.Source); err == nil && spec.Data != "" {
			c.refs = []string{spec.Data}
		}
	case CellMarkdown:
		// Markdown produces and references no variables (Algorithm 3).
		c.defs, c.refs = nil, nil
	default:
		return fmt.Errorf("notebook: unknown cell type %q", c.Type)
	}
	return nil
}

// sqlOutputVar returns the data variable the cell's SELECT is stored in:
// the explicit OutputVar, or one declared with a leading
// `-- out: name` directive, else a default derived from the cell ID.
func (c *Cell) sqlOutputVar() string {
	if c.OutputVar != "" {
		return c.OutputVar
	}
	for _, line := range strings.Split(c.Source, "\n") {
		trimmed := strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(trimmed, "-- out:"); ok {
			return strings.TrimSpace(rest)
		}
	}
	return "result_" + c.ID
}

// identPattern matches candidate table identifiers after FROM/JOIN.
var identPattern = regexp.MustCompile(`(?i)\b(?:from|join)\s+([A-Za-z_][A-Za-z0-9_.]*)`)

// sqlTableRefs extracts FROM/JOIN identifiers: a SQL cell selecting from
// another cell's output variable depends on that cell.
func sqlTableRefs(sql string) []string {
	var out []string
	seen := map[string]bool{}
	for _, m := range identPattern.FindAllStringSubmatch(sql, -1) {
		name := m[1]
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	return out
}
