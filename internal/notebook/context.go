package notebook

import (
	"sort"
	"strings"

	"datalab/internal/comm"
	"datalab/internal/embed"
	"datalab/internal/textutil"
)

// TaskType classifies a user query for context pruning.
type TaskType string

// Task types the pruning table covers.
const (
	TaskNL2SQL     TaskType = "nl2sql"
	TaskNL2DSCode  TaskType = "nl2dscode"
	TaskNL2VIS     TaskType = "nl2vis"
	TaskNL2Insight TaskType = "nl2insight"
	TaskUnknown    TaskType = "unknown"
)

// relevantCellTypes maps task types to the cell types that can carry
// useful context for them (§VI: "in NL2DSCode tasks, only Python cells
// are considered").
var relevantCellTypes = map[TaskType][]CellType{
	TaskNL2SQL:     {CellSQL},
	TaskNL2DSCode:  {CellPython, CellPySpark},
	TaskNL2VIS:     {CellChart, CellSQL, CellPython, CellMarkdown},
	TaskNL2Insight: {CellSQL, CellPython, CellPySpark, CellChart, CellMarkdown},
	TaskUnknown:    {CellSQL, CellPython, CellPySpark, CellChart, CellMarkdown},
}

// ClassifyTask infers the task type from query vocabulary — the simulated
// counterpart of the paper's LLM task-type prediction.
func ClassifyTask(query string) TaskType {
	q := strings.ToLower(query)
	switch {
	case containsAny(q, "chart", "plot", "visuali", "graph", "pie", "bar ", "trend line", "draw"):
		return TaskNL2VIS
	case containsAny(q, "sql", "query the", "select from", "table join"):
		return TaskNL2SQL
	case containsAny(q, "insight", "analyze", "analysis", "why", "anomal", "forecast", "correlat"):
		return TaskNL2Insight
	case containsAny(q, "code", "python", "pandas", "dataframe", "clean", "impute", "normalize"):
		return TaskNL2DSCode
	default:
		return TaskUnknown
	}
}

func containsAny(s string, subs ...string) bool {
	for _, sub := range subs {
		if strings.Contains(s, sub) {
			return true
		}
	}
	return false
}

// Context is the assembled context for one query: the minimum set of
// relevant cells plus their associated information units.
type Context struct {
	Cells []*Cell
	Units []comm.Info
}

// Tokens returns the estimated token footprint of the context — the
// quantity Table IV's Token Cost per Query measures.
func (c Context) Tokens() int {
	n := 0
	for _, cell := range c.Cells {
		n += textutil.CountTokens(cell.Source)
	}
	for _, u := range c.Units {
		n += u.Tokens()
	}
	return n
}

// Manager pairs a notebook with the shared information buffer and
// resolves query contexts. UseDAG switches between the ablation arms of
// Table IV: true is S2 (DAG-pruned minimum set), false is S1 (all cells).
type Manager struct {
	Notebook *Notebook
	Buffer   *comm.Buffer
	UseDAG   bool
	// cellInfo associates cells with the buffer units that produced or
	// modified them.
	cellInfo map[string][]comm.Info
	// MarkdownTopK bounds similarity-selected Markdown cells.
	MarkdownTopK int
}

// NewManager creates a context manager in full-DataLab mode.
func NewManager(nb *Notebook, buf *comm.Buffer) *Manager {
	return &Manager{Notebook: nb, Buffer: buf, UseDAG: true, cellInfo: map[string][]comm.Info{}, MarkdownTopK: 2}
}

// Associate links an information unit with a cell (the unit that created
// or last modified it).
func (m *Manager) Associate(cellID string, info comm.Info) {
	m.cellInfo[cellID] = append(m.cellInfo[cellID], info)
}

// CellContext resolves a cell-level query: the target cell plus all its
// ancestors (§VI, Context Retrieval).
func (m *Manager) CellContext(cellID string, query string) Context {
	if !m.UseDAG {
		return m.allCellsContext()
	}
	var cells []*Cell
	if c, ok := m.Notebook.Cell(cellID); ok {
		for _, aid := range m.Notebook.Ancestors(cellID) {
			if a, ok := m.Notebook.Cell(aid); ok {
				cells = append(cells, a)
			}
		}
		cells = append(cells, c)
	}
	task := ClassifyTask(query)
	cells = pruneByTask(cells, task, cellID)
	return m.finish(cells)
}

// QueryContext resolves a notebook-level query: locate the related data
// variable, take the defining cell and its descendants, add similar
// Markdown cells, prune by task type, and attach buffer units.
func (m *Manager) QueryContext(query string, explicitVar string) Context {
	if !m.UseDAG {
		return m.allCellsContext()
	}
	task := ClassifyTask(query)

	variable := explicitVar
	if variable == "" {
		variable = m.predictVariable(query)
	}
	var cells []*Cell
	if variable != "" {
		if def, ok := m.Notebook.DefiningCell(variable); ok {
			// The initial cell c_s is where the chain's data originates:
			// walk up to the variable's ancestors first, then take every
			// descendant of the defining cell for thorough coverage (§VI).
			for _, aid := range m.Notebook.Ancestors(def.ID) {
				if a, ok := m.Notebook.Cell(aid); ok {
					cells = append(cells, a)
				}
			}
			cells = append(cells, def)
			for _, did := range m.Notebook.Descendants(def.ID) {
				if d, ok := m.Notebook.Cell(did); ok {
					cells = append(cells, d)
				}
			}
		}
	}
	// Markdown cells lack references; select by textual similarity.
	cells = append(cells, m.similarMarkdown(query)...)
	cells = pruneByTask(cells, task, "")
	return m.finish(cells)
}

func (m *Manager) allCellsContext() Context {
	cells := m.Notebook.Cells()
	return m.finish(cells)
}

// predictVariable is the simulated LLM prediction of the related data
// variable: lexical+semantic similarity between the query and each
// variable's name plus its defining cell's source.
func (m *Manager) predictVariable(query string) string {
	qTokens := textutil.ContentTokens(query)
	qVec := embed.Text(query)
	best, bestScore := "", 0.0
	for _, v := range m.Notebook.Variables() {
		score := textutil.OverlapRatio(textutil.ContentTokens(v), qTokens)
		if def, ok := m.Notebook.DefiningCell(v); ok {
			score += 0.5 * embed.Cosine(qVec, embed.Text(def.Source))
		}
		if score > bestScore {
			best, bestScore = v, score
		}
	}
	if bestScore < 0.1 {
		// Fall back to the most recently defined variable: follow-ups
		// usually continue from the latest result.
		cells := m.Notebook.Cells()
		for i := len(cells) - 1; i >= 0; i-- {
			if defs := cells[i].Defs(); len(defs) > 0 {
				return defs[0]
			}
		}
		return ""
	}
	return best
}

// similarMarkdown returns the top-K Markdown cells by embedding
// similarity with the query. The paper notes this is the weak spot of the
// mechanism (occasional misses cause Table IV's small accuracy drop).
func (m *Manager) similarMarkdown(query string) []*Cell {
	qVec := embed.Text(query)
	type scored struct {
		c *Cell
		s float64
	}
	var cands []scored
	for _, c := range m.Notebook.Cells() {
		if c.Type != CellMarkdown {
			continue
		}
		s := embed.Cosine(qVec, embed.Text(c.Source))
		if s > 0.18 {
			cands = append(cands, scored{c, s})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].s != cands[b].s {
			return cands[a].s > cands[b].s
		}
		return cands[a].c.ID < cands[b].c.ID
	})
	var out []*Cell
	for i := 0; i < len(cands) && i < m.MarkdownTopK; i++ {
		out = append(out, cands[i].c)
	}
	return out
}

// pruneByTask filters cells to the types relevant for the task; the
// anchor cell (cell-level queries) is always kept.
func pruneByTask(cells []*Cell, task TaskType, anchorID string) []*Cell {
	allowed := map[CellType]bool{}
	for _, t := range relevantCellTypes[task] {
		allowed[t] = true
	}
	var out []*Cell
	seen := map[string]bool{}
	for _, c := range cells {
		if seen[c.ID] {
			continue
		}
		if !allowed[c.Type] && c.ID != anchorID {
			continue
		}
		seen[c.ID] = true
		out = append(out, c)
	}
	return out
}

// finish attaches buffer units to the selected cells, in notebook order.
func (m *Manager) finish(cells []*Cell) Context {
	// Restore notebook order for determinism.
	pos := map[string]int{}
	for i, c := range m.Notebook.Cells() {
		pos[c.ID] = i
	}
	sort.SliceStable(cells, func(a, b int) bool { return pos[cells[a].ID] < pos[cells[b].ID] })
	ctx := Context{Cells: cells}
	for _, c := range cells {
		ctx.Units = append(ctx.Units, m.cellInfo[c.ID]...)
	}
	return ctx
}
