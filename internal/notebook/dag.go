package notebook

import (
	"fmt"
	"sort"
	"strings"
)

// Notebook is an ordered collection of cells plus the live dependency DAG.
type Notebook struct {
	Name  string
	cells []*Cell
	byID  map[string]*Cell

	// varDef maps a variable name to the ID of the cell defining it
	// (last definition wins, like notebook execution order).
	varDef map[string]string
	// edges maps a cell to the IDs of cells it depends on (its ancestors'
	// first hop); reverse holds the inverse.
	edges   map[string][]string
	reverse map[string][]string
	nextSeq int
}

// New creates an empty notebook.
func New(name string) *Notebook {
	return &Notebook{
		Name:    name,
		byID:    map[string]*Cell{},
		varDef:  map[string]string{},
		edges:   map[string][]string{},
		reverse: map[string][]string{},
	}
}

// Cells returns the cells in notebook order.
func (n *Notebook) Cells() []*Cell {
	out := make([]*Cell, len(n.cells))
	copy(out, n.cells)
	return out
}

// Cell returns a cell by ID.
func (n *Notebook) Cell(id string) (*Cell, bool) {
	c, ok := n.byID[id]
	return c, ok
}

// NumCells returns the number of cells.
func (n *Notebook) NumCells() int { return len(n.cells) }

// AddCell appends a cell, analyzes it, and updates the DAG incrementally.
// Returns the assigned cell ID. Cells failing the syntax check are
// rejected (the DAG only reflects syntactically valid state).
func (n *Notebook) AddCell(cellType CellType, source string) (string, error) {
	n.nextSeq++
	id := fmt.Sprintf("c%03d", n.nextSeq)
	c := &Cell{ID: id, Type: cellType, Source: source}
	if err := c.analyze(); err != nil {
		return "", err
	}
	n.cells = append(n.cells, c)
	n.byID[id] = c
	n.updateCellEdges(c)
	return id, nil
}

// AddSQLCell appends a SQL cell with an explicit output variable binding.
func (n *Notebook) AddSQLCell(source, outputVar string) (string, error) {
	n.nextSeq++
	id := fmt.Sprintf("c%03d", n.nextSeq)
	c := &Cell{ID: id, Type: CellSQL, Source: source, OutputVar: outputVar}
	if err := c.analyze(); err != nil {
		return "", err
	}
	n.cells = append(n.cells, c)
	n.byID[id] = c
	n.updateCellEdges(c)
	return id, nil
}

// UpdateCell replaces a cell's source and incrementally refreshes the DAG.
// On syntax errors the cell and DAG are left unchanged.
func (n *Notebook) UpdateCell(id, source string) error {
	c, ok := n.byID[id]
	if !ok {
		return fmt.Errorf("notebook: unknown cell %q", id)
	}
	trial := &Cell{ID: c.ID, Type: c.Type, Source: source, OutputVar: c.OutputVar}
	if err := trial.analyze(); err != nil {
		return err
	}
	c.Source = source
	c.defs, c.refs = trial.defs, trial.refs
	n.rebuildVarTable()
	n.rebuildAllEdges()
	return nil
}

// DeleteCell removes a cell and refreshes the DAG.
func (n *Notebook) DeleteCell(id string) error {
	if _, ok := n.byID[id]; !ok {
		return fmt.Errorf("notebook: unknown cell %q", id)
	}
	delete(n.byID, id)
	for i, c := range n.cells {
		if c.ID == id {
			n.cells = append(n.cells[:i], n.cells[i+1:]...)
			break
		}
	}
	n.rebuildVarTable()
	n.rebuildAllEdges()
	return nil
}

// ConstructDAG rebuilds the whole DAG from scratch — Algorithm 3's two
// passes over all cells. Used at notebook open (the cold-start cost
// Figure 7 measures) and by UpdateCell/DeleteCell.
func (n *Notebook) ConstructDAG() {
	n.rebuildVarTable()
	n.rebuildAllEdges()
}

// rebuildVarTable is pass 1: identify new variables per cell.
func (n *Notebook) rebuildVarTable() {
	n.varDef = map[string]string{}
	for _, c := range n.cells {
		for _, v := range c.defs {
			n.varDef[v] = c.ID // later definitions shadow earlier ones
		}
	}
}

// rebuildAllEdges is pass 2: find referenced cells per cell.
func (n *Notebook) rebuildAllEdges() {
	n.edges = map[string][]string{}
	n.reverse = map[string][]string{}
	for _, c := range n.cells {
		n.linkCell(c)
	}
}

// updateCellEdges incrementally maintains the DAG for a newly added cell:
// register its definitions and link its references. Existing later cells
// cannot reference it yet (it was just created), so no global rebuild is
// needed — this is the fast path Figure 7's per-cell update measures.
func (n *Notebook) updateCellEdges(c *Cell) {
	n.linkCell(c)
	for _, v := range c.defs {
		n.varDef[v] = c.ID
	}
}

func (n *Notebook) linkCell(c *Cell) {
	seen := map[string]bool{}
	for _, ref := range c.refs {
		def, ok := n.varDef[ref]
		if !ok || def == c.ID || seen[def] {
			continue
		}
		seen[def] = true
		n.edges[c.ID] = append(n.edges[c.ID], def)
		n.reverse[def] = append(n.reverse[def], c.ID)
	}
}

// DependsOn returns the IDs of cells the given cell directly references.
func (n *Notebook) DependsOn(id string) []string {
	out := append([]string(nil), n.edges[id]...)
	sort.Strings(out)
	return out
}

// Dependents returns the IDs of cells directly referencing the given cell.
func (n *Notebook) Dependents(id string) []string {
	out := append([]string(nil), n.reverse[id]...)
	sort.Strings(out)
	return out
}

// Ancestors returns every transitive dependency of a cell, in
// deterministic order.
func (n *Notebook) Ancestors(id string) []string {
	return n.closure(id, n.edges)
}

// Descendants returns every transitive dependent of a cell.
func (n *Notebook) Descendants(id string) []string {
	return n.closure(id, n.reverse)
}

func (n *Notebook) closure(id string, adj map[string][]string) []string {
	var out []string
	seen := map[string]bool{id: true}
	stack := append([]string(nil), adj[id]...)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		out = append(out, cur)
		stack = append(stack, adj[cur]...)
	}
	sort.Strings(out)
	return out
}

// DefiningCell returns the cell that defines a data variable.
func (n *Notebook) DefiningCell(variable string) (*Cell, bool) {
	id, ok := n.varDef[variable]
	if !ok {
		// Case-insensitive fallback: SQL identifiers are case-blind.
		for v, cid := range n.varDef {
			if strings.EqualFold(v, variable) {
				id = cid
				ok = true
				break
			}
		}
	}
	if !ok {
		return nil, false
	}
	c, ok2 := n.byID[id]
	return c, ok2
}

// Variables returns all defined variable names, sorted.
func (n *Notebook) Variables() []string {
	out := make([]string, 0, len(n.varDef))
	for v := range n.varDef {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
