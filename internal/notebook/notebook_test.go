package notebook

import (
	"testing"

	"datalab/internal/comm"
)

// buildSampleNotebook creates the canonical mixed-language notebook used
// across these tests:
//
//	c001 SQL     -> raw  (SELECT ... FROM sales)
//	c002 Python  -> clean = raw.dropna()
//	c003 Python  -> summary = clean.groupby(...).sum()
//	c004 Chart   -> reads summary
//	c005 Markdown
//	c006 Python  -> unrelated = other_source * 2  (no link)
func buildSampleNotebook(t *testing.T) *Notebook {
	t.Helper()
	nb := New("analysis")
	if _, err := nb.AddSQLCell("SELECT region, amount FROM sales", "raw"); err != nil {
		t.Fatal(err)
	}
	if _, err := nb.AddCell(CellPython, "clean = raw.dropna()"); err != nil {
		t.Fatal(err)
	}
	if _, err := nb.AddCell(CellPython, `summary = clean.groupby("region").sum()`); err != nil {
		t.Fatal(err)
	}
	if _, err := nb.AddCell(CellChart, `{"mark":"bar","encoding":{"x":{"field":"region"},"y":{"field":"amount"}},"data":"summary"}`); err != nil {
		t.Fatal(err)
	}
	if _, err := nb.AddCell(CellMarkdown, "## Regional revenue analysis\nNotes about the sales data."); err != nil {
		t.Fatal(err)
	}
	if _, err := nb.AddCell(CellPython, "unrelated = other_source * 2"); err != nil {
		t.Fatal(err)
	}
	return nb
}

func TestDAGEdges(t *testing.T) {
	nb := buildSampleNotebook(t)
	if deps := nb.DependsOn("c002"); len(deps) != 1 || deps[0] != "c001" {
		t.Errorf("c002 deps = %v", deps)
	}
	if deps := nb.DependsOn("c003"); len(deps) != 1 || deps[0] != "c002" {
		t.Errorf("c003 deps = %v", deps)
	}
	if deps := nb.DependsOn("c004"); len(deps) != 1 || deps[0] != "c003" {
		t.Errorf("c004 (chart) deps = %v", deps)
	}
	if deps := nb.DependsOn("c005"); len(deps) != 0 {
		t.Errorf("markdown deps = %v", deps)
	}
	if deps := nb.DependsOn("c006"); len(deps) != 0 {
		t.Errorf("unrelated deps = %v", deps)
	}
}

func TestAncestorsAndDescendants(t *testing.T) {
	nb := buildSampleNotebook(t)
	anc := nb.Ancestors("c004")
	if len(anc) != 3 {
		t.Errorf("chart ancestors = %v, want c001-c003", anc)
	}
	desc := nb.Descendants("c001")
	if len(desc) != 3 {
		t.Errorf("c001 descendants = %v, want c002-c004", desc)
	}
}

func TestSQLCellVariableBinding(t *testing.T) {
	nb := New("t")
	id, err := nb.AddSQLCell("SELECT * FROM orders", "orders_df")
	if err != nil {
		t.Fatal(err)
	}
	def, ok := nb.DefiningCell("orders_df")
	if !ok || def.ID != id {
		t.Errorf("DefiningCell = %v, %v", def, ok)
	}
	// A second SQL cell consuming the first's output variable links up.
	id2, err := nb.AddSQLCell("SELECT region FROM orders_df", "regions")
	if err != nil {
		t.Fatal(err)
	}
	if deps := nb.DependsOn(id2); len(deps) != 1 || deps[0] != id {
		t.Errorf("SQL-to-SQL dep = %v", deps)
	}
}

func TestSQLOutDirective(t *testing.T) {
	nb := New("t")
	if _, err := nb.AddCell(CellSQL, "-- out: mydata\nSELECT 1 FROM t"); err != nil {
		t.Fatal(err)
	}
	if _, ok := nb.DefiningCell("mydata"); !ok {
		t.Error("-- out: directive not honored")
	}
}

func TestUpdateCellRewiresDAG(t *testing.T) {
	nb := buildSampleNotebook(t)
	// Point the chart at the clean frame instead of summary.
	err := nb.UpdateCell("c004", `{"mark":"bar","encoding":{"x":{"field":"region"},"y":{"field":"amount"}},"data":"clean"}`)
	if err != nil {
		t.Fatal(err)
	}
	if deps := nb.DependsOn("c004"); len(deps) != 1 || deps[0] != "c002" {
		t.Errorf("rewired deps = %v, want [c002]", deps)
	}
}

func TestUpdateCellSyntaxErrorKeepsOldState(t *testing.T) {
	nb := buildSampleNotebook(t)
	if err := nb.UpdateCell("c002", "clean = raw.dropna('unterminated"); err == nil {
		t.Fatal("expected syntax error")
	}
	c, _ := nb.Cell("c002")
	if c.Source != "clean = raw.dropna()" {
		t.Error("failed update mutated the cell")
	}
	if deps := nb.DependsOn("c002"); len(deps) != 1 {
		t.Errorf("failed update broke the DAG: %v", deps)
	}
}

func TestDeleteCell(t *testing.T) {
	nb := buildSampleNotebook(t)
	if err := nb.DeleteCell("c002"); err != nil {
		t.Fatal(err)
	}
	if nb.NumCells() != 5 {
		t.Errorf("cells = %d", nb.NumCells())
	}
	// c003's reference to clean is now dangling: no edge.
	if deps := nb.DependsOn("c003"); len(deps) != 0 {
		t.Errorf("c003 deps after delete = %v", deps)
	}
	if err := nb.DeleteCell("ghost"); err == nil {
		t.Error("deleting unknown cell should error")
	}
}

func TestVariableShadowing(t *testing.T) {
	nb := New("t")
	id1, _ := nb.AddCell(CellPython, "df = load()")
	id2, _ := nb.AddCell(CellPython, "df = transform()")
	id3, _ := nb.AddCell(CellPython, "out = df.sum()")
	_ = id1
	nb.ConstructDAG()
	if deps := nb.DependsOn(id3); len(deps) != 1 || deps[0] != id2 {
		t.Errorf("shadowed variable should link to latest def: %v", deps)
	}
}

func TestClassifyTask(t *testing.T) {
	cases := []struct {
		q    string
		want TaskType
	}{
		{"draw a bar chart of revenue", TaskNL2VIS},
		{"write a sql query joining orders", TaskNL2SQL},
		{"clean the dataframe with pandas", TaskNL2DSCode},
		{"analyze anomalies in the trend", TaskNL2Insight},
		{"hello world", TaskUnknown},
	}
	for _, c := range cases {
		if got := ClassifyTask(c.q); got != c.want {
			t.Errorf("ClassifyTask(%q) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQueryContextPrunes(t *testing.T) {
	nb := buildSampleNotebook(t)
	buf := comm.NewBuffer(8)
	m := NewManager(nb, buf)

	ctx := m.QueryContext("clean the summary dataframe with pandas", "summary")
	// NL2DSCode: only Python cells survive pruning; summary's defining
	// cell c003 is Python, its descendant c004 is a chart (pruned).
	for _, c := range ctx.Cells {
		if c.Type != CellPython && c.Type != CellPySpark {
			t.Errorf("non-Python cell %s (%s) survived NL2DSCode pruning", c.ID, c.Type)
		}
	}
	found := false
	for _, c := range ctx.Cells {
		if c.ID == "c003" {
			found = true
		}
	}
	if !found {
		t.Errorf("defining cell c003 missing from context: %+v", ctx.Cells)
	}
	// The unrelated cell c006 must not appear.
	for _, c := range ctx.Cells {
		if c.ID == "c006" {
			t.Error("unrelated cell leaked into context")
		}
	}
}

func TestQueryContextWithoutDAGTakesEverything(t *testing.T) {
	nb := buildSampleNotebook(t)
	m := NewManager(nb, comm.NewBuffer(8))
	m.UseDAG = false
	ctx := m.QueryContext("any question at all", "")
	if len(ctx.Cells) != nb.NumCells() {
		t.Errorf("S1 context cells = %d, want all %d", len(ctx.Cells), nb.NumCells())
	}
}

func TestTokenCostReduction(t *testing.T) {
	// The core Table IV claim: DAG-pruned context costs far fewer tokens.
	nb := buildSampleNotebook(t)
	m := NewManager(nb, comm.NewBuffer(8))
	withDAG := m.QueryContext("visualize the summary by region as a bar chart", "summary")
	m.UseDAG = false
	withoutDAG := m.QueryContext("visualize the summary by region as a bar chart", "summary")
	if withDAG.Tokens() >= withoutDAG.Tokens() {
		t.Errorf("DAG context (%d tokens) should cost less than full context (%d)",
			withDAG.Tokens(), withoutDAG.Tokens())
	}
}

func TestCellContextIncludesAncestors(t *testing.T) {
	nb := buildSampleNotebook(t)
	m := NewManager(nb, comm.NewBuffer(8))
	ctx := m.CellContext("c004", "fix this chart")
	ids := map[string]bool{}
	for _, c := range ctx.Cells {
		ids[c.ID] = true
	}
	if !ids["c004"] {
		t.Error("anchor cell missing")
	}
	// NL2VIS allows SQL/Python/Chart: all three ancestors qualify.
	for _, want := range []string{"c001", "c002", "c003"} {
		if !ids[want] {
			t.Errorf("ancestor %s missing from cell context %v", want, ctx.Cells)
		}
	}
}

func TestMarkdownSimilaritySelection(t *testing.T) {
	nb := buildSampleNotebook(t)
	m := NewManager(nb, comm.NewBuffer(8))
	ctx := m.QueryContext("analyze the regional revenue sales data", "")
	foundMD := false
	for _, c := range ctx.Cells {
		if c.Type == CellMarkdown {
			foundMD = true
		}
	}
	// NL2Insight allows markdown; the note mentions "regional revenue".
	if !foundMD {
		t.Error("similar markdown cell not selected for insight task")
	}
}

func TestAssociateUnits(t *testing.T) {
	nb := buildSampleNotebook(t)
	buf := comm.NewBuffer(8)
	m := NewManager(nb, buf)
	info := comm.Info{
		DataSource: "sales", Role: "SQL Agent", Action: "generate_sql_query",
		Description: "wrote the extraction query", Content: "SELECT region, amount FROM sales",
	}
	m.Associate("c001", info)
	ctx := m.CellContext("c002", "rewrite this sql query")
	if len(ctx.Units) != 1 || ctx.Units[0].Role != "SQL Agent" {
		t.Errorf("associated units = %+v", ctx.Units)
	}
	if ctx.Tokens() <= 0 {
		t.Error("context token estimate must be positive")
	}
}

func TestPredictVariableFallsBackToLatest(t *testing.T) {
	nb := New("t")
	_, _ = nb.AddCell(CellPython, "alpha = load()")
	_, _ = nb.AddCell(CellPython, "beta = alpha.filter()")
	m := NewManager(nb, comm.NewBuffer(8))
	ctx := m.QueryContext("zzz qqq xyzzy", "") // matches nothing lexically
	if len(ctx.Cells) == 0 {
		t.Error("fallback to latest variable produced empty context")
	}
}

func TestAddCellRejectsBadSyntax(t *testing.T) {
	nb := New("t")
	if _, err := nb.AddCell(CellPython, "x = 'unterminated"); err == nil {
		t.Error("bad Python accepted")
	}
	if nb.NumCells() != 0 {
		t.Error("failed cell was added")
	}
}
