package pymini

import (
	"reflect"
	"testing"
)

func mustParse(t *testing.T, src string) *Module {
	t.Helper()
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("parse error: %v\nsource:\n%s", err, src)
	}
	return m
}

func TestGlobalDefsAssignments(t *testing.T) {
	m := mustParse(t, `
x = 1
y, z = 2, 3
df = load()
df2 = df.dropna()
`)
	got := GlobalDefs(m)
	want := []string{"x", "y", "z", "df", "df2"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("defs = %v, want %v", got, want)
	}
}

func TestGlobalDefsFunctionsAndImports(t *testing.T) {
	m := mustParse(t, `
import pandas as pd
from sklearn.linear_model import LinearRegression
import numpy

def clean(df):
    tmp = df.dropna()
    return tmp

class Helper:
    def method(self):
        inner = 1
`)
	got := GlobalDefs(m)
	want := []string{"pd", "LinearRegression", "numpy", "clean", "Helper"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("defs = %v, want %v", got, want)
	}
}

func TestLocalVariablesExcluded(t *testing.T) {
	m := mustParse(t, `
def process(data):
    local_var = data * 2
    return local_var
`)
	defs := GlobalDefs(m)
	for _, d := range defs {
		if d == "local_var" || d == "data" {
			t.Errorf("local name %q leaked into globals", d)
		}
	}
}

func TestExternalRefsBasic(t *testing.T) {
	m := mustParse(t, `
result = df.groupby("region").sum()
chart_input = result.reset_index()
`)
	got := ExternalRefs(m)
	want := []string{"df"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("external refs = %v, want %v", got, want)
	}
}

func TestExternalRefsSelfRedefinition(t *testing.T) {
	// df = df.dropna(): df is read before (re)definition -> external.
	m := mustParse(t, `df = df.dropna()`)
	got := ExternalRefs(m)
	if !reflect.DeepEqual(got, []string{"df"}) {
		t.Errorf("refs = %v, want [df]", got)
	}
}

func TestExternalRefsSkipBuiltinsAndImports(t *testing.T) {
	m := mustParse(t, `
import pandas as pd
data = pd.DataFrame()
print(len(data))
total = sum(external_list)
`)
	got := ExternalRefs(m)
	want := []string{"external_list"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("refs = %v, want %v", got, want)
	}
}

func TestExternalRefsAttributeNamesIgnored(t *testing.T) {
	// .sum/.groupby are attributes, not namespace references.
	m := mustParse(t, `out = frame.groupby(keys).agg(total=("v", "sum"))`)
	got := ExternalRefs(m)
	want := []string{"frame", "keys"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("refs = %v, want %v", got, want)
	}
}

func TestExternalRefsSubscriptStore(t *testing.T) {
	// df["new"] = other["col"] mutates df (needs it) and reads other.
	m := mustParse(t, `df["new"] = other["col"] * 2`)
	got := ExternalRefs(m)
	want := []string{"other", "df"}
	// Order may vary by traversal; compare as sets.
	gotSet := map[string]bool{}
	for _, g := range got {
		gotSet[g] = true
	}
	for _, w := range want {
		if !gotSet[w] {
			t.Errorf("missing ref %q in %v", w, got)
		}
	}
}

func TestExternalRefsInFunctionBody(t *testing.T) {
	// Free variables in function bodies reference the outer namespace.
	m := mustParse(t, `
def report():
    return base_table.describe()
`)
	got := ExternalRefs(m)
	if !reflect.DeepEqual(got, []string{"base_table"}) {
		t.Errorf("refs = %v, want [base_table]", got)
	}
}

func TestExternalRefsParamsNotExternal(t *testing.T) {
	m := mustParse(t, `
def scale(df, factor=2):
    return df * factor
`)
	if got := ExternalRefs(m); len(got) != 0 {
		t.Errorf("params leaked as external: %v", got)
	}
}

func TestForLoopAndConditionals(t *testing.T) {
	m := mustParse(t, `
for row in source_rows:
    acc = acc_init + row
if threshold > limit:
    flag = True
else:
    flag = False
`)
	defs := GlobalDefs(m)
	wantDefs := map[string]bool{"row": true, "acc": true, "flag": true}
	for w := range wantDefs {
		found := false
		for _, d := range defs {
			if d == w {
				found = true
			}
		}
		if !found {
			t.Errorf("missing def %q in %v", w, defs)
		}
	}
	refs := ExternalRefs(m)
	refSet := map[string]bool{}
	for _, r := range refs {
		refSet[r] = true
	}
	for _, w := range []string{"source_rows", "acc_init", "threshold", "limit"} {
		if !refSet[w] {
			t.Errorf("missing external ref %q in %v", w, refs)
		}
	}
}

func TestAugmentedAssignment(t *testing.T) {
	m := mustParse(t, `counter += delta`)
	refs := ExternalRefs(m)
	refSet := map[string]bool{}
	for _, r := range refs {
		refSet[r] = true
	}
	if !refSet["counter"] || !refSet["delta"] {
		t.Errorf("augmented assignment refs = %v", refs)
	}
}

func TestMultilineCallContinuation(t *testing.T) {
	m := mustParse(t, `
summary = df.agg(
    total=("amount", "sum"),
    avg=("amount", "mean"),
)
`)
	defs := GlobalDefs(m)
	if !reflect.DeepEqual(defs, []string{"summary"}) {
		t.Errorf("defs = %v", defs)
	}
	refs := ExternalRefs(m)
	if !reflect.DeepEqual(refs, []string{"df"}) {
		t.Errorf("refs = %v", refs)
	}
}

func TestStringsAndCommentsIgnored(t *testing.T) {
	m := mustParse(t, `
# comment mentioning ghost_var
label = "not a ref: phantom"
`)
	refs := ExternalRefs(m)
	if len(refs) != 0 {
		t.Errorf("refs from strings/comments: %v", refs)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"x = 'unterminated",
		"def :",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestLexIndentation(t *testing.T) {
	toks, err := Lex("if a:\n    b = 1\nc = 2\n")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	hasIndent, hasDedent := false, false
	for _, k := range kinds {
		if k == TokIndent {
			hasIndent = true
		}
		if k == TokDedent {
			hasDedent = true
		}
	}
	if !hasIndent || !hasDedent {
		t.Errorf("indentation tokens missing: %v", kinds)
	}
}

func TestKeywordArgumentsNotRefs(t *testing.T) {
	m := mustParse(t, `fig = plot(data, color="red", size=scale_factor)`)
	refs := ExternalRefs(m)
	refSet := map[string]bool{}
	for _, r := range refs {
		refSet[r] = true
	}
	if refSet["color"] || refSet["size"] {
		t.Errorf("keyword arg names counted as refs: %v", refs)
	}
	if !refSet["data"] || !refSet["scale_factor"] || !refSet["plot"] {
		t.Errorf("missing real refs: %v", refs)
	}
}
