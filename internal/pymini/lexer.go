// Package pymini parses the Python subset that appears in BI notebook
// cells — assignments, function/class definitions, imports, loops,
// expression statements over pandas-style calls — into a small AST, and
// analyzes it for the variable definitions and references Algorithm 3's
// DAG construction needs. It is a static analyzer, not an interpreter:
// the notebook executes data operations through the table engine.
package pymini

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies tokens.
type TokKind uint8

// Token kinds.
const (
	TokIdent TokKind = iota
	TokKeyword
	TokNumber
	TokString
	TokOp
	TokNewline
	TokIndent
	TokDedent
	TokEOF
)

// Token is one lexical token with position info for error messages.
type Token struct {
	Kind TokKind
	Text string
	Line int
}

var pyKeywords = map[string]bool{
	"def": true, "class": true, "return": true, "if": true, "elif": true,
	"else": true, "for": true, "while": true, "in": true, "import": true,
	"from": true, "as": true, "with": true, "lambda": true, "pass": true,
	"and": true, "or": true, "not": true, "is": true, "None": true,
	"True": true, "False": true, "break": true, "continue": true,
	"global": true, "try": true, "except": true, "finally": true,
	"raise": true, "assert": true, "del": true, "yield": true,
}

// Lex tokenizes source, producing INDENT/DEDENT tokens from leading
// whitespace the way Python's tokenizer does (tabs count as 4 spaces).
// Blank lines and comment-only lines produce no tokens. Lines ending
// inside brackets continue logically (no NEWLINE).
func Lex(source string) ([]Token, error) {
	var toks []Token
	indentStack := []int{0}
	depth := 0 // bracket nesting: (), [], {}

	lines := strings.Split(source, "\n")
	for lineNo, raw := range lines {
		line := raw
		// Skip blank/comment-only lines entirely (outside brackets).
		if depth == 0 {
			trimmed := strings.TrimSpace(line)
			if trimmed == "" || strings.HasPrefix(trimmed, "#") {
				continue
			}
			// Indentation handling.
			indent := 0
			for _, r := range line {
				if r == ' ' {
					indent++
				} else if r == '\t' {
					indent += 4
				} else {
					break
				}
			}
			top := indentStack[len(indentStack)-1]
			if indent > top {
				indentStack = append(indentStack, indent)
				toks = append(toks, Token{Kind: TokIndent, Line: lineNo + 1})
			}
			for indent < indentStack[len(indentStack)-1] {
				indentStack = indentStack[:len(indentStack)-1]
				toks = append(toks, Token{Kind: TokDedent, Line: lineNo + 1})
			}
			if indent != indentStack[len(indentStack)-1] {
				return nil, fmt.Errorf("pymini: inconsistent indentation at line %d", lineNo+1)
			}
		}

		lineToks, newDepth, err := lexLine(line, lineNo+1, depth)
		if err != nil {
			return nil, err
		}
		toks = append(toks, lineToks...)
		depth = newDepth
		if depth == 0 && len(lineToks) > 0 {
			toks = append(toks, Token{Kind: TokNewline, Line: lineNo + 1})
		}
	}
	for len(indentStack) > 1 {
		indentStack = indentStack[:len(indentStack)-1]
		toks = append(toks, Token{Kind: TokDedent, Line: len(lines)})
	}
	toks = append(toks, Token{Kind: TokEOF, Line: len(lines)})
	return toks, nil
}

func lexLine(line string, lineNo, depth int) ([]Token, int, error) {
	var toks []Token
	i := 0
	n := len(line)
	for i < n {
		c := line[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '#':
			return toks, depth, nil // comment to end of line
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < n && (line[i] == '_' || unicode.IsLetter(rune(line[i])) || unicode.IsDigit(rune(line[i]))) {
				i++
			}
			word := line[start:i]
			kind := TokIdent
			if pyKeywords[word] {
				kind = TokKeyword
			}
			toks = append(toks, Token{Kind: kind, Text: word, Line: lineNo})
		case c >= '0' && c <= '9':
			start := i
			for i < n && (line[i] >= '0' && line[i] <= '9' || line[i] == '.' || line[i] == 'e' ||
				line[i] == 'E' || line[i] == '_' || line[i] == 'x' ||
				line[i] >= 'a' && line[i] <= 'f' || line[i] >= 'A' && line[i] <= 'F') {
				i++
			}
			toks = append(toks, Token{Kind: TokNumber, Text: line[start:i], Line: lineNo})
		case c == '"' || c == '\'':
			quote := c
			triple := i+2 < n && line[i+1] == quote && line[i+2] == quote
			if triple {
				// Single-line triple-quoted strings only; multi-line
				// strings are rare in notebook cells and unsupported.
				end := strings.Index(line[i+3:], strings.Repeat(string(quote), 3))
				if end < 0 {
					return nil, depth, fmt.Errorf("pymini: unterminated triple-quoted string at line %d", lineNo)
				}
				toks = append(toks, Token{Kind: TokString, Text: line[i+3 : i+3+end], Line: lineNo})
				i += 3 + end + 3
				continue
			}
			j := i + 1
			var sb strings.Builder
			closed := false
			for j < n {
				if line[j] == '\\' && j+1 < n {
					sb.WriteByte(line[j+1])
					j += 2
					continue
				}
				if line[j] == quote {
					closed = true
					j++
					break
				}
				sb.WriteByte(line[j])
				j++
			}
			if !closed {
				return nil, depth, fmt.Errorf("pymini: unterminated string at line %d", lineNo)
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Line: lineNo})
			i = j
		default:
			switch c {
			case '(', '[', '{':
				depth++
			case ')', ']', '}':
				if depth > 0 {
					depth--
				}
			}
			// Multi-char operators.
			for _, op := range []string{"**=", "//=", "==", "!=", "<=", ">=", "->", "+=", "-=", "*=", "/=", "//", "**", ":="} {
				if strings.HasPrefix(line[i:], op) {
					toks = append(toks, Token{Kind: TokOp, Text: op, Line: lineNo})
					i += len(op)
					goto next
				}
			}
			toks = append(toks, Token{Kind: TokOp, Text: string(c), Line: lineNo})
			i++
		next:
		}
	}
	return toks, depth, nil
}
