package pymini

import (
	"fmt"
)

// Stmt is a statement node.
type Stmt interface{ stmt() }

// Assign is `targets = expr` (including chained a = b = expr, tuple
// unpacking, and augmented assignment).
type Assign struct {
	Targets []string // simple names bound by the assignment
	// AttrTargets are attribute/subscript stores (df["x"] = ..., a.b = ...):
	// the base names, which count as mutations, not fresh definitions.
	AttrTargets []string
	Refs        []string // names read on the right-hand side (and in subscripts)
	Augmented   bool     // += etc. reads the target too
	Line        int
}

func (*Assign) stmt() {}

// FuncDef is `def name(params): body`.
type FuncDef struct {
	Name   string
	Params []string
	Body   []Stmt
	Line   int
}

func (*FuncDef) stmt() {}

// ClassDef is `class name(...): body`.
type ClassDef struct {
	Name string
	Body []Stmt
	Line int
}

func (*ClassDef) stmt() {}

// Import binds module names: `import pandas as pd`, `from x import y, z`.
type Import struct {
	Bound []string // names introduced into the namespace
	Line  int
}

func (*Import) stmt() {}

// For is `for vars in iter: body`.
type For struct {
	Vars []string
	Refs []string
	Body []Stmt
	Line int
}

func (*For) stmt() {}

// Cond covers if/elif/else and while: condition refs plus nested bodies.
type Cond struct {
	Refs   []string
	Bodies [][]Stmt
	Line   int
}

func (*Cond) stmt() {}

// ExprStmt is a bare expression (function call, method chain).
type ExprStmt struct {
	Refs []string
	Line int
}

func (*ExprStmt) stmt() {}

// Module is a parsed cell.
type Module struct {
	Stmts []Stmt
}

// Parse lexes and parses source into a Module.
func Parse(source string) (*Module, error) {
	toks, err := Lex(source)
	if err != nil {
		return nil, err
	}
	p := &pyParser{toks: toks}
	stmts, err := p.parseBlock(false)
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != TokEOF {
		return nil, fmt.Errorf("pymini: unexpected token %q at line %d", p.peek().Text, p.peek().Line)
	}
	return &Module{Stmts: stmts}, nil
}

type pyParser struct {
	toks []Token
	pos  int
}

func (p *pyParser) peek() Token { return p.toks[p.pos] }
func (p *pyParser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *pyParser) skipNewlines() {
	for p.peek().Kind == TokNewline {
		p.next()
	}
}

// parseBlock parses statements until DEDENT/EOF. When indented is true,
// the block was opened by an INDENT that this call consumes the matching
// DEDENT of.
func (p *pyParser) parseBlock(indented bool) ([]Stmt, error) {
	var stmts []Stmt
	for {
		p.skipNewlines()
		t := p.peek()
		if t.Kind == TokEOF {
			return stmts, nil
		}
		if t.Kind == TokDedent {
			if indented {
				p.next()
			}
			return stmts, nil
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			stmts = append(stmts, s)
		}
	}
}

func (p *pyParser) parseStmt() (Stmt, error) {
	t := p.peek()
	if t.Kind == TokKeyword {
		switch t.Text {
		case "def":
			return p.parseFuncDef()
		case "class":
			return p.parseClassDef()
		case "import", "from":
			return p.parseImport()
		case "for":
			return p.parseFor()
		case "if", "while", "elif", "else", "try", "except", "finally", "with":
			return p.parseCond()
		case "return", "pass", "break", "continue", "raise", "assert", "del", "global", "yield":
			p.next()
			refs := p.collectLineRefs()
			p.endStatement()
			return &ExprStmt{Refs: refs, Line: t.Line}, nil
		}
	}
	return p.parseSimple()
}

// parseSimple handles assignments and expression statements.
func (p *pyParser) parseSimple() (Stmt, error) {
	start := p.pos
	line := p.peek().Line
	// Scan the logical line's tokens.
	var lineToks []Token
	for {
		t := p.peek()
		if t.Kind == TokNewline || t.Kind == TokEOF || t.Kind == TokDedent {
			break
		}
		lineToks = append(lineToks, p.next())
	}
	p.endStatement()
	if len(lineToks) == 0 {
		return nil, nil
	}
	// Find a top-level assignment operator.
	depth := 0
	assignIdx := -1
	augmented := false
	for i, t := range lineToks {
		if t.Kind == TokOp {
			switch t.Text {
			case "(", "[", "{":
				depth++
			case ")", "]", "}":
				depth--
			case "=":
				if depth == 0 && assignIdx < 0 {
					assignIdx = i
				}
			case "+=", "-=", "*=", "/=", "//=", "**=":
				if depth == 0 && assignIdx < 0 {
					assignIdx = i
					augmented = true
				}
			case "==", "!=", "<=", ">=":
				// comparisons, not assignment
			}
		}
	}
	if assignIdx < 0 {
		return &ExprStmt{Refs: identRefs(lineToks), Line: line}, nil
	}
	lhs := lineToks[:assignIdx]
	rhs := lineToks[assignIdx+1:]
	a := &Assign{Augmented: augmented, Line: line}
	a.Refs = identRefs(rhs)

	// LHS: simple names become targets; attribute/subscript stores record
	// the base name as mutated (and read).
	i := 0
	for i < len(lhs) {
		t := lhs[i]
		if t.Kind != TokIdent {
			i++
			continue
		}
		// Peek at the follower to classify.
		isStore := i+1 >= len(lhs)
		if !isStore {
			nt := lhs[i+1]
			if nt.Kind == TokOp && (nt.Text == "," || nt.Text == "=") {
				isStore = true
			}
			if nt.Kind == TokOp && (nt.Text == "[" || nt.Text == ".") {
				a.AttrTargets = append(a.AttrTargets, t.Text)
				a.Refs = append(a.Refs, t.Text)
				// Subscript expressions may reference other names.
				// Skip to the matching close.
				i++
				continue
			}
		}
		if isStore {
			a.Targets = append(a.Targets, t.Text)
		}
		i++
	}
	if augmented {
		a.Refs = append(a.Refs, a.Targets...)
	}
	_ = start
	return a, nil
}

func (p *pyParser) endStatement() {
	if p.peek().Kind == TokNewline {
		p.next()
	}
}

// collectLineRefs consumes tokens to end of line, returning ident refs.
func (p *pyParser) collectLineRefs() []string {
	var toks []Token
	for {
		t := p.peek()
		if t.Kind == TokNewline || t.Kind == TokEOF || t.Kind == TokDedent || t.Kind == TokIndent {
			break
		}
		toks = append(toks, p.next())
	}
	return identRefs(toks)
}

func (p *pyParser) parseFuncDef() (Stmt, error) {
	t := p.next() // def
	name := p.peek()
	if name.Kind != TokIdent {
		return nil, fmt.Errorf("pymini: expected function name at line %d", t.Line)
	}
	p.next()
	fd := &FuncDef{Name: name.Text, Line: t.Line}
	// Parameters between ( ).
	if p.peek().Kind == TokOp && p.peek().Text == "(" {
		p.next()
		depth := 1
		expectParam := true
		for depth > 0 {
			tok := p.next()
			if tok.Kind == TokEOF {
				return nil, fmt.Errorf("pymini: unterminated parameter list at line %d", t.Line)
			}
			if tok.Kind == TokOp {
				switch tok.Text {
				case "(", "[", "{":
					depth++
				case ")", "]", "}":
					depth--
				case ",":
					if depth == 1 {
						expectParam = true
					}
				case "=":
					expectParam = false
				}
				continue
			}
			if tok.Kind == TokIdent && depth == 1 && expectParam {
				fd.Params = append(fd.Params, tok.Text)
				expectParam = false
			}
		}
	}
	body, err := p.parseSuite()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

func (p *pyParser) parseClassDef() (Stmt, error) {
	t := p.next() // class
	name := p.peek()
	if name.Kind != TokIdent {
		return nil, fmt.Errorf("pymini: expected class name at line %d", t.Line)
	}
	p.next()
	// Skip base list.
	for {
		tok := p.peek()
		if tok.Kind == TokNewline || tok.Kind == TokEOF {
			break
		}
		if tok.Kind == TokOp && tok.Text == ":" {
			break
		}
		p.next()
	}
	body, err := p.parseSuite()
	if err != nil {
		return nil, err
	}
	return &ClassDef{Name: name.Text, Body: body, Line: t.Line}, nil
}

func (p *pyParser) parseImport() (Stmt, error) {
	t := p.next() // import | from
	imp := &Import{Line: t.Line}
	if t.Text == "from" {
		// from module import a [as b], c
		for p.peek().Kind == TokIdent || (p.peek().Kind == TokOp && p.peek().Text == ".") {
			p.next() // module path
		}
		if p.peek().Kind == TokKeyword && p.peek().Text == "import" {
			p.next()
		}
		imp.Bound = p.parseImportNames()
		p.endStatement()
		return imp, nil
	}
	// import a.b as c, d
	imp.Bound = p.parseImportNames()
	p.endStatement()
	return imp, nil
}

// parseImportNames reads `name[.sub]* [as alias]` lists, returning bound
// top-level names (alias if present, else first path segment).
func (p *pyParser) parseImportNames() []string {
	var bound []string
	for {
		if p.peek().Kind != TokIdent && !(p.peek().Kind == TokOp && p.peek().Text == "*") {
			break
		}
		first := p.next().Text
		// Swallow dotted path.
		for p.peek().Kind == TokOp && p.peek().Text == "." {
			p.next()
			if p.peek().Kind == TokIdent {
				p.next()
			}
		}
		name := first
		if p.peek().Kind == TokKeyword && p.peek().Text == "as" {
			p.next()
			if p.peek().Kind == TokIdent {
				name = p.next().Text
			}
		}
		if name != "*" {
			bound = append(bound, name)
		}
		if p.peek().Kind == TokOp && p.peek().Text == "," {
			p.next()
			continue
		}
		break
	}
	return bound
}

func (p *pyParser) parseFor() (Stmt, error) {
	t := p.next() // for
	f := &For{Line: t.Line}
	// Loop variables until `in`.
	for {
		tok := p.peek()
		if tok.Kind == TokKeyword && tok.Text == "in" {
			p.next()
			break
		}
		if tok.Kind == TokNewline || tok.Kind == TokEOF {
			return nil, fmt.Errorf("pymini: for without in at line %d", t.Line)
		}
		if tok.Kind == TokIdent {
			f.Vars = append(f.Vars, tok.Text)
		}
		p.next()
	}
	// Iterable expression until ':'.
	var iterToks []Token
	for {
		tok := p.peek()
		if tok.Kind == TokOp && tok.Text == ":" {
			break
		}
		if tok.Kind == TokNewline || tok.Kind == TokEOF {
			break
		}
		iterToks = append(iterToks, p.next())
	}
	f.Refs = identRefs(iterToks)
	body, err := p.parseSuite()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *pyParser) parseCond() (Stmt, error) {
	t := p.next() // if/while/...
	c := &Cond{Line: t.Line}
	var condToks []Token
	for {
		tok := p.peek()
		if tok.Kind == TokOp && tok.Text == ":" {
			break
		}
		if tok.Kind == TokNewline || tok.Kind == TokEOF {
			break
		}
		condToks = append(condToks, p.next())
	}
	c.Refs = identRefs(condToks)
	body, err := p.parseSuite()
	if err != nil {
		return nil, err
	}
	c.Bodies = append(c.Bodies, body)
	// Chained elif/else/except/finally clauses attach to this Cond.
	for {
		p.skipNewlines()
		tok := p.peek()
		if tok.Kind != TokKeyword {
			break
		}
		switch tok.Text {
		case "elif", "else", "except", "finally":
			p.next()
			var extra []Token
			for {
				t2 := p.peek()
				if t2.Kind == TokOp && t2.Text == ":" {
					break
				}
				if t2.Kind == TokNewline || t2.Kind == TokEOF {
					break
				}
				extra = append(extra, p.next())
			}
			c.Refs = append(c.Refs, identRefs(extra)...)
			body, err := p.parseSuite()
			if err != nil {
				return nil, err
			}
			c.Bodies = append(c.Bodies, body)
		default:
			return c, nil
		}
	}
	return c, nil
}

// parseSuite parses `: NEWLINE INDENT block DEDENT` or `: simple-stmt`.
func (p *pyParser) parseSuite() ([]Stmt, error) {
	if p.peek().Kind == TokOp && p.peek().Text == ":" {
		p.next()
	}
	if p.peek().Kind == TokNewline {
		p.next()
		if p.peek().Kind == TokIndent {
			p.next()
			return p.parseBlock(true)
		}
		return nil, nil
	}
	// Inline suite: `if x: y = 1`
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if s == nil {
		return nil, nil
	}
	return []Stmt{s}, nil
}

// identRefs extracts identifier references from a token run, skipping
// attribute names after '.' and keyword-argument names before '='.
func identRefs(toks []Token) []string {
	var refs []string
	for i, t := range toks {
		if t.Kind != TokIdent {
			continue
		}
		if i > 0 && toks[i-1].Kind == TokOp && toks[i-1].Text == "." {
			continue // attribute access: not a namespace reference
		}
		if i+1 < len(toks) && toks[i+1].Kind == TokOp && toks[i+1].Text == "=" &&
			i > 0 && toks[i-1].Kind == TokOp && (toks[i-1].Text == "(" || toks[i-1].Text == ",") {
			continue // keyword argument name
		}
		refs = append(refs, t.Text)
	}
	return refs
}
