package pymini

// builtins are names that never count as cross-cell references.
var builtins = map[string]bool{
	"print": true, "len": true, "range": true, "sum": true, "min": true,
	"max": true, "abs": true, "round": true, "sorted": true, "list": true,
	"dict": true, "set": true, "tuple": true, "str": true, "int": true,
	"float": true, "bool": true, "enumerate": true, "zip": true, "map": true,
	"filter": true, "open": true, "type": true, "isinstance": true,
	"Exception": true, "ValueError": true, "KeyError": true, "display": true,
}

// GlobalDefs returns the names a cell introduces into the notebook's
// global namespace, in first-definition order: top-level assignment
// targets, function and class definitions, and import bindings. Local
// variables inside function bodies are excluded (Algorithm 3 explicitly
// skips them).
func GlobalDefs(m *Module) []string {
	var out []string
	seen := map[string]bool{}
	add := func(name string) {
		if name == "" || seen[name] {
			return
		}
		seen[name] = true
		out = append(out, name)
	}
	for _, s := range m.Stmts {
		switch x := s.(type) {
		case *Assign:
			for _, t := range x.Targets {
				add(t)
			}
		case *FuncDef:
			add(x.Name)
		case *ClassDef:
			add(x.Name)
		case *Import:
			for _, b := range x.Bound {
				add(b)
			}
		case *For:
			// Top-level loop variables leak into the namespace in Python.
			for _, v := range x.Vars {
				add(v)
			}
			for _, name := range defsInBlock(x.Body) {
				add(name)
			}
		case *Cond:
			for _, body := range x.Bodies {
				for _, name := range defsInBlock(body) {
					add(name)
				}
			}
		}
	}
	return out
}

// defsInBlock collects assignments/defs in a nested top-level block
// (if/for bodies run in the global scope).
func defsInBlock(stmts []Stmt) []string {
	var out []string
	for _, s := range stmts {
		switch x := s.(type) {
		case *Assign:
			out = append(out, x.Targets...)
		case *FuncDef:
			out = append(out, x.Name)
		case *ClassDef:
			out = append(out, x.Name)
		case *Import:
			out = append(out, x.Bound...)
		case *For:
			out = append(out, x.Vars...)
			out = append(out, defsInBlock(x.Body)...)
		case *Cond:
			for _, b := range x.Bodies {
				out = append(out, defsInBlock(b)...)
			}
		}
	}
	return out
}

// ExternalRefs returns the names a cell reads that it did not define
// earlier in the same cell — the references that create inter-cell edges.
// Builtins and names bound by imports/defs/params in scope are excluded.
func ExternalRefs(m *Module) []string {
	defined := map[string]bool{}
	var external []string
	seen := map[string]bool{}
	ref := func(name string) {
		if name == "" || builtins[name] || defined[name] || seen[name] {
			return
		}
		seen[name] = true
		external = append(external, name)
	}
	var walk func(stmts []Stmt, local map[string]bool)
	walk = func(stmts []Stmt, local map[string]bool) {
		isDefined := func(n string) bool { return defined[n] || (local != nil && local[n]) }
		define := func(n string) {
			if local != nil {
				local[n] = true
			} else {
				defined[n] = true
			}
		}
		for _, s := range stmts {
			switch x := s.(type) {
			case *Assign:
				for _, r := range x.Refs {
					if !isDefined(r) {
						ref(r)
					}
				}
				// Mutating a subscript/attribute requires the base to
				// already exist; it was handled via Refs above.
				for _, t := range x.Targets {
					define(t)
				}
			case *Import:
				for _, b := range x.Bound {
					define(b)
				}
			case *FuncDef:
				define(x.Name)
				// Function bodies get their own scope seeded with params;
				// free variables inside still reference the outer scope.
				inner := map[string]bool{}
				if local != nil {
					for k := range local {
						inner[k] = true
					}
				}
				for _, p := range x.Params {
					inner[p] = true
				}
				walk(x.Body, inner)
			case *ClassDef:
				define(x.Name)
				inner := map[string]bool{}
				walk(x.Body, inner)
			case *For:
				for _, r := range x.Refs {
					if !isDefined(r) {
						ref(r)
					}
				}
				for _, v := range x.Vars {
					define(v)
				}
				walk(x.Body, local)
			case *Cond:
				for _, r := range x.Refs {
					if !isDefined(r) {
						ref(r)
					}
				}
				for _, b := range x.Bodies {
					walk(b, local)
				}
			case *ExprStmt:
				for _, r := range x.Refs {
					if !isDefined(r) {
						ref(r)
					}
				}
			}
		}
	}
	walk(m.Stmts, nil)
	return external
}
