// Package agent implements DataLab's LLM-based agent framework (§III):
// BI agents assembled as DAG workflows of reusable components (LLM calls,
// data tools, retrievers), the concrete agents for data preparation,
// analysis, and visualization, and the proxy-side planner that maps user
// queries to FSM execution plans.
package agent

import (
	"fmt"
	"sort"
)

// Component is one reusable node in an agent workflow: an LLM API call,
// a data tool (Python sandbox, Vega-Lite environment), a retriever, etc.
type Component func(in map[string]any) (any, error)

// Workflow is a DAG of components. Nodes produce values consumed by their
// out-edges; edges carry a name under which the upstream result appears
// in the downstream input map.
type Workflow struct {
	nodes map[string]Component
	// edges[to] = list of (from, as) pairs.
	edges map[string][]edge
	order []string
}

type edge struct {
	from string
	as   string
}

// NewWorkflow returns an empty workflow.
func NewWorkflow() *Workflow {
	return &Workflow{nodes: map[string]Component{}, edges: map[string][]edge{}}
}

// AddNode registers a component under a name.
func (w *Workflow) AddNode(name string, c Component) *Workflow {
	if _, dup := w.nodes[name]; !dup {
		w.order = append(w.order, name)
	}
	w.nodes[name] = c
	return w
}

// Connect routes from's output into to's input map under key as.
func (w *Workflow) Connect(from, to, as string) *Workflow {
	w.edges[to] = append(w.edges[to], edge{from: from, as: as})
	return w
}

// Run executes the workflow with the given seed inputs (available to all
// nodes) and returns every node's output keyed by node name. Execution
// follows a deterministic topological order; cycles error.
func (w *Workflow) Run(seed map[string]any) (map[string]any, error) {
	order, err := w.topoOrder()
	if err != nil {
		return nil, err
	}
	results := map[string]any{}
	for _, name := range order {
		in := map[string]any{}
		for k, v := range seed {
			in[k] = v
		}
		for _, e := range w.edges[name] {
			in[e.as] = results[e.from]
		}
		out, err := w.nodes[name](in)
		if err != nil {
			return results, fmt.Errorf("agent: workflow node %q: %w", name, err)
		}
		results[name] = out
	}
	return results, nil
}

func (w *Workflow) topoOrder() ([]string, error) {
	indeg := map[string]int{}
	consumers := map[string][]string{}
	for _, n := range w.order {
		indeg[n] = 0
	}
	for to, es := range w.edges {
		if _, ok := w.nodes[to]; !ok {
			return nil, fmt.Errorf("agent: edge to unknown node %q", to)
		}
		for _, e := range es {
			if _, ok := w.nodes[e.from]; !ok {
				return nil, fmt.Errorf("agent: edge from unknown node %q", e.from)
			}
			indeg[to]++
			consumers[e.from] = append(consumers[e.from], to)
		}
	}
	var queue []string
	for _, n := range w.order {
		if indeg[n] == 0 {
			queue = append(queue, n)
		}
	}
	var out []string
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		out = append(out, n)
		next := consumers[n]
		sort.Strings(next)
		for _, c := range next {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(out) != len(w.order) {
		return nil, fmt.Errorf("agent: workflow has a cycle")
	}
	return out, nil
}
