package agent

import (
	"strings"

	"datalab/internal/comm"
)

// Planner is the proxy-side analysis that maps a user query to an FSM
// execution plan (§V Steps 1-2): which agents participate and how
// information flows between them.
type Planner struct {
	rt *Runtime
}

// NewPlanner returns a planner over the runtime.
func NewPlanner(rt *Runtime) *Planner { return &Planner{rt: rt} }

// Plan builds the FSM and the agent set for a query against a table.
// Every plan starts at the SQL agent (data extraction); analysis and
// visualization agents attach based on the query's intent vocabulary;
// multi-intent questions fan out and re-join at a terminal synthesizer.
func (p *Planner) Plan(query, tableName string) (*comm.FSM, map[string]comm.Agent) {
	q := strings.ToLower(query)
	plan := comm.NewFSM()
	agents := map[string]comm.Agent{}

	add := func(name string, a comm.Agent) {
		plan.AddAgent(name)
		agents[name] = a
	}
	add(NameSQL, NewSQLAgent(p.rt, tableName))

	var analysis []string
	attach := func(name string, a comm.Agent) {
		add(name, a)
		plan.AddEdge(NameSQL, name)
		analysis = append(analysis, name)
	}
	if containsAny(q, "anomal", "outlier", "unusual", "spike") {
		attach(NameAnomaly, NewAnomalyAgent(p.rt, tableName))
	}
	if containsAny(q, "why", "cause", "driver", "correlat", "relationship", "impact") {
		attach(NameCausal, NewCausalAgent(p.rt, tableName))
	}
	if containsAny(q, "forecast", "predict", "project", "next quarter", "next month", "future") {
		attach(NameForecast, NewForecastAgent(p.rt, tableName))
	}
	if containsAny(q, "clean", "dedup", "fix the data") {
		attach(NameCleaning, NewCleaningAgent(p.rt, tableName))
	}
	if containsAny(q, "impute", "missing value", "fill in") {
		attach(NameImpute, NewImputationAgent(p.rt, tableName))
	}
	if containsAny(q, "explore", "profile", "distribution", "describe the data") {
		attach(NameEDA, NewEDAAgent(p.rt, tableName))
	}
	if containsAny(q, "pandas", "python code", "dataframe code", "script") {
		attach(NameDSCode, NewDSCodeAgent(p.rt, tableName))
	}

	wantChart := containsAny(q, "chart", "plot", "visuali", "graph", "draw", "pie", "trend line")
	wantInsight := containsAny(q, "insight", "analyz", "analysis", "summar", "report", "explain")

	if wantChart {
		add(NameChart, NewChartAgent(p.rt, tableName))
		plan.AddEdge(NameSQL, NameChart)
		for _, a := range analysis {
			plan.AddEdge(a, NameChart)
		}
	}
	if wantInsight || len(analysis) > 1 {
		add(NameInsight, NewInsightAgent(p.rt, tableName))
		plan.AddEdge(NameSQL, NameInsight)
		for _, a := range analysis {
			plan.AddEdge(a, NameInsight)
		}
		if wantChart {
			plan.AddEdge(NameChart, NameInsight)
		}
	}
	return plan, agents
}

func containsAny(s string, subs ...string) bool {
	for _, sub := range subs {
		if strings.Contains(s, sub) {
			return true
		}
	}
	return false
}

// AllFaithful reports whether every BIAgent in the set produced a correct
// result on its last successful run — the accuracy signal for multi-agent
// questions.
func AllFaithful(agents map[string]comm.Agent) bool {
	for _, a := range agents {
		if ba, ok := a.(*BIAgent); ok && !ba.Faithful() {
			return false
		}
	}
	return true
}
