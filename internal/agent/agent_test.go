package agent

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"datalab/internal/comm"
	"datalab/internal/llm"
	"datalab/internal/sqlengine"
	"datalab/internal/table"
)

func salesCatalog(t *testing.T) *sqlengine.Catalog {
	t.Helper()
	tbl := table.MustNew("sales",
		[]string{"region", "product", "revenue", "cost", "ftime"},
		[]table.Kind{table.KindString, table.KindString, table.KindFloat, table.KindFloat, table.KindTime})
	rows := [][]table.Value{
		{table.Str("east"), table.Str("widget"), table.Float(100), table.Float(60), table.Str("2024-01-05")},
		{table.Str("east"), table.Str("gadget"), table.Float(250), table.Float(120), table.Str("2024-02-03")},
		{table.Str("west"), table.Str("widget"), table.Float(80), table.Float(50), table.Str("2024-03-10")},
		{table.Str("west"), table.Str("gadget"), table.Float(300), table.Float(150), table.Str("2024-04-21")},
		{table.Str("north"), table.Str("widget"), table.Float(120), table.Float(70), table.Str("2024-05-11")},
		{table.Str("north"), table.Str("gadget"), table.Float(900), table.Float(200), table.Str("2024-06-18")},
	}
	for _, r := range rows {
		tbl.MustAppendRow(r...)
	}
	cat := sqlengine.NewCatalog()
	cat.Register(tbl)
	return cat
}

func testRuntime(t *testing.T, seed string) *Runtime {
	t.Helper()
	return NewRuntime(llm.NewClient(llm.GPT4, seed), salesCatalog(t))
}

// executeWithRetry mirrors the proxy's retry loop for direct agent calls:
// residual-error draws legitimately fail some attempts.
func executeWithRetry(t *testing.T, a comm.Agent, query string, inputs []comm.Info) comm.Info {
	t.Helper()
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		info, err := a.Execute(query, inputs, attempt)
		if err == nil {
			return info
		}
		lastErr = err
	}
	t.Fatalf("%s exhausted retries: %v", a.Name(), lastErr)
	return comm.Info{}
}

func TestWorkflowRunsInOrder(t *testing.T) {
	w := NewWorkflow()
	w.AddNode("a", func(in map[string]any) (any, error) { return 1, nil })
	w.AddNode("b", func(in map[string]any) (any, error) {
		return in["x"].(int) + 10, nil
	})
	w.Connect("a", "b", "x")
	out, err := w.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if out["b"].(int) != 11 {
		t.Errorf("b = %v", out["b"])
	}
}

func TestWorkflowSeedInputs(t *testing.T) {
	w := NewWorkflow()
	w.AddNode("n", func(in map[string]any) (any, error) {
		return in["query"].(string) + "!", nil
	})
	out, err := w.Run(map[string]any{"query": "hello"})
	if err != nil {
		t.Fatal(err)
	}
	if out["n"].(string) != "hello!" {
		t.Errorf("n = %v", out["n"])
	}
}

func TestWorkflowCycleAndUnknownNode(t *testing.T) {
	w := NewWorkflow()
	w.AddNode("a", func(in map[string]any) (any, error) { return nil, nil })
	w.AddNode("b", func(in map[string]any) (any, error) { return nil, nil })
	w.Connect("a", "b", "x")
	w.Connect("b", "a", "y")
	if _, err := w.Run(nil); err == nil {
		t.Error("cycle not detected")
	}
	w2 := NewWorkflow()
	w2.AddNode("a", func(in map[string]any) (any, error) { return nil, nil })
	w2.Connect("ghost", "a", "x")
	if _, err := w2.Run(nil); err == nil {
		t.Error("unknown node not detected")
	}
}

func TestWorkflowNodeError(t *testing.T) {
	w := NewWorkflow()
	w.AddNode("boom", func(in map[string]any) (any, error) { return nil, errors.New("kaput") })
	if _, err := w.Run(nil); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v", err)
	}
}

func TestSQLAgentEndToEnd(t *testing.T) {
	rt := testRuntime(t, "sqlagent")
	a := NewSQLAgent(rt, "sales")
	info := executeWithRetry(t, a, "total revenue by region", nil)
	if info.Kind != comm.KindSQL || info.Role != NameSQL {
		t.Errorf("info = %+v", info)
	}
	if !strings.Contains(info.Content, "SELECT") || !strings.Contains(info.Content, "GROUP BY") {
		t.Errorf("content missing SQL: %s", info.Content)
	}
	if !strings.Contains(info.Content, "-- dsl:") {
		t.Error("content missing embedded DSL")
	}
}

func TestDSCodeAgentEmitsPandas(t *testing.T) {
	rt := testRuntime(t, "dscode")
	a := NewDSCodeAgent(rt, "sales")
	info := executeWithRetry(t, a, "average revenue by product in pandas", nil)
	if info.Kind != comm.KindCode {
		t.Errorf("kind = %v", info.Kind)
	}
	if !strings.Contains(info.Content, "groupby") {
		t.Errorf("code missing groupby: %s", info.Content)
	}
}

func TestChartAgentConsumesUpstreamDSL(t *testing.T) {
	rt := testRuntime(t, "chartup")
	sqlAgent := NewSQLAgent(rt, "sales")
	sqlInfo := executeWithRetry(t, sqlAgent, "total revenue by region as a bar chart", nil)
	chart := NewChartAgent(rt, "sales")
	info := executeWithRetry(t, chart, "total revenue by region as a bar chart", []comm.Info{sqlInfo})
	if info.Kind != comm.KindChart {
		t.Errorf("kind = %v", info.Kind)
	}
	if !strings.Contains(info.Content, `"mark"`) {
		t.Errorf("chart content = %s", info.Content)
	}
	if !chart.Faithful() {
		t.Error("grounded chart should be faithful")
	}
}

func TestAnalysisAgents(t *testing.T) {
	rt := testRuntime(t, "analysis")
	for _, mk := range []func(*Runtime, string) *BIAgent{
		NewAnomalyAgent, NewCausalAgent, NewForecastAgent, NewEDAAgent, NewMLAgent,
	} {
		a := mk(rt, "sales")
		info := executeWithRetry(t, a, "analyze the revenue", nil)
		if info.Content == "" {
			t.Errorf("%s produced empty content", a.Name())
		}
	}
}

func TestCleaningAgentRegistersTable(t *testing.T) {
	rt := testRuntime(t, "clean")
	tbl, _ := rt.Catalog.Table("sales")
	dirty := tbl.Clone()
	dirty.Name = "dirty"
	dirty.MustAppendRow(table.Null(), table.Str("x"), table.Null(), table.Float(1), table.Null())
	rt.Catalog.Register(dirty)
	a := NewCleaningAgent(rt, "dirty")
	info := executeWithRetry(t, a, "clean the data", nil)
	if !strings.Contains(info.Content, "dropped 1") {
		t.Errorf("content = %s", info.Content)
	}
	cleaned, ok := rt.Catalog.Table("dirty_clean")
	if !ok || cleaned.NumRows() != 6 {
		t.Error("cleaned table not registered correctly")
	}
}

func TestImputationAgentFillsNulls(t *testing.T) {
	rt := testRuntime(t, "impute")
	tbl := table.MustNew("gaps", []string{"v"}, []table.Kind{table.KindFloat})
	tbl.MustAppendRow(table.Float(10))
	tbl.MustAppendRow(table.Null())
	tbl.MustAppendRow(table.Float(20))
	rt.Catalog.Register(tbl)
	a := NewImputationAgent(rt, "gaps")
	executeWithRetry(t, a, "impute missing values", nil)
	imputed, ok := rt.Catalog.Table("gaps_imputed")
	if !ok {
		t.Fatal("imputed table missing")
	}
	if imputed.Get(1, "v").IsNull() {
		t.Error("null not filled")
	}
	if got := imputed.Get(1, "v").F; got != 15 {
		t.Errorf("imputed value = %v, want column mean 15", got)
	}
}

func TestReportAgentComposes(t *testing.T) {
	rt := testRuntime(t, "report")
	a := NewReportAgent(rt, "sales")
	inputs := []comm.Info{
		{Role: NameSQL, Action: "generate_sql_query", Description: "pulled the data", Content: "SELECT 1", Kind: comm.KindSQL},
		{Role: NameAnomaly, Action: "detect_anomalies", Description: "found a spike", Content: "row 5", Kind: comm.KindText},
	}
	info := executeWithRetry(t, a, "write a report", inputs)
	if !strings.Contains(info.Content, "pulled the data") || !strings.Contains(info.Content, "found a spike") {
		t.Errorf("report missing sections: %s", info.Content)
	}
}

func TestChartQAAgentNeedsChart(t *testing.T) {
	rt := testRuntime(t, "chartqa")
	a := NewChartQAAgent(rt, "sales")
	if _, err := a.Execute("what does the chart show", nil, 0); err == nil {
		t.Error("chart QA without a chart should error")
	}
	chartInfo := comm.Info{
		Role: NameChart, Action: "generate_chart",
		Content: `{"mark":"bar","encoding":{"x":{"field":"region"},"y":{"field":"revenue"}}}`,
		Kind:    comm.KindChart, Description: "a bar chart",
	}
	info := executeWithRetry(t, a, "what does the chart show", []comm.Info{chartInfo})
	if !strings.Contains(info.Content, "bar") {
		t.Errorf("answer = %s", info.Content)
	}
}

func TestPlannerBuildsMultiAgentPlan(t *testing.T) {
	rt := testRuntime(t, "planner")
	p := NewPlanner(rt)
	plan, agents := p.Plan("find anomalies in revenue, explain why, and plot the trend", "sales")
	names := plan.Agents()
	nameSet := map[string]bool{}
	for _, n := range names {
		nameSet[n] = true
	}
	for _, want := range []string{NameSQL, NameAnomaly, NameCausal, NameChart, NameInsight} {
		if !nameSet[want] {
			t.Errorf("plan missing %s: %v", want, names)
		}
		if _, ok := agents[want]; nameSet[want] && !ok {
			t.Errorf("agent map missing %s", want)
		}
	}
	// Dependencies: SQL before everything, analyses before insight.
	order, err := plan.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if !(pos[NameSQL] < pos[NameAnomaly] && pos[NameAnomaly] < pos[NameInsight]) {
		t.Errorf("bad order: %v", order)
	}
}

func TestPlannerSimpleQueryIsSQLOnly(t *testing.T) {
	rt := testRuntime(t, "planner2")
	p := NewPlanner(rt)
	plan, _ := p.Plan("total revenue by region", "sales")
	if got := len(plan.Agents()); got != 1 {
		t.Errorf("simple plan has %d agents, want 1: %v", got, plan.Agents())
	}
}

func TestFullProxyRunWithPlanner(t *testing.T) {
	rt := testRuntime(t, "fullrun")
	p := NewPlanner(rt)
	plan, agents := p.Plan("forecast revenue and draw a chart of revenue by region", "sales")
	proxy := comm.NewProxy(comm.DefaultProxyConfig())
	units, stats, err := proxy.Run(plan, agents, "forecast revenue and draw a chart of revenue by region")
	if err != nil {
		t.Fatalf("run failed: %v (stats %+v)", err, stats)
	}
	if !stats.Succeeded {
		t.Error("stats not marked succeeded")
	}
	kinds := map[comm.InfoKind]bool{}
	for _, u := range units {
		kinds[u.Kind] = true
	}
	if !kinds[comm.KindSQL] || !kinds[comm.KindChart] {
		t.Errorf("missing outputs, kinds = %v", kinds)
	}
}

func TestRuntimeQualityLevels(t *testing.T) {
	rt := testRuntime(t, "quality")
	q := rt.Quality(1, 0)
	if q.KnowledgeLevel != 0.5 {
		t.Errorf("profiling fallback knowledge = %v, want 0.5", q.KnowledgeLevel)
	}
	if !q.Structured {
		t.Error("default should be structured")
	}
}

func TestAllFaithful(t *testing.T) {
	rt := testRuntime(t, "faithful")
	agents := map[string]comm.Agent{}
	for i := 0; i < 3; i++ {
		a := NewEDAAgent(rt, "sales")
		a.faithful = true
		agents[fmt.Sprintf("a%d", i)] = a
	}
	if !AllFaithful(agents) {
		t.Error("faithful agents flagged as unfaithful")
	}
	bad := NewSQLAgent(rt, "sales")
	bad.faithful = false
	agents["bad"] = bad
	if AllFaithful(agents) {
		t.Error("unfaithful agent not detected")
	}
}

func TestFidelityIsStochasticButMostlyTrue(t *testing.T) {
	// Analysis agents' fidelity follows the silent-error model: with a
	// strong profile and clean context, the large majority of successful
	// runs must be faithful.
	rt := testRuntime(t, "fidelity-rate")
	faithful, succeeded := 0, 0
	n := 60
	for i := 0; i < n; i++ {
		a := NewEDAAgent(rt, "sales")
		ok := false
		for attempt := 0; attempt < 5 && !ok; attempt++ {
			// Sticky failures legitimately exhaust retries for a few tasks.
			if _, err := a.Execute(fmt.Sprintf("explore variant %d", i), nil, attempt); err == nil {
				ok = true
			}
		}
		if !ok {
			continue
		}
		succeeded++
		if a.Faithful() {
			faithful++
		}
	}
	if succeeded < n*2/3 {
		t.Fatalf("only %d/%d tasks succeeded", succeeded, n)
	}
	if faithful < succeeded*3/4 {
		t.Errorf("only %d/%d successful runs faithful", faithful, succeeded)
	}
}
