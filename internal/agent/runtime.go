package agent

import (
	"fmt"
	"strings"
	"sync"

	"datalab/internal/dsl"
	"datalab/internal/knowledge"
	"datalab/internal/llm"
	"datalab/internal/sqlengine"
	"datalab/internal/table"
)

// Runtime bundles the shared services every agent draws on: the simulated
// LLM, the warehouse catalog, and the knowledge stack. One Runtime is
// shared across an agent fleet working one user session.
type Runtime struct {
	Client  *llm.Client
	Catalog *sqlengine.Catalog
	Graph   *knowledge.Graph
	// Retriever is nil when no knowledge graph is configured; agents then
	// fall back to data profiling.
	Retriever  *knowledge.Retriever
	Translator *knowledge.Translator
	Profiler   *knowledge.Profiler
	// Ambiguity rates how cryptic the active schema is (0 research-clean,
	// ~0.7 enterprise); it feeds the simulated error model.
	Ambiguity float64
	// KnowledgeLevel mirrors what the graph was loaded with.
	KnowledgeLevel knowledge.Level
	// Structured reports the communication mode (for context quality).
	Structured bool
	// Distraction rates irrelevant-context volume reaching agents.
	Distraction float64

	cacheMu      sync.Mutex
	profileCache map[string]*knowledge.Bundle
}

// NewRuntime wires a runtime around a client and catalog.
func NewRuntime(client *llm.Client, catalog *sqlengine.Catalog) *Runtime {
	rt := &Runtime{
		Client:       client,
		Catalog:      catalog,
		Translator:   &knowledge.Translator{Client: client},
		Profiler:     knowledge.NewProfiler(client),
		Structured:   true,
		profileCache: map[string]*knowledge.Bundle{},
	}
	return rt
}

// WithGraph attaches a knowledge graph and retriever.
func (rt *Runtime) WithGraph(g *knowledge.Graph, level knowledge.Level) *Runtime {
	rt.Graph = g
	rt.KnowledgeLevel = level
	rt.Retriever = knowledge.NewRetriever(g, rt.Client)
	return rt
}

// Quality assembles the context-quality features agents pass to the
// simulated LLM, given how completely the schema was linked for the task.
func (rt *Runtime) Quality(schemaLinked float64, iterations int) llm.Quality {
	return llm.Quality{
		SchemaLinked:   schemaLinked,
		KnowledgeLevel: levelValue(rt.KnowledgeLevel, rt.Graph != nil),
		Ambiguity:      rt.Ambiguity,
		Distraction:    rt.Distraction,
		Structured:     rt.Structured,
		Iterations:     iterations,
	}
}

func levelValue(l knowledge.Level, hasGraph bool) float64 {
	if !hasGraph {
		return 0.5 // profiling fallback: partial understanding
	}
	switch l {
	case knowledge.LevelPartial:
		return 0.55
	case knowledge.LevelFull:
		return 1
	default:
		return 0
	}
}

// Candidates resolves the linked-schema candidates for a query against a
// table: through the knowledge graph when present, else through data
// profiling of the physical table.
func (rt *Runtime) Candidates(query, tableName string) ([]knowledge.CandidateColumn, []knowledge.ValueHint, error) {
	if rt.Retriever != nil {
		var cands []knowledge.CandidateColumn
		for _, h := range rt.Retriever.RetrieveColumnsScoped(query, tableName, 10) {
			cands = append(cands, knowledge.CandidateFromNode(h.Node))
		}
		hints := rt.valueHintsFromGraph()
		return cands, hints, nil
	}
	t, ok := rt.Catalog.Table(tableName)
	if !ok {
		return nil, nil, fmt.Errorf("agent: unknown table %q", tableName)
	}
	key := strings.ToLower(tableName)
	rt.cacheMu.Lock()
	b, cached := rt.profileCache[key]
	rt.cacheMu.Unlock()
	if !cached {
		b = rt.Profiler.Profile(t)
		rt.cacheMu.Lock()
		rt.profileCache[key] = b
		rt.cacheMu.Unlock()
	}
	return b.Candidates(), b.ValueHints(), nil
}

func (rt *Runtime) valueHintsFromGraph() []knowledge.ValueHint {
	var hints []knowledge.ValueHint
	for _, id := range rt.Graph.NodesOfType(knowledge.NodeValue) {
		n, _ := rt.Graph.Node(id)
		if n == nil {
			continue
		}
		parent, _ := rt.Graph.Node(n.Parent)
		col := ""
		if parent != nil {
			col = parent.Name
		}
		hints = append(hints, knowledge.ValueHint{Term: n.Name, Column: col, Value: n.Component("value")})
	}
	for _, id := range rt.Graph.NodesOfType(knowledge.NodeJargon) {
		n, _ := rt.Graph.Node(id)
		if n == nil {
			continue
		}
		if v := n.Component("maps_to_value"); v != "" {
			hints = append(hints, knowledge.ValueHint{
				Term:   n.Name,
				Column: n.Component("maps_to_column"),
				Value:  v,
			})
		}
	}
	return hints
}

// TranslateDSL runs query rewrite + retrieval + DSL translation, the
// shared front half of most agent pipelines. key must identify the task
// instance. Returns the spec, whether it is faithful, and the linked
// fraction used in the quality model.
func (rt *Runtime) TranslateDSL(query, tableName, key string, skill float64, iterations int) (*dsl.Spec, bool, error) {
	rewritten := query
	if rt.Retriever != nil {
		rewritten = rt.Retriever.Rewrite(query, nil)
	}
	cands, hints, err := rt.Candidates(rewritten, tableName)
	if err != nil {
		return nil, false, err
	}
	linked := 1.0
	if len(cands) == 0 {
		linked = 0
	}
	q := rt.Quality(linked, iterations)
	// Translation consumes the user query and knowledge context, not
	// inter-agent messages, so the communication format does not apply.
	q.Structured = true
	spec, faithful := rt.Translator.Translate(knowledge.TranslateRequest{
		Query:      rewritten,
		Table:      tableName,
		Candidates: cands,
		ValueHints: hints,
		Key:        key,
		Skill:      skill,
		Quality:    q,
	})
	return spec, faithful, nil
}

// ExecuteSQL compiles and runs a DSL spec, returning the SQL text and the
// result table.
func (rt *Runtime) ExecuteSQL(spec *dsl.Spec) (string, *table.Table, error) {
	sql, err := spec.ToSQL()
	if err != nil {
		return "", nil, err
	}
	res, err := rt.Catalog.Query(sql)
	if err != nil {
		return sql, nil, err
	}
	return sql, res, nil
}
