package agent

import (
	"fmt"
	"strings"

	"encoding/json"

	"datalab/internal/comm"
	"datalab/internal/dsl"
	"datalab/internal/insight"
	"datalab/internal/llm"
	"datalab/internal/table"
	"datalab/internal/textutil"
	"datalab/internal/viz"
)

// Agent names used across plans; the planner and experiments reference
// these exactly.
const (
	NameSQL      = "SQL Agent"
	NameCleaning = "Cleaning Agent"
	NameImpute   = "Imputation Agent"
	NameDSCode   = "DSCode Agent"
	NameEDA      = "EDA Agent"
	NameInsight  = "Insight Agent"
	NameML       = "ML Agent"
	NameAnomaly  = "Anomaly Detection Agent"
	NameCausal   = "Causal Analysis Agent"
	NameForecast = "Forecasting Agent"
	NameChart    = "Chart Generation Agent"
	NameChartQA  = "Chart QA Agent"
	NameReport   = "Report Generation Agent"
)

// BIAgent is one specialized agent: a named pipeline over the shared
// runtime. It implements comm.Agent.
type BIAgent struct {
	name  string
	rt    *Runtime
	table string
	// skill extracts the relevant capability from the model profile.
	skill func(llm.Profile) float64
	// run is the agent's pipeline.
	run func(a *BIAgent, query string, inputs []comm.Info, attempt int) (comm.Info, bool, error)

	// faithful records whether the last successful execution produced a
	// semantically correct result. It is evaluation instrumentation: the
	// simulator knows when it injected an error, and the accuracy metrics
	// read this instead of re-deriving gold answers for every task.
	faithful bool
}

// Name implements comm.Agent.
func (a *BIAgent) Name() string { return a.name }

// Faithful reports whether the last successful execution was correct.
func (a *BIAgent) Faithful() bool { return a.faithful }

// Execute implements comm.Agent.
func (a *BIAgent) Execute(query string, inputs []comm.Info, attempt int) (comm.Info, error) {
	info, faithful, err := a.run(a, query, inputs, attempt)
	if err != nil {
		return comm.Info{}, err
	}
	a.faithful = faithful
	return info, nil
}

// contextQuality derives the distraction/structure features from the
// units actually forwarded to this agent — this is where the Table III
// ablations bite mechanically. Retries reuse the same context, so the
// attempt number does not improve quality.
func (a *BIAgent) contextQuality(inputs []comm.Info, needed int, attempt int, linked float64) llm.Quality {
	_ = attempt
	q := a.rt.Quality(linked, 0)
	if len(inputs) > needed {
		// Every unit beyond what the subtask needs is pure distraction;
		// §V's error analysis ties most failures to plans with >3 agents
		// flooding each other without the FSM.
		q.Distraction = clamp01(q.Distraction + float64(len(inputs)-needed)/float64(needed+2))
	}
	for _, u := range inputs {
		if u.Action == "narrative" {
			q.Structured = false
			break
		}
	}
	return q
}

// stickyFactor scales how much of an agent's failure mass is persistent:
// confusion caused by the forwarded context repeats identically on every
// retry, so those failures burn the whole 5-call budget. The rest is
// transient sampling noise that retries wash out.
const stickyFactor = 0.25

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// draw is the agent's residual-error coin for one (task, attempt) pair.
// A slice of the failure mass is sticky (keyed without the attempt, so it
// repeats every retry); the rest is transient.
func (a *BIAgent) draw(kind, key string, attempt int, skill float64, q llm.Quality) bool {
	p := a.rt.Client.SuccessProbability(skill, q)
	base := fmt.Sprintf("%s|%s|%s", a.name, kind, key)
	if a.rt.Client.Draw("sticky|"+base, stickyFactor*(1-p)) {
		a.rt.Client.Charge("", "") // the call still happened
		return false
	}
	return a.rt.Client.Attempt(fmt.Sprintf("%s#%d", base, attempt), "", "", skill, q)
}

// faithfulDraw decides whether a successful execution is also
// semantically correct. Silent wrongness has no error signal, so the key
// excludes the attempt: retries cannot recover it. Half of the residual
// failure mass manifests silently.
func (a *BIAgent) faithfulDraw(kind, key string, skill float64, q llm.Quality) bool {
	// Unstructured narrative still carries the content, so it slows the
	// agent down (success retries) without corrupting what it finally
	// produces — fidelity ignores the Structured flag.
	q.Structured = true
	p := a.rt.Client.SuccessProbability(skill, q)
	// Roughly a third of residual failure manifests silently; the rest
	// surfaces as errors and is handled by the retry loop.
	return a.rt.Client.Draw(fmt.Sprintf("faithful|%s|%s|%s", a.name, kind, key), 1-0.35*(1-p))
}

// dataPreview renders the head of a table for info-unit content.
func dataPreview(t *table.Table) string {
	if t == nil {
		return ""
	}
	return t.Limit(5).String()
}

// findUpstream locates the freshest unit of a given kind among inputs.
func findUpstream(inputs []comm.Info, kind comm.InfoKind) (comm.Info, bool) {
	for i := len(inputs) - 1; i >= 0; i-- {
		if inputs[i].Kind == kind {
			return inputs[i], true
		}
	}
	return comm.Info{}, false
}

// NewSQLAgent builds the NL2SQL specialist: rewrite -> knowledge
// retrieval -> DSL -> SQL -> execution, with execution feedback retries.
func NewSQLAgent(rt *Runtime, tableName string) *BIAgent {
	return &BIAgent{
		name:  NameSQL,
		rt:    rt,
		table: tableName,
		skill: func(p llm.Profile) float64 { return p.SQLGeneration },
		run: func(a *BIAgent, query string, inputs []comm.Info, attempt int) (comm.Info, bool, error) {
			key := fmt.Sprintf("%s#%d", query, attempt)
			spec, faithful, err := a.rt.TranslateDSL(query, a.table, key, a.rt.Client.Profile().SQLGeneration, attempt)
			if err != nil {
				return comm.Info{}, false, err
			}
			if err := spec.Validate(); err != nil {
				return comm.Info{}, false, fmt.Errorf("sql agent: invalid DSL: %w", err)
			}
			sql, res, err := a.rt.ExecuteSQL(spec)
			if err != nil {
				return comm.Info{}, false, fmt.Errorf("sql agent: execution failed: %w", err)
			}
			q := a.contextQuality(inputs, 0, attempt, 1)
			if !a.draw("exec", query, attempt, a.rt.Client.Profile().SQLGeneration, q) {
				return comm.Info{}, false, fmt.Errorf("sql agent: generated query failed sanity checks")
			}
			return comm.Info{
				DataSource:  a.table,
				Role:        a.name,
				Action:      "generate_sql_query",
				Description: "translated the request into SQL and executed it: " + spec.Intent,
				Content:     sql + "\n-- dsl: " + spec.JSON() + "\n" + dataPreview(res),
				Kind:        comm.KindSQL,
			}, faithful, nil
		},
	}
}

// NewDSCodeAgent builds the NL2DSCode specialist: it emits a pandas-style
// program for the request and executes the equivalent table operations in
// the sandbox.
func NewDSCodeAgent(rt *Runtime, tableName string) *BIAgent {
	return &BIAgent{
		name:  NameDSCode,
		rt:    rt,
		table: tableName,
		skill: func(p llm.Profile) float64 { return p.CodeGeneration },
		run: func(a *BIAgent, query string, inputs []comm.Info, attempt int) (comm.Info, bool, error) {
			key := fmt.Sprintf("dscode|%s#%d", query, attempt)
			spec, faithful, err := a.rt.TranslateDSL(query, a.table, key, a.rt.Client.Profile().CodeGeneration, attempt)
			if err != nil {
				return comm.Info{}, false, err
			}
			code := pandasProgram(spec)
			q := a.contextQuality(inputs, 1, attempt, 1)
			if !a.draw("exec", query, attempt, a.rt.Client.Profile().CodeGeneration, q) {
				return comm.Info{}, false, fmt.Errorf("dscode agent: generated code raised an exception")
			}
			return comm.Info{
				DataSource:  a.table,
				Role:        a.name,
				Action:      "generate_ds_code",
				Description: "wrote and ran data-science code for: " + spec.Intent,
				Content:     code,
				Kind:        comm.KindCode,
			}, faithful, nil
		},
	}
}

// pandasProgram renders a DSL spec as the pandas code an LLM would emit.
func pandasProgram(spec *dsl.Spec) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "df = load_table(%q)\n", spec.Table)
	for _, c := range spec.ConditionList {
		op := c.Operator
		if op == "=" {
			op = "=="
		}
		fmt.Fprintf(&sb, "df = df[df[%q] %s %q]\n", c.Column, op, c.Value)
	}
	if len(spec.DimensionList) > 0 && len(spec.MeasureList) > 0 {
		m := spec.MeasureList[0]
		fmt.Fprintf(&sb, "out = df.groupby(%q)[%q].%s()\n", spec.DimensionList[0], m.Column, pandasAgg(m.Aggregate))
	} else if len(spec.MeasureList) > 0 {
		m := spec.MeasureList[0]
		fmt.Fprintf(&sb, "out = df[%q].%s()\n", m.Column, pandasAgg(m.Aggregate))
	} else {
		sb.WriteString("out = df\n")
	}
	if len(spec.OrderByList) > 0 {
		fmt.Fprintf(&sb, "out = out.sort_values(ascending=%v)\n", !spec.OrderByList[0].Desc)
	}
	if spec.Limit > 0 {
		fmt.Fprintf(&sb, "out = out.head(%d)\n", spec.Limit)
	}
	return sb.String()
}

func pandasAgg(a string) string {
	switch a {
	case "avg", "mean":
		return "mean"
	case "", "sum":
		return "sum"
	default:
		return a
	}
}

// NewChartAgent builds the NL2VIS specialist: it consumes the upstream
// SQL agent's DSL, compiles a chart spec, and renders it against the
// query result.
func NewChartAgent(rt *Runtime, tableName string) *BIAgent {
	return &BIAgent{
		name:  NameChart,
		rt:    rt,
		table: tableName,
		skill: func(p llm.Profile) float64 { return p.VisLiteracy },
		run: func(a *BIAgent, query string, inputs []comm.Info, attempt int) (comm.Info, bool, error) {
			upstream, ok := findUpstream(inputs, comm.KindSQL)
			linked := 1.0
			faithful := ok // grounded in the upstream DSL when available
			var spec *dsl.Spec
			if ok {
				if s, perr := parseEmbeddedDSL(upstream.Content); perr == nil {
					spec = s
				}
			}
			if spec == nil {
				// No structured upstream (ablations): retranslate from
				// scratch with weaker linkage. The narrative still holds
				// the needed facts, so fidelity follows the usual silent-
				// error model rather than hard-failing.
				linked = 0.9
				var err error
				spec, _, err = a.rt.TranslateDSL(query, a.table, fmt.Sprintf("chart|%s#%d", query, attempt),
					a.rt.Client.Profile().VisLiteracy, 0)
				if err != nil {
					return comm.Info{}, false, err
				}
				faithful = a.faithfulDraw("ground", query, a.rt.Client.Profile().VisLiteracy,
					a.rt.Quality(linked, 0))
			}
			if spec.ChartType == "" {
				spec.ChartType = "bar"
			}
			chart, err := spec.ToChart()
			if err != nil {
				return comm.Info{}, false, fmt.Errorf("chart agent: %w", err)
			}
			_, res, err := a.rt.ExecuteSQL(spec)
			if err != nil {
				return comm.Info{}, false, fmt.Errorf("chart agent: data fetch failed: %w", err)
			}
			rendered, err := viz.Render(chart, res)
			if err != nil {
				return comm.Info{}, false, fmt.Errorf("chart agent: render failed: %w", err)
			}
			q := a.contextQuality(inputs, 1, attempt, linked)
			if !a.draw("render", query, attempt, a.rt.Client.Profile().VisLiteracy, q) {
				return comm.Info{}, false, fmt.Errorf("chart agent: produced an illegal specification")
			}
			_ = rendered
			return comm.Info{
				DataSource:  a.table,
				Role:        a.name,
				Action:      "generate_chart",
				Description: "rendered a " + string(chart.Mark) + " chart for: " + query,
				Content:     chart.JSON(),
				Kind:        comm.KindChart,
			}, faithful, nil
		},
	}
}

// parseEmbeddedDSL recovers the DSL spec a SQL agent embeds in its unit.
// The unit carries a data preview after the JSON, so decoding stops at
// the end of the first JSON value.
func parseEmbeddedDSL(content string) (*dsl.Spec, error) {
	i := strings.Index(content, "-- dsl: ")
	if i < 0 {
		return nil, fmt.Errorf("agent: no embedded DSL")
	}
	dec := json.NewDecoder(strings.NewReader(content[i+len("-- dsl: "):]))
	var s dsl.Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("agent: bad embedded DSL: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// newAnalysisAgent abstracts the three §VII-D analysis specialists:
// anomaly detection, causal analysis, forecasting. Each consumes the
// upstream data unit and runs its statistical tool over the target table.
func newAnalysisAgent(rt *Runtime, tableName, name, action string,
	analyze func(*Runtime, *table.Table, string) (string, error)) *BIAgent {
	return &BIAgent{
		name:  name,
		rt:    rt,
		table: tableName,
		skill: func(p llm.Profile) float64 { return p.Reasoning },
		run: func(a *BIAgent, query string, inputs []comm.Info, attempt int) (comm.Info, bool, error) {
			t, ok := a.rt.Catalog.Table(a.table)
			if !ok {
				return comm.Info{}, false, fmt.Errorf("%s: unknown table %q", a.name, a.table)
			}
			result, err := analyze(a.rt, t, query)
			if err != nil {
				return comm.Info{}, false, fmt.Errorf("%s: %w", a.name, err)
			}
			_, hasUpstream := findUpstream(inputs, comm.KindSQL)
			linked := 1.0
			if !hasUpstream && len(inputs) == 0 {
				linked = 0.85 // missing grounding data context
			}
			q := a.contextQuality(inputs, 1, attempt, linked)
			if !a.draw("analyze", query, attempt, a.rt.Client.Profile().Reasoning, q) {
				return comm.Info{}, false, fmt.Errorf("%s: reasoning went off the rails", a.name)
			}
			faithful := a.faithfulDraw("analyze", query, a.rt.Client.Profile().Reasoning, q)
			return comm.Info{
				DataSource:  a.table,
				Role:        a.name,
				Action:      action,
				Description: a.name + " completed for: " + query,
				Content:     result,
				Kind:        comm.KindText,
			}, faithful, nil
		},
	}
}

// NewAnomalyAgent detects outliers in the first numeric column.
func NewAnomalyAgent(rt *Runtime, tableName string) *BIAgent {
	return newAnalysisAgent(rt, tableName, NameAnomaly, "detect_anomalies",
		func(rt *Runtime, t *table.Table, query string) (string, error) {
			col := targetColumn(t, query)
			if col == "" {
				return "", fmt.Errorf("no numeric column to scan")
			}
			anoms, err := insight.DetectAnomalies(t, col, insight.MethodZScore, 3)
			if err != nil {
				return "", err
			}
			if len(anoms) == 0 {
				return fmt.Sprintf("no anomalies detected in %s at |z|>=3", col), nil
			}
			var sb strings.Builder
			fmt.Fprintf(&sb, "%d anomalies in %s:", len(anoms), col)
			for i, an := range anoms {
				if i == 3 {
					break
				}
				fmt.Fprintf(&sb, " row %d value %.4g (z=%.1f);", an.Row, an.Value, an.Score)
			}
			return sb.String(), nil
		})
}

// NewCausalAgent scans for (lagged) associations between numeric columns.
func NewCausalAgent(rt *Runtime, tableName string) *BIAgent {
	return newAnalysisAgent(rt, tableName, NameCausal, "causal_analysis",
		func(rt *Runtime, t *table.Table, query string) (string, error) {
			findings := insight.CausalAnalysis(t, 3, 0.6)
			if len(findings) == 0 {
				return "no strong associations between numeric columns", nil
			}
			var parts []string
			for i, f := range findings {
				if i == 3 {
					break
				}
				parts = append(parts, f.Describe())
			}
			return strings.Join(parts, " "), nil
		})
}

// NewForecastAgent projects the first numeric column forward.
func NewForecastAgent(rt *Runtime, tableName string) *BIAgent {
	return newAnalysisAgent(rt, tableName, NameForecast, "forecast_timeseries",
		func(rt *Runtime, t *table.Table, query string) (string, error) {
			col := targetColumn(t, query)
			if col == "" {
				return "", fmt.Errorf("no numeric column to forecast")
			}
			fc, err := insight.ForecastColumn(t, col, 3)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("forecast for %s over next 3 periods: %.4g, %.4g, %.4g", col, fc[0], fc[1], fc[2]), nil
		})
}

// NewEDAAgent summarizes exploratory findings.
func NewEDAAgent(rt *Runtime, tableName string) *BIAgent {
	return newAnalysisAgent(rt, tableName, NameEDA, "exploratory_analysis",
		func(rt *Runtime, t *table.Table, query string) (string, error) {
			ins := insight.EDA(t)
			if len(ins) == 0 {
				return "the table is too small for distributional findings", nil
			}
			return insight.Summarize(ins, 5), nil
		})
}

// NewInsightAgent synthesizes the upstream agents' outputs into a final
// narrative (the NL2Insight terminal step).
func NewInsightAgent(rt *Runtime, tableName string) *BIAgent {
	return &BIAgent{
		name:  NameInsight,
		rt:    rt,
		table: tableName,
		skill: func(p llm.Profile) float64 { return p.Reasoning },
		run: func(a *BIAgent, query string, inputs []comm.Info, attempt int) (comm.Info, bool, error) {
			var parts []string
			for _, u := range inputs {
				if u.Content != "" && u.Kind == comm.KindText {
					parts = append(parts, u.Content)
				}
			}
			t, ok := a.rt.Catalog.Table(a.table)
			if ok && len(parts) == 0 {
				parts = append(parts, insight.Summarize(insight.EDA(t), 3))
			}
			linked := 1.0
			if len(parts) == 0 {
				linked = 0.6
			}
			q := a.contextQuality(inputs, 2, attempt, linked)
			if !a.draw("synthesize", query, attempt, a.rt.Client.Profile().Reasoning, q) {
				return comm.Info{}, false, fmt.Errorf("insight agent: synthesis incoherent")
			}
			faithful := a.faithfulDraw("synthesize", query, a.rt.Client.Profile().Reasoning, q)
			return comm.Info{
				DataSource:  a.table,
				Role:        a.name,
				Action:      "synthesize_insights",
				Description: "synthesized findings for: " + query,
				Content:     strings.Join(parts, " "),
				Kind:        comm.KindText,
			}, faithful, nil
		},
	}
}

// NewCleaningAgent drops rows with nulls in any column (the standard
// preparation step) and reports what it did.
func NewCleaningAgent(rt *Runtime, tableName string) *BIAgent {
	return newAnalysisAgent(rt, tableName, NameCleaning, "clean_data",
		func(rt *Runtime, t *table.Table, query string) (string, error) {
			clean := t.Filter(func(row int) bool {
				for j := range t.Columns {
					if t.Columns[j].IsNullAt(row) {
						return false
					}
				}
				return true
			})
			dropped := t.NumRows() - clean.NumRows()
			clean.Name = t.Name + "_clean"
			rt.Catalog.Register(clean)
			return fmt.Sprintf("dropped %d incomplete rows; registered %s", dropped, clean.Name), nil
		})
}

// NewImputationAgent fills numeric nulls with the column mean.
func NewImputationAgent(rt *Runtime, tableName string) *BIAgent {
	return newAnalysisAgent(rt, tableName, NameImpute, "impute_missing",
		func(rt *Runtime, t *table.Table, query string) (string, error) {
			imputed := t.Clone()
			imputed.Name = t.Name + "_imputed"
			filled := 0
			for j := range imputed.Columns {
				c := &imputed.Columns[j]
				if c.Kind != table.KindFloat && c.Kind != table.KindInt {
					continue
				}
				var sum float64
				var n int
				for i, m := 0, c.Len(); i < m; i++ {
					if f, okf := c.FloatAt(i); okf {
						sum += f
						n++
					}
				}
				if n == 0 {
					continue
				}
				m := sum / float64(n)
				for i, cl := 0, c.Len(); i < cl; i++ {
					if c.IsNullAt(i) {
						c.Set(i, table.Float(m).Coerce(c.Kind))
						filled++
					}
				}
			}
			rt.Catalog.Register(imputed)
			return fmt.Sprintf("imputed %d missing numeric cells with column means; registered %s", filled, imputed.Name), nil
		})
}

// NewReportAgent drafts a structured report from everything upstream.
func NewReportAgent(rt *Runtime, tableName string) *BIAgent {
	return &BIAgent{
		name:  NameReport,
		rt:    rt,
		table: tableName,
		skill: func(p llm.Profile) float64 { return p.InstructionFollowing },
		run: func(a *BIAgent, query string, inputs []comm.Info, attempt int) (comm.Info, bool, error) {
			var sb strings.Builder
			sb.WriteString("# Analysis Report\n\n")
			fmt.Fprintf(&sb, "Question: %s\n\n", query)
			for _, u := range inputs {
				fmt.Fprintf(&sb, "## %s\n%s\n\n", u.Role, u.Description)
			}
			q := a.contextQuality(inputs, len(inputs), attempt, 1)
			if !a.draw("report", query, attempt, a.rt.Client.Profile().InstructionFollowing, q) {
				return comm.Info{}, false, fmt.Errorf("report agent: draft failed review")
			}
			return comm.Info{
				DataSource:  a.table,
				Role:        a.name,
				Action:      "generate_report",
				Description: "drafted the final report",
				Content:     sb.String(),
				Kind:        comm.KindText,
			}, true, nil
		},
	}
}

// NewChartQAAgent answers questions about an upstream chart.
func NewChartQAAgent(rt *Runtime, tableName string) *BIAgent {
	return &BIAgent{
		name:  NameChartQA,
		rt:    rt,
		table: tableName,
		skill: func(p llm.Profile) float64 { return p.VisLiteracy },
		run: func(a *BIAgent, query string, inputs []comm.Info, attempt int) (comm.Info, bool, error) {
			up, ok := findUpstream(inputs, comm.KindChart)
			if !ok {
				return comm.Info{}, false, fmt.Errorf("chart qa agent: no chart in context")
			}
			spec, err := viz.ParseSpec(up.Content)
			if err != nil {
				return comm.Info{}, false, fmt.Errorf("chart qa agent: unreadable chart: %w", err)
			}
			answer := fmt.Sprintf("the chart is a %s mark over %d channels", spec.Mark, len(spec.Encoding))
			q := a.contextQuality(inputs, 1, attempt, 1)
			if !a.draw("qa", query, attempt, a.rt.Client.Profile().VisLiteracy, q) {
				return comm.Info{}, false, fmt.Errorf("chart qa agent: misread the chart")
			}
			return comm.Info{
				DataSource:  a.table,
				Role:        a.name,
				Action:      "answer_chart_question",
				Description: "answered a question about the chart",
				Content:     answer,
				Kind:        comm.KindText,
			}, true, nil
		},
	}
}

// NewMLAgent fits the simple regression/forecast models data scientists
// reach for first.
func NewMLAgent(rt *Runtime, tableName string) *BIAgent {
	return newAnalysisAgent(rt, tableName, NameML, "fit_model",
		func(rt *Runtime, t *table.Table, query string) (string, error) {
			col := targetColumn(t, query)
			if col == "" {
				return "", fmt.Errorf("no numeric target to model")
			}
			fc, err := insight.ForecastColumn(t, col, 1)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("fitted a trend model on %s; next-period estimate %.4g", col, fc[0]), nil
		})
}

func firstNumericColumn(t *table.Table) string {
	for _, c := range t.Columns {
		if c.Kind == table.KindFloat || c.Kind == table.KindInt {
			return c.Name
		}
	}
	return ""
}

// targetColumn picks the numeric column the query talks about, falling
// back to the first numeric column.
func targetColumn(t *table.Table, query string) string {
	qTokens := textutil.ContentTokens(query)
	best, bestScore := "", 0.0
	for _, c := range t.Columns {
		if c.Kind != table.KindFloat && c.Kind != table.KindInt {
			continue
		}
		score := 0.0
		for _, nt := range textutil.ContentTokens(c.Name) {
			for _, qt := range qTokens {
				if nt == qt || (len(nt) >= 3 && len(qt) >= 3 &&
					(strings.HasPrefix(nt, qt[:3]) || strings.HasPrefix(qt, nt[:3]))) {
					score++
				}
			}
		}
		if score > bestScore {
			best, bestScore = c.Name, score
		}
	}
	if best == "" {
		return firstNumericColumn(t)
	}
	return best
}
