package metrics

import (
	"testing"

	"datalab/internal/table"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(true)
	c.Add(false)
	c.Add(true)
	if c.Rate() < 66.6 || c.Rate() > 66.7 {
		t.Errorf("rate = %v", c.Rate())
	}
	var empty Counter
	if empty.Rate() != 0 {
		t.Error("empty counter should be 0")
	}
	if got := c.String(); got != "66.67% (2/3)" {
		t.Errorf("String = %q", got)
	}
}

func TestExecutionAccuracy(t *testing.T) {
	a := table.MustNew("a", []string{"x"}, []table.Kind{table.KindInt})
	a.MustAppendRow(table.Int(1))
	b := table.MustNew("b", []string{"y"}, []table.Kind{table.KindInt})
	b.MustAppendRow(table.Int(1))
	if !ExecutionAccuracy(a, b) {
		t.Error("equal tables not equivalent")
	}
	b.MustAppendRow(table.Int(2))
	if ExecutionAccuracy(a, b) {
		t.Error("different tables equivalent")
	}
	if ExecutionAccuracy(nil, b) || ExecutionAccuracy(a, nil) {
		t.Error("nil tables must not be equivalent")
	}
}

func TestRecallAtK(t *testing.T) {
	retrieved := []string{"A", "b", "c", "d", "e"}
	relevant := []string{"a", "c", "z"}
	if got := RecallAtK(retrieved, relevant, 5); got < 0.66 || got > 0.67 {
		t.Errorf("recall@5 = %v, want 2/3", got)
	}
	if got := RecallAtK(retrieved, relevant, 1); got < 0.33 || got > 0.34 {
		t.Errorf("recall@1 = %v, want 1/3", got)
	}
	if got := RecallAtK(nil, nil, 5); got != 1 {
		t.Errorf("empty relevant = %v, want 1", got)
	}
	// Duplicate retrievals must not double-count.
	if got := RecallAtK([]string{"a", "a", "a"}, []string{"a", "b"}, 3); got != 0.5 {
		t.Errorf("dup recall = %v, want 0.5", got)
	}
}

func TestSESOrdering(t *testing.T) {
	gen := "income after tax for each product line"
	gold := "the product line income after tax"
	noise := "scheduler latency for pod eviction"
	if SES(gen, gold) <= SES(gen, noise) {
		t.Error("SES should rank matching description above noise")
	}
	if s := SES(gold, gold); s < 0.99 {
		t.Errorf("identical SES = %v", s)
	}
}

func TestMeanAndFractionAbove(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Errorf("mean = %v", Mean(xs))
	}
	if Mean(nil) != 0 {
		t.Error("empty mean should be 0")
	}
	if got := FractionAbove(xs, 2); got != 0.5 {
		t.Errorf("fraction above 2 = %v", got)
	}
	if FractionAbove(nil, 0) != 0 {
		t.Error("empty fraction should be 0")
	}
}

func TestROUGE1Bounds(t *testing.T) {
	if got := ROUGE1("a b c", "a b c"); got != 1 {
		t.Errorf("identical = %v", got)
	}
	if got := ROUGE1("x", "y"); got != 0 {
		t.Errorf("disjoint = %v", got)
	}
}
