// Package metrics implements the evaluation metrics the paper reports:
// execution accuracy, pass rate, Recall@K, ROUGE-1, sentence-embedding
// similarity (SES), LLM-judge scores, and token-cost accounting helpers.
package metrics

import (
	"fmt"
	"strings"

	"datalab/internal/embed"
	"datalab/internal/table"
	"datalab/internal/textutil"
)

// Counter accumulates a boolean outcome rate (EX, pass rate, accuracy,
// success rate are all rates over task sets).
type Counter struct {
	Hits  int
	Total int
}

// Add records one outcome.
func (c *Counter) Add(hit bool) {
	c.Total++
	if hit {
		c.Hits++
	}
}

// Rate returns hits/total in percent (0 when empty).
func (c *Counter) Rate() float64 {
	if c.Total == 0 {
		return 0
	}
	return 100 * float64(c.Hits) / float64(c.Total)
}

// String renders like "73.00% (73/100)".
func (c Counter) String() string {
	return fmt.Sprintf("%.2f%% (%d/%d)", c.Rate(), c.Hits, c.Total)
}

// ExecutionAccuracy reports whether two result tables are execution-
// equivalent (multiset of rows, order-insensitive) — the EX metric of
// Spider/BIRD/nvBench.
func ExecutionAccuracy(got, want *table.Table) bool {
	if got == nil || want == nil {
		return false
	}
	return table.EqualData(got, want)
}

// RecallAtK computes |retrieved[:k] ∩ relevant| / |relevant| — the
// Schema Linking metric of Table II.
func RecallAtK(retrieved, relevant []string, k int) float64 {
	if len(relevant) == 0 {
		return 1
	}
	if k > len(retrieved) {
		k = len(retrieved)
	}
	want := make(map[string]bool, len(relevant))
	for _, r := range relevant {
		want[strings.ToLower(r)] = true
	}
	hits := 0
	seen := map[string]bool{}
	for _, r := range retrieved[:k] {
		key := strings.ToLower(r)
		if want[key] && !seen[key] {
			seen[key] = true
			hits++
		}
	}
	return float64(hits) / float64(len(relevant))
}

// ROUGE1 re-exports the unigram-F1 used by InsightBench summaries.
func ROUGE1(candidate, reference string) float64 {
	return textutil.ROUGE1(candidate, reference)
}

// SES is the sentence-embedding similarity used for knowledge-quality
// evaluation (§VII-C.1): 1 identical, 0 irrelevant.
func SES(generated, groundTruth string) float64 {
	return embed.Similarity(generated, groundTruth)
}

// Mean averages a float slice (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// FractionAbove returns the share of xs strictly above the threshold.
func FractionAbove(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x > threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}
