// Package embed provides deterministic text embeddings used wherever the
// paper's system calls an embedding model (StarRocks vector search, the
// M3-Embedding SES metric, semantic context retrieval).
//
// The embedding is a feature-hashed bag of tokens and token bigrams: each
// token is hashed with FNV-1a into a fixed-dimension vector with a signed
// contribution, then the vector is L2-normalized. This preserves the single
// property the platform relies on — texts sharing vocabulary land near each
// other in cosine space — while staying fully offline and deterministic.
package embed

import (
	"math"

	"datalab/internal/textutil"
)

// Dim is the embedding dimensionality. 256 keeps hash collisions rare for
// the vocabulary sizes in this repo while keeping cosine cheap.
const Dim = 256

// Vector is a fixed-size embedding.
type Vector [Dim]float64

// Text embeds s. The zero vector is returned for empty/stopword-only input.
func Text(s string) Vector {
	var v Vector
	tokens := textutil.Tokenize(s)
	for _, t := range tokens {
		addFeature(&v, t, 1.0)
	}
	// Bigrams capture short phrases ("gross margin") with lower weight.
	for _, g := range textutil.NGrams(tokens, 2) {
		addFeature(&v, g, 0.5)
	}
	normalize(&v)
	return v
}

func addFeature(v *Vector, feature string, weight float64) {
	h := fnv1a(feature)
	idx := int(h % Dim)
	sign := 1.0
	if (h>>32)&1 == 1 {
		sign = -1.0
	}
	v[idx] += sign * weight
}

func normalize(v *Vector) {
	var sum float64
	for _, x := range v {
		sum += x * x
	}
	if sum == 0 {
		return
	}
	inv := 1 / math.Sqrt(sum)
	for i := range v {
		v[i] *= inv
	}
}

func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Cosine returns the cosine similarity of a and b in [-1, 1]. Both inputs
// are expected to be normalized (as produced by Text); the zero vector
// yields 0 against anything.
func Cosine(a, b Vector) float64 {
	var dot float64
	for i := range a {
		dot += a[i] * b[i]
	}
	return dot
}

// Similarity is a convenience wrapper embedding both texts and returning
// their cosine similarity clamped to [0, 1]. It is the SES metric used for
// knowledge-quality evaluation (§VII-C.1): 1 means identical, 0 irrelevant.
func Similarity(a, b string) float64 {
	c := Cosine(Text(a), Text(b))
	if c < 0 {
		return 0
	}
	return c
}
