package embed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTextDeterministic(t *testing.T) {
	a := Text("monthly revenue by product")
	b := Text("monthly revenue by product")
	if a != b {
		t.Error("Text is not deterministic")
	}
}

func TestTextNormalized(t *testing.T) {
	v := Text("quarterly gross margin")
	var sum float64
	for _, x := range v {
		sum += x * x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("embedding norm^2 = %v, want 1", sum)
	}
}

func TestTextEmptyIsZero(t *testing.T) {
	v := Text("")
	for _, x := range v {
		if x != 0 {
			t.Fatal("empty text should embed to the zero vector")
		}
	}
}

func TestCosineSelf(t *testing.T) {
	v := Text("customer lifetime value")
	if got := Cosine(v, v); math.Abs(got-1) > 1e-9 {
		t.Errorf("Cosine(v, v) = %v, want 1", got)
	}
}

func TestSimilarityOrdering(t *testing.T) {
	// Related texts must be scored higher than unrelated ones — this is the
	// only geometric property the retrieval layer depends on.
	query := "income of the product this year"
	related := "should income after tax, the revenue column of the product table"
	unrelated := "kubernetes pod scheduling latency histogram"
	sRel := Similarity(query, related)
	sUnrel := Similarity(query, unrelated)
	if sRel <= sUnrel {
		t.Errorf("related %v <= unrelated %v", sRel, sUnrel)
	}
}

func TestSimilarityIdentical(t *testing.T) {
	if got := Similarity("exact same text", "exact same text"); math.Abs(got-1) > 1e-9 {
		t.Errorf("identical texts = %v, want 1", got)
	}
}

func TestSimilarityClamped(t *testing.T) {
	f := func(a, b string) bool {
		s := Similarity(a, b)
		return s >= 0 && s <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCosineSymmetric(t *testing.T) {
	f := func(a, b string) bool {
		va, vb := Text(a), Text(b)
		return math.Abs(Cosine(va, vb)-Cosine(vb, va)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
