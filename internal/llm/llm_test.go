package llm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterministic(t *testing.T) {
	a := NewRand("seed")
	b := NewRand("seed")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand("other")
	same := true
	a2 := NewRand("seed")
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRandUniformish(t *testing.T) {
	r := NewRand("uniform")
	var sum float64
	n := 10000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.02 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestDrawOrderIndependent(t *testing.T) {
	r := NewRand("draws")
	first := r.Draw("task-42", 0.5)
	// Burn sequential state; Draw must not be affected.
	for i := 0; i < 57; i++ {
		r.Float64()
	}
	if got := r.Draw("task-42", 0.5); got != first {
		t.Error("Draw outcome changed after sequential draws")
	}
}

func TestDrawExtremes(t *testing.T) {
	r := NewRand("x")
	if r.Draw("k", 0) {
		t.Error("p=0 drew true")
	}
	if !r.Draw("k", 1) {
		t.Error("p=1 drew false")
	}
}

func TestDrawFrequency(t *testing.T) {
	r := NewRand("freq")
	hits := 0
	n := 5000
	for i := 0; i < n; i++ {
		if r.Draw(string(rune(i))+"key", 0.7) {
			hits++
		}
	}
	rate := float64(hits) / float64(n)
	if math.Abs(rate-0.7) > 0.03 {
		t.Errorf("empirical rate = %v, want ~0.7", rate)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRand("perm")
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestProfileByName(t *testing.T) {
	for _, p := range Profiles() {
		got, err := ProfileByName(p.Name)
		if err != nil || got.Name != p.Name {
			t.Errorf("ProfileByName(%q) = %v, %v", p.Name, got, err)
		}
	}
	if _, err := ProfileByName("gpt-5000"); err == nil {
		t.Error("unknown profile should error")
	}
}

func TestProfileOrdering(t *testing.T) {
	// Figure 6's claim: GPT-4 >= Qwen-2.5 >= LLaMA-3.1 on SQL and code.
	if !(GPT4.SQLGeneration > Qwen25.SQLGeneration && Qwen25.SQLGeneration > LLaMA31.SQLGeneration) {
		t.Error("SQL skill ordering violated")
	}
	if !(GPT4.CodeGeneration > Qwen25.CodeGeneration && Qwen25.CodeGeneration > LLaMA31.CodeGeneration) {
		t.Error("code skill ordering violated")
	}
	// VisEval's surprise: LLaMA-3.1 slightly best at vis.
	if !(LLaMA31.VisLiteracy >= GPT4.VisLiteracy) {
		t.Error("LLaMA-3.1 should be >= GPT-4 on vis literacy")
	}
}

func TestSuccessProbabilityMonotonicity(t *testing.T) {
	c := NewClient(GPT4, "test")
	base := Quality{SchemaLinked: 1, KnowledgeLevel: 1, Ambiguity: 0.5}
	p0 := c.SuccessProbability(0.9, base)

	worseLink := base
	worseLink.SchemaLinked = 0.5
	if c.SuccessProbability(0.9, worseLink) >= p0 {
		t.Error("worse schema linking should lower success")
	}
	noKnow := base
	noKnow.KnowledgeLevel = 0
	if c.SuccessProbability(0.9, noKnow) >= p0 {
		t.Error("removing knowledge under ambiguity should lower success")
	}
	distracted := base
	distracted.Distraction = 1
	if c.SuccessProbability(0.9, distracted) >= p0 {
		t.Error("distraction should lower success")
	}
	unstructured := base
	unstructured.Structured = false
	structured := base
	structured.Structured = true
	if c.SuccessProbability(0.9, unstructured) >= c.SuccessProbability(0.9, structured) {
		t.Error("unstructured communication should lower success")
	}
	retried := base
	retried.Iterations = 3
	if c.SuccessProbability(0.9, retried) <= p0 {
		t.Error("refinement iterations should raise success")
	}
}

func TestSuccessProbabilityNoAmbiguityIgnoresKnowledge(t *testing.T) {
	c := NewClient(GPT4, "test")
	a := c.SuccessProbability(0.9, Quality{SchemaLinked: 1, Ambiguity: 0, KnowledgeLevel: 0, Structured: true})
	b := c.SuccessProbability(0.9, Quality{SchemaLinked: 1, Ambiguity: 0, KnowledgeLevel: 1, Structured: true})
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("knowledge should not matter without ambiguity: %v vs %v", a, b)
	}
}

func TestSuccessProbabilityBounds(t *testing.T) {
	c := NewClient(LLaMA31, "bounds")
	f := func(skill, link, know, amb, dis float64, structured bool, iters int) bool {
		q := Quality{
			SchemaLinked:   math.Abs(math.Mod(link, 1)),
			KnowledgeLevel: math.Abs(math.Mod(know, 1)),
			Ambiguity:      math.Abs(math.Mod(amb, 1)),
			Distraction:    math.Abs(math.Mod(dis, 1)),
			Structured:     structured,
			Iterations:     iters % 10,
		}
		s := math.Abs(math.Mod(skill, 1))
		p := c.SuccessProbability(s, q)
		return p >= 0 && p <= 0.995
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAttemptChargesTokens(t *testing.T) {
	c := NewClient(GPT4, "tok")
	c.Attempt("k", "prompt text of some length", "completion", 0.9, Quality{})
	u := c.Usage()
	if u.Calls != 1 || u.PromptTokens == 0 || u.CompletionTokens == 0 {
		t.Errorf("usage = %+v", u)
	}
	if u.Total() != u.PromptTokens+u.CompletionTokens {
		t.Error("Total mismatch")
	}
	c.ResetUsage()
	if c.Usage().Calls != 0 {
		t.Error("ResetUsage did not clear")
	}
}

func TestAttemptDeterministic(t *testing.T) {
	c1 := NewClient(GPT4, "same-seed")
	c2 := NewClient(GPT4, "same-seed")
	q := Quality{SchemaLinked: 1, Ambiguity: 0.3}
	for i := 0; i < 50; i++ {
		k := "task" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		if c1.Attempt(k, "p", "c", 0.8, q) != c2.Attempt(k, "p", "c", 0.8, q) {
			t.Fatal("attempts diverged for identical clients")
		}
	}
}

func TestAttemptProfileSeparation(t *testing.T) {
	// Different profiles must see different outcome streams even with the
	// same experiment seed: the profile name is folded into the RNG seed.
	cg := NewClient(GPT4, "exp")
	cl := NewClient(LLaMA31, "exp")
	diff := 0
	for i := 0; i < 200; i++ {
		k := "t" + string(rune(i))
		if cg.rng.Draw(k, 0.5) != cl.rng.Draw(k, 0.5) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("profiles share an outcome stream")
	}
}

func TestScoreTracksQuality(t *testing.T) {
	c := NewClient(GPT4, "judge")
	var lowSum, highSum float64
	n := 200
	for i := 0; i < n; i++ {
		k := "item" + string(rune(i))
		lowSum += c.Score(k, 1, 5, 0.1)
		highSum += c.Score(k, 1, 5, 0.9)
	}
	if lowSum/float64(n) >= highSum/float64(n) {
		t.Error("higher quality should yield higher mean scores")
	}
	for i := 0; i < 50; i++ {
		s := c.Score("b"+string(rune(i)), 1, 5, 0.5)
		if s < 1 || s > 5 {
			t.Fatalf("score %v out of [1,5]", s)
		}
	}
}
