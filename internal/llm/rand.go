// Package llm provides the simulated large language model substrate that
// stands in for the GPT-4/Qwen-2.5/LLaMA-3.1 APIs the paper uses (see
// DESIGN.md, substitution table). The simulator is deterministic: all
// stochastic residual-error draws flow from a splitmix64 PRNG keyed by
// task identifiers, so every experiment is exactly reproducible.
//
// The package deliberately does NOT understand language. Task-specific
// generation (DSL translation, SQL synthesis, knowledge summarization)
// is mechanical work done by the calling modules over whatever context
// they assembled; this package contributes the two things a model swap
// changes in the paper's experiments — a capability profile and residual
// error — plus token accounting for the cost metrics.
package llm

// Rand is a splitmix64 PRNG. It is tiny, fast, and deterministic across
// platforms, which math/rand's global state does not guarantee between
// seedings in concurrent tests.
type Rand struct {
	seed  uint64 // immutable; keys order-independent Draw outcomes
	state uint64 // advances with every sequential draw
}

// NewRand seeds a generator from an arbitrary string.
func NewRand(seed string) *Rand {
	h := hash64(seed)
	return &Rand{seed: h, state: h}
}

// hash64 is FNV-1a, the same stable string hash used by the embed package.
func hash64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// next advances the splitmix64 state.
func (r *Rand) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). n must be > 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("llm: Intn with non-positive n")
	}
	return int(r.next() % uint64(n))
}

// NormFloat64 returns an approximately standard-normal value using the
// sum of 12 uniforms (Irwin–Hall); adequate for synthetic noise.
func (r *Rand) NormFloat64() float64 {
	var s float64
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return s - 6
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Draw returns a deterministic Bernoulli outcome for the given key and
// probability, independent of call order. Two calls with the same seed
// and key always agree; distinct keys are effectively independent.
func (r *Rand) Draw(key string, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	h := hash64(key) ^ r.seed
	// One splitmix64 scramble of the combined hash.
	z := h + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	u := float64(z>>11) / (1 << 53)
	return u < p
}
