package llm

import "fmt"

// Profile is a model capability profile. Skills are success ceilings in
// [0, 1] per task family; they reproduce the relative model ordering the
// paper reports in Figure 6 (GPT-4 strongest overall, Qwen-2.5 close
// behind, LLaMA-3.1 markedly weaker at code generation but competitive at
// visualization).
type Profile struct {
	Name string
	// InstructionFollowing bounds how reliably the model emits outputs in
	// the requested structured format (DSL JSON, info units).
	InstructionFollowing float64
	// SQLGeneration bounds NL2SQL and DSL2SQL reliability.
	SQLGeneration float64
	// CodeGeneration bounds data-science code synthesis reliability.
	CodeGeneration float64
	// Reasoning bounds multi-step analysis quality (insights, planning).
	Reasoning float64
	// VisLiteracy bounds chart-spec generation reliability.
	VisLiteracy float64
}

// The three profiles the paper evaluates (§VII-B). Values are calibrated
// so the simulated pipelines land near Figure 6's bars; the *ordering*
// (not the constants) is the reproduced claim.
var (
	GPT4 = Profile{
		Name:                 "gpt-4",
		InstructionFollowing: 0.97,
		SQLGeneration:        0.93,
		CodeGeneration:       0.90,
		Reasoning:            0.92,
		VisLiteracy:          0.90,
	}
	Qwen25 = Profile{
		Name:                 "qwen-2.5",
		InstructionFollowing: 0.93,
		SQLGeneration:        0.82,
		CodeGeneration:       0.85,
		Reasoning:            0.90,
		VisLiteracy:          0.90,
	}
	LLaMA31 = Profile{
		Name:                 "llama-3.1",
		InstructionFollowing: 0.90,
		SQLGeneration:        0.74,
		CodeGeneration:       0.62,
		Reasoning:            0.86,
		VisLiteracy:          0.91,
	}
)

// ProfileByName returns the named profile.
func ProfileByName(name string) (Profile, error) {
	switch name {
	case GPT4.Name:
		return GPT4, nil
	case Qwen25.Name:
		return Qwen25, nil
	case LLaMA31.Name:
		return LLaMA31, nil
	}
	return Profile{}, fmt.Errorf("llm: unknown model profile %q", name)
}

// Profiles returns the evaluated profiles in the paper's presentation
// order (weakest to strongest, as in Figure 6's bar groups).
func Profiles() []Profile { return []Profile{LLaMA31, Qwen25, GPT4} }
