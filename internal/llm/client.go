package llm

import (
	"sync"

	"datalab/internal/textutil"
)

// Usage is a snapshot of accumulated token consumption.
type Usage struct {
	PromptTokens     int
	CompletionTokens int
	Calls            int
}

// Total returns prompt + completion tokens.
func (u Usage) Total() int { return u.PromptTokens + u.CompletionTokens }

// Quality captures the measurable context-quality features that determine
// a simulated call's success probability. This struct is the heart of the
// substitution: the paper's ablations vary exactly these features, and the
// simulator makes success depend on them mechanically.
type Quality struct {
	// SchemaLinked is the fraction of required schema elements present in
	// the provided context (1 when linking is perfect or not applicable).
	SchemaLinked float64
	// KnowledgeLevel is 0 (none), ~0.5 (partial: descriptions/usage/tags),
	// or 1 (full, incl. derived-column calculation logic) — §VII-C's S1-S3.
	KnowledgeLevel float64
	// Ambiguity in [0,1] measures how much the task depends on knowledge
	// the raw schema does not carry (cryptic column names, jargon).
	Ambiguity float64
	// Distraction in [0,1] measures irrelevant context volume; irrelevant
	// context degrades reasoning (§V cites Shi et al.).
	Distraction float64
	// Structured reports whether inter-agent information arrived in the
	// structured six-field format rather than free-form NL.
	Structured bool
	// Iterations is the number of refinement rounds available (execution
	// feedback loops); each extra round recovers some failures.
	Iterations int
}

// Clamp returns q with all fields forced into their legal ranges; zero
// values mean "not applicable" and are promoted to neutral 1.0 for the
// multiplicative features.
func (q Quality) clamped() Quality {
	c := q
	if c.SchemaLinked <= 0 {
		c.SchemaLinked = 1
	}
	if c.SchemaLinked > 1 {
		c.SchemaLinked = 1
	}
	if c.KnowledgeLevel < 0 {
		c.KnowledgeLevel = 0
	}
	if c.KnowledgeLevel > 1 {
		c.KnowledgeLevel = 1
	}
	if c.Ambiguity < 0 {
		c.Ambiguity = 0
	}
	if c.Ambiguity > 1 {
		c.Ambiguity = 1
	}
	if c.Distraction < 0 {
		c.Distraction = 0
	}
	if c.Distraction > 1 {
		c.Distraction = 1
	}
	if c.Iterations < 0 {
		c.Iterations = 0
	}
	return c
}

// Client is one simulated LLM endpoint: a profile plus deterministic
// randomness plus token accounting. It is safe for concurrent use.
type Client struct {
	profile Profile
	rng     *Rand

	mu    sync.Mutex
	usage Usage
}

// NewClient creates a client for the given profile. The seed isolates
// experiments from each other: the same (profile, seed, task-key) triple
// always yields the same outcome.
func NewClient(profile Profile, seed string) *Client {
	return &Client{profile: profile, rng: NewRand(profile.Name + "\x00" + seed)}
}

// Profile returns the client's capability profile.
func (c *Client) Profile() Profile { return c.profile }

// Usage returns accumulated token usage.
func (c *Client) Usage() Usage {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.usage
}

// ResetUsage zeroes the counters (used between experiment arms).
func (c *Client) ResetUsage() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.usage = Usage{}
}

// Charge records one call's prompt and completion text for token
// accounting. Returns the prompt token count for convenience.
func (c *Client) Charge(prompt, completion string) int {
	pt := textutil.CountTokens(prompt)
	ct := textutil.CountTokens(completion)
	c.mu.Lock()
	c.usage.PromptTokens += pt
	c.usage.CompletionTokens += ct
	c.usage.Calls++
	c.mu.Unlock()
	return pt
}

// SuccessProbability computes the probability that a call with the given
// base skill and context quality succeeds. The functional form encodes
// the paper's qualitative claims:
//
//   - skill is the model ceiling for the task family;
//   - missing schema links cap success hard (you cannot aggregate a
//     column the context never surfaced);
//   - ambiguity hurts in proportion to how much knowledge is missing;
//   - irrelevant context (no FSM pruning / no DAG pruning) multiplies in
//     a distraction penalty;
//   - unstructured NL communication loses a further slice to
//     miscommunication;
//   - each refinement iteration retries the residual failure mass.
func (c *Client) SuccessProbability(skill float64, q Quality) float64 {
	q = q.clamped()
	p := skill
	p *= q.SchemaLinked
	p *= 1 - q.Ambiguity*(1-q.KnowledgeLevel)
	p *= 1 - 0.5*q.Distraction
	if !q.Structured {
		p *= 0.95
	}
	if p < 0 {
		p = 0
	}
	// Iterative refinement: each round independently recovers a fraction
	// of failures, with diminishing returns. The 0.25 recovery rate
	// reflects that execution feedback only catches failures that
	// manifest as errors, not silently wrong answers.
	fail := 1 - p
	for i := 0; i < q.Iterations && i < 5; i++ {
		fail *= 1 - 0.25*p
	}
	p = 1 - fail
	if p > 0.995 {
		p = 0.995 // models are never perfect
	}
	return p
}

// Draw returns the deterministic Bernoulli outcome for (key, p) under
// this client's seed, without token accounting. Callers use it for
// auxiliary events (sticky failures, legality checks) keyed separately
// from the main task outcome.
func (c *Client) Draw(key string, p float64) bool {
	return c.rng.Draw(key, p)
}

// Attempt performs one simulated call: it charges tokens and returns
// whether the call succeeds. key must uniquely identify the semantic task
// instance (benchmark item + method + stage) so that outcomes are stable
// across runs and independent of evaluation order.
func (c *Client) Attempt(key, prompt, completion string, skill float64, q Quality) bool {
	c.Charge(prompt, completion)
	return c.rng.Draw(key, c.SuccessProbability(skill, q))
}

// Score returns a deterministic pseudo-judgment in [lo, hi] for the given
// key — the simulator's stand-in for LLM-as-judge scoring (self-
// calibration in Algorithm 1, LLaMA-3-Eval in InsightBench). quality in
// [0,1] shifts the score mass toward hi.
func (c *Client) Score(key string, lo, hi, quality float64) float64 {
	if quality < 0 {
		quality = 0
	}
	if quality > 1 {
		quality = 1
	}
	h := hash64(key) ^ c.rng.seed
	z := h + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	u := float64(z>>11) / (1 << 53) // uniform noise in [0,1)
	// Score concentrates around quality with +-0.15 noise.
	v := quality + (u-0.5)*0.3
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return lo + v*(hi-lo)
}
