// Package viz models the visualization layer: a Vega-Lite-style chart
// specification, validation, data binding ("rendering"), and a readability
// scorer. It is the substrate for Chart cells, the NL2VIS task, and the
// VisEval-style metrics.
package viz

import (
	"encoding/json"
	"fmt"
	"strings"

	"datalab/internal/table"
)

// Mark enumerates the supported chart mark types.
type Mark string

// Supported marks.
const (
	MarkBar     Mark = "bar"
	MarkLine    Mark = "line"
	MarkPoint   Mark = "point" // scatter
	MarkArc     Mark = "arc"   // pie
	MarkArea    Mark = "area"
	MarkBoxplot Mark = "boxplot"
)

// ValidMark reports whether m is a known mark.
func ValidMark(m Mark) bool {
	switch m {
	case MarkBar, MarkLine, MarkPoint, MarkArc, MarkArea, MarkBoxplot:
		return true
	}
	return false
}

// FieldType is the Vega-Lite encoding field type.
type FieldType string

// Supported encoding field types.
const (
	Quantitative FieldType = "quantitative"
	Nominal      FieldType = "nominal"
	Ordinal      FieldType = "ordinal"
	Temporal     FieldType = "temporal"
)

// Encoding binds one visual channel to a data field.
type Encoding struct {
	Field     string    `json:"field"`
	Type      FieldType `json:"type"`
	Aggregate string    `json:"aggregate,omitempty"` // sum, mean, count, ...
	Sort      string    `json:"sort,omitempty"`      // "ascending", "descending", ""
}

// Spec is a chart specification, structurally a subset of Vega-Lite.
type Spec struct {
	Title    string               `json:"title,omitempty"`
	Mark     Mark                 `json:"mark"`
	Encoding map[string]*Encoding `json:"encoding"`       // channels: x, y, color, theta, size
	Data     string               `json:"data,omitempty"` // source table / variable name
	Limit    int                  `json:"limit,omitempty"`
}

// Channels in canonical order for deterministic rendering.
var channelOrder = []string{"x", "y", "theta", "color", "size"}

// Validate checks structural legality: known mark, at least one channel,
// channels appropriate to the mark, aggregate names valid. This is the
// legality check VisEval's pass-rate measures.
func (s *Spec) Validate() error {
	if !ValidMark(s.Mark) {
		return fmt.Errorf("viz: unknown mark %q", s.Mark)
	}
	if len(s.Encoding) == 0 {
		return fmt.Errorf("viz: spec has no encodings")
	}
	for ch, enc := range s.Encoding {
		if enc == nil || enc.Field == "" && enc.Aggregate != "count" {
			return fmt.Errorf("viz: channel %q has no field", ch)
		}
		switch enc.Type {
		case Quantitative, Nominal, Ordinal, Temporal, "":
		default:
			return fmt.Errorf("viz: channel %q has invalid type %q", ch, enc.Type)
		}
		switch enc.Aggregate {
		case "", "sum", "mean", "avg", "count", "min", "max", "median":
		default:
			return fmt.Errorf("viz: channel %q has invalid aggregate %q", ch, enc.Aggregate)
		}
		known := false
		for _, c := range channelOrder {
			if ch == c {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("viz: unknown channel %q", ch)
		}
	}
	switch s.Mark {
	case MarkArc:
		if s.Encoding["theta"] == nil {
			return fmt.Errorf("viz: arc (pie) requires a theta channel")
		}
		if s.Encoding["color"] == nil {
			return fmt.Errorf("viz: arc (pie) requires a color channel")
		}
	default:
		if s.Encoding["x"] == nil || s.Encoding["y"] == nil {
			return fmt.Errorf("viz: %s requires x and y channels", s.Mark)
		}
	}
	return nil
}

// JSON renders the spec as its canonical JSON form.
func (s *Spec) JSON() string {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return "{}"
	}
	return string(b)
}

// ParseSpec parses a JSON chart spec.
func ParseSpec(raw string) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal([]byte(raw), &s); err != nil {
		return nil, fmt.Errorf("viz: bad spec JSON: %w", err)
	}
	return &s, nil
}

// Rendered is the result of binding a spec to data: the values each channel
// presents, which is what nvBench-style execution accuracy compares.
type Rendered struct {
	Mark   Mark
	Series map[string][]table.Value // channel -> presented values
}

// Render binds the spec to a table: applies aggregation implied by the
// encodings, sorting, and limit, then extracts per-channel value series.
func Render(s *Spec, t *table.Table) (*Rendered, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	work := t

	// Aggregate if any channel requests it: group by all non-aggregated
	// encoded fields and aggregate the rest.
	var groupKeys []string
	var aggs []table.Aggregation
	hasAgg := false
	for _, ch := range channelOrder {
		enc := s.Encoding[ch]
		if enc == nil {
			continue
		}
		if enc.Aggregate != "" {
			hasAgg = true
		}
	}
	if hasAgg {
		outName := map[string]string{}
		for _, ch := range channelOrder {
			enc := s.Encoding[ch]
			if enc == nil {
				continue
			}
			if enc.Aggregate == "" {
				if work.ColumnIndex(enc.Field) < 0 {
					return nil, fmt.Errorf("viz: field %q not in data", enc.Field)
				}
				groupKeys = append(groupKeys, enc.Field)
				outName[ch] = enc.Field
				continue
			}
			fn, err := aggFunc(enc.Aggregate)
			if err != nil {
				return nil, err
			}
			col := enc.Field
			if col == "" { // count over rows
				col = "*"
			}
			name := fmt.Sprintf("%s_%s_%s", enc.Aggregate, ch, col)
			name = strings.ReplaceAll(name, "*", "rows")
			aggs = append(aggs, table.Aggregation{Func: fn, Column: col, As: name})
			outName[ch] = name
		}
		g, err := work.GroupBy(dedupe(groupKeys), aggs)
		if err != nil {
			return nil, err
		}
		work = g
		// Rebind encodings to aggregate output columns.
		rebound := map[string]*Encoding{}
		for ch, enc := range s.Encoding {
			cp := *enc
			cp.Field = outName[ch]
			cp.Aggregate = ""
			rebound[ch] = &cp
		}
		s = &Spec{Title: s.Title, Mark: s.Mark, Encoding: rebound, Data: s.Data, Limit: s.Limit}
	}

	// Sorting: honor the first channel with a sort directive.
	for _, ch := range channelOrder {
		enc := s.Encoding[ch]
		if enc == nil || enc.Sort == "" {
			continue
		}
		sorted, err := work.Sort(table.SortKey{Column: enc.Field, Desc: enc.Sort == "descending"})
		if err != nil {
			return nil, err
		}
		work = sorted
		break
	}
	if s.Limit > 0 {
		work = work.Limit(s.Limit)
	}

	out := &Rendered{Mark: s.Mark, Series: map[string][]table.Value{}}
	for _, ch := range channelOrder {
		enc := s.Encoding[ch]
		if enc == nil {
			continue
		}
		col := work.Column(enc.Field)
		if col == nil {
			return nil, fmt.Errorf("viz: field %q not in data", enc.Field)
		}
		out.Series[ch] = col.Values()
	}
	return out, nil
}

func aggFunc(name string) (table.AggFunc, error) {
	switch name {
	case "sum":
		return table.AggSum, nil
	case "mean", "avg":
		return table.AggAvg, nil
	case "count":
		return table.AggCount, nil
	case "min":
		return table.AggMin, nil
	case "max":
		return table.AggMax, nil
	case "median":
		return table.AggMedian, nil
	}
	return 0, fmt.Errorf("viz: unknown aggregate %q", name)
}

func dedupe(xs []string) []string {
	seen := map[string]bool{}
	out := xs[:0:0]
	for _, x := range xs {
		k := strings.ToLower(x)
		if !seen[k] {
			seen[k] = true
			out = append(out, x)
		}
	}
	return out
}

// EqualRendered reports execution equivalence of two rendered charts: same
// mark and, per channel, the same multiset of (x, y, ...) tuples. Row order
// is ignored unless both sides carry an explicit sort (nvBench semantics).
func EqualRendered(a, b *Rendered) bool {
	if a.Mark != b.Mark {
		return false
	}
	if len(a.Series) != len(b.Series) {
		return false
	}
	// Build row tuples across channels in canonical order.
	tupleSet := func(r *Rendered) (map[string]int, int, bool) {
		var chans []string
		for _, ch := range channelOrder {
			if _, ok := r.Series[ch]; ok {
				chans = append(chans, ch)
			}
		}
		n := -1
		for _, ch := range chans {
			if n == -1 {
				n = len(r.Series[ch])
			} else if n != len(r.Series[ch]) {
				return nil, 0, false
			}
		}
		set := map[string]int{}
		for i := 0; i < n; i++ {
			var sb strings.Builder
			for _, ch := range chans {
				sb.WriteString(r.Series[ch][i].Key())
				sb.WriteByte('\x1f')
			}
			set[sb.String()]++
		}
		return set, n, true
	}
	sa, na, oka := tupleSet(a)
	sb, nb, okb := tupleSet(b)
	if !oka || !okb || na != nb {
		return false
	}
	for k, v := range sa {
		if sb[k] != v {
			return false
		}
	}
	return true
}

// Readability scores a spec+data pairing on a 1-5 scale, mimicking the
// GPT-4V readability judgment in VisEval: it rewards titled charts,
// appropriate mark/type pairings, and modest category counts, and
// penalizes overplotting.
func Readability(s *Spec, rendered *Rendered) float64 {
	score := 3.0
	if s.Title != "" {
		score += 0.4
	}
	// Appropriate mark for data shape.
	n := 0
	for _, vals := range rendered.Series {
		if len(vals) > n {
			n = len(vals)
		}
	}
	switch s.Mark {
	case MarkArc:
		if n <= 8 {
			score += 0.4
		} else {
			score -= 1.0 // unreadable pie
		}
	case MarkBar:
		if n <= 30 {
			score += 0.3
		} else {
			score -= 0.5
		}
	case MarkLine, MarkArea:
		if x := s.Encoding["x"]; x != nil && x.Type == Temporal {
			score += 0.4
		}
	case MarkPoint:
		if n > 2000 {
			score -= 0.5
		} else {
			score += 0.2
		}
	}
	// Axis typing sanity: quantitative y for aggregating charts.
	if y := s.Encoding["y"]; y != nil && y.Type == Quantitative {
		score += 0.2
	}
	if score < 1 {
		score = 1
	}
	if score > 5 {
		score = 5
	}
	return score
}
