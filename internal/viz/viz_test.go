package viz

import (
	"testing"

	"datalab/internal/table"
)

func chartData(t *testing.T) *table.Table {
	t.Helper()
	tbl := table.MustNew("sales",
		[]string{"region", "amount", "when"},
		[]table.Kind{table.KindString, table.KindFloat, table.KindTime})
	tbl.MustAppendRow(table.Str("east"), table.Float(100), table.Str("2023-01-01"))
	tbl.MustAppendRow(table.Str("east"), table.Float(50), table.Str("2023-02-01"))
	tbl.MustAppendRow(table.Str("west"), table.Float(75), table.Str("2023-01-01"))
	return tbl
}

func barSpec() *Spec {
	return &Spec{
		Title: "Revenue by region",
		Mark:  MarkBar,
		Encoding: map[string]*Encoding{
			"x": {Field: "region", Type: Nominal},
			"y": {Field: "amount", Type: Quantitative, Aggregate: "sum"},
		},
	}
}

func TestValidateAcceptsGoodSpecs(t *testing.T) {
	if err := barSpec().Validate(); err != nil {
		t.Errorf("bar spec invalid: %v", err)
	}
	pie := &Spec{
		Mark: MarkArc,
		Encoding: map[string]*Encoding{
			"theta": {Field: "amount", Type: Quantitative, Aggregate: "sum"},
			"color": {Field: "region", Type: Nominal},
		},
	}
	if err := pie.Validate(); err != nil {
		t.Errorf("pie spec invalid: %v", err)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []*Spec{
		{Mark: "heatmap3d", Encoding: map[string]*Encoding{"x": {Field: "a"}}},
		{Mark: MarkBar},
		{Mark: MarkBar, Encoding: map[string]*Encoding{"x": {Field: "a"}}},                    // missing y
		{Mark: MarkArc, Encoding: map[string]*Encoding{"x": {Field: "a"}, "y": {Field: "b"}}}, // pie lacks theta
		{Mark: MarkBar, Encoding: map[string]*Encoding{"x": {Field: "a"}, "y": {Field: "b", Type: "fancy"}}},
		{Mark: MarkBar, Encoding: map[string]*Encoding{"x": {Field: "a"}, "y": {Field: "b", Aggregate: "explode"}}},
		{Mark: MarkBar, Encoding: map[string]*Encoding{"x": {Field: "a"}, "y": {Field: "b"}, "w": {Field: "c"}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d should be invalid", i)
		}
	}
}

func TestRenderAggregates(t *testing.T) {
	r, err := Render(barSpec(), chartData(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series["x"]) != 2 {
		t.Fatalf("bars = %d, want 2 regions", len(r.Series["x"]))
	}
	totals := map[string]float64{}
	for i := range r.Series["x"] {
		totals[r.Series["x"][i].S] = r.Series["y"][i].F
	}
	if totals["east"] != 150 || totals["west"] != 75 {
		t.Errorf("totals = %v", totals)
	}
}

func TestRenderNoAggregatePassthrough(t *testing.T) {
	s := &Spec{
		Mark: MarkPoint,
		Encoding: map[string]*Encoding{
			"x": {Field: "when", Type: Temporal},
			"y": {Field: "amount", Type: Quantitative},
		},
	}
	r, err := Render(s, chartData(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series["y"]) != 3 {
		t.Errorf("points = %d, want 3", len(r.Series["y"]))
	}
}

func TestRenderSortAndLimit(t *testing.T) {
	s := barSpec()
	s.Encoding["y"].Sort = "descending"
	s.Limit = 1
	r, err := Render(s, chartData(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series["x"]) != 1 || r.Series["x"][0].S != "east" {
		t.Errorf("top-1 = %v", r.Series["x"])
	}
}

func TestRenderUnknownField(t *testing.T) {
	s := barSpec()
	s.Encoding["x"].Field = "missing"
	if _, err := Render(s, chartData(t)); err == nil {
		t.Error("expected unknown-field error")
	}
}

func TestEqualRenderedIgnoresOrder(t *testing.T) {
	r1, err := Render(barSpec(), chartData(t))
	if err != nil {
		t.Fatal(err)
	}
	s2 := barSpec()
	s2.Encoding["y"].Sort = "descending"
	r2, err := Render(s2, chartData(t))
	if err != nil {
		t.Fatal(err)
	}
	if !EqualRendered(r1, r2) {
		t.Error("same data in different order should be equal")
	}
}

func TestEqualRenderedDetectsDifferences(t *testing.T) {
	r1, _ := Render(barSpec(), chartData(t))
	lineSpec := barSpec()
	lineSpec.Mark = MarkLine
	r2, _ := Render(lineSpec, chartData(t))
	if EqualRendered(r1, r2) {
		t.Error("different marks should not be equal")
	}
	avg := barSpec()
	avg.Encoding["y"].Aggregate = "mean"
	r3, _ := Render(avg, chartData(t))
	if EqualRendered(r1, r3) {
		t.Error("different aggregated values should not be equal")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	s := barSpec()
	parsed, err := ParseSpec(s.JSON())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Mark != s.Mark || parsed.Title != s.Title {
		t.Error("round trip lost fields")
	}
	if parsed.Encoding["y"].Aggregate != "sum" {
		t.Error("round trip lost encoding")
	}
	if _, err := ParseSpec("{not json"); err == nil {
		t.Error("expected JSON error")
	}
}

func TestReadabilityRange(t *testing.T) {
	r, _ := Render(barSpec(), chartData(t))
	score := Readability(barSpec(), r)
	if score < 1 || score > 5 {
		t.Errorf("score = %v out of range", score)
	}
	// A titled, well-typed bar chart should beat an untitled giant pie.
	big := table.MustNew("t", []string{"k", "v"}, []table.Kind{table.KindString, table.KindFloat})
	for i := 0; i < 40; i++ {
		big.MustAppendRow(table.Str(string(rune('a'+i%26))+string(rune('a'+i/26))), table.Float(float64(i)))
	}
	pie := &Spec{
		Mark: MarkArc,
		Encoding: map[string]*Encoding{
			"theta": {Field: "v", Type: Quantitative},
			"color": {Field: "k", Type: Nominal},
		},
	}
	pr, err := Render(pie, big)
	if err != nil {
		t.Fatal(err)
	}
	if Readability(pie, pr) >= score {
		t.Error("40-slice pie should score below titled bar chart")
	}
}
