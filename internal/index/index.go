// Package index provides the two retrieval indexes the knowledge graph is
// served from: an inverted index with TF-IDF scoring (the Elasticsearch
// full-text role in the paper) and a vector index over deterministic
// embeddings (the StarRocks embedding-search role). Both index the same
// triplet structure {name, content, tag} from §IV-B.
//
// Both indexes are layered persistent structures, mirroring the chunked
// snapshot storage in internal/table: documents live in immutable sealed
// layers plus one private mutable tail. Clone seals the tail and shares
// the sealed layers — O(layers), not O(index) — so the knowledge graph's
// copy-on-write snapshot swap costs per-update work proportional to the
// update, not the graph. Search computes corpus-global statistics (doc
// count, document frequency) across layers with newest-definition-wins
// resolution, so scores are bit-identical to a monolithic rebuild of the
// same live documents. Layers are folded back into one when a clone
// accumulates more than maxLayers of them, amortizing compaction across
// the clones that created the layers.
package index

import (
	"math"
	"sort"
	"sync"

	"datalab/internal/embed"
	"datalab/internal/textutil"
)

// maxLayers bounds how many sealed layers a clone may carry before it is
// compacted into a single layer. Reads walk layers newest-first, so the
// bound keeps lookup and scoring O(1)-ish in the number of snapshots
// taken, while compaction cost is paid once per maxLayers clones.
const maxLayers = 8

// Entry is one indexed document: the triplet the paper's task-aware
// indexing mechanism stores per knowledge node.
type Entry struct {
	ID      string // unique node identifier
	Name    string
	Content string // concatenation of knowledge components, task-specific
	Tag     string
}

// Hit is one retrieval result.
type Hit struct {
	ID    string
	Score float64
}

// lexLayer is one immutable (once sealed) stratum of the lexical index.
// dead tombstones IDs removed relative to older layers; a layer never
// both defines and tombstones the same ID.
type lexLayer struct {
	postings map[string]map[string]int // token -> docID -> term frequency
	docLen   map[string]int
	entries  map[string]Entry
	dead     map[string]bool
}

func newLexLayer() *lexLayer {
	return &lexLayer{
		postings: map[string]map[string]int{},
		docLen:   map[string]int{},
		entries:  map[string]Entry{},
		dead:     map[string]bool{},
	}
}

// lexTokens expands an entry into its weighted token bag. The name field
// is weighted 3x: a query term hitting a node's name is a far stronger
// signal than one hitting its prose content.
func lexTokens(e Entry) []string {
	tokens := textutil.Tokenize(e.Name)
	weighted := make([]string, 0, len(tokens)*3)
	for i := 0; i < 3; i++ {
		weighted = append(weighted, tokens...)
	}
	weighted = append(weighted, textutil.Tokenize(e.Content)...)
	weighted = append(weighted, textutil.Tokenize(e.Tag)...)
	return weighted
}

// add indexes e into this layer. Subword prefixes approximate the
// character-n-gram matching of production search engines: "imp_cnt" is
// findable from "impression count".
func (l *lexLayer) add(e Entry) {
	l.entries[e.ID] = e
	weighted := lexTokens(e)
	for _, t := range weighted {
		if textutil.IsStopword(t) {
			continue
		}
		m, ok := l.postings[t]
		if !ok {
			m = map[string]int{}
			l.postings[t] = m
		}
		m[e.ID]++
		if len(t) >= 3 {
			pt := "p3:" + t[:3]
			pm, ok := l.postings[pt]
			if !ok {
				pm = map[string]int{}
				l.postings[pt] = pm
			}
			pm[e.ID]++
		}
	}
	l.docLen[e.ID] = len(weighted)
}

// strip removes id's definition from this (mutable tail) layer.
func (l *lexLayer) strip(id string) {
	delete(l.entries, id)
	delete(l.docLen, id)
	for t, m := range l.postings {
		delete(m, id)
		if len(m) == 0 {
			delete(l.postings, t)
		}
	}
}

// Lexical is an inverted index with TF-IDF ranking, stored as immutable
// sealed layers plus a mutable tail (see the package comment).
type Lexical struct {
	mu     sync.RWMutex
	layers []*lexLayer
	sealed int // layers[:sealed] are immutable and may be shared with clones
	n      int // live (non-shadowed, non-tombstoned) entry count
}

// NewLexical returns an empty lexical index.
func NewLexical() *Lexical {
	return &Lexical{}
}

// tail returns the mutable tail layer, opening a fresh one when every
// current layer is sealed (i.e. after a Clone).
func (ix *Lexical) tail() *lexLayer {
	if ix.sealed == len(ix.layers) {
		ix.layers = append(ix.layers, newLexLayer())
	}
	return ix.layers[len(ix.layers)-1]
}

// resolve returns the index of the layer holding id's current definition,
// or -1 when id is absent or tombstoned. Newest definition wins.
func (ix *Lexical) resolve(id string) int {
	for li := len(ix.layers) - 1; li >= 0; li-- {
		l := ix.layers[li]
		if _, ok := l.entries[id]; ok {
			return li
		}
		if l.dead[id] {
			return -1
		}
	}
	return -1
}

// resolveBelow is resolve restricted to layers strictly below limit.
func (ix *Lexical) resolveBelow(id string, limit int) int {
	for li := limit - 1; li >= 0; li-- {
		l := ix.layers[li]
		if _, ok := l.entries[id]; ok {
			return li
		}
		if l.dead[id] {
			return -1
		}
	}
	return -1
}

// Add indexes (or reindexes) an entry: the definition lands in the
// mutable tail and shadows any older layer's definition of the same ID.
func (ix *Lexical) Add(e Entry) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	wasLive := ix.resolve(e.ID) >= 0
	t := ix.tail()
	if _, ok := t.entries[e.ID]; ok {
		t.strip(e.ID)
	}
	delete(t.dead, e.ID)
	t.add(e)
	if !wasLive {
		ix.n++
	}
}

// Clone returns a snapshot sharing every sealed layer with the original:
// mutations to either side after the clone are invisible to the other,
// and the cost is O(layers) rather than O(index). It backs the knowledge
// graph's copy-on-write swap, so readers can keep searching the original
// while a writer builds and mutates the clone.
func (ix *Lexical) Clone() *Lexical {
	ix.mu.Lock()
	ix.sealed = len(ix.layers) // the tail becomes immutable for both sides
	cp := &Lexical{
		layers: append([]*lexLayer(nil), ix.layers...),
		sealed: len(ix.layers),
		n:      ix.n,
	}
	ix.mu.Unlock()
	if len(cp.layers) > maxLayers {
		cp.compact()
	}
	return cp
}

// compact folds every layer into one sealed layer holding exactly the
// live documents. Only called on a freshly built clone (no concurrent
// access yet); scores are unchanged because Search already computes
// global statistics over the live set.
func (ix *Lexical) compact() {
	live := map[string]Entry{}
	for _, l := range ix.layers { // oldest -> newest: later layers win
		for id := range l.dead {
			delete(live, id)
		}
		for id, e := range l.entries {
			live[id] = e
		}
	}
	merged := newLexLayer()
	for _, e := range live {
		merged.add(e)
	}
	ix.layers = []*lexLayer{merged}
	ix.sealed = 1
	ix.n = len(live)
}

// Remove deletes an entry from the index.
func (ix *Lexical) Remove(id string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	li := ix.resolve(id)
	if li < 0 {
		return
	}
	ix.n--
	if li >= ix.sealed { // defined in the mutable tail: strip it
		ix.layers[li].strip(id)
		if ix.resolveBelow(id, li) >= 0 {
			ix.layers[li].dead[id] = true // a sealed definition remains below
		}
		return
	}
	ix.tail().dead[id] = true
}

// Len returns the number of live entries.
func (ix *Lexical) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.n
}

// Entry returns the stored entry by ID.
func (ix *Lexical) Entry(id string) (Entry, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if li := ix.resolve(id); li >= 0 {
		return ix.layers[li].entries[id], true
	}
	return Entry{}, false
}

// Search returns the top-k entries by TF-IDF score against the query.
// Document frequency and corpus size are computed across layers over the
// live document set, so results are identical — scores included — to a
// monolithic index of the same documents. Deterministic: ties break by ID.
func (ix *Lexical) Search(query string, k int) []Hit {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n := ix.n
	if n == 0 || k <= 0 {
		return nil
	}
	scores := map[string]float64{}
	type post struct {
		tf, dl int
	}
	accumulate := func(term string, weight float64) {
		// Gather the live postings for term: a document counts only from
		// its defining layer, so shadowed and tombstoned copies are skipped.
		live := map[string]post{}
		for li := len(ix.layers) - 1; li >= 0; li-- {
			l := ix.layers[li]
			for id, tf := range l.postings[term] {
				if ix.resolve(id) != li {
					continue
				}
				live[id] = post{tf: tf, dl: l.docLen[id]}
			}
		}
		if len(live) == 0 {
			return
		}
		idf := math.Log(1 + float64(n)/float64(len(live)))
		for id, p := range live {
			dl := p.dl
			if dl == 0 {
				dl = 1
			}
			scores[id] += weight * idf * float64(p.tf) / math.Sqrt(float64(dl))
		}
	}
	for _, t := range textutil.ContentTokens(query) {
		accumulate(t, 1)
		if len(t) >= 3 {
			accumulate("p3:"+t[:3], 0.4)
		}
	}
	return topK(scores, k)
}

// vecLayer is one stratum of the vector index (see lexLayer).
type vecLayer struct {
	vecs    map[string]embed.Vector
	entries map[string]Entry
	dead    map[string]bool
}

func newVecLayer() *vecLayer {
	return &vecLayer{vecs: map[string]embed.Vector{}, entries: map[string]Entry{}, dead: map[string]bool{}}
}

// Vector is a brute-force cosine-similarity index over embeddings, layered
// like Lexical.
type Vector struct {
	mu     sync.RWMutex
	layers []*vecLayer
	sealed int
	n      int
}

// NewVector returns an empty vector index.
func NewVector() *Vector {
	return &Vector{}
}

func (ix *Vector) tail() *vecLayer {
	if ix.sealed == len(ix.layers) {
		ix.layers = append(ix.layers, newVecLayer())
	}
	return ix.layers[len(ix.layers)-1]
}

func (ix *Vector) resolve(id string) int {
	for li := len(ix.layers) - 1; li >= 0; li-- {
		l := ix.layers[li]
		if _, ok := l.entries[id]; ok {
			return li
		}
		if l.dead[id] {
			return -1
		}
	}
	return -1
}

// Add indexes an entry under the embedding of name+content+tag.
func (ix *Vector) Add(e Entry) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	wasLive := ix.resolve(e.ID) >= 0
	t := ix.tail()
	delete(t.dead, e.ID)
	t.entries[e.ID] = e
	t.vecs[e.ID] = embed.Text(e.Name + " " + e.Content + " " + e.Tag)
	if !wasLive {
		ix.n++
	}
}

// Clone returns a snapshot sharing the sealed layers (see Lexical.Clone).
func (ix *Vector) Clone() *Vector {
	ix.mu.Lock()
	ix.sealed = len(ix.layers)
	cp := &Vector{
		layers: append([]*vecLayer(nil), ix.layers...),
		sealed: len(ix.layers),
		n:      ix.n,
	}
	ix.mu.Unlock()
	if len(cp.layers) > maxLayers {
		cp.compact()
	}
	return cp
}

func (ix *Vector) compact() {
	merged := newVecLayer()
	for _, l := range ix.layers { // oldest -> newest: later layers win
		for id := range l.dead {
			delete(merged.entries, id)
			delete(merged.vecs, id)
		}
		for id, e := range l.entries {
			merged.entries[id] = e
			merged.vecs[id] = l.vecs[id]
		}
	}
	ix.layers = []*vecLayer{merged}
	ix.sealed = 1
	ix.n = len(merged.entries)
}

// Remove deletes an entry.
func (ix *Vector) Remove(id string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	li := ix.resolve(id)
	if li < 0 {
		return
	}
	ix.n--
	if li >= ix.sealed {
		l := ix.layers[li]
		delete(l.entries, id)
		delete(l.vecs, id)
		if ix.resolveVecBelow(id, li) >= 0 {
			l.dead[id] = true
		}
		return
	}
	ix.tail().dead[id] = true
}

func (ix *Vector) resolveVecBelow(id string, limit int) int {
	for li := limit - 1; li >= 0; li-- {
		l := ix.layers[li]
		if _, ok := l.entries[id]; ok {
			return li
		}
		if l.dead[id] {
			return -1
		}
	}
	return -1
}

// Len returns the number of live entries.
func (ix *Vector) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.n
}

// Search returns the top-k entries by cosine similarity to the query
// embedding. Deterministic: ties break by ID.
func (ix *Vector) Search(query string, k int) []Hit {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.n == 0 || k <= 0 {
		return nil
	}
	qv := embed.Text(query)
	scores := map[string]float64{}
	seen := map[string]bool{}
	for li := len(ix.layers) - 1; li >= 0; li-- {
		l := ix.layers[li]
		for id := range l.dead {
			seen[id] = true // tombstone shadows any older definition
		}
		for id, v := range l.vecs {
			if seen[id] {
				continue
			}
			seen[id] = true
			if s := embed.Cosine(qv, v); s > 0 {
				scores[id] = s
			}
		}
	}
	return topK(scores, k)
}

func topK(scores map[string]float64, k int) []Hit {
	hits := make([]Hit, 0, len(scores))
	for id, s := range scores {
		hits = append(hits, Hit{ID: id, Score: s})
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Score != hits[b].Score {
			return hits[a].Score > hits[b].Score
		}
		return hits[a].ID < hits[b].ID
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// Merge unions two hit lists, summing scores for IDs present in both and
// re-ranking. It implements the coarse-retrieval union of Algorithm 2.
func Merge(a, b []Hit, k int) []Hit {
	scores := map[string]float64{}
	for _, h := range a {
		scores[h.ID] += h.Score
	}
	for _, h := range b {
		scores[h.ID] += h.Score
	}
	return topK(scores, k)
}
