// Package index provides the two retrieval indexes the knowledge graph is
// served from: an inverted index with TF-IDF scoring (the Elasticsearch
// full-text role in the paper) and a vector index over deterministic
// embeddings (the StarRocks embedding-search role). Both index the same
// triplet structure {name, content, tag} from §IV-B.
package index

import (
	"math"
	"sort"
	"sync"

	"datalab/internal/embed"
	"datalab/internal/textutil"
)

// Entry is one indexed document: the triplet the paper's task-aware
// indexing mechanism stores per knowledge node.
type Entry struct {
	ID      string // unique node identifier
	Name    string
	Content string // concatenation of knowledge components, task-specific
	Tag     string
}

// Hit is one retrieval result.
type Hit struct {
	ID    string
	Score float64
}

// Lexical is an inverted index with TF-IDF ranking.
type Lexical struct {
	mu       sync.RWMutex
	postings map[string]map[string]int // token -> docID -> term frequency
	docLen   map[string]int
	entries  map[string]Entry
}

// NewLexical returns an empty lexical index.
func NewLexical() *Lexical {
	return &Lexical{
		postings: map[string]map[string]int{},
		docLen:   map[string]int{},
		entries:  map[string]Entry{},
	}
}

// Add indexes (or reindexes) an entry. The name field is weighted 3x: a
// query term hitting a node's name is a far stronger signal than one
// hitting its prose content.
func (ix *Lexical) Add(e Entry) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, exists := ix.entries[e.ID]; exists {
		ix.removeLocked(e.ID)
	}
	ix.entries[e.ID] = e
	tokens := textutil.Tokenize(e.Name)
	weighted := make([]string, 0, len(tokens)*3)
	for i := 0; i < 3; i++ {
		weighted = append(weighted, tokens...)
	}
	weighted = append(weighted, textutil.Tokenize(e.Content)...)
	weighted = append(weighted, textutil.Tokenize(e.Tag)...)
	for _, t := range weighted {
		if textutil.IsStopword(t) {
			continue
		}
		m, ok := ix.postings[t]
		if !ok {
			m = map[string]int{}
			ix.postings[t] = m
		}
		m[e.ID]++
		// Subword prefixes approximate the character-n-gram matching of
		// production search engines: "imp_cnt" is findable from
		// "impression count".
		if len(t) >= 3 {
			pt := "p3:" + t[:3]
			pm, ok := ix.postings[pt]
			if !ok {
				pm = map[string]int{}
				ix.postings[pt] = pm
			}
			pm[e.ID]++
		}
	}
	ix.docLen[e.ID] = len(weighted)
}

// Clone returns a deep copy of the index: mutations to either side after
// the clone are invisible to the other. It backs the knowledge graph's
// copy-on-write swap, so readers can keep searching the original while a
// writer builds and mutates the clone.
func (ix *Lexical) Clone() *Lexical {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	cp := &Lexical{
		postings: make(map[string]map[string]int, len(ix.postings)),
		docLen:   make(map[string]int, len(ix.docLen)),
		entries:  make(map[string]Entry, len(ix.entries)),
	}
	for t, m := range ix.postings {
		nm := make(map[string]int, len(m))
		for id, tf := range m {
			nm[id] = tf
		}
		cp.postings[t] = nm
	}
	for id, dl := range ix.docLen {
		cp.docLen[id] = dl
	}
	for id, e := range ix.entries {
		cp.entries[id] = e
	}
	return cp
}

// Remove deletes an entry from the index.
func (ix *Lexical) Remove(id string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.removeLocked(id)
}

func (ix *Lexical) removeLocked(id string) {
	delete(ix.entries, id)
	delete(ix.docLen, id)
	for t, m := range ix.postings {
		delete(m, id)
		if len(m) == 0 {
			delete(ix.postings, t)
		}
	}
}

// Len returns the number of indexed entries.
func (ix *Lexical) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.entries)
}

// Entry returns the stored entry by ID.
func (ix *Lexical) Entry(id string) (Entry, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	e, ok := ix.entries[id]
	return e, ok
}

// Search returns the top-k entries by TF-IDF score against the query.
// Results are deterministic: ties break by ID.
func (ix *Lexical) Search(query string, k int) []Hit {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n := len(ix.entries)
	if n == 0 || k <= 0 {
		return nil
	}
	scores := map[string]float64{}
	accumulate := func(term string, weight float64) {
		m, ok := ix.postings[term]
		if !ok {
			return
		}
		idf := math.Log(1 + float64(n)/float64(len(m)))
		for id, tf := range m {
			dl := ix.docLen[id]
			if dl == 0 {
				dl = 1
			}
			scores[id] += weight * idf * float64(tf) / math.Sqrt(float64(dl))
		}
	}
	for _, t := range textutil.ContentTokens(query) {
		accumulate(t, 1)
		if len(t) >= 3 {
			accumulate("p3:"+t[:3], 0.4)
		}
	}
	return topK(scores, k)
}

// Vector is a brute-force cosine-similarity index over embeddings.
type Vector struct {
	mu      sync.RWMutex
	vecs    map[string]embed.Vector
	entries map[string]Entry
}

// NewVector returns an empty vector index.
func NewVector() *Vector {
	return &Vector{vecs: map[string]embed.Vector{}, entries: map[string]Entry{}}
}

// Add indexes an entry under the embedding of name+content+tag.
func (ix *Vector) Add(e Entry) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.entries[e.ID] = e
	ix.vecs[e.ID] = embed.Text(e.Name + " " + e.Content + " " + e.Tag)
}

// Clone returns a deep copy of the index (see Lexical.Clone). Embedding
// vectors are values and copy with the map.
func (ix *Vector) Clone() *Vector {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	cp := &Vector{
		vecs:    make(map[string]embed.Vector, len(ix.vecs)),
		entries: make(map[string]Entry, len(ix.entries)),
	}
	for id, v := range ix.vecs {
		cp.vecs[id] = v
	}
	for id, e := range ix.entries {
		cp.entries[id] = e
	}
	return cp
}

// Remove deletes an entry.
func (ix *Vector) Remove(id string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	delete(ix.entries, id)
	delete(ix.vecs, id)
}

// Len returns the number of indexed entries.
func (ix *Vector) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.entries)
}

// Search returns the top-k entries by cosine similarity to the query
// embedding. Deterministic: ties break by ID.
func (ix *Vector) Search(query string, k int) []Hit {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if len(ix.vecs) == 0 || k <= 0 {
		return nil
	}
	qv := embed.Text(query)
	scores := make(map[string]float64, len(ix.vecs))
	for id, v := range ix.vecs {
		if s := embed.Cosine(qv, v); s > 0 {
			scores[id] = s
		}
	}
	return topK(scores, k)
}

func topK(scores map[string]float64, k int) []Hit {
	hits := make([]Hit, 0, len(scores))
	for id, s := range scores {
		hits = append(hits, Hit{ID: id, Score: s})
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Score != hits[b].Score {
			return hits[a].Score > hits[b].Score
		}
		return hits[a].ID < hits[b].ID
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// Merge unions two hit lists, summing scores for IDs present in both and
// re-ranking. It implements the coarse-retrieval union of Algorithm 2.
func Merge(a, b []Hit, k int) []Hit {
	scores := map[string]float64{}
	for _, h := range a {
		scores[h.ID] += h.Score
	}
	for _, h := range b {
		scores[h.ID] += h.Score
	}
	return topK(scores, k)
}
