package index

import (
	"fmt"
	"testing"
)

func seedEntries() []Entry {
	return []Entry{
		{ID: "col:shouldincome_after", Name: "shouldincome_after", Content: "revenue income after tax for a product line, measured monthly", Tag: "column"},
		{ID: "col:prod_class4_name", Name: "prod_class4_name", Content: "the product name at classification level four, e.g. TencentBI", Tag: "column"},
		{ID: "col:ftime", Name: "ftime", Content: "partition date of the record in YYYYMMDD format", Tag: "column"},
		{ID: "tab:sales_db.orders", Name: "orders", Content: "customer orders with amounts and regions", Tag: "table"},
		{ID: "jarg:arpu", Name: "ARPU", Content: "average revenue per user, computed as revenue divided by active users", Tag: "jargon"},
	}
}

func TestLexicalSearchRanksNameMatchesFirst(t *testing.T) {
	ix := NewLexical()
	for _, e := range seedEntries() {
		ix.Add(e)
	}
	hits := ix.Search("income of the product", 5)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	if hits[0].ID != "col:shouldincome_after" {
		t.Errorf("top hit = %s", hits[0].ID)
	}
}

func TestLexicalSearchEmpty(t *testing.T) {
	ix := NewLexical()
	if hits := ix.Search("anything", 5); hits != nil {
		t.Errorf("empty index returned hits: %v", hits)
	}
	ix.Add(seedEntries()[0])
	if hits := ix.Search("anything", 0); hits != nil {
		t.Errorf("k=0 returned hits: %v", hits)
	}
}

func TestLexicalReindexReplaces(t *testing.T) {
	ix := NewLexical()
	ix.Add(Entry{ID: "x", Name: "alpha", Content: "old content about turtles"})
	ix.Add(Entry{ID: "x", Name: "alpha", Content: "new content about revenue"})
	if ix.Len() != 1 {
		t.Fatalf("len = %d", ix.Len())
	}
	if hits := ix.Search("turtles", 5); len(hits) != 0 {
		t.Error("stale postings survive reindex")
	}
	if hits := ix.Search("revenue", 5); len(hits) != 1 {
		t.Error("new content not searchable")
	}
}

func TestLexicalRemove(t *testing.T) {
	ix := NewLexical()
	for _, e := range seedEntries() {
		ix.Add(e)
	}
	ix.Remove("jarg:arpu")
	if _, ok := ix.Entry("jarg:arpu"); ok {
		t.Error("entry survives Remove")
	}
	for _, h := range ix.Search("average revenue per user", 10) {
		if h.ID == "jarg:arpu" {
			t.Error("removed entry still retrieved")
		}
	}
}

func TestVectorSearchSemantic(t *testing.T) {
	ix := NewVector()
	for _, e := range seedEntries() {
		ix.Add(e)
	}
	hits := ix.Search("average revenue per user metric", 3)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	if hits[0].ID != "jarg:arpu" {
		t.Errorf("top hit = %s, want jarg:arpu", hits[0].ID)
	}
}

func TestVectorRemoveAndLen(t *testing.T) {
	ix := NewVector()
	for _, e := range seedEntries() {
		ix.Add(e)
	}
	if ix.Len() != 5 {
		t.Fatalf("len = %d", ix.Len())
	}
	ix.Remove("col:ftime")
	if ix.Len() != 4 {
		t.Errorf("len after remove = %d", ix.Len())
	}
}

func TestSearchDeterministic(t *testing.T) {
	lex := NewLexical()
	vec := NewVector()
	for i := 0; i < 50; i++ {
		e := Entry{ID: fmt.Sprintf("e%02d", i), Name: "metric", Content: "identical content for tie-breaking"}
		lex.Add(e)
		vec.Add(e)
	}
	l1 := lex.Search("identical content metric", 10)
	l2 := lex.Search("identical content metric", 10)
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("lexical search not deterministic")
		}
	}
	v1 := vec.Search("identical content metric", 10)
	v2 := vec.Search("identical content metric", 10)
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("vector search not deterministic")
		}
	}
	// Ties must break by ascending ID.
	for i := 1; i < len(l1); i++ {
		if l1[i-1].Score == l1[i].Score && l1[i-1].ID > l1[i].ID {
			t.Fatal("tie-break order violated")
		}
	}
}

func TestMergeUnionsAndReranks(t *testing.T) {
	a := []Hit{{ID: "x", Score: 0.5}, {ID: "y", Score: 0.4}}
	b := []Hit{{ID: "y", Score: 0.4}, {ID: "z", Score: 0.3}}
	m := Merge(a, b, 10)
	if len(m) != 3 {
		t.Fatalf("merged = %d", len(m))
	}
	if m[0].ID != "y" {
		t.Errorf("top merged = %s, want y (0.8 summed)", m[0].ID)
	}
	if got := Merge(a, b, 1); len(got) != 1 {
		t.Errorf("k cap violated: %d", len(got))
	}
}

func TestTopKBound(t *testing.T) {
	ix := NewLexical()
	for i := 0; i < 20; i++ {
		ix.Add(Entry{ID: fmt.Sprintf("d%d", i), Name: "revenue", Content: "revenue doc"})
	}
	if got := len(ix.Search("revenue", 7)); got != 7 {
		t.Errorf("topK = %d, want 7", got)
	}
}
