package dsl

import (
	"strings"
	"testing"

	"datalab/internal/sqlengine"
	"datalab/internal/table"
	"datalab/internal/viz"
)

func sampleSpec() *Spec {
	return &Spec{
		Intent:        "total revenue by region in 2023",
		Table:         "sales",
		MeasureList:   []Measure{{Column: "amount", Aggregate: "sum", Alias: "total"}},
		DimensionList: []string{"region"},
		ConditionList: []Condition{{Column: "year", Operator: "=", Value: "2023"}},
		OrderByList:   []OrderBy{{Column: "total", Desc: true}},
		Limit:         10,
		ChartType:     "bar",
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := sampleSpec().Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []func(*Spec){
		func(s *Spec) { s.Table = "" },
		func(s *Spec) { s.MeasureList = nil; s.DimensionList = nil },
		func(s *Spec) { s.MeasureList[0].Column = "" },
		func(s *Spec) { s.MeasureList[0].Aggregate = "harmonic" },
		func(s *Spec) { s.DimensionList = []string{""} },
		func(s *Spec) { s.ConditionList[0].Operator = "~=" },
		func(s *Spec) { s.ConditionList[0].Column = "" },
		func(s *Spec) { s.ChartType = "hologram" },
		func(s *Spec) { s.Limit = -1 },
		func(s *Spec) {
			s.ConditionList = []Condition{{Column: "x", Operator: "between", Value: "1"}}
		},
		func(s *Spec) {
			s.ConditionList = []Condition{{Column: "x", Operator: "in"}}
		},
	}
	for i, mutate := range cases {
		s := sampleSpec()
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := sampleSpec()
	parsed, err := Parse(s.JSON())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Table != s.Table || len(parsed.MeasureList) != 1 || parsed.Limit != 10 {
		t.Error("round trip lost fields")
	}
	if _, err := Parse("{"); err == nil {
		t.Error("bad JSON should error")
	}
	if _, err := Parse(`{"table": ""}`); err == nil {
		t.Error("invalid spec should fail validation on parse")
	}
}

func TestToSQLShape(t *testing.T) {
	sql, err := sampleSpec().ToSQL()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SELECT", "SUM(amount)", "FROM sales", "WHERE year = 2023", "GROUP BY region", "ORDER BY total DESC", "LIMIT 10"} {
		if !strings.Contains(sql, want) {
			t.Errorf("sql %q missing %q", sql, want)
		}
	}
}

func TestToSQLExecutes(t *testing.T) {
	tbl := table.MustNew("sales",
		[]string{"region", "amount", "year"},
		[]table.Kind{table.KindString, table.KindFloat, table.KindInt})
	tbl.MustAppendRow(table.Str("east"), table.Float(100), table.Int(2023))
	tbl.MustAppendRow(table.Str("east"), table.Float(50), table.Int(2023))
	tbl.MustAppendRow(table.Str("west"), table.Float(75), table.Int(2023))
	tbl.MustAppendRow(table.Str("west"), table.Float(999), table.Int(2022))
	cat := sqlengine.NewCatalog()
	cat.Register(tbl)

	sql, err := sampleSpec().ToSQL()
	if err != nil {
		t.Fatal(err)
	}
	res, err := cat.Query(sql)
	if err != nil {
		t.Fatalf("compiled SQL does not execute: %v\nsql: %s", err, sql)
	}
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", res.NumRows())
	}
	if res.Get(0, "region").S != "east" || res.Get(0, "total").F != 150 {
		t.Errorf("top row = %v %v", res.Get(0, "region"), res.Get(0, "total"))
	}
}

func TestToSQLOperators(t *testing.T) {
	s := &Spec{
		Table:       "t",
		MeasureList: []Measure{{Column: "v", Aggregate: "count"}},
		ConditionList: []Condition{
			{Column: "a", Operator: "between", Value: "1", Value2: "5"},
			{Column: "b", Operator: "in", Values: []string{"x", "y"}},
			{Column: "c", Operator: "like", Value: "%foo%"},
			{Column: "d", Operator: "!=", Value: "bar"},
		},
	}
	sql, err := s.ToSQL()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"a BETWEEN 1 AND 5", "b IN ('x', 'y')", "c LIKE '%foo%'", "d <> 'bar'"} {
		if !strings.Contains(sql, want) {
			t.Errorf("sql %q missing %q", sql, want)
		}
	}
	// The compiled SQL must parse.
	if _, err := sqlengine.Parse(sql); err != nil {
		t.Errorf("compiled SQL does not parse: %v\n%s", err, sql)
	}
}

func TestToSQLQuotesWeirdIdentifiers(t *testing.T) {
	s := &Spec{
		Table:         "23_customer_bg",
		MeasureList:   []Measure{{Column: "should income", Aggregate: "sum"}},
		DimensionList: []string{"prod-class"},
	}
	sql, err := s.ToSQL()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "`should income`") || !strings.Contains(sql, "`prod-class`") {
		t.Errorf("identifiers not quoted: %s", sql)
	}
	if _, err := sqlengine.Parse(sql); err != nil {
		t.Errorf("quoted SQL does not parse: %v\n%s", err, sql)
	}
}

// TestToSQLQuotesReservedColumns pins sqlReserved against the lexer's
// keyword set: business columns named after SQL keywords — including
// RIGHT and FULL, reserved when outer joins were added — must quote and
// reparse.
func TestToSQLQuotesReservedColumns(t *testing.T) {
	for _, col := range []string{"when", "order", "group", "right", "full", "left", "case"} {
		s := &Spec{
			Table:         "t",
			MeasureList:   []Measure{{Column: col, Aggregate: "sum"}},
			DimensionList: []string{col},
		}
		sql, err := s.ToSQL()
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(sql, "`"+col+"`") {
			t.Errorf("reserved column %q not quoted: %s", col, sql)
		}
		if _, err := sqlengine.Parse(sql); err != nil {
			t.Errorf("column %q: quoted SQL does not parse: %v\n%s", col, err, sql)
		}
	}
}

func TestToChartBar(t *testing.T) {
	spec, err := sampleSpec().ToChart()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Mark != viz.MarkBar {
		t.Errorf("mark = %v", spec.Mark)
	}
	if spec.Encoding["x"].Field != "region" {
		t.Errorf("x field = %v", spec.Encoding["x"].Field)
	}
	if spec.Encoding["y"].Field != "total" {
		t.Errorf("y field = %v", spec.Encoding["y"].Field)
	}
	if spec.Encoding["y"].Sort != "descending" {
		t.Errorf("y sort = %q", spec.Encoding["y"].Sort)
	}
}

func TestToChartInfersLineForTemporal(t *testing.T) {
	s := &Spec{
		Table:         "sales",
		MeasureList:   []Measure{{Column: "amount", Aggregate: "sum"}},
		DimensionList: []string{"ftime"},
	}
	spec, err := s.ToChart()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Mark != viz.MarkLine {
		t.Errorf("mark = %v, want line for temporal dimension", spec.Mark)
	}
	if spec.Encoding["x"].Type != viz.Temporal {
		t.Errorf("x type = %v", spec.Encoding["x"].Type)
	}
}

func TestToChartPie(t *testing.T) {
	s := sampleSpec()
	s.ChartType = "arc"
	spec, err := s.ToChart()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Encoding["theta"] == nil || spec.Encoding["color"] == nil {
		t.Error("pie chart missing theta/color")
	}
}

func TestToChartErrors(t *testing.T) {
	s := &Spec{Table: "t", DimensionList: []string{"a"}}
	if _, err := s.ToChart(); err == nil {
		t.Error("chart without measure should error")
	}
	s2 := &Spec{Table: "t", MeasureList: []Measure{{Column: "v", Aggregate: "sum"}}}
	if _, err := s2.ToChart(); err == nil {
		t.Error("chart without dimension should error")
	}
}

func TestEndToEndDSLToRenderedChart(t *testing.T) {
	// DSL -> SQL -> result table -> chart spec -> rendered chart.
	tbl := table.MustNew("sales",
		[]string{"region", "amount", "year"},
		[]table.Kind{table.KindString, table.KindFloat, table.KindInt})
	tbl.MustAppendRow(table.Str("east"), table.Float(100), table.Int(2023))
	tbl.MustAppendRow(table.Str("west"), table.Float(75), table.Int(2023))
	cat := sqlengine.NewCatalog()
	cat.Register(tbl)

	s := sampleSpec()
	sql, err := s.ToSQL()
	if err != nil {
		t.Fatal(err)
	}
	res, err := cat.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	chart, err := s.ToChart()
	if err != nil {
		t.Fatal(err)
	}
	rendered, err := viz.Render(chart, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(rendered.Series["x"]) != 2 {
		t.Errorf("rendered bars = %d", len(rendered.Series["x"]))
	}
}
