package dsl

// Property-based tests of the pipeline invariant the platform rests on:
// every valid DSL specification compiles to SQL that parses and executes,
// and to a chart spec that validates and renders. Generated specs cover
// the full operator/aggregate surface with randomized composition.

import (
	"fmt"
	"testing"

	"datalab/internal/llm"
	"datalab/internal/sqlengine"
	"datalab/internal/table"
	"datalab/internal/viz"
)

// genTable builds a randomized table with at least one categorical, one
// numeric, and one temporal column.
func genTable(rng *llm.Rand, name string) *table.Table {
	t := table.MustNew(name,
		[]string{"cat", "num", "num2", "when"},
		[]table.Kind{table.KindString, table.KindFloat, table.KindInt, table.KindTime})
	cats := []string{"a", "b", "c", "d"}
	n := 10 + rng.Intn(40)
	for i := 0; i < n; i++ {
		t.MustAppendRow(
			table.Str(cats[rng.Intn(len(cats))]),
			table.Float(rng.Float64()*1000),
			table.Int(int64(rng.Intn(100))),
			table.Str(fmt.Sprintf("202%d-%02d-%02d", rng.Intn(3)+2, rng.Intn(12)+1, rng.Intn(28)+1)),
		)
	}
	return t
}

// genSpec builds a random valid DSL spec over genTable's schema.
func genSpec(rng *llm.Rand, tableName string) *Spec {
	aggs := []string{"sum", "avg", "count", "min", "max", "median"}
	s := &Spec{Table: tableName}
	// 1-2 measures over the numeric columns.
	nm := 1 + rng.Intn(2)
	numCols := []string{"num", "num2"}
	for i := 0; i < nm; i++ {
		s.MeasureList = append(s.MeasureList, Measure{
			Column:    numCols[i%2],
			Aggregate: aggs[rng.Intn(len(aggs))],
			Alias:     fmt.Sprintf("m%d", i),
		})
	}
	if rng.Float64() < 0.8 {
		s.DimensionList = append(s.DimensionList, "cat")
	}
	// Random conditions across the operator surface.
	switch rng.Intn(5) {
	case 0:
		s.ConditionList = append(s.ConditionList, Condition{Column: "num", Operator: ">", Value: "100"})
	case 1:
		s.ConditionList = append(s.ConditionList, Condition{
			Column: "when", Operator: "between", Value: "2023-01-01", Value2: "2024-12-31"})
	case 2:
		s.ConditionList = append(s.ConditionList, Condition{
			Column: "cat", Operator: "in", Values: []string{"a", "b"}})
	case 3:
		s.ConditionList = append(s.ConditionList, Condition{Column: "cat", Operator: "like", Value: "%a%"})
	}
	if rng.Float64() < 0.5 {
		s.OrderByList = append(s.OrderByList, OrderBy{Column: "m0", Desc: rng.Float64() < 0.5})
	}
	if rng.Float64() < 0.4 {
		s.Limit = 1 + rng.Intn(10)
	}
	if len(s.DimensionList) > 0 && rng.Float64() < 0.5 {
		marks := []string{"bar", "line", "area", "point"}
		s.ChartType = marks[rng.Intn(len(marks))]
	}
	return s
}

func TestPropertyEverySpecCompilesAndExecutes(t *testing.T) {
	rng := llm.NewRand("dsl-property")
	for i := 0; i < 300; i++ {
		tbl := genTable(rng, fmt.Sprintf("t%03d", i))
		spec := genSpec(rng, tbl.Name)
		if err := spec.Validate(); err != nil {
			t.Fatalf("case %d: generated spec invalid: %v\n%s", i, err, spec.JSON())
		}
		sql, err := spec.ToSQL()
		if err != nil {
			t.Fatalf("case %d: ToSQL: %v\n%s", i, err, spec.JSON())
		}
		if _, err := sqlengine.Parse(sql); err != nil {
			t.Fatalf("case %d: compiled SQL does not parse: %v\n%s", i, err, sql)
		}
		cat := sqlengine.NewCatalog()
		cat.Register(tbl)
		res, err := cat.Query(sql)
		if err != nil {
			t.Fatalf("case %d: compiled SQL does not execute: %v\n%s", i, err, sql)
		}
		if spec.Limit > 0 && res.NumRows() > spec.Limit {
			t.Fatalf("case %d: LIMIT %d violated (%d rows)", i, spec.Limit, res.NumRows())
		}
		// Grouped results never exceed the dimension's cardinality.
		if len(spec.DimensionList) > 0 && spec.Limit == 0 && res.NumRows() > 4 {
			t.Fatalf("case %d: %d groups from 4 categories", i, res.NumRows())
		}
	}
}

func TestPropertyChartsRenderWhenRequested(t *testing.T) {
	rng := llm.NewRand("dsl-chart-property")
	rendered := 0
	for i := 0; i < 200; i++ {
		tbl := genTable(rng, fmt.Sprintf("c%03d", i))
		spec := genSpec(rng, tbl.Name)
		if spec.ChartType == "" {
			continue
		}
		chart, err := spec.ToChart()
		if err != nil {
			t.Fatalf("case %d: ToChart: %v\n%s", i, err, spec.JSON())
		}
		sql, err := spec.ToSQL()
		if err != nil {
			t.Fatal(err)
		}
		cat := sqlengine.NewCatalog()
		cat.Register(tbl)
		data, err := cat.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		r, err := viz.Render(chart, data)
		if err != nil {
			t.Fatalf("case %d: render: %v\nchart: %s\nsql: %s", i, err, chart.JSON(), sql)
		}
		score := viz.Readability(chart, r)
		if score < 1 || score > 5 {
			t.Fatalf("case %d: readability %v out of range", i, score)
		}
		rendered++
	}
	if rendered < 30 {
		t.Fatalf("only %d charts exercised; generator too conservative", rendered)
	}
}

func TestPropertyJSONRoundTripPreservesSQL(t *testing.T) {
	rng := llm.NewRand("dsl-json-property")
	for i := 0; i < 200; i++ {
		spec := genSpec(rng, "t")
		back, err := Parse(spec.JSON())
		if err != nil {
			t.Fatalf("case %d: reparse: %v", i, err)
		}
		sql1, err1 := spec.ToSQL()
		sql2, err2 := back.ToSQL()
		if err1 != nil || err2 != nil {
			t.Fatalf("case %d: ToSQL errors: %v, %v", i, err1, err2)
		}
		if sql1 != sql2 {
			t.Fatalf("case %d: round trip changed SQL:\n%s\n%s", i, sql1, sql2)
		}
	}
}
