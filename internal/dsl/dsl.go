// Package dsl defines the domain-specific language DataLab translates NL
// queries into (§IV-C). A DSL specification names the relevant data and
// processing requirements — measures, dimensions, conditions — and compiles
// by fixed rules to SQL or to a chart specification, or seeds free-form
// code generation for complex tasks.
package dsl

import (
	"encoding/json"
	"fmt"
	"strings"

	"datalab/internal/viz"
)

// Measure is one numeric output: a column plus an aggregate.
type Measure struct {
	Column    string `json:"column"`
	Aggregate string `json:"aggregate"` // sum, avg, count, min, max, median
	Alias     string `json:"alias,omitempty"`
}

// Condition is one filter predicate.
type Condition struct {
	Column   string   `json:"column"`
	Operator string   `json:"operator"` // =, !=, >, >=, <, <=, like, in, between
	Value    string   `json:"value"`
	Value2   string   `json:"value2,omitempty"` // upper bound for between
	Values   []string `json:"values,omitempty"` // operands for in
}

// OrderBy is one output ordering criterion.
type OrderBy struct {
	Column string `json:"column"` // output column or measure alias
	Desc   bool   `json:"desc,omitempty"`
}

// Spec is the full DSL specification for one analytic request.
type Spec struct {
	Intent        string      `json:"intent,omitempty"` // free-text restatement
	Table         string      `json:"table"`
	MeasureList   []Measure   `json:"MeasureList"`
	DimensionList []string    `json:"DimensionList"`
	ConditionList []Condition `json:"ConditionList,omitempty"`
	OrderByList   []OrderBy   `json:"OrderByList,omitempty"`
	Limit         int         `json:"Limit,omitempty"`
	ChartType     string      `json:"ChartType,omitempty"` // bar, line, point, arc, area
}

// validAggregates and validOperators implement the JSON-Schema-style
// validation of §IV-C: generated specs are checked for syntactic and
// semantic correctness before use.
var validAggregates = map[string]bool{
	"sum": true, "avg": true, "mean": true, "count": true,
	"min": true, "max": true, "median": true, "": true,
}

var validOperators = map[string]bool{
	"=": true, "!=": true, ">": true, ">=": true, "<": true, "<=": true,
	"like": true, "in": true, "between": true,
}

// Validate checks structural and semantic legality of the spec.
func (s *Spec) Validate() error {
	if s.Table == "" {
		return fmt.Errorf("dsl: missing table")
	}
	if len(s.MeasureList) == 0 && len(s.DimensionList) == 0 {
		return fmt.Errorf("dsl: spec selects nothing (no measures or dimensions)")
	}
	for i, m := range s.MeasureList {
		if m.Column == "" {
			return fmt.Errorf("dsl: measure %d has no column", i)
		}
		if !validAggregates[strings.ToLower(m.Aggregate)] {
			return fmt.Errorf("dsl: measure %d has invalid aggregate %q", i, m.Aggregate)
		}
	}
	for i, d := range s.DimensionList {
		if d == "" {
			return fmt.Errorf("dsl: dimension %d is empty", i)
		}
	}
	for i, c := range s.ConditionList {
		if c.Column == "" {
			return fmt.Errorf("dsl: condition %d has no column", i)
		}
		op := strings.ToLower(c.Operator)
		if !validOperators[op] {
			return fmt.Errorf("dsl: condition %d has invalid operator %q", i, c.Operator)
		}
		if op == "between" && (c.Value == "" || c.Value2 == "") {
			return fmt.Errorf("dsl: condition %d: between needs two bounds", i)
		}
		if op == "in" && len(c.Values) == 0 {
			return fmt.Errorf("dsl: condition %d: in needs values", i)
		}
	}
	if s.ChartType != "" && !viz.ValidMark(viz.Mark(s.ChartType)) {
		return fmt.Errorf("dsl: invalid chart type %q", s.ChartType)
	}
	if s.Limit < 0 {
		return fmt.Errorf("dsl: negative limit")
	}
	return nil
}

// JSON renders the spec as indented JSON (the wire format agents exchange).
func (s *Spec) JSON() string {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return "{}"
	}
	return string(b)
}

// Parse parses and validates a JSON DSL spec.
func Parse(raw string) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal([]byte(raw), &s); err != nil {
		return nil, fmt.Errorf("dsl: bad JSON: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// measureSQL renders one measure as a SQL select item.
func measureSQL(m Measure) (expr, name string) {
	agg := strings.ToUpper(m.Aggregate)
	if agg == "MEAN" {
		agg = "AVG"
	}
	name = m.Alias
	if agg == "" {
		if name == "" {
			name = m.Column
		}
		return quoteIdent(m.Column), name
	}
	if name == "" {
		name = strings.ToLower(agg) + "_" + m.Column
	}
	return fmt.Sprintf("%s(%s)", agg, quoteIdent(m.Column)), name
}

// sqlReserved lists keywords that must be quoted when used as identifiers
// (business columns named "when", "order", "group" are common in practice).
var sqlReserved = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "by": true,
	"having": true, "order": true, "limit": true, "as": true, "and": true,
	"or": true, "not": true, "in": true, "between": true, "like": true,
	"is": true, "null": true, "join": true, "inner": true, "left": true,
	"right": true, "full": true,
	"outer": true, "on": true, "asc": true, "desc": true, "distinct": true,
	"true": true, "false": true, "case": true, "when": true, "then": true,
	"else": true, "end": true, "offset": true,
	"over": true, "partition": true, "rows": true, "unbounded": true,
	"preceding": true, "current": true, "row": true,
}

func quoteIdent(s string) string {
	if s == "" {
		return "``"
	}
	if s[0] >= '0' && s[0] <= '9' {
		// Tencent-style table names like 23_customer_bg start with digits
		// and must be quoted to lex as identifiers.
		return "`" + s + "`"
	}
	if sqlReserved[strings.ToLower(s)] {
		return "`" + s + "`"
	}
	for _, r := range s {
		if !(r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '.') {
			return "`" + s + "`"
		}
	}
	return s
}

func sqlLiteral(v string) string {
	// Numbers pass through bare; everything else is quoted.
	if v == "" {
		return "''"
	}
	numeric := true
	dot := false
	for i, r := range v {
		if r == '-' && i == 0 {
			continue
		}
		if r == '.' && !dot {
			dot = true
			continue
		}
		if r < '0' || r > '9' {
			numeric = false
			break
		}
	}
	if numeric {
		return v
	}
	return "'" + strings.ReplaceAll(v, "'", "''") + "'"
}

// ToSQL compiles the spec to a SELECT statement by the fixed rules the
// paper describes: dimensions become GROUP BY keys, measures become
// aggregates, conditions become WHERE predicates.
func (s *Spec) ToSQL() (string, error) {
	if err := s.Validate(); err != nil {
		return "", err
	}
	var items []string
	for _, d := range s.DimensionList {
		items = append(items, quoteIdent(d))
	}
	aliases := map[string]string{} // alias -> expression
	hasAgg := false
	for _, m := range s.MeasureList {
		expr, name := measureSQL(m)
		if expr != quoteIdent(m.Column) {
			hasAgg = true
		}
		items = append(items, fmt.Sprintf("%s AS %s", expr, quoteIdent(name)))
		aliases[name] = expr
	}
	var sb strings.Builder
	sb.WriteString("SELECT ")
	sb.WriteString(strings.Join(items, ", "))
	sb.WriteString(" FROM ")
	sb.WriteString(quoteIdent(s.Table))

	if len(s.ConditionList) > 0 {
		var preds []string
		for _, c := range s.ConditionList {
			op := strings.ToLower(c.Operator)
			switch op {
			case "between":
				preds = append(preds, fmt.Sprintf("%s BETWEEN %s AND %s",
					quoteIdent(c.Column), sqlLiteral(c.Value), sqlLiteral(c.Value2)))
			case "in":
				vals := make([]string, len(c.Values))
				for i, v := range c.Values {
					vals[i] = sqlLiteral(v)
				}
				preds = append(preds, fmt.Sprintf("%s IN (%s)", quoteIdent(c.Column), strings.Join(vals, ", ")))
			case "like":
				preds = append(preds, fmt.Sprintf("%s LIKE %s", quoteIdent(c.Column), sqlLiteral(c.Value)))
			case "!=":
				preds = append(preds, fmt.Sprintf("%s <> %s", quoteIdent(c.Column), sqlLiteral(c.Value)))
			default:
				preds = append(preds, fmt.Sprintf("%s %s %s", quoteIdent(c.Column), c.Operator, sqlLiteral(c.Value)))
			}
		}
		sb.WriteString(" WHERE ")
		sb.WriteString(strings.Join(preds, " AND "))
	}
	if hasAgg && len(s.DimensionList) > 0 {
		keys := make([]string, len(s.DimensionList))
		for i, d := range s.DimensionList {
			keys[i] = quoteIdent(d)
		}
		sb.WriteString(" GROUP BY ")
		sb.WriteString(strings.Join(keys, ", "))
	}
	if len(s.OrderByList) > 0 {
		var parts []string
		for _, o := range s.OrderByList {
			p := quoteIdent(o.Column)
			if o.Desc {
				p += " DESC"
			}
			parts = append(parts, p)
		}
		sb.WriteString(" ORDER BY ")
		sb.WriteString(strings.Join(parts, ", "))
	}
	if s.Limit > 0 {
		fmt.Fprintf(&sb, " LIMIT %d", s.Limit)
	}
	return sb.String(), nil
}

// ToChart compiles the spec to a chart specification. The first dimension
// maps to x (or color for pies), the first measure to y (or theta).
func (s *Spec) ToChart() (*viz.Spec, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	mark := viz.Mark(s.ChartType)
	if s.ChartType == "" {
		mark = s.inferMark()
	}
	if len(s.MeasureList) == 0 {
		return nil, fmt.Errorf("dsl: chart needs at least one measure")
	}
	m := s.MeasureList[0]
	agg := strings.ToLower(m.Aggregate)
	if agg == "mean" {
		agg = "avg"
	}
	_, yName := measureSQL(m)

	spec := &viz.Spec{
		Title:    s.Intent,
		Mark:     mark,
		Data:     s.Table,
		Limit:    s.Limit,
		Encoding: map[string]*viz.Encoding{},
	}
	// The compiled chart binds to the *result table of ToSQL*, where the
	// measure is already aggregated into a column named yName.
	yEnc := &viz.Encoding{Field: yName, Type: viz.Quantitative}
	if mark == viz.MarkArc {
		spec.Encoding["theta"] = yEnc
		if len(s.DimensionList) == 0 {
			return nil, fmt.Errorf("dsl: pie chart needs a dimension")
		}
		spec.Encoding["color"] = &viz.Encoding{Field: s.DimensionList[0], Type: viz.Nominal}
	} else {
		if len(s.DimensionList) == 0 {
			return nil, fmt.Errorf("dsl: chart needs a dimension for the x axis")
		}
		xType := viz.Nominal
		if looksTemporalName(s.DimensionList[0]) {
			xType = viz.Temporal
		}
		spec.Encoding["x"] = &viz.Encoding{Field: s.DimensionList[0], Type: xType}
		spec.Encoding["y"] = yEnc
		if len(s.DimensionList) > 1 {
			spec.Encoding["color"] = &viz.Encoding{Field: s.DimensionList[1], Type: viz.Nominal}
		}
	}
	for _, o := range s.OrderByList {
		if strings.EqualFold(o.Column, yName) {
			dir := "ascending"
			if o.Desc {
				dir = "descending"
			}
			yEnc.Sort = dir
		}
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// inferMark picks a chart type from the data shape, the heuristic used
// when the query does not name one.
func (s *Spec) inferMark() viz.Mark {
	if len(s.DimensionList) > 0 && looksTemporalName(s.DimensionList[0]) {
		return viz.MarkLine
	}
	return viz.MarkBar
}

func looksTemporalName(name string) bool {
	n := strings.ToLower(name)
	for _, kw := range []string{"time", "date", "day", "month", "year", "ftime", "dt"} {
		if strings.Contains(n, kw) {
			return true
		}
	}
	return false
}
