// Package experiments contains one harness per table and figure in the
// paper's evaluation (§VII). Each harness generates its workload,
// executes every method arm, and returns printable rows; cmd/datalab-bench
// renders them and bench_test.go wraps them as Go benchmarks. DESIGN.md's
// per-experiment index maps each harness to the paper artifact it
// regenerates.
package experiments

import (
	"fmt"
	"strings"

	"datalab/internal/baselines"
	"datalab/internal/benchgen"
	"datalab/internal/llm"
	"datalab/internal/metrics"
)

// Cell is one method score inside a row.
type Cell struct {
	Method string
	Value  float64
}

// Row is one benchmark x metric line of Table I.
type Row struct {
	Stage     string
	Task      string
	Benchmark string
	Metric    string
	Cells     []Cell
}

// Format renders the row like the paper's table.
func (r Row) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s %-11s %-13s %-17s", r.Stage, r.Task, r.Benchmark, r.Metric)
	for _, c := range r.Cells {
		fmt.Fprintf(&sb, " | %s %.2f", c.Method, c.Value)
	}
	return sb.String()
}

// suiteMeta maps suites to their Table I presentation.
var suiteMeta = map[string]struct {
	stage string
	task  string
}{
	"Spider":       {"Data Preparation", "NL2SQL"},
	"BIRD":         {"Data Preparation", "NL2SQL"},
	"DS-1000":      {"Data Preparation", "NL2DSCode"},
	"DSEval":       {"Data Preparation", "NL2DSCode"},
	"DABench":      {"Data Analysis", "NL2Insight"},
	"InsightBench": {"Data Analysis", "NL2Insight"},
	"nvBench":      {"Data Visualization", "NL2VIS"},
	"VisEval":      {"Data Visualization", "NL2VIS"},
}

// Table1 runs the end-to-end comparison (Table I). scale in (0,1]
// shrinks suite sizes for fast runs; 1.0 is the full workload. All
// methods use the GPT-4 profile, as in the paper.
func Table1(seed string, scale float64) []Row {
	var rows []Row
	for _, suite := range benchgen.Suites() {
		s := suite
		s.N = scaled(s.N, scale)
		tasks := benchgen.GenerateSuite(s, seed)
		methods := baselines.MethodsFor(s.Kind)

		results := map[string][]baselines.Result{}
		for _, m := range methods {
			client := llm.NewClient(llm.GPT4, seed+"|table1|"+m.Name)
			for _, task := range tasks {
				results[m.Name] = append(results[m.Name], m.Run(task, client))
			}
		}

		meta := suiteMeta[s.Name]
		addRow := func(metric string, value func(string) float64) {
			row := Row{Stage: meta.stage, Task: meta.task, Benchmark: s.Name, Metric: metric}
			for _, m := range methods {
				row.Cells = append(row.Cells, Cell{Method: m.Name, Value: value(m.Name)})
			}
			rows = append(rows, row)
		}

		switch s.Kind {
		case benchgen.TaskNL2SQL:
			addRow("Execution Accuracy", func(m string) float64 { return rate(results[m], correct) })
		case benchgen.TaskNL2DSCode:
			addRow("Pass Rate", func(m string) float64 { return rate(results[m], correct) })
		case benchgen.TaskNL2Insight:
			if s.Name == "DABench" {
				addRow("Accuracy", func(m string) float64 { return rate(results[m], correct) })
			} else {
				addRow("LLaMA-3-Eval", func(m string) float64 {
					return judgeScore(seed, m, tasks, results[m])
				})
				addRow("ROUGE-1", func(m string) float64 {
					return rougeScore(tasks, results[m])
				})
			}
		case benchgen.TaskNL2VIS:
			if s.Name == "nvBench" {
				addRow("Execution Accuracy", func(m string) float64 { return rate(results[m], correct) })
			} else {
				addRow("Pass Rate", func(m string) float64 { return rate(results[m], legal) })
				addRow("Readability Score", func(m string) float64 { return readability(results[m]) })
			}
		}
	}
	return rows
}

func scaled(n int, scale float64) int {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	out := int(float64(n) * scale)
	if out < 10 {
		out = 10
	}
	return out
}

func correct(r baselines.Result) bool { return r.Correct }
func legal(r baselines.Result) bool   { return r.Legal }

func rate(rs []baselines.Result, pred func(baselines.Result) bool) float64 {
	var c metrics.Counter
	for _, r := range rs {
		c.Add(pred(r))
	}
	return c.Rate()
}

func readability(rs []baselines.Result) float64 {
	var xs []float64
	for _, r := range rs {
		if r.Legal {
			xs = append(xs, r.Readability)
		}
	}
	return metrics.Mean(xs)
}

// rougeScore averages summary-level ROUGE-1 against the references.
func rougeScore(tasks []benchgen.Task, rs []baselines.Result) float64 {
	var xs []float64
	for i, r := range rs {
		xs = append(xs, metrics.ROUGE1(r.Summary, tasks[i].GoldInsight))
	}
	return metrics.Mean(xs)
}

// judgeScore is the summary-level LLM-judge metric: a simulated judge
// whose verdict concentrates around the factual overlap with the
// reference (judges reward content over phrasing, so it sits slightly
// above raw ROUGE).
func judgeScore(seed, method string, tasks []benchgen.Task, rs []baselines.Result) float64 {
	judge := llm.NewClient(llm.GPT4, seed+"|judge")
	var xs []float64
	for i, r := range rs {
		overlap := metrics.ROUGE1(r.Summary, tasks[i].GoldInsight)
		q := overlap * 1.4
		if q > 1 {
			q = 1
		}
		xs = append(xs, judge.Score(fmt.Sprintf("judge|%s|%s", method, tasks[i].ID), 0, 1, q))
	}
	return metrics.Mean(xs)
}

// Figure6 runs DataLab across the three model profiles (Figure 6) on the
// four representative suites. Returns rows keyed by benchmark with one
// cell per model.
func Figure6(seed string, scale float64) []Row {
	suiteNames := []string{"Spider", "DS-1000", "DABench", "VisEval"}
	var rows []Row
	for _, name := range suiteNames {
		s, _ := benchgen.SuiteByName(name)
		s.N = scaled(s.N, scale)
		tasks := benchgen.GenerateSuite(s, seed)
		meta := suiteMeta[s.Name]

		metric := "Accuracy"
		pred := correct
		switch s.Name {
		case "Spider":
			metric = "Execution Accuracy"
		case "DS-1000":
			metric = "Pass Rate"
		case "VisEval":
			metric = "Pass Rate"
			pred = legal
		}

		row := Row{Stage: meta.stage, Task: meta.task, Benchmark: s.Name, Metric: metric}
		m := baselines.DataLab()
		for _, profile := range llm.Profiles() {
			client := llm.NewClient(profile, seed+"|figure6")
			var rs []baselines.Result
			for _, task := range tasks {
				rs = append(rs, m.Run(task, client))
			}
			row.Cells = append(row.Cells, Cell{Method: profile.Name, Value: rate(rs, pred)})
		}
		rows = append(rows, row)
	}
	return rows
}
