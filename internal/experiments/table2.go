package experiments

import (
	"fmt"
	"strings"
	"time"

	"datalab/internal/benchgen"
	"datalab/internal/dsl"
	"datalab/internal/knowledge"
	"datalab/internal/llm"
	"datalab/internal/metrics"
)

// KnowledgeGenStats reports the §VII-C.1 knowledge-generation evaluation:
// corpus scale, timing, and quality against expert ground truth.
type KnowledgeGenStats struct {
	Tables          int
	Columns         int
	SecondsPerTable float64
	TableSES        float64 // mean sentence-embedding similarity, tables
	ColumnSES       float64 // mean SES, columns
	TableSESAbove07 float64 // fraction > 0.7
	ColSESAbove07   float64
}

// Format renders the stats paragraph.
func (s KnowledgeGenStats) Format() string {
	return fmt.Sprintf(
		"knowledge generation: %d tables, %d columns, %.4fs/table; SES tables %.3f (%.0f%% > 0.7), columns %.3f (%.0f%% > 0.7)",
		s.Tables, s.Columns, s.SecondsPerTable,
		s.TableSES, 100*s.TableSESAbove07, s.ColumnSES, 100*s.ColSESAbove07)
}

// KnowledgeGeneration runs Algorithm 1 over an enterprise corpus and
// scores the generated descriptions against expert annotations with SES,
// reproducing the 50-table/629-column quality study.
func KnowledgeGeneration(seed string, nTables int) KnowledgeGenStats {
	tables := benchgen.GenerateEnterprise(seed, nTables)
	client := llm.NewClient(llm.GPT4, seed+"|knowgen")
	gen := knowledge.NewGenerator(client)

	var stats KnowledgeGenStats
	var tableSES, colSES []float64
	start := time.Now()
	for _, et := range tables {
		bundle, err := gen.Generate(et.Schema, et.Scripts, et.Lineage)
		if err != nil {
			continue
		}
		stats.Tables++
		tableSES = append(tableSES, metrics.SES(bundle.Table.Description, et.ExpertTableDesc))
		for _, ck := range bundle.Columns {
			stats.Columns++
			gold := et.ExpertColumnDesc[ck.Name]
			colSES = append(colSES, metrics.SES(ck.Description, gold))
		}
	}
	elapsed := time.Since(start).Seconds()
	if stats.Tables > 0 {
		stats.SecondsPerTable = elapsed / float64(stats.Tables)
	}
	stats.TableSES = metrics.Mean(tableSES)
	stats.ColumnSES = metrics.Mean(colSES)
	stats.TableSESAbove07 = metrics.FractionAbove(tableSES, 0.7)
	stats.ColSESAbove07 = metrics.FractionAbove(colSES, 0.7)
	return stats
}

// Table2Result is the knowledge ablation (Table II).
type Table2Result struct {
	// Recall@5 for schema linking and accuracy for NL2DSL, per setting.
	SchemaLinkingRecall [3]float64 // S1, S2, S3 (percent)
	NL2DSLAccuracy      [3]float64
	LinkingPairs        int
	DSLPairs            int
}

// Format renders the two ablation lines.
func (r Table2Result) Format() string {
	return fmt.Sprintf(
		"Schema Linking / Recall@5 (%%):  S1 %.2f  S2 %.2f  S3 %.2f\nNL2DSL / Accuracy (%%):         S1 %.2f  S2 %.2f  S3 %.2f",
		r.SchemaLinkingRecall[0], r.SchemaLinkingRecall[1], r.SchemaLinkingRecall[2],
		r.NL2DSLAccuracy[0], r.NL2DSLAccuracy[1], r.NL2DSLAccuracy[2])
}

// Table2 runs the Domain Knowledge Incorporation ablation: the same
// query sets against graphs loaded at LevelNone/Partial/Full.
func Table2(seed string, nTables, nLinking, nDSL int) Table2Result {
	tables := benchgen.GenerateEnterprise(seed, nTables)
	client := llm.NewClient(llm.GPT4, seed+"|table2")
	gen := knowledge.NewGenerator(client)

	bundles := make([]*knowledge.Bundle, len(tables))
	for i, et := range tables {
		b, err := gen.Generate(et.Schema, et.Scripts, et.Lineage)
		if err != nil {
			panic(fmt.Sprintf("knowledge generation failed: %v", err))
		}
		bundles[i] = b
	}
	linkPairs := benchgen.SchemaLinkingPairs(tables, nLinking, seed)
	dslPairs := benchgen.NL2DSLPairs(tables, nDSL, seed)

	var res Table2Result
	res.LinkingPairs = len(linkPairs)
	res.DSLPairs = len(dslPairs)

	for si, level := range []knowledge.Level{knowledge.LevelNone, knowledge.LevelPartial, knowledge.LevelFull} {
		graph := knowledge.NewGraph()
		for _, b := range bundles {
			graph.AddBundle(b, level)
		}
		if level >= knowledge.LevelPartial {
			// Glossaries are manual; available whenever any knowledge is.
			for _, j := range benchgen.Jargon() {
				graph.AddJargon(j)
			}
		}
		retriever := knowledge.NewRetriever(graph, client)
		translator := &knowledge.Translator{Client: client}

		// Schema linking: Recall@5 over retrieved column names. Retrieved
		// derived-metric nodes resolve to their base physical column for
		// this metric (the linker's job is surfacing schema elements).
		var recalls []float64
		for _, p := range linkPairs {
			var got []string
			seen := map[string]bool{}
			// The dataset gives query-table-column triples (as the paper's
			// 439-pair set does), so linking runs against the named table.
			for _, h := range retriever.RetrieveColumnsScoped(p.Query, p.Table, 15) {
				name := h.Node.Name
				if parent, ok := graph.Node(h.Node.Parent); ok && parent.Type == knowledge.NodeColumn {
					name = parent.Name
				}
				key := strings.ToLower(name)
				if seen[key] {
					continue
				}
				seen[key] = true
				got = append(got, name)
				if len(got) == 5 {
					break
				}
			}
			recalls = append(recalls, metrics.RecallAtK(got, p.Relevant, 5))
		}
		res.SchemaLinkingRecall[si] = 100 * metrics.Mean(recalls)

		// NL2DSL: full translation accuracy against gold specs.
		var acc metrics.Counter
		for pi, p := range dslPairs {
			var cands []knowledge.CandidateColumn
			for _, h := range retriever.RetrieveColumnsScoped(p.Query, p.Table, 8) {
				cands = append(cands, knowledge.CandidateFromNode(h.Node))
			}
			spec, faithful := translator.Translate(knowledge.TranslateRequest{
				Query:      p.Query,
				Table:      p.Table,
				Candidates: cands,
				Key:        fmt.Sprintf("t2|%d|%d", si, pi),
				Skill:      0.98,
				Quality: llm.Quality{
					SchemaLinked: 1,
					Ambiguity:    0.10,
					KnowledgeLevel: map[knowledge.Level]float64{
						knowledge.LevelNone: 0, knowledge.LevelPartial: 0.55, knowledge.LevelFull: 1,
					}[level],
					Structured: true,
				},
			})
			acc.Add(faithful && specMatchesGold(spec, p.Gold))
		}
		res.NL2DSLAccuracy[si] = acc.Rate()
	}
	return res
}

// specMatchesGold compares the semantically load-bearing parts of two DSL
// specs: measure column+aggregate, dimension set, and condition columns.
func specMatchesGold(got, want *dsl.Spec) bool {
	if got == nil || want == nil {
		return false
	}
	if len(got.MeasureList) != len(want.MeasureList) {
		return false
	}
	for i := range want.MeasureList {
		if !strings.EqualFold(got.MeasureList[i].Column, want.MeasureList[i].Column) {
			return false
		}
		ga := normAgg(got.MeasureList[i].Aggregate)
		wa := normAgg(want.MeasureList[i].Aggregate)
		if ga != wa {
			return false
		}
	}
	if len(got.DimensionList) != len(want.DimensionList) {
		return false
	}
	for i := range want.DimensionList {
		if !strings.EqualFold(got.DimensionList[i], want.DimensionList[i]) {
			return false
		}
	}
	return true
}

func normAgg(a string) string {
	a = strings.ToLower(a)
	if a == "mean" {
		return "avg"
	}
	if a == "" {
		return "sum"
	}
	return a
}
