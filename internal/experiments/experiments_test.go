package experiments

// Shape tests: these lock in the paper's qualitative claims — orderings,
// gaps, and ablation directions — at reduced workload sizes. They are the
// regression net for the reproduction; EXPERIMENTS.md records the
// full-scale numbers.

import (
	"strings"
	"testing"
)

func cellValue(t *testing.T, rows []Row, benchmark, metric, method string) float64 {
	t.Helper()
	for _, r := range rows {
		if r.Benchmark != benchmark || r.Metric != metric {
			continue
		}
		for _, c := range r.Cells {
			if c.Method == method {
				return c.Value
			}
		}
	}
	t.Fatalf("missing cell %s/%s/%s", benchmark, metric, method)
	return 0
}

func TestTable1Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	rows := Table1("shape-test", 0.4)

	// NL2SQL: the SQL specialists beat the generalist on their home turf.
	spiderDL := cellValue(t, rows, "Spider", "Execution Accuracy", "DataLab")
	spiderPurple := cellValue(t, rows, "Spider", "Execution Accuracy", "PURPLE")
	spiderChess := cellValue(t, rows, "Spider", "Execution Accuracy", "CHESS")
	// PURPLE leads clearly; CHESS may tie DataLab within sampling noise at
	// this reduced scale but must not trail it meaningfully.
	if spiderPurple <= spiderDL || spiderChess < spiderDL-3 {
		t.Errorf("Spider: specialists must beat DataLab (DL %.1f, PURPLE %.1f, CHESS %.1f)",
			spiderDL, spiderPurple, spiderChess)
	}
	// BIRD is harder than Spider for everyone.
	birdDL := cellValue(t, rows, "BIRD", "Execution Accuracy", "DataLab")
	if birdDL >= spiderDL {
		t.Errorf("BIRD (%.1f) must be harder than Spider (%.1f)", birdDL, spiderDL)
	}

	// NL2DSCode: DataLab leads both suites; DS-1000 much harder than DSEval.
	ds1000DL := cellValue(t, rows, "DS-1000", "Pass Rate", "DataLab")
	dsevalDL := cellValue(t, rows, "DSEval", "Pass Rate", "DataLab")
	ds1000CoML := cellValue(t, rows, "DS-1000", "Pass Rate", "CoML")
	if ds1000DL <= ds1000CoML {
		t.Errorf("DS-1000: DataLab (%.1f) must beat CoML (%.1f)", ds1000DL, ds1000CoML)
	}
	if dsevalDL-ds1000DL < 10 {
		t.Errorf("DSEval (%.1f) should be much easier than DS-1000 (%.1f)", dsevalDL, ds1000DL)
	}

	// NL2Insight: AutoGen's unstructured chat trails DataLab.
	dabenchDL := cellValue(t, rows, "DABench", "Accuracy", "DataLab")
	dabenchAG := cellValue(t, rows, "DABench", "Accuracy", "AutoGen")
	if dabenchAG >= dabenchDL {
		t.Errorf("DABench: DataLab (%.1f) must beat AutoGen (%.1f)", dabenchDL, dabenchAG)
	}

	// NL2VIS: VisEval pass rates land in a believable band with DataLab
	// at or near the top.
	visDL := cellValue(t, rows, "VisEval", "Pass Rate", "DataLab")
	visChat := cellValue(t, rows, "VisEval", "Pass Rate", "Chat2Vis")
	if visDL <= visChat {
		t.Errorf("VisEval: DataLab (%.1f) must beat Chat2Vis (%.1f)", visDL, visChat)
	}
	for _, m := range []string{"DataLab", "LIDA", "Chat2Vis", "CoML4VIS"} {
		r := cellValue(t, rows, "VisEval", "Readability Score", m)
		if r < 3 || r > 4.5 {
			t.Errorf("readability %s = %.2f out of the plausible band", m, r)
		}
	}
}

func TestFigure6Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	rows := Figure6("shape-test", 0.4)
	// Model ordering on the skill-bound tasks.
	for _, bench := range []string{"Spider", "DS-1000"} {
		var metric string
		if bench == "Spider" {
			metric = "Execution Accuracy"
		} else {
			metric = "Pass Rate"
		}
		llama := cellValue(t, rows, bench, metric, "llama-3.1")
		gpt := cellValue(t, rows, bench, metric, "gpt-4")
		if llama >= gpt {
			t.Errorf("%s: llama-3.1 (%.1f) must trail gpt-4 (%.1f)", bench, llama, gpt)
		}
	}
	// VisEval is a near-tie: no model more than 12 points from another.
	v1 := cellValue(t, rows, "VisEval", "Pass Rate", "llama-3.1")
	v2 := cellValue(t, rows, "VisEval", "Pass Rate", "gpt-4")
	if v1-v2 > 12 || v2-v1 > 12 {
		t.Errorf("VisEval should be a near-tie: llama %.1f vs gpt %.1f", v1, v2)
	}
}

func TestKnowledgeGenerationQuality(t *testing.T) {
	stats := KnowledgeGeneration("shape-test", 10)
	if stats.Tables != 10 {
		t.Fatalf("tables = %d", stats.Tables)
	}
	if stats.Columns < 60 {
		t.Errorf("columns = %d, want >= 60", stats.Columns)
	}
	if stats.ColumnSES < 0.55 {
		t.Errorf("column SES = %.3f, want usable (> 0.55)", stats.ColumnSES)
	}
	if stats.ColSESAbove07 < 0.4 {
		t.Errorf("share above 0.7 = %.2f, too low", stats.ColSESAbove07)
	}
	if !strings.Contains(stats.Format(), "SES") {
		t.Error("Format should mention SES")
	}
}

func TestTable2Monotonicity(t *testing.T) {
	res := Table2("shape-test", 6, 90, 66)
	for i := 0; i < 2; i++ {
		if res.SchemaLinkingRecall[i] >= res.SchemaLinkingRecall[i+1] {
			t.Errorf("linking recall not monotone: %v", res.SchemaLinkingRecall)
		}
		if res.NL2DSLAccuracy[i] >= res.NL2DSLAccuracy[i+1] {
			t.Errorf("NL2DSL accuracy not monotone: %v", res.NL2DSLAccuracy)
		}
	}
	// The paper's headline: a dramatic S1 -> S3 NL2DSL gain.
	if gain := res.NL2DSLAccuracy[2] - res.NL2DSLAccuracy[0]; gain < 30 {
		t.Errorf("S1->S3 NL2DSL gain = %.1f pts, want the paper's dramatic jump", gain)
	}
	// S2 -> S3 is driven by derived-column logic: a real gap must exist.
	if gap := res.NL2DSLAccuracy[2] - res.NL2DSLAccuracy[1]; gap < 10 {
		t.Errorf("S2->S3 gap = %.1f pts, derived knowledge should matter", gap)
	}
}

func TestTable3AblationDirections(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	res := Table3("shape-test", 6, 80)
	// Removing the FSM (S1) hurts success hard relative to S3.
	if res.SuccessRate[0] >= res.SuccessRate[2]-2 {
		t.Errorf("S1 success (%.1f) must trail S3 (%.1f)", res.SuccessRate[0], res.SuccessRate[2])
	}
	// Accuracy is worst without the FSM and best with both mechanisms.
	if res.Accuracy[0] >= res.Accuracy[2]-2 {
		t.Errorf("S1 accuracy (%.1f) must trail S3 (%.1f)", res.Accuracy[0], res.Accuracy[2])
	}
	if res.Accuracy[1] >= res.Accuracy[2]+2 {
		t.Errorf("S2 accuracy (%.1f) must not exceed S3 (%.1f)", res.Accuracy[1], res.Accuracy[2])
	}
}

func TestFigure7TimingBounds(t *testing.T) {
	points, err := Figure7("shape-test", 49)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 10 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		// The paper's bounds: construction < 250 ms, update < 10 ms. Our
		// in-process implementation must be far inside them.
		if p.ConstructMs > 250 {
			t.Errorf("%d cells: construction %.2f ms exceeds the paper's bound", p.Cells, p.ConstructMs)
		}
		if p.UpdateCellMs > 10 {
			t.Errorf("%d cells: update %.2f ms exceeds the paper's bound", p.Cells, p.UpdateCellMs)
		}
	}
	if !strings.Contains(FormatFigure7(points), "construct_ms") {
		t.Error("FormatFigure7 missing header")
	}
}

func TestTable4TradeOff(t *testing.T) {
	res, err := Table4("shape-test", 20)
	if err != nil {
		t.Fatal(err)
	}
	// The DAG trades a small accuracy drop for a large token saving.
	if res.Accuracy[1] >= res.Accuracy[0] {
		t.Errorf("S2 accuracy (%.1f) should sit slightly below S1 (%.1f)", res.Accuracy[1], res.Accuracy[0])
	}
	if drop := res.Accuracy[0] - res.Accuracy[1]; drop > 20 {
		t.Errorf("accuracy drop %.1f pts too large — the trade must stay small", drop)
	}
	if res.Reduction < 40 {
		t.Errorf("token reduction %.1f%% too small — the DAG must pay for itself", res.Reduction)
	}
	if res.TokensPerQ[1] >= res.TokensPerQ[0] {
		t.Error("pruned context must cost fewer tokens")
	}
}
