package experiments

import (
	"fmt"

	"datalab/internal/agent"
	"datalab/internal/benchgen"
	"datalab/internal/comm"
	"datalab/internal/knowledge"
	"datalab/internal/llm"
	"datalab/internal/metrics"
	"datalab/internal/sqlengine"
)

// Table3Result is the Inter-Agent Communication ablation (Table III).
type Table3Result struct {
	// S1 = w/o FSM, S2 = w/o information formatting, S3 = both on.
	SuccessRate [3]float64
	Accuracy    [3]float64
	Questions   int
}

// Format renders the two ablation lines.
func (r Table3Result) Format() string {
	return fmt.Sprintf(
		"Success Rate (%%):  S1 %.2f  S2 %.2f  S3 %.2f\nAccuracy (%%):      S1 %.2f  S2 %.2f  S3 %.2f",
		r.SuccessRate[0], r.SuccessRate[1], r.SuccessRate[2],
		r.Accuracy[0], r.Accuracy[1], r.Accuracy[2])
}

// Table3 runs the complex multi-agent questions under the three
// communication configurations. Success = solved within 5 calls/agent;
// accuracy = final answer correct.
func Table3(seed string, nTables, nQuestions int) Table3Result {
	tables := benchgen.GenerateEnterprise(seed, nTables)
	questions := benchgen.ComplexQuestions(tables, nQuestions, seed)

	configs := []comm.ProxyConfig{
		{UseFSM: false, Structured: true, MaxCallsPerAgent: 5}, // S1
		{UseFSM: true, Structured: false, MaxCallsPerAgent: 5}, // S2
		{UseFSM: true, Structured: true, MaxCallsPerAgent: 5},  // S3
	}

	var res Table3Result
	res.Questions = len(questions)
	for ci, cfg := range configs {
		client := llm.NewClient(llm.GPT4, fmt.Sprintf("%s|table3|s%d", seed, ci+1))
		gen := knowledge.NewGenerator(client)
		graph := knowledge.NewGraph()
		catalog := sqlengine.NewCatalog()
		for _, et := range tables {
			catalog.Register(et.Data)
			if b, err := gen.Generate(et.Schema, et.Scripts, et.Lineage); err == nil {
				graph.AddBundle(b, knowledge.LevelFull)
			}
		}
		for _, j := range benchgen.Jargon() {
			graph.AddJargon(j)
		}

		var success, accuracy metrics.Counter
		for _, q := range questions {
			rt := agent.NewRuntime(client, catalog).WithGraph(graph, knowledge.LevelFull)
			rt.Ambiguity = 0.3 // enterprise queries, knowledge loaded
			rt.Structured = cfg.Structured
			planner := agent.NewPlanner(rt)
			plan, agents := planner.Plan(q.Query, q.Table)
			proxy := comm.NewProxy(cfg)
			_, stats, err := proxy.Run(plan, agents, q.Query)
			ok := err == nil && stats.Succeeded
			success.Add(ok)
			accuracy.Add(ok && agent.AllFaithful(agents))
		}
		res.SuccessRate[ci] = success.Rate()
		res.Accuracy[ci] = accuracy.Rate()
	}
	return res
}
