package experiments

import (
	"fmt"
	"strings"
	"time"

	"datalab/internal/benchgen"
	"datalab/internal/llm"
	"datalab/internal/metrics"
	"datalab/internal/notebook"
)

// DAGTiming is one Figure 7 data point.
type DAGTiming struct {
	Cells        int
	ConstructMs  float64 // full notebook-open construction
	UpdateCellMs float64 // single-cell incremental update
}

// Figure7 measures DAG construction and per-cell update time over
// notebooks of 2..maxCells cells (the paper's 50-notebook study spans
// 2-49 cells). These are real wall-clock measurements of Algorithm 3.
func Figure7(seed string, maxCells int) ([]DAGTiming, error) {
	var out []DAGTiming
	for n := 2; n <= maxCells; n += 3 {
		g, err := benchgen.GenerateNotebook(fmt.Sprintf("%s-%d", seed, n), n)
		if err != nil {
			return nil, err
		}
		nb := g.Notebook

		// Cold-start construction, repeated for a stable reading.
		const reps = 20
		start := time.Now()
		for i := 0; i < reps; i++ {
			nb.ConstructDAG()
		}
		constructMs := float64(time.Since(start).Microseconds()) / 1000 / reps

		// Single-cell update: modify a middle cell in place.
		cells := nb.Cells()
		target := cells[len(cells)/2]
		start = time.Now()
		for i := 0; i < reps; i++ {
			if err := nb.UpdateCell(target.ID, target.Source); err != nil {
				return nil, err
			}
		}
		updateMs := float64(time.Since(start).Microseconds()) / 1000 / reps

		out = append(out, DAGTiming{Cells: nb.NumCells(), ConstructMs: constructMs, UpdateCellMs: updateMs})
	}
	return out, nil
}

// FormatFigure7 renders the series.
func FormatFigure7(points []DAGTiming) string {
	var sb strings.Builder
	sb.WriteString("cells | construct_ms | update_ms\n")
	for _, p := range points {
		fmt.Fprintf(&sb, "%5d | %12.3f | %9.3f\n", p.Cells, p.ConstructMs, p.UpdateCellMs)
	}
	return sb.String()
}

// Table4Result is the Cell-based Context Management ablation (Table IV).
type Table4Result struct {
	// S1 = w/o DAG (all cells), S2 = w/ DAG (pruned minimum set).
	Accuracy   [2]float64
	TokensPerQ [2]float64
	Queries    int
	Reduction  float64 // percent token-cost reduction S1 -> S2
}

// Format renders the ablation lines.
func (r Table4Result) Format() string {
	return fmt.Sprintf(
		"Accuracy (%%):             S1 %.2f  S2 %.2f\nToken Cost per Query (K): S1 %.2f  S2 %.2f  (reduction %.2f%%)",
		r.Accuracy[0], r.Accuracy[1], r.TokensPerQ[0]/1000, r.TokensPerQ[1]/1000, r.Reduction)
}

// Table4 evaluates task completion and token cost with and without the
// dependency DAG over generated notebooks (the paper's 50 notebooks x 3
// queries).
func Table4(seed string, nNotebooks int) (Table4Result, error) {
	client := llm.NewClient(llm.GPT4, seed+"|table4")
	var res Table4Result

	var accS1, accS2 metrics.Counter
	var tokS1, tokS2 []float64
	for i := 0; i < nNotebooks; i++ {
		size := 6 + (i*7)%40
		g, err := benchgen.GenerateNotebook(fmt.Sprintf("%s-%d", seed, i), size)
		if err != nil {
			return res, err
		}
		queries := g.Queries
		if len(queries) > 3 {
			queries = queries[:3]
		}
		for qi, q := range queries {
			for _, useDAG := range []bool{false, true} {
				mgr := notebook.NewManager(g.Notebook, nil)
				mgr.UseDAG = useDAG
				variable := ""
				if q.ExplicitVar {
					variable = q.Variable
				}
				ctx := mgr.QueryContext(q.Query, variable)
				tokens := float64(ctx.Tokens())

				// Retrieval correctness: the gold relevant cells must be
				// in context (S1 trivially satisfies this). Missing a gold
				// Markdown cell is close to fatal — the critical threshold
				// it carries cannot be reconstructed (§VII-E's explanation
				// for the accuracy drop).
				covered := coverage(ctx, q.RelevantCells)
				if missedMarkdown(g.Notebook, ctx, q.RelevantCells) {
					covered *= 0.75
				}
				// Task completion: retrieval must cover the essentials and
				// the model must survive the distraction of whatever else
				// was stuffed into its context window.
				distraction := contextDistraction(ctx, q.RelevantCells)
				quality := llm.Quality{
					SchemaLinked:   covered,
					Distraction:    distraction,
					Structured:     true,
					KnowledgeLevel: 1,
				}
				key := fmt.Sprintf("t4|%d|%d|%v", i, qi, useDAG)
				ok := client.Attempt(key, "", "", 0.90, quality)
				if useDAG {
					accS2.Add(ok)
					tokS2 = append(tokS2, tokens)
				} else {
					accS1.Add(ok)
					tokS1 = append(tokS1, tokens)
				}
			}
		}
	}
	res.Accuracy[0] = accS1.Rate()
	res.Accuracy[1] = accS2.Rate()
	res.TokensPerQ[0] = metrics.Mean(tokS1)
	res.TokensPerQ[1] = metrics.Mean(tokS2)
	if res.TokensPerQ[0] > 0 {
		res.Reduction = 100 * (1 - res.TokensPerQ[1]/res.TokensPerQ[0])
	}
	res.Queries = accS1.Total
	return res, nil
}

// missedMarkdown reports whether a gold Markdown cell is absent from the
// context.
func missedMarkdown(nb *notebook.Notebook, ctx notebook.Context, relevant []string) bool {
	have := map[string]bool{}
	for _, c := range ctx.Cells {
		have[c.ID] = true
	}
	for _, id := range relevant {
		if have[id] {
			continue
		}
		if c, ok := nb.Cell(id); ok && c.Type == notebook.CellMarkdown {
			return true
		}
	}
	return false
}

// coverage returns the fraction of gold cells present in the context.
func coverage(ctx notebook.Context, relevant []string) float64 {
	if len(relevant) == 0 {
		return 1
	}
	have := map[string]bool{}
	for _, c := range ctx.Cells {
		have[c.ID] = true
	}
	hit := 0
	for _, id := range relevant {
		if have[id] {
			hit++
		}
	}
	return float64(hit) / float64(len(relevant))
}

// contextDistraction rates how much of the context is irrelevant. The
// scale reflects that notebook cells are individually small distractors
// compared to whole agent outputs.
func contextDistraction(ctx notebook.Context, relevant []string) float64 {
	if len(ctx.Cells) == 0 {
		return 0
	}
	rel := map[string]bool{}
	for _, id := range relevant {
		rel[id] = true
	}
	irrelevant := 0
	for _, c := range ctx.Cells {
		if !rel[c.ID] {
			irrelevant++
		}
	}
	return 0.13 * float64(irrelevant) / float64(len(ctx.Cells))
}
