package wal

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"datalab/internal/table"
)

func newEventsTable(t *testing.T) *table.Table {
	t.Helper()
	return table.MustNew("events",
		[]string{"id", "kind", "value"},
		[]table.Kind{table.KindInt, table.KindString, table.KindFloat})
}

func eventRow(i int) []table.Value {
	return []table.Value{table.Int(int64(i)), table.Str([]string{"alpha", "beta", "gamma"}[i%3]), table.Float(float64(i) * 1.5)}
}

// openTracked opens a manager and registers one appender through it.
func openTracked(t *testing.T, dir string, opts Options) (*Manager, *table.Appender) {
	t.Helper()
	m, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(rec.Appenders) != 0 {
		t.Fatalf("fresh dir recovered %d tables", len(rec.Appenders))
	}
	app := table.NewAppender(newEventsTable(t))
	if err := m.Track(app); err != nil {
		t.Fatalf("Track: %v", err)
	}
	return m, app
}

// ingest appends and publishes rows [lo, hi) in batches.
func ingest(t *testing.T, app *table.Appender, lo, hi, batch int) {
	t.Helper()
	for i := lo; i < hi; i++ {
		if err := app.Append(eventRow(i)); err != nil {
			t.Fatal(err)
		}
		if (i-lo+1)%batch == 0 {
			if _, err := app.PublishErr(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := app.PublishErr(); err != nil {
		t.Fatal(err)
	}
}

func assertTableMatches(t *testing.T, app *table.Appender, wantRows int) {
	t.Helper()
	s := app.Snapshot()
	if s.NumRows() != wantRows {
		t.Fatalf("recovered %d rows, want %d", s.NumRows(), wantRows)
	}
	tbl := s.Table()
	for i := 0; i < wantRows; i++ {
		want := eventRow(i)
		for j, w := range want {
			if !valuesEqual(w, tbl.Columns[j].Value(i)) {
				t.Fatalf("row %d col %d: want %+v, got %+v", i, j, w, tbl.Columns[j].Value(i))
			}
		}
	}
}

// TestOpenRecoverRoundTrip is the core durability loop: ingest, close,
// reopen, and assert the recovered appender publishes the exact same
// rows and snapshot version.
func TestOpenRecoverRoundTrip(t *testing.T) {
	for _, policy := range []Policy{PolicyAlways, PolicyInterval, PolicyOff} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			m, app := openTracked(t, dir, Options{Fsync: policy})
			ingest(t, app, 0, 500, 64)
			wantVersion := app.Snapshot().Version()
			if err := m.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			m2, rec, err := Open(dir, Options{Fsync: policy})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer m2.Close()
			if len(rec.Appenders) != 1 {
				t.Fatalf("recovered %d tables, want 1", len(rec.Appenders))
			}
			got := rec.Appenders[0]
			if got.Name() != "events" {
				t.Fatalf("recovered table %q", got.Name())
			}
			if v := got.Snapshot().Version(); v != wantVersion {
				t.Fatalf("recovered version %d, want %d", v, wantVersion)
			}
			if rec.RecoveredRows != 500 {
				t.Fatalf("RecoveredRows = %d, want 500", rec.RecoveredRows)
			}
			assertTableMatches(t, got, 500)

			// The recovered appender keeps working: ingest continues and
			// survives another cycle.
			ingest(t, got, 500, 600, 32)
			if err := m2.Close(); err != nil {
				t.Fatal(err)
			}
			m3, rec3, err := Open(dir, Options{Fsync: policy})
			if err != nil {
				t.Fatal(err)
			}
			defer m3.Close()
			assertTableMatches(t, rec3.Appenders[0], 600)
		})
	}
}

// TestRecoverEmptyRegistration covers a table registered with zero rows:
// version 1, no chunks, schema intact after recovery.
func TestRecoverEmptyRegistration(t *testing.T) {
	dir := t.TempDir()
	m, _ := openTracked(t, dir, Options{})
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Appenders) != 1 {
		t.Fatalf("recovered %d tables", len(rec.Appenders))
	}
	s := rec.Appenders[0].Snapshot()
	if s.NumRows() != 0 || s.Version() != 1 {
		t.Fatalf("rows=%d version=%d, want 0/1", s.NumRows(), s.Version())
	}
	names, kinds := s.Schema()
	if len(names) != 3 || names[1] != "kind" || kinds[0] != table.KindInt {
		t.Fatalf("schema lost: %v %v", names, kinds)
	}
}

// TestRecoverPopulatedRegistration covers Register over a table that
// already has rows: the initial chunk rides in the register record.
func TestRecoverPopulatedRegistration(t *testing.T) {
	dir := t.TempDir()
	m, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = rec
	tbl := newEventsTable(t)
	for i := 0; i < 10; i++ {
		tbl.MustAppendRow(eventRow(i)...)
	}
	app := table.NewAppender(tbl)
	if v := app.Snapshot().Version(); v != 1 {
		t.Fatalf("fresh appender version %d", v)
	}
	if err := m.Track(app); err != nil {
		t.Fatal(err)
	}
	ingest(t, app, 10, 20, 5)
	m.Close()

	_, rec2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertTableMatches(t, rec2.Appenders[0], 20)
	if v := rec2.Appenders[0].Snapshot().Version(); v != app.Snapshot().Version() {
		t.Fatalf("version %d != %d", v, app.Snapshot().Version())
	}
}

// TestTornTailEveryOffset is the crash matrix: a valid log is truncated
// at every byte offset inside its final record, and each truncation must
// recover cleanly to exactly the rows durable before that record —
// never an error, never a partial chunk.
func TestTornTailEveryOffset(t *testing.T) {
	dir := t.TempDir()
	m, app := openTracked(t, dir, Options{})
	ingest(t, app, 0, 40, 10) // register + 4 chunk records
	versionBeforeLast := app.Snapshot().Version()
	// One final record whose truncation we sweep.
	ingest(t, app, 40, 50, 10)
	m.Close()

	logs := sortedGens(dir, "wal-", ".log")
	if len(logs) != 1 {
		t.Fatalf("expected 1 log, got %d", len(logs))
	}
	whole, err := os.ReadFile(logPath(dir, logs[0]))
	if err != nil {
		t.Fatal(err)
	}

	// Find the final record's start: walk frames to the last one.
	fr := newFrameReader(newByteReader(whole[len(fileMagic):]), int64(len(fileMagic)))
	lastStart := int64(len(fileMagic))
	for {
		prev := fr.off
		if _, err := fr.next(); err != nil {
			break
		}
		lastStart = prev
	}
	if int(lastStart) >= len(whole) {
		t.Fatalf("bad frame walk: lastStart=%d len=%d", lastStart, len(whole))
	}

	scratch := t.TempDir()
	for cut := int(lastStart); cut < len(whole); cut++ {
		sub := filepath.Join(scratch, "case")
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(sub, "wal-1.log"), whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(sub)
		if err != nil {
			t.Fatalf("cut=%d: recover error: %v", cut, err)
		}
		if len(rec.Appenders) != 1 {
			t.Fatalf("cut=%d: %d tables", cut, len(rec.Appenders))
		}
		s := rec.Appenders[0].Snapshot()
		if s.NumRows() != 40 || s.Version() != versionBeforeLast {
			t.Fatalf("cut=%d: rows=%d version=%d, want 40/%d", cut, s.NumRows(), s.Version(), versionBeforeLast)
		}
		// Truncation exactly at the record boundary leaves a clean log;
		// every cut inside the record must be reported torn.
		if wantTorn := cut > int(lastStart); rec.TornTail != wantTorn {
			t.Fatalf("cut=%d: TornTail=%v, want %v", cut, rec.TornTail, wantTorn)
		}
		// And reopening for append works after truncation repair.
		m2, rec2, err := Open(sub, Options{})
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		ingest(t, rec2.Appenders[0], 40, 45, 5)
		m2.Close()
		rec3, err := Recover(sub)
		if err != nil || rec3.Appenders[0].Snapshot().NumRows() != 45 {
			t.Fatalf("cut=%d: append-after-repair failed: %v", cut, err)
		}
		os.RemoveAll(sub)
	}
}

// TestCorruptTailEveryByte flips each byte of the final record in place
// (same length, bad content) and asserts recovery still lands on the
// last durable version.
func TestCorruptTailEveryByte(t *testing.T) {
	dir := t.TempDir()
	m, app := openTracked(t, dir, Options{})
	ingest(t, app, 0, 30, 10)
	wantVersion := app.Snapshot().Version()
	ingest(t, app, 30, 40, 10)
	m.Close()

	logs := sortedGens(dir, "wal-", ".log")
	whole, err := os.ReadFile(logPath(dir, logs[0]))
	if err != nil {
		t.Fatal(err)
	}
	fr := newFrameReader(newByteReader(whole[len(fileMagic):]), int64(len(fileMagic)))
	lastStart := int64(len(fileMagic))
	for {
		prev := fr.off
		if _, err := fr.next(); err != nil {
			break
		}
		lastStart = prev
	}

	scratch := t.TempDir()
	// Flip a sample of offsets (every byte for small records, strided
	// for big ones) to keep the matrix fast.
	stride := 1
	if len(whole)-int(lastStart) > 512 {
		stride = 7
	}
	for cut := int(lastStart); cut < len(whole); cut += stride {
		sub := filepath.Join(scratch, "case")
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		mut := append([]byte(nil), whole...)
		mut[cut] ^= 0x5a
		if err := os.WriteFile(filepath.Join(sub, "wal-1.log"), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(sub)
		if err != nil {
			t.Fatalf("flip=%d: recover error: %v", cut, err)
		}
		s := rec.Appenders[0].Snapshot()
		if s.NumRows() != 30 || s.Version() != wantVersion {
			t.Fatalf("flip=%d: rows=%d version=%d, want 30/%d", cut, s.NumRows(), s.Version(), wantVersion)
		}
		os.RemoveAll(sub)
	}
}

// TestCheckpointTruncatesLog proves a checkpoint supersedes the log
// prefix: old generations are deleted, recovery uses the checkpoint,
// and the data survives exactly.
func TestCheckpointTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	m, app := openTracked(t, dir, Options{CheckpointBytes: -1})
	ingest(t, app, 0, 300, 50)
	if err := m.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// Old generation gone, checkpoint present.
	if logs := sortedGens(dir, "wal-", ".log"); len(logs) != 1 || logs[0] != 2 {
		t.Fatalf("logs after checkpoint: %v", logs)
	}
	if cks := sortedGens(dir, "ckpt-", ".snap"); len(cks) != 1 || cks[0] != 2 {
		t.Fatalf("checkpoints: %v", cks)
	}
	st := m.Stats()
	if st.Checkpoints != 1 || st.LastCheckpointUnixMilli == 0 || st.Generation != 2 {
		t.Fatalf("stats after checkpoint: %+v", st)
	}
	// More ingest after the checkpoint goes to the new generation.
	ingest(t, app, 300, 400, 50)
	m.Close()

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.CheckpointGen != 2 {
		t.Fatalf("recovery used checkpoint gen %d", rec.CheckpointGen)
	}
	assertTableMatches(t, rec.Appenders[0], 400)
	if v := rec.Appenders[0].Snapshot().Version(); v != app.Snapshot().Version() {
		t.Fatalf("version %d != %d", v, app.Snapshot().Version())
	}
}

// TestCheckpointCrashWindows simulates crashes in each checkpoint
// window by reconstructing the on-disk states they leave behind.
func TestCheckpointCrashWindows(t *testing.T) {
	build := func(t *testing.T) string {
		dir := t.TempDir()
		m, app := openTracked(t, dir, Options{CheckpointBytes: -1})
		ingest(t, app, 0, 100, 25)
		if err := m.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		ingest(t, app, 100, 200, 25)
		m.Close()
		return dir
	}

	t.Run("tmp-left-behind", func(t *testing.T) {
		// Crash mid-checkpoint-write: a .tmp file exists, no rename.
		dir := build(t)
		if err := os.WriteFile(filepath.Join(dir, "ckpt-9.snap.tmp"), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
		m, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		assertTableMatches(t, rec.Appenders[0], 200)
		if _, err := os.Stat(filepath.Join(dir, "ckpt-9.snap.tmp")); !os.IsNotExist(err) {
			t.Fatal("stale tmp not cleaned up")
		}
	})

	t.Run("footerless-checkpoint-ignored", func(t *testing.T) {
		// A checkpoint whose footer never landed must be ignored in
		// favor of the older state it failed to supersede.
		dir := build(t)
		ck, err := os.ReadFile(ckptPath(dir, 2))
		if err != nil {
			t.Fatal(err)
		}
		// Write a NEWER checkpoint that is valid framing but footerless,
		// with its rotated log present (as the crash would leave it).
		if err := os.WriteFile(ckptPath(dir, 3), ck[:len(ck)-9], 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(dir)
		if err != nil {
			t.Fatal(err)
		}
		if rec.CheckpointGen != 2 {
			t.Fatalf("used checkpoint gen %d, want fallback to 2", rec.CheckpointGen)
		}
		assertTableMatches(t, rec.Appenders[0], 200)
	})

	t.Run("stale-generations-ignored", func(t *testing.T) {
		// Crash after rename but before deletion: logs < K remain and
		// must be ignored, not double-replayed.
		dir := t.TempDir()
		m, app := openTracked(t, dir, Options{CheckpointBytes: -1})
		ingest(t, app, 0, 100, 25)
		// Copy the pre-checkpoint log aside, checkpoint, then restore it
		// to simulate the deletion never happening.
		logBytes, err := os.ReadFile(logPath(dir, 1))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(logPath(dir, 1), logBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		ingest(t, app, 100, 150, 25)
		m.Close()
		rec, err := Recover(dir)
		if err != nil {
			t.Fatal(err)
		}
		if rec.CheckpointGen != 2 {
			t.Fatalf("checkpoint gen %d", rec.CheckpointGen)
		}
		assertTableMatches(t, rec.Appenders[0], 150)
	})
}

// TestAutomaticCheckpoint proves the byte threshold fires the
// background checkpointer.
func TestAutomaticCheckpoint(t *testing.T) {
	dir := t.TempDir()
	m, app := openTracked(t, dir, Options{CheckpointBytes: 16 << 10})
	ingest(t, app, 0, 2000, 100)
	deadline := time.Now().Add(5 * time.Second)
	for m.Stats().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no automatic checkpoint within 5s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	m.Close()
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	assertTableMatches(t, rec.Appenders[0], 2000)
}

// TestReplaceTableRecovers covers re-registration: the replacement's
// register record supersedes the old table during replay.
func TestReplaceTableRecovers(t *testing.T) {
	dir := t.TempDir()
	m, app := openTracked(t, dir, Options{})
	ingest(t, app, 0, 50, 10)
	// Replace with a different schema.
	repl := table.MustNew("events", []string{"only"}, []table.Kind{table.KindString})
	app2 := table.NewAppender(repl)
	if err := m.Track(app2); err != nil {
		t.Fatal(err)
	}
	if err := app2.Append([]table.Value{table.Str("fresh")}); err != nil {
		t.Fatal(err)
	}
	if _, err := app2.PublishErr(); err != nil {
		t.Fatal(err)
	}
	// The detached original must no longer reach the log.
	if err := app.Append(eventRow(50)); err != nil {
		t.Fatal(err)
	}
	if _, err := app.PublishErr(); err != nil {
		t.Fatal(err)
	}
	m.Close()

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Appenders) != 1 {
		t.Fatalf("%d tables", len(rec.Appenders))
	}
	s := rec.Appenders[0].Snapshot()
	names, _ := s.Schema()
	if len(names) != 1 || names[0] != "only" || s.NumRows() != 1 {
		t.Fatalf("replacement not recovered: names=%v rows=%d", names, s.NumRows())
	}
}

// TestPublishHookFailureKeepsRowsPending proves the commit-point
// ordering: when the log write fails, nothing is sealed and the rows
// retry on the next publish.
func TestPublishHookFailureKeepsRowsPending(t *testing.T) {
	dir := t.TempDir()
	m, app := openTracked(t, dir, Options{})
	ingest(t, app, 0, 10, 10)
	m.Close() // closed manager: hook now fails

	if err := app.Append(eventRow(10)); err != nil {
		t.Fatal(err)
	}
	if _, err := app.PublishErr(); err == nil {
		t.Fatal("publish after close should fail")
	}
	s := app.Snapshot()
	if s.NumRows() != 10 {
		t.Fatalf("failed publish leaked rows: %d", s.NumRows())
	}
	if app.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", app.Pending())
	}
}

// TestRandomizedOracle drives random multi-table ingest through the
// manager and diffs recovery against the in-memory oracle after every
// reopen cycle.
func TestRandomizedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dir := t.TempDir()
	type oracleTable struct {
		rows [][]table.Value
	}
	oracle := map[string]*oracleTable{}
	names := []string{"ta", "tb", "tc"}

	m, rec, err := Open(dir, Options{CheckpointBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	apps := map[string]*table.Appender{}
	for cycle := 0; cycle < 4; cycle++ {
		for op := 0; op < 200; op++ {
			name := names[rng.Intn(len(names))]
			app := apps[name]
			if app == nil {
				tb := table.MustNew(name, []string{"n", "v"}, []table.Kind{table.KindInt, table.KindFloat})
				app = table.NewAppender(tb)
				if err := m.Track(app); err != nil {
					t.Fatal(err)
				}
				apps[name] = app
				oracle[name] = &oracleTable{}
			}
			batch := 1 + rng.Intn(20)
			for r := 0; r < batch; r++ {
				row := []table.Value{randomValue(rng, table.KindInt, 0.1), randomValue(rng, table.KindFloat, 0.1)}
				if err := app.Append(row); err != nil {
					t.Fatal(err)
				}
				oracle[name].rows = append(oracle[name].rows, row)
			}
			if rng.Intn(3) == 0 {
				if _, err := app.PublishErr(); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Publish all pending before close (unpublished rows are not
		// durable by design — trim the oracle to published state).
		for _, app := range apps {
			if _, err := app.PublishErr(); err != nil {
				t.Fatal(err)
			}
		}
		m.Close()

		m, rec, err = Open(dir, Options{CheckpointBytes: 8 << 10})
		if err != nil {
			t.Fatalf("cycle %d: reopen: %v", cycle, err)
		}
		apps = map[string]*table.Appender{}
		for _, app := range rec.Appenders {
			apps[app.Name()] = app
		}
		for name, want := range oracle {
			app := apps[name]
			if app == nil {
				t.Fatalf("cycle %d: table %q lost", cycle, name)
			}
			s := app.Snapshot()
			if s.NumRows() != len(want.rows) {
				t.Fatalf("cycle %d: table %q: %d rows, want %d", cycle, name, s.NumRows(), len(want.rows))
			}
			tbl := s.Table()
			for i, row := range want.rows {
				for j, w := range row {
					if !valuesEqual(w, tbl.Columns[j].Value(i)) {
						t.Fatalf("cycle %d: table %q row %d col %d: want %+v got %+v", cycle, name, i, j, w, tbl.Columns[j].Value(i))
					}
				}
			}
		}
	}
	m.Close()
}

func newByteReader(b []byte) *bytes.Reader { return bytes.NewReader(b) }
