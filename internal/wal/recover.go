package wal

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"datalab/internal/table"
)

// Recovered reports what boot-time recovery rebuilt.
type Recovered struct {
	// Appenders are the recovered write heads in original registration
	// order, each publishing its exact pre-crash snapshot version.
	Appenders []*table.Appender
	// RecoveredRows is the total row count across recovered tables.
	RecoveredRows int64
	// ReplayDuration is the wall-clock cost of checkpoint load + log
	// replay.
	ReplayDuration time.Duration
	// CheckpointGen is the generation of the checkpoint used (0: none).
	CheckpointGen uint64
	// RecordsApplied counts register/chunk records applied (checkpoint
	// records included); RecordsSkipped counts chunk records dropped as
	// already covered by the checkpoint.
	RecordsApplied int64
	RecordsSkipped int64
	// TornTail reports whether the final log ended in a torn or corrupt
	// record (the expected state after a crash mid-write); recovery
	// stopped cleanly before it.
	TornTail bool
}

// Recover rebuilds the durable catalog state from dir without opening
// it for writing: the newest valid checkpoint, then the log tail,
// stopping cleanly at a torn final record. Read-only — use Open to
// recover and continue appending.
func Recover(dir string) (*Recovered, error) {
	rec, _, err := recoverDir(dir)
	return rec, err
}

// layout describes what recovery found on disk, for Open to decide how
// to continue the log.
type layout struct {
	logGens []uint64
	ckptGen uint64 // newest valid checkpoint generation (0: none)
	tornGen uint64 // generation of the torn final log (0: none)
	tornOff int64  // valid-prefix length of the torn log
}

// replayState accumulates tables as records are applied, mirroring the
// catalog's map + insertion order.
type replayState struct {
	apps    map[string]*table.Appender
	order   []string
	applied int64
	skipped int64
}

func newReplayState() *replayState {
	return &replayState{apps: map[string]*table.Appender{}}
}

// apply folds one record into the state. Replay reproduces the original
// operations: a register record replaces the table (re-registration
// semantics), a chunk record is one append + publish. Chunk versions at
// or below the table's current version are duplicates — a checkpoint
// legitimately overlaps the first log generation it did not delete —
// and are skipped; a version more than one ahead means a missing record
// and is corruption.
func (st *replayState) apply(payload []byte) error {
	if len(payload) == 0 {
		return errShort
	}
	switch payload[0] {
	case recRegister:
		rr, err := decodeRegister(payload[1:])
		if err != nil {
			return err
		}
		key := strings.ToLower(rr.table.Name)
		if _, ok := st.apps[key]; !ok {
			st.order = append(st.order, key)
		}
		st.apps[key] = table.NewAppender(rr.table)
		st.applied++
		return nil
	case recChunk:
		cr, err := decodeChunk(payload[1:])
		if err != nil {
			return err
		}
		app, ok := st.apps[strings.ToLower(cr.name)]
		if !ok {
			return fmt.Errorf("wal: chunk record for unknown table %q", cr.name)
		}
		cur := app.Snapshot().Version()
		if cr.version <= cur {
			st.skipped++
			return nil
		}
		if cr.version != cur+1 {
			return fmt.Errorf("wal: table %q: chunk record version %d after version %d (missing records)", cr.name, cr.version, cur)
		}
		if err := app.AppendTableExact(&table.Table{Name: cr.name, Columns: cr.cols}); err != nil {
			return err
		}
		s, err := app.PublishErr()
		if err != nil {
			return err
		}
		if s.Version() != cr.version {
			return fmt.Errorf("wal: table %q: replay published version %d, record says %d", cr.name, s.Version(), cr.version)
		}
		st.applied++
		return nil
	default:
		return fmt.Errorf("wal: unknown record type %d", payload[0])
	}
}

// recoverDir is the shared engine behind Recover and Open.
func recoverDir(dir string) (*Recovered, layout, error) {
	start := time.Now()
	lay := layout{logGens: sortedGens(dir, "wal-", ".log")}
	ckptGens := sortedGens(dir, "ckpt-", ".snap")

	// Newest checkpoint with an intact footer wins; an invalid one (torn
	// mid-write before the rename barrier existed, or bit rot) falls
	// back to the previous — whose covering logs still exist unless a
	// later checkpoint deleted them, in which case replay below reports
	// the gap as corruption rather than guessing.
	st := newReplayState()
	for i := len(ckptGens) - 1; i >= 0; i-- {
		cs, err := loadCheckpoint(ckptPath(dir, ckptGens[i]))
		if err == nil {
			st = cs
			lay.ckptGen = ckptGens[i]
			break
		}
	}

	for i, g := range lay.logGens {
		if g < lay.ckptGen {
			continue // fully covered by the checkpoint; pending deletion
		}
		final := i == len(lay.logGens)-1
		tornOff, err := replayLog(logPath(dir, g), st, final)
		if err != nil {
			return nil, lay, fmt.Errorf("wal: replay %s: %w", logPath(dir, g), err)
		}
		if tornOff >= 0 {
			lay.tornGen = g
			lay.tornOff = tornOff
		}
	}

	rec := &Recovered{
		ReplayDuration: time.Since(start),
		CheckpointGen:  lay.ckptGen,
		RecordsApplied: st.applied,
		RecordsSkipped: st.skipped,
		TornTail:       lay.tornGen != 0,
	}
	for _, k := range st.order {
		app := st.apps[k]
		rec.Appenders = append(rec.Appenders, app)
		rec.RecoveredRows += int64(app.Snapshot().NumRows())
	}
	return rec, lay, nil
}

// loadCheckpoint replays a checkpoint file into a fresh state. Any
// defect — bad magic, torn frame, missing footer, undecodable record —
// invalidates the whole checkpoint (it is written atomically, so a
// defect means it never finished or has rotted).
func loadCheckpoint(path string) (*replayState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := readMagic(f); err != nil {
		return nil, err
	}
	st := newReplayState()
	fr := newFrameReader(f, int64(len(fileMagic)))
	for {
		payload, err := fr.next()
		if err == io.EOF {
			return nil, fmt.Errorf("wal: checkpoint %s: missing footer", path)
		}
		if err != nil {
			return nil, fmt.Errorf("wal: checkpoint %s: %w", path, err)
		}
		if payload[0] == recCheckpointEnd {
			d := recordDecoder{b: payload[1:]}
			n, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			if int(n) != len(st.order) {
				return nil, fmt.Errorf("wal: checkpoint %s: footer says %d tables, replayed %d", path, n, len(st.order))
			}
			return st, nil
		}
		if err := st.apply(payload); err != nil {
			return nil, fmt.Errorf("wal: checkpoint %s: %w", path, err)
		}
	}
}

// replayLog folds one log generation into st. In the final log a torn
// or corrupt trailing record is the expected crash artifact: replay
// stops cleanly and returns the valid-prefix length so Open can
// truncate it. Anywhere else the same defect is corruption (the log was
// rotated away from, so it was complete when written).
func replayLog(path string, st *replayState, final bool) (tornOff int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return -1, err
	}
	defer f.Close()
	if err := readMagic(f); err != nil {
		if final {
			return 0, nil // header never fully landed; Open recreates the file
		}
		return -1, err
	}
	fr := newFrameReader(f, int64(len(fileMagic)))
	for {
		payload, err := fr.next()
		if err == io.EOF {
			return -1, nil
		}
		if err != nil { // errTorn
			if final {
				return fr.off, nil
			}
			return -1, fmt.Errorf("torn record mid-log at offset %d", fr.off)
		}
		// An undecodable body behind a valid CRC is corruption even in
		// the final record position: the CRC proves these exact bytes
		// were written, so the state is unknowable, not merely torn.
		if err := st.apply(payload); err != nil {
			return -1, err
		}
	}
}

func readMagic(f *os.File) error {
	var hdr [len(fileMagic)]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return fmt.Errorf("wal: short magic: %w", err)
	}
	if string(hdr[:]) != fileMagic {
		return fmt.Errorf("wal: bad magic %q", hdr)
	}
	return nil
}
