package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"datalab/internal/table"
)

// Policy selects when log writes reach stable storage.
type Policy int

const (
	// PolicyAlways fsyncs before every publish returns: a chunk visible
	// to any reader is durable. The zero value, because it is the only
	// policy under which the crash-recovery guarantee is unconditional.
	PolicyAlways Policy = iota
	// PolicyInterval writes every record to the OS immediately but
	// fsyncs on a timer (FsyncInterval). A process crash loses nothing;
	// an OS crash loses at most the last interval.
	PolicyInterval
	// PolicyOff never fsyncs (the OS flushes when it pleases). A
	// process crash still loses nothing — records are written to the
	// page cache per publish — but an OS crash can lose any unsynced
	// suffix. Recovery still stops cleanly at the torn tail.
	PolicyOff
)

// String returns the flag spelling of the policy.
func (p Policy) String() string {
	switch p {
	case PolicyAlways:
		return "always"
	case PolicyInterval:
		return "interval"
	case PolicyOff:
		return "off"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy parses the flag spelling: "always", "interval", or "off".
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always", "":
		return PolicyAlways, nil
	case "interval":
		return PolicyInterval, nil
	case "off":
		return PolicyOff, nil
	}
	return PolicyAlways, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or off)", s)
}

// Options configures a durable catalog.
type Options struct {
	// Fsync is the durability policy. The zero value is PolicyAlways.
	Fsync Policy
	// FsyncInterval is the timer period under PolicyInterval.
	// Defaults to 100ms.
	FsyncInterval time.Duration
	// CheckpointBytes triggers an automatic checkpoint after this many
	// log bytes since the last one. 0 means the 64 MiB default;
	// negative disables automatic checkpoints (manual Checkpoint still
	// works).
	CheckpointBytes int64
}

func (o Options) withDefaults() Options {
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if o.CheckpointBytes == 0 {
		o.CheckpointBytes = 64 << 20
	}
	return o
}

// Stats is a point-in-time view of the durability layer, surfaced by
// /v1/stats on the server.
type Stats struct {
	// WALBytes is the cumulative number of log bytes written, including
	// the prefix recovered at open. Checkpoint truncation does not
	// decrease it (it is a counter, not a gauge).
	WALBytes int64
	// Generation is the current log file generation.
	Generation uint64
	// Checkpoints counts checkpoints completed since open.
	Checkpoints int64
	// LastCheckpointUnixMilli is the wall-clock completion time of the
	// newest checkpoint (0 before the first).
	LastCheckpointUnixMilli int64
	// SnapshotVersion is the highest published snapshot version across
	// tracked tables — the value recovery is expected to reproduce.
	SnapshotVersion uint64
}

var errClosed = errors.New("wal: manager closed")

// Manager owns one durable catalog directory: the open log generation,
// the tracked table write heads, the fsync loop, and the checkpointer.
// All record writes funnel through one mutex, matching the storage
// layer's single-writer-per-table design.
type Manager struct {
	dir  string
	opts Options

	mu        sync.Mutex
	f         *os.File
	fw        *frameWriter
	gen       uint64
	walBytes  int64
	sinceCkpt int64
	dirty     bool // written since last fsync (interval policy)
	closed    bool
	apps      map[string]*table.Appender
	order     []string
	enc       []byte // record staging buffer, reused under mu

	// ckptMu serializes checkpoints; never held together with mu except
	// for the brief rotation swap (ckptMu -> mu, and the publish path
	// never takes ckptMu, so the order is acyclic).
	ckptMu        sync.Mutex
	checkpoints   atomic.Int64
	lastCkptMilli atomic.Int64

	ckptCh chan struct{}
	stopCh chan struct{}
	wg     sync.WaitGroup
}

func logPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%d.log", gen))
}

func ckptPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%d.snap", gen))
}

// createLogFile creates a fresh log generation containing only the file
// magic, durably: the contents and the directory entry are both synced
// before it returns.
func createLogFile(dir string, gen uint64) (*os.File, error) {
	f, err := os.OpenFile(logPath(dir, gen), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.WriteString(fileMagic); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Open recovers the directory's durable state and opens it for writing:
// the newest valid checkpoint is loaded, the log tail replayed (a torn
// final record is truncated away), publish hooks are attached to every
// recovered appender, and the background fsync/checkpoint loops start.
// An empty or missing directory opens as an empty catalog.
func Open(dir string, opts Options) (*Manager, *Recovered, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	rec, lay, err := recoverDir(dir)
	if err != nil {
		return nil, nil, err
	}
	// Drop a checkpoint temp file left by a crash mid-checkpoint: the
	// rename never happened, so it holds nothing recovery used.
	if tmps, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.snap.tmp")); len(tmps) > 0 {
		for _, t := range tmps {
			os.Remove(t)
		}
	}

	var f *os.File
	var gen uint64
	switch {
	case len(lay.logGens) == 0:
		// Fresh directory (or checkpoint-only): start the generation
		// after the checkpoint so its records sort later.
		gen = lay.ckptGen + 1
		f, err = createLogFile(dir, gen)
	case lay.tornGen == lay.logGens[len(lay.logGens)-1] && lay.tornOff < int64(len(fileMagic)):
		// The newest log died before even its magic hit disk: recreate
		// it in place rather than appending to garbage.
		gen = lay.logGens[len(lay.logGens)-1]
		f, err = createLogFile(dir, gen)
	default:
		gen = lay.logGens[len(lay.logGens)-1]
		if lay.tornGen == gen {
			// Truncate the torn tail so the file is exactly its valid
			// record prefix before appending after it.
			if err = os.Truncate(logPath(dir, gen), lay.tornOff); err != nil {
				return nil, nil, fmt.Errorf("wal: truncate torn tail of %s: %w", logPath(dir, gen), err)
			}
		}
		f, err = os.OpenFile(logPath(dir, gen), os.O_WRONLY|os.O_APPEND, 0o644)
	}
	if err != nil {
		return nil, nil, err
	}

	var walBytes int64
	for _, g := range lay.logGens {
		if fi, err := os.Stat(logPath(dir, g)); err == nil {
			walBytes += fi.Size()
		}
	}
	if walBytes == 0 {
		walBytes = int64(len(fileMagic))
	}

	m := &Manager{
		dir:      dir,
		opts:     opts,
		f:        f,
		fw:       newFrameWriter(f),
		gen:      gen,
		walBytes: walBytes,
		apps:     map[string]*table.Appender{},
		ckptCh:   make(chan struct{}, 1),
		stopCh:   make(chan struct{}),
	}
	for _, app := range rec.Appenders {
		key := strings.ToLower(app.Name())
		m.apps[key] = app
		m.order = append(m.order, key)
		app.SetPublishHook(m.publishHook)
	}
	m.wg.Add(1)
	go m.checkpointLoop()
	if opts.Fsync == PolicyInterval {
		m.wg.Add(1)
		go m.fsyncLoop()
	}
	return m, rec, nil
}

// Track makes a newly registered table durable: it journals a
// registration record (carrying the adopted initial contents) and
// attaches the publish hook so every subsequent chunk seal is logged.
// Meant to be installed as the catalog's RegisterHook — the catalog
// calls it before the table becomes visible, so under PolicyAlways the
// registration is durable before any query can touch the table.
func (m *Manager) Track(app *table.Appender) error {
	key := strings.ToLower(app.Name())
	m.mu.Lock()
	prev := m.apps[key]
	m.mu.Unlock()
	if prev != nil && prev != app {
		// Replacing a table: detach the old write head's hook first.
		// SetPublishHook waits out any in-flight publish, so no record
		// from the stale appender can land after the new registration
		// record — replay order stays consistent with catalog order.
		prev.SetPublishHook(nil)
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return errClosed
	}
	payload, err := encodeRegister(m.enc[:0], app.Snapshot().Table())
	if err != nil {
		m.mu.Unlock()
		return err
	}
	m.enc = payload[:0]
	if err := m.appendLocked(payload); err != nil {
		m.mu.Unlock()
		return err
	}
	if _, ok := m.apps[key]; !ok {
		m.order = append(m.order, key)
	}
	m.apps[key] = app
	m.mu.Unlock()

	app.SetPublishHook(m.publishHook)
	return nil
}

// publishHook is the table.PublishHook installed on every tracked
// appender: it journals the chunk about to be sealed and, under
// PolicyAlways, fsyncs before returning — the write-ahead commit point.
func (m *Manager) publishHook(name string, version uint64, ck *table.Chunk) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errClosed
	}
	payload, err := encodeChunk(m.enc[:0], name, version, ck)
	if err != nil {
		return err
	}
	m.enc = payload[:0]
	return m.appendLocked(payload)
}

// appendLocked frames, writes, and (per policy) syncs one record.
func (m *Manager) appendLocked(payload []byte) error {
	n, err := m.fw.writeFrame(payload)
	if err != nil {
		return err
	}
	// Flush to the OS per record regardless of policy: a process crash
	// (without an OS crash) then loses nothing under any policy.
	if err := m.fw.flush(); err != nil {
		return err
	}
	if m.opts.Fsync == PolicyAlways {
		if err := m.f.Sync(); err != nil {
			return err
		}
	} else {
		m.dirty = true
	}
	m.walBytes += n
	m.sinceCkpt += n
	if m.opts.CheckpointBytes > 0 && m.sinceCkpt >= m.opts.CheckpointBytes {
		select {
		case m.ckptCh <- struct{}{}:
		default: // a checkpoint is already pending
		}
	}
	return nil
}

func (m *Manager) fsyncLoop() {
	defer m.wg.Done()
	t := time.NewTicker(m.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-m.stopCh:
			return
		case <-t.C:
			m.mu.Lock()
			if m.dirty && !m.closed {
				if err := m.f.Sync(); err == nil {
					m.dirty = false
				}
			}
			m.mu.Unlock()
		}
	}
}

func (m *Manager) checkpointLoop() {
	defer m.wg.Done()
	for {
		select {
		case <-m.stopCh:
			return
		case <-m.ckptCh:
			// Best effort: a failed automatic checkpoint leaves the log
			// growing; the next byte-threshold crossing retries it.
			m.Checkpoint() //nolint:errcheck
		}
	}
}

// Checkpoint serializes the whole catalog into a compact snapshot file
// and deletes the log generations it supersedes, bounding replay time.
//
// Sequence (crash-safe at every step): rotate to a fresh log generation
// K; barrier every appender so any record already written to the old
// logs is reflected in its snapshot; serialize those snapshots to
// ckpt-K.snap.tmp; fsync and rename into place; delete logs and
// checkpoints of generations < K. A crash before the rename leaves the
// old checkpoint + full logs authoritative; a crash after it leaves
// stale files that recovery ignores and the next checkpoint deletes.
func (m *Manager) Checkpoint() error {
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return errClosed
	}
	nextGen := m.gen + 1
	m.mu.Unlock()

	nf, err := createLogFile(m.dir, nextGen)
	if err != nil {
		return err
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		nf.Close()
		os.Remove(logPath(m.dir, nextGen))
		return errClosed
	}
	oldF, oldFw := m.f, m.fw
	m.f, m.fw = nf, newFrameWriter(nf)
	m.gen = nextGen
	m.sinceCkpt = 0
	m.walBytes += int64(len(fileMagic))
	m.dirty = false
	apps := make([]*table.Appender, 0, len(m.order))
	for _, k := range m.order {
		apps = append(apps, m.apps[k])
	}
	m.mu.Unlock()

	// The old generation takes no further writes; flush whatever the
	// buffered writer still holds so the old logs stay a complete record
	// stream in case this checkpoint fails and they remain authoritative.
	oldFw.flush() //nolint:errcheck // PolicyAlways already flushed per record; other policies tolerate loss
	oldF.Close()

	// Barrier, then capture: any chunk whose record went to the old logs
	// was sealed under the appender mutex, so after the barrier it is
	// visible in the snapshot — the checkpoint fully covers the logs it
	// is about to delete.
	snaps := make([]*table.Snapshot, len(apps))
	for i, a := range apps {
		a.Barrier()
		snaps[i] = a.Snapshot()
	}

	if err := writeCheckpoint(m.dir, nextGen, snaps); err != nil {
		return err
	}

	// Delete superseded generations. Failures here are cosmetic —
	// recovery ignores anything older than the newest valid checkpoint.
	for _, p := range staleFiles(m.dir, nextGen) {
		os.Remove(p)
	}

	m.checkpoints.Add(1)
	m.lastCkptMilli.Store(time.Now().UnixMilli())
	return nil
}

// writeCheckpoint serializes the captured snapshots as a register +
// chunk record stream, footer-terminated, and renames it into place.
func writeCheckpoint(dir string, gen uint64, snaps []*table.Snapshot) error {
	tmp := ckptPath(dir, gen) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.WriteString(fileMagic); err != nil {
		return cleanup(err)
	}
	fw := newFrameWriter(f)
	var buf []byte
	for _, s := range snaps {
		if buf, err = writeSnapshotRecords(fw, buf, s); err != nil {
			return cleanup(err)
		}
	}
	footer := append(buf[:0], recCheckpointEnd)
	footer = appendUvarint(footer, uint64(len(snaps)))
	if _, err := fw.writeFrame(footer); err != nil {
		return cleanup(err)
	}
	if err := fw.flush(); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, ckptPath(dir, gen)); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// writeSnapshotRecords emits one table's checkpoint records: a register
// record with the initial contents, then one chunk record per remaining
// sealed chunk, versioned exactly as the original publishes were. The
// version arithmetic inverts the Appender's: registration publishes
// version 1 (sealing a chunk only when the adopted table had rows), and
// each later chunk is one publish, so version == chunks means the first
// chunk belongs to the registration and version == chunks+1 means the
// table was registered empty.
func writeSnapshotRecords(fw *frameWriter, buf []byte, s *table.Snapshot) ([]byte, error) {
	nchunks := uint64(s.NumChunks())
	v := s.Version()
	var firstInRegister bool
	switch {
	case nchunks == v:
		firstInRegister = true
	case nchunks == v-1:
		firstInRegister = false
	default:
		return buf, fmt.Errorf("wal: checkpoint %q: %d chunks inconsistent with version %d", s.Name(), nchunks, v)
	}

	initial := &table.Table{Name: s.Name()}
	if firstInRegister {
		ck := s.Chunk(0)
		initial.Columns = make([]table.Column, ck.NumCols())
		for i := range initial.Columns {
			initial.Columns[i] = *ck.Column(i)
		}
	} else {
		names, kinds := s.Schema()
		initial.Columns = make([]table.Column, len(names))
		for i := range initial.Columns {
			initial.Columns[i] = table.NewColumn(names[i], kinds[i])
		}
	}
	payload, err := encodeRegister(buf[:0], initial)
	if err != nil {
		return buf, err
	}
	if _, err := fw.writeFrame(payload); err != nil {
		return payload[:0], err
	}

	start := 0
	version := uint64(2)
	if firstInRegister {
		start = 1
	}
	for i := start; i < int(nchunks); i++ {
		payload, err = encodeChunk(payload[:0], s.Name(), version, s.Chunk(i))
		if err != nil {
			return payload[:0], err
		}
		if _, err := fw.writeFrame(payload); err != nil {
			return payload[:0], err
		}
		version++
	}
	return payload[:0], nil
}

// staleFiles lists log and checkpoint files of generations older than
// keep.
func staleFiles(dir string, keep uint64) []string {
	var out []string
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	for _, e := range ents {
		var g uint64
		switch {
		case parseGen(e.Name(), "wal-", ".log", &g),
			parseGen(e.Name(), "ckpt-", ".snap", &g):
			if g < keep {
				out = append(out, filepath.Join(dir, e.Name()))
			}
		}
	}
	return out
}

func parseGen(name, prefix, suffix string, out *uint64) bool {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if mid == "" {
		return false
	}
	var g uint64
	for _, c := range mid {
		if c < '0' || c > '9' {
			return false
		}
		g = g*10 + uint64(c-'0')
	}
	*out = g
	return true
}

func sortedGens(dir, prefix, suffix string) []uint64 {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var gens []uint64
	for _, e := range ents {
		var g uint64
		if parseGen(e.Name(), prefix, suffix, &g) {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens
}

// Stats returns a point-in-time view of the durability counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	s := Stats{WALBytes: m.walBytes, Generation: m.gen}
	for _, a := range m.apps {
		if v := a.Snapshot().Version(); v > s.SnapshotVersion {
			s.SnapshotVersion = v
		}
	}
	m.mu.Unlock()
	s.Checkpoints = m.checkpoints.Load()
	s.LastCheckpointUnixMilli = m.lastCkptMilli.Load()
	return s
}

// Sync forces an fsync of the current log generation, regardless of
// policy.
func (m *Manager) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errClosed
	}
	if err := m.fw.flush(); err != nil {
		return err
	}
	if err := m.f.Sync(); err != nil {
		return err
	}
	m.dirty = false
	return nil
}

// Close flushes and syncs the log, stops the background loops, and
// detaches nothing: publishes on still-referenced appenders fail with
// an error rather than silently losing durability.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	close(m.stopCh)
	err1 := m.fw.flush()
	err2 := m.f.Sync()
	err3 := m.f.Close()
	m.mu.Unlock()
	m.wg.Wait()
	return errors.Join(err1, err2, err3)
}
