package wal

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"datalab/internal/table"
)

// randomValue draws a value of the given kind (or NULL with probability
// nullP). Floats include exact-bit extremes; strings include empties and
// multibyte runes; times carry non-zero nanoseconds.
func randomValue(rng *rand.Rand, kind table.Kind, nullP float64) table.Value {
	if rng.Float64() < nullP {
		return table.Null()
	}
	switch kind {
	case table.KindInt:
		switch rng.Intn(4) {
		case 0:
			return table.Int(math.MinInt64)
		case 1:
			return table.Int(math.MaxInt64)
		default:
			return table.Int(rng.Int63() - rng.Int63())
		}
	case table.KindFloat:
		switch rng.Intn(5) {
		case 0:
			return table.Float(math.Inf(1))
		case 1:
			return table.Float(math.Inf(-1))
		case 2:
			return table.Float(math.Copysign(0, -1))
		default:
			return table.Float(rng.NormFloat64() * 1e6)
		}
	case table.KindString:
		switch rng.Intn(4) {
		case 0:
			return table.Str("")
		case 1:
			return table.Str("héllo wörld — " + strings.Repeat("δ", rng.Intn(8)))
		default:
			b := make([]byte, rng.Intn(24))
			for i := range b {
				b[i] = byte('a' + rng.Intn(26))
			}
			return table.Str(string(b))
		}
	case table.KindBool:
		return table.Bool(rng.Intn(2) == 0)
	case table.KindTime:
		sec := rng.Int63n(4e9) - 2e9
		return table.Time(time.Unix(sec, rng.Int63n(1e9)).UTC())
	default:
		return table.Null()
	}
}

var allKinds = []table.Kind{table.KindInt, table.KindFloat, table.KindString, table.KindBool, table.KindTime}

// randomColumn builds a column of n cells. With mixP probability each
// cell draws a value of a random kind instead of the declared one,
// degrading the column to boxed storage exactly as live ingest would.
func randomColumn(rng *rand.Rand, name string, n int, mixP float64) table.Column {
	kind := allKinds[rng.Intn(len(allKinds))]
	col := table.NewColumn(name, kind)
	for i := 0; i < n; i++ {
		k := kind
		if rng.Float64() < mixP {
			k = allKinds[rng.Intn(len(allKinds))]
		}
		col.Append(randomValue(rng, k, 0.15))
	}
	return col
}

func valuesEqual(a, b table.Value) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case table.KindNull:
		return true
	case table.KindInt:
		return a.I == b.I
	case table.KindFloat:
		return math.Float64bits(a.F) == math.Float64bits(b.F)
	case table.KindString:
		return a.S == b.S
	case table.KindBool:
		return a.B == b.B
	case table.KindTime:
		return a.T.Equal(b.T) && a.T.Nanosecond() == b.T.Nanosecond()
	}
	return false
}

func assertColumnsEqual(t *testing.T, want, got *table.Column) {
	t.Helper()
	if want.Name != got.Name {
		t.Fatalf("column name: want %q, got %q", want.Name, got.Name)
	}
	if want.Kind != got.Kind {
		t.Fatalf("column %q kind: want %v, got %v", want.Name, want.Kind, got.Kind)
	}
	if want.Len() != got.Len() {
		t.Fatalf("column %q length: want %d, got %d", want.Name, want.Len(), got.Len())
	}
	if want.IsTyped() != got.IsTyped() {
		t.Fatalf("column %q storage: want typed=%v, got typed=%v", want.Name, want.IsTyped(), got.IsTyped())
	}
	for i := 0; i < want.Len(); i++ {
		if !valuesEqual(want.Value(i), got.Value(i)) {
			t.Fatalf("column %q row %d: want %+v, got %+v", want.Name, i, want.Value(i), got.Value(i))
		}
	}
}

// TestColumnRoundTrip proves the codec reproduces exact column storage —
// values, nulls, NaN/±0 bit patterns, and the typed/boxed storage class
// itself — across many random columns.
func TestColumnRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		mixP := 0.0
		if trial%3 == 0 {
			mixP = 0.2 // force boxed degradation on a third of trials
		}
		col := randomColumn(rng, "c", rng.Intn(64), mixP)
		b, err := appendColumn(nil, &col)
		if err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		d := recordDecoder{b: b}
		got, err := d.column()
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if len(d.b) != 0 {
			t.Fatalf("trial %d: %d bytes left after decode", trial, len(d.b))
		}
		assertColumnsEqual(t, &col, &got)
	}
}

// TestColumnRoundTripNaN pins the one float case multiset equality
// can't: NaN payload bits survive the trip.
func TestColumnRoundTripNaN(t *testing.T) {
	weirdNaN := math.Float64frombits(0x7ff8000000000abc)
	col := table.ColumnFromFloats("f", []float64{math.NaN(), weirdNaN, 1.5}, nil)
	b, err := appendColumn(nil, &col)
	if err != nil {
		t.Fatal(err)
	}
	d := recordDecoder{b: b}
	got, err := d.column()
	if err != nil {
		t.Fatal(err)
	}
	vals, _, ok := got.Floats()
	if !ok {
		t.Fatal("decoded column not typed float")
	}
	for i, want := range []float64{math.NaN(), weirdNaN, 1.5} {
		if math.Float64bits(vals[i]) != math.Float64bits(want) {
			t.Fatalf("row %d: bits %x != %x", i, math.Float64bits(vals[i]), math.Float64bits(want))
		}
	}
}

// TestRegisterRecordRoundTrip round-trips full tables through the
// register record codec.
func TestRegisterRecordRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		ncols := 1 + rng.Intn(5)
		nrows := rng.Intn(40)
		cols := make([]table.Column, ncols)
		for i := range cols {
			cols[i] = randomColumn(rng, string(rune('a'+i)), nrows, 0.1)
		}
		src := &table.Table{Name: "t", Columns: cols}
		payload, err := encodeRegister(nil, src)
		if err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		if payload[0] != recRegister {
			t.Fatalf("trial %d: record type %d", trial, payload[0])
		}
		rr, err := decodeRegister(payload[1:])
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if rr.table.Name != "t" || len(rr.table.Columns) != ncols {
			t.Fatalf("trial %d: got table %q with %d columns", trial, rr.table.Name, len(rr.table.Columns))
		}
		for i := range cols {
			assertColumnsEqual(t, &cols[i], &rr.table.Columns[i])
		}
	}
}

// TestChunkRecordRoundTrip round-trips chunk records via a real
// Appender, exercising the publish-hook encoding path end to end.
func TestChunkRecordRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tbl := table.MustNew("t", []string{"i", "s"}, []table.Kind{table.KindInt, table.KindString})
	app := table.NewAppender(tbl)
	var captured []byte
	app.SetPublishHook(func(name string, version uint64, ck *table.Chunk) error {
		b, err := encodeChunk(nil, name, version, ck)
		captured = b
		return err
	})
	for i := 0; i < 50; i++ {
		if err := app.Append([]table.Value{table.Int(rng.Int63()), table.Str("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := app.PublishErr(); err != nil {
		t.Fatal(err)
	}
	if captured == nil || captured[0] != recChunk {
		t.Fatalf("hook did not capture a chunk record")
	}
	cr, err := decodeChunk(captured[1:])
	if err != nil {
		t.Fatal(err)
	}
	if cr.name != "t" || cr.version != 2 || len(cr.cols) != 2 || cr.cols[0].Len() != 50 {
		t.Fatalf("decoded chunk: name=%q version=%d cols=%d rows=%d", cr.name, cr.version, len(cr.cols), cr.cols[0].Len())
	}
	want := app.Snapshot().Chunk(app.Snapshot().NumChunks() - 1)
	for i := 0; i < want.NumCols(); i++ {
		assertColumnsEqual(t, want.Column(i), &cr.cols[i])
	}
}

// TestFrameRejectsCorruption flips every byte of a framed record in
// turn and asserts the reader reports errTorn each time (CRC or length
// guard), never a bogus success.
func TestFrameRejectsCorruption(t *testing.T) {
	var sb strings.Builder
	fw := newFrameWriter(&sb)
	if _, err := fw.writeFrame([]byte{recChunk, 1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	if err := fw.flush(); err != nil {
		t.Fatal(err)
	}
	clean := sb.String()
	for i := 0; i < len(clean); i++ {
		mut := []byte(clean)
		mut[i] ^= 0x40
		fr := newFrameReader(strings.NewReader(string(mut)), 0)
		payload, err := fr.next()
		if err == nil && string(payload) == clean[8:] {
			t.Fatalf("byte %d: corruption went undetected", i)
		}
	}
}
