// Package wal is the durability layer for the ingest path: a per-catalog
// write-ahead log plus chunk checkpoints and boot-time recovery.
//
// The storage layer above (internal/table) already has the shape of a
// log — every Publish seals one immutable chunk — so the WAL simply
// journals those seals: a registration record when a table is adopted,
// one chunk record per published chunk. Records are framed with a length
// prefix and a CRC32C over the payload, so recovery can replay a log
// tail and stop cleanly at the first torn or corrupt frame. Checkpoints
// serialize the whole catalog as the same record stream into a compact
// snapshot file, bounding replay time and letting old log generations be
// deleted.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"

	"datalab/internal/table"
)

// File layout. Both log files (wal-<gen>.log) and checkpoint files
// (ckpt-<gen>.snap) share one format: an 8-byte magic header followed by
// framed records. A frame is
//
//	uint32 LE payload length | uint32 LE CRC32C(payload) | payload
//
// and a payload is a one-byte record type followed by the type-specific
// body. Checkpoint files end with a recCheckpointEnd footer record; a
// checkpoint without the footer was torn mid-write and is ignored by
// recovery.
const (
	fileMagic = "DLWAL001"

	// maxRecord bounds a single frame payload (1 GiB). A length prefix
	// beyond it is treated as corruption, not an allocation request.
	maxRecord = 1 << 30
)

// Record types.
const (
	// recRegister journals a table registration: name, schema, and the
	// initial contents adopted by table.NewAppender (possibly zero rows).
	recRegister = byte(1)
	// recChunk journals one published chunk: table name, the snapshot
	// version the publish created, and the chunk's columns.
	recChunk = byte(2)
	// recCheckpointEnd is the checkpoint footer: its presence proves the
	// checkpoint file was written to completion before the rename.
	recCheckpointEnd = byte(3)
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errTorn marks a frame that ends early or fails its CRC — the expected
// state of the final record after a crash mid-write. Recovery treats it
// as a clean end of log; anywhere else it is corruption.
var errTorn = errors.New("wal: torn record")

// --- frame writer ---

type frameWriter struct {
	w *bufio.Writer
}

func newFrameWriter(w io.Writer) *frameWriter {
	return &frameWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

// writeFrame frames and buffers one payload; the caller flushes. It
// returns the framed size (header + payload).
func (fw *frameWriter) writeFrame(payload []byte) (int64, error) {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := fw.w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := fw.w.Write(payload); err != nil {
		return 0, err
	}
	return int64(8 + len(payload)), nil
}

func (fw *frameWriter) flush() error { return fw.w.Flush() }

// --- frame reader ---

// frameReader walks the framed records of one file, tracking the byte
// offset of the first frame that failed to decode so recovery can
// truncate a torn tail before reopening the log for append.
type frameReader struct {
	r   *bufio.Reader
	off int64 // offset of the next unread frame
}

func newFrameReader(r io.Reader, headerLen int64) *frameReader {
	return &frameReader{r: bufio.NewReaderSize(r, 1<<16), off: headerLen}
}

// next returns the next record payload. io.EOF means a clean end of
// file; errTorn means the remaining bytes do not form a whole valid
// frame (reader.off still points at the torn frame's start).
func (fr *frameReader) next() ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, errTorn // partial header
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxRecord {
		return nil, errTorn
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return nil, errTorn // frame cut short
	}
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, errTorn
	}
	fr.off += int64(8 + n)
	return payload, nil
}

// --- record encoding ---

// A record body is built with the primitive appenders below: uvarint
// lengths/counts, raw bytes for strings, fixed-width little-endian for
// numeric cells, bitmaps for bools and null masks.

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendString(b []byte, s string) []byte  { return append(appendUvarint(b, uint64(len(s))), s...) }
func appendUint64(b []byte, v uint64) []byte  { return binary.LittleEndian.AppendUint64(b, v) }
func appendBitmap(b []byte, bits []bool) []byte {
	nb := (len(bits) + 7) / 8
	start := len(b)
	b = append(b, make([]byte, nb)...)
	for i, set := range bits {
		if set {
			b[start+i/8] |= 1 << (i % 8)
		}
	}
	return b
}

type recordDecoder struct {
	b []byte
}

var errShort = errors.New("wal: record body truncated")

func (d *recordDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		return 0, errShort
	}
	d.b = d.b[n:]
	return v, nil
}

func (d *recordDecoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if uint64(len(d.b)) < n {
		return "", errShort
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s, nil
}

func (d *recordDecoder) byte() (byte, error) {
	if len(d.b) < 1 {
		return 0, errShort
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v, nil
}

func (d *recordDecoder) uint64() (uint64, error) {
	if len(d.b) < 8 {
		return 0, errShort
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v, nil
}

func (d *recordDecoder) bitmap(n int) ([]bool, error) {
	nb := (n + 7) / 8
	if len(d.b) < nb {
		return nil, errShort
	}
	bits := make([]bool, n)
	for i := range bits {
		bits[i] = d.b[i/8]&(1<<(i%8)) != 0
	}
	d.b = d.b[nb:]
	return bits, nil
}

// --- column encoding ---

// Column storage markers: typed columns serialize their slab directly;
// columns degraded to boxed storage serialize cell-at-a-time with a
// per-cell kind, so mixed-kind columns survive the round trip exactly.
const (
	storageTyped = byte(1)
	storageBoxed = byte(0)
)

// appendColumn serializes one column view: name, declared kind, length,
// storage marker, then the payload.
//
// Typed payloads are a null bitmap followed by the value slab (ints and
// float bit patterns fixed 8-byte LE, strings uvarint-length-prefixed,
// bools a bitmap, times int64 unix seconds + uvarint nanos per cell;
// KindNull typed columns have no slab). Boxed payloads carry a kind byte
// plus scalar payload per cell, null cells as kind 0.
func appendColumn(b []byte, c *table.Column) ([]byte, error) {
	b = appendString(b, c.Name)
	b = append(b, byte(c.Kind))
	n := c.Len()
	b = appendUvarint(b, uint64(n))
	if !c.IsTyped() {
		b = append(b, storageBoxed)
		for i := 0; i < n; i++ {
			var err error
			b, err = appendCell(b, c.Value(i))
			if err != nil {
				return nil, err
			}
		}
		return b, nil
	}
	b = append(b, storageTyped)
	switch c.Kind {
	case table.KindInt:
		vals, nulls, _ := c.Ints()
		b = appendBitmap(b, nulls)
		for _, v := range vals {
			b = appendUint64(b, uint64(v))
		}
	case table.KindFloat:
		vals, nulls, _ := c.Floats()
		b = appendBitmap(b, nulls)
		for _, v := range vals {
			b = appendUint64(b, math.Float64bits(v))
		}
	case table.KindString:
		vals, nulls, _ := c.Strings()
		b = appendBitmap(b, nulls)
		for _, v := range vals {
			b = appendString(b, v)
		}
	case table.KindBool:
		vals, nulls, _ := c.Bools()
		b = appendBitmap(b, nulls)
		b = appendBitmap(b, vals)
	case table.KindTime:
		vals, nulls, _ := c.Times()
		b = appendBitmap(b, nulls)
		for _, v := range vals {
			b = appendTime(b, v)
		}
	case table.KindNull:
		// A typed null column is nothing but its length.
	default:
		return nil, fmt.Errorf("wal: encode column %q: unknown kind %d", c.Name, c.Kind)
	}
	return b, nil
}

// appendTime serializes a timestamp as unix seconds + nanoseconds. The
// wall-clock instant survives exactly (decoded in UTC); the monotonic
// reading and the location name do not — see docs/DURABILITY.md.
func appendTime(b []byte, t time.Time) []byte {
	b = appendUint64(b, uint64(t.Unix()))
	return appendUvarint(b, uint64(t.Nanosecond()))
}

func appendCell(b []byte, v table.Value) ([]byte, error) {
	b = append(b, byte(v.Kind))
	switch v.Kind {
	case table.KindNull:
	case table.KindInt:
		b = appendUint64(b, uint64(v.I))
	case table.KindFloat:
		b = appendUint64(b, math.Float64bits(v.F))
	case table.KindString:
		b = appendString(b, v.S)
	case table.KindBool:
		if v.B {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	case table.KindTime:
		b = appendTime(b, v.T)
	default:
		return nil, fmt.Errorf("wal: encode cell: unknown kind %d", v.Kind)
	}
	return b, nil
}

func (d *recordDecoder) time() (time.Time, error) {
	sec, err := d.uint64()
	if err != nil {
		return time.Time{}, err
	}
	nsec, err := d.uvarint()
	if err != nil {
		return time.Time{}, err
	}
	return time.Unix(int64(sec), int64(nsec)).UTC(), nil
}

func (d *recordDecoder) cell() (table.Value, error) {
	k, err := d.byte()
	if err != nil {
		return table.Value{}, err
	}
	switch table.Kind(k) {
	case table.KindNull:
		return table.Null(), nil
	case table.KindInt:
		v, err := d.uint64()
		return table.Int(int64(v)), err
	case table.KindFloat:
		v, err := d.uint64()
		return table.Float(math.Float64frombits(v)), err
	case table.KindString:
		s, err := d.str()
		return table.Str(s), err
	case table.KindBool:
		v, err := d.byte()
		return table.Bool(v != 0), err
	case table.KindTime:
		t, err := d.time()
		return table.Time(t), err
	default:
		return table.Value{}, fmt.Errorf("wal: decode cell: unknown kind %d", k)
	}
}

// column decodes one serialized column back into exact storage: typed
// slabs are adopted via the ColumnFrom* constructors, boxed columns are
// rebuilt cell-at-a-time (a column that starts typed and hits a
// mismatched cell degrades exactly as the original did).
func (d *recordDecoder) column() (table.Column, error) {
	name, err := d.str()
	if err != nil {
		return table.Column{}, err
	}
	kindB, err := d.byte()
	if err != nil {
		return table.Column{}, err
	}
	kind := table.Kind(kindB)
	n64, err := d.uvarint()
	if err != nil {
		return table.Column{}, err
	}
	if n64 > maxRecord {
		return table.Column{}, errShort
	}
	n := int(n64)
	storage, err := d.byte()
	if err != nil {
		return table.Column{}, err
	}
	if storage == storageBoxed {
		col := table.NewColumn(name, kind)
		for i := 0; i < n; i++ {
			v, err := d.cell()
			if err != nil {
				return table.Column{}, err
			}
			col.Append(v)
		}
		return col, nil
	}
	switch kind {
	case table.KindInt:
		nulls, err := d.bitmap(n)
		if err != nil {
			return table.Column{}, err
		}
		vals := make([]int64, n)
		for i := range vals {
			v, err := d.uint64()
			if err != nil {
				return table.Column{}, err
			}
			vals[i] = int64(v)
		}
		return table.ColumnFromInts(name, vals, nulls), nil
	case table.KindFloat:
		nulls, err := d.bitmap(n)
		if err != nil {
			return table.Column{}, err
		}
		vals := make([]float64, n)
		for i := range vals {
			v, err := d.uint64()
			if err != nil {
				return table.Column{}, err
			}
			vals[i] = math.Float64frombits(v)
		}
		return table.ColumnFromFloats(name, vals, nulls), nil
	case table.KindString:
		nulls, err := d.bitmap(n)
		if err != nil {
			return table.Column{}, err
		}
		vals := make([]string, n)
		for i := range vals {
			if vals[i], err = d.str(); err != nil {
				return table.Column{}, err
			}
		}
		return table.ColumnFromStrings(name, vals, nulls), nil
	case table.KindBool:
		nulls, err := d.bitmap(n)
		if err != nil {
			return table.Column{}, err
		}
		vals, err := d.bitmap(n)
		if err != nil {
			return table.Column{}, err
		}
		return table.ColumnFromBools(name, vals, nulls), nil
	case table.KindTime:
		nulls, err := d.bitmap(n)
		if err != nil {
			return table.Column{}, err
		}
		vals := make([]time.Time, n)
		for i := range vals {
			if vals[i], err = d.time(); err != nil {
				return table.Column{}, err
			}
		}
		return table.ColumnFromTimes(name, vals, nulls), nil
	case table.KindNull:
		col := table.NewColumn(name, table.KindNull)
		for i := 0; i < n; i++ {
			col.Append(table.Null())
		}
		return col, nil
	default:
		return table.Column{}, fmt.Errorf("wal: decode column %q: unknown kind %d", name, kind)
	}
}

// --- record encoding: register / chunk ---

// encodeRegister builds a recRegister payload from a table's initial
// contents: name, column count, then each column in full (often zero
// rows, but Register over a populated table seals it as chunk one).
func encodeRegister(b []byte, t *table.Table) ([]byte, error) {
	b = append(b, recRegister)
	b = appendString(b, t.Name)
	b = appendUvarint(b, uint64(len(t.Columns)))
	for i := range t.Columns {
		var err error
		b, err = appendColumn(b, &t.Columns[i])
		if err != nil {
			return nil, err
		}
	}
	return b, nil
}

// encodeChunk builds a recChunk payload: table name, the snapshot
// version this publish creates, then the chunk's columns.
func encodeChunk(b []byte, name string, version uint64, ck *table.Chunk) ([]byte, error) {
	b = append(b, recChunk)
	b = appendString(b, name)
	b = appendUvarint(b, version)
	b = appendUvarint(b, uint64(ck.NumCols()))
	for i := 0; i < ck.NumCols(); i++ {
		var err error
		b, err = appendColumn(b, ck.Column(i))
		if err != nil {
			return nil, err
		}
	}
	return b, nil
}

// registerRecord is a decoded recRegister.
type registerRecord struct {
	table *table.Table
}

// chunkRecord is a decoded recChunk.
type chunkRecord struct {
	name    string
	version uint64
	cols    []table.Column
}

func decodeRegister(body []byte) (registerRecord, error) {
	d := recordDecoder{b: body}
	name, err := d.str()
	if err != nil {
		return registerRecord{}, err
	}
	ncols, err := d.uvarint()
	if err != nil {
		return registerRecord{}, err
	}
	if ncols > 1<<20 {
		return registerRecord{}, errShort
	}
	cols := make([]table.Column, ncols)
	for i := range cols {
		if cols[i], err = d.column(); err != nil {
			return registerRecord{}, err
		}
	}
	// Built directly rather than via table.New: the record was encoded
	// from a table that already passed registration validation, and the
	// CRC vouches for the bytes.
	return registerRecord{table: &table.Table{Name: name, Columns: cols}}, nil
}

func decodeChunk(body []byte) (chunkRecord, error) {
	d := recordDecoder{b: body}
	name, err := d.str()
	if err != nil {
		return chunkRecord{}, err
	}
	version, err := d.uvarint()
	if err != nil {
		return chunkRecord{}, err
	}
	ncols, err := d.uvarint()
	if err != nil {
		return chunkRecord{}, err
	}
	if ncols > 1<<20 {
		return chunkRecord{}, errShort
	}
	cols := make([]table.Column, ncols)
	for i := range cols {
		if cols[i], err = d.column(); err != nil {
			return chunkRecord{}, err
		}
	}
	return chunkRecord{name: name, version: version, cols: cols}, nil
}
