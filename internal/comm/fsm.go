package comm

import (
	"fmt"
	"sort"
)

// AgentState is the per-agent state in the execution FSM (§V, Figure 5).
type AgentState uint8

// The three agent states.
const (
	StateWait AgentState = iota
	StateExecution
	StateFinish
)

// String implements fmt.Stringer.
func (s AgentState) String() string {
	switch s {
	case StateWait:
		return "Wait"
	case StateExecution:
		return "Execution"
	case StateFinish:
		return "Finish"
	default:
		return fmt.Sprintf("AgentState(%d)", uint8(s))
	}
}

// FSM is an execution plan: nodes are agents, edges are information
// transition directions. The proxy agent generates one per user query,
// then drives subtask execution along a topological order, forwarding to
// each agent only the information its in-edges designate.
type FSM struct {
	agents map[string]AgentState
	// inputs[a] lists the agents whose outputs a consumes.
	inputs map[string][]string
	order  []string // insertion order, for deterministic iteration
}

// NewFSM returns an empty plan.
func NewFSM() *FSM {
	return &FSM{agents: map[string]AgentState{}, inputs: map[string][]string{}}
}

// AddAgent registers an agent node in the Wait state.
func (f *FSM) AddAgent(name string) {
	if _, ok := f.agents[name]; ok {
		return
	}
	f.agents[name] = StateWait
	f.order = append(f.order, name)
}

// AddEdge declares that to consumes from's output. Both endpoints are
// added implicitly.
func (f *FSM) AddEdge(from, to string) {
	f.AddAgent(from)
	f.AddAgent(to)
	f.inputs[to] = append(f.inputs[to], from)
}

// Agents returns the agent names in insertion order.
func (f *FSM) Agents() []string {
	out := make([]string, len(f.order))
	copy(out, f.order)
	return out
}

// Inputs returns the producers feeding the given agent.
func (f *FSM) Inputs(name string) []string {
	out := make([]string, len(f.inputs[name]))
	copy(out, f.inputs[name])
	return out
}

// State returns an agent's current state.
func (f *FSM) State(name string) AgentState { return f.agents[name] }

// SetState transitions an agent; invalid transitions error so protocol
// violations surface in tests.
func (f *FSM) SetState(name string, s AgentState) error {
	cur, ok := f.agents[name]
	if !ok {
		return fmt.Errorf("comm: unknown agent %q", name)
	}
	valid := false
	switch cur {
	case StateWait:
		valid = s == StateExecution || s == StateFinish
	case StateExecution:
		valid = s == StateWait || s == StateFinish
	case StateFinish:
		valid = s == StateFinish
	}
	if !valid {
		return fmt.Errorf("comm: invalid transition %s -> %s for %q", cur, s, name)
	}
	f.agents[name] = s
	return nil
}

// AllFinished reports whether every agent reached Finish.
func (f *FSM) AllFinished() bool {
	for _, s := range f.agents {
		if s != StateFinish {
			return false
		}
	}
	return true
}

// TopoOrder returns agents in dependency order (producers before
// consumers). An error is returned on cycles — execution plans are DAGs.
func (f *FSM) TopoOrder() ([]string, error) {
	indeg := map[string]int{}
	for _, a := range f.order {
		indeg[a] = 0
	}
	consumers := map[string][]string{}
	for to, froms := range f.inputs {
		for _, from := range froms {
			indeg[to]++
			consumers[from] = append(consumers[from], to)
		}
	}
	// Deterministic queue: seed with zero-indegree agents in insertion
	// order, append new ready agents sorted.
	var queue []string
	for _, a := range f.order {
		if indeg[a] == 0 {
			queue = append(queue, a)
		}
	}
	var out []string
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		out = append(out, a)
		next := consumers[a]
		sort.Strings(next)
		for _, c := range next {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(out) != len(f.order) {
		return nil, fmt.Errorf("comm: execution plan has a cycle")
	}
	return out, nil
}
