package comm

import (
	"fmt"
)

// Agent is anything the proxy can dispatch a subtask to. Implementations
// live in the agent package; the communication layer only needs this
// contract.
type Agent interface {
	// Name identifies the agent ("SQL Agent", "Chart Agent", ...).
	Name() string
	// Execute performs the agent's subtask for the user query given the
	// information units forwarded by the proxy, returning the produced
	// unit. attempt counts retries (0-based) so implementations can model
	// execution-feedback refinement.
	Execute(query string, inputs []Info, attempt int) (Info, error)
}

// ProxyConfig controls the communication mechanisms under test. The
// defaults (both true) are DataLab's full configuration; the Table III
// ablations disable one each.
type ProxyConfig struct {
	// UseFSM gates selective retrieval: when false (ablation S1) every
	// agent receives the entire buffer.
	UseFSM bool
	// Structured gates the information format: when false (ablation S2)
	// units travel as free-form NL, losing field boundaries.
	Structured bool
	// MaxCallsPerAgent bounds retries; the paper's success-rate metric
	// uses 5.
	MaxCallsPerAgent int
}

// DefaultProxyConfig is DataLab's production configuration.
func DefaultProxyConfig() ProxyConfig {
	return ProxyConfig{UseFSM: true, Structured: true, MaxCallsPerAgent: 5}
}

// RunStats reports what a proxy run consumed and produced.
type RunStats struct {
	AgentCalls      int
	Retries         int
	ForwardedUnits  int
	ForwardedTokens int
	Succeeded       bool
}

// Proxy is the hub agent that interacts with the user, allocates subtasks,
// and mediates all inter-agent information flow (§V, Workflow).
type Proxy struct {
	Config ProxyConfig
	Buffer *Buffer
}

// NewProxy creates a proxy with a fresh buffer.
func NewProxy(cfg ProxyConfig) *Proxy {
	return &Proxy{Config: cfg, Buffer: NewBuffer(8)}
}

// Run executes the plan: steps 1-7 of Figure 5. agents maps agent names
// to implementations; every FSM node must be present. The returned units
// are the final buffer contents in completion order.
func (p *Proxy) Run(plan *FSM, agents map[string]Agent, query string) ([]Info, RunStats, error) {
	var stats RunStats
	order, err := plan.TopoOrder()
	if err != nil {
		return nil, stats, err
	}
	for _, name := range order {
		if _, ok := agents[name]; !ok {
			return nil, stats, fmt.Errorf("comm: plan references unknown agent %q", name)
		}
	}

	for _, name := range order {
		agent := agents[name]
		inputs := p.selectInputs(plan, name)
		stats.ForwardedUnits += len(inputs)
		for _, u := range inputs {
			stats.ForwardedTokens += u.Tokens()
		}
		if err := plan.SetState(name, StateExecution); err != nil {
			return nil, stats, err
		}

		var produced Info
		var execErr error
		success := false
		for attempt := 0; attempt < p.Config.MaxCallsPerAgent; attempt++ {
			stats.AgentCalls++
			if attempt > 0 {
				stats.Retries++
			}
			produced, execErr = agent.Execute(query, inputs, attempt)
			if execErr == nil {
				success = true
				break
			}
		}
		if !success {
			// The subtask could not be completed within budget: the whole
			// question fails (the Success Rate metric counts this).
			_ = plan.SetState(name, StateFinish)
			return p.Buffer.All(), stats, fmt.Errorf("comm: agent %q exhausted %d calls: %w",
				name, p.Config.MaxCallsPerAgent, execErr)
		}
		if !p.Config.Structured {
			// Ablation S2: flatten to free-form NL. Downstream consumers
			// lose the field structure (DataSource/Action become prose).
			produced = Info{
				Role:        produced.Role,
				Action:      "narrative",
				Description: produced.Unstructured(),
				Content:     produced.Unstructured(),
				Kind:        KindText,
				DataSource:  produced.DataSource,
			}
		}
		if err := p.Buffer.Store(produced); err != nil {
			return nil, stats, err
		}
		if err := plan.SetState(name, StateWait); err != nil {
			return nil, stats, err
		}
		if err := plan.SetState(name, StateFinish); err != nil {
			return nil, stats, err
		}
	}
	stats.Succeeded = true
	return p.Buffer.All(), stats, nil
}

// selectInputs implements Selective Retrieval: with the FSM enabled, the
// agent receives only its in-edge producers' units; without it (ablation
// S1) it receives everything in the buffer.
func (p *Proxy) selectInputs(plan *FSM, agent string) []Info {
	if !p.Config.UseFSM {
		return p.Buffer.All()
	}
	producers := plan.Inputs(agent)
	if len(producers) == 0 {
		return nil
	}
	return p.Buffer.ByRoles(producers...)
}
