// Package comm implements DataLab's Inter-Agent Communication module
// (§V): the structured six-field information unit format, the dynamically
// growing shared information buffer with outdated-entry eviction, and the
// FSM-based selective-retrieval protocol the proxy agent drives.
package comm

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
)

// InfoKind loosely types the Content payload so consumers can parse it.
type InfoKind string

// Common content kinds flowing between BI agents.
const (
	KindSQL   InfoKind = "sql"
	KindCode  InfoKind = "code"
	KindChart InfoKind = "chart"
	KindData  InfoKind = "data"
	KindText  InfoKind = "text"
	KindDSL   InfoKind = "dsl"
)

// Info is one structured information unit (§V, Information Format
// Structure). All inter-agent messages take this shape; the Table III
// ablation S2 replaces it with free-form NL.
type Info struct {
	DataSource  string   `json:"data_source"` // dataset manipulated, e.g. sales_db/23_customer_bg
	Role        string   `json:"role"`        // producing agent, e.g. "SQL Agent"
	Action      string   `json:"action"`      // behaviour, e.g. "generate_sql_query"
	Description string   `json:"description"` // summary of what was done
	Content     string   `json:"content"`     // the payload itself
	Timestamp   int64    `json:"timestamp"`   // logical completion time
	Kind        InfoKind `json:"kind,omitempty"`
}

// Validate checks that the mandatory fields are present.
func (i Info) Validate() error {
	if i.Role == "" {
		return fmt.Errorf("comm: info unit missing role")
	}
	if i.Action == "" {
		return fmt.Errorf("comm: info unit missing action")
	}
	if i.Content == "" && i.Description == "" {
		return fmt.Errorf("comm: info unit carries nothing")
	}
	return nil
}

// JSON renders the unit canonically.
func (i Info) JSON() string {
	b, err := json.Marshal(i)
	if err != nil {
		return "{}"
	}
	return string(b)
}

// Unstructured renders the unit as the free-form NL a no-formatting
// baseline would emit (ablation S2 of Table III). Field boundaries are
// deliberately lost: that information loss is what the ablation measures.
func (i Info) Unstructured() string {
	return fmt.Sprintf("%s did %s on %s. %s %s",
		i.Role, strings.ReplaceAll(i.Action, "_", " "), i.DataSource, i.Description, i.Content)
}

// Tokens estimates the unit's token footprint when placed in context.
func (i Info) Tokens() int {
	return len(i.JSON())/4 + 1
}

// Buffer is the shared information buffer: a bounded store that doubles
// its capacity under pressure and evicts superseded entries (§V, Shared
// Information Buffer). It is safe for concurrent producers/consumers.
type Buffer struct {
	mu       sync.RWMutex
	entries  []Info
	capacity int
	// grows counts capacity doublings (observable for tests/metrics).
	grows int
	// clock assigns logical timestamps when producers do not.
	clock int64
}

// NewBuffer creates a buffer with the given initial capacity (minimum 4).
func NewBuffer(initialCapacity int) *Buffer {
	if initialCapacity < 4 {
		initialCapacity = 4
	}
	return &Buffer{capacity: initialCapacity}
}

// Len returns the number of stored units.
func (b *Buffer) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.entries)
}

// Capacity returns the current capacity.
func (b *Buffer) Capacity() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.capacity
}

// Grows returns how many times the buffer doubled.
func (b *Buffer) Grows() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.grows
}

// Store appends a unit, assigning a logical timestamp if absent. When an
// agent re-reports the same (Role, Action, DataSource) triple — e.g. after
// execution feedback — the outdated unit is evicted first. The buffer
// doubles its capacity when full.
func (b *Buffer) Store(info Info) error {
	if err := info.Validate(); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.clock++
	if info.Timestamp == 0 {
		info.Timestamp = b.clock
	}
	// Evict the superseded version, if any.
	for idx := range b.entries {
		e := b.entries[idx]
		if e.Role == info.Role && e.Action == info.Action && e.DataSource == info.DataSource {
			b.entries = append(b.entries[:idx], b.entries[idx+1:]...)
			break
		}
	}
	if len(b.entries) >= b.capacity {
		b.capacity *= 2
		b.grows++
	}
	b.entries = append(b.entries, info)
	return nil
}

// All returns a snapshot of every unit in store order.
func (b *Buffer) All() []Info {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]Info, len(b.entries))
	copy(out, b.entries)
	return out
}

// ByRoles returns units produced by any of the given roles, preserving
// store order. This is the selective-retrieval primitive the FSM uses.
func (b *Buffer) ByRoles(roles ...string) []Info {
	want := make(map[string]bool, len(roles))
	for _, r := range roles {
		want[r] = true
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	var out []Info
	for _, e := range b.entries {
		if want[e.Role] {
			out = append(out, e)
		}
	}
	return out
}

// ByDataSource returns units touching the given data source.
func (b *Buffer) ByDataSource(source string) []Info {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var out []Info
	for _, e := range b.entries {
		if strings.EqualFold(e.DataSource, source) {
			out = append(out, e)
		}
	}
	return out
}

// Clear drops all entries (a new task begins).
func (b *Buffer) Clear() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.entries = nil
}
