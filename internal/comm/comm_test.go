package comm

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func unit(role, action, source string) Info {
	return Info{
		DataSource:  source,
		Role:        role,
		Action:      action,
		Description: "did " + action,
		Content:     "payload of " + action,
		Kind:        KindText,
	}
}

func TestInfoValidate(t *testing.T) {
	if err := unit("SQL Agent", "generate_sql_query", "db/t").Validate(); err != nil {
		t.Errorf("valid unit rejected: %v", err)
	}
	bad := []Info{
		{Action: "a", Content: "c"},
		{Role: "r", Content: "c"},
		{Role: "r", Action: "a"},
	}
	for i, u := range bad {
		if err := u.Validate(); err == nil {
			t.Errorf("unit %d should be invalid", i)
		}
	}
}

func TestInfoJSONAndUnstructured(t *testing.T) {
	u := unit("SQL Agent", "generate_sql_query", "sales_db/23_customer_bg")
	if !strings.Contains(u.JSON(), `"data_source"`) {
		t.Error("JSON missing field names")
	}
	flat := u.Unstructured()
	if strings.Contains(flat, `"data_source"`) {
		t.Error("unstructured form should lose field structure")
	}
	if !strings.Contains(flat, "SQL Agent") {
		t.Error("unstructured form should keep content")
	}
	if u.Tokens() <= 0 {
		t.Error("token estimate must be positive")
	}
}

func TestBufferStoreAndRetrieve(t *testing.T) {
	b := NewBuffer(4)
	for i := 0; i < 3; i++ {
		if err := b.Store(unit("A", fmt.Sprintf("act%d", i), "src")); err != nil {
			t.Fatal(err)
		}
	}
	if b.Len() != 3 {
		t.Errorf("len = %d", b.Len())
	}
	if got := b.ByRoles("A"); len(got) != 3 {
		t.Errorf("ByRoles = %d", len(got))
	}
	if got := b.ByRoles("B"); len(got) != 0 {
		t.Errorf("ByRoles(B) = %d", len(got))
	}
	if got := b.ByDataSource("SRC"); len(got) != 3 {
		t.Errorf("ByDataSource should be case-insensitive, got %d", len(got))
	}
}

func TestBufferAssignsTimestamps(t *testing.T) {
	b := NewBuffer(4)
	_ = b.Store(unit("A", "a1", "s"))
	_ = b.Store(unit("A", "a2", "s"))
	all := b.All()
	if all[0].Timestamp >= all[1].Timestamp {
		t.Errorf("timestamps not monotonic: %d, %d", all[0].Timestamp, all[1].Timestamp)
	}
}

func TestBufferDoubles(t *testing.T) {
	b := NewBuffer(4)
	for i := 0; i < 9; i++ {
		_ = b.Store(unit("A", fmt.Sprintf("act%d", i), "s"))
	}
	if b.Capacity() < 9 {
		t.Errorf("capacity = %d, want >= 9", b.Capacity())
	}
	if b.Grows() < 1 {
		t.Error("buffer never doubled")
	}
}

func TestBufferEvictsOutdated(t *testing.T) {
	b := NewBuffer(4)
	first := unit("SQL Agent", "generate_sql_query", "db/t")
	first.Content = "SELECT 1"
	_ = b.Store(first)
	updated := unit("SQL Agent", "generate_sql_query", "db/t")
	updated.Content = "SELECT 2 -- fixed after execution feedback"
	_ = b.Store(updated)
	if b.Len() != 1 {
		t.Fatalf("len = %d, want 1 (outdated evicted)", b.Len())
	}
	if got := b.All()[0].Content; !strings.Contains(got, "SELECT 2") {
		t.Errorf("kept the outdated unit: %q", got)
	}
}

func TestBufferRejectsInvalid(t *testing.T) {
	b := NewBuffer(4)
	if err := b.Store(Info{}); err == nil {
		t.Error("invalid unit accepted")
	}
}

func TestBufferConcurrentSafety(t *testing.T) {
	b := NewBuffer(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = b.Store(unit(fmt.Sprintf("A%d", g), fmt.Sprintf("act%d", i), "s"))
				_ = b.All()
				_ = b.ByRoles("A0")
			}
		}(g)
	}
	wg.Wait()
	if b.Len() != 8*50 {
		t.Errorf("len = %d, want 400", b.Len())
	}
}

func TestFSMStates(t *testing.T) {
	f := NewFSM()
	f.AddAgent("SQL Agent")
	if f.State("SQL Agent") != StateWait {
		t.Error("new agents start in Wait")
	}
	if err := f.SetState("SQL Agent", StateExecution); err != nil {
		t.Fatal(err)
	}
	if err := f.SetState("SQL Agent", StateWait); err != nil {
		t.Fatal(err)
	}
	if err := f.SetState("SQL Agent", StateFinish); err != nil {
		t.Fatal(err)
	}
	if err := f.SetState("SQL Agent", StateExecution); err == nil {
		t.Error("Finish -> Execution should be invalid")
	}
	if err := f.SetState("ghost", StateWait); err == nil {
		t.Error("unknown agent should error")
	}
}

func TestFSMTopoOrder(t *testing.T) {
	f := NewFSM()
	f.AddEdge("SQL Agent", "Anomaly Agent")
	f.AddEdge("SQL Agent", "Causal Agent")
	f.AddEdge("Anomaly Agent", "Chart Agent")
	f.AddEdge("Causal Agent", "Chart Agent")
	order, err := f.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, a := range order {
		pos[a] = i
	}
	if !(pos["SQL Agent"] < pos["Anomaly Agent"] && pos["Anomaly Agent"] < pos["Chart Agent"] &&
		pos["SQL Agent"] < pos["Causal Agent"] && pos["Causal Agent"] < pos["Chart Agent"]) {
		t.Errorf("order violates dependencies: %v", order)
	}
}

func TestFSMCycleDetection(t *testing.T) {
	f := NewFSM()
	f.AddEdge("A", "B")
	f.AddEdge("B", "A")
	if _, err := f.TopoOrder(); err == nil {
		t.Error("cycle not detected")
	}
}

// scriptedAgent is a test double that succeeds after a fixed number of
// failures and records the inputs it saw.
type scriptedAgent struct {
	name       string
	failUntil  int
	seenInputs [][]Info
}

func (a *scriptedAgent) Name() string { return a.name }

func (a *scriptedAgent) Execute(query string, inputs []Info, attempt int) (Info, error) {
	a.seenInputs = append(a.seenInputs, inputs)
	if attempt < a.failUntil {
		return Info{}, errors.New("transient failure")
	}
	return Info{
		DataSource: "db/t", Role: a.name, Action: "work",
		Description: "completed", Content: "output of " + a.name, Kind: KindText,
	}, nil
}

func TestProxyRunsPlanInOrder(t *testing.T) {
	plan := NewFSM()
	plan.AddEdge("SQL Agent", "Chart Agent")
	sql := &scriptedAgent{name: "SQL Agent"}
	chart := &scriptedAgent{name: "Chart Agent"}
	p := NewProxy(DefaultProxyConfig())
	out, stats, err := p.Run(plan, map[string]Agent{"SQL Agent": sql, "Chart Agent": chart}, "q")
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Succeeded || len(out) != 2 {
		t.Fatalf("stats=%+v out=%d", stats, len(out))
	}
	// The chart agent must have received exactly the SQL agent's unit.
	last := chart.seenInputs[0]
	if len(last) != 1 || last[0].Role != "SQL Agent" {
		t.Errorf("chart inputs = %+v", last)
	}
	if !plan.AllFinished() {
		t.Error("agents not all finished")
	}
}

func TestProxyWithoutFSMForwardsEverything(t *testing.T) {
	plan := NewFSM()
	plan.AddEdge("A", "B")
	plan.AddEdge("B", "C")
	cfg := DefaultProxyConfig()
	cfg.UseFSM = false
	p := NewProxy(cfg)
	a, b, c := &scriptedAgent{name: "A"}, &scriptedAgent{name: "B"}, &scriptedAgent{name: "C"}
	_, stats, err := p.Run(plan, map[string]Agent{"A": a, "B": b, "C": c}, "q")
	if err != nil {
		t.Fatal(err)
	}
	// C should have seen both A's and B's units (all of the buffer).
	if len(c.seenInputs[0]) != 2 {
		t.Errorf("C saw %d units, want 2", len(c.seenInputs[0]))
	}
	// More units forwarded than the FSM would send (A->B:1, B->C:1 = 2;
	// here B gets 1 and C gets 2 = 3).
	if stats.ForwardedUnits != 3 {
		t.Errorf("forwarded = %d, want 3", stats.ForwardedUnits)
	}
}

func TestProxyUnstructuredFlattens(t *testing.T) {
	plan := NewFSM()
	plan.AddEdge("A", "B")
	cfg := DefaultProxyConfig()
	cfg.Structured = false
	p := NewProxy(cfg)
	a, b := &scriptedAgent{name: "A"}, &scriptedAgent{name: "B"}
	out, _, err := p.Run(plan, map[string]Agent{"A": a, "B": b}, "q")
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range out {
		if u.Action != "narrative" || u.Kind != KindText {
			t.Errorf("unit not flattened: %+v", u)
		}
	}
}

func TestProxyRetriesUpToBudget(t *testing.T) {
	plan := NewFSM()
	plan.AddAgent("Flaky")
	p := NewProxy(DefaultProxyConfig())
	flaky := &scriptedAgent{name: "Flaky", failUntil: 3}
	_, stats, err := p.Run(plan, map[string]Agent{"Flaky": flaky}, "q")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retries != 3 || stats.AgentCalls != 4 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestProxyFailsWhenBudgetExhausted(t *testing.T) {
	plan := NewFSM()
	plan.AddAgent("Broken")
	p := NewProxy(DefaultProxyConfig())
	broken := &scriptedAgent{name: "Broken", failUntil: 99}
	_, stats, err := p.Run(plan, map[string]Agent{"Broken": broken}, "q")
	if err == nil {
		t.Fatal("expected failure")
	}
	if stats.Succeeded {
		t.Error("stats should report failure")
	}
	if stats.AgentCalls != 5 {
		t.Errorf("calls = %d, want 5 (the paper's budget)", stats.AgentCalls)
	}
}

func TestProxyUnknownAgent(t *testing.T) {
	plan := NewFSM()
	plan.AddAgent("Ghost")
	p := NewProxy(DefaultProxyConfig())
	if _, _, err := p.Run(plan, map[string]Agent{}, "q"); err == nil {
		t.Error("expected unknown-agent error")
	}
}
