package table

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func sampleSales(t *testing.T) *Table {
	t.Helper()
	tbl := MustNew("sales",
		[]string{"region", "product", "amount", "qty"},
		[]Kind{KindString, KindString, KindFloat, KindInt})
	rows := [][]Value{
		{Str("east"), Str("widget"), Float(100), Int(2)},
		{Str("east"), Str("gadget"), Float(250), Int(1)},
		{Str("west"), Str("widget"), Float(75), Int(3)},
		{Str("west"), Str("gadget"), Float(300), Int(4)},
		{Str("west"), Str("widget"), Float(125), Int(1)},
	}
	for _, r := range rows {
		tbl.MustAppendRow(r...)
	}
	return tbl
}

func TestNewRejectsDuplicateColumns(t *testing.T) {
	if _, err := New("t", []string{"a", "A"}, []Kind{KindInt, KindInt}); err == nil {
		t.Fatal("expected duplicate column error")
	}
	if _, err := New("t", []string{"a"}, []Kind{KindInt, KindInt}); err == nil {
		t.Fatal("expected arity mismatch error")
	}
}

func TestAppendRowCoerces(t *testing.T) {
	tbl := MustNew("t", []string{"n"}, []Kind{KindFloat})
	tbl.MustAppendRow(Str("3.5"))
	if got := tbl.Get(0, "n"); got.Kind != KindFloat || got.F != 3.5 {
		t.Errorf("coerced value = %v", got)
	}
}

func TestAppendRowArityError(t *testing.T) {
	tbl := MustNew("t", []string{"a", "b"}, []Kind{KindInt, KindInt})
	if err := tbl.AppendRow(Int(1)); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestColumnLookupCaseInsensitive(t *testing.T) {
	tbl := sampleSales(t)
	if tbl.ColumnIndex("AMOUNT") != 2 {
		t.Error("case-insensitive lookup failed")
	}
	if tbl.Column("missing") != nil {
		t.Error("missing column should be nil")
	}
}

func TestFilterAndLimit(t *testing.T) {
	tbl := sampleSales(t)
	west := tbl.Filter(func(r int) bool { return tbl.Get(r, "region").S == "west" })
	if west.NumRows() != 3 {
		t.Fatalf("west rows = %d, want 3", west.NumRows())
	}
	if got := west.Limit(2).NumRows(); got != 2 {
		t.Errorf("limit = %d rows, want 2", got)
	}
	if got := west.Limit(-1).NumRows(); got != 3 {
		t.Errorf("negative limit should keep all rows, got %d", got)
	}
}

func TestSortMultiKey(t *testing.T) {
	tbl := sampleSales(t)
	sorted, err := tbl.Sort(SortKey{Column: "region"}, SortKey{Column: "amount", Desc: true})
	if err != nil {
		t.Fatal(err)
	}
	var amounts []float64
	for i := 0; i < sorted.NumRows(); i++ {
		amounts = append(amounts, sorted.Get(i, "amount").F)
	}
	want := []float64{250, 100, 300, 125, 75}
	if !reflect.DeepEqual(amounts, want) {
		t.Errorf("sorted amounts = %v, want %v", amounts, want)
	}
}

func TestSortUnknownColumn(t *testing.T) {
	tbl := sampleSales(t)
	if _, err := tbl.Sort(SortKey{Column: "nope"}); err == nil {
		t.Fatal("expected error for unknown sort column")
	}
}

func TestProject(t *testing.T) {
	tbl := sampleSales(t)
	p, err := tbl.Project("amount", "region")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.ColumnNames(), []string{"amount", "region"}) {
		t.Errorf("projected columns = %v", p.ColumnNames())
	}
	if _, err := tbl.Project("missing"); err == nil {
		t.Fatal("expected error for unknown column")
	}
}

func TestDistinct(t *testing.T) {
	tbl := MustNew("t", []string{"a"}, []Kind{KindInt})
	for _, v := range []int64{1, 2, 1, 3, 2} {
		tbl.MustAppendRow(Int(v))
	}
	d := tbl.Distinct()
	if d.NumRows() != 3 {
		t.Errorf("distinct rows = %d, want 3", d.NumRows())
	}
}

func TestAddDropRenameColumn(t *testing.T) {
	tbl := sampleSales(t)
	err := tbl.AddColumn("total", KindFloat, func(r int) Value {
		amt := tbl.Get(r, "amount").F
		qty := float64(tbl.Get(r, "qty").I)
		return Float(amt * qty)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.Get(0, "total").F; got != 200 {
		t.Errorf("derived total = %v, want 200", got)
	}
	if err := tbl.AddColumn("total", KindFloat, nil); err == nil {
		t.Fatal("expected duplicate column error")
	}
	if err := tbl.RenameColumn("total", "revenue"); err != nil {
		t.Fatal(err)
	}
	if tbl.ColumnIndex("revenue") < 0 {
		t.Error("rename did not take effect")
	}
	if err := tbl.DropColumn("revenue"); err != nil {
		t.Fatal(err)
	}
	if tbl.ColumnIndex("revenue") >= 0 {
		t.Error("drop did not take effect")
	}
}

func TestGroupByAggregates(t *testing.T) {
	tbl := sampleSales(t)
	g, err := tbl.GroupBy([]string{"region"}, []Aggregation{
		{Func: AggSum, Column: "amount", As: "total"},
		{Func: AggCount, Column: "*", As: "n"},
		{Func: AggMax, Column: "amount", As: "peak"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRows() != 2 {
		t.Fatalf("groups = %d, want 2", g.NumRows())
	}
	// Groups keep first-appearance order: east then west.
	if g.Get(0, "region").S != "east" {
		t.Errorf("first group = %v", g.Get(0, "region"))
	}
	if got := g.Get(0, "total").F; got != 350 {
		t.Errorf("east total = %v, want 350", got)
	}
	if got := g.Get(1, "n").I; got != 3 {
		t.Errorf("west count = %v, want 3", got)
	}
	if got := g.Get(1, "peak").F; got != 300 {
		t.Errorf("west peak = %v, want 300", got)
	}
}

func TestGroupByGlobalOnEmptyTable(t *testing.T) {
	tbl := MustNew("t", []string{"x"}, []Kind{KindInt})
	g, err := tbl.GroupBy(nil, []Aggregation{{Func: AggCount, Column: "*", As: "n"}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRows() != 1 || g.Get(0, "n").I != 0 {
		t.Errorf("global aggregate over empty table = %v", g)
	}
}

func TestGroupByNullHandling(t *testing.T) {
	tbl := MustNew("t", []string{"k", "v"}, []Kind{KindString, KindFloat})
	tbl.MustAppendRow(Str("a"), Float(1))
	tbl.MustAppendRow(Str("a"), Null())
	tbl.MustAppendRow(Str("a"), Float(3))
	g, err := tbl.GroupBy([]string{"k"}, []Aggregation{
		{Func: AggCount, Column: "v", As: "cnt"},
		{Func: AggAvg, Column: "v", As: "avg"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.Get(0, "cnt").I != 2 {
		t.Errorf("COUNT(v) should skip nulls, got %v", g.Get(0, "cnt"))
	}
	if g.Get(0, "avg").F != 2 {
		t.Errorf("AVG(v) should skip nulls, got %v", g.Get(0, "avg"))
	}
}

func TestGroupByMedianAndStdDev(t *testing.T) {
	tbl := MustNew("t", []string{"v"}, []Kind{KindFloat})
	for _, f := range []float64{1, 2, 3, 4} {
		tbl.MustAppendRow(Float(f))
	}
	g, err := tbl.GroupBy(nil, []Aggregation{
		{Func: AggMedian, Column: "v", As: "med"},
		{Func: AggStdDev, Column: "v", As: "sd"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Get(0, "med").F; got != 2.5 {
		t.Errorf("median = %v, want 2.5", got)
	}
	sd := g.Get(0, "sd").F
	if sd < 1.29 || sd > 1.30 {
		t.Errorf("stddev = %v, want ~1.291", sd)
	}
}

func TestJoinInner(t *testing.T) {
	left := MustNew("orders", []string{"id", "cust"}, []Kind{KindInt, KindString})
	left.MustAppendRow(Int(1), Str("alice"))
	left.MustAppendRow(Int(2), Str("bob"))
	left.MustAppendRow(Int(3), Str("carol"))
	right := MustNew("custs", []string{"name", "tier"}, []Kind{KindString, KindString})
	right.MustAppendRow(Str("alice"), Str("gold"))
	right.MustAppendRow(Str("bob"), Str("silver"))

	j, err := left.Join(right, "cust", "name", JoinInner)
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 2 {
		t.Fatalf("inner join rows = %d, want 2", j.NumRows())
	}
	if j.Get(0, "tier").S != "gold" {
		t.Errorf("joined tier = %v", j.Get(0, "tier"))
	}
}

func TestJoinLeftKeepsUnmatched(t *testing.T) {
	left := MustNew("l", []string{"k"}, []Kind{KindInt})
	left.MustAppendRow(Int(1))
	left.MustAppendRow(Int(9))
	right := MustNew("r", []string{"k", "v"}, []Kind{KindInt, KindString})
	right.MustAppendRow(Int(1), Str("hit"))

	j, err := left.Join(right, "k", "k", JoinLeft)
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 2 {
		t.Fatalf("left join rows = %d, want 2", j.NumRows())
	}
	if !j.Get(1, "v").IsNull() {
		t.Errorf("unmatched right value should be NULL, got %v", j.Get(1, "v"))
	}
	// Collided key column gets a prefixed name.
	if j.ColumnIndex("r.k") < 0 {
		t.Errorf("expected disambiguated column r.k, have %v", j.ColumnNames())
	}
}

func TestJoinRightKeepsUnmatched(t *testing.T) {
	left := MustNew("l", []string{"k"}, []Kind{KindInt})
	left.MustAppendRow(Int(1))
	left.MustAppendRow(Int(1))
	right := MustNew("r", []string{"k", "v"}, []Kind{KindInt, KindString})
	right.MustAppendRow(Int(1), Str("hit"))
	right.MustAppendRow(Int(7), Str("lonely"))

	j, err := left.Join(right, "k", "k", JoinRight)
	if err != nil {
		t.Fatal(err)
	}
	// Right-row order: both left rows match right row 0, then the
	// unmatched right row pads the left side.
	if j.NumRows() != 3 {
		t.Fatalf("right join rows = %d, want 3", j.NumRows())
	}
	if !j.Get(2, "k").IsNull() {
		t.Errorf("unmatched left key should be NULL, got %v", j.Get(2, "k"))
	}
	if j.Get(2, "v").S != "lonely" {
		t.Errorf("preserved right value = %v", j.Get(2, "v"))
	}
}

func TestJoinFullOuter(t *testing.T) {
	left := MustNew("l", []string{"k"}, []Kind{KindInt})
	left.MustAppendRow(Int(1))
	left.MustAppendRow(Int(9))
	right := MustNew("r", []string{"k", "v"}, []Kind{KindInt, KindString})
	right.MustAppendRow(Int(1), Str("hit"))
	right.MustAppendRow(Int(7), Str("lonely"))

	j, err := left.Join(right, "k", "k", JoinFull)
	if err != nil {
		t.Fatal(err)
	}
	// Match (1,1), left-pad row for 9, then the unmatched right row.
	if j.NumRows() != 3 {
		t.Fatalf("full join rows = %d, want 3", j.NumRows())
	}
	if j.Get(0, "v").S != "hit" {
		t.Errorf("matched value = %v", j.Get(0, "v"))
	}
	if !j.Get(1, "v").IsNull() || j.Get(1, "k").I != 9 {
		t.Errorf("left-preserved row = (%v, %v)", j.Get(1, "k"), j.Get(1, "v"))
	}
	if !j.Get(2, "k").IsNull() || j.Get(2, "v").S != "lonely" {
		t.Errorf("sweep row = (%v, %v)", j.Get(2, "k"), j.Get(2, "v"))
	}
}

func TestGatherPairsNullMask(t *testing.T) {
	c := ColumnFromInts("x", []int64{10, 20, 30}, []bool{false, true, false})
	out := c.GatherPairs([]int{2, 0, 1, 0}, []bool{false, true, false, false})
	want := []any{int64(30), nil, nil, int64(10)} // masked, then storage NULL
	for i, w := range want {
		v := out.Value(i)
		if w == nil {
			if !v.IsNull() {
				t.Errorf("cell %d = %v, want NULL", i, v)
			}
			continue
		}
		if v.IsNull() || v.I != w.(int64) {
			t.Errorf("cell %d = %v, want %v", i, v, w)
		}
	}
	// nil mask degenerates to a plain gather.
	plain := c.GatherPairs([]int{1, 2}, nil)
	if !plain.Value(0).IsNull() || plain.Value(1).I != 30 {
		t.Errorf("nil-mask gather = %v, %v", plain.Value(0), plain.Value(1))
	}
}

func TestJoinNullKeysNeverMatch(t *testing.T) {
	left := MustNew("l", []string{"k"}, []Kind{KindString})
	left.MustAppendRow(Null())
	right := MustNew("r", []string{"k"}, []Kind{KindString})
	right.MustAppendRow(Null())
	j, err := left.Join(right, "k", "k", JoinInner)
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 0 {
		t.Errorf("NULL keys must not join, got %d rows", j.NumRows())
	}
}

func TestConcat(t *testing.T) {
	a := MustNew("a", []string{"x"}, []Kind{KindInt})
	a.MustAppendRow(Int(1))
	b := MustNew("b", []string{"x"}, []Kind{KindInt})
	b.MustAppendRow(Int(2))
	c, err := a.Concat(b)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumRows() != 2 {
		t.Errorf("concat rows = %d", c.NumRows())
	}
	bad := MustNew("bad", []string{"x", "y"}, []Kind{KindInt, KindInt})
	if _, err := a.Concat(bad); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestEqualDataIgnoresRowOrder(t *testing.T) {
	a := MustNew("a", []string{"x"}, []Kind{KindInt})
	a.MustAppendRow(Int(1))
	a.MustAppendRow(Int(2))
	b := MustNew("b", []string{"y"}, []Kind{KindInt})
	b.MustAppendRow(Int(2))
	b.MustAppendRow(Int(1))
	if !EqualData(a, b) {
		t.Error("permuted rows should be equal")
	}
	b.MustAppendRow(Int(1))
	if EqualData(a, b) {
		t.Error("different multiplicities should not be equal")
	}
}

func TestEqualDataFloatIntUnification(t *testing.T) {
	a := MustNew("a", []string{"x"}, []Kind{KindFloat})
	a.MustAppendRow(Float(3.0))
	b := MustNew("b", []string{"x"}, []Kind{KindInt})
	b.MustAppendRow(Int(3))
	if !EqualData(a, b) {
		t.Error("3.0 and 3 should compare equal under EX semantics")
	}
}

func TestValueCompareAcrossKinds(t *testing.T) {
	if Compare(Int(2), Float(2.0)) != 0 {
		t.Error("2 vs 2.0")
	}
	if Compare(Null(), Int(0)) != -1 {
		t.Error("NULL should sort first")
	}
	if Compare(Str("a"), Str("b")) != -1 {
		t.Error("string compare")
	}
	t1 := Time(time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC))
	t2 := Time(time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC))
	if Compare(t1, t2) != -1 {
		t.Error("time compare")
	}
}

func TestInfer(t *testing.T) {
	cases := []struct {
		in   string
		kind Kind
	}{
		{"42", KindInt},
		{"3.14", KindFloat},
		{"true", KindBool},
		{"2023-05-01", KindTime},
		{"hello", KindString},
		{"", KindNull},
		{"  ", KindNull},
	}
	for _, c := range cases {
		if got := Infer(c.in).Kind; got != c.kind {
			t.Errorf("Infer(%q).Kind = %v, want %v", c.in, got, c.kind)
		}
	}
}

func TestReadCSV(t *testing.T) {
	csvData := "region,amount,when\neast,100,2023-01-02\nwest,250.5,2023-02-03\n"
	tbl, err := ReadCSV("sales", strings.NewReader(csvData))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 || tbl.NumCols() != 3 {
		t.Fatalf("shape = %dx%d", tbl.NumRows(), tbl.NumCols())
	}
	if tbl.Column("when").Kind != KindTime {
		t.Errorf("when kind = %v, want time", tbl.Column("when").Kind)
	}
	if tbl.Get(1, "amount").Kind != KindFloat {
		t.Errorf("amount should coerce to first-seen kind")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := sampleSales(t)
	var sb strings.Builder
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("sales", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !EqualData(tbl, back) {
		t.Error("CSV round trip changed data")
	}
}

func TestProfileStats(t *testing.T) {
	tbl := sampleSales(t)
	stats := tbl.Profile(3)
	if len(stats) != 4 {
		t.Fatalf("stats for %d columns", len(stats))
	}
	amount := stats[2]
	if !amount.IsNumeric {
		t.Error("amount should be numeric")
	}
	if amount.Min.F != 75 || amount.Max.F != 300 {
		t.Errorf("amount min/max = %v/%v", amount.Min, amount.Max)
	}
	if amount.Mean != 170 {
		t.Errorf("amount mean = %v, want 170", amount.Mean)
	}
	region := stats[0]
	if !region.IsCategorical {
		t.Error("region should be categorical")
	}
	if region.Distinct != 2 {
		t.Errorf("region distinct = %d", region.Distinct)
	}
	if len(region.SampleValues) == 0 {
		t.Error("expected sample values")
	}
}

func TestProfileTemporalDetection(t *testing.T) {
	tbl := MustNew("t", []string{"ftime", "other"}, []Kind{KindString, KindString})
	tbl.MustAppendRow(Str("20230101"), Str("x"))
	stats := tbl.Profile(1)
	if !stats[0].IsTimeLike {
		t.Error("ftime should be detected as time-like by name")
	}
	if stats[1].IsTimeLike {
		t.Error("other should not be time-like")
	}
}

func TestSliceBounds(t *testing.T) {
	tbl := sampleSales(t)
	if got := tbl.Slice(-5, 100).NumRows(); got != 5 {
		t.Errorf("clamped slice rows = %d", got)
	}
	if got := tbl.Slice(4, 2).NumRows(); got != 0 {
		t.Errorf("inverted slice rows = %d", got)
	}
}
