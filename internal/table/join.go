package table

import (
	"fmt"
	"strings"
)

// JoinKind selects the join semantics.
type JoinKind uint8

const (
	// JoinInner keeps only matched (left, right) row pairs.
	JoinInner JoinKind = iota
	// JoinLeft keeps every left row; unmatched left rows pad the right
	// side with NULLs.
	JoinLeft
	// JoinRight keeps every right row; unmatched right rows pad the left
	// side with NULLs. Output rows follow right-row order.
	JoinRight
	// JoinFull keeps every row of both sides: the inner matches in
	// left-probe order, then the unmatched right rows (left side padded)
	// appended in ascending right-row order.
	JoinFull
)

// String returns the SQL spelling of the join kind.
func (k JoinKind) String() string {
	switch k {
	case JoinLeft:
		return "LEFT"
	case JoinRight:
		return "RIGHT"
	case JoinFull:
		return "FULL"
	default:
		return "INNER"
	}
}

// JoinPairs is a join's match list: one entry per output row, kept as
// parallel per-side row-index lists plus explicit null masks for
// outer-join padding — never -1 sentinel indices. A nil mask means that
// side can never be padded by the join's kind (and its index list is a
// candidate for span-form gathering when strictly ascending). Shared by
// Table.Join and the SQL engine's parallel join pipeline, so the
// pair-emission and sweep bookkeeping exist exactly once.
type JoinPairs struct {
	Lidx  []int
	Ridx  []int
	Lnull []bool // non-nil ⇒ RIGHT/FULL padding may blank left cells
	Rnull []bool // non-nil ⇒ LEFT/FULL padding may blank right cells
}

// NewJoinPairs allocates the pair list for a join kind, with the null
// masks that kind can need (non-nil but empty, so appends stay aligned).
func NewJoinPairs(kind JoinKind) *JoinPairs {
	p := &JoinPairs{}
	if kind == JoinRight || kind == JoinFull {
		p.Lnull = []bool{}
	}
	if kind == JoinLeft || kind == JoinFull {
		p.Rnull = []bool{}
	}
	return p
}

// Len returns the number of output rows.
func (p *JoinPairs) Len() int { return len(p.Lidx) }

// Match appends a matched (left row, right row) pair.
func (p *JoinPairs) Match(l, r int) {
	p.Lidx = append(p.Lidx, l)
	p.Ridx = append(p.Ridx, r)
	if p.Lnull != nil {
		p.Lnull = append(p.Lnull, false)
	}
	if p.Rnull != nil {
		p.Rnull = append(p.Rnull, false)
	}
}

// PadRight appends left row l with a NULL-padded right side (LEFT/FULL).
func (p *JoinPairs) PadRight(l int) {
	p.Lidx = append(p.Lidx, l)
	p.Ridx = append(p.Ridx, 0)
	if p.Lnull != nil {
		p.Lnull = append(p.Lnull, false)
	}
	p.Rnull = append(p.Rnull, true)
}

// PadLeft appends right row r with a NULL-padded left side (RIGHT/FULL).
func (p *JoinPairs) PadLeft(r int) {
	p.Lidx = append(p.Lidx, 0)
	p.Ridx = append(p.Ridx, r)
	p.Lnull = append(p.Lnull, true)
	if p.Rnull != nil {
		p.Rnull = append(p.Rnull, false)
	}
}

// Concat appends q's pairs to p (chunk merge; concatenating chunk-local
// lists in chunk order reproduces a serial probe's output order).
func (p *JoinPairs) Concat(q *JoinPairs) {
	if q == nil {
		return
	}
	p.Lidx = append(p.Lidx, q.Lidx...)
	p.Ridx = append(p.Ridx, q.Ridx...)
	if p.Lnull != nil {
		p.Lnull = append(p.Lnull, q.Lnull...)
	}
	if p.Rnull != nil {
		p.Rnull = append(p.Rnull, q.Rnull...)
	}
}

// SweepUnmatchedRight appends, for a FULL join, the right-side rows no
// surviving pair matched — left-padded, in ascending row order. This is
// the final step that defines FULL OUTER output order.
func (p *JoinPairs) SweepUnmatchedRight(nright int) {
	matched := make([]bool, nright)
	for i, r := range p.Ridx {
		if p.Rnull == nil || !p.Rnull[i] {
			matched[r] = true
		}
	}
	for r := 0; r < nright; r++ {
		if !matched[r] {
			p.PadLeft(r)
		}
	}
}

// Join hash-joins t (left) with right on leftCol = rightCol. Output columns
// are all left columns followed by all right columns; name collisions on the
// right are disambiguated with the right table's name as a prefix.
//
// The join materializes matched (left, right) row-index pairs and then
// gathers each output column in one pass over columnar storage, with typed
// fast paths for int and string keys that avoid boxing and key-string
// allocation entirely. Outer-join padding is carried as an explicit null
// mask handed to GatherPairs, not as sentinel indices.
func (t *Table) Join(right *Table, leftCol, rightCol string, kind JoinKind) (*Table, error) {
	li := t.ColumnIndex(leftCol)
	if li < 0 {
		return nil, fmt.Errorf("join: unknown left column %q on %s", leftCol, t.Name)
	}
	ri := right.ColumnIndex(rightCol)
	if ri < 0 {
		return nil, fmt.Errorf("join: unknown right column %q on %s", rightCol, right.Name)
	}

	pairs := hashJoinPairs(&t.Columns[li], &right.Columns[ri], kind)

	out := &Table{Name: t.Name + "_" + right.Name}
	taken := make(map[string]bool, len(t.Columns)+len(right.Columns))
	for i := range t.Columns {
		taken[strings.ToLower(t.Columns[i].Name)] = true
		out.Columns = append(out.Columns, t.Columns[i].GatherPairs(pairs.Lidx, pairs.Lnull))
	}
	for i := range right.Columns {
		name := right.Columns[i].Name
		if taken[strings.ToLower(name)] {
			name = right.Name + "." + right.Columns[i].Name
		}
		taken[strings.ToLower(name)] = true
		col := right.Columns[i].GatherPairs(pairs.Ridx, pairs.Rnull)
		col.Name = name
		out.Columns = append(out.Columns, col)
	}
	return out, nil
}

// hashJoinPairs computes the pair list for a single-key equi-join on
// lc = rc. Inner, left, and full joins probe left rows in order; right
// joins probe right rows in order, so their output follows the preserved
// (right) side. Full joins sweep the unmatched right rows after the
// probe, in ascending right-row order.
func hashJoinPairs(lc, rc *Column, kind JoinKind) *JoinPairs {
	pairs := NewJoinPairs(kind)

	if kind == JoinRight {
		probe := NewHashProbe([]*Column{rc}, []*Column{lc})
		for r, n := 0, rc.Len(); r < n; r++ {
			matches := probe(r)
			if len(matches) == 0 {
				pairs.PadLeft(r)
				continue
			}
			for _, l := range matches {
				pairs.Match(l, r)
			}
		}
		return pairs
	}

	probe := NewHashProbe([]*Column{lc}, []*Column{rc})
	for l, n := 0, lc.Len(); l < n; l++ {
		matches := probe(l)
		if len(matches) == 0 {
			if kind != JoinInner {
				pairs.PadRight(l)
			}
			continue
		}
		for _, r := range matches {
			pairs.Match(l, r)
		}
	}
	if kind == JoinFull {
		pairs.SweepUnmatchedRight(rc.Len())
	}
	return pairs
}

// NewHashProbe builds a hash index over the key columns of the right side
// and returns a probe from a left-row index to the matching right rows.
// lcols and rcols pair up positionally (lcols[i] = rcols[i]); a NULL in any
// key column never matches. Single typed int and string keys use typed
// maps; composite or mixed keys hash concatenated canonical Value keys, so
// numeric kinds unify (an int column still joins against a float column).
// Shared by table.Join and the SQL engine's hash equi-join.
func NewHashProbe(lcols, rcols []*Column) func(leftRow int) []int {
	if len(lcols) == 1 {
		left, right := lcols[0], rcols[0]
		if lInts, lNulls, ok := left.Ints(); ok {
			if rInts, rNulls, ok2 := right.Ints(); ok2 {
				index := make(map[int64][]int, len(rInts))
				for r, v := range rInts {
					if !rNulls[r] {
						index[v] = append(index[v], r)
					}
				}
				return func(l int) []int {
					if lNulls[l] {
						return nil
					}
					return index[lInts[l]]
				}
			}
		}
		if lStrs, lNulls, ok := left.Strings(); ok {
			if rStrs, rNulls, ok2 := right.Strings(); ok2 {
				index := make(map[string][]int, len(rStrs))
				for r, v := range rStrs {
					if !rNulls[r] {
						index[v] = append(index[v], r)
					}
				}
				return func(l int) []int {
					if lNulls[l] {
						return nil
					}
					return index[lStrs[l]]
				}
			}
		}
	}
	keyAt := func(cols []*Column, row int) (string, bool) {
		var kb strings.Builder
		for _, c := range cols {
			v := c.Value(row)
			if v.IsNull() {
				return "", false
			}
			kb.WriteString(v.Key())
			kb.WriteByte('\x1f')
		}
		return kb.String(), true
	}
	n := 0
	if len(rcols) > 0 {
		n = rcols[0].Len()
	}
	index := make(map[string][]int, n)
	for r := 0; r < n; r++ {
		if k, ok := keyAt(rcols, r); ok {
			index[k] = append(index[k], r)
		}
	}
	return func(l int) []int {
		k, ok := keyAt(lcols, l)
		if !ok {
			return nil
		}
		return index[k]
	}
}

// Concat appends the rows of other to a copy of t. Schemas must match in
// arity; columns align positionally and values are coerced to t's kinds.
func (t *Table) Concat(other *Table) (*Table, error) {
	if t.NumCols() != other.NumCols() {
		return nil, fmt.Errorf("concat: %d vs %d columns", t.NumCols(), other.NumCols())
	}
	out := t.Clone()
	for i := range out.Columns {
		src := &other.Columns[i]
		out.Columns[i].Grow(src.Len())
		for r, m := 0, src.Len(); r < m; r++ {
			out.Columns[i].Append(src.Value(r).Coerce(out.Columns[i].Kind))
		}
	}
	return out, nil
}
