package table

import (
	"fmt"
	"strings"
)

// JoinKind selects the join semantics.
type JoinKind uint8

const (
	JoinInner JoinKind = iota
	JoinLeft
)

// Join hash-joins t (left) with right on leftCol = rightCol. Output columns
// are all left columns followed by all right columns; name collisions on the
// right are disambiguated with the right table's name as a prefix.
//
// The join materializes matched (left, right) row-index pairs and then
// gathers each output column in one pass over columnar storage, with typed
// fast paths for int and string keys that avoid boxing and key-string
// allocation entirely.
func (t *Table) Join(right *Table, leftCol, rightCol string, kind JoinKind) (*Table, error) {
	li := t.ColumnIndex(leftCol)
	if li < 0 {
		return nil, fmt.Errorf("join: unknown left column %q on %s", leftCol, t.Name)
	}
	ri := right.ColumnIndex(rightCol)
	if ri < 0 {
		return nil, fmt.Errorf("join: unknown right column %q on %s", rightCol, right.Name)
	}

	lidx, ridx := hashJoinIndices(&t.Columns[li], &right.Columns[ri], kind)

	out := &Table{Name: t.Name + "_" + right.Name}
	taken := make(map[string]bool, len(t.Columns)+len(right.Columns))
	for i := range t.Columns {
		taken[strings.ToLower(t.Columns[i].Name)] = true
		out.Columns = append(out.Columns, t.Columns[i].Gather(lidx))
	}
	for i := range right.Columns {
		name := right.Columns[i].Name
		if taken[strings.ToLower(name)] {
			name = right.Name + "." + right.Columns[i].Name
		}
		taken[strings.ToLower(name)] = true
		col := right.Columns[i].Gather(ridx)
		col.Name = name
		out.Columns = append(out.Columns, col)
	}
	return out, nil
}

// hashJoinIndices computes the matched row-index pairs for an equi-join on
// lc = rc. For left joins, unmatched left rows pair with -1 (NULL padding
// in Gather).
func hashJoinIndices(lc, rc *Column, kind JoinKind) (lidx, ridx []int) {
	probe := NewHashProbe([]*Column{lc}, []*Column{rc})
	for l, n := 0, lc.Len(); l < n; l++ {
		matches := probe(l)
		if len(matches) == 0 {
			if kind == JoinLeft {
				lidx = append(lidx, l)
				ridx = append(ridx, -1)
			}
			continue
		}
		for _, r := range matches {
			lidx = append(lidx, l)
			ridx = append(ridx, r)
		}
	}
	return lidx, ridx
}

// NewHashProbe builds a hash index over the key columns of the right side
// and returns a probe from a left-row index to the matching right rows.
// lcols and rcols pair up positionally (lcols[i] = rcols[i]); a NULL in any
// key column never matches. Single typed int and string keys use typed
// maps; composite or mixed keys hash concatenated canonical Value keys, so
// numeric kinds unify (an int column still joins against a float column).
// Shared by table.Join and the SQL engine's hash equi-join.
func NewHashProbe(lcols, rcols []*Column) func(leftRow int) []int {
	if len(lcols) == 1 {
		left, right := lcols[0], rcols[0]
		if lInts, lNulls, ok := left.Ints(); ok {
			if rInts, rNulls, ok2 := right.Ints(); ok2 {
				index := make(map[int64][]int, len(rInts))
				for r, v := range rInts {
					if !rNulls[r] {
						index[v] = append(index[v], r)
					}
				}
				return func(l int) []int {
					if lNulls[l] {
						return nil
					}
					return index[lInts[l]]
				}
			}
		}
		if lStrs, lNulls, ok := left.Strings(); ok {
			if rStrs, rNulls, ok2 := right.Strings(); ok2 {
				index := make(map[string][]int, len(rStrs))
				for r, v := range rStrs {
					if !rNulls[r] {
						index[v] = append(index[v], r)
					}
				}
				return func(l int) []int {
					if lNulls[l] {
						return nil
					}
					return index[lStrs[l]]
				}
			}
		}
	}
	keyAt := func(cols []*Column, row int) (string, bool) {
		var kb strings.Builder
		for _, c := range cols {
			v := c.Value(row)
			if v.IsNull() {
				return "", false
			}
			kb.WriteString(v.Key())
			kb.WriteByte('\x1f')
		}
		return kb.String(), true
	}
	n := 0
	if len(rcols) > 0 {
		n = rcols[0].Len()
	}
	index := make(map[string][]int, n)
	for r := 0; r < n; r++ {
		if k, ok := keyAt(rcols, r); ok {
			index[k] = append(index[k], r)
		}
	}
	return func(l int) []int {
		k, ok := keyAt(lcols, l)
		if !ok {
			return nil
		}
		return index[k]
	}
}

// Concat appends the rows of other to a copy of t. Schemas must match in
// arity; columns align positionally and values are coerced to t's kinds.
func (t *Table) Concat(other *Table) (*Table, error) {
	if t.NumCols() != other.NumCols() {
		return nil, fmt.Errorf("concat: %d vs %d columns", t.NumCols(), other.NumCols())
	}
	out := t.Clone()
	for i := range out.Columns {
		src := &other.Columns[i]
		out.Columns[i].Grow(src.Len())
		for r, m := 0, src.Len(); r < m; r++ {
			out.Columns[i].Append(src.Value(r).Coerce(out.Columns[i].Kind))
		}
	}
	return out, nil
}
