package table

import (
	"fmt"
	"strings"
)

// JoinKind selects the join semantics.
type JoinKind uint8

const (
	JoinInner JoinKind = iota
	JoinLeft
)

// Join hash-joins t (left) with right on leftCol = rightCol. Output columns
// are all left columns followed by all right columns; name collisions on the
// right are disambiguated with the right table's name as a prefix.
func (t *Table) Join(right *Table, leftCol, rightCol string, kind JoinKind) (*Table, error) {
	li := t.ColumnIndex(leftCol)
	if li < 0 {
		return nil, fmt.Errorf("join: unknown left column %q on %s", leftCol, t.Name)
	}
	ri := right.ColumnIndex(rightCol)
	if ri < 0 {
		return nil, fmt.Errorf("join: unknown right column %q on %s", rightCol, right.Name)
	}

	// Build hash index over the right side.
	index := make(map[string][]int, right.NumRows())
	for r, n := 0, right.NumRows(); r < n; r++ {
		v := right.Columns[ri].Values[r]
		if v.IsNull() {
			continue // NULL never matches in a join predicate
		}
		k := v.Key()
		index[k] = append(index[k], r)
	}

	out := &Table{Name: t.Name + "_" + right.Name}
	taken := make(map[string]bool, len(t.Columns)+len(right.Columns))
	for _, c := range t.Columns {
		taken[strings.ToLower(c.Name)] = true
		out.Columns = append(out.Columns, Column{Name: c.Name, Kind: c.Kind})
	}
	rightNames := make([]string, len(right.Columns))
	for i, c := range right.Columns {
		name := c.Name
		if taken[strings.ToLower(name)] {
			name = right.Name + "." + c.Name
		}
		taken[strings.ToLower(name)] = true
		rightNames[i] = name
		out.Columns = append(out.Columns, Column{Name: name, Kind: c.Kind})
	}

	appendJoined := func(lr, rr int) {
		for j := range t.Columns {
			out.Columns[j].Values = append(out.Columns[j].Values, t.Columns[j].Values[lr])
		}
		for j := range right.Columns {
			var v Value
			if rr >= 0 {
				v = right.Columns[j].Values[rr]
			}
			out.Columns[len(t.Columns)+j].Values = append(out.Columns[len(t.Columns)+j].Values, v)
		}
	}

	for lr, n := 0, t.NumRows(); lr < n; lr++ {
		v := t.Columns[li].Values[lr]
		var matches []int
		if !v.IsNull() {
			matches = index[v.Key()]
		}
		if len(matches) == 0 {
			if kind == JoinLeft {
				appendJoined(lr, -1)
			}
			continue
		}
		for _, rr := range matches {
			appendJoined(lr, rr)
		}
	}
	return out, nil
}

// Concat appends the rows of other to a copy of t. Schemas must match in
// arity; columns align positionally and values are coerced to t's kinds.
func (t *Table) Concat(other *Table) (*Table, error) {
	if t.NumCols() != other.NumCols() {
		return nil, fmt.Errorf("concat: %d vs %d columns", t.NumCols(), other.NumCols())
	}
	out := t.Clone()
	for i := range out.Columns {
		for _, v := range other.Columns[i].Values {
			out.Columns[i].Values = append(out.Columns[i].Values, v.Coerce(out.Columns[i].Kind))
		}
	}
	return out, nil
}
