package table

import "sort"

// Span is a half-open row range [Lo, Hi): Lo is the first row covered,
// Hi the first row past the end.
type Span struct{ Lo, Hi int }

// Selection is an ordered set of row indices — the engine's description of
// which rows of a relation survive a filter. It has two concrete
// representations chosen by construction:
//
//   - span form: a sorted list of disjoint, non-adjacent [Lo,Hi) ranges.
//     Contiguous runs of passing rows (clustered predicates, all-passing
//     chunks) cost two ints per run no matter how many rows they cover,
//     and downstream gathers turn into zero-copy views or memcpy-style
//     range copies.
//   - dense form: an ascending []int of row indices, the classic selection
//     vector, used when passing rows are scattered and runs are short.
//
// A Selection is immutable after construction and safe to share across
// goroutines. Methods are nil-receiver safe and treat nil as empty; note
// that the SQL engine separately uses a nil *Selection to mean "all rows"
// and checks for nil before calling any method here.
type Selection struct {
	spans []Span // span form when idx == nil
	idx   []int  // dense form when non-nil
	count int
}

// NewSpanSelection builds a span-form selection. Spans are normalized:
// empty spans are dropped, out-of-order spans sorted, and overlapping or
// adjacent spans merged, so the invariants above hold for any input.
func NewSpanSelection(spans ...Span) *Selection {
	norm := normalizeSpans(spans)
	n := 0
	for _, sp := range norm {
		n += sp.Hi - sp.Lo
	}
	return &Selection{spans: norm, count: n}
}

// normalizeSpans sorts, drops empties, and merges overlap/adjacency. The
// input slice is not retained unless it is already normalized.
func normalizeSpans(spans []Span) []Span {
	sorted := true
	kept := 0
	for i, sp := range spans {
		if sp.Hi <= sp.Lo {
			sorted = false // force the copying path to drop empties
			continue
		}
		kept++
		if i > 0 && spans[i-1].Hi >= sp.Lo {
			sorted = false
		}
	}
	if sorted && kept == len(spans) {
		return spans
	}
	work := make([]Span, 0, kept)
	for _, sp := range spans {
		if sp.Hi > sp.Lo {
			work = append(work, sp)
		}
	}
	sort.Slice(work, func(a, b int) bool { return work[a].Lo < work[b].Lo })
	out := work[:0]
	for _, sp := range work {
		if n := len(out); n > 0 && sp.Lo <= out[n-1].Hi {
			if sp.Hi > out[n-1].Hi {
				out[n-1].Hi = sp.Hi
			}
			continue
		}
		out = append(out, sp)
	}
	return out
}

// NewIndexSelection builds a dense-form selection. An already strictly
// ascending index slice is adopted as-is (no copy); otherwise it is
// sorted and deduplicated into fresh storage. Indices must be >= 0.
func NewIndexSelection(idx []int) *Selection {
	ascending := true
	for i := 1; i < len(idx); i++ {
		if idx[i] <= idx[i-1] {
			ascending = false
			break
		}
	}
	if !ascending {
		cp := append([]int(nil), idx...)
		sort.Ints(cp)
		out := cp[:0]
		for i, v := range cp {
			if i == 0 || v != cp[i-1] {
				out = append(out, v)
			}
		}
		idx = out
	}
	if idx == nil {
		idx = []int{}
	}
	return &Selection{idx: idx, count: len(idx)}
}

// SelectionFromAscending builds a selection from an already strictly
// ascending, non-negative index list, detecting contiguous runs to pick
// span form (the join output path uses this: a probe where consecutive
// left rows each match once yields long runs, and span gathering copies
// them range-at-a-time). ok=false — and no selection — when idx is not
// strictly ascending or starts below zero; callers fall back to raw
// gathering. Dense-form results adopt idx without copying.
func SelectionFromAscending(idx []int) (*Selection, bool) {
	if len(idx) > 0 && idx[0] < 0 {
		return nil, false
	}
	runs := 0
	for i := 0; i < len(idx); i++ {
		if i > 0 && idx[i] <= idx[i-1] {
			return nil, false
		}
		if i == 0 || idx[i] != idx[i-1]+1 {
			runs++
		}
	}
	count := len(idx)
	if count == 0 {
		return &Selection{}, true
	}
	if 2*runs > count {
		return &Selection{idx: idx, count: count}, true
	}
	spans := make([]Span, 0, runs)
	lo := idx[0]
	for i := 1; i < count; i++ {
		if idx[i] != idx[i-1]+1 {
			spans = append(spans, Span{lo, idx[i-1] + 1})
			lo = idx[i]
		}
	}
	spans = append(spans, Span{lo, idx[count-1] + 1})
	return &Selection{spans: spans, count: count}, true
}

// SelectionFromMask builds the selection of set positions in mask, shifted
// by offset (so mask[i] selects row offset+i). The representation is chosen
// by density: runs of set bits become spans unless the runs are so short
// that dense indices are smaller. A counting pass picks the form first so
// exactly one right-sized slice is allocated — scattered masks never build
// a throwaway span list.
func SelectionFromMask(mask []bool, offset int) *Selection {
	return selectionFromRunScan(len(mask), offset, func(i int) bool { return mask[i] })
}

// SelectionFromBools is SelectionFromMask for a boolean column's typed
// storage: position i is selected when vals[i] is true and nulls[i] is
// false, without materializing an intermediate mask. This is the WHERE
// hot path, so the scan loops are hand-specialized rather than sharing
// selectionFromRunScan's predicate indirection.
func SelectionFromBools(vals, nulls []bool, offset int) *Selection {
	n := len(vals)
	count, runs := 0, 0
	prev := false
	for i := 0; i < n; i++ {
		s := vals[i] && !nulls[i]
		if s {
			count++
			if !prev {
				runs++
			}
		}
		prev = s
	}
	if count == 0 {
		return &Selection{}
	}
	if 2*runs > count {
		idx := make([]int, 0, count)
		for i := 0; i < n; i++ {
			if vals[i] && !nulls[i] {
				idx = append(idx, offset+i)
			}
		}
		return &Selection{idx: idx, count: count}
	}
	spans := make([]Span, 0, runs)
	for i := 0; i < n; {
		if !vals[i] || nulls[i] {
			i++
			continue
		}
		j := i + 1
		for j < n && vals[j] && !nulls[j] {
			j++
		}
		spans = append(spans, Span{offset + i, offset + j})
		i = j
	}
	return &Selection{spans: spans, count: count}
}

// selectionFromRunScan scans positions [0, n) with the set predicate twice:
// once to count set bits and runs (choosing the representation), once to
// fill the chosen slice.
func selectionFromRunScan(n, offset int, set func(i int) bool) *Selection {
	count, runs := 0, 0
	prev := false
	for i := 0; i < n; i++ {
		s := set(i)
		if s {
			count++
			if !prev {
				runs++
			}
		}
		prev = s
	}
	if count == 0 {
		return &Selection{}
	}
	if 2*runs > count {
		idx := make([]int, 0, count)
		for i := 0; i < n; i++ {
			if set(i) {
				idx = append(idx, offset+i)
			}
		}
		return &Selection{idx: idx, count: count}
	}
	spans := make([]Span, 0, runs)
	for i := 0; i < n; {
		if !set(i) {
			i++
			continue
		}
		j := i + 1
		for j < n && set(j) {
			j++
		}
		spans = append(spans, Span{offset + i, offset + j})
		i = j
	}
	return &Selection{spans: spans, count: count}
}

func expandSpans(spans []Span, count int) []int {
	idx := make([]int, 0, count)
	for _, sp := range spans {
		for r := sp.Lo; r < sp.Hi; r++ {
			idx = append(idx, r)
		}
	}
	return idx
}

// MergeSelections concatenates parts covering ascending disjoint row
// regions (e.g. per-chunk filter results) into one selection, merging
// runs that touch across part boundaries. The combined representation is
// re-chosen by the same global density rule as SelectionFromMask — runs
// are counted across all parts (dense parts contribute their runs of
// consecutive indices), so one scattered chunk among many clustered ones
// does not degrade the whole result to a per-row index vector.
func MergeSelections(parts []*Selection) *Selection {
	total, runs := 0, 0
	for _, p := range parts {
		if p == nil {
			continue
		}
		total += p.count
		runs += len(p.spans)
		for i, r := range p.idx {
			if i == 0 || r != p.idx[i-1]+1 {
				runs++
			}
		}
	}
	if 2*runs > total {
		idx := make([]int, 0, total)
		for _, p := range parts {
			idx = p.AppendIndices(idx)
		}
		return &Selection{idx: idx, count: total}
	}
	spans := make([]Span, 0, runs)
	push := func(sp Span) {
		if n := len(spans); n > 0 && spans[n-1].Hi == sp.Lo {
			spans[n-1].Hi = sp.Hi
			return
		}
		spans = append(spans, sp)
	}
	for _, p := range parts {
		if p == nil {
			continue
		}
		for _, sp := range p.spans {
			push(sp)
		}
		for i := 0; i < len(p.idx); {
			j := i + 1
			for j < len(p.idx) && p.idx[j] == p.idx[j-1]+1 {
				j++
			}
			push(Span{p.idx[i], p.idx[j-1] + 1})
			i = j
		}
	}
	return &Selection{spans: spans, count: total}
}

// Len returns the number of selected rows.
func (s *Selection) Len() int {
	if s == nil {
		return 0
	}
	return s.count
}

// Spans returns the span list and true when the selection is span-form.
func (s *Selection) Spans() ([]Span, bool) {
	if s == nil {
		return nil, true
	}
	return s.spans, s.idx == nil
}

// AsRange reports whether the selection is a single contiguous range
// (including the empty selection, as [0,0)) and returns its bounds. A
// dense-form selection never reports true, even if its indices happen to
// be contiguous: form is fixed at construction.
func (s *Selection) AsRange() (lo, hi int, ok bool) {
	if s == nil || (s.idx == nil && len(s.spans) == 0) {
		return 0, 0, true
	}
	if s.idx == nil && len(s.spans) == 1 {
		return s.spans[0].Lo, s.spans[0].Hi, true
	}
	return 0, 0, false
}

// Indices returns the selected rows as an ascending index slice. For
// dense-form selections this is the internal slice (callers must not
// mutate it); span form materializes a fresh slice.
func (s *Selection) Indices() []int {
	if s == nil {
		return nil
	}
	if s.idx != nil {
		return s.idx
	}
	return expandSpans(s.spans, s.count)
}

// AppendIndices appends the selected rows to dst in ascending order.
func (s *Selection) AppendIndices(dst []int) []int {
	if s == nil {
		return dst
	}
	if s.idx != nil {
		return append(dst, s.idx...)
	}
	for _, sp := range s.spans {
		for r := sp.Lo; r < sp.Hi; r++ {
			dst = append(dst, r)
		}
	}
	return dst
}

// RowAt returns the i-th selected row (0 <= i < Len). Dense form is O(1);
// span form walks the span list. Any i is out of range for a nil
// (empty) selection.
func (s *Selection) RowAt(i int) int {
	if s == nil || i < 0 || i >= s.count {
		panic("table: Selection.RowAt out of range")
	}
	if s.idx != nil {
		return s.idx[i]
	}
	for _, sp := range s.spans {
		if n := sp.Hi - sp.Lo; i < n {
			return sp.Lo + i
		} else {
			i -= n
		}
	}
	panic("table: Selection.RowAt out of range")
}

// ForEach calls fn for every selected row in ascending order.
func (s *Selection) ForEach(fn func(row int)) {
	if s == nil {
		return
	}
	if s.idx != nil {
		for _, r := range s.idx {
			fn(r)
		}
		return
	}
	for _, sp := range s.spans {
		for r := sp.Lo; r < sp.Hi; r++ {
			fn(r)
		}
	}
}

// Truncate returns a selection of the first k selected rows. The result
// shares storage with s where possible; k >= Len returns s itself.
func (s *Selection) Truncate(k int) *Selection {
	if k < 0 {
		k = 0
	}
	if s == nil || k >= s.count {
		return s
	}
	if s.idx != nil {
		return &Selection{idx: s.idx[:k], count: k}
	}
	spans := make([]Span, 0, len(s.spans))
	left := k
	for _, sp := range s.spans {
		if left == 0 {
			break
		}
		n := sp.Hi - sp.Lo
		if n > left {
			n = left
		}
		spans = append(spans, Span{sp.Lo, sp.Lo + n})
		left -= n
	}
	return &Selection{spans: spans, count: k}
}

// Drop returns a selection of all but the first k selected rows — the
// complement of Truncate, used for OFFSET pushdown. The result shares
// storage with s where possible; k <= 0 returns s itself, k >= Len the
// empty selection.
func (s *Selection) Drop(k int) *Selection {
	if k <= 0 || s == nil {
		return s
	}
	if k >= s.count {
		return &Selection{}
	}
	if s.idx != nil {
		return &Selection{idx: s.idx[k:], count: s.count - k}
	}
	spans := make([]Span, 0, len(s.spans))
	skip := k
	for _, sp := range s.spans {
		n := sp.Hi - sp.Lo
		if skip >= n {
			skip -= n
			continue
		}
		spans = append(spans, Span{sp.Lo + skip, sp.Hi})
		skip = 0
	}
	return &Selection{spans: spans, count: s.count - k}
}

// SelectionIter iterates the rows of a selection without per-row closure
// calls, with the engine's "nil selects all of [0,n)" convention built in.
type SelectionIter struct {
	s       *Selection
	n       int // iteration bound for the nil (all-rows) case
	pos     int // next position (nil/dense) or row within current span
	span    int // current span index (span form)
	allRows bool
}

// IterSelection returns an iterator over s; a nil s iterates 0..n-1.
func IterSelection(s *Selection, n int) SelectionIter {
	if s == nil {
		return SelectionIter{n: n, allRows: true}
	}
	return SelectionIter{s: s}
}

// Next returns the next selected row, or ok=false when exhausted.
func (it *SelectionIter) Next() (row int, ok bool) {
	if it.allRows {
		if it.pos >= it.n {
			return 0, false
		}
		it.pos++
		return it.pos - 1, true
	}
	if it.s.idx != nil {
		if it.pos >= len(it.s.idx) {
			return 0, false
		}
		it.pos++
		return it.s.idx[it.pos-1], true
	}
	for it.span < len(it.s.spans) {
		sp := it.s.spans[it.span]
		if r := sp.Lo + it.pos; r < sp.Hi {
			it.pos++
			return r, true
		}
		it.span++
		it.pos = 0
	}
	return 0, false
}
