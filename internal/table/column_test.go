package table

import (
	"testing"
	"time"
)

func TestColumnTypedStorage(t *testing.T) {
	c := NewColumn("n", KindInt)
	c.Append(Int(1))
	c.AppendNull()
	c.Append(Int(3))
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	if !c.IsTyped() {
		t.Fatal("homogeneous int column should stay typed")
	}
	is, nulls, ok := c.Ints()
	if !ok || len(is) != 3 || is[0] != 1 || is[2] != 3 || !nulls[1] {
		t.Fatalf("Ints() = %v %v %v", is, nulls, ok)
	}
	if got := c.Value(1); !got.IsNull() {
		t.Errorf("Value(1) = %v, want NULL", got)
	}
	if got := c.Value(2); got.Kind != KindInt || got.I != 3 {
		t.Errorf("Value(2) = %v", got)
	}
	if _, _, ok := c.Floats(); ok {
		t.Error("Floats() should report ok=false on an int column")
	}
}

func TestColumnDegradesOnMixedKinds(t *testing.T) {
	c := NewColumn("m", KindInt)
	c.Append(Int(1))
	c.Append(Float(2.5)) // mismatched kind: degrade to boxed
	c.Append(Str("x"))
	if c.IsTyped() {
		t.Fatal("mixed column should be boxed")
	}
	if _, _, ok := c.Ints(); ok {
		t.Error("Ints() must fail on boxed column")
	}
	want := []Value{Int(1), Float(2.5), Str("x")}
	for i, w := range want {
		if got := c.Value(i); !Equal(got, w) || got.Kind != w.Kind {
			t.Errorf("Value(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestColumnSetDegrades(t *testing.T) {
	c := NewColumn("s", KindFloat)
	c.Append(Float(1))
	c.Append(Float(2))
	c.Set(0, Float(9))
	if fs, _, ok := c.Floats(); !ok || fs[0] != 9 {
		t.Fatalf("Set same-kind should stay typed: %v %v", fs, ok)
	}
	c.Set(1, Str("oops"))
	if c.IsTyped() {
		t.Fatal("Set with mismatched kind should degrade")
	}
	if got := c.Value(1); got.S != "oops" {
		t.Errorf("Value(1) = %v", got)
	}
	if got := c.Value(0); got.F != 9 {
		t.Errorf("Value(0) = %v", got)
	}
}

func TestColumnGatherWithNullPadding(t *testing.T) {
	c := NewColumn("g", KindString)
	for _, s := range []string{"a", "b", "c"} {
		c.Append(Str(s))
	}
	out := c.Gather([]int{2, -1, 0, 0})
	if out.Len() != 4 {
		t.Fatalf("len = %d", out.Len())
	}
	if v := out.Value(0); v.S != "c" {
		t.Errorf("out[0] = %v", v)
	}
	if !out.Value(1).IsNull() {
		t.Error("out[1] should be NULL (padded)")
	}
	if v := out.Value(3); v.S != "a" {
		t.Errorf("out[3] = %v", v)
	}
}

func TestColumnSliceAndCloneIndependence(t *testing.T) {
	c := NewColumn("i", KindInt)
	for i := 0; i < 5; i++ {
		c.Append(Int(int64(i)))
	}
	cp := c.CloneData()
	sl := c.SliceRange(1, 3)
	c.Set(1, Int(99))
	if cp.Value(1).I != 1 {
		t.Error("CloneData must not share storage")
	}
	if sl.Value(0).I != 1 {
		t.Error("SliceRange must not share storage")
	}
	if sl.Len() != 2 || sl.Value(1).I != 2 {
		t.Errorf("slice = %v", sl.Values())
	}
}

func TestColumnConstructorsAndValues(t *testing.T) {
	fc := ColumnFromFloats("f", []float64{1.5, 0}, []bool{false, true})
	if fc.Kind != KindFloat || fc.Len() != 2 {
		t.Fatalf("bad float column: %+v", fc)
	}
	if !fc.Value(1).IsNull() {
		t.Error("null bitmap ignored")
	}
	vals := fc.Values()
	if len(vals) != 2 || vals[0].F != 1.5 {
		t.Errorf("Values() = %v", vals)
	}
	bc := ColumnFromBools("b", []bool{true, false}, nil)
	if v, ok := bc.Value(0).AsBool(); !ok || !v {
		t.Error("bool column roundtrip failed")
	}
	sc := ColumnFromStrings("s", []string{"x"}, nil)
	if sc.Value(0).S != "x" {
		t.Error("string column roundtrip failed")
	}
	ic := ColumnFromInts("i", []int64{7}, nil)
	if ic.Value(0).I != 7 {
		t.Error("int column roundtrip failed")
	}
	mixed := ColumnOf("m", KindInt, []Value{Int(1), Str("two")})
	if mixed.IsTyped() {
		t.Error("ColumnOf with mixed values should degrade")
	}
	if mixed.Value(1).S != "two" {
		t.Errorf("mixed[1] = %v", mixed.Value(1))
	}
}

func TestColumnFloatAt(t *testing.T) {
	c := NewColumn("x", KindInt)
	c.Append(Int(4))
	c.AppendNull()
	if f, ok := c.FloatAt(0); !ok || f != 4 {
		t.Errorf("FloatAt(0) = %v %v", f, ok)
	}
	if _, ok := c.FloatAt(1); ok {
		t.Error("FloatAt on NULL should be !ok")
	}
	s := NewColumn("s", KindString)
	s.Append(Str("2.5"))
	s.Append(Str("nope"))
	if f, ok := s.FloatAt(0); !ok || f != 2.5 {
		t.Errorf("FloatAt numeric string = %v %v", f, ok)
	}
	if _, ok := s.FloatAt(1); ok {
		t.Error("FloatAt on non-numeric string should be !ok")
	}
}

func TestColumnTimeStorage(t *testing.T) {
	c := NewColumn("t", KindTime)
	now := time.Date(2024, 3, 1, 12, 0, 0, 0, time.UTC)
	c.Append(Time(now))
	c.AppendNull()
	ts, nulls, ok := c.Times()
	if !ok || !ts[0].Equal(now) || !nulls[1] {
		t.Fatalf("Times() = %v %v %v", ts, nulls, ok)
	}
	if v := c.Value(0); !v.T.Equal(now) {
		t.Errorf("Value(0) = %v", v)
	}
}

func TestTableStaysTypedThroughAppendRow(t *testing.T) {
	tb := MustNew("t", []string{"a", "b"}, []Kind{KindInt, KindString})
	// AppendRow coerces, so typed storage should survive string->int cells.
	tb.MustAppendRow(Str("42"), Str("x"))
	tb.MustAppendRow(Int(7), Null())
	if !tb.Columns[0].IsTyped() || !tb.Columns[1].IsTyped() {
		t.Fatal("coerced appends should keep typed storage")
	}
	is, _, ok := tb.Columns[0].Ints()
	if !ok || is[0] != 42 || is[1] != 7 {
		t.Fatalf("ints = %v %v", is, ok)
	}
}
