package table

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the column/value types the engine supports.
type Kind uint8

const (
	// KindNull is the kind of NULL cells and of columns with no typed
	// storage yet; it is the zero Kind.
	KindNull Kind = iota
	// KindInt is 64-bit integer storage.
	KindInt
	// KindFloat is 64-bit floating-point storage.
	KindFloat
	// KindString is string storage.
	KindString
	// KindBool is boolean storage.
	KindBool
	// KindTime is timestamp storage.
	KindTime
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "REAL"
	case KindString:
		return "TEXT"
	case KindBool:
		return "BOOLEAN"
	case KindTime:
		return "TIMESTAMP"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed cell value. The zero Value is NULL. Kind
// selects which of the payload fields below is meaningful; the others
// hold their zero values.
type Value struct {
	Kind Kind
	I    int64     // payload when Kind == KindInt
	F    float64   // payload when Kind == KindFloat
	S    string    // payload when Kind == KindString
	B    bool      // payload when Kind == KindBool
	T    time.Time // payload when Kind == KindTime
}

// Constructors.

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int wraps an int64.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Float wraps a float64.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// String wraps a string.
func Str(s string) Value { return Value{Kind: KindString, S: s} }

// Bool wraps a bool.
func Bool(b bool) Value { return Value{Kind: KindBool, B: b} }

// Time wraps a time.Time.
func Time(t time.Time) Value { return Value{Kind: KindTime, T: t} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// AsFloat converts numeric values to float64. Booleans convert to 0/1,
// times to Unix seconds. The second result is false for NULL and strings
// that do not parse as numbers.
func (v Value) AsFloat() (float64, bool) {
	switch v.Kind {
	case KindInt:
		return float64(v.I), true
	case KindFloat:
		return v.F, true
	case KindBool:
		if v.B {
			return 1, true
		}
		return 0, true
	case KindTime:
		return float64(v.T.Unix()), true
	case KindString:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
		return f, err == nil
	default:
		return 0, false
	}
}

// AsInt converts to int64 where lossless-ish; floats truncate.
func (v Value) AsInt() (int64, bool) {
	switch v.Kind {
	case KindInt:
		return v.I, true
	case KindFloat:
		return int64(v.F), true
	case KindBool:
		if v.B {
			return 1, true
		}
		return 0, true
	case KindString:
		i, err := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64)
		return i, err == nil
	default:
		return 0, false
	}
}

// AsString renders the value as a string; NULL renders as "".
func (v Value) AsString() string {
	switch v.Kind {
	case KindNull:
		return ""
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.B {
			return "true"
		}
		return "false"
	case KindTime:
		return v.T.Format("2006-01-02 15:04:05")
	default:
		return ""
	}
}

// AsBool interprets truthiness: non-zero numbers, "true"/"1" strings.
func (v Value) AsBool() (bool, bool) {
	switch v.Kind {
	case KindBool:
		return v.B, true
	case KindInt:
		return v.I != 0, true
	case KindFloat:
		return v.F != 0, true
	case KindString:
		s := strings.ToLower(strings.TrimSpace(v.S))
		if s == "true" || s == "1" {
			return true, true
		}
		if s == "false" || s == "0" {
			return false, true
		}
		return false, false
	default:
		return false, false
	}
}

// String implements fmt.Stringer for debugging output.
func (v Value) String() string {
	if v.IsNull() {
		return "NULL"
	}
	if v.Kind == KindString {
		return strconv.Quote(v.S)
	}
	return v.AsString()
}

// Compare orders two values. NULL sorts first. Numeric kinds compare
// numerically across Int/Float/Bool/Time; otherwise the string forms
// compare lexically. Returns -1, 0, or +1.
func Compare(a, b Value) int {
	an, bn := a.IsNull(), b.IsNull()
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	// Int pairs compare exactly in int64: float64 conversion would conflate
	// integers beyond 2^53, and the vectorized engine's typed int paths are
	// exact, so the scalar path must be too.
	if a.Kind == KindInt && b.Kind == KindInt {
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		default:
			return 0
		}
	}
	if isNumericKind(a.Kind) && isNumericKind(b.Kind) {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.Kind == KindTime && b.Kind == KindTime {
		switch {
		case a.T.Before(b.T):
			return -1
		case a.T.After(b.T):
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(a.AsString(), b.AsString())
}

func isNumericKind(k Kind) bool {
	return k == KindInt || k == KindFloat || k == KindBool
}

// Equal reports semantic equality under Compare. NULL equals NULL here
// (useful for grouping keys and result comparison; SQL three-valued logic
// is handled in the expression evaluator, not here).
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Key returns a canonical string key for grouping and multiset comparison.
// Floats are rounded to 9 decimal places so that arithmetic noise does not
// split groups or fail execution-accuracy checks.
func (v Value) Key() string {
	switch v.Kind {
	case KindNull:
		return "\x00null"
	case KindFloat:
		if v.F == math.Trunc(v.F) && math.Abs(v.F) < 1e15 {
			return "i:" + strconv.FormatInt(int64(v.F), 10)
		}
		return "f:" + strconv.FormatFloat(round9(v.F), 'g', -1, 64)
	case KindInt:
		return "i:" + strconv.FormatInt(v.I, 10)
	case KindBool:
		if v.B {
			return "i:1"
		}
		return "i:0"
	case KindTime:
		return "t:" + strconv.FormatInt(v.T.Unix(), 10)
	default:
		return "s:" + v.S
	}
}

func round9(f float64) float64 {
	return math.Round(f*1e9) / 1e9
}

// Coerce attempts to convert v to the target kind, returning NULL when the
// conversion is impossible. Used by CSV ingestion and schema alignment.
func (v Value) Coerce(k Kind) Value {
	if v.IsNull() || v.Kind == k {
		return v
	}
	switch k {
	case KindInt:
		if i, ok := v.AsInt(); ok {
			return Int(i)
		}
	case KindFloat:
		if f, ok := v.AsFloat(); ok {
			return Float(f)
		}
	case KindString:
		return Str(v.AsString())
	case KindBool:
		if b, ok := v.AsBool(); ok {
			return Bool(b)
		}
	case KindTime:
		if v.Kind == KindString {
			if t, ok := ParseTime(v.S); ok {
				return Time(t)
			}
		}
	}
	return Null()
}

// timeFormats are the layouts ParseTime attempts, most specific first.
var timeFormats = []string{
	"2006-01-02 15:04:05",
	time.RFC3339,
	"2006-01-02",
	"2006/01/02",
	"20060102",
	"2006-01",
}

// ParseTime parses the common date/timestamp layouts found in BI data.
func ParseTime(s string) (time.Time, bool) {
	s = strings.TrimSpace(s)
	for _, layout := range timeFormats {
		if t, err := time.Parse(layout, s); err == nil {
			return t, true
		}
	}
	return time.Time{}, false
}

// Infer guesses the most specific Value for a raw string: int, float, bool,
// time, then string. Empty strings become NULL.
func Infer(s string) Value {
	trimmed := strings.TrimSpace(s)
	if trimmed == "" {
		return Null()
	}
	if i, err := strconv.ParseInt(trimmed, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(trimmed, 64); err == nil {
		return Float(f)
	}
	switch strings.ToLower(trimmed) {
	case "true":
		return Bool(true)
	case "false":
		return Bool(false)
	}
	if t, ok := ParseTime(trimmed); ok {
		return Time(t)
	}
	return Str(s)
}
