// Package table implements the columnar in-memory dataframe engine that
// underpins DataLab: SQL cells execute against it, Python-cell data
// operations run on it, and the profiling/insight modules read statistics
// from it. It plays the role pandas plus the warehouse storage layer play
// in the paper's deployment.
//
// # Storage model
//
// A [Table] is a named list of equal-length [Column] values. Each column
// stores its cells in one typed Go slice selected by the column's [Kind]
// plus a parallel null bitmap; row-oriented callers go through the boxed
// [Value] view (Value, Append, Set), hot paths read the typed slices
// directly (Ints, Floats, Strings, Bools, Times). Appending a cell of a
// mismatched kind degrades the column to boxed []Value storage, which
// preserves heterogeneous data exactly at the cost of the typed fast
// paths.
//
// # Row sets and bulk movement
//
// [Selection] is the engine's description of which rows of a relation
// survive a filter: either a list of [Span] ranges (long runs cost two
// ints regardless of length) or a dense ascending index vector, chosen by
// density at construction. The bulk gather primitives move cells by the
// container that describes them: [Column.View] is a zero-copy window,
// [Column.GatherSel] copies a Selection span-at-a-time,
// [Column.Gather] materializes an arbitrary index list, and
// [Column.GatherPairs] is the join primitive — an index list plus an
// explicit null mask for outer-join padding.
//
// [Table.Join] is a standalone hash join over a single equality key with
// all four [JoinKind] semantics; the SQL engine's join pipeline (package
// sqlengine) shares its probe machinery through [NewHashProbe].
//
// See docs/ENGINE.md at the repository root for how these pieces compose
// into the full query lifecycle.
package table
