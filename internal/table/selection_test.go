package table

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// naiveIndices is the reference expansion of a mask: the ascending row
// indices of its set bits. Every Selection property below is checked
// against this or a plain []int model.
func naiveIndices(mask []bool, offset int) []int {
	var idx []int
	for i, m := range mask {
		if m {
			idx = append(idx, offset+i)
		}
	}
	return idx
}

func randMask(rng *rand.Rand, n int, density float64) []bool {
	mask := make([]bool, n)
	for i := range mask {
		mask[i] = rng.Float64() < density
	}
	return mask
}

// clusteredMask flips whole runs, producing span-friendly layouts.
func clusteredMask(rng *rand.Rand, n int) []bool {
	mask := make([]bool, n)
	i := 0
	set := rng.Intn(2) == 0
	for i < n {
		run := 1 + rng.Intn(40)
		for j := 0; j < run && i < n; j, i = j+1, i+1 {
			mask[i] = set
		}
		set = !set
	}
	return mask
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkInvariants asserts the representation invariants: span form is
// sorted, disjoint, non-adjacent, and non-empty per span; dense form is
// strictly ascending; count matches the expansion.
func checkInvariants(t *testing.T, s *Selection) {
	t.Helper()
	if spans, ok := s.Spans(); ok {
		total := 0
		for i, sp := range spans {
			if sp.Hi <= sp.Lo {
				t.Fatalf("empty span %v at %d", sp, i)
			}
			if i > 0 && spans[i-1].Hi >= sp.Lo {
				t.Fatalf("overlapping/adjacent spans %v, %v", spans[i-1], sp)
			}
			total += sp.Hi - sp.Lo
		}
		if total != s.Len() {
			t.Fatalf("span cardinality %d != Len %d", total, s.Len())
		}
	} else {
		idx := s.Indices()
		for i := 1; i < len(idx); i++ {
			if idx[i] <= idx[i-1] {
				t.Fatalf("dense indices not ascending at %d: %v <= %v", i, idx[i], idx[i-1])
			}
		}
		if len(idx) != s.Len() {
			t.Fatalf("dense cardinality %d != Len %d", len(idx), s.Len())
		}
	}
}

func TestSelectionFromMaskMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(200)
		offset := rng.Intn(50)
		var mask []bool
		if trial%2 == 0 {
			mask = randMask(rng, n, []float64{0, 0.01, 0.3, 0.5, 0.9, 1}[rng.Intn(6)])
		} else {
			mask = clusteredMask(rng, n)
		}
		want := naiveIndices(mask, offset)
		s := SelectionFromMask(mask, offset)
		checkInvariants(t, s)
		if got := s.Indices(); !eqInts(got, want) {
			t.Fatalf("trial %d: indices = %v, want %v", trial, got, want)
		}
		if s.Len() != len(want) {
			t.Fatalf("trial %d: Len = %d, want %d", trial, s.Len(), len(want))
		}
	}
}

func TestSelectionFromBoolsMatchesMask(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(150)
		vals := randMask(rng, n, 0.6)
		nulls := randMask(rng, n, 0.2)
		mask := make([]bool, n)
		for i := range mask {
			mask[i] = vals[i] && !nulls[i]
		}
		a := SelectionFromBools(vals, nulls, 7)
		b := SelectionFromMask(mask, 7)
		checkInvariants(t, a)
		if !eqInts(a.Indices(), b.Indices()) {
			t.Fatalf("trial %d: bools %v vs mask %v", trial, a.Indices(), b.Indices())
		}
	}
}

// TestSelectionRoundTrip checks dense↔range conversion both ways: a span
// selection rebuilt from its expanded indices selects the same rows, and
// a dense selection rebuilt from a mask of its rows round-trips.
func TestSelectionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		mask := clusteredMask(rng, rng.Intn(300))
		s := SelectionFromMask(mask, 0)
		viaIdx := NewIndexSelection(append([]int(nil), s.Indices()...))
		checkInvariants(t, viaIdx)
		if !eqInts(viaIdx.Indices(), s.Indices()) {
			t.Fatalf("trial %d: dense round-trip mismatch", trial)
		}
		// Range round-trip: each index [r, r+1) as a span must normalize to
		// the same selection.
		var spans []Span
		for _, r := range s.Indices() {
			spans = append(spans, Span{r, r + 1})
		}
		viaSpans := NewSpanSelection(spans...)
		checkInvariants(t, viaSpans)
		if !eqInts(viaSpans.Indices(), s.Indices()) {
			t.Fatalf("trial %d: span round-trip mismatch", trial)
		}
	}
}

// TestNewSpanSelectionNormalizes feeds unsorted, overlapping, adjacent,
// and empty spans and checks the union against a reference bitmap.
func TestNewSpanSelectionNormalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		nspans := rng.Intn(12)
		spans := make([]Span, nspans)
		bitmap := make([]bool, 120)
		for i := range spans {
			lo := rng.Intn(100)
			hi := lo + rng.Intn(20) - 2 // sometimes empty or inverted
			spans[i] = Span{lo, hi}
			for r := lo; r < hi && r < len(bitmap); r++ {
				bitmap[r] = true
			}
		}
		s := NewSpanSelection(spans...)
		checkInvariants(t, s)
		if _, ok := s.Spans(); !ok {
			t.Fatalf("trial %d: NewSpanSelection produced dense form", trial)
		}
		if want := naiveIndices(bitmap, 0); !eqInts(s.Indices(), want) {
			t.Fatalf("trial %d: spans %v → %v, want %v", trial, spans, s.Indices(), want)
		}
	}
}

func TestNewIndexSelectionSortsAndDedups(t *testing.T) {
	err := quick.Check(func(raw []uint8) bool {
		idx := make([]int, len(raw))
		for i, v := range raw {
			idx[i] = int(v)
		}
		s := NewIndexSelection(append([]int(nil), idx...))
		sorted := append([]int(nil), idx...)
		sort.Ints(sorted)
		var want []int
		for i, v := range sorted {
			if i == 0 || v != sorted[i-1] {
				want = append(want, v)
			}
		}
		return eqInts(s.Indices(), want) && s.Len() == len(want)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelectionFromAscending(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		mask := clusteredMask(rng, rng.Intn(250))
		want := naiveIndices(mask, 0)
		s, ok := SelectionFromAscending(append([]int(nil), want...))
		if !ok {
			t.Fatalf("trial %d: ascending input rejected", trial)
		}
		checkInvariants(t, s)
		if !eqInts(s.Indices(), want) {
			t.Fatalf("trial %d: %v, want %v", trial, s.Indices(), want)
		}
	}
	for _, bad := range [][]int{{3, 3}, {5, 2}, {-1, 0, 1}, {0, 1, 1}} {
		if _, ok := SelectionFromAscending(bad); ok {
			t.Errorf("accepted non-ascending %v", bad)
		}
	}
	if s, ok := SelectionFromAscending(nil); !ok || s.Len() != 0 {
		t.Error("empty ascending input should yield empty selection")
	}
}

// TestMergeSelections splits a mask at random cut points, builds one
// part-selection per segment, and checks the merge equals the whole.
func TestMergeSelections(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(400)
		var mask []bool
		if trial%2 == 0 {
			mask = clusteredMask(rng, n)
		} else {
			mask = randMask(rng, n, 0.4)
		}
		cuts := []int{0}
		for c := rng.Intn(n); c < n; c += 1 + rng.Intn(n/2+1) {
			if c > cuts[len(cuts)-1] {
				cuts = append(cuts, c)
			}
		}
		cuts = append(cuts, n)
		var parts []*Selection
		for i := 1; i < len(cuts); i++ {
			lo, hi := cuts[i-1], cuts[i]
			if trial%3 == 0 {
				// Mix in dense parts to exercise the mixed-form merge.
				parts = append(parts, NewIndexSelection(naiveIndices(mask[lo:hi], lo)))
			} else {
				parts = append(parts, SelectionFromMask(mask[lo:hi], lo))
			}
		}
		merged := MergeSelections(parts)
		checkInvariants(t, merged)
		if want := naiveIndices(mask, 0); !eqInts(merged.Indices(), want) {
			t.Fatalf("trial %d: merged %v, want %v", trial, merged.Indices(), want)
		}
	}
}

// TestMergeSelectionsMixedFormsKeepSpans pins the global density rule: one
// scattered (dense-form) chunk among clustered chunks must not degrade the
// merged result to a per-row index vector, and dense runs that continue a
// neighboring span must fuse with it.
func TestMergeSelectionsMixedFormsKeepSpans(t *testing.T) {
	parts := []*Selection{
		NewSpanSelection(Span{0, 1000}),
		NewIndexSelection([]int{1000, 1001, 1004, 1006}), // 3 runs, first fuses with the span
		NewSpanSelection(Span{2000, 3000}),
	}
	m := MergeSelections(parts)
	checkInvariants(t, m)
	spans, ok := m.Spans()
	if !ok {
		t.Fatal("mixed merge degraded to dense form despite clustered majority")
	}
	want := []Span{{0, 1002}, {1004, 1005}, {1006, 1007}, {2000, 3000}}
	if len(spans) != len(want) {
		t.Fatalf("spans = %v, want %v", spans, want)
	}
	for i := range want {
		if spans[i] != want[i] {
			t.Fatalf("span %d = %v, want %v", i, spans[i], want[i])
		}
	}
	if m.Len() != 1000+4+1000 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestSelectionRowAtOutOfRangePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"nil":    func() { (*Selection)(nil).RowAt(0) },
		"empty":  func() { NewSpanSelection().RowAt(0) },
		"beyond": func() { NewSpanSelection(Span{0, 3}).RowAt(3) },
		"neg":    func() { NewIndexSelection([]int{5}).RowAt(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: RowAt did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestMergeSelectionsJoinsBoundarySpans pins the cross-chunk span merge:
// an all-passing mask split into chunks must merge to one span.
func TestMergeSelectionsJoinsBoundarySpans(t *testing.T) {
	parts := []*Selection{
		NewSpanSelection(Span{0, 100}),
		NewSpanSelection(Span{100, 250}),
		NewSpanSelection(Span{250, 300}),
	}
	m := MergeSelections(parts)
	if lo, hi, ok := m.AsRange(); !ok || lo != 0 || hi != 300 {
		t.Fatalf("AsRange = (%d,%d,%v), want (0,300,true)", lo, hi, ok)
	}
	if m.Len() != 300 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestSelectionRowAtIterForEachAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		var s *Selection
		if trial%2 == 0 {
			s = SelectionFromMask(clusteredMask(rng, rng.Intn(200)), rng.Intn(10))
		} else {
			s = SelectionFromMask(randMask(rng, rng.Intn(200), 0.3), 0)
		}
		want := s.Indices()
		for i, r := range want {
			if got := s.RowAt(i); got != r {
				t.Fatalf("RowAt(%d) = %d, want %d", i, got, r)
			}
		}
		var viaEach []int
		s.ForEach(func(r int) { viaEach = append(viaEach, r) })
		if !eqInts(viaEach, want) {
			t.Fatalf("ForEach %v, want %v", viaEach, want)
		}
		var viaIter []int
		it := IterSelection(s, 0)
		for {
			r, ok := it.Next()
			if !ok {
				break
			}
			viaIter = append(viaIter, r)
		}
		if !eqInts(viaIter, want) {
			t.Fatalf("Iter %v, want %v", viaIter, want)
		}
	}
	// nil selection iterates [0, n).
	var nilIdx []int
	it := IterSelection(nil, 5)
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		nilIdx = append(nilIdx, r)
	}
	if !eqInts(nilIdx, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("nil iter = %v", nilIdx)
	}
}

func TestSelectionTruncate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var s *Selection
		if trial%2 == 0 {
			s = SelectionFromMask(clusteredMask(rng, rng.Intn(150)), 0)
		} else {
			s = SelectionFromMask(randMask(rng, rng.Intn(150), 0.5), 0)
		}
		k := rng.Intn(s.Len() + 10)
		tr := s.Truncate(k)
		checkInvariants(t, tr)
		want := s.Indices()
		if k < len(want) {
			want = want[:k]
		}
		if !eqInts(tr.Indices(), want) {
			t.Fatalf("trial %d: Truncate(%d) = %v, want %v", trial, k, tr.Indices(), want)
		}
	}
	if got := (*Selection)(nil).Truncate(3); got != nil {
		t.Fatalf("nil Truncate = %v", got)
	}
}

func TestSelectionDrop(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		var s *Selection
		if trial%2 == 0 {
			s = SelectionFromMask(clusteredMask(rng, rng.Intn(150)), 0)
		} else {
			s = SelectionFromMask(randMask(rng, rng.Intn(150), 0.5), 0)
		}
		k := rng.Intn(s.Len() + 10)
		dr := s.Drop(k)
		checkInvariants(t, dr)
		want := s.Indices()
		if k < len(want) {
			want = want[k:]
		} else {
			want = nil
		}
		if !eqInts(dr.Indices(), want) {
			t.Fatalf("trial %d: Drop(%d) = %v, want %v", trial, k, dr.Indices(), want)
		}
		// Drop then Truncate realizes an OFFSET/LIMIT window.
		if s.Len() > 2 {
			win := s.Drop(1).Truncate(s.Len() - 2)
			if win.Len() != s.Len()-2 || !eqInts(win.Indices(), s.Indices()[1:s.Len()-1]) {
				t.Fatalf("trial %d: window mismatch", trial)
			}
		}
	}
	if got := (*Selection)(nil).Drop(3); got != nil {
		t.Fatalf("nil Drop = %v", got)
	}
	if s := NewSpanSelection(Span{0, 5}); s.Drop(0) != s {
		t.Fatal("Drop(0) should return the receiver")
	}
}

// TestGatherSelEquivalence checks Column.GatherSel against the naive
// Gather over expanded indices, for every storage kind plus boxed columns
// and NULLs, in both selection forms.
func TestGatherSelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 120
	ints := make([]int64, n)
	floats := make([]float64, n)
	strs := make([]string, n)
	bools := make([]bool, n)
	nulls := make([]bool, n)
	for i := 0; i < n; i++ {
		ints[i] = int64(rng.Intn(1000) - 500)
		floats[i] = rng.Float64() * 100
		strs[i] = string(rune('a' + rng.Intn(26)))
		bools[i] = rng.Intn(2) == 0
		nulls[i] = rng.Intn(5) == 0
	}
	boxed := NewColumn("m", KindInt)
	for i := 0; i < n; i++ {
		if i%7 == 0 {
			boxed.Append(Str("mixed"))
		} else {
			boxed.Append(Int(ints[i]))
		}
	}
	cols := []Column{
		ColumnFromInts("i", ints, append([]bool(nil), nulls...)),
		ColumnFromFloats("f", floats, append([]bool(nil), nulls...)),
		ColumnFromStrings("s", strs, append([]bool(nil), nulls...)),
		ColumnFromBools("b", bools, append([]bool(nil), nulls...)),
		boxed,
	}
	sels := []*Selection{
		NewSpanSelection(),
		NewSpanSelection(Span{0, n}),
		NewSpanSelection(Span{10, 30}, Span{50, 90}),
		SelectionFromMask(randMask(rng, n, 0.4), 0),
		SelectionFromMask(clusteredMask(rng, n), 0),
		NewIndexSelection([]int{3, 4, 5, 99}),
	}
	for ci := range cols {
		for si, s := range sels {
			got := cols[ci].GatherSel(s)
			want := cols[ci].Gather(s.Indices())
			if got.Len() != want.Len() {
				t.Fatalf("col %d sel %d: len %d != %d", ci, si, got.Len(), want.Len())
			}
			for i := 0; i < got.Len(); i++ {
				if got.Value(i).Key() != want.Value(i).Key() {
					t.Fatalf("col %d sel %d row %d: %v != %v", ci, si, i, got.Value(i), want.Value(i))
				}
			}
		}
	}
}

// TestViewSharesAndMatches checks View against SliceRange cell-for-cell
// and confirms the zero-copy property for typed columns.
func TestViewSharesAndMatches(t *testing.T) {
	ints := []int64{1, 2, 3, 4, 5, 6}
	nulls := []bool{false, true, false, false, true, false}
	c := ColumnFromInts("x", ints, nulls)
	v := c.View(1, 5)
	w := c.SliceRange(1, 5)
	if v.Len() != 4 || w.Len() != 4 {
		t.Fatalf("lens = %d, %d", v.Len(), w.Len())
	}
	for i := 0; i < 4; i++ {
		if v.Value(i).Key() != w.Value(i).Key() {
			t.Fatalf("row %d: %v != %v", i, v.Value(i), w.Value(i))
		}
	}
	vi, _, ok := v.Ints()
	if !ok {
		t.Fatal("view lost typed storage")
	}
	if &vi[0] != &ints[1] {
		t.Fatal("View copied storage; want shared backing array")
	}
	if reflect.ValueOf(vi).Cap() != 4 {
		t.Fatalf("view capacity %d leaks past hi; want clamped to 4", reflect.ValueOf(vi).Cap())
	}
}

func TestSelectionAsRange(t *testing.T) {
	cases := []struct {
		s      *Selection
		lo, hi int
		ok     bool
	}{
		{NewSpanSelection(), 0, 0, true},
		{NewSpanSelection(Span{2, 9}), 2, 9, true},
		{NewSpanSelection(Span{0, 3}, Span{5, 8}), 0, 0, false},
		{NewIndexSelection([]int{1, 2, 3}), 0, 0, false}, // form fixed at construction
	}
	for i, tc := range cases {
		lo, hi, ok := tc.s.AsRange()
		if lo != tc.lo || hi != tc.hi || ok != tc.ok {
			t.Errorf("case %d: AsRange = (%d,%d,%v), want (%d,%d,%v)", i, lo, hi, ok, tc.lo, tc.hi, tc.ok)
		}
	}
}
