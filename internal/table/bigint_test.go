package table

import "testing"

// TestCompareExactForBigInts pins the int/int exact-comparison fix: 2^53+1
// and 2^53 must not compare equal through float64 conversion.
func TestCompareExactForBigInts(t *testing.T) {
	a, b := Int(9007199254740993), Int(9007199254740992)
	if Compare(a, b) != 1 {
		t.Errorf("Compare(2^53+1, 2^53) = %d, want 1", Compare(a, b))
	}
	if Equal(a, b) {
		t.Error("2^53+1 must not equal 2^53")
	}
	// Int/float pairs still unify numerically.
	if Compare(Int(2), Float(2.0)) != 0 {
		t.Error("Int(2) should equal Float(2.0)")
	}
}
