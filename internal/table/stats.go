package table

import (
	"fmt"
	"sort"
	"strings"
)

// ColumnStats summarizes one column: the heuristics-based half of the data
// profiling module (§IV-C). LLM-based interpretation happens in the
// knowledge package on top of these numbers.
type ColumnStats struct {
	Name          string
	Kind          Kind
	Count         int // non-null cells
	Nulls         int
	Distinct      int
	Min, Max      Value
	Mean, StdDev  float64 // numeric columns only
	SampleValues  []string
	TopValues     []string // most frequent distinct values, ties broken lexically
	IsNumeric     bool
	IsTimeLike    bool
	IsIdentifier  bool // looks like a key: all-distinct, high cardinality
	IsCategorical bool // low cardinality relative to rows
}

// Profile computes stats for every column. sampleN bounds SampleValues.
func (t *Table) Profile(sampleN int) []ColumnStats {
	out := make([]ColumnStats, 0, len(t.Columns))
	for i := range t.Columns {
		out = append(out, t.profileColumn(i, sampleN))
	}
	return out
}

func (t *Table) profileColumn(i, sampleN int) ColumnStats {
	c := &t.Columns[i]
	st := ColumnStats{Name: c.Name, Kind: c.Kind}
	freq := map[string]int{}
	var nums []float64
	for r, m := 0, c.Len(); r < m; r++ {
		v := c.Value(r)
		if v.IsNull() {
			st.Nulls++
			continue
		}
		st.Count++
		freq[v.AsString()]++
		if st.Count == 1 {
			st.Min, st.Max = v, v
		} else {
			if Compare(v, st.Min) < 0 {
				st.Min = v
			}
			if Compare(v, st.Max) > 0 {
				st.Max = v
			}
		}
		if f, ok := v.AsFloat(); ok && (c.Kind == KindInt || c.Kind == KindFloat) {
			nums = append(nums, f)
		}
	}
	st.Distinct = len(freq)
	if len(nums) > 0 {
		st.Mean = sum(nums) / float64(len(nums))
		st.StdDev = stddev(nums)
		st.IsNumeric = true
	}
	st.IsTimeLike = c.Kind == KindTime || looksTemporal(c.Name)
	total := st.Count + st.Nulls
	if total > 0 {
		st.IsIdentifier = st.Distinct == st.Count && st.Count > 1 && !st.IsNumeric
		st.IsCategorical = !st.IsNumeric && st.Distinct > 0 && st.Distinct <= max(2, total/4)
	}

	// Deterministic sample: evenly spaced non-null values.
	if sampleN > 0 && st.Count > 0 {
		var nonNull []string
		for r, m := 0, c.Len(); r < m; r++ {
			if v := c.Value(r); !v.IsNull() {
				nonNull = append(nonNull, v.AsString())
			}
		}
		step := len(nonNull) / sampleN
		if step < 1 {
			step = 1
		}
		for j := 0; j < len(nonNull) && len(st.SampleValues) < sampleN; j += step {
			st.SampleValues = append(st.SampleValues, nonNull[j])
		}
	}

	// Top values by frequency (desc), then lexical for determinism.
	type fv struct {
		v string
		n int
	}
	fvs := make([]fv, 0, len(freq))
	for v, n := range freq {
		fvs = append(fvs, fv{v, n})
	}
	sort.Slice(fvs, func(a, b int) bool {
		if fvs[a].n != fvs[b].n {
			return fvs[a].n > fvs[b].n
		}
		return fvs[a].v < fvs[b].v
	})
	for j := 0; j < len(fvs) && j < 5; j++ {
		st.TopValues = append(st.TopValues, fvs[j].v)
	}
	return st
}

func looksTemporal(name string) bool {
	n := strings.ToLower(name)
	for _, kw := range []string{"time", "date", "day", "month", "year", "ftime", "dt", "ds"} {
		if n == kw || strings.Contains(n, kw) {
			return true
		}
	}
	return false
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Describe renders the profile as the textual table summary fed to the
// simulated LLM during profiling-based interpretation.
func (st ColumnStats) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "column %s type=%s non_null=%d nulls=%d distinct=%d",
		st.Name, st.Kind, st.Count, st.Nulls, st.Distinct)
	if st.IsNumeric {
		fmt.Fprintf(&sb, " min=%s max=%s mean=%.4g std=%.4g",
			st.Min.AsString(), st.Max.AsString(), st.Mean, st.StdDev)
	}
	if len(st.SampleValues) > 0 {
		fmt.Fprintf(&sb, " samples=[%s]", strings.Join(st.SampleValues, ", "))
	}
	return sb.String()
}
