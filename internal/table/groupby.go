package table

import (
	"fmt"
	"math"
	"strings"
)

// AggFunc enumerates the aggregate functions the engine supports.
type AggFunc uint8

const (
	AggCount AggFunc = iota
	AggCountDistinct
	AggSum
	AggAvg
	AggMin
	AggMax
	AggStdDev
	AggMedian
	AggFirst
)

// String returns the SQL name of the aggregate.
func (a AggFunc) String() string {
	switch a {
	case AggCount:
		return "COUNT"
	case AggCountDistinct:
		return "COUNT_DISTINCT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggStdDev:
		return "STDDEV"
	case AggMedian:
		return "MEDIAN"
	case AggFirst:
		return "FIRST"
	default:
		return fmt.Sprintf("AggFunc(%d)", uint8(a))
	}
}

// ParseAggFunc maps a SQL function name to an AggFunc.
func ParseAggFunc(name string) (AggFunc, bool) {
	switch strings.ToUpper(name) {
	case "COUNT":
		return AggCount, true
	case "SUM":
		return AggSum, true
	case "AVG", "MEAN":
		return AggAvg, true
	case "MIN":
		return AggMin, true
	case "MAX":
		return AggMax, true
	case "STDDEV", "STD":
		return AggStdDev, true
	case "MEDIAN":
		return AggMedian, true
	default:
		return 0, false
	}
}

// Aggregation describes one output aggregate column. Column "*" with
// AggCount counts rows.
type Aggregation struct {
	Func   AggFunc
	Column string // source column; "*" allowed for COUNT
	As     string // output name; defaults to FUNC(col)
}

func (a Aggregation) outName() string {
	if a.As != "" {
		return a.As
	}
	return fmt.Sprintf("%s(%s)", a.Func, a.Column)
}

// GroupBy groups by the named key columns and computes the aggregations.
// With no keys the whole table is a single group (global aggregate).
// Group order follows first appearance, keeping results deterministic.
func (t *Table) GroupBy(keys []string, aggs []Aggregation) (*Table, error) {
	keyIdx := make([]int, len(keys))
	for i, k := range keys {
		ci := t.ColumnIndex(k)
		if ci < 0 {
			return nil, fmt.Errorf("table %s: group by unknown column %q", t.Name, k)
		}
		keyIdx[i] = ci
	}
	aggIdx := make([]int, len(aggs))
	for i, a := range aggs {
		if a.Column == "*" {
			if a.Func != AggCount {
				return nil, fmt.Errorf("table %s: %s(*) is not supported", t.Name, a.Func)
			}
			aggIdx[i] = -1
			continue
		}
		ci := t.ColumnIndex(a.Column)
		if ci < 0 {
			return nil, fmt.Errorf("table %s: aggregate over unknown column %q", t.Name, a.Column)
		}
		aggIdx[i] = ci
	}

	type group struct {
		firstRow int
		rows     []int
	}
	order := []string{}
	groups := map[string]*group{}
	n := t.NumRows()
	for r := 0; r < n; r++ {
		var kb strings.Builder
		for _, ci := range keyIdx {
			kb.WriteString(t.Columns[ci].Value(r).Key())
			kb.WriteByte('\x1f')
		}
		k := kb.String()
		g, ok := groups[k]
		if !ok {
			g = &group{firstRow: r}
			groups[k] = g
			order = append(order, k)
		}
		g.rows = append(g.rows, r)
	}
	// A global aggregate over an empty table still yields one row.
	if len(keys) == 0 && len(order) == 0 {
		groups[""] = &group{firstRow: -1}
		order = append(order, "")
	}

	// Build output schema: keys first, then aggregates.
	out := &Table{Name: t.Name}
	for _, ci := range keyIdx {
		out.Columns = append(out.Columns, Column{Name: t.Columns[ci].Name, Kind: t.Columns[ci].Kind})
	}
	for i, a := range aggs {
		kind := KindFloat
		switch a.Func {
		case AggCount, AggCountDistinct:
			kind = KindInt
		case AggMin, AggMax, AggFirst:
			if aggIdx[i] >= 0 {
				kind = t.Columns[aggIdx[i]].Kind
			}
		}
		out.Columns = append(out.Columns, Column{Name: a.outName(), Kind: kind})
	}

	for _, k := range order {
		g := groups[k]
		row := make([]Value, 0, len(keyIdx)+len(aggs))
		for _, ci := range keyIdx {
			row = append(row, t.Columns[ci].Value(g.firstRow))
		}
		for i, a := range aggs {
			row = append(row, computeAgg(t, a.Func, aggIdx[i], g.rows))
		}
		// Bypass AppendRow coercion checks: values are already typed.
		for j := range out.Columns {
			out.Columns[j].Append(row[j])
		}
	}
	return out, nil
}

func computeAgg(t *Table, fn AggFunc, col int, rows []int) Value {
	if fn == AggCount && col < 0 {
		return Int(int64(len(rows)))
	}
	c := &t.Columns[col]
	switch fn {
	case AggCount:
		n := 0
		for _, r := range rows {
			if !c.IsNullAt(r) {
				n++
			}
		}
		return Int(int64(n))
	case AggCountDistinct:
		seen := map[string]bool{}
		for _, r := range rows {
			if !c.IsNullAt(r) {
				seen[c.Value(r).Key()] = true
			}
		}
		return Int(int64(len(seen)))
	case AggFirst:
		for _, r := range rows {
			if !c.IsNullAt(r) {
				return c.Value(r)
			}
		}
		return Null()
	case AggMin, AggMax:
		best := Null()
		for _, r := range rows {
			if c.IsNullAt(r) {
				continue
			}
			v := c.Value(r)
			if best.IsNull() {
				best = v
				continue
			}
			cmp := Compare(v, best)
			if (fn == AggMin && cmp < 0) || (fn == AggMax && cmp > 0) {
				best = v
			}
		}
		return best
	case AggSum, AggAvg, AggStdDev, AggMedian:
		// Typed fast path: read float64s straight out of columnar storage.
		nums := make([]float64, 0, len(rows))
		for _, r := range rows {
			if f, ok := c.FloatAt(r); ok {
				nums = append(nums, f)
			}
		}
		if len(nums) == 0 {
			return Null()
		}
		switch fn {
		case AggSum:
			return Float(sum(nums))
		case AggAvg:
			return Float(sum(nums) / float64(len(nums)))
		case AggStdDev:
			return Float(stddev(nums))
		case AggMedian:
			return Float(median(nums))
		}
	}
	return Null()
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

func stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mean := sum(xs) / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

func median(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}
