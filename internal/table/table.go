package table

import (
	"fmt"
	"sort"
	"strings"
)

// Table is a named collection of equal-length columns.
type Table struct {
	Name    string
	Columns []Column
}

// New creates an empty table with the given column names and kinds.
// names and kinds must have equal length.
func New(name string, names []string, kinds []Kind) (*Table, error) {
	if len(names) != len(kinds) {
		return nil, fmt.Errorf("table %s: %d names but %d kinds", name, len(names), len(kinds))
	}
	seen := make(map[string]bool, len(names))
	cols := make([]Column, len(names))
	for i, n := range names {
		key := strings.ToLower(n)
		if seen[key] {
			return nil, fmt.Errorf("table %s: duplicate column %q", name, n)
		}
		seen[key] = true
		cols[i] = Column{Name: n, Kind: kinds[i]}
	}
	return &Table{Name: name, Columns: cols}, nil
}

// MustNew is New that panics on error, for literals in tests and generators.
func MustNew(name string, names []string, kinds []Kind) *Table {
	t, err := New(name, names, kinds)
	if err != nil {
		panic(err)
	}
	return t
}

// NumRows returns the row count (0 for a table with no columns).
func (t *Table) NumRows() int {
	if len(t.Columns) == 0 {
		return 0
	}
	return t.Columns[0].Len()
}

// NumCols returns the column count.
func (t *Table) NumCols() int { return len(t.Columns) }

// ColumnNames returns the column names in order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		names[i] = c.Name
	}
	return names
}

// ColumnIndex returns the index of the named column (case-insensitive),
// or -1 if absent.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Column returns the named column, or nil if absent.
func (t *Table) Column(name string) *Column {
	if i := t.ColumnIndex(name); i >= 0 {
		return &t.Columns[i]
	}
	return nil
}

// AppendRow appends one row. The number of values must match the column
// count; values are coerced to the column kinds.
func (t *Table) AppendRow(vals ...Value) error {
	if len(vals) != len(t.Columns) {
		return fmt.Errorf("table %s: append %d values to %d columns", t.Name, len(vals), len(t.Columns))
	}
	for i := range t.Columns {
		t.Columns[i].Append(vals[i].Coerce(t.Columns[i].Kind))
	}
	return nil
}

// MustAppendRow is AppendRow that panics on error.
func (t *Table) MustAppendRow(vals ...Value) {
	if err := t.AppendRow(vals...); err != nil {
		panic(err)
	}
}

// Row materializes row i as a value slice.
func (t *Table) Row(i int) []Value {
	row := make([]Value, len(t.Columns))
	for j := range t.Columns {
		row[j] = t.Columns[j].Value(i)
	}
	return row
}

// Get returns the cell at (row, col name). NULL for unknown columns.
func (t *Table) Get(row int, col string) Value {
	idx := t.ColumnIndex(col)
	if idx < 0 || row < 0 || row >= t.NumRows() {
		return Null()
	}
	return t.Columns[idx].Value(row)
}

// Clone deep-copies the table.
func (t *Table) Clone() *Table {
	out := &Table{Name: t.Name, Columns: make([]Column, len(t.Columns))}
	for i := range t.Columns {
		out.Columns[i] = t.Columns[i].CloneData()
	}
	return out
}

// Slice returns rows [lo, hi) as a new table sharing no storage.
func (t *Table) Slice(lo, hi int) *Table {
	n := t.NumRows()
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if lo > hi {
		lo = hi
	}
	out := &Table{Name: t.Name, Columns: make([]Column, len(t.Columns))}
	for i := range t.Columns {
		out.Columns[i] = t.Columns[i].SliceRange(lo, hi)
	}
	return out
}

// SelectRows returns a new table containing the given row indices in order.
func (t *Table) SelectRows(idx []int) *Table {
	out := &Table{Name: t.Name, Columns: make([]Column, len(t.Columns))}
	for i := range t.Columns {
		out.Columns[i] = t.Columns[i].Gather(idx)
	}
	return out
}

// Project returns a new table with only the named columns, in the given
// order. Unknown columns are an error.
func (t *Table) Project(names ...string) (*Table, error) {
	out := &Table{Name: t.Name}
	for _, n := range names {
		c := t.Column(n)
		if c == nil {
			return nil, fmt.Errorf("table %s: unknown column %q", t.Name, n)
		}
		out.Columns = append(out.Columns, c.CloneData())
	}
	return out, nil
}

// Filter returns the rows for which pred returns true.
func (t *Table) Filter(pred func(row int) bool) *Table {
	var idx []int
	for i, n := 0, t.NumRows(); i < n; i++ {
		if pred(i) {
			idx = append(idx, i)
		}
	}
	return t.SelectRows(idx)
}

// SortKey describes one sort criterion.
type SortKey struct {
	Column string
	Desc   bool
}

// Sort returns a new table stably sorted by the given keys.
func (t *Table) Sort(keys ...SortKey) (*Table, error) {
	colIdx := make([]int, len(keys))
	for i, k := range keys {
		ci := t.ColumnIndex(k.Column)
		if ci < 0 {
			return nil, fmt.Errorf("table %s: sort on unknown column %q", t.Name, k.Column)
		}
		colIdx[i] = ci
	}
	idx := make([]int, t.NumRows())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ra, rb := idx[a], idx[b]
		for i, k := range keys {
			c := Compare(t.Columns[colIdx[i]].Value(ra), t.Columns[colIdx[i]].Value(rb))
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return t.SelectRows(idx), nil
}

// Limit returns at most n leading rows.
func (t *Table) Limit(n int) *Table {
	if n < 0 || n >= t.NumRows() {
		return t.Clone()
	}
	return t.Slice(0, n)
}

// Distinct returns the table with duplicate rows removed, keeping first
// occurrences in order.
func (t *Table) Distinct() *Table {
	seen := make(map[string]bool)
	var idx []int
	for i, n := 0, t.NumRows(); i < n; i++ {
		key := t.rowKey(i)
		if !seen[key] {
			seen[key] = true
			idx = append(idx, i)
		}
	}
	return t.SelectRows(idx)
}

func (t *Table) rowKey(i int) string {
	var sb strings.Builder
	for j := range t.Columns {
		sb.WriteString(t.Columns[j].Value(i).Key())
		sb.WriteByte('\x1f')
	}
	return sb.String()
}

// AddColumn appends a derived column computed per row. Errors if the name
// already exists.
func (t *Table) AddColumn(name string, kind Kind, fn func(row int) Value) error {
	if t.ColumnIndex(name) >= 0 {
		return fmt.Errorf("table %s: column %q already exists", t.Name, name)
	}
	n := t.NumRows()
	col := NewColumn(name, kind)
	col.Grow(n)
	for i := 0; i < n; i++ {
		col.Append(fn(i).Coerce(kind))
	}
	t.Columns = append(t.Columns, col)
	return nil
}

// RenameColumn renames a column in place.
func (t *Table) RenameColumn(oldName, newName string) error {
	i := t.ColumnIndex(oldName)
	if i < 0 {
		return fmt.Errorf("table %s: unknown column %q", t.Name, oldName)
	}
	if j := t.ColumnIndex(newName); j >= 0 && j != i {
		return fmt.Errorf("table %s: column %q already exists", t.Name, newName)
	}
	t.Columns[i].Name = newName
	return nil
}

// DropColumn removes a column in place.
func (t *Table) DropColumn(name string) error {
	i := t.ColumnIndex(name)
	if i < 0 {
		return fmt.Errorf("table %s: unknown column %q", t.Name, name)
	}
	t.Columns = append(t.Columns[:i], t.Columns[i+1:]...)
	return nil
}

// String renders a compact preview (up to 10 rows) for logs and examples.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (%d rows)\n", t.Name, t.NumRows())
	sb.WriteString(strings.Join(t.ColumnNames(), " | "))
	sb.WriteByte('\n')
	n := t.NumRows()
	if n > 10 {
		n = 10
	}
	for i := 0; i < n; i++ {
		cells := make([]string, len(t.Columns))
		for j := range t.Columns {
			cells[j] = t.Columns[j].Value(i).AsString()
		}
		sb.WriteString(strings.Join(cells, " | "))
		sb.WriteByte('\n')
	}
	if t.NumRows() > 10 {
		fmt.Fprintf(&sb, "... %d more rows\n", t.NumRows()-10)
	}
	return sb.String()
}

// EqualData reports whether two tables hold the same rows as multisets,
// ignoring row order, column names, and table names — the execution-
// equivalence notion used by the EX metric. Column order matters (the
// benchmarks compare SELECT lists positionally).
func EqualData(a, b *Table) bool {
	if a.NumCols() != b.NumCols() || a.NumRows() != b.NumRows() {
		return false
	}
	counts := make(map[string]int, a.NumRows())
	for i, n := 0, a.NumRows(); i < n; i++ {
		counts[a.rowKey(i)]++
	}
	for i, n := 0, b.NumRows(); i < n; i++ {
		key := b.rowKey(i)
		counts[key]--
		if counts[key] < 0 {
			return false
		}
	}
	return true
}
