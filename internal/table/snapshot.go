package table

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Streaming ingest storage: a table's rows live in one growing column
// arena owned by its Appender. Readers never see the arena directly —
// they see Snapshots, immutable views published with one atomic pointer
// swap. A snapshot's columns are capacity-capped prefix views of the
// arena, so publication copies nothing: the writer appends strictly
// beyond every published length (reallocation leaves old backing arrays
// untouched), which is what makes lock-free snapshot reads safe — a
// reader's indices and a writer's appends never touch the same memory.
//
// Sealed rows are additionally grouped into Chunks, one per Publish call:
// immutable horizontal slices [lo, hi) that give ingest-aware consumers
// (stats, property tests, future chunk-parallel scans) the batch
// structure without any extra storage.

// Chunk is one sealed, immutable horizontal slice of a table: the rows
// published by a single Publish call. Its columns are zero-copy views of
// the table's storage and must never be mutated.
type Chunk struct {
	lo, hi int
	cols   []Column
}

// Bounds returns the chunk's half-open row range [lo, hi) in table
// coordinates.
func (ch *Chunk) Bounds() (lo, hi int) { return ch.lo, ch.hi }

// NumRows returns the number of rows in the chunk.
func (ch *Chunk) NumRows() int { return ch.hi - ch.lo }

// NumCols returns the number of columns.
func (ch *Chunk) NumCols() int { return len(ch.cols) }

// Column returns the chunk's i-th column view. Row indices are
// chunk-local: Column(i).Value(0) is table row lo.
func (ch *Chunk) Column(i int) *Column { return &ch.cols[i] }

// Snapshot is an immutable point-in-time view of a table: the schema, a
// flat zero-copy column view of every sealed row, and the sealed chunk
// list. Snapshots are safe to share across goroutines without locks; a
// query (or an open Result cursor) that holds a snapshot keeps reading
// exactly those rows no matter how much ingest happens after.
type Snapshot struct {
	tbl     Table // flat view: Columns are prefix views of the arena
	chunks  []Chunk
	rows    int
	version uint64
}

// Name returns the table name.
func (s *Snapshot) Name() string { return s.tbl.Name }

// NumRows returns the snapshot's row count.
func (s *Snapshot) NumRows() int { return s.rows }

// NumChunks returns the number of sealed chunks.
func (s *Snapshot) NumChunks() int { return len(s.chunks) }

// Chunk returns the i-th sealed chunk, oldest first.
func (s *Snapshot) Chunk(i int) *Chunk { return &s.chunks[i] }

// Version returns the snapshot's publication sequence number, starting at
// 1 for the snapshot published on registration and incremented by every
// Publish that sealed at least one row.
func (s *Snapshot) Version() uint64 { return s.version }

// Table returns the snapshot as a flat table sharing the snapshot's
// storage. The result is strictly read-only: mutating its columns would
// corrupt the snapshot for every other holder.
func (s *Snapshot) Table() *Table { return &s.tbl }

// Schema returns the snapshot's column names and kinds as fresh slices.
func (s *Snapshot) Schema() ([]string, []Kind) {
	names := make([]string, len(s.tbl.Columns))
	kinds := make([]Kind, len(s.tbl.Columns))
	for i := range s.tbl.Columns {
		names[i] = s.tbl.Columns[i].Name
		kinds[i] = s.tbl.Columns[i].Kind
	}
	return names, kinds
}

// PublishHook observes chunk seals for durability layers. Publish calls
// the hook exactly once per chunk it is about to seal — before the new
// snapshot becomes visible to readers — with the table name, the version
// the publish will create, and the chunk contents (a read-only view of
// the arena). A non-nil error aborts the publish: nothing is sealed, the
// staged rows stay pending and invisible, and the same rows are retried
// by the next Publish. That ordering is what makes the hook a write-ahead
// commit point: a chunk is durable before any reader can observe it.
type PublishHook func(table string, version uint64, ck *Chunk) error

// Appender is a table's write head: it owns the column arena, batches
// incoming rows into a pending (unpublished) chunk, and publishes
// immutable snapshots. Appends and publishes are serialized by the
// appender's mutex; Snapshot is lock-free and may be called from any
// number of readers concurrently with ingest.
//
// Append buffers rows without making them visible; Publish seals the
// pending rows into a chunk and swaps in a new snapshot. Batching
// amortizes both the per-snapshot allocation and the cache-miss cost
// readers pay when they move to a new snapshot.
type Appender struct {
	mu     sync.Mutex
	arena  []Column // writer-owned; snapshots view prefixes of this
	name   string
	sealed int     // rows covered by the current snapshot
	chunks []Chunk // sealed chunks; snapshots share prefixes of this slice
	hook   PublishHook

	version uint64
	cur     atomic.Pointer[Snapshot]
}

// NewAppender seals t as the table's initial contents (one chunk when
// non-empty) and publishes version 1. The column data is adopted
// zero-copy — the caller must stop mutating t — but the column headers
// are copied, so arena growth never changes t's own length or storage
// pointers. In particular an appender built over a snapshot view appends
// past the view's capacity cap, reallocating instead of touching the
// snapshot.
func NewAppender(t *Table) *Appender {
	a := &Appender{name: t.Name, arena: append([]Column(nil), t.Columns...)}
	a.publishLocked()
	return a
}

// Name returns the table name.
func (a *Appender) Name() string { return a.name }

// Snapshot returns the current published snapshot without locking.
func (a *Appender) Snapshot() *Snapshot { return a.cur.Load() }

// SetPublishHook installs (or, with nil, removes) the durability hook
// called by every subsequent Publish. The snapshot already published is
// unaffected — only chunks sealed after this call flow through the hook.
func (a *Appender) SetPublishHook(h PublishHook) {
	a.mu.Lock()
	a.hook = h
	a.mu.Unlock()
}

// Barrier acquires and releases the append mutex, returning only after
// any publish in flight at the time of the call has completed. Durability
// checkpoints use it to order their state capture after every log record
// already written: a chunk logged before the barrier is guaranteed
// visible to Snapshot afterwards.
func (a *Appender) Barrier() {
	a.mu.Lock()
	//lint:ignore SA2001 the empty critical section is the point: the lock/unlock pair is the happens-before edge itself
	a.mu.Unlock()
}

// Kinds returns the declared column kinds.
func (a *Appender) Kinds() []Kind {
	a.mu.Lock()
	defer a.mu.Unlock()
	kinds := make([]Kind, len(a.arena))
	for i := range a.arena {
		kinds[i] = a.arena[i].Kind
	}
	return kinds
}

// Pending returns the number of buffered rows not yet covered by a
// published snapshot.
func (a *Appender) Pending() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rowsLocked() - a.sealed
}

func (a *Appender) rowsLocked() int {
	if len(a.arena) == 0 {
		return 0
	}
	return a.arena[0].Len()
}

// Append buffers rows into the pending chunk. Values are coerced to the
// column kinds (uncoercible values degrade that column to boxed storage,
// exactly like Table.AppendRow). The rows stay invisible to readers
// until Publish.
func (a *Appender) Append(rows ...[]Value) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, vals := range rows {
		if len(vals) != len(a.arena) {
			return fmt.Errorf("table %s: append %d values to %d columns", a.name, len(vals), len(a.arena))
		}
		for i := range a.arena {
			a.arena[i].Append(vals[i].Coerce(a.arena[i].Kind))
		}
	}
	return nil
}

// AppendTable bulk-appends every row of t into the pending chunk.
// Columns are matched positionally; same-kind typed columns copy
// slab-at-a-time, everything else goes cell-at-a-time with coercion.
func (a *Appender) AppendTable(t *Table) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(t.Columns) != len(a.arena) {
		return fmt.Errorf("table %s: append table with %d columns to %d columns", a.name, len(t.Columns), len(a.arena))
	}
	for i := range a.arena {
		a.arena[i].AppendColumn(&t.Columns[i])
	}
	return nil
}

// AppendTableExact bulk-appends every row of t preserving each cell's
// stored kind exactly: no coercion to the arena's column kinds. Same-kind
// typed columns still copy slab-at-a-time; mismatched or boxed columns go
// cell-at-a-time with the raw cell value, degrading the arena column to
// boxed storage when kinds differ — exactly reproducing the state the
// source column was in. WAL replay depends on this: a mixed-kind column
// logged from a degraded arena must come back byte-for-byte, not coerced
// into nulls.
func (a *Appender) AppendTableExact(t *Table) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(t.Columns) != len(a.arena) {
		return fmt.Errorf("table %s: append table with %d columns to %d columns", a.name, len(t.Columns), len(a.arena))
	}
	for i := range a.arena {
		src := &t.Columns[i]
		if src.IsTyped() && a.arena[i].IsTyped() && src.Kind == a.arena[i].Kind {
			a.arena[i].AppendColumn(src)
			continue
		}
		for r := 0; r < src.Len(); r++ {
			a.arena[i].Append(src.Value(r))
		}
	}
	return nil
}

// Publish seals the pending rows into a new chunk and atomically swaps in
// a snapshot covering every sealed row. With no pending rows it returns
// the current snapshot unchanged. Publication is O(columns): the new
// snapshot's columns are prefix views of the arena, not copies.
//
// On an appender with a publish hook (a durable table), a hook failure
// leaves the staged rows pending and returns the unchanged current
// snapshot; use PublishErr to observe the error.
func (a *Appender) Publish() *Snapshot {
	s, _ := a.PublishErr()
	return s
}

// PublishErr is Publish with the durability error surfaced: when the
// publish hook rejects the commit (for example an fsync failure), the
// pending rows stay staged and invisible, the current snapshot is
// returned unchanged, and the hook's error is reported. Memory-only
// appenders never return an error.
func (a *Appender) PublishErr() (*Snapshot, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.publishLocked()
}

func (a *Appender) publishLocked() (*Snapshot, error) {
	n := a.rowsLocked()
	if cur := a.cur.Load(); cur != nil && n == a.sealed {
		return cur, nil
	}
	if n > a.sealed {
		ck := Chunk{lo: a.sealed, hi: n, cols: make([]Column, len(a.arena))}
		for i := range a.arena {
			ck.cols[i] = a.arena[i].View(a.sealed, n)
		}
		// Write-ahead commit point: the chunk must be durable before any
		// reader can observe the snapshot that contains it. On hook error
		// nothing below runs — the rows stay pending for a retry.
		if a.hook != nil {
			if err := a.hook(a.name, a.version+1, &ck); err != nil {
				return a.cur.Load(), err
			}
		}
		// Appending to a.chunks never disturbs older snapshots: they hold
		// shorter prefixes of this slice, and growth either writes past
		// their length or reallocates.
		a.chunks = append(a.chunks, ck)
	}
	a.sealed = n
	a.version++
	s := &Snapshot{
		tbl:     Table{Name: a.name, Columns: make([]Column, len(a.arena))},
		chunks:  a.chunks,
		rows:    n,
		version: a.version,
	}
	for i := range a.arena {
		s.tbl.Columns[i] = a.arena[i].View(0, n)
	}
	a.cur.Store(s)
	return s, nil
}
