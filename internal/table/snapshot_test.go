package table

import (
	"fmt"
	"math/rand"
	"testing"
)

// Property battery for chunked snapshot storage: random append / publish /
// gather sequences are replayed against a flat []Value oracle per column.
// Every published snapshot is kept and re-verified after later appends
// land, so the immutability guarantee is checked continuously, not just at
// publish time.

// oracleTable mirrors an Appender cell-for-cell in boxed values.
type oracleTable struct {
	names []string
	kinds []Kind
	cols  [][]Value
}

func (o *oracleTable) appendRow(vals []Value) {
	for i := range o.cols {
		o.cols[i] = append(o.cols[i], vals[i].Coerce(o.kinds[i]))
	}
}

// randCell produces a value for column kind k. Mostly kind-matched, with
// NULLs mixed in; when allowMixed, occasionally a mismatched kind to
// exercise boxed degradation.
func randCell(rng *rand.Rand, k Kind, allowMixed bool) Value {
	if rng.Intn(6) == 0 {
		return Null()
	}
	if allowMixed && rng.Intn(12) == 0 {
		if k == KindString {
			return Int(int64(rng.Intn(100)))
		}
		return Str(fmt.Sprintf("mixed-%d", rng.Intn(100)))
	}
	switch k {
	case KindInt:
		return Int(int64(rng.Intn(1000) - 500))
	case KindFloat:
		return Float(float64(rng.Intn(1000)) / 8)
	case KindString:
		return Str(fmt.Sprintf("s%03d", rng.Intn(300)))
	case KindBool:
		return Bool(rng.Intn(2) == 0)
	default:
		return Null()
	}
}

func checkValue(t *testing.T, ctx string, got, want Value) {
	t.Helper()
	if got.Key() != want.Key() {
		t.Fatalf("%s: got %s want %s", ctx, got.Key(), want.Key())
	}
}

// verifySnapshot checks a snapshot cell-for-cell against the oracle prefix
// it was published over, then cross-checks the chunk partition and random
// selection / gather shapes that cross chunk boundaries.
func verifySnapshot(t *testing.T, rng *rand.Rand, s *Snapshot, o *oracleTable, rows int) {
	t.Helper()
	if s.NumRows() != rows {
		t.Fatalf("snapshot v%d: NumRows = %d, want %d", s.Version(), s.NumRows(), rows)
	}
	tbl := s.Table()
	if tbl.NumRows() != rows {
		t.Fatalf("snapshot v%d: Table().NumRows = %d, want %d", s.Version(), tbl.NumRows(), rows)
	}
	// Flat view: every cell.
	for ci := range tbl.Columns {
		for ri := 0; ri < rows; ri++ {
			checkValue(t, fmt.Sprintf("v%d flat col %d row %d", s.Version(), ci, ri),
				tbl.Columns[ci].Value(ri), o.cols[ci][ri])
		}
	}
	// Chunk partition: bounds tile [0, rows) and chunk-local cells match.
	pos := 0
	for i := 0; i < s.NumChunks(); i++ {
		ck := s.Chunk(i)
		lo, hi := ck.Bounds()
		if lo != pos || hi < lo || hi > rows {
			t.Fatalf("v%d chunk %d: bounds [%d,%d) at pos %d rows %d", s.Version(), i, lo, hi, pos, rows)
		}
		pos = hi
		if ck.NumRows() != hi-lo || ck.NumCols() != len(tbl.Columns) {
			t.Fatalf("v%d chunk %d: %d rows %d cols", s.Version(), i, ck.NumRows(), ck.NumCols())
		}
		for ci := 0; ci < ck.NumCols(); ci++ {
			for r := lo; r < hi; r++ {
				checkValue(t, fmt.Sprintf("v%d chunk %d col %d row %d", s.Version(), i, ci, r),
					ck.Column(ci).Value(r-lo), o.cols[ci][r])
			}
		}
	}
	if pos != rows {
		t.Fatalf("v%d: chunks cover %d of %d rows", s.Version(), pos, rows)
	}
	if rows == 0 {
		return
	}
	// Span-form selection crossing chunk boundaries.
	lo := rng.Intn(rows)
	hi := lo + rng.Intn(rows-lo) + 1
	spanSel := NewSpanSelection(Span{Lo: lo, Hi: hi})
	// Dense-form selection: random ascending subset.
	var idx []int
	for r := 0; r < rows; r++ {
		if rng.Intn(3) == 0 {
			idx = append(idx, r)
		}
	}
	denseSel := NewIndexSelection(idx)
	for ci := range tbl.Columns {
		got := tbl.Columns[ci].GatherSel(spanSel)
		for j, r := 0, lo; r < hi; j, r = j+1, r+1 {
			checkValue(t, fmt.Sprintf("v%d span col %d row %d", s.Version(), ci, r), got.Value(j), o.cols[ci][r])
		}
		got = tbl.Columns[ci].GatherSel(denseSel)
		for j, r := range idx {
			checkValue(t, fmt.Sprintf("v%d dense col %d row %d", s.Version(), ci, r), got.Value(j), o.cols[ci][r])
		}
	}
	// GatherPairs with an explicit null mask (the join materialization
	// primitive) over chunked storage.
	n := rng.Intn(2*rows) + 1
	pidx := make([]int, n)
	pnulls := make([]bool, n)
	for j := range pidx {
		if rng.Intn(5) == 0 {
			pnulls[j] = true
		}
		pidx[j] = rng.Intn(rows)
	}
	for ci := range tbl.Columns {
		got := tbl.Columns[ci].GatherPairs(pidx, pnulls)
		for j := range pidx {
			want := Null()
			if !pnulls[j] {
				want = o.cols[ci][pidx[j]]
			}
			checkValue(t, fmt.Sprintf("v%d pairs col %d pos %d", s.Version(), ci, j), got.Value(j), want)
		}
	}
}

// TestAppenderPropertyVsOracle drives random append/publish/bulk-append
// sequences and verifies every snapshot ever published — including all
// older ones after each new publish — against the flat oracle.
func TestAppenderPropertyVsOracle(t *testing.T) {
	kindsPool := []Kind{KindInt, KindFloat, KindString, KindBool}
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			ncols := 2 + rng.Intn(3)
			names := make([]string, ncols)
			kinds := make([]Kind, ncols)
			for i := range names {
				names[i] = fmt.Sprintf("c%d", i)
				kinds[i] = kindsPool[rng.Intn(len(kindsPool))]
			}
			allowMixed := seed%3 == 0 // every third seed exercises degradation

			o := &oracleTable{names: names, kinds: kinds, cols: make([][]Value, ncols)}
			seedTbl := MustNew("prop", names, kinds)
			initial := rng.Intn(20)
			for r := 0; r < initial; r++ {
				vals := make([]Value, ncols)
				for i := range vals {
					vals[i] = randCell(rng, kinds[i], allowMixed)
				}
				seedTbl.MustAppendRow(vals...)
				o.appendRow(vals)
			}
			app := NewAppender(seedTbl)

			type published struct {
				snap *Snapshot
				rows int
			}
			history := []published{{app.Snapshot(), initial}}

			rows := initial
			for step := 0; step < 30; step++ {
				switch rng.Intn(4) {
				case 0, 1: // row appends
					k := rng.Intn(8)
					batch := make([][]Value, k)
					for b := range batch {
						vals := make([]Value, ncols)
						for i := range vals {
							vals[i] = randCell(rng, kinds[i], allowMixed)
						}
						batch[b] = vals
						o.appendRow(vals)
					}
					if err := app.Append(batch...); err != nil {
						t.Fatal(err)
					}
					rows += k
				case 2: // bulk table append (typed fast path + coercing slow path)
					src := MustNew("src", names, kinds)
					k := rng.Intn(6)
					for b := 0; b < k; b++ {
						vals := make([]Value, ncols)
						for i := range vals {
							vals[i] = randCell(rng, kinds[i], allowMixed)
						}
						src.MustAppendRow(vals...)
						o.appendRow(vals)
					}
					if err := app.AppendTable(src); err != nil {
						t.Fatal(err)
					}
					rows += k
				case 3: // publish
					if got := app.Pending(); got != rows-history[len(history)-1].rows {
						t.Fatalf("pending = %d, want %d", got, rows-history[len(history)-1].rows)
					}
					snap := app.Publish()
					history = append(history, published{snap, rows})
				}
				// The live snapshot never shows pending rows.
				last := history[len(history)-1]
				if got := app.Snapshot(); got.NumRows() != last.rows || got.Version() != last.snap.Version() {
					t.Fatalf("live snapshot drifted: %d rows v%d, want %d rows v%d",
						got.NumRows(), got.Version(), last.rows, last.snap.Version())
				}
				// Immutability: every snapshot ever published still matches
				// the oracle prefix it was published over.
				for _, p := range history {
					verifySnapshot(t, rng, p.snap, o, p.rows)
				}
			}
			// Publishing with nothing pending returns the same snapshot.
			final := app.Publish()
			if again := app.Publish(); again != final {
				t.Fatal("no-op Publish returned a new snapshot")
			}
		})
	}
}

// TestAppenderErrors pins the arity errors for row and bulk appends.
func TestAppenderErrors(t *testing.T) {
	app := NewAppender(MustNew("t", []string{"a", "b"}, []Kind{KindInt, KindInt}))
	if err := app.Append([]Value{Int(1)}); err == nil {
		t.Fatal("short row append succeeded")
	}
	if err := app.AppendTable(MustNew("s", []string{"a"}, []Kind{KindInt})); err == nil {
		t.Fatal("column-count-mismatched bulk append succeeded")
	}
}

// TestSnapshotSchema pins Schema and the version/chunk bookkeeping on the
// registration snapshot of empty and non-empty tables.
func TestSnapshotSchema(t *testing.T) {
	empty := NewAppender(MustNew("e", []string{"x"}, []Kind{KindFloat}))
	s := empty.Snapshot()
	if s.Version() != 1 || s.NumRows() != 0 || s.NumChunks() != 0 {
		t.Fatalf("empty registration snapshot: v%d rows %d chunks %d", s.Version(), s.NumRows(), s.NumChunks())
	}
	tbl := MustNew("t", []string{"a", "b"}, []Kind{KindInt, KindString})
	tbl.MustAppendRow(Int(1), Str("x"))
	app := NewAppender(tbl)
	s = app.Snapshot()
	if s.Version() != 1 || s.NumRows() != 1 || s.NumChunks() != 1 {
		t.Fatalf("registration snapshot: v%d rows %d chunks %d", s.Version(), s.NumRows(), s.NumChunks())
	}
	names, kinds := s.Schema()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" || kinds[0] != KindInt || kinds[1] != KindString {
		t.Fatalf("schema: %v %v", names, kinds)
	}
	if err := app.Append([]Value{Int(2), Str("y")}); err != nil {
		t.Fatal(err)
	}
	if v := app.Publish().Version(); v != 2 {
		t.Fatalf("publish version = %d, want 2", v)
	}
}
