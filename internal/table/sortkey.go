package table

import "math"

// Normalized sort-key encoding: each cell of an ORDER BY key column encodes
// into a byte string whose lexicographic (memcmp) order matches Compare on
// the original values — NULL first, then the kind's natural order. A DESC
// key complements every encoded byte, which exactly reverses the memcmp
// order (and so places NULLs last, mirroring what reversing an ascending
// sort does). Composite multi-column keys are plain concatenations of the
// per-column encodings; the variable-length string encoding is escaped and
// terminated so no encoding is a strict prefix of another and column
// boundaries cannot bleed into each other.
//
// The encoding is only defined per column kind: a whole int column encodes
// against other int cells, a whole string column against other string
// cells, and so on. Mixed-kind (boxed) columns, whose cells would need
// Compare's cross-kind coercion rules, are rejected by CanEncodeSortKey and
// handled by the engine's boxed comparator fallback.

const (
	sortKeyNull    = 0x00 // NULL sentinel: sorts before any present cell
	sortKeyPresent = 0x01 // sentinel preceding a non-NULL payload

	// String payloads escape embedded 0x00 bytes as (0x00, 0xff) and
	// terminate with (0x00, 0x01). The terminator's second byte compares
	// below every escape continuation and the first byte below every
	// literal payload byte, so "a" < "a\x00x" < "ab" holds byte-wise.
	sortKeyStrEsc     = 0xff
	sortKeyStrTermEnd = 0x01
)

// CanEncodeSortKey reports whether c's cells have a memcmp sort-key
// encoding: typed storage of a single kind (an all-NULL KindNull column
// counts — every cell encodes as the NULL sentinel). Boxed mixed-kind
// columns do not.
func CanEncodeSortKey(c *Column) bool {
	if !c.IsTyped() {
		return false
	}
	switch c.Kind {
	case KindNull, KindInt, KindFloat, KindString, KindBool, KindTime:
		return true
	default:
		return false
	}
}

// SortKeySpec pairs one ORDER BY key column with its direction.
type SortKeySpec struct {
	Col  *Column
	Desc bool
}

// AppendSortKey appends the encoding of cell row of c to dst and returns
// the extended buffer. The caller must have checked CanEncodeSortKey.
// NULL cells of fixed-width kinds pad to the kind's full payload width
// (the 0x00 sentinel already decides the comparison, so the padding bytes
// are never order-relevant), keeping every key of such a column the same
// length — that is what lets FixedSortKeyWidth offer stride addressing
// without inspecting null bitmaps.
func AppendSortKey(dst []byte, c *Column, row int, desc bool) []byte {
	start := len(dst)
	if c.Kind == KindNull || c.nulls[row] {
		dst = append(dst, sortKeyNull)
		switch c.Kind {
		case KindInt, KindFloat:
			dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
		case KindBool:
			dst = append(dst, 0)
		case KindTime:
			dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
		}
	} else {
		dst = append(dst, sortKeyPresent)
		switch c.Kind {
		case KindInt:
			dst = appendUint64Key(dst, uint64(c.ints[row])^(1<<63))
		case KindFloat:
			dst = appendUint64Key(dst, floatKeyBits(c.floats[row]))
		case KindString:
			dst = appendStringKey(dst, c.strs[row])
		case KindBool:
			b := byte(0)
			if c.bools[row] {
				b = 1
			}
			dst = append(dst, b)
		case KindTime:
			// Unix seconds (sign-flipped int64) then nanoseconds: the pair
			// orders chronologically for every representable instant,
			// matching Compare's Before/After.
			t := c.times[row]
			dst = appendUint64Key(dst, uint64(t.Unix())^(1<<63))
			ns := uint32(t.Nanosecond())
			dst = append(dst, byte(ns>>24), byte(ns>>16), byte(ns>>8), byte(ns))
		}
	}
	if desc {
		for i := start; i < len(dst); i++ {
			dst[i] ^= 0xff
		}
	}
	return dst
}

// appendUint64Key appends v big-endian, so byte order equals numeric order.
func appendUint64Key(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// floatKeyBits maps a float64 to a uint64 whose unsigned order equals the
// float order: negative floats complement all bits, non-negative floats
// flip the sign bit. -0.0 is canonicalized to +0.0 first because Compare
// treats them as equal, and equal values must encode identically (a byte
// difference would break tie stability).
func floatKeyBits(f float64) uint64 {
	if f == 0 {
		f = 0
	}
	bits := math.Float64bits(f)
	if bits&(1<<63) != 0 {
		return ^bits
	}
	return bits | 1<<63
}

// appendStringKey appends the escaped, terminated string payload.
func appendStringKey(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if s[i] == 0x00 {
			dst = append(dst, 0x00, sortKeyStrEsc)
			continue
		}
		dst = append(dst, s[i])
	}
	return append(dst, 0x00, sortKeyStrTermEnd)
}

// AppendRowSortKey appends the composite encoding of one row across all
// key columns.
func AppendRowSortKey(dst []byte, keys []SortKeySpec, row int) []byte {
	for _, k := range keys {
		dst = AppendSortKey(dst, k.Col, row, k.Desc)
	}
	return dst
}

// FixedSortKeyWidth returns the constant per-row byte width of the
// composite key, or 0 when any key column is a string (the only
// variable-width encoding; NULLs of other kinds pad to full width).
// Fixed-width keys let callers address row keys by stride instead of
// materializing an offsets slice.
func FixedSortKeyWidth(keys []SortKeySpec) int {
	w := 0
	for _, k := range keys {
		switch k.Col.Kind {
		case KindNull:
			w++ // every cell is the bare sentinel
		case KindInt, KindFloat:
			w += 9
		case KindBool:
			w += 2
		case KindTime:
			w += 13
		case KindString:
			return 0
		}
	}
	return w
}

// BuildSortKeys encodes rows [lo, hi) of the key columns into one shared
// buffer. offs has hi-lo+1 entries; row lo+i's key is buf[offs[i]:offs[i+1]].
func BuildSortKeys(keys []SortKeySpec, lo, hi int) (buf []byte, offs []int) {
	n := hi - lo
	offs = make([]int, n+1)
	est := 0
	for _, k := range keys {
		switch k.Col.Kind {
		case KindInt, KindFloat:
			est += 9
		case KindTime:
			est += 13
		case KindBool:
			est += 2
		case KindString:
			est += 12 // sentinel + terminator + a short-string guess
		default:
			est++
		}
	}
	buf = make([]byte, 0, n*est)
	for i := 0; i < n; i++ {
		offs[i] = len(buf)
		buf = AppendRowSortKey(buf, keys, lo+i)
	}
	offs[n] = len(buf)
	return buf, offs
}

// BuildFixedSortKeys is BuildSortKeys for fixed-width composite keys
// (FixedSortKeyWidth > 0): row lo+i occupies buf[i*w : (i+1)*w], no
// offsets slice needed.
func BuildFixedSortKeys(keys []SortKeySpec, lo, hi, w int) []byte {
	n := hi - lo
	buf := make([]byte, 0, n*w)
	for i := 0; i < n; i++ {
		buf = AppendRowSortKey(buf, keys, lo+i)
	}
	return buf
}
