package table

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"time"
)

// signOf collapses a comparison result to -1/0/+1.
func signOf(c int) int {
	switch {
	case c < 0:
		return -1
	case c > 0:
		return 1
	default:
		return 0
	}
}

// encodeOne builds the sort key of the single value v under the column
// machinery (a one-cell column of v's kind).
func encodeOne(t *testing.T, v Value, desc bool) []byte {
	t.Helper()
	kind := v.Kind
	c := NewColumn("k", kind)
	c.Append(v)
	if !CanEncodeSortKey(&c) {
		t.Fatalf("single-kind column of %v not encodable", kind)
	}
	return AppendSortKey(nil, &c, 0, desc)
}

// randValueOfKind draws a random value of the given kind, NULL included.
// The pools deliberately contain duplicates, boundary values, and strings
// with embedded 0x00/0xff bytes and shared prefixes.
func randValueOfKind(rng *rand.Rand, kind Kind) Value {
	if rng.Intn(8) == 0 {
		return Null()
	}
	switch kind {
	case KindInt:
		ints := []int64{0, 1, -1, 7, -7, 42, math.MaxInt64, math.MinInt64, 1 << 53, -(1 << 53)}
		if rng.Intn(2) == 0 {
			return Int(ints[rng.Intn(len(ints))])
		}
		return Int(int64(rng.Intn(2000) - 1000))
	case KindFloat:
		floats := []float64{0, math.Copysign(0, -1), 1.5, -1.5, math.MaxFloat64,
			-math.MaxFloat64, math.SmallestNonzeroFloat64, math.Inf(1), math.Inf(-1), 3.14159}
		if rng.Intn(2) == 0 {
			return Float(floats[rng.Intn(len(floats))])
		}
		return Float(float64(rng.Intn(4000))/8 - 250)
	case KindString:
		strs := []string{"", "a", "ab", "a\x00", "a\x00b", "a\xffz", "b", "ba",
			"\x00", "\x00\x00", "\xff", "zz", "red", "green"}
		if rng.Intn(2) == 0 {
			return Str(strs[rng.Intn(len(strs))])
		}
		b := make([]byte, rng.Intn(6))
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		return Str(string(b))
	case KindBool:
		return Bool(rng.Intn(2) == 0)
	case KindTime:
		base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
		return Time(base.Add(time.Duration(rng.Int63n(int64(200*24*time.Hour))) -
			100*24*time.Hour + time.Duration(rng.Intn(3))*time.Nanosecond))
	default:
		return Null()
	}
}

// TestSortKeyOrderMatchesCompare is the encoder's core property: for random
// same-kind value pairs, memcmp order of the encodings must equal Compare
// order ascending, and its reverse descending (with NULLs therefore last).
func TestSortKeyOrderMatchesCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	kinds := []Kind{KindInt, KindFloat, KindString, KindBool, KindTime}
	for _, kind := range kinds {
		for trial := 0; trial < 4000; trial++ {
			a := randValueOfKind(rng, kind)
			b := randValueOfKind(rng, kind)
			want := signOf(Compare(a, b))
			if got := signOf(bytes.Compare(encodeOne(t, a, false), encodeOne(t, b, false))); got != want {
				t.Fatalf("kind %v ASC: enc order %d, Compare %d for %v vs %v", kind, got, want, a, b)
			}
			if got := signOf(bytes.Compare(encodeOne(t, a, true), encodeOne(t, b, true))); got != -want {
				t.Fatalf("kind %v DESC: enc order %d, want %d for %v vs %v", kind, got, -want, a, b)
			}
		}
	}
}

// TestSortKeyCompositeOrder checks multi-column keys: concatenated
// encodings must order like the lexicographic (Compare, desc-aware)
// comparison the engine's boxed comparator performs.
func TestSortKeyCompositeOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	kinds := []Kind{KindString, KindInt, KindFloat, KindBool, KindTime}
	for trial := 0; trial < 3000; trial++ {
		nk := 1 + rng.Intn(3)
		specKinds := make([]Kind, nk)
		descs := make([]bool, nk)
		for i := range specKinds {
			specKinds[i] = kinds[rng.Intn(len(kinds))]
			descs[i] = rng.Intn(2) == 0
		}
		// Two rows per key column; kindred cells so columns stay typed.
		cols := make([]Column, nk)
		specs := make([]SortKeySpec, nk)
		rowA := make([]Value, nk)
		rowB := make([]Value, nk)
		for i := range cols {
			rowA[i] = randValueOfKind(rng, specKinds[i])
			rowB[i] = randValueOfKind(rng, specKinds[i])
			cols[i] = NewColumn("k", specKinds[i])
			cols[i].Append(rowA[i])
			cols[i].Append(rowB[i])
			specs[i] = SortKeySpec{Col: &cols[i], Desc: descs[i]}
		}
		want := 0
		for i := 0; i < nk && want == 0; i++ {
			c := Compare(rowA[i], rowB[i])
			if descs[i] {
				c = -c
			}
			want = signOf(c)
		}
		encA := AppendRowSortKey(nil, specs, 0)
		encB := AppendRowSortKey(nil, specs, 1)
		if got := signOf(bytes.Compare(encA, encB)); got != want {
			t.Fatalf("composite: enc order %d, want %d for %v vs %v (desc %v)", got, want, rowA, rowB, descs)
		}
	}
}

// TestBuildSortKeysOffsets checks the batch builder against the per-row
// encoder and its offset bookkeeping.
func TestBuildSortKeysOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	col := NewColumn("s", KindString)
	num := NewColumn("n", KindInt)
	const n = 257
	for i := 0; i < n; i++ {
		col.Append(randValueOfKind(rng, KindString))
		num.Append(randValueOfKind(rng, KindInt))
	}
	specs := []SortKeySpec{{Col: &col, Desc: true}, {Col: &num}}
	buf, offs := BuildSortKeys(specs, 3, n)
	if len(offs) != n-3+1 {
		t.Fatalf("offs length %d, want %d", len(offs), n-3+1)
	}
	for i := 3; i < n; i++ {
		want := AppendRowSortKey(nil, specs, i)
		got := buf[offs[i-3]:offs[i-3+1]]
		if !bytes.Equal(got, want) {
			t.Fatalf("row %d: batch key %x, per-row key %x", i, got, want)
		}
	}
}

// TestSortKeyNullColumn pins the all-NULL (KindNull) column case: every
// cell encodes as the bare sentinel, sorting before any present value.
func TestSortKeyNullColumn(t *testing.T) {
	c := NewColumn("x", KindNull)
	c.AppendNull()
	c.AppendNull()
	if !CanEncodeSortKey(&c) {
		t.Fatal("KindNull column should be encodable")
	}
	ka := AppendSortKey(nil, &c, 0, false)
	kb := AppendSortKey(nil, &c, 1, false)
	if !bytes.Equal(ka, kb) || len(ka) != 1 || ka[0] != 0x00 {
		t.Fatalf("NULL keys %x / %x, want single 0x00 sentinel", ka, kb)
	}
	s := NewColumn("s", KindString)
	s.Append(Str(""))
	if bytes.Compare(ka, AppendSortKey(nil, &s, 0, false)) >= 0 {
		t.Fatal("NULL must sort before the empty string ascending")
	}
}

// TestSortKeyRejectsBoxed pins the fallback trigger: mixed-kind columns
// have no memcmp encoding.
func TestSortKeyRejectsBoxed(t *testing.T) {
	c := NewColumn("m", KindInt)
	c.Append(Int(1))
	c.Append(Str("two")) // degrades to boxed storage
	if CanEncodeSortKey(&c) {
		t.Fatal("boxed column must not be encodable")
	}
}
