package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// ReadCSV parses CSV data with a header row into a table, inferring column
// kinds from the first non-empty cell of each column and coercing the rest.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("csv %s: %w", name, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("csv %s: missing header row", name)
	}
	header := records[0]
	rows := records[1:]

	// Infer each column's kind from all rows, promoting along
	// Int -> Float -> String when cells disagree (Time/Bool demote to
	// String on any mismatch).
	kinds := make([]Kind, len(header))
	for c := range header {
		kind := KindNull
		for _, row := range rows {
			if c >= len(row) || strings.TrimSpace(row[c]) == "" {
				continue
			}
			kind = promote(kind, Infer(row[c]).Kind)
			if kind == KindString {
				break
			}
		}
		if kind == KindNull {
			kind = KindString
		}
		kinds[c] = kind
	}
	t, err := New(name, header, kinds)
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		vals := make([]Value, len(header))
		for c := range header {
			if c < len(row) {
				vals[c] = Infer(row[c])
			}
		}
		if err := t.AppendRow(vals...); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// promote unifies two observed cell kinds into the narrowest column kind
// that can represent both.
func promote(a, b Kind) Kind {
	if a == KindNull {
		return b
	}
	if b == KindNull || a == b {
		return a
	}
	if (a == KindInt && b == KindFloat) || (a == KindFloat && b == KindInt) {
		return KindFloat
	}
	return KindString
}

// WriteCSV renders the table as CSV with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.ColumnNames()); err != nil {
		return err
	}
	for i, n := 0, t.NumRows(); i < n; i++ {
		rec := make([]string, len(t.Columns))
		for j := range t.Columns {
			rec[j] = t.Columns[j].Value(i).AsString()
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
